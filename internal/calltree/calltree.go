// Package calltree models the application's kernel namespace: the call
// paths of instrumented functions and kernels, the kind of API each kernel
// belongs to (CUDA, cuDNN, cuBLAS, MPI, NCCL, memory operations, OS, NVTX
// user code), and the phase category (computation, communication, memory
// operations) used to build application-level models (Eq. 6 of the paper).
package calltree

import (
	"fmt"
	"sort"
	"strings"
)

// Kind identifies which API or layer a kernel belongs to. Extra-Deep
// creates separate model groups per kind (Table 2 of the paper).
type Kind int

// The kernel kinds measured by the profiling toolchain (Section 2.1).
const (
	KindUnknown Kind = iota
	// KindCUDA is a CUDA compute kernel executed on the GPU.
	KindCUDA
	// KindCuDNN is a cuDNN library call on the CPU driving GPU work.
	KindCuDNN
	// KindCuBLAS is a cuBLAS library call.
	KindCuBLAS
	// KindMPI is an MPI function call (CPU-side communication).
	KindMPI
	// KindNCCL is an NCCL collective executed on the GPU.
	KindNCCL
	// KindMemcpy is a CUDA memory copy (HtoD, DtoH, DtoD).
	KindMemcpy
	// KindMemset is a CUDA memset operation.
	KindMemset
	// KindOS is an operating-system library call.
	KindOS
	// KindNVTX is a user-defined function covered by NVTX instrumentation.
	KindNVTX
	// KindCUDAAPI is a CUDA runtime/driver API call on the CPU.
	KindCUDAAPI
)

var kindNames = map[Kind]string{
	KindUnknown: "unknown",
	KindCUDA:    "cuda",
	KindCuDNN:   "cudnn",
	KindCuBLAS:  "cublas",
	KindMPI:     "mpi",
	KindNCCL:    "nccl",
	KindMemcpy:  "memcpy",
	KindMemset:  "memset",
	KindOS:      "os",
	KindNVTX:    "nvtx",
	KindCUDAAPI: "cudaapi",
}

// String returns the lower-case name of the kind.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// ParseKind converts a kind name back to its Kind; unknown names map to
// KindUnknown.
func ParseKind(s string) Kind {
	for k, name := range kindNames {
		if name == s {
			return k
		}
	}
	return KindUnknown
}

// AllKinds returns every defined kind except KindUnknown, in stable order.
func AllKinds() []Kind {
	return []Kind{
		KindCUDA, KindCuDNN, KindCuBLAS, KindMPI, KindNCCL,
		KindMemcpy, KindMemset, KindOS, KindNVTX, KindCUDAAPI,
	}
}

// Category is the training-phase category of a kernel, used to aggregate
// application models into computation, communication and memory parts
// (Eqs. 6–10 of the paper).
type Category int

// The three application-model categories.
const (
	CategoryUnknown Category = iota
	// CategoryComputation covers CUDA/cuDNN/cuBLAS compute kernels and
	// user/OS code.
	CategoryComputation
	// CategoryCommunication covers MPI and NCCL operations.
	CategoryCommunication
	// CategoryMemory covers memcpy/memset memory operations.
	CategoryMemory
)

// String returns the category name.
func (c Category) String() string {
	switch c {
	case CategoryComputation:
		return "computation"
	case CategoryCommunication:
		return "communication"
	case CategoryMemory:
		return "memory"
	default:
		return "unknown"
	}
}

// CategoryOf maps a kernel kind to its phase category.
func CategoryOf(k Kind) Category {
	switch k {
	case KindMPI, KindNCCL:
		return CategoryCommunication
	case KindMemcpy, KindMemset:
		return CategoryMemory
	case KindCUDA, KindCuDNN, KindCuBLAS, KindOS, KindNVTX, KindCUDAAPI:
		return CategoryComputation
	default:
		return CategoryUnknown
	}
}

// Separator joins callpath components, matching the paper's
// "App->train()->compute_gradients()" notation.
const Separator = "->"

// Join builds a callpath string from components.
func Join(components ...string) string { return strings.Join(components, Separator) }

// Split breaks a callpath string into its components.
func Split(path string) []string {
	if path == "" {
		return nil
	}
	return strings.Split(path, Separator)
}

// Node is one node of the call tree.
type Node struct {
	// Name is the node's own name, e.g. "train" or "MPI_Allreduce".
	Name string
	// Kind classifies the kernel this node represents.
	Kind Kind
	// Children maps child name → child node.
	Children map[string]*Node
	parent   *Node
}

// Tree is a call tree with an unnamed root.
type Tree struct {
	root *Node
}

// NewTree returns an empty call tree.
func NewTree() *Tree {
	return &Tree{root: &Node{Children: make(map[string]*Node)}}
}

// Insert adds the callpath (a list of components) to the tree, creating
// intermediate nodes as needed, and tags the leaf with the given kind.
// It returns the leaf node.
func (t *Tree) Insert(kind Kind, components ...string) *Node {
	cur := t.root
	for _, c := range components {
		next := cur.Children[c]
		if next == nil {
			next = &Node{Name: c, Children: make(map[string]*Node), parent: cur}
			cur.Children[c] = next
		}
		cur = next
	}
	if cur != t.root {
		cur.Kind = kind
	}
	return cur
}

// InsertPath adds a Separator-joined callpath string.
func (t *Tree) InsertPath(kind Kind, path string) *Node {
	return t.Insert(kind, Split(path)...)
}

// Find returns the node at the given callpath, or nil.
func (t *Tree) Find(components ...string) *Node {
	cur := t.root
	for _, c := range components {
		cur = cur.Children[c]
		if cur == nil {
			return nil
		}
	}
	return cur
}

// FindPath is Find for a Separator-joined callpath string.
func (t *Tree) FindPath(path string) *Node { return t.Find(Split(path)...) }

// Path returns the full callpath string of the node.
func (n *Node) Path() string {
	if n == nil || n.parent == nil {
		return ""
	}
	var parts []string
	for cur := n; cur != nil && cur.parent != nil; cur = cur.parent {
		parts = append(parts, cur.Name)
	}
	for i, j := 0, len(parts)-1; i < j; i, j = i+1, j-1 {
		parts[i], parts[j] = parts[j], parts[i]
	}
	return Join(parts...)
}

// IsLeaf reports whether the node has no children.
func (n *Node) IsLeaf() bool { return len(n.Children) == 0 }

// Category returns the node's phase category.
func (n *Node) Category() Category { return CategoryOf(n.Kind) }

// Walk visits every node of the tree (excluding the root) in depth-first,
// name-sorted order.
func (t *Tree) Walk(visit func(*Node)) {
	var rec func(n *Node)
	rec = func(n *Node) {
		names := make([]string, 0, len(n.Children))
		for name := range n.Children {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			child := n.Children[name]
			visit(child)
			rec(child)
		}
	}
	rec(t.root)
}

// Leaves returns the callpath strings of all leaf nodes in sorted order.
func (t *Tree) Leaves() []string {
	var out []string
	t.Walk(func(n *Node) {
		if n.IsLeaf() {
			out = append(out, n.Path())
		}
	})
	sort.Strings(out)
	return out
}

// Size returns the number of nodes (excluding the root).
func (t *Tree) Size() int {
	n := 0
	t.Walk(func(*Node) { n++ })
	return n
}

// ClassifyKernelName guesses the Kind of a kernel from its name using the
// conventions of the profiling tools Extra-Deep supports (Nsight Systems
// naming for CUDA kernels, MPI_/nccl prefixes, cudnn/cublas prefixes,
// Memcpy/Memset operation names). User functions default to KindNVTX.
func ClassifyKernelName(name string) Kind {
	lower := strings.ToLower(name)
	switch {
	case strings.HasPrefix(name, "MPI_"):
		return KindMPI
	case strings.HasPrefix(lower, "nccl"):
		return KindNCCL
	case strings.HasPrefix(lower, "cudnn"):
		return KindCuDNN
	case strings.HasPrefix(lower, "cublas"):
		return KindCuBLAS
	case strings.HasPrefix(lower, "memcpy") || strings.Contains(lower, "memcpy"):
		return KindMemcpy
	case strings.HasPrefix(lower, "memset") || strings.Contains(lower, "memset"):
		return KindMemset
	case strings.HasPrefix(lower, "cuda"):
		return KindCUDAAPI
	case strings.HasPrefix(lower, "sys_") || strings.HasPrefix(lower, "os."):
		return KindOS
	case strings.Contains(lower, "kernel") || strings.HasPrefix(lower, "volta_") ||
		strings.HasPrefix(lower, "ampere_") || strings.HasPrefix(lower, "eigen"):
		return KindCUDA
	default:
		return KindNVTX
	}
}
