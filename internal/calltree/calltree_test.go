package calltree

import (
	"testing"
)

func TestKindString(t *testing.T) {
	cases := []struct {
		k    Kind
		want string
	}{
		{KindCUDA, "cuda"},
		{KindMPI, "mpi"},
		{KindNCCL, "nccl"},
		{KindUnknown, "unknown"},
		{Kind(99), "kind(99)"},
	}
	for _, c := range cases {
		if got := c.k.String(); got != c.want {
			t.Errorf("%v.String() = %q, want %q", int(c.k), got, c.want)
		}
	}
}

func TestParseKindRoundTrip(t *testing.T) {
	for _, k := range AllKinds() {
		if got := ParseKind(k.String()); got != k {
			t.Errorf("ParseKind(%q) = %v, want %v", k.String(), got, k)
		}
	}
	if got := ParseKind("no-such-kind"); got != KindUnknown {
		t.Errorf("ParseKind unknown = %v, want KindUnknown", got)
	}
}

func TestCategoryOf(t *testing.T) {
	cases := []struct {
		k    Kind
		want Category
	}{
		{KindCUDA, CategoryComputation},
		{KindCuDNN, CategoryComputation},
		{KindCuBLAS, CategoryComputation},
		{KindOS, CategoryComputation},
		{KindNVTX, CategoryComputation},
		{KindCUDAAPI, CategoryComputation},
		{KindMPI, CategoryCommunication},
		{KindNCCL, CategoryCommunication},
		{KindMemcpy, CategoryMemory},
		{KindMemset, CategoryMemory},
		{KindUnknown, CategoryUnknown},
	}
	for _, c := range cases {
		if got := CategoryOf(c.k); got != c.want {
			t.Errorf("CategoryOf(%v) = %v, want %v", c.k, got, c.want)
		}
	}
}

func TestCategoryString(t *testing.T) {
	if CategoryComputation.String() != "computation" ||
		CategoryCommunication.String() != "communication" ||
		CategoryMemory.String() != "memory" ||
		CategoryUnknown.String() != "unknown" {
		t.Error("category names wrong")
	}
}

func TestJoinSplit(t *testing.T) {
	path := Join("App", "train", "MPI_Allreduce")
	if path != "App->train->MPI_Allreduce" {
		t.Errorf("Join = %q", path)
	}
	parts := Split(path)
	if len(parts) != 3 || parts[0] != "App" || parts[2] != "MPI_Allreduce" {
		t.Errorf("Split = %v", parts)
	}
	if Split("") != nil {
		t.Error("Split(\"\") should be nil")
	}
}

func TestTreeInsertAndFind(t *testing.T) {
	tree := NewTree()
	leaf := tree.Insert(KindMPI, "App", "train", "MPI_Allreduce")
	if leaf.Name != "MPI_Allreduce" || leaf.Kind != KindMPI {
		t.Errorf("leaf = %+v", leaf)
	}
	if got := tree.Find("App", "train", "MPI_Allreduce"); got != leaf {
		t.Error("Find did not return the inserted leaf")
	}
	if tree.Find("App", "missing") != nil {
		t.Error("Find invented a node")
	}
}

func TestTreeInsertPathAndFindPath(t *testing.T) {
	tree := NewTree()
	tree.InsertPath(KindCUDA, "App->train->EigenMetaKernel")
	n := tree.FindPath("App->train->EigenMetaKernel")
	if n == nil || n.Kind != KindCUDA {
		t.Fatal("InsertPath/FindPath round trip failed")
	}
	if got := n.Path(); got != "App->train->EigenMetaKernel" {
		t.Errorf("Path = %q", got)
	}
}

func TestTreeInsertSharedPrefix(t *testing.T) {
	tree := NewTree()
	tree.Insert(KindCUDA, "App", "train", "k1")
	tree.Insert(KindMPI, "App", "train", "k2")
	if tree.Size() != 4 { // App, train, k1, k2
		t.Errorf("Size = %d, want 4", tree.Size())
	}
}

func TestTreeInsertEmptyPathReturnsRootWithoutTagging(t *testing.T) {
	tree := NewTree()
	n := tree.Insert(KindMPI)
	if n.Path() != "" {
		t.Error("empty insert should return root")
	}
	if tree.Size() != 0 {
		t.Error("empty insert must not create nodes")
	}
}

func TestNodePathRoot(t *testing.T) {
	var n *Node
	if n.Path() != "" {
		t.Error("nil node path should be empty")
	}
}

func TestTreeLeaves(t *testing.T) {
	tree := NewTree()
	tree.InsertPath(KindCUDA, "App->train->k1")
	tree.InsertPath(KindMPI, "App->train->k2")
	tree.InsertPath(KindNVTX, "App->test")
	leaves := tree.Leaves()
	want := []string{"App->test", "App->train->k1", "App->train->k2"}
	if len(leaves) != len(want) {
		t.Fatalf("leaves = %v", leaves)
	}
	for i := range want {
		if leaves[i] != want[i] {
			t.Errorf("leaves[%d] = %q, want %q", i, leaves[i], want[i])
		}
	}
}

func TestTreeWalkOrderIsDeterministic(t *testing.T) {
	build := func() []string {
		tree := NewTree()
		tree.InsertPath(KindCUDA, "b->x")
		tree.InsertPath(KindCUDA, "a->y")
		tree.InsertPath(KindCUDA, "c")
		var order []string
		tree.Walk(func(n *Node) { order = append(order, n.Name) })
		return order
	}
	first := build()
	for i := 0; i < 5; i++ {
		again := build()
		for j := range first {
			if first[j] != again[j] {
				t.Fatalf("walk order unstable: %v vs %v", first, again)
			}
		}
	}
	want := []string{"a", "y", "b", "x", "c"}
	for i := range want {
		if first[i] != want[i] {
			t.Fatalf("walk order = %v, want %v", first, want)
		}
	}
}

func TestIsLeaf(t *testing.T) {
	tree := NewTree()
	tree.InsertPath(KindCUDA, "App->train")
	if tree.FindPath("App").IsLeaf() {
		t.Error("inner node reported as leaf")
	}
	if !tree.FindPath("App->train").IsLeaf() {
		t.Error("leaf not reported as leaf")
	}
}

func TestNodeCategory(t *testing.T) {
	tree := NewTree()
	n := tree.InsertPath(KindNCCL, "App->ncclAllReduce")
	if n.Category() != CategoryCommunication {
		t.Errorf("category = %v", n.Category())
	}
}

func TestClassifyKernelName(t *testing.T) {
	cases := []struct {
		name string
		want Kind
	}{
		{"MPI_Allreduce", KindMPI},
		{"MPI_Allgather", KindMPI},
		{"ncclAllReduce", KindNCCL},
		{"cudnnConvolutionForward", KindCuDNN},
		{"cublasSgemm", KindCuBLAS},
		{"Memcpy HtoD", KindMemcpy},
		{"Memset", KindMemset},
		{"cudaLaunchKernel", KindCUDAAPI},
		{"sys_read", KindOS},
		{"os.read", KindOS},
		{"EigenMetaKernel", KindCUDA},
		{"volta_scudnn_128x64_relu", KindCUDA},
		{"ampere_sgemm_128x128", KindCUDA},
		{"train_step", KindNVTX},
	}
	for _, c := range cases {
		if got := ClassifyKernelName(c.name); got != c.want {
			t.Errorf("ClassifyKernelName(%q) = %v, want %v", c.name, got, c.want)
		}
	}
}
