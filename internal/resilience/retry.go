package resilience

import (
	"context"
	"time"
)

// Default retry-policy values, chosen so a transient failure gets two
// more chances within roughly a second of wall time.
const (
	defaultMaxAttempts = 3
	defaultBaseDelay   = 100 * time.Millisecond
	defaultMaxDelay    = 5 * time.Second
	defaultMultiplier  = 2.0
)

// RetryPolicy describes an exponential-backoff-with-jitter schedule. The
// jitter is a pure function of (Seed, attempt) — no randomness source is
// consulted — so the schedule is fully deterministic and replayable: two
// runs with the same seed back off identically forever.
type RetryPolicy struct {
	// MaxAttempts bounds the total tries per operation (first run
	// included); 0 means 3, 1 disables retrying.
	MaxAttempts int
	// BaseDelay is the pre-jitter delay before the first retry
	// (0 = 100ms).
	BaseDelay time.Duration
	// MaxDelay caps the pre-jitter exponential growth (0 = 5s).
	MaxDelay time.Duration
	// Multiplier is the per-attempt growth factor (0 = 2).
	Multiplier float64
	// Seed derives the deterministic jitter; the zero seed is valid.
	Seed int64
}

func (p RetryPolicy) attempts() int {
	if p.MaxAttempts <= 0 {
		return defaultMaxAttempts
	}
	return p.MaxAttempts
}

// Backoff returns the delay before retry number attempt (0-based: the
// delay between the first failure and the second try). The pre-jitter
// delay grows as BaseDelay·Multiplierᵃ capped at MaxDelay; full jitter
// scales it into [½·delay, delay), so synchronized retriers decorrelate
// while the schedule stays a pure function of the policy.
func (p RetryPolicy) Backoff(attempt int) time.Duration {
	base := p.BaseDelay
	if base <= 0 {
		base = defaultBaseDelay
	}
	max := p.MaxDelay
	if max <= 0 {
		max = defaultMaxDelay
	}
	mult := p.Multiplier
	if mult <= 1 {
		mult = defaultMultiplier
	}
	d := float64(base)
	for i := 0; i < attempt; i++ {
		d *= mult
		if d >= float64(max) {
			d = float64(max)
			break
		}
	}
	if d > float64(max) {
		d = float64(max)
	}
	// Jitter factor in [0.5, 1.0): a SplitMix64 finalizer over
	// (seed, attempt) — deterministic, well mixed, and free of any
	// randomness source the wallclock analyzer would police.
	u := splitmix64(uint64(p.Seed) ^ (uint64(attempt)+1)*0x9e3779b97f4a7c15)
	frac := 0.5 + 0.5*float64(u>>11)/float64(1<<53)
	return time.Duration(d * frac)
}

// splitmix64 is the SplitMix64 finalizer, the same mixer propcheck uses
// for per-case seeds.
func splitmix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Retrier re-runs an operation while it fails with the retryable class,
// sleeping the policy's backoff between attempts on the given clock.
type Retrier struct {
	// Policy is the backoff schedule; the zero value uses the defaults.
	Policy RetryPolicy
	// Clock paces the backoff sleeps; nil means the wall clock.
	Clock Clock
}

func (r *Retrier) clock() Clock {
	if r.Clock == nil {
		return WallClock{}
	}
	return r.Clock
}

// Do runs op up to Policy.MaxAttempts times. Only failures whose class
// is retryable are retried; fatal and degraded failures — and the final
// attempt's error — return immediately. A context that ends during the
// backoff sleep surfaces its cause (cancellation always outranks the
// retry budget).
func (r *Retrier) Do(ctx context.Context, op string, fn func(ctx context.Context) error) error {
	attempts := r.Policy.attempts()
	var err error
	for attempt := 0; attempt < attempts; attempt++ {
		if cerr := CauseOrErr(ctx); cerr != nil {
			return Wrap(ClassFatal, op, cerr)
		}
		err = fn(ctx)
		if err == nil || !IsRetryable(err) || attempt == attempts-1 {
			return err
		}
		if serr := r.clock().Sleep(ctx, r.Policy.Backoff(attempt)); serr != nil {
			return Wrap(ClassFatal, op, serr)
		}
	}
	return err
}
