package resilience

import (
	"bytes"
	"testing"
)

// FuzzCheckpointDecode asserts the checkpoint loader invariant on
// arbitrary file bytes: DecodeState either returns a fully validated
// campaign state that re-encodes byte-identically, or an error — it
// never panics and never accepts a record it cannot reproduce. This is
// the property that makes corrupt checkpoints safe: anything damaged is
// rejected here and Store.Get turns the rejection into a cache miss.
func FuzzCheckpointDecode(f *testing.F) {
	valid := mustEncode(f, &CampaignState{
		Campaign:   Key([]byte("campaign")),
		Aggregates: []byte(`{"medians":[1,2,3]}`),
		Tasks: []TaskRecord{
			{Key: Key([]byte("t1")), Name: "time kern/a", Status: StatusFitted, Payload: []byte(`{"f":"p^1"}`)},
			{Key: Key([]byte("t2")), Name: "time kern/b", Status: StatusSkipped, Class: "panic", Reason: "injected"},
		},
	})
	f.Add(valid)
	f.Add(mustEncode(f, &CampaignState{Campaign: "empty"}))
	f.Add(valid[:len(valid)/2])               // truncated mid-payload
	f.Add(valid[:len("edckpt v1")])           // magic only
	f.Add([]byte("edckpt v1\n"))              // no digest line
	f.Add([]byte("edckpt v2\nxx\n{}"))        // wrong version magic
	f.Add(EncodeEnvelope([]byte("not json"))) // valid envelope, bad payload
	f.Add(EncodeEnvelope([]byte(`{"version":1,"campaign":"c","tasks":null}`)))
	f.Add(EncodeEnvelope([]byte(`{"version":99,"campaign":"c","tasks":null}`)))
	f.Add(bytes.Replace(valid, []byte("fitted"), []byte("maybes"), 1)) // broken digest

	f.Fuzz(func(t *testing.T, data []byte) {
		st, err := DecodeState(data)
		if err != nil {
			return // rejected input: the other half of the invariant
		}
		// Every accepted state reaches the canonical encoding in one
		// step: encode → decode → encode is byte-identical (the input
		// itself may carry non-canonical JSON whitespace).
		re, err := EncodeState(st)
		if err != nil {
			t.Fatalf("accepted state failed to re-encode: %v", err)
		}
		st2, err := DecodeState(re)
		if err != nil {
			t.Fatalf("canonical encoding rejected: %v", err)
		}
		re2, err := EncodeState(st2)
		if err != nil {
			t.Fatalf("canonical state failed to re-encode: %v", err)
		}
		if !bytes.Equal(re, re2) {
			t.Fatalf("canonical encoding is not a fixed point:\n in: %q\nout: %q", re, re2)
		}
	})
}

func mustEncode(f *testing.F, st *CampaignState) []byte {
	f.Helper()
	data, err := EncodeState(st)
	if err != nil {
		f.Fatal(err)
	}
	return data
}
