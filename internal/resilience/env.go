package resilience

import (
	"fmt"
	"os"
	"strconv"
)

// Environment knobs for runtime fault injection, mirroring propcheck's
// EDCHECK_SEED replay protocol: a failing schedule is one paste away
// from a local reproduction.
const (
	// ScheduleEnv holds an explicit ParseSchedule string.
	ScheduleEnv = "EDFAULT_SCHEDULE"
	// SeedEnv derives a schedule via ScheduleFromSeed when ScheduleEnv
	// is unset.
	SeedEnv = "EDFAULT_SEED"
	// seedMaxFaults bounds a seed-derived schedule's size.
	seedMaxFaults = 4
)

// ScheduleFromEnv resolves the fault-injection environment knobs: an
// explicit EDFAULT_SCHEDULE wins, otherwise EDFAULT_SEED derives a
// schedule over the given points. With neither set it returns nil — the
// production no-op path.
func ScheduleFromEnv(points []string) ([]Fault, error) {
	if s := os.Getenv(ScheduleEnv); s != "" {
		sched, err := ParseSchedule(s)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", ScheduleEnv, err)
		}
		return sched, nil
	}
	if s := os.Getenv(SeedEnv); s != "" {
		seed, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("%s: invalid seed %q: %v", SeedEnv, s, err)
		}
		return ScheduleFromSeed(seed, points, seedMaxFaults), nil
	}
	return nil, nil
}
