package resilience

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// Checkpoint file layout: a three-part envelope
//
//	edckpt v1\n
//	<sha256 hex of payload>\n
//	<payload bytes>
//
// The digest makes truncation and bit flips detectable: a record either
// decodes to exactly the bytes that were written or it is a miss — never
// a partial resume from corrupt state. Writes are temp+rename in the
// same directory, so a killed process leaves either the previous record
// or the new one, never a torn file (the same discipline as edlint v3's
// findings cache).
const (
	envelopeMagic = "edckpt v1"
	// StateVersion identifies the campaign-state payload format.
	StateVersion = 1
)

// ErrCorrupt reports an envelope that failed validation; Store.Get turns
// it into a miss.
var ErrCorrupt = errors.New("resilience: corrupt checkpoint")

// EncodeEnvelope wraps a payload in the checksummed envelope.
func EncodeEnvelope(payload []byte) []byte {
	sum := sha256.Sum256(payload)
	var b bytes.Buffer
	b.Grow(len(envelopeMagic) + 1 + hex.EncodedLen(len(sum)) + 1 + len(payload))
	b.WriteString(envelopeMagic)
	b.WriteByte('\n')
	b.WriteString(hex.EncodeToString(sum[:]))
	b.WriteByte('\n')
	b.Write(payload)
	return b.Bytes()
}

// DecodeEnvelope validates the envelope and returns the payload, or
// ErrCorrupt (wrapped with the reason) for anything damaged.
func DecodeEnvelope(data []byte) ([]byte, error) {
	head, rest, ok := bytes.Cut(data, []byte{'\n'})
	if !ok || string(head) != envelopeMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	digest, payload, ok := bytes.Cut(rest, []byte{'\n'})
	if !ok || len(digest) != hex.EncodedLen(sha256.Size) {
		return nil, fmt.Errorf("%w: bad digest line", ErrCorrupt)
	}
	want, err := hex.DecodeString(string(digest))
	if err != nil {
		return nil, fmt.Errorf("%w: bad digest line", ErrCorrupt)
	}
	if sum := sha256.Sum256(payload); !bytes.Equal(sum[:], want) {
		return nil, fmt.Errorf("%w: payload digest mismatch", ErrCorrupt)
	}
	return payload, nil
}

// Key hashes the given parts into a content key (hex). Parts are
// length-prefixed, so ("ab","c") and ("a","bc") key differently.
func Key(parts ...[]byte) string {
	h := sha256.New()
	var n [8]byte
	for _, p := range parts {
		binary.BigEndian.PutUint64(n[:], uint64(len(p)))
		h.Write(n[:])
		h.Write(p)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// Store is a content-hash-keyed checkpoint directory. A nil *Store is a
// valid no-op: Get always misses and Put discards.
type Store struct {
	// Dir is the checkpoint directory; it is created on first Put.
	Dir string
}

// path maps a key to its record file. Keys are hex hashes, so the name
// needs no escaping.
func (s *Store) path(key string) string { return filepath.Join(s.Dir, key+".ckpt") }

// Get returns the payload stored under key. Missing, unreadable or
// corrupt records are all a miss — the caller recomputes, it never
// resumes from damaged state.
func (s *Store) Get(key string) ([]byte, bool) {
	if s == nil {
		return nil, false
	}
	data, err := os.ReadFile(s.path(key))
	if err != nil {
		return nil, false
	}
	payload, err := DecodeEnvelope(data)
	if err != nil {
		return nil, false
	}
	return payload, true
}

// Put atomically writes the payload under key: the envelope goes to a
// temp file in the same directory and is renamed into place, so readers
// and crashes see either the old record or the new one in full.
func (s *Store) Put(key string, payload []byte) error {
	if s == nil {
		return nil
	}
	if err := os.MkdirAll(s.Dir, 0o755); err != nil {
		return fmt.Errorf("resilience: checkpoint dir: %w", err)
	}
	tmp, err := os.CreateTemp(s.Dir, ".tmp-"+key[:min(8, len(key))]+"-*")
	if err != nil {
		return fmt.Errorf("resilience: checkpoint temp file: %w", err)
	}
	_, werr := tmp.Write(EncodeEnvelope(payload))
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		_ = os.Remove(tmp.Name())
		return fmt.Errorf("resilience: writing checkpoint %s: %w", key, errors.Join(werr, cerr))
	}
	if err := os.Rename(tmp.Name(), s.path(key)); err != nil {
		_ = os.Remove(tmp.Name())
		return fmt.Errorf("resilience: committing checkpoint %s: %w", key, err)
	}
	return nil
}

// TaskRecord is one completed unit of a campaign: a fitted model, or a
// quarantined/unmodelable unit with its failure class.
type TaskRecord struct {
	// Key is the content hash of the task's inputs; resume matches on it,
	// so a changed input can never reuse a stale result.
	Key string `json:"key"`
	// Name is the human-readable task identity, e.g. "time kern/conv1".
	Name string `json:"name"`
	// Status is "fitted" or "skipped".
	Status string `json:"status"`
	// Class is the failure class for skipped tasks ("panic", "degraded",
	// "unmodelable").
	Class string `json:"class,omitempty"`
	// Reason is the failure detail for skipped tasks.
	Reason string `json:"reason,omitempty"`
	// Payload is the opaque encoded result for fitted tasks.
	Payload []byte `json:"payload,omitempty"`
}

// Task-record statuses.
const (
	StatusFitted  = "fitted"
	StatusSkipped = "skipped"
)

// CampaignState is the incrementally persisted state of one modeling
// campaign: the aggregated medians and every completed per-kernel fit.
// It is written after each completed task, so an interrupted run resumes
// from the last completed kernel.
type CampaignState struct {
	// Version is StateVersion.
	Version int `json:"version"`
	// Campaign is the campaign's content key: a hash over every task key
	// and the modeling options, so any input or configuration change
	// yields a fresh state.
	Campaign string `json:"campaign"`
	// Aggregates is the opaque encoded aggregated-median set (persisted
	// for cross-run tooling; resume recomputes it from the profiles).
	Aggregates []byte `json:"aggregates,omitempty"`
	// Tasks holds the completed task records, sorted by Key.
	Tasks []TaskRecord `json:"tasks"`
}

// EncodeState canonically serializes the state: tasks sorted by key,
// stable JSON field order, wrapped in the checksummed envelope. Encoding
// is deterministic, so encode→decode→encode is byte-identical.
func EncodeState(st *CampaignState) ([]byte, error) {
	if st == nil {
		return nil, errors.New("resilience: nil campaign state")
	}
	norm := *st
	norm.Version = StateVersion
	norm.Tasks = append([]TaskRecord(nil), st.Tasks...)
	sort.Slice(norm.Tasks, func(i, j int) bool { return norm.Tasks[i].Key < norm.Tasks[j].Key })
	for i := 1; i < len(norm.Tasks); i++ {
		if norm.Tasks[i].Key == norm.Tasks[i-1].Key {
			return nil, fmt.Errorf("resilience: duplicate task key %s", norm.Tasks[i].Key)
		}
	}
	payload, err := json.MarshalIndent(&norm, "", " ")
	if err != nil {
		return nil, fmt.Errorf("resilience: encoding campaign state: %w", err)
	}
	return EncodeEnvelope(payload), nil
}

// DecodeState validates and decodes a state record. Anything that is not
// a complete, well-formed, current-version state errors (wrapping
// ErrCorrupt for envelope damage), so resume never proceeds from partial
// or stale state.
func DecodeState(data []byte) (*CampaignState, error) {
	payload, err := DecodeEnvelope(data)
	if err != nil {
		return nil, err
	}
	var st CampaignState
	dec := json.NewDecoder(bytes.NewReader(payload))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&st); err != nil {
		return nil, fmt.Errorf("resilience: decoding campaign state: %w", err)
	}
	if st.Version != StateVersion {
		return nil, fmt.Errorf("resilience: campaign-state version %d (want %d)", st.Version, StateVersion)
	}
	for i, t := range st.Tasks {
		if t.Key == "" {
			return nil, fmt.Errorf("resilience: task %d has no key", i)
		}
		if i > 0 && st.Tasks[i-1].Key >= t.Key {
			return nil, fmt.Errorf("resilience: task records not sorted/unique at %s", t.Key)
		}
		switch t.Status {
		case StatusFitted, StatusSkipped:
		default:
			return nil, fmt.Errorf("resilience: task %s has unknown status %q", t.Key, t.Status)
		}
	}
	return &st, nil
}

// LoadState fetches and decodes the campaign state stored under key;
// any miss or damage returns (nil, false).
func LoadState(s *Store, key string) (*CampaignState, bool) {
	data, ok := s.Get(key)
	if !ok {
		return nil, false
	}
	// Get already validated the envelope; DecodeState re-validates it on
	// the raw bytes, so re-wrap the payload it returned.
	st, err := DecodeState(EncodeEnvelope(data))
	if err != nil || st.Campaign != key {
		return nil, false
	}
	return st, true
}

// SaveState encodes and atomically stores the state under its campaign
// key.
func SaveState(s *Store, st *CampaignState) error {
	data, err := EncodeState(st)
	if err != nil {
		return err
	}
	// Store.Put wraps in an envelope itself; EncodeState already did, so
	// write the file directly through the same atomic path.
	return s.putRaw(st.Campaign, data)
}

// putRaw atomically writes pre-enveloped bytes under key.
func (s *Store) putRaw(key string, data []byte) error {
	if s == nil {
		return nil
	}
	if err := os.MkdirAll(s.Dir, 0o755); err != nil {
		return fmt.Errorf("resilience: checkpoint dir: %w", err)
	}
	tmp, err := os.CreateTemp(s.Dir, ".tmp-"+key[:min(8, len(key))]+"-*")
	if err != nil {
		return fmt.Errorf("resilience: checkpoint temp file: %w", err)
	}
	_, werr := tmp.Write(data)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		_ = os.Remove(tmp.Name())
		return fmt.Errorf("resilience: writing checkpoint %s: %w", key, errors.Join(werr, cerr))
	}
	if err := os.Rename(tmp.Name(), s.path(key)); err != nil {
		_ = os.Remove(tmp.Name())
		return fmt.Errorf("resilience: committing checkpoint %s: %w", key, err)
	}
	return nil
}
