// Package resilience is the pipeline's failure-handling layer: a typed
// error taxonomy (retryable / fatal / degraded), a seeded
// exponential-backoff retrier that is deterministic under test clocks, a
// deterministic runtime fault injector whose schedules are replayable
// like EDCHECK_SEED recipes, and a content-hash-keyed checkpoint store
// with atomic temp+rename writes for campaign state.
//
// The package is stdlib-only and deliberately knows nothing about
// profiles or models: the pipeline hands it opaque byte payloads and
// string-named injection points, so the same machinery can guard any
// staged computation. It is part of the edlint-policed deterministic
// core: nothing here may read the wall clock or draw randomness outside
// the explicitly sanctioned sleep in WallClock.
//
// The taxonomy's invariant, enforced end to end by the propcheck fault
// suites: every run either completes, completes partially with all
// failures classified, or fails with a typed error — and resuming after
// an interruption at any point yields byte-identical final output.
package resilience

import (
	"context"
	"errors"
	"fmt"
)

// Class partitions failures by the correct reaction to them.
type Class int

const (
	// ClassFatal failures abort the run: malformed inputs, programming
	// errors, cancellation by the caller. This is the default class for
	// errors that carry no explicit classification.
	ClassFatal Class = iota
	// ClassRetryable failures are transient (I/O hiccups, injected
	// stalls past a stage deadline): the retrier may re-run the stage.
	ClassRetryable
	// ClassDegraded failures are per-unit (one kernel's fit panicked or
	// refused to converge): the unit is quarantined and the run
	// continues, completing partially.
	ClassDegraded
)

// String names the class for reports and checkpoint records.
func (c Class) String() string {
	switch c {
	case ClassFatal:
		return "fatal"
	case ClassRetryable:
		return "retryable"
	case ClassDegraded:
		return "degraded"
	default:
		return fmt.Sprintf("class(%d)", int(c))
	}
}

// ParseClass is the inverse of Class.String, for schedule strings and
// checkpoint decoding.
func ParseClass(s string) (Class, error) {
	switch s {
	case "fatal":
		return ClassFatal, nil
	case "retryable":
		return ClassRetryable, nil
	case "degraded":
		return ClassDegraded, nil
	default:
		return ClassFatal, fmt.Errorf("resilience: unknown failure class %q", s)
	}
}

// Error is the typed pipeline failure: a class, the stage or injection
// point it occurred at, and the cause.
type Error struct {
	// Class selects the reaction: abort, retry, or quarantine.
	Class Class
	// Stage names the pipeline stage or injection point.
	Stage string
	// Err is the underlying cause.
	Err error
}

// Error implements error.
func (e *Error) Error() string {
	return fmt.Sprintf("resilience: %s: %s: %v", e.Stage, e.Class, e.Err)
}

// Unwrap exposes the cause to errors.Is/As.
func (e *Error) Unwrap() error { return e.Err }

// Errorf builds a typed error from a format string.
func Errorf(class Class, stage, format string, args ...any) *Error {
	return &Error{Class: class, Stage: stage, Err: fmt.Errorf(format, args...)}
}

// Wrap attaches a class and stage to an existing error. A nil err
// returns nil; an err that already carries a class keeps it.
func Wrap(class Class, stage string, err error) error {
	if err == nil {
		return nil
	}
	var typed *Error
	if errors.As(err, &typed) {
		return err
	}
	return &Error{Class: class, Stage: stage, Err: err}
}

// ClassOf classifies an arbitrary error. Typed errors answer for
// themselves; context cancellation and deadlines from the caller are
// fatal (the caller asked the run to stop); everything unclassified is
// fatal, because retrying an unknown failure repeats unknown work.
func ClassOf(err error) Class {
	var typed *Error
	if errors.As(err, &typed) {
		return typed.Class
	}
	return ClassFatal
}

// IsDegraded reports whether err carries the degraded class.
func IsDegraded(err error) bool { return err != nil && ClassOf(err) == ClassDegraded }

// IsRetryable reports whether err carries the retryable class.
func IsRetryable(err error) bool { return err != nil && ClassOf(err) == ClassRetryable }

// CauseOrErr returns context.Cause(ctx) when the context is done —
// surfacing a deadline as context.DeadlineExceeded even when the
// implementation cancelled with a cause — and nil otherwise.
func CauseOrErr(ctx context.Context) error {
	if ctx.Err() == nil {
		return nil
	}
	if cause := context.Cause(ctx); cause != nil {
		return cause
	}
	return ctx.Err()
}
