package resilience

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// FaultKind enumerates the runtime faults the injector can produce at a
// point: the four ways a real stage dies on a shared cluster.
type FaultKind int

const (
	// KindError makes the point return a typed error of the fault's
	// Class (fatal aborts, retryable exercises the retrier, degraded
	// quarantines the unit).
	KindError FaultKind = iota
	// KindPanic makes the point panic, exercising the recover paths.
	KindPanic
	// KindStall makes the point sleep for Stall on the injector's clock,
	// exercising stage deadlines (under a budget the stall surfaces as
	// context.DeadlineExceeded; without one it just delays).
	KindStall
	// KindCancel cancels the run's armed cancel function, simulating the
	// caller killing the run at exactly this point.
	KindCancel
)

// String names the kind in schedule syntax.
func (k FaultKind) String() string {
	switch k {
	case KindError:
		return "error"
	case KindPanic:
		return "panic"
	case KindStall:
		return "stall"
	case KindCancel:
		return "cancel"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Fault schedules one fault at one hit of one injection point.
type Fault struct {
	// Point is the injection-point name, e.g. "fit" (stage entry) or
	// "fit:task:3" (the fourth fit task).
	Point string
	// Hit selects which invocation of the point fires the fault
	// (0-based): retried stages hit their points again, so Hit 0 can
	// model a transient failure that a retry survives.
	Hit int
	// Kind is what happens.
	Kind FaultKind
	// Class types the injected error for KindError (ignored otherwise).
	Class Class
	// Stall is the sleep for KindStall (ignored otherwise).
	Stall time.Duration
}

// String renders the fault in schedule syntax, the inverse of
// ParseSchedule.
func (f Fault) String() string {
	s := fmt.Sprintf("%s@%d=", f.Point, f.Hit)
	switch f.Kind {
	case KindError:
		if f.Class == ClassFatal {
			return s + "error"
		}
		return s + f.Class.String()
	case KindStall:
		return s + "stall:" + f.Stall.String()
	default:
		return s + f.Kind.String()
	}
}

// Injector fires scheduled faults at named points of a run. The schedule
// is immutable after construction and hit counting is the only state, so
// fault behaviour is a deterministic function of (schedule, sequence of
// At calls) — a schedule that broke a run once breaks it identically
// forever, like an EDCHECK_SEED recipe. A nil *Injector is a valid no-op,
// which is how production runs pay nothing for the hook.
type Injector struct {
	mu     sync.Mutex
	clock  Clock
	faults []Fault
	hits   map[string]int
	fired  []string
	cancel context.CancelCauseFunc
}

// NewInjector builds an injector over the schedule. clock paces injected
// stalls; nil means the wall clock.
func NewInjector(clock Clock, schedule ...Fault) *Injector {
	if clock == nil {
		clock = WallClock{}
	}
	return &Injector{
		clock:  clock,
		faults: append([]Fault(nil), schedule...),
		hits:   make(map[string]int),
	}
}

// Arm registers the run's cancel function, the target of KindCancel
// faults. Safe on a nil injector.
func (in *Injector) Arm(cancel context.CancelCauseFunc) {
	if in == nil {
		return
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	in.cancel = cancel
}

// At is the injection hook: stages and tasks call it with their point
// name. It counts the hit, fires a scheduled fault if one matches, and
// observes ctx — a point never outlives its context silently, which is
// how "observe cancellation at chosen points" is enforced even with an
// empty schedule. Safe (and free) on a nil injector except for the
// context check.
func (in *Injector) At(ctx context.Context, point string) error {
	if in == nil {
		return CauseOrErr(ctx)
	}
	if err := CauseOrErr(ctx); err != nil {
		return err
	}
	fault, clock, cancel, hit := in.match(point)
	if fault == nil {
		return nil
	}
	switch fault.Kind {
	case KindError:
		return Errorf(fault.Class, point, "injected %s fault (hit %d)", fault.Class, hit)
	case KindPanic:
		//edlint:ignore libpanic the fault IS the panic: KindPanic exists to exercise callers' recover paths
		panic(fmt.Sprintf("resilience: injected panic at %s (hit %d)", point, hit))
	case KindStall:
		if err := clock.Sleep(ctx, fault.Stall); err != nil {
			return err
		}
		return CauseOrErr(ctx)
	case KindCancel:
		if cancel != nil {
			cancel(context.Canceled)
		}
		return CauseOrErr(ctx)
	default:
		return Errorf(ClassFatal, point, "unknown fault kind %d", int(fault.Kind))
	}
}

// match counts the point's hit and, when a fault is scheduled for it,
// marks it fired and returns it with the clock and armed cancel captured
// under the lock — the fault itself must execute unlocked (stalls sleep,
// panics unwind).
func (in *Injector) match(point string) (*Fault, Clock, context.CancelCauseFunc, int) {
	in.mu.Lock()
	defer in.mu.Unlock()
	hit := in.hits[point]
	in.hits[point] = hit + 1
	for i := range in.faults {
		if in.faults[i].Point == point && in.faults[i].Hit == hit {
			in.fired = append(in.fired, in.faults[i].String())
			return &in.faults[i], in.clock, in.cancel, hit
		}
	}
	return nil, nil, nil, hit
}

// Fired returns the faults that actually fired, in sorted schedule
// syntax (sorted because concurrent tasks may hit points in any order).
func (in *Injector) Fired() []string {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	out := append([]string(nil), in.fired...)
	sort.Strings(out)
	return out
}

// ParseSchedule parses the EDFAULT_SCHEDULE syntax: semicolon-separated
// `point@hit=kind` entries where kind is one of
//
//	error            fatal-class error
//	retryable        retryable-class error
//	degraded         degraded-class error
//	panic            panic at the point
//	stall:<duration> sleep, e.g. stall:2s
//	cancel           cancel the armed run context
//
// Example: "fit:task:3@0=panic;ingest@1=retryable;fit@0=stall:500ms".
func ParseSchedule(s string) ([]Fault, error) {
	var out []Fault
	for _, entry := range strings.Split(s, ";") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		at := strings.LastIndex(entry, "@")
		eq := strings.Index(entry, "=")
		if at < 0 || eq < at {
			return nil, fmt.Errorf("resilience: bad schedule entry %q (want point@hit=kind)", entry)
		}
		f := Fault{Point: entry[:at]}
		if f.Point == "" {
			return nil, fmt.Errorf("resilience: empty point in schedule entry %q", entry)
		}
		hit, err := strconv.Atoi(entry[at+1 : eq])
		if err != nil || hit < 0 {
			return nil, fmt.Errorf("resilience: bad hit count in schedule entry %q", entry)
		}
		f.Hit = hit
		kind := entry[eq+1:]
		switch {
		case kind == "error":
			f.Kind, f.Class = KindError, ClassFatal
		case kind == "retryable":
			f.Kind, f.Class = KindError, ClassRetryable
		case kind == "degraded":
			f.Kind, f.Class = KindError, ClassDegraded
		case kind == "panic":
			f.Kind = KindPanic
		case kind == "cancel":
			f.Kind = KindCancel
		case strings.HasPrefix(kind, "stall:"):
			d, err := time.ParseDuration(kind[len("stall:"):])
			if err != nil || d < 0 {
				return nil, fmt.Errorf("resilience: bad stall duration in schedule entry %q", entry)
			}
			f.Kind, f.Stall = KindStall, d
		default:
			return nil, fmt.Errorf("resilience: unknown fault kind %q in schedule entry %q", kind, entry)
		}
		out = append(out, f)
	}
	return out, nil
}

// FormatSchedule renders a schedule back to the EDFAULT_SCHEDULE syntax,
// so a failing generated schedule prints as a ready-to-paste replay.
func FormatSchedule(schedule []Fault) string {
	parts := make([]string, len(schedule))
	for i, f := range schedule {
		parts[i] = f.String()
	}
	return strings.Join(parts, ";")
}

// ScheduleFromSeed derives a deterministic pseudo-random schedule of up
// to maxFaults faults over the given points: the EDFAULT_SEED knob. The
// derivation uses the same SplitMix64 mixer as the retry jitter — no
// randomness source — so a seed names one schedule forever.
func ScheduleFromSeed(seed int64, points []string, maxFaults int) []Fault {
	if maxFaults <= 0 || len(points) == 0 {
		return nil
	}
	draw := func(i int, n uint64) uint64 {
		if n == 0 {
			return 0
		}
		return splitmix64(uint64(seed)^(uint64(i)+1)*0x9e3779b97f4a7c15) % n
	}
	n := 1 + int(draw(0, uint64(maxFaults)))
	out := make([]Fault, 0, n)
	for i := 1; i <= n; i++ {
		f := Fault{
			Point: points[draw(4*i, uint64(len(points)))],
			Hit:   int(draw(4*i+1, 2)),
		}
		switch draw(4*i+2, 4) {
		case 0:
			f.Kind = KindError
			f.Class = Class(draw(4*i+3, 3))
		case 1:
			f.Kind = KindPanic
		case 2:
			f.Kind = KindStall
			f.Stall = time.Duration(1+draw(4*i+3, 2000)) * time.Millisecond
		case 3:
			f.Kind = KindCancel
		}
		out = append(out, f)
	}
	return out
}
