package resilience

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"extradeep/internal/propcheck"
)

func TestEnvelopeRoundTrip(t *testing.T) {
	for _, payload := range [][]byte{nil, {}, []byte("x"), []byte("hello\nworld\n"), bytes.Repeat([]byte{0}, 4096)} {
		enc := EncodeEnvelope(payload)
		got, err := DecodeEnvelope(enc)
		if err != nil {
			t.Fatalf("DecodeEnvelope: %v", err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("payload mutated: %q != %q", got, payload)
		}
	}
}

func TestEnvelopeDetectsDamage(t *testing.T) {
	enc := EncodeEnvelope([]byte("the quick brown fox"))
	// Truncation at every prefix length must fail, never mis-decode.
	for n := 0; n < len(enc); n++ {
		if _, err := DecodeEnvelope(enc[:n]); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("truncation to %d bytes: err = %v, want ErrCorrupt", n, err)
		}
	}
	// A single bit flip anywhere must fail.
	for i := 0; i < len(enc); i++ {
		bad := append([]byte(nil), enc...)
		bad[i] ^= 0x40
		if _, err := DecodeEnvelope(bad); err == nil {
			t.Fatalf("bit flip at byte %d decoded successfully", i)
		}
	}
}

func TestKeyIsLengthPrefixed(t *testing.T) {
	if Key([]byte("ab"), []byte("c")) == Key([]byte("a"), []byte("bc")) {
		t.Fatal("part boundaries do not affect the key")
	}
	if Key([]byte("x")) != Key([]byte("x")) {
		t.Fatal("key not deterministic")
	}
}

func TestStorePutGet(t *testing.T) {
	s := &Store{Dir: t.TempDir()}
	key := Key([]byte("task"))
	if _, ok := s.Get(key); ok {
		t.Fatal("hit on empty store")
	}
	if err := s.Put(key, []byte("payload")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	got, ok := s.Get(key)
	if !ok || string(got) != "payload" {
		t.Fatalf("Get = %q, %v", got, ok)
	}
	// Overwrite is atomic and last-write-wins.
	if err := s.Put(key, []byte("payload v2")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if got, _ := s.Get(key); string(got) != "payload v2" {
		t.Fatalf("Get after overwrite = %q", got)
	}
	// No temp litter left behind.
	entries, err := os.ReadDir(s.Dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.Name() != key+".ckpt" {
			t.Fatalf("unexpected file %s in store dir", e.Name())
		}
	}
}

func TestStoreCorruptRecordIsMiss(t *testing.T) {
	s := &Store{Dir: t.TempDir()}
	key := Key([]byte("task"))
	if err := s.Put(key, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(s.Dir, key+".ckpt")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0x01
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(key); ok {
		t.Fatal("corrupt record returned a hit")
	}
}

func TestNilStoreIsNoOp(t *testing.T) {
	var s *Store
	if err := s.Put("k", []byte("v")); err != nil {
		t.Fatalf("nil Put: %v", err)
	}
	if _, ok := s.Get("k"); ok {
		t.Fatal("nil Get hit")
	}
	if _, ok := LoadState(s, "k"); ok {
		t.Fatal("nil LoadState hit")
	}
}

func TestEncodeStateRejectsDuplicates(t *testing.T) {
	st := &CampaignState{
		Campaign: "c",
		Tasks: []TaskRecord{
			{Key: "k1", Name: "a", Status: StatusFitted},
			{Key: "k1", Name: "b", Status: StatusFitted},
		},
	}
	if _, err := EncodeState(st); err == nil {
		t.Fatal("duplicate task keys encoded successfully")
	}
}

func TestDecodeStateValidates(t *testing.T) {
	mk := func(mut func(*CampaignState)) []byte {
		st := &CampaignState{
			Version:  StateVersion,
			Campaign: "c",
			Tasks: []TaskRecord{
				{Key: "a", Name: "t0", Status: StatusFitted, Payload: []byte("m")},
				{Key: "b", Name: "t1", Status: StatusSkipped, Class: "panic", Reason: "boom"},
			},
		}
		mut(st)
		// Bypass EncodeState's normalization to exercise DecodeState.
		payload, err := jsonMarshalState(st)
		if err != nil {
			t.Fatal(err)
		}
		return EncodeEnvelope(payload)
	}
	if _, err := DecodeState(mk(func(*CampaignState) {})); err != nil {
		t.Fatalf("valid state rejected: %v", err)
	}
	for name, mut := range map[string]func(*CampaignState){
		"bad version":    func(st *CampaignState) { st.Version = 99 },
		"unsorted tasks": func(st *CampaignState) { st.Tasks[0], st.Tasks[1] = st.Tasks[1], st.Tasks[0] },
		"empty key":      func(st *CampaignState) { st.Tasks[0].Key = "" },
		"bad status":     func(st *CampaignState) { st.Tasks[1].Status = "maybe" },
	} {
		if _, err := DecodeState(mk(mut)); err == nil {
			t.Errorf("%s: decoded successfully", name)
		}
	}
}

// jsonMarshalState mirrors EncodeState's serialization without its
// normalization, so tests can build deliberately invalid records.
func jsonMarshalState(st *CampaignState) ([]byte, error) {
	return json.MarshalIndent(st, "", " ")
}

func TestSaveLoadState(t *testing.T) {
	s := &Store{Dir: t.TempDir()}
	st := &CampaignState{
		Campaign:   Key([]byte("campaign")),
		Aggregates: []byte(`{"medians":true}`),
		Tasks: []TaskRecord{
			{Key: Key([]byte("t1")), Name: "time kern/a", Status: StatusFitted, Payload: []byte(`{"f":1}`)},
			{Key: Key([]byte("t2")), Name: "time kern/b", Status: StatusSkipped, Class: "panic", Reason: "injected"},
		},
	}
	if err := SaveState(s, st); err != nil {
		t.Fatalf("SaveState: %v", err)
	}
	got, ok := LoadState(s, st.Campaign)
	if !ok {
		t.Fatal("LoadState missed")
	}
	if got.Campaign != st.Campaign || len(got.Tasks) != 2 {
		t.Fatalf("LoadState = %+v", got)
	}
	// A record stored under a mismatched campaign key is a miss.
	other := Key([]byte("other"))
	if err := s.putRaw(other, mustEncodeState(t, st)); err != nil {
		t.Fatal(err)
	}
	if _, ok := LoadState(s, other); ok {
		t.Fatal("state with mismatched campaign key loaded")
	}
}

func mustEncodeState(t *testing.T, st *CampaignState) []byte {
	t.Helper()
	data, err := EncodeState(st)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// genState generates arbitrary well-formed campaign states, unsorted on
// purpose: EncodeState must canonicalize them.
func genState() propcheck.Gen[*CampaignState] {
	return propcheck.Gen[*CampaignState]{
		Generate: func(r *propcheck.Rand) *CampaignState {
			n := r.IntRange(0, 8)
			st := &CampaignState{
				Campaign: fmt.Sprintf("%064x", r.Int64Range(0, 1<<50)),
			}
			if r.Bool() {
				st.Aggregates = randBytes(r, 64)
			}
			seen := map[string]bool{}
			for i := 0; i < n; i++ {
				key := fmt.Sprintf("%064x", r.Int64Range(0, 1<<50))
				if seen[key] {
					continue
				}
				seen[key] = true
				tr := TaskRecord{Key: key, Name: fmt.Sprintf("metric kern/%d", i)}
				if r.Bool() {
					tr.Status = StatusFitted
					tr.Payload = randBytes(r, 128)
				} else {
					tr.Status = StatusSkipped
					tr.Class = []string{"panic", "degraded", "unmodelable"}[r.Intn(3)]
					tr.Reason = "injected failure"
				}
				st.Tasks = append(st.Tasks, tr)
			}
			return st
		},
		Describe: func(st *CampaignState) string {
			return fmt.Sprintf("campaign=%s tasks=%d", st.Campaign, len(st.Tasks))
		},
	}
}

func randBytes(r *propcheck.Rand, maxLen int) []byte {
	b := make([]byte, r.IntRange(1, maxLen))
	for i := range b {
		b[i] = byte(r.Intn(256))
	}
	return b
}

// TestPropCheckpointRoundTrip is the satellite's core property:
// encode → decode → encode is byte-identical for arbitrary states, and a
// truncated or bit-flipped record is always detected and recovered to a
// miss, never a partial resume.
func TestPropCheckpointRoundTrip(t *testing.T) {
	propcheck.Check(t, genState(), func(st *CampaignState) error {
		enc1, err := EncodeState(st)
		if err != nil {
			return fmt.Errorf("encode: %w", err)
		}
		dec, err := DecodeState(enc1)
		if err != nil {
			return fmt.Errorf("decode: %w", err)
		}
		enc2, err := EncodeState(dec)
		if err != nil {
			return fmt.Errorf("re-encode: %w", err)
		}
		if !bytes.Equal(enc1, enc2) {
			return errors.New("encode→decode→encode not byte-identical")
		}
		// Damage detection: truncate at a third and two-thirds, flip one
		// payload bit; all three must recover to a miss through the store.
		s := &Store{Dir: t.TempDir()}
		key := dec.Campaign
		for i, damage := range [][]byte{
			enc1[:len(enc1)/3],
			enc1[:2*len(enc1)/3],
			flipBit(enc1, len(enc1)-1),
		} {
			if err := s.putRaw(key, damage); err != nil {
				return err
			}
			if _, ok := LoadState(s, key); ok {
				return fmt.Errorf("damaged record %d loaded", i)
			}
		}
		return nil
	})
}

func flipBit(b []byte, i int) []byte {
	out := append([]byte(nil), b...)
	out[i] ^= 0x10
	return out
}
