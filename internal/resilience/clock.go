package resilience

import (
	"context"
	"sort"
	"sync"
	"time"
)

// Clock abstracts the passage of time for retries, stage deadlines and
// injected stalls, so the whole resilience layer is deterministic under a
// FakeClock in tests while production uses the wall clock.
type Clock interface {
	// Sleep blocks for d or until ctx is done, returning the context's
	// cause in the latter case and nil otherwise.
	Sleep(ctx context.Context, d time.Duration) error
	// WithTimeout derives a context that is cancelled with
	// context.DeadlineExceeded after d of this clock's time.
	WithTimeout(ctx context.Context, d time.Duration) (context.Context, context.CancelFunc)
}

// WallClock is the production clock. Its only clock interaction is the
// timer-based sleep below; it never exposes absolute time, so no
// timestamp can leak into model state or serialized output.
type WallClock struct{}

// Sleep implements Clock using a real timer.
func (WallClock) Sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return CauseOrErr(ctx)
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return CauseOrErr(ctx)
	case <-t.C:
		return nil
	}
}

// WithTimeout implements Clock via context.WithTimeout.
func (WallClock) WithTimeout(ctx context.Context, d time.Duration) (context.Context, context.CancelFunc) {
	return context.WithTimeout(ctx, d)
}

// FakeClock is a manual clock for deterministic tests: Sleep advances a
// virtual now instantly and fires every timeout context whose deadline
// has passed, so stalls, deadlines and backoff schedules run in
// microseconds and always the same way. It is safe for concurrent use
// (worker-pool tasks may sleep in parallel).
type FakeClock struct {
	mu      sync.Mutex
	now     time.Duration
	slept   []time.Duration
	nextID  int
	pending map[int]*fakeTimeout
}

type fakeTimeout struct {
	deadline time.Duration
	cancel   context.CancelCauseFunc
}

// NewFakeClock returns a fake clock starting at virtual time zero.
func NewFakeClock() *FakeClock {
	return &FakeClock{pending: make(map[int]*fakeTimeout)}
}

// Sleep implements Clock: it advances virtual time by d, expires any
// timeout contexts the advance passed, and reports ctx's cause if ctx
// ended (before or because of the advance).
func (c *FakeClock) Sleep(ctx context.Context, d time.Duration) error {
	if err := CauseOrErr(ctx); err != nil {
		return err
	}
	c.advance(d)
	return CauseOrErr(ctx)
}

// advance moves virtual time forward and fires passed deadlines.
func (c *FakeClock) advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if d > 0 {
		c.now += d
		c.slept = append(c.slept, d)
	}
	c.expireLocked()
}

// expireLocked cancels every registered timeout whose deadline passed, in
// deadline order so nested budgets fire deterministically.
func (c *FakeClock) expireLocked() {
	var due []int
	for id, t := range c.pending {
		if t.deadline <= c.now {
			due = append(due, id)
		}
	}
	sort.Slice(due, func(i, j int) bool {
		if c.pending[due[i]].deadline != c.pending[due[j]].deadline {
			return c.pending[due[i]].deadline < c.pending[due[j]].deadline
		}
		return due[i] < due[j]
	})
	for _, id := range due {
		c.pending[id].cancel(context.DeadlineExceeded)
		delete(c.pending, id)
	}
}

// WithTimeout implements Clock: the returned context is cancelled with
// context.DeadlineExceeded once Sleep advances virtual time past d.
func (c *FakeClock) WithTimeout(ctx context.Context, d time.Duration) (context.Context, context.CancelFunc) {
	child, cancel := context.WithCancelCause(ctx)
	id := c.register(d, cancel)
	return child, func() {
		c.unregister(id)
		cancel(context.Canceled)
	}
}

// register enrolls a timeout deadline and returns its handle; a d ≤ 0
// deadline fires immediately.
func (c *FakeClock) register(d time.Duration, cancel context.CancelCauseFunc) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	id := c.nextID
	c.nextID++
	c.pending[id] = &fakeTimeout{deadline: c.now + d, cancel: cancel}
	if d <= 0 {
		c.expireLocked()
	}
	return id
}

// unregister withdraws a timeout that was cancelled before it fired.
func (c *FakeClock) unregister(id int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.pending, id)
}

// Slept returns the sequence of sleep durations observed so far — the
// backoff schedule a test asserts on.
func (c *FakeClock) Slept() []time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]time.Duration(nil), c.slept...)
}

// Now returns the current virtual time.
func (c *FakeClock) Now() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}
