package resilience

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"
	"time"

	"extradeep/internal/propcheck"
)

func TestNilInjectorObservesContext(t *testing.T) {
	var in *Injector
	if err := in.At(context.Background(), "fit"); err != nil {
		t.Fatalf("nil injector on live context: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := in.At(ctx, "fit"); !errors.Is(err, context.Canceled) {
		t.Fatalf("nil injector on dead context = %v, want Canceled", err)
	}
}

func TestInjectorFiresOnScheduledHit(t *testing.T) {
	in := NewInjector(NewFakeClock(),
		Fault{Point: "fit", Hit: 1, Kind: KindError, Class: ClassRetryable})
	if err := in.At(context.Background(), "fit"); err != nil {
		t.Fatalf("hit 0 fired early: %v", err)
	}
	err := in.At(context.Background(), "fit")
	if !IsRetryable(err) {
		t.Fatalf("hit 1 = %v, want retryable injected error", err)
	}
	if err := in.At(context.Background(), "fit"); err != nil {
		t.Fatalf("hit 2 fired again: %v", err)
	}
	if got := in.Fired(); !reflect.DeepEqual(got, []string{"fit@1=retryable"}) {
		t.Fatalf("Fired = %v", got)
	}
}

func TestInjectorPanicKind(t *testing.T) {
	in := NewInjector(NewFakeClock(), Fault{Point: "fit:task:2", Kind: KindPanic})
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("no panic")
		}
		if !strings.Contains(r.(string), "fit:task:2") {
			t.Fatalf("panic %q does not name the point", r)
		}
	}()
	_ = in.At(context.Background(), "fit:task:2")
}

func TestInjectorStallRespectsDeadline(t *testing.T) {
	clock := NewFakeClock()
	in := NewInjector(clock, Fault{Point: "fit", Kind: KindStall, Stall: time.Minute})
	ctx, cancel := clock.WithTimeout(context.Background(), time.Second)
	defer cancel()
	err := in.At(ctx, "fit")
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("stall past deadline = %v, want DeadlineExceeded", err)
	}
	if clock.Now() != time.Minute {
		t.Fatalf("virtual time = %v, want the full stall", clock.Now())
	}
}

func TestInjectorCancelKind(t *testing.T) {
	in := NewInjector(NewFakeClock(), Fault{Point: "aggregate", Kind: KindCancel})
	ctx, cancel := context.WithCancelCause(context.Background())
	in.Arm(cancel)
	err := in.At(ctx, "aggregate")
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancel fault = %v, want Canceled", err)
	}
	if ctx.Err() == nil {
		t.Fatal("run context survived a cancel fault")
	}
}

func TestParseScheduleRoundTrip(t *testing.T) {
	const s = "fit:task:3@0=panic;ingest@1=retryable;fit@0=stall:500ms;report@2=degraded;aggregate@0=cancel;epoch@1=error"
	sched, err := ParseSchedule(s)
	if err != nil {
		t.Fatalf("ParseSchedule: %v", err)
	}
	if got := FormatSchedule(sched); got != s {
		t.Fatalf("round trip:\n got %s\nwant %s", got, s)
	}
}

func TestParseScheduleRejectsMalformed(t *testing.T) {
	for _, bad := range []string{
		"fit",          // no @hit=kind
		"fit@x=error",  // non-numeric hit
		"fit@-1=error", // negative hit
		"@0=error",     // empty point
		"fit@0=maybe",  // unknown kind
		"fit@0=stall:", // empty duration
		"fit@0=stall:-1s",
	} {
		if _, err := ParseSchedule(bad); err == nil {
			t.Errorf("ParseSchedule(%q) succeeded", bad)
		}
	}
	// Empty entries are tolerated (trailing semicolons).
	if sched, err := ParseSchedule(" ; ;"); err != nil || len(sched) != 0 {
		t.Fatalf("blank schedule: %v, %v", sched, err)
	}
}

func TestScheduleFromSeedDeterministic(t *testing.T) {
	points := []string{"ingest", "aggregate", "epoch", "fit", "analyze", "report"}
	a := ScheduleFromSeed(42, points, 4)
	b := ScheduleFromSeed(42, points, 4)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different schedules")
	}
	if len(a) == 0 || len(a) > 4 {
		t.Fatalf("schedule size %d outside (0, 4]", len(a))
	}
	if ScheduleFromSeed(42, nil, 4) != nil || ScheduleFromSeed(42, points, 0) != nil {
		t.Fatal("degenerate inputs produced a schedule")
	}
}

// TestPropScheduleSyntaxRoundTrip: every generated schedule survives
// Format → Parse → Format byte-identically, so EDFAULT_SCHEDULE strings
// printed by failure reports are always valid replays.
func TestPropScheduleSyntaxRoundTrip(t *testing.T) {
	points := []string{"ingest", "aggregate", "epoch", "fit", "analyze", "report", "fit:task:0", "fit:task:7"}
	gen := propcheck.Gen[[]Fault]{
		Generate: func(r *propcheck.Rand) []Fault {
			n := r.IntRange(0, 6)
			out := make([]Fault, n)
			for i := range out {
				out[i] = Fault{
					Point: points[r.Intn(len(points))],
					Hit:   r.IntRange(0, 3),
				}
				switch r.Intn(4) {
				case 0:
					out[i].Kind = KindError
					out[i].Class = Class(r.Intn(3))
				case 1:
					out[i].Kind = KindPanic
				case 2:
					out[i].Kind = KindStall
					out[i].Stall = time.Duration(r.IntRange(1, 5000)) * time.Millisecond
				case 3:
					out[i].Kind = KindCancel
				}
			}
			return out
		},
		Describe: func(s []Fault) string { return FormatSchedule(s) },
	}
	propcheck.Check(t, gen, func(sched []Fault) error {
		text := FormatSchedule(sched)
		parsed, err := ParseSchedule(text)
		if err != nil {
			return err
		}
		if got := FormatSchedule(parsed); got != text {
			return errors.New("schedule did not round-trip: " + got)
		}
		return nil
	})
}

// TestPropInjectorReplayIdentical: driving two injectors built from the
// same schedule through the same At sequence yields identical error
// sequences and identical Fired sets — the determinism contract that
// makes a schedule a replayable chaos recipe.
func TestPropInjectorReplayIdentical(t *testing.T) {
	points := []string{"ingest", "aggregate", "fit", "fit:task:0", "fit:task:1", "report"}
	type tc struct {
		Seed  int64
		Calls []string
	}
	gen := propcheck.Gen[tc]{
		Generate: func(r *propcheck.Rand) tc {
			n := r.IntRange(1, 20)
			calls := make([]string, n)
			for i := range calls {
				calls[i] = points[r.Intn(len(points))]
			}
			return tc{Seed: r.Int64Range(0, 1<<40), Calls: calls}
		},
	}
	propcheck.Check(t, gen, func(c tc) error {
		// Panics and stalls would need recover/clock plumbing in the
		// driver; restrict the replay property to error/cancel faults.
		var sched []Fault
		for _, f := range ScheduleFromSeed(c.Seed, points, 4) {
			if f.Kind == KindError || f.Kind == KindCancel {
				sched = append(sched, f)
			}
		}
		run := func() ([]string, []string) {
			ctx, cancel := context.WithCancelCause(context.Background())
			defer cancel(nil)
			in := NewInjector(NewFakeClock(), sched...)
			in.Arm(cancel)
			var errs []string
			for _, p := range c.Calls {
				if err := in.At(ctx, p); err != nil {
					errs = append(errs, err.Error())
				}
			}
			return errs, in.Fired()
		}
		e1, f1 := run()
		e2, f2 := run()
		if !reflect.DeepEqual(e1, e2) || !reflect.DeepEqual(f1, f2) {
			return errors.New("replay diverged for schedule " + FormatSchedule(sched))
		}
		return nil
	})
}
