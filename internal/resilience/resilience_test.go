package resilience

import (
	"context"
	"errors"
	"fmt"
	"testing"
)

func TestClassStringParseRoundTrip(t *testing.T) {
	for _, c := range []Class{ClassFatal, ClassRetryable, ClassDegraded} {
		got, err := ParseClass(c.String())
		if err != nil {
			t.Fatalf("ParseClass(%q): %v", c.String(), err)
		}
		if got != c {
			t.Fatalf("ParseClass(%q) = %v, want %v", c.String(), got, c)
		}
	}
	if _, err := ParseClass("bogus"); err == nil {
		t.Fatal("ParseClass(bogus) succeeded")
	}
}

func TestWrapAndClassOf(t *testing.T) {
	if Wrap(ClassRetryable, "fit", nil) != nil {
		t.Fatal("Wrap(nil) != nil")
	}
	base := errors.New("disk sneezed")
	wrapped := Wrap(ClassRetryable, "ingest", base)
	if ClassOf(wrapped) != ClassRetryable {
		t.Fatalf("ClassOf(wrapped) = %v", ClassOf(wrapped))
	}
	if !errors.Is(wrapped, base) {
		t.Fatal("wrapped error lost its cause")
	}
	// Re-wrapping must not override an existing class.
	rewrapped := Wrap(ClassFatal, "fit", wrapped)
	if ClassOf(rewrapped) != ClassRetryable {
		t.Fatalf("re-wrap changed class to %v", ClassOf(rewrapped))
	}
	// fmt-wrapped typed errors still answer through errors.As.
	nested := fmt.Errorf("outer: %w", Errorf(ClassDegraded, "fit:task:2", "singular matrix"))
	if !IsDegraded(nested) {
		t.Fatal("IsDegraded lost through fmt wrapping")
	}
	if ClassOf(errors.New("plain")) != ClassFatal {
		t.Fatal("unclassified error is not fatal by default")
	}
	if IsRetryable(nil) || IsDegraded(nil) {
		t.Fatal("nil error classified")
	}
}

func TestErrorMessageNamesStageAndClass(t *testing.T) {
	err := Errorf(ClassDegraded, "fit:task:7", "fit refused to converge")
	msg := err.Error()
	for _, want := range []string{"fit:task:7", "degraded", "fit refused to converge"} {
		if !contains(msg, want) {
			t.Fatalf("error message %q missing %q", msg, want)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func TestCauseOrErr(t *testing.T) {
	if err := CauseOrErr(context.Background()); err != nil {
		t.Fatalf("live context has cause %v", err)
	}
	ctx, cancel := context.WithCancelCause(context.Background())
	cancel(context.DeadlineExceeded)
	if err := CauseOrErr(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("CauseOrErr = %v, want DeadlineExceeded cause", err)
	}
	plain, stop := context.WithCancel(context.Background())
	stop()
	if err := CauseOrErr(plain); !errors.Is(err, context.Canceled) {
		t.Fatalf("CauseOrErr = %v, want Canceled", err)
	}
}
