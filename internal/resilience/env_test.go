package resilience

import (
	"reflect"
	"testing"
)

func TestScheduleFromEnv(t *testing.T) {
	points := []string{"ingest", "fit", "report"}

	t.Run("neither set", func(t *testing.T) {
		t.Setenv(ScheduleEnv, "")
		t.Setenv(SeedEnv, "")
		sched, err := ScheduleFromEnv(points)
		if err != nil || sched != nil {
			t.Fatalf("got %v, %v; want nil, nil", sched, err)
		}
	})

	t.Run("explicit schedule wins over seed", func(t *testing.T) {
		t.Setenv(ScheduleEnv, "fit@0=panic")
		t.Setenv(SeedEnv, "42")
		sched, err := ScheduleFromEnv(points)
		if err != nil {
			t.Fatal(err)
		}
		want := []Fault{{Point: "fit", Hit: 0, Kind: KindPanic}}
		if !reflect.DeepEqual(sched, want) {
			t.Fatalf("got %v, want %v", sched, want)
		}
	})

	t.Run("seed derives deterministically", func(t *testing.T) {
		t.Setenv(ScheduleEnv, "")
		t.Setenv(SeedEnv, "42")
		a, err := ScheduleFromEnv(points)
		if err != nil {
			t.Fatal(err)
		}
		b, err := ScheduleFromEnv(points)
		if err != nil {
			t.Fatal(err)
		}
		if len(a) == 0 || !reflect.DeepEqual(a, b) {
			t.Fatalf("seed schedule not deterministic: %v vs %v", a, b)
		}
	})

	t.Run("invalid values error", func(t *testing.T) {
		t.Setenv(ScheduleEnv, "fit@0=maybe")
		if _, err := ScheduleFromEnv(points); err == nil {
			t.Fatal("bad schedule accepted")
		}
		t.Setenv(ScheduleEnv, "")
		t.Setenv(SeedEnv, "not-a-number")
		if _, err := ScheduleFromEnv(points); err == nil {
			t.Fatal("bad seed accepted")
		}
	})
}
