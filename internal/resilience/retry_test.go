package resilience

import (
	"context"
	"errors"
	"testing"
	"time"

	"extradeep/internal/propcheck"
)

func TestBackoffGrowthAndCap(t *testing.T) {
	p := RetryPolicy{BaseDelay: 100 * time.Millisecond, MaxDelay: time.Second, Multiplier: 2, Seed: 1}
	prev := time.Duration(0)
	for attempt := 0; attempt < 10; attempt++ {
		d := p.Backoff(attempt)
		if d <= 0 {
			t.Fatalf("attempt %d: non-positive backoff %v", attempt, d)
		}
		if d > p.MaxDelay {
			t.Fatalf("attempt %d: backoff %v above cap %v", attempt, d, p.MaxDelay)
		}
		_ = prev
		prev = d
	}
	// Once the exponential is capped, jitter keeps the delay in
	// [MaxDelay/2, MaxDelay).
	if d := p.Backoff(30); d < p.MaxDelay/2 || d >= p.MaxDelay {
		t.Fatalf("capped backoff %v outside [%v, %v)", d, p.MaxDelay/2, p.MaxDelay)
	}
}

// TestPropBackoffDeterministic pins the jitter contract: the schedule is
// a pure function of (policy, attempt), bounded by [delay/2, delay), and
// distinct seeds actually decorrelate.
func TestPropBackoffDeterministic(t *testing.T) {
	type tc struct {
		Seed    int64
		Attempt int
	}
	gen := propcheck.Gen[tc]{
		Generate: func(r *propcheck.Rand) tc {
			return tc{Seed: r.Int64Range(0, 1<<40), Attempt: r.IntRange(0, 40)}
		},
	}
	propcheck.Check(t, gen, func(c tc) error {
		p := RetryPolicy{BaseDelay: 50 * time.Millisecond, MaxDelay: 10 * time.Second, Multiplier: 2, Seed: c.Seed}
		d1 := p.Backoff(c.Attempt)
		d2 := p.Backoff(c.Attempt)
		if d1 != d2 {
			return errors.New("backoff not deterministic for identical inputs")
		}
		// Recompute the pre-jitter envelope and check the jitter bounds.
		raw := float64(50 * time.Millisecond)
		for i := 0; i < c.Attempt; i++ {
			raw *= 2
			if raw >= float64(10*time.Second) {
				raw = float64(10 * time.Second)
				break
			}
		}
		if float64(d1) < raw/2 || float64(d1) >= raw {
			return errors.New("backoff outside the [delay/2, delay) jitter window")
		}
		return nil
	})
}

func TestRetrierRetriesOnlyRetryable(t *testing.T) {
	clock := NewFakeClock()
	r := &Retrier{Policy: RetryPolicy{MaxAttempts: 3, BaseDelay: 10 * time.Millisecond}, Clock: clock}

	calls := 0
	err := r.Do(context.Background(), "fit", func(context.Context) error {
		calls++
		if calls < 3 {
			return Errorf(ClassRetryable, "fit", "transient %d", calls)
		}
		return nil
	})
	if err != nil || calls != 3 {
		t.Fatalf("retryable run: err=%v calls=%d", err, calls)
	}
	if len(clock.Slept()) != 2 {
		t.Fatalf("slept %v times, want 2 backoffs", len(clock.Slept()))
	}

	calls = 0
	err = r.Do(context.Background(), "fit", func(context.Context) error {
		calls++
		return Errorf(ClassFatal, "fit", "broken input")
	})
	if calls != 1 || ClassOf(err) != ClassFatal {
		t.Fatalf("fatal run: calls=%d err=%v", calls, err)
	}

	calls = 0
	err = r.Do(context.Background(), "fit", func(context.Context) error {
		calls++
		return Errorf(ClassDegraded, "fit", "quarantine me")
	})
	if calls != 1 || !IsDegraded(err) {
		t.Fatalf("degraded run: calls=%d err=%v", calls, err)
	}
}

func TestRetrierExhaustsBudget(t *testing.T) {
	clock := NewFakeClock()
	r := &Retrier{Policy: RetryPolicy{MaxAttempts: 4, BaseDelay: time.Millisecond}, Clock: clock}
	calls := 0
	err := r.Do(context.Background(), "ingest", func(context.Context) error {
		calls++
		return Errorf(ClassRetryable, "ingest", "still flaky")
	})
	if calls != 4 {
		t.Fatalf("calls = %d, want 4", calls)
	}
	if !IsRetryable(err) {
		t.Fatalf("exhausted retrier returned %v, want the last retryable error", err)
	}
	if len(clock.Slept()) != 3 {
		t.Fatalf("slept %d times, want 3", len(clock.Slept()))
	}
}

func TestRetrierStopsOnContextCancel(t *testing.T) {
	clock := NewFakeClock()
	r := &Retrier{Policy: RetryPolicy{MaxAttempts: 5, BaseDelay: time.Millisecond}, Clock: clock}
	ctx, cancel := context.WithCancel(context.Background())
	calls := 0
	err := r.Do(ctx, "fit", func(context.Context) error {
		calls++
		cancel()
		return Errorf(ClassRetryable, "fit", "transient")
	})
	if calls != 1 {
		t.Fatalf("calls = %d, want 1 (cancelled during backoff)", calls)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want Canceled surfaced", err)
	}
	if ClassOf(err) != ClassFatal {
		t.Fatalf("cancellation classified %v, want fatal", ClassOf(err))
	}
}

func TestRetrierChecksContextBeforeFirstAttempt(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r := &Retrier{Clock: NewFakeClock()}
	calls := 0
	err := r.Do(ctx, "fit", func(context.Context) error { calls++; return nil })
	if calls != 0 {
		t.Fatalf("op ran %d times on a dead context", calls)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
}

// TestPropRetrySleepScheduleReplayable: with a fake clock, the observed
// sleep sequence for a given (seed, failure count) is identical across
// runs — the deterministic-backoff contract end to end through Do.
func TestPropRetrySleepScheduleReplayable(t *testing.T) {
	type tc struct {
		Seed     int64
		Failures int
	}
	gen := propcheck.Gen[tc]{
		Generate: func(r *propcheck.Rand) tc {
			return tc{Seed: r.Int64Range(0, 1<<40), Failures: r.IntRange(0, 5)}
		},
	}
	propcheck.Check(t, gen, func(c tc) error {
		run := func() []time.Duration {
			clock := NewFakeClock()
			r := &Retrier{
				Policy: RetryPolicy{MaxAttempts: 6, BaseDelay: 20 * time.Millisecond, Seed: c.Seed},
				Clock:  clock,
			}
			calls := 0
			_ = r.Do(context.Background(), "stage", func(context.Context) error {
				calls++
				if calls <= c.Failures {
					return Errorf(ClassRetryable, "stage", "flaky")
				}
				return nil
			})
			return clock.Slept()
		}
		a, b := run(), run()
		if len(a) != len(b) || len(a) != c.Failures {
			return errors.New("sleep count differs across identical runs")
		}
		for i := range a {
			if a[i] != b[i] {
				return errors.New("sleep schedule differs across identical runs")
			}
		}
		return nil
	})
}
