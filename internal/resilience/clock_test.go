package resilience

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

func TestWallClockSleepHonorsCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := (WallClock{}).Sleep(ctx, time.Hour); !errors.Is(err, context.Canceled) {
		t.Fatalf("Sleep on dead context = %v, want Canceled", err)
	}
	if err := (WallClock{}).Sleep(context.Background(), 0); err != nil {
		t.Fatalf("zero-duration Sleep = %v", err)
	}
}

func TestFakeClockSleepAdvancesAndRecords(t *testing.T) {
	c := NewFakeClock()
	if err := c.Sleep(context.Background(), 100*time.Millisecond); err != nil {
		t.Fatalf("Sleep: %v", err)
	}
	if err := c.Sleep(context.Background(), 250*time.Millisecond); err != nil {
		t.Fatalf("Sleep: %v", err)
	}
	if got := c.Now(); got != 350*time.Millisecond {
		t.Fatalf("Now = %v, want 350ms", got)
	}
	slept := c.Slept()
	if len(slept) != 2 || slept[0] != 100*time.Millisecond || slept[1] != 250*time.Millisecond {
		t.Fatalf("Slept = %v", slept)
	}
}

func TestFakeClockTimeoutExpiresOnAdvance(t *testing.T) {
	c := NewFakeClock()
	ctx, cancel := c.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if ctx.Err() != nil {
		t.Fatal("timeout context dead before any advance")
	}
	if err := c.Sleep(context.Background(), 999*time.Millisecond); err != nil {
		t.Fatalf("Sleep: %v", err)
	}
	if ctx.Err() != nil {
		t.Fatal("timeout fired before its deadline")
	}
	if err := c.Sleep(context.Background(), time.Millisecond); err != nil {
		t.Fatalf("Sleep: %v", err)
	}
	<-ctx.Done()
	if cause := context.Cause(ctx); !errors.Is(cause, context.DeadlineExceeded) {
		t.Fatalf("cause = %v, want DeadlineExceeded", cause)
	}
}

func TestFakeClockSleepOnTimeoutContextReportsDeadline(t *testing.T) {
	c := NewFakeClock()
	ctx, cancel := c.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	// The sleep itself blows the budget: the advance expires the context
	// and Sleep must surface the deadline cause.
	err := c.Sleep(ctx, time.Second)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Sleep past deadline = %v, want DeadlineExceeded", err)
	}
}

func TestFakeClockCancelBeforeDeadline(t *testing.T) {
	c := NewFakeClock()
	ctx, cancel := c.WithTimeout(context.Background(), time.Second)
	cancel()
	if cause := context.Cause(ctx); !errors.Is(cause, context.Canceled) {
		t.Fatalf("cause after manual cancel = %v, want Canceled", cause)
	}
	// The expired registration must be gone: advancing past the deadline
	// must not re-cancel with a different cause.
	if err := c.Sleep(context.Background(), 2*time.Second); err != nil {
		t.Fatalf("Sleep: %v", err)
	}
	if cause := context.Cause(ctx); !errors.Is(cause, context.Canceled) {
		t.Fatalf("cause flipped to %v after advance", cause)
	}
}

func TestFakeClockZeroTimeoutExpiresImmediately(t *testing.T) {
	c := NewFakeClock()
	ctx, cancel := c.WithTimeout(context.Background(), 0)
	defer cancel()
	<-ctx.Done()
	if cause := context.Cause(ctx); !errors.Is(cause, context.DeadlineExceeded) {
		t.Fatalf("cause = %v, want DeadlineExceeded", cause)
	}
}

func TestFakeClockConcurrentSleepers(t *testing.T) {
	c := NewFakeClock()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = c.Sleep(context.Background(), time.Millisecond)
		}()
	}
	wg.Wait()
	if got := c.Now(); got != 8*time.Millisecond {
		t.Fatalf("Now = %v, want 8ms", got)
	}
}
