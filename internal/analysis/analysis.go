// Package analysis implements the performance-analysis layer of Extra-Deep
// (Section 3 of the paper): training speedup models (Eqs. 11–12), parallel
// efficiency (Eq. 13), training cost in CPU core-hours (Eq. 14), bottleneck
// ranking by asymptotic growth, and the search for cost-effective training
// configurations under budget and time constraints (Fig. 4).
package analysis

import (
	"errors"
	"fmt"
	"sort"

	"extradeep/internal/measurement"
	"extradeep/internal/modeling"
	"extradeep/internal/pmnf"
)

// Speedups computes the paper's speedup metric Δ for a runtime function
// over the parameter-value series xs (Eq. 11): the percentage gain (or
// loss, negative) in runtime relative to the first point,
// Δ_Pk = (T₁−T_k)/(T₁/100). The first entry is always 0.
func Speedups(runtime *pmnf.Function, xs []float64) ([]float64, error) {
	if len(xs) == 0 {
		return nil, errors.New("analysis: empty parameter series")
	}
	t1 := runtime.Eval(xs[0])
	if t1 == 0 {
		return nil, errors.New("analysis: baseline runtime is zero")
	}
	out := make([]float64, len(xs))
	for i, x := range xs {
		if i == 0 {
			continue
		}
		tk := runtime.Eval(x)
		out[i] = (t1 - tk) / (t1 / 100)
	}
	return out, nil
}

// SpeedupModel fits a PMNF model to the speedup series (Eq. 12). Speedups
// may be negative (slowdowns under weak scaling), so the fit permits
// negative coefficients regardless of the supplied options.
func SpeedupModel(runtime *pmnf.Function, xs []float64, opts modeling.Options) (*modeling.Model, error) {
	deltas, err := Speedups(runtime, xs)
	if err != nil {
		return nil, err
	}
	points := make([]measurement.Point, len(xs))
	for i, x := range xs {
		points[i] = measurement.Point{x}
	}
	opts.NonNegativeCoefficients = false
	return modeling.Fit(points, deltas, opts)
}

// TheoreticalSpeedup returns Δ_t of Eq. 13: the ideal speedup obtained
// from the resource increase alone, (x_k−x₁)/(x₁/100) percent.
func TheoreticalSpeedup(x1, xk float64) float64 {
	return (xk - x1) / (x1 / 100)
}

// Efficiencies computes the parallel efficiency ε = Δ_a/Δ_t (Eq. 13) for
// each point of the series. The baseline point has efficiency 1 (100%).
// Under strong scaling Δ_a is the actual speedup from the runtime model;
// ε < 1 signals parallelization overhead.
func Efficiencies(runtime *pmnf.Function, xs []float64) ([]float64, error) {
	deltas, err := Speedups(runtime, xs)
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(xs))
	out[0] = 1
	for i := 1; i < len(xs); i++ {
		dt := TheoreticalSpeedup(xs[0], xs[i])
		if dt == 0 {
			out[i] = 1
			continue
		}
		out[i] = deltas[i] / dt
	}
	return out, nil
}

// EfficiencyModel fits a PMNF model to the efficiency series, following
// the same process as the speedup model. The baseline point's efficiency
// is 1 by definition rather than by measurement; when enough points remain
// it is excluded from the fit so the definitional jump does not distort
// the model.
func EfficiencyModel(runtime *pmnf.Function, xs []float64, opts modeling.Options) (*modeling.Model, error) {
	effs, err := Efficiencies(runtime, xs)
	if err != nil {
		return nil, err
	}
	min := opts.EffectiveMinPoints()
	if len(xs) > min {
		xs, effs = xs[1:], effs[1:]
	}
	points := make([]measurement.Point, len(xs))
	for i, x := range xs {
		points[i] = measurement.Point{x}
	}
	opts.NonNegativeCoefficients = false
	return modeling.Fit(points, effs, opts)
}

// CostModel computes training cost per Eq. 14: C(x) = T(x)·o with
// o = x·ϱ the total number of CPU cores across all ranks. Cost is
// expressed in core-hours. A custom formula can replace the default.
type CostModel struct {
	// Runtime is the runtime model T (seconds per epoch) as a function of
	// the number of ranks.
	Runtime *pmnf.Function
	// CoresPerRank is ϱ, the CPU cores used by each MPI rank. On the
	// paper's systems GPU cost is folded into the core-hour price.
	CoresPerRank float64
	// PricePerCoreHour optionally converts core-hours to money; zero
	// leaves the result in core-hours.
	PricePerCoreHour float64
	// Custom optionally replaces the default formula entirely: it
	// receives (runtime seconds, ranks) and returns the cost.
	Custom func(runtimeSeconds, ranks float64) float64
}

// CoreHours returns the training cost of running at x ranks, in core-hours
// (or in money when PricePerCoreHour is set, or whatever Custom returns).
func (c CostModel) CoreHours(x float64) float64 {
	t := c.Runtime.Eval(x)
	if c.Custom != nil {
		return c.Custom(t, x)
	}
	hours := t * x * c.CoresPerRank / 3600
	if c.PricePerCoreHour > 0 {
		return hours * c.PricePerCoreHour
	}
	return hours
}

// CostSeries evaluates the cost at every point of the series.
func (c CostModel) CostSeries(xs []float64) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = c.CoreHours(x)
	}
	return out
}

// FitCostModel fits a PMNF model to the cost series, producing a closed
// form like the paper's C_epoch(x₁) = 0.082·x₁^1.62.
func (c CostModel) FitCostModel(xs []float64, opts modeling.Options) (*modeling.Model, error) {
	costs := c.CostSeries(xs)
	points := make([]measurement.Point, len(xs))
	for i, x := range xs {
		points[i] = measurement.Point{x}
	}
	return modeling.Fit(points, costs, opts)
}

// RankedKernel pairs a kernel with its model for bottleneck ranking.
type RankedKernel struct {
	// Callpath identifies the kernel.
	Callpath string
	// Model is the kernel's fitted runtime model.
	Model *modeling.Model
	// Growth is the model's asymptotic growth class (reported for
	// context).
	Growth pmnf.Growth
	// GrowthFactor is the predicted growth over the ranked range,
	// f(reference)/f(baseline) — the quantity kernels are ordered by.
	GrowthFactor float64
	// ValueAtReference is the model's prediction at the ranking reference
	// point, the tie-breaker among equal growth factors.
	ValueAtReference float64
}

// RankByGrowth orders kernels by their growth trend from baseline to
// reference (Section 3.1 of the paper): the kernel whose predicted cost
// grows by the largest factor over the evaluated range ranks first — it is
// the scaling bottleneck. Ties are broken by the predicted value at the
// reference point. Kernels whose model predicts a non-positive baseline
// (degenerate fits) rank last.
//
// A purely symbolic Big-O comparison would let a noise-fitted x^(1/4) on a
// flat kernel outrank a genuinely 10×-growing logarithmic communication
// model; ranking by the realized factor over the range of interest avoids
// that while still expressing "growth trend".
func RankByGrowth(models map[string]*modeling.Model, baseline, reference measurement.Point) []RankedKernel {
	out := make([]RankedKernel, 0, len(models))
	for path, m := range models {
		base := m.Function.EvalAt(baseline)
		ref := m.Function.EvalAt(reference)
		factor := 0.0
		if base > 0 && ref > 0 {
			factor = ref / base
		}
		out = append(out, RankedKernel{
			Callpath:         path,
			Model:            m,
			Growth:           m.Function.Growth(),
			GrowthFactor:     factor,
			ValueAtReference: ref,
		})
	}
	sort.SliceStable(out, func(i, j int) bool {
		const eps = 1e-9
		fi, fj := out[i].GrowthFactor, out[j].GrowthFactor
		if fi > fj*(1+eps)+eps {
			return true
		}
		if fj > fi*(1+eps)+eps {
			return false
		}
		if out[i].ValueAtReference > out[j].ValueAtReference {
			return true
		}
		if out[i].ValueAtReference < out[j].ValueAtReference {
			return false
		}
		return out[i].Callpath < out[j].Callpath
	})
	return out
}

// SpeedupRankedKernel pairs a kernel with its achieved speedup between the
// baseline and reference scales.
type SpeedupRankedKernel struct {
	// Callpath identifies the kernel.
	Callpath string
	// Model is the kernel's runtime model.
	Model *modeling.Model
	// SpeedupPct is the paper's Δ metric (Eq. 11) between baseline and
	// reference: positive = the kernel got faster with scale, negative =
	// slower.
	SpeedupPct float64
}

// RankBySpeedup orders kernels by the speedup they achieve from the
// baseline to the reference configuration (Section 3.1: "this metric
// allows developers to easily identify the functions that benefit the most
// or least from scaling up"). The most-accelerated kernel ranks first;
// kernels that slow down rank last. Kernels with a non-positive baseline
// prediction (degenerate fits) are skipped.
func RankBySpeedup(models map[string]*modeling.Model, baseline, reference measurement.Point) []SpeedupRankedKernel {
	out := make([]SpeedupRankedKernel, 0, len(models))
	for path, m := range models {
		t1 := m.Function.EvalAt(baseline)
		tk := m.Function.EvalAt(reference)
		if t1 <= 0 {
			continue
		}
		out = append(out, SpeedupRankedKernel{
			Callpath:   path,
			Model:      m,
			SpeedupPct: (t1 - tk) / (t1 / 100),
		})
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].SpeedupPct > out[j].SpeedupPct {
			return true
		}
		if out[i].SpeedupPct < out[j].SpeedupPct {
			return false
		}
		return out[i].Callpath < out[j].Callpath
	})
	return out
}

// Constraint bounds the feasible training configurations: a maximum
// training time (the paper's "technically feasible" region) and a compute
// budget (the "economically feasible" region). Zero disables a bound.
type Constraint struct {
	// MaxTime is the maximum acceptable training time in seconds (per
	// epoch, matching the runtime model's time frame).
	MaxTime float64
	// Budget is the maximum acceptable cost in core-hours.
	Budget float64
}

// Feasibility is the assessment of one candidate configuration.
type Feasibility struct {
	Ranks      float64
	Time       float64
	Cost       float64
	Efficiency float64
	// TimeOK and CostOK report which constraints the configuration meets.
	TimeOK, CostOK bool
}

// Feasible reports whether the configuration meets all active constraints.
func (f Feasibility) Feasible() bool { return f.TimeOK && f.CostOK }

// Evaluate assesses every candidate configuration against the constraint,
// computing time, cost and parallel efficiency (relative to the first
// candidate).
func Evaluate(runtime *pmnf.Function, cost CostModel, xs []float64, c Constraint) ([]Feasibility, error) {
	effs, err := Efficiencies(runtime, xs)
	if err != nil {
		return nil, err
	}
	out := make([]Feasibility, len(xs))
	for i, x := range xs {
		t := runtime.Eval(x)
		ch := cost.CoreHours(x)
		out[i] = Feasibility{
			Ranks:      x,
			Time:       t,
			Cost:       ch,
			Efficiency: effs[i],
			TimeOK:     c.MaxTime <= 0 || t <= c.MaxTime,
			CostOK:     c.Budget <= 0 || ch <= c.Budget,
		}
	}
	return out, nil
}

// ErrNoFeasibleConfig is returned when no candidate meets the constraints.
var ErrNoFeasibleConfig = errors.New("analysis: no feasible configuration")

// MostCostEffective returns the feasible configuration with the highest
// parallel efficiency (Section 3.3). For weak scaling this degenerates to
// the smallest feasible allocation, matching the paper's observation; for
// strong scaling it balances the time/cost trade-off of Fig. 4b.
func MostCostEffective(runtime *pmnf.Function, cost CostModel, xs []float64, c Constraint) (Feasibility, error) {
	if len(xs) == 0 {
		return Feasibility{}, errors.New("analysis: empty candidate set")
	}
	fs, err := Evaluate(runtime, cost, xs, c)
	if err != nil {
		return Feasibility{}, err
	}
	best := -1
	for i, f := range fs {
		if !f.Feasible() {
			continue
		}
		// Strictly-better comparison with a small tolerance: among
		// configurations of (numerically) equal efficiency the smallest
		// resource allocation wins, matching the paper's weak-scaling
		// observation.
		if best == -1 || f.Efficiency > fs[best].Efficiency+1e-9 {
			best = i
		}
	}
	if best == -1 {
		return Feasibility{}, fmt.Errorf("%w: %d candidates, max time %.4g s, budget %.4g core-h",
			ErrNoFeasibleConfig, len(xs), c.MaxTime, c.Budget)
	}
	return fs[best], nil
}
