package analysis

import (
	"errors"
	"math"
)

// RecommendPoints suggests measurement configurations for modeling toward
// a target scale, implementing the guidance of the paper's Section 4.3: a
// prediction for 1024 ranks from measurements at {2,…,10} is unrealistic,
// but one from {8,16,32,64,128} is possible — the points should form a
// geometric progression whose largest value is within about a factor of
// eight of the target, so that no scale-dependent behaviour change (e.g. a
// communication-algorithm switch) lies entirely outside the measured
// range.
//
// It returns `count` values (at least the modeling minimum of 5) spaced by
// factor two, ending at max(minStart, target/8), and rounded to integers.
func RecommendPoints(target float64, count int, minStart float64) ([]float64, error) {
	if target <= 1 {
		return nil, errors.New("analysis: target scale must exceed 1")
	}
	if count < 5 {
		count = 5
	}
	if minStart < 1 {
		minStart = 1
	}
	top := target / 8
	if top < minStart {
		top = minStart
	}
	start := top / math.Pow(2, float64(count-1))
	if start < minStart {
		// Small targets: anchor the series at minStart and grow upward,
		// measuring closer to (at most up to) the target itself.
		start = minStart
	}
	pts := make([]float64, 0, count)
	v := start
	for i := 0; i < count; i++ {
		p := math.Max(1, math.Round(v))
		if p > target {
			break
		}
		pts = append(pts, p)
		v *= 2
	}
	// De-duplicate after rounding (tiny targets collapse small points).
	out := pts[:0]
	var last float64
	for _, p := range pts {
		//edlint:ignore floateq deduplication of grid points produced by the same rounding, so duplicates are bit-identical
		if p != last {
			out = append(out, p)
			last = p
		}
	}
	if len(out) < 5 {
		return nil, errors.New("analysis: target too small to place five distinct points")
	}
	return out, nil
}

// ExtrapolationRatio quantifies how far a prediction target lies beyond
// the measured range: target / largest modeling point. The paper treats
// ratios up to ≈8 as reliable and warns that errors grow with the ratio.
func ExtrapolationRatio(modelingPoints []float64, target float64) float64 {
	var max float64
	for _, p := range modelingPoints {
		if p > max {
			max = p
		}
	}
	if max <= 0 {
		return math.Inf(1)
	}
	return target / max
}
