package analysis_test

import (
	"fmt"

	"extradeep/internal/analysis"
	"extradeep/internal/pmnf"
)

// ExampleCostModel computes training cost in core-hours per Eq. 14 of the
// paper: C(x) = T(x) · x · ϱ.
func ExampleCostModel() {
	// One epoch takes a constant 3600 s regardless of scale.
	cm := analysis.CostModel{
		Runtime:      pmnf.ConstantFunction(3600),
		CoresPerRank: 8,
	}
	fmt.Printf("C(4)  = %.0f core-hours\n", cm.CoreHours(4))
	fmt.Printf("C(16) = %.0f core-hours\n", cm.CoreHours(16))
	// Output:
	// C(4)  = 32 core-hours
	// C(16) = 128 core-hours
}

// ExampleRecommendPoints reproduces the paper's Section 4.3 guidance: to
// predict 1024 ranks, measure at {8, 16, 32, 64, 128}.
func ExampleRecommendPoints() {
	pts, err := analysis.RecommendPoints(1024, 5, 1)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(pts)
	fmt.Printf("extrapolation ratio: %.0f\n", analysis.ExtrapolationRatio(pts, 1024))
	// Output:
	// [8 16 32 64 128]
	// extrapolation ratio: 8
}

// ExampleSpeedups computes the paper's Δ metric (Eq. 11) for a runtime
// that halves when the allocation doubles (perfect strong scaling).
func ExampleSpeedups() {
	// T(p) = 1000/p via a negative-exponent PMNF term.
	runtime := &pmnf.Function{Terms: []pmnf.Term{{
		Coefficient: 1000,
		Factors:     []pmnf.Factor{{Param: 0, PolyExp: -1}},
	}}}
	deltas, err := analysis.Speedups(runtime, []float64{2, 4, 8})
	if err != nil {
		fmt.Println(err)
		return
	}
	for i, x := range []float64{2, 4, 8} {
		fmt.Printf("Δ(%v) = %.0f%%\n", x, deltas[i])
	}
	// Output:
	// Δ(2) = 0%
	// Δ(4) = 50%
	// Δ(8) = 75%
}
