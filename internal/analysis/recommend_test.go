package analysis

import (
	"math"
	"testing"

	"extradeep/internal/mathutil"
)

func TestRecommendPointsPaperExample(t *testing.T) {
	// Section 4.3: a prediction for 1024 ranks should be modeled from
	// points like {8, 16, 32, 64, 128}.
	pts, err := RecommendPoints(1024, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{8, 16, 32, 64, 128}
	if len(pts) != len(want) {
		t.Fatalf("points = %v", pts)
	}
	for i := range want {
		if !mathutil.Close(pts[i], want[i]) {
			t.Fatalf("points = %v, want %v", pts, want)
		}
	}
}

func TestRecommendPointsGeometric(t *testing.T) {
	pts, err := RecommendPoints(4096, 6, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(pts); i++ {
		if !mathutil.Close(pts[i], 2*pts[i-1]) {
			t.Fatalf("not geometric: %v", pts)
		}
	}
	if !mathutil.Close(pts[len(pts)-1], 512) { // 4096/8
		t.Errorf("top point = %v, want 512", pts[len(pts)-1])
	}
}

func TestRecommendPointsRespectsMinStart(t *testing.T) {
	pts, err := RecommendPoints(64, 5, 4)
	if err != nil {
		t.Fatal(err)
	}
	// target/8 = 8 < minStart? no: top = max(4, 8) = 8; smallest point
	// must still be ≥ 1 after halving.
	if pts[len(pts)-1] < 4 {
		t.Errorf("top %v below minStart", pts[len(pts)-1])
	}
	for _, p := range pts {
		if p < 1 {
			t.Errorf("point %v below 1", p)
		}
	}
}

func TestRecommendPointsMinimumCount(t *testing.T) {
	pts, err := RecommendPoints(512, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) < 5 {
		t.Errorf("count clamped wrong: %v", pts)
	}
}

func TestRecommendPointsRejectsTinyTargets(t *testing.T) {
	if _, err := RecommendPoints(1, 5, 1); err == nil {
		t.Error("target 1 accepted")
	}
	if _, err := RecommendPoints(3, 5, 1); err == nil {
		t.Error("target too small to place 5 distinct points accepted")
	}
}

func TestExtrapolationRatio(t *testing.T) {
	if r := ExtrapolationRatio([]float64{2, 4, 6, 8, 10}, 1024); !mathutil.Close(r, 102.4) {
		t.Errorf("ratio = %v, want 102.4 (the paper's 'unrealistic' case)", r)
	}
	if r := ExtrapolationRatio([]float64{8, 16, 32, 64, 128}, 1024); !mathutil.Close(r, 8) {
		t.Errorf("ratio = %v, want 8 (the paper's 'possible' case)", r)
	}
	if r := ExtrapolationRatio(nil, 10); !math.IsInf(r, 1) {
		t.Errorf("empty points ratio = %v, want +Inf", r)
	}
}
