package analysis

import (
	"errors"
	"math"
	"testing"

	"extradeep/internal/mathutil"
	"extradeep/internal/measurement"
	"extradeep/internal/modeling"
	"extradeep/internal/pmnf"
)

// linearRuntime returns T(x) = c + s·x.
func linearRuntime(c, s float64) *pmnf.Function {
	return &pmnf.Function{
		Constant: c,
		Terms:    []pmnf.Term{{Coefficient: s, Factors: []pmnf.Factor{{Param: 0, PolyExp: 1}}}},
	}
}

// strongScalingRuntime returns an Amdahl-like T(x) = serial + work/x,
// approximated in PMNF form with a x^-1 term is not available, so use
// measured-style points instead where needed. For closed-form tests we use
// T(x) = 100/x via a custom evaluation helper.
func caseStudyRuntime() *pmnf.Function {
	return &pmnf.Function{
		Constant: 158.58,
		Terms: []pmnf.Term{{
			Coefficient: 0.58,
			Factors:     []pmnf.Factor{{Param: 0, PolyExp: 2.0 / 3.0, LogExp: 2}},
		}},
	}
}

func TestSpeedupsBaselineZero(t *testing.T) {
	xs := []float64{2, 4, 8}
	d, err := Speedups(linearRuntime(100, 0), xs)
	if err != nil {
		t.Fatal(err)
	}
	if d[0] != 0 {
		t.Errorf("baseline speedup = %v, want 0", d[0])
	}
	// Constant runtime: no speedup anywhere.
	if d[1] != 0 || d[2] != 0 {
		t.Errorf("constant runtime speedups = %v", d)
	}
}

func TestSpeedupsWeakScalingSlowdown(t *testing.T) {
	// Runtime grows with scale (weak scaling with overhead): speedup
	// negative.
	xs := []float64{2, 4, 8}
	d, err := Speedups(linearRuntime(100, 5), xs)
	if err != nil {
		t.Fatal(err)
	}
	// T(2)=110, T(4)=120: Δ = (110−120)/1.1 = −9.09…%.
	if math.Abs(d[1]-(-100.0/11)) > 1e-9 {
		t.Errorf("Δ(4) = %v, want ≈-9.09", d[1])
	}
	if d[2] >= d[1] {
		t.Errorf("slowdown should worsen with scale: %v", d)
	}
}

func TestSpeedupsEmptySeries(t *testing.T) {
	if _, err := Speedups(linearRuntime(1, 1), nil); err == nil {
		t.Error("empty series accepted")
	}
}

func TestSpeedupsZeroBaseline(t *testing.T) {
	if _, err := Speedups(pmnf.ConstantFunction(0), []float64{2, 4}); err == nil {
		t.Error("zero baseline accepted")
	}
}

func TestSpeedupModelFits(t *testing.T) {
	xs := []float64{2, 4, 8, 16, 32, 64}
	m, err := SpeedupModel(caseStudyRuntime(), xs, modeling.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// The model should reproduce the computed speedups closely.
	d, _ := Speedups(caseStudyRuntime(), xs)
	for i, x := range xs {
		if math.Abs(m.Predict(x)-d[i]) > math.Abs(d[i])*0.2+2 {
			t.Errorf("speedup model at %v = %v, want ≈%v", x, m.Predict(x), d[i])
		}
	}
}

func TestTheoreticalSpeedup(t *testing.T) {
	// Quadrupling resources: Δt = (8−2)/(2/100) = 300%.
	if got := TheoreticalSpeedup(2, 8); !mathutil.Close(got, 300) {
		t.Errorf("Δt = %v, want 300", got)
	}
	if got := TheoreticalSpeedup(2, 2); got != 0 {
		t.Errorf("Δt same point = %v, want 0", got)
	}
}

func TestEfficienciesBaselineIsOne(t *testing.T) {
	xs := []float64{2, 4, 8}
	e, err := Efficiencies(linearRuntime(100, 1), xs)
	if err != nil {
		t.Fatal(err)
	}
	if !mathutil.Close(e[0], 1) {
		t.Errorf("baseline efficiency = %v, want 1", e[0])
	}
}

func TestEfficienciesDegradeWithOverhead(t *testing.T) {
	xs := []float64{2, 4, 8, 16}
	e, err := Efficiencies(caseStudyRuntime(), xs)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(e); i++ {
		if e[i] >= e[i-1] {
			t.Errorf("efficiency should degrade: %v", e)
		}
	}
	// Weak scaling with growing runtime: negative "efficiency" relative to
	// the theoretical strong-scaling gain.
	if e[1] >= 0 {
		t.Errorf("weak-scaling slowdown should give negative ε, got %v", e[1])
	}
}

func TestEfficiencyModelFits(t *testing.T) {
	// Six points: the definitional baseline (ε=1) is dropped, leaving five
	// smoothly varying efficiencies the PMNF can fit.
	xs := []float64{2, 4, 8, 16, 32, 64}
	m, err := EfficiencyModel(caseStudyRuntime(), xs, modeling.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	e, _ := Efficiencies(caseStudyRuntime(), xs)
	for i, x := range xs {
		if i == 0 {
			continue // baseline excluded from the fit
		}
		if math.Abs(m.Predict(x)-e[i]) > 0.05 {
			t.Errorf("efficiency model at %v = %v, want ≈%v", x, m.Predict(x), e[i])
		}
	}
}

func TestCostModelMatchesPaperCaseStudy(t *testing.T) {
	// Paper: C_epoch at 32 ranks ≈ 22.49 core-hours with ϱ = 8 cores/rank
	// on DEEP; T_epoch(32) ≈ 304 s.
	cm := CostModel{Runtime: caseStudyRuntime(), CoresPerRank: 8}
	got := cm.CoreHours(32)
	if math.Abs(got-22.49) > 1.5 {
		t.Errorf("C(32) = %v core-hours, want ≈22.49", got)
	}
}

func TestCostModelPriceConversion(t *testing.T) {
	cm := CostModel{Runtime: pmnf.ConstantFunction(3600), CoresPerRank: 1, PricePerCoreHour: 0.05}
	// 3600 s × 2 ranks × 1 core = 2 core-hours → 0.10.
	if got := cm.CoreHours(2); math.Abs(got-0.10) > 1e-9 {
		t.Errorf("priced cost = %v, want 0.10", got)
	}
}

func TestCostModelCustomFormula(t *testing.T) {
	cm := CostModel{
		Runtime: pmnf.ConstantFunction(100),
		Custom:  func(t, ranks float64) float64 { return t * ranks * 42 },
	}
	if got := cm.CoreHours(2); !mathutil.Close(got, 100*2*42) {
		t.Errorf("custom cost = %v", got)
	}
}

func TestCostSeriesMonotoneForGrowingRuntime(t *testing.T) {
	cm := CostModel{Runtime: caseStudyRuntime(), CoresPerRank: 8}
	xs := []float64{2, 4, 8, 16, 32, 64}
	costs := cm.CostSeries(xs)
	for i := 1; i < len(costs); i++ {
		if costs[i] <= costs[i-1] {
			t.Errorf("cost series not increasing: %v", costs)
		}
	}
}

func TestFitCostModelShape(t *testing.T) {
	cm := CostModel{Runtime: caseStudyRuntime(), CoresPerRank: 8}
	xs := []float64{2, 4, 6, 8, 10, 12, 16, 24, 32}
	m, err := cm.FitCostModel(xs, modeling.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// The paper reports C ≈ 0.082·x^1.62: superlinear, subquadratic.
	g := m.Function.Growth()
	if g.PolyDegree < 1 || g.PolyDegree > 2.01 {
		t.Errorf("cost growth = %v, want between x and x²", g)
	}
	// And the fitted model should predict ≈22.5 core-hours at 32 ranks.
	if e := math.Abs(m.Predict(32)-cm.CoreHours(32)) / cm.CoreHours(32); e > 0.05 {
		t.Errorf("cost model at 32 = %v, want ≈%v", m.Predict(32), cm.CoreHours(32))
	}
}

func TestRankByGrowth(t *testing.T) {
	mk := func(fn *pmnf.Function) *modeling.Model {
		return &modeling.Model{Function: fn}
	}
	models := map[string]*modeling.Model{
		"flat":   mk(pmnf.ConstantFunction(1e6)),
		"linear": mk(linearRuntime(0, 1)),
		"nlogn": mk(&pmnf.Function{Terms: []pmnf.Term{{
			Coefficient: 0.001,
			Factors:     []pmnf.Factor{{Param: 0, PolyExp: 1, LogExp: 1}},
		}}}),
	}
	ranked := RankByGrowth(models, measurement.Point{2}, measurement.Point{64})
	want := []string{"nlogn", "linear", "flat"}
	for i, w := range want {
		if ranked[i].Callpath != w {
			t.Fatalf("rank %d = %s, want %s (full: %v)", i, ranked[i].Callpath, w, ranked)
		}
	}
}

func TestRankByGrowthTieBreak(t *testing.T) {
	mk := func(c float64) *modeling.Model {
		return &modeling.Model{Function: linearRuntime(0, c)}
	}
	models := map[string]*modeling.Model{
		"cheap":  mk(1),
		"costly": mk(100),
	}
	ranked := RankByGrowth(models, measurement.Point{2}, measurement.Point{10})
	if ranked[0].Callpath != "costly" {
		t.Errorf("tie break failed: %v", ranked[0].Callpath)
	}
}

func TestRankBySpeedup(t *testing.T) {
	mk := func(fn *pmnf.Function) *modeling.Model { return &modeling.Model{Function: fn} }
	models := map[string]*modeling.Model{
		// Runtime halves from 2 to 8 "ranks": speedup +50%.
		"improves": mk(&pmnf.Function{Constant: 12, Terms: []pmnf.Term{{Coefficient: -1, Factors: []pmnf.Factor{{Param: 0, PolyExp: 1}}}}}),
		// Constant runtime: speedup 0.
		"flat": mk(pmnf.ConstantFunction(5)),
		// Runtime grows: negative speedup.
		"worsens": mk(linearRuntime(1, 1)),
		// Degenerate: zero baseline — skipped.
		"degenerate": mk(pmnf.ConstantFunction(0)),
	}
	ranked := RankBySpeedup(models, measurement.Point{2}, measurement.Point{8})
	if len(ranked) != 3 {
		t.Fatalf("ranked %d kernels, want 3 (degenerate skipped)", len(ranked))
	}
	want := []string{"improves", "flat", "worsens"}
	for i, w := range want {
		if ranked[i].Callpath != w {
			t.Fatalf("rank %d = %s, want %s", i, ranked[i].Callpath, w)
		}
	}
	if ranked[0].SpeedupPct <= 0 {
		t.Errorf("improving kernel speedup = %v, want positive", ranked[0].SpeedupPct)
	}
	if ranked[2].SpeedupPct >= 0 {
		t.Errorf("worsening kernel speedup = %v, want negative", ranked[2].SpeedupPct)
	}
}

func TestEvaluateConstraints(t *testing.T) {
	// Strong-scaling-ish runtime via fitted model on 100/x data is
	// awkward in PMNF; instead use decreasing runtime through a negative
	// coefficient: T(x) = 100 − x (valid on the tested range).
	runtime := &pmnf.Function{
		Constant: 100,
		Terms:    []pmnf.Term{{Coefficient: -1, Factors: []pmnf.Factor{{Param: 0, PolyExp: 1}}}},
	}
	cm := CostModel{Runtime: runtime, CoresPerRank: 1}
	xs := []float64{16, 24, 32, 40, 48, 56, 64}
	fs, err := Evaluate(runtime, cm, xs, Constraint{MaxTime: 60, Budget: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range fs {
		wantTime := f.Time <= 60
		if f.TimeOK != wantTime {
			t.Errorf("x=%v: TimeOK=%v, time=%v", f.Ranks, f.TimeOK, f.Time)
		}
		wantCost := f.Cost <= 0.9
		if f.CostOK != wantCost {
			t.Errorf("x=%v: CostOK=%v, cost=%v", f.Ranks, f.CostOK, f.Cost)
		}
	}
}

func TestMostCostEffectiveStrongScaling(t *testing.T) {
	runtime := &pmnf.Function{
		Constant: 100,
		Terms:    []pmnf.Term{{Coefficient: -1, Factors: []pmnf.Factor{{Param: 0, PolyExp: 1}}}},
	}
	cm := CostModel{Runtime: runtime, CoresPerRank: 1}
	xs := []float64{16, 24, 32, 40, 48, 56, 64}
	best, err := MostCostEffective(runtime, cm, xs, Constraint{MaxTime: 70, Budget: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	if !best.Feasible() {
		t.Error("selected configuration infeasible")
	}
	// Feasibility: time ≤ 70 requires x ≥ 30; cost at 64 is
	// (100−64)·64/3600 = 0.64 ≤ 1, so all large configs feasible; the
	// most efficient feasible one should be the smallest feasible x
	// (efficiency decreases with scale here).
	if !mathutil.Close(best.Ranks, 32) {
		t.Errorf("best = %v ranks, want 32", best.Ranks)
	}
}

func TestMostCostEffectiveWeakScalingPicksSmallest(t *testing.T) {
	// Weak scaling: runtime grows; smallest allocation is both cheapest
	// and most efficient (the paper's Q5 answer).
	cm := CostModel{Runtime: caseStudyRuntime(), CoresPerRank: 8}
	xs := []float64{2, 4, 8, 16, 32}
	best, err := MostCostEffective(caseStudyRuntime(), cm, xs, Constraint{})
	if err != nil {
		t.Fatal(err)
	}
	if !mathutil.Close(best.Ranks, 2) {
		t.Errorf("best = %v ranks, want 2", best.Ranks)
	}
}

func TestMostCostEffectiveNoFeasible(t *testing.T) {
	cm := CostModel{Runtime: caseStudyRuntime(), CoresPerRank: 8}
	_, err := MostCostEffective(caseStudyRuntime(), cm, []float64{2, 4}, Constraint{MaxTime: 1})
	if !errors.Is(err, ErrNoFeasibleConfig) {
		t.Errorf("err = %v, want ErrNoFeasibleConfig", err)
	}
}

func TestMostCostEffectiveEmptyCandidates(t *testing.T) {
	cm := CostModel{Runtime: caseStudyRuntime(), CoresPerRank: 8}
	if _, err := MostCostEffective(caseStudyRuntime(), cm, nil, Constraint{}); err == nil {
		t.Error("empty candidate set accepted")
	}
}
