package measurement

import (
	"math/rand"
	"testing"

	"extradeep/internal/mathutil"
)

func TestPointKey(t *testing.T) {
	cases := []struct {
		p    Point
		want string
	}{
		{Point{4}, "(4)"},
		{Point{4, 256}, "(4,256)"},
		{Point{0.5}, "(0.5)"},
		{Point{}, "()"},
	}
	for _, c := range cases {
		if got := c.p.Key(); got != c.want {
			t.Errorf("Key(%v) = %q, want %q", c.p, got, c.want)
		}
	}
}

func TestPointEqual(t *testing.T) {
	if !(Point{1, 2}).Equal(Point{1, 2}) {
		t.Error("equal points reported unequal")
	}
	if (Point{1, 2}).Equal(Point{1, 3}) {
		t.Error("unequal points reported equal")
	}
	if (Point{1}).Equal(Point{1, 2}) {
		t.Error("different arity reported equal")
	}
}

func TestPointLess(t *testing.T) {
	if !(Point{1, 9}).Less(Point{2, 0}) {
		t.Error("lexicographic order violated on first component")
	}
	if !(Point{1, 2}).Less(Point{1, 3}) {
		t.Error("lexicographic order violated on second component")
	}
	if (Point{1, 2}).Less(Point{1, 2}) {
		t.Error("point less than itself")
	}
	if !(Point{1}).Less(Point{1, 0}) {
		t.Error("shorter prefix should order first")
	}
}

func TestPointClone(t *testing.T) {
	p := Point{1, 2}
	q := p.Clone()
	q[0] = 99
	if !mathutil.Close(p[0], 1) {
		t.Error("Clone aliases the original")
	}
}

func TestSampleMedian(t *testing.T) {
	s := Sample{Reps: []float64{3, 1, 2}}
	if m, ok := s.Median(); !ok || !mathutil.Close(m, 2) {
		t.Errorf("median = %v, want 2", m)
	}
}

func TestSampleVariation(t *testing.T) {
	s := Sample{Reps: []float64{90, 100, 110}}
	v, ok := s.Variation()
	if !ok || v < 0.09 || v > 0.11 {
		t.Errorf("variation = %v, want ≈0.1", v)
	}
	if _, ok := (Sample{Reps: []float64{1}}).Variation(); ok {
		t.Error("variation of single rep reported ok")
	}
}

func TestSeriesAddMergesSamePoint(t *testing.T) {
	var s Series
	s.Add(Point{4}, 1.0)
	s.Add(Point{4}, 2.0, 3.0)
	if s.Len() != 1 {
		t.Fatalf("Len = %d, want 1", s.Len())
	}
	if got := len(s.Samples[0].Reps); got != 3 {
		t.Errorf("reps = %d, want 3", got)
	}
}

func TestSeriesAddClonesPoint(t *testing.T) {
	var s Series
	p := Point{4}
	s.Add(p, 1.0)
	p[0] = 8
	if !mathutil.Close(s.Samples[0].Point[0], 4) {
		t.Error("Add aliased the caller's point")
	}
}

func TestSeriesSortAndPoints(t *testing.T) {
	var s Series
	s.Add(Point{8}, 1)
	s.Add(Point{2}, 1)
	s.Add(Point{4}, 1)
	s.Sort()
	pts := s.Points()
	if !mathutil.Close(pts[0][0], 2) || !mathutil.Close(pts[1][0], 4) || !mathutil.Close(pts[2][0], 8) {
		t.Errorf("sorted points = %v", pts)
	}
}

func TestSeriesMedians(t *testing.T) {
	var s Series
	s.Add(Point{2}, 1, 3)
	s.Add(Point{4}, 10)
	s.Sort()
	m := s.Medians()
	if !mathutil.Close(m[0], 2) || !mathutil.Close(m[1], 10) {
		t.Errorf("medians = %v, want [2 10]", m)
	}
}

func TestSeriesAt(t *testing.T) {
	var s Series
	s.Add(Point{2}, 5)
	if got := s.At(Point{2}); got == nil || !mathutil.Close(got.Reps[0], 5) {
		t.Error("At failed to find existing sample")
	}
	if s.At(Point{3}) != nil {
		t.Error("At found a non-existent sample")
	}
}

func TestExperimentAddAndSeries(t *testing.T) {
	e := NewExperiment(Parameter{Name: "p"})
	if err := e.Add(MetricTime, "App->train", Point{4}, 1.5); err != nil {
		t.Fatal(err)
	}
	s := e.Series(MetricTime, "App->train")
	if s == nil || s.Len() != 1 {
		t.Fatal("series not stored")
	}
	if e.Series(MetricVisits, "App->train") != nil {
		t.Error("unexpected series for unmeasured metric")
	}
	if e.Series(MetricTime, "nope") != nil {
		t.Error("unexpected series for unknown callpath")
	}
}

func TestExperimentAddArityMismatch(t *testing.T) {
	e := NewExperiment(Parameter{Name: "p"}, Parameter{Name: "b"})
	if err := e.Add(MetricTime, "k", Point{4}, 1); err == nil {
		t.Error("arity mismatch accepted")
	}
}

func TestExperimentCallpathsSorted(t *testing.T) {
	e := NewExperiment(Parameter{Name: "p"})
	for _, k := range []string{"zeta", "alpha", "mid"} {
		if err := e.Add(MetricTime, k, Point{2}, 1); err != nil {
			t.Fatal(err)
		}
	}
	got := e.Callpaths(MetricTime)
	want := []string{"alpha", "mid", "zeta"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("callpaths = %v, want %v", got, want)
		}
	}
}

func TestExperimentMetrics(t *testing.T) {
	e := NewExperiment(Parameter{Name: "p"})
	_ = e.Add(MetricVisits, "k", Point{2}, 1)
	_ = e.Add(MetricBytes, "k", Point{2}, 1)
	ms := e.Metrics()
	if len(ms) != 2 || ms[0] != MetricBytes || ms[1] != MetricVisits {
		t.Errorf("metrics = %v", ms)
	}
}

func TestFilterInsufficient(t *testing.T) {
	e := NewExperiment(Parameter{Name: "p"})
	// Kernel seen at 5 configurations: kept.
	for _, x := range []float64{2, 4, 6, 8, 10} {
		_ = e.Add(MetricTime, "kept", Point{x}, 1)
	}
	// Kernel seen at 3 configurations: dropped.
	for _, x := range []float64{2, 4, 6} {
		_ = e.Add(MetricTime, "dropped", Point{x}, 1)
	}
	removed := e.FilterInsufficient(MinModelingPoints)
	if removed != 1 {
		t.Errorf("removed = %d, want 1", removed)
	}
	if e.Series(MetricTime, "dropped") != nil {
		t.Error("insufficient series survived filtering")
	}
	if e.Series(MetricTime, "kept") == nil {
		t.Error("sufficient series was removed")
	}
}

func TestFilterInsufficientDropsEmptyMetricMap(t *testing.T) {
	e := NewExperiment(Parameter{Name: "p"})
	_ = e.Add(MetricBytes, "only", Point{2}, 1)
	e.FilterInsufficient(MinModelingPoints)
	if len(e.Data) != 0 {
		t.Error("empty metric map not removed")
	}
}

// Property-style test: repetitions added in any order yield the same median.
func TestSeriesRepetitionOrderInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(8)
		reps := make([]float64, n)
		for i := range reps {
			reps[i] = rng.Float64() * 100
		}
		var a, b Series
		a.Add(Point{2}, reps...)
		shuffled := append([]float64(nil), reps...)
		rng.Shuffle(n, func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		for _, r := range shuffled {
			b.Add(Point{2}, r)
		}
		ma, _ := a.Samples[0].Median()
		mb, _ := b.Samples[0].Median()
		//edlint:ignore floateq insertion-order invariance is exact: the same multiset must yield the same median
		if ma != mb {
			t.Fatalf("median differs by insertion order: %v vs %v", ma, mb)
		}
	}
}
