package measurement_test

import (
	"fmt"
	"math"
	"testing"

	"extradeep/internal/measurement"
	"extradeep/internal/propcheck"
)

// repsCase pairs repetition values with a permutation of their order.
type repsCase struct {
	reps []float64
	perm []int
}

func repsCaseGen() propcheck.Gen[repsCase] {
	vals := propcheck.SliceOf(propcheck.Float64Range(-1e6, 1e6), 1, 16)
	return propcheck.Gen[repsCase]{
		Generate: func(r *propcheck.Rand) repsCase {
			reps := vals.Generate(r)
			return repsCase{reps: reps, perm: r.Perm(len(reps))}
		},
		Describe: func(c repsCase) string { return fmt.Sprintf("{reps=%v perm=%v}", c.reps, c.perm) },
	}
}

// TestPropMedianPermutationInvariance: the per-point median over
// repetitions (the modeling value, step (3) of Fig. 2) is invariant under
// reordering of the repetitions.
func TestPropMedianPermutationInvariance(t *testing.T) {
	propcheck.Check(t, repsCaseGen(), func(c repsCase) error {
		orig := measurement.Sample{Reps: c.reps}
		permuted := measurement.Sample{Reps: make([]float64, len(c.reps))}
		for i, j := range c.perm {
			permuted.Reps[i] = c.reps[j]
		}
		m1, ok1 := orig.Median()
		m2, ok2 := permuted.Median()
		//edlint:ignore floateq permutation invariance: the median of the same multiset must be bit-identical
		if ok1 != ok2 || m1 != m2 {
			return fmt.Errorf("median changed under permutation: %g vs %g", m1, m2)
		}
		return nil
	})
}

// TestPropMedianDuplicationInvariance: duplicating the whole repetition
// multiset leaves the median unchanged.
func TestPropMedianDuplicationInvariance(t *testing.T) {
	propcheck.Check(t, repsCaseGen(), func(c repsCase) error {
		m1, _ := measurement.Sample{Reps: c.reps}.Median()
		doubled := append(append([]float64(nil), c.reps...), c.reps...)
		m2, _ := measurement.Sample{Reps: doubled}.Median()
		if math.Abs(m1-m2) > 1e-12*(1+math.Abs(m1)) {
			return fmt.Errorf("median %g changed to %g after duplicating reps", m1, m2)
		}
		return nil
	})
}

// expCase describes a synthetic experiment: per-series point counts.
type expCase struct {
	pointCounts []int
	min         int
}

func expCaseGen() propcheck.Gen[expCase] {
	counts := propcheck.SliceOf(propcheck.IntRange(1, 8), 1, 6)
	return propcheck.Gen[expCase]{
		Generate: func(r *propcheck.Rand) expCase {
			return expCase{pointCounts: counts.Generate(r), min: r.IntRange(0, 8)}
		},
		Describe: func(c expCase) string { return fmt.Sprintf("{points=%v min=%d}", c.pointCounts, c.min) },
	}
}

func buildExperiment(pointCounts []int) *measurement.Experiment {
	exp := measurement.NewExperiment(measurement.Parameter{Name: "p"})
	for i, n := range pointCounts {
		path := fmt.Sprintf("kernel%d", i)
		for j := 0; j < n; j++ {
			_ = exp.Add(measurement.MetricTime, path, measurement.Point{float64(int(1) << j)}, 1.0)
		}
	}
	return exp
}

// TestPropFilterInsufficientExact: FilterInsufficient(min) removes exactly
// the series with fewer than min distinct points (the ≥5-configuration
// kernel filter, step (4) of Fig. 2) and reports that count.
func TestPropFilterInsufficientExact(t *testing.T) {
	propcheck.Check(t, expCaseGen(), func(c expCase) error {
		exp := buildExperiment(c.pointCounts)
		wantRemoved := 0
		for _, n := range c.pointCounts {
			if n < c.min {
				wantRemoved++
			}
		}
		removed := exp.FilterInsufficient(c.min)
		if removed != wantRemoved {
			return fmt.Errorf("removed %d series, want %d", removed, wantRemoved)
		}
		for i, n := range c.pointCounts {
			s := exp.Series(measurement.MetricTime, fmt.Sprintf("kernel%d", i))
			if (n >= c.min) != (s != nil) {
				return fmt.Errorf("series with %d points survived=%v under min=%d", n, s != nil, c.min)
			}
			if s != nil && s.Len() < c.min {
				return fmt.Errorf("surviving series has %d < %d points", s.Len(), c.min)
			}
		}
		return nil
	})
}

// TestPropFilterInsufficientMonotone: raising the threshold only ever
// removes more series — the surviving set at min+k is a subset of the
// surviving set at min — and filtering twice at the same threshold is
// idempotent.
func TestPropFilterInsufficientMonotone(t *testing.T) {
	propcheck.Check(t, expCaseGen(), func(c expCase) error {
		loose := buildExperiment(c.pointCounts)
		strict := buildExperiment(c.pointCounts)
		loose.FilterInsufficient(c.min)
		strict.FilterInsufficient(c.min + 2)
		for _, path := range strict.Callpaths(measurement.MetricTime) {
			if loose.Series(measurement.MetricTime, path) == nil {
				return fmt.Errorf("series %s survives min=%d but not min=%d", path, c.min+2, c.min)
			}
		}
		if again := loose.FilterInsufficient(c.min); again != 0 {
			return fmt.Errorf("second filter at min=%d removed %d more series", c.min, again)
		}
		return nil
	})
}
