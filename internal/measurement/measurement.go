// Package measurement defines the empirical data containers Extra-Deep
// models from: execution parameters, measurement points (the paper's
// application configurations P(x₁,…,x_m)), repeated samples per point, and
// experiments grouping series of samples per (callpath, metric).
package measurement

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"extradeep/internal/mathutil"
)

// Parameter describes one execution parameter considered for modeling,
// e.g. the number of MPI ranks or the batch size. Hyper-parameters that
// only steer learning (learning rate, activation function) are deliberately
// not modeled (Section 2.3 of the paper).
type Parameter struct {
	// Name is the human-readable identifier, e.g. "p" or "ranks".
	Name string
}

// Metric identifies what a value measures.
type Metric string

// The metrics Extra-Deep models (Section 2.2 of the paper).
const (
	// MetricTime is runtime in seconds.
	MetricTime Metric = "time"
	// MetricVisits is the number of invocations of a kernel.
	MetricVisits Metric = "visits"
	// MetricBytes is the number of transferred bytes (memory operations).
	MetricBytes Metric = "bytes"
)

// Point is one measurement point P(x₁,…,x_m): a concrete assignment of all
// execution parameters.
type Point []float64

// Key returns a canonical string form usable as a map key, e.g. "(4,256)".
func (p Point) Key() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, v := range p {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
	}
	b.WriteByte(')')
	return b.String()
}

// Equal reports whether two points are identical.
func (p Point) Equal(q Point) bool {
	if len(p) != len(q) {
		return false
	}
	for i := range p {
		//edlint:ignore floateq Point identity backs measurement grouping; coordinates of the same configuration are bit-identical
		if p[i] != q[i] {
			return false
		}
	}
	return true
}

// Less orders points lexicographically, used for stable iteration.
func (p Point) Less(q Point) bool {
	for i := 0; i < len(p) && i < len(q); i++ {
		if p[i] < q[i] {
			return true
		}
		if p[i] > q[i] {
			return false
		}
	}
	return len(p) < len(q)
}

// Clone returns an independent copy of the point.
func (p Point) Clone() Point { return append(Point(nil), p...) }

// Sample holds the repeated measurements of one metric at one point.
type Sample struct {
	Point Point
	// Reps are the per-repetition values (already aggregated over steps and
	// ranks by the preprocessing pipeline).
	Reps []float64
}

// Median returns the median over repetitions — the value used for modeling
// (step (3) in Fig. 2 of the paper). It returns 0 and false for an empty
// sample.
func (s Sample) Median() (float64, bool) { return mathutil.Median(s.Reps) }

// Mean returns the mean over repetitions.
func (s Sample) Mean() (float64, bool) { return mathutil.Mean(s.Reps) }

// Variation returns the run-to-run variation (coefficient of variation)
// over repetitions; false when fewer than two repetitions exist.
func (s Sample) Variation() (float64, bool) { return mathutil.CoefficientOfVariation(s.Reps) }

// Series is an ordered set of samples of one metric for one callpath across
// measurement points.
type Series struct {
	Samples []Sample
}

// Add appends the given repetition values to the sample at point p,
// creating the sample if necessary.
func (s *Series) Add(p Point, reps ...float64) {
	for i := range s.Samples {
		if s.Samples[i].Point.Equal(p) {
			s.Samples[i].Reps = append(s.Samples[i].Reps, reps...)
			return
		}
	}
	s.Samples = append(s.Samples, Sample{Point: p.Clone(), Reps: append([]float64(nil), reps...)})
}

// Sort orders samples lexicographically by point.
func (s *Series) Sort() {
	sort.SliceStable(s.Samples, func(i, j int) bool {
		return s.Samples[i].Point.Less(s.Samples[j].Point)
	})
}

// Len returns the number of distinct measurement points in the series.
func (s *Series) Len() int { return len(s.Samples) }

// Points returns the measurement points of the series in their current order.
func (s *Series) Points() []Point {
	pts := make([]Point, len(s.Samples))
	for i, sm := range s.Samples {
		pts[i] = sm.Point
	}
	return pts
}

// Medians returns the per-point median values in sample order.
// Samples without repetitions contribute 0.
func (s *Series) Medians() []float64 {
	out := make([]float64, len(s.Samples))
	for i, sm := range s.Samples {
		out[i], _ = sm.Median()
	}
	return out
}

// At returns the sample at point p, or nil when absent.
func (s *Series) At(p Point) *Sample {
	for i := range s.Samples {
		if s.Samples[i].Point.Equal(p) {
			return &s.Samples[i]
		}
	}
	return nil
}

// MinModelingPoints is the minimum number of measurement points per modeled
// parameter required by the modeling approach — fewer points cannot
// distinguish logarithmic, linear and polynomial growth (Section 2.3).
const MinModelingPoints = 5

// ErrTooFewPoints is returned when a series has fewer than
// MinModelingPoints distinct measurement points.
var ErrTooFewPoints = errors.New("measurement: fewer than 5 measurement points")

// Experiment groups all measured series of an application: for every metric
// and callpath the samples across the measured application configurations.
type Experiment struct {
	// Parameters are the modeled execution parameters, in point order.
	Parameters []Parameter
	// Data maps metric → callpath → series.
	Data map[Metric]map[string]*Series
}

// NewExperiment returns an empty experiment over the given parameters.
func NewExperiment(params ...Parameter) *Experiment {
	return &Experiment{
		Parameters: params,
		Data:       make(map[Metric]map[string]*Series),
	}
}

// Add appends repetition values for (metric, callpath) at point p.
func (e *Experiment) Add(m Metric, callpath string, p Point, reps ...float64) error {
	if len(p) != len(e.Parameters) {
		return fmt.Errorf("measurement: point %s has %d values for %d parameters", p.Key(), len(p), len(e.Parameters))
	}
	byPath := e.Data[m]
	if byPath == nil {
		byPath = make(map[string]*Series)
		e.Data[m] = byPath
	}
	s := byPath[callpath]
	if s == nil {
		s = &Series{}
		byPath[callpath] = s
	}
	s.Add(p, reps...)
	return nil
}

// Series returns the series for (metric, callpath), or nil when absent.
func (e *Experiment) Series(m Metric, callpath string) *Series {
	if byPath := e.Data[m]; byPath != nil {
		return byPath[callpath]
	}
	return nil
}

// Callpaths returns the sorted callpaths that carry data for metric m.
func (e *Experiment) Callpaths(m Metric) []string {
	byPath := e.Data[m]
	paths := make([]string, 0, len(byPath))
	for p := range byPath {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	return paths
}

// Metrics returns the sorted metrics present in the experiment.
func (e *Experiment) Metrics() []Metric {
	ms := make([]Metric, 0, len(e.Data))
	for m := range e.Data {
		ms = append(ms, m)
	}
	sort.Slice(ms, func(i, j int) bool { return ms[i] < ms[j] })
	return ms
}

// FilterInsufficient removes all series with fewer than min distinct
// measurement points (the kernel filtering step (4) of Fig. 2: kernels not
// observed in at least five configurations are not modeled). It returns the
// number of series removed.
func (e *Experiment) FilterInsufficient(min int) int {
	removed := 0
	for m, byPath := range e.Data {
		for path, s := range byPath {
			if s.Len() < min {
				delete(byPath, path)
				removed++
			}
		}
		if len(byPath) == 0 {
			delete(e.Data, m)
		}
	}
	return removed
}
