package plot

import (
	"encoding/xml"
	"math"
	"strings"
	"testing"
)

// parseSVG checks the output is well-formed XML.
func parseSVG(t *testing.T, svg string) {
	t.Helper()
	dec := xml.NewDecoder(strings.NewReader(svg))
	for {
		_, err := dec.Token()
		if err != nil {
			if err.Error() == "EOF" {
				return
			}
			t.Fatalf("malformed SVG: %v", err)
		}
	}
}

func lineChart() *LineChart {
	return &LineChart{
		Title:  "training time per epoch",
		XLabel: "ranks",
		YLabel: "seconds",
		Series: []Series{
			{
				Name:    "model",
				X:       []float64{2, 4, 8, 16, 32, 64},
				Y:       []float64{90, 95, 100, 105, 110, 115},
				Lo:      []float64{85, 90, 95, 100, 105, 110},
				Hi:      []float64{95, 100, 105, 110, 115, 120},
				Markers: true,
			},
			{
				Name: "measured",
				X:    []float64{2, 4, 8, 16, 32, 64},
				Y:    []float64{91, 96, 99, 107, 112, 121},
			},
		},
		LogX: true,
	}
}

func TestLineChartWellFormed(t *testing.T) {
	svg, err := lineChart().SVG()
	if err != nil {
		t.Fatal(err)
	}
	parseSVG(t, svg)
	for _, want := range []string{"<svg", "polyline", "polygon", "circle", "training time per epoch", "ranks", "seconds"} {
		if !strings.Contains(svg, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
}

func TestLineChartLegendEntries(t *testing.T) {
	svg, err := lineChart().SVG()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(svg, ">model</text>") || !strings.Contains(svg, ">measured</text>") {
		t.Error("legend entries missing")
	}
}

func TestLineChartErrors(t *testing.T) {
	if _, err := (&LineChart{}).SVG(); err == nil {
		t.Error("empty chart accepted")
	}
	bad := &LineChart{Series: []Series{{Name: "s", X: []float64{1}, Y: []float64{1, 2}}}}
	if _, err := bad.SVG(); err == nil {
		t.Error("mismatched series accepted")
	}
	empty := &LineChart{Series: []Series{{Name: "s"}}}
	if _, err := empty.SVG(); err == nil {
		t.Error("empty series accepted")
	}
	logBad := &LineChart{LogX: true, Series: []Series{{Name: "s", X: []float64{0}, Y: []float64{1}}}}
	if _, err := logBad.SVG(); err == nil {
		t.Error("non-positive x on log axis accepted")
	}
}

func TestLineChartDeterministic(t *testing.T) {
	a, err := lineChart().SVG()
	if err != nil {
		t.Fatal(err)
	}
	b, err := lineChart().SVG()
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("SVG output not deterministic")
	}
}

func TestLineChartEscapesText(t *testing.T) {
	c := lineChart()
	c.Title = `a < b & "c"`
	svg, err := c.SVG()
	if err != nil {
		t.Fatal(err)
	}
	parseSVG(t, svg)
	if strings.Contains(svg, `a < b &`) {
		t.Error("title not escaped")
	}
}

func TestBarChartWellFormed(t *testing.T) {
	c := &BarChart{
		Title:       "profiling overhead",
		YLabel:      "seconds",
		SeriesNames: []string{"standard", "sampled"},
		Groups: []BarGroup{
			{Label: "cifar10", Values: []float64{113.8, 3.3}},
			{Label: "imagenet", Values: []float64{2308, 5.5}},
			{Label: "imdb", Values: []float64{9.4, 0.7}},
		},
		LogY: true,
	}
	svg, err := c.SVG()
	if err != nil {
		t.Fatal(err)
	}
	parseSVG(t, svg)
	if strings.Count(svg, "<rect") < 7 { // background + 6 bars + legend boxes
		t.Error("bars missing")
	}
	for _, want := range []string{"cifar10", "imagenet", "standard", "sampled"} {
		if !strings.Contains(svg, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
}

func TestBarChartErrors(t *testing.T) {
	if _, err := (&BarChart{}).SVG(); err == nil {
		t.Error("empty bar chart accepted")
	}
	bad := &BarChart{SeriesNames: []string{"a"}, Groups: []BarGroup{{Label: "g", Values: []float64{1, 2}}}}
	if _, err := bad.SVG(); err == nil {
		t.Error("value-count mismatch accepted")
	}
	logBad := &BarChart{SeriesNames: []string{"a"}, Groups: []BarGroup{{Label: "g", Values: []float64{0}}}, LogY: true}
	if _, err := logBad.SVG(); err == nil {
		t.Error("zero value on log axis accepted")
	}
}

func TestNiceTicks(t *testing.T) {
	ticks := niceTicks(0, 100, 6)
	if len(ticks) < 4 || len(ticks) > 8 {
		t.Errorf("ticks = %v", ticks)
	}
	for i := 1; i < len(ticks); i++ {
		if ticks[i] <= ticks[i-1] {
			t.Fatalf("ticks not increasing: %v", ticks)
		}
	}
	if ticks[0] < 0 || ticks[len(ticks)-1] > 100+1e-9 {
		t.Errorf("ticks out of range: %v", ticks)
	}
}

func TestNiceTicksDegenerate(t *testing.T) {
	ticks := niceTicks(5, 5, 6)
	if len(ticks) != 2 {
		t.Errorf("degenerate ticks = %v", ticks)
	}
}

func TestNiceTicksSmallRange(t *testing.T) {
	ticks := niceTicks(0.93, 1.07, 5)
	for _, tk := range ticks {
		if math.IsNaN(tk) {
			t.Fatal("NaN tick")
		}
	}
	if len(ticks) < 2 {
		t.Errorf("ticks = %v", ticks)
	}
}

func TestFormatTick(t *testing.T) {
	if formatTick(100) != "100" {
		t.Errorf("formatTick(100) = %q", formatTick(100))
	}
	if formatTick(0.125) != "0.125" {
		t.Errorf("formatTick(0.125) = %q", formatTick(0.125))
	}
}

func TestXTicksCapped(t *testing.T) {
	var xs []float64
	for i := 1; i <= 30; i++ {
		xs = append(xs, float64(i))
	}
	s := []Series{{X: xs, Y: xs}}
	ticks := xTicks(s, false, 1, 30)
	if len(ticks) > 14 {
		t.Errorf("too many ticks: %d", len(ticks))
	}
}
