// Package plot renders simple, dependency-free SVG charts for the
// experiment reports: line charts with optional confidence bands and
// point markers (Fig. 3, 5, 6, 7 of the paper) and grouped bar charts
// (Fig. 8). The output is deterministic, self-contained SVG 1.1.
package plot

import (
	"errors"
	"fmt"
	"math"
	"strings"
)

// Palette is the default series color cycle (color-blind friendly).
var Palette = []string{
	"#0072b2", "#d55e00", "#009e73", "#cc79a7", "#e69f00", "#56b4e9", "#000000",
}

// Series is one line of a line chart.
type Series struct {
	// Name appears in the legend.
	Name string
	// X and Y are the data points, in drawing order.
	X, Y []float64
	// Lo and Hi optionally delimit a confidence band (aligned with X).
	Lo, Hi []float64
	// Markers draws a circle at every point.
	Markers bool
	// Color overrides the palette ("" = automatic).
	Color string
}

// LineChart is a multi-series XY chart.
type LineChart struct {
	Title  string
	XLabel string
	YLabel string
	// Width and Height are the SVG dimensions (defaults 720×420).
	Width, Height int
	Series        []Series
	// LogX uses a log₂ x-axis, natural for rank counts.
	LogX bool
}

const (
	marginLeft   = 64.0
	marginRight  = 16.0
	marginTop    = 36.0
	marginBottom = 48.0
)

// SVG renders the chart.
func (c *LineChart) SVG() (string, error) {
	if len(c.Series) == 0 {
		return "", errors.New("plot: chart has no series")
	}
	w, h := float64(orDefault(c.Width, 720)), float64(orDefault(c.Height, 420))
	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := math.Inf(1), math.Inf(-1)
	for _, s := range c.Series {
		if len(s.X) != len(s.Y) {
			return "", fmt.Errorf("plot: series %q has %d x but %d y values", s.Name, len(s.X), len(s.Y))
		}
		if len(s.X) == 0 {
			return "", fmt.Errorf("plot: series %q is empty", s.Name)
		}
		for i := range s.X {
			xv := s.X[i]
			if c.LogX && xv <= 0 {
				return "", fmt.Errorf("plot: series %q has non-positive x on a log axis", s.Name)
			}
			xmin, xmax = math.Min(xmin, xv), math.Max(xmax, xv)
			ymin, ymax = math.Min(ymin, s.Y[i]), math.Max(ymax, s.Y[i])
		}
		for i := range s.Lo {
			ymin, ymax = math.Min(ymin, s.Lo[i]), math.Max(ymax, s.Lo[i])
		}
		for i := range s.Hi {
			ymin, ymax = math.Min(ymin, s.Hi[i]), math.Max(ymax, s.Hi[i])
		}
	}
	if ymax-ymin == 0 {
		ymin, ymax = ymin-1, ymax+1
	}
	// Pad the y-range and start at zero when data is non-negative and
	// close to it.
	pad := (ymax - ymin) * 0.08
	ymax += pad
	if ymin >= 0 && ymin < (ymax-ymin) {
		ymin = 0
	} else {
		ymin -= pad
	}

	if c.LogX && (xmin <= 0 || xmax < xmin) {
		// The per-value validation above guarantees a positive range;
		// re-check the aggregate so a poisoned bound can never reach the
		// log below.
		return "", errors.New("plot: invalid x range on a log axis")
	}
	xform := func(x float64) float64 {
		lo, hi := xmin, xmax
		v := x
		if c.LogX {
			if x <= 0 {
				x = xmin // series validation guarantees positive x; clamp defensively
			}
			lo, hi, v = math.Log2(xmin), math.Log2(xmax), math.Log2(x)
		}
		if hi-lo == 0 {
			return marginLeft
		}
		return marginLeft + (v-lo)/(hi-lo)*(w-marginLeft-marginRight)
	}
	yform := func(y float64) float64 {
		return h - marginBottom - (y-ymin)/(ymax-ymin)*(h-marginTop-marginBottom)
	}

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%g" height="%g" viewBox="0 0 %g %g" font-family="sans-serif" font-size="12">`+"\n", w, h, w, h)
	fmt.Fprintf(&b, `<rect width="%g" height="%g" fill="white"/>`+"\n", w, h)
	if c.Title != "" {
		fmt.Fprintf(&b, `<text x="%g" y="20" text-anchor="middle" font-size="14" font-weight="bold">%s</text>`+"\n", w/2, escape(c.Title))
	}

	// Axes.
	fmt.Fprintf(&b, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="black"/>`+"\n", marginLeft, h-marginBottom, w-marginRight, h-marginBottom)
	fmt.Fprintf(&b, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="black"/>`+"\n", marginLeft, marginTop, marginLeft, h-marginBottom)

	// Y ticks.
	for _, t := range niceTicks(ymin, ymax, 6) {
		y := yform(t)
		fmt.Fprintf(&b, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="#ddd"/>`+"\n", marginLeft, y, w-marginRight, y)
		fmt.Fprintf(&b, `<text x="%g" y="%g" text-anchor="end" dominant-baseline="middle">%s</text>`+"\n", marginLeft-6, y, formatTick(t))
	}
	// X ticks: the union of all series x values (rank counts are few).
	for _, t := range xTicks(c.Series, c.LogX, xmin, xmax) {
		x := xform(t)
		fmt.Fprintf(&b, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="black"/>`+"\n", x, h-marginBottom, x, h-marginBottom+4)
		fmt.Fprintf(&b, `<text x="%g" y="%g" text-anchor="middle">%s</text>`+"\n", x, h-marginBottom+18, formatTick(t))
	}
	if c.XLabel != "" {
		fmt.Fprintf(&b, `<text x="%g" y="%g" text-anchor="middle">%s</text>`+"\n", (marginLeft+w-marginRight)/2, h-10, escape(c.XLabel))
	}
	if c.YLabel != "" {
		fmt.Fprintf(&b, `<text x="14" y="%g" text-anchor="middle" transform="rotate(-90 14 %g)">%s</text>`+"\n", (marginTop+h-marginBottom)/2, (marginTop+h-marginBottom)/2, escape(c.YLabel))
	}

	// Confidence bands first (underneath the lines).
	for si, s := range c.Series {
		if len(s.Lo) != len(s.X) || len(s.Hi) != len(s.X) || len(s.X) == 0 {
			continue
		}
		color := s.Color
		if color == "" {
			color = Palette[si%len(Palette)]
		}
		var pts []string
		for i := range s.X {
			pts = append(pts, fmt.Sprintf("%.2f,%.2f", xform(s.X[i]), yform(s.Hi[i])))
		}
		for i := len(s.X) - 1; i >= 0; i-- {
			pts = append(pts, fmt.Sprintf("%.2f,%.2f", xform(s.X[i]), yform(s.Lo[i])))
		}
		fmt.Fprintf(&b, `<polygon points="%s" fill="%s" fill-opacity="0.15" stroke="none"/>`+"\n", strings.Join(pts, " "), color)
	}

	// Lines and markers.
	for si, s := range c.Series {
		color := s.Color
		if color == "" {
			color = Palette[si%len(Palette)]
		}
		var pts []string
		for i := range s.X {
			pts = append(pts, fmt.Sprintf("%.2f,%.2f", xform(s.X[i]), yform(s.Y[i])))
		}
		fmt.Fprintf(&b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="1.8"/>`+"\n", strings.Join(pts, " "), color)
		if s.Markers {
			for i := range s.X {
				fmt.Fprintf(&b, `<circle cx="%.2f" cy="%.2f" r="3" fill="%s"/>`+"\n", xform(s.X[i]), yform(s.Y[i]), color)
			}
		}
	}

	// Legend.
	lx, ly := marginLeft+10.0, marginTop+4.0
	for si, s := range c.Series {
		if s.Name == "" {
			continue
		}
		color := s.Color
		if color == "" {
			color = Palette[si%len(Palette)]
		}
		fmt.Fprintf(&b, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="%s" stroke-width="2"/>`+"\n", lx, ly+4, lx+18, ly+4, color)
		fmt.Fprintf(&b, `<text x="%g" y="%g">%s</text>`+"\n", lx+24, ly+8, escape(s.Name))
		ly += 16
	}

	b.WriteString("</svg>\n")
	return b.String(), nil
}

// BarGroup is one x-axis group of a grouped bar chart.
type BarGroup struct {
	// Label names the group (e.g. a benchmark).
	Label string
	// Values are the group's bars, one per chart series.
	Values []float64
}

// BarChart is a grouped bar chart with an optional log₁₀ value axis.
type BarChart struct {
	Title  string
	YLabel string
	// SeriesNames label the bars within each group (legend entries).
	SeriesNames []string
	Groups      []BarGroup
	Width       int
	Height      int
	// LogY uses a log₁₀ y-axis (all values must be positive).
	LogY bool
}

// SVG renders the bar chart.
func (c *BarChart) SVG() (string, error) {
	if len(c.Groups) == 0 || len(c.SeriesNames) == 0 {
		return "", errors.New("plot: bar chart needs groups and series names")
	}
	w, h := float64(orDefault(c.Width, 720)), float64(orDefault(c.Height, 420))
	ymin, ymax := math.Inf(1), math.Inf(-1)
	for _, g := range c.Groups {
		if len(g.Values) != len(c.SeriesNames) {
			return "", fmt.Errorf("plot: group %q has %d values for %d series", g.Label, len(g.Values), len(c.SeriesNames))
		}
		for _, v := range g.Values {
			if c.LogY && v <= 0 {
				return "", fmt.Errorf("plot: group %q has non-positive value on a log axis", g.Label)
			}
			ymin, ymax = math.Min(ymin, v), math.Max(ymax, v)
		}
	}
	if !c.LogY {
		ymin = 0
	}
	if c.LogY && (ymin <= 0 || ymax < ymin) {
		// The per-value validation above guarantees a positive range;
		// re-check the aggregate so a poisoned bound can never reach the
		// log below.
		return "", errors.New("plot: invalid y range on a log axis")
	}
	yform := func(v float64) float64 {
		lo, hi, val := ymin, ymax, v
		if c.LogY {
			if v <= 0 {
				v = ymin // group validation guarantees positive values; clamp defensively
			}
			lo, hi, val = math.Log10(ymin), math.Log10(ymax), math.Log10(v)
		}
		if hi-lo == 0 {
			return h - marginBottom
		}
		return h - marginBottom - (val-lo)/(hi-lo)*(h-marginTop-marginBottom)*0.95
	}

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%g" height="%g" viewBox="0 0 %g %g" font-family="sans-serif" font-size="12">`+"\n", w, h, w, h)
	fmt.Fprintf(&b, `<rect width="%g" height="%g" fill="white"/>`+"\n", w, h)
	if c.Title != "" {
		fmt.Fprintf(&b, `<text x="%g" y="20" text-anchor="middle" font-size="14" font-weight="bold">%s</text>`+"\n", w/2, escape(c.Title))
	}
	fmt.Fprintf(&b, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="black"/>`+"\n", marginLeft, h-marginBottom, w-marginRight, h-marginBottom)
	fmt.Fprintf(&b, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="black"/>`+"\n", marginLeft, marginTop, marginLeft, h-marginBottom)

	groupWidth := (w - marginLeft - marginRight) / float64(len(c.Groups))
	barWidth := groupWidth * 0.8 / float64(len(c.SeriesNames))
	for gi, g := range c.Groups {
		gx := marginLeft + groupWidth*float64(gi)
		for si, v := range g.Values {
			x := gx + groupWidth*0.1 + barWidth*float64(si)
			y := yform(v)
			color := Palette[si%len(Palette)]
			fmt.Fprintf(&b, `<rect x="%.2f" y="%.2f" width="%.2f" height="%.2f" fill="%s"/>`+"\n",
				x, y, barWidth*0.92, h-marginBottom-y, color)
			fmt.Fprintf(&b, `<text x="%.2f" y="%.2f" text-anchor="middle" font-size="9">%s</text>`+"\n",
				x+barWidth*0.46, y-3, formatTick(v))
		}
		fmt.Fprintf(&b, `<text x="%.2f" y="%g" text-anchor="middle">%s</text>`+"\n",
			gx+groupWidth/2, h-marginBottom+18, escape(g.Label))
	}
	if c.YLabel != "" {
		fmt.Fprintf(&b, `<text x="14" y="%g" text-anchor="middle" transform="rotate(-90 14 %g)">%s</text>`+"\n", (marginTop+h-marginBottom)/2, (marginTop+h-marginBottom)/2, escape(c.YLabel))
	}
	// Legend.
	lx, ly := marginLeft+10.0, marginTop+4.0
	for si, name := range c.SeriesNames {
		fmt.Fprintf(&b, `<rect x="%g" y="%g" width="12" height="12" fill="%s"/>`+"\n", lx, ly, Palette[si%len(Palette)])
		fmt.Fprintf(&b, `<text x="%g" y="%g">%s</text>`+"\n", lx+18, ly+10, escape(name))
		ly += 16
	}
	b.WriteString("</svg>\n")
	return b.String(), nil
}

// niceTicks returns ≈n round tick values covering [lo, hi].
func niceTicks(lo, hi float64, n int) []float64 {
	if hi <= lo || n < 2 {
		return []float64{lo, hi}
	}
	raw := (hi - lo) / float64(n)
	if raw <= 0 {
		return []float64{lo, hi} // hi > lo makes raw positive; defensive
	}
	mag := math.Pow(10, math.Floor(math.Log10(raw)))
	var step float64
	switch {
	case raw/mag < 1.5:
		step = mag
	case raw/mag < 3.5:
		step = 2 * mag
	case raw/mag < 7.5:
		step = 5 * mag
	default:
		step = 10 * mag
	}
	var out []float64
	for t := math.Ceil(lo/step) * step; t <= hi+step*1e-9; t += step {
		out = append(out, t)
	}
	return out
}

// xTicks collects distinct x values across series (capped to avoid
// clutter).
func xTicks(series []Series, logX bool, xmin, xmax float64) []float64 {
	seen := map[float64]bool{}
	var out []float64
	for _, s := range series {
		for _, x := range s.X {
			if !seen[x] {
				seen[x] = true
				out = append(out, x)
			}
		}
	}
	if len(out) > 14 {
		return niceTicks(xmin, xmax, 8)
	}
	sortFloats(out)
	return out
}

func sortFloats(xs []float64) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

func formatTick(v float64) string {
	//edlint:ignore floateq exact integrality test chooses the label format; a near-integer tick should still print digits
	if v == math.Trunc(v) && math.Abs(v) < 1e6 {
		return fmt.Sprintf("%.0f", v)
	}
	return fmt.Sprintf("%.3g", v)
}

func orDefault(v, def int) int {
	if v <= 0 {
		return def
	}
	return v
}

func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
