package trace

import (
	"math"
	"testing"

	"extradeep/internal/calltree"
	"extradeep/internal/mathutil"
)

// buildTestTrace returns a small valid trace with two epochs of two train
// steps each plus one validation step per epoch.
func buildTestTrace() *Trace {
	tr := &Trace{Rank: 0}
	time := 0.0
	for epoch := 0; epoch < 2; epoch++ {
		epochStart := time
		for step := 0; step < 2; step++ {
			start := time
			tr.Events = append(tr.Events,
				Event{Name: "EigenMetaKernel", Kind: calltree.KindCUDA, Start: start + 0.01, Duration: 0.05},
				Event{Name: "MPI_Allreduce", Kind: calltree.KindMPI, Start: start + 0.07, Duration: 0.02},
			)
			time += 0.1
			tr.Steps = append(tr.Steps, StepSpan{Epoch: epoch, Index: step, Phase: PhaseTrain, Start: start, End: time})
			// An asynchronous event right after the step ends.
			tr.Events = append(tr.Events,
				Event{Name: "Memcpy DtoH", Kind: calltree.KindMemcpy, Start: time + 0.001, Duration: 0.004, Bytes: 1024})
			time += 0.01
		}
		vStart := time
		tr.Events = append(tr.Events,
			Event{Name: "EigenMetaKernel", Kind: calltree.KindCUDA, Start: vStart + 0.01, Duration: 0.02})
		time += 0.05
		tr.Steps = append(tr.Steps, StepSpan{Epoch: epoch, Index: 2, Phase: PhaseValidation, Start: vStart, End: time})
		tr.Epochs = append(tr.Epochs, EpochSpan{Index: epoch, Start: epochStart, End: time})
		time += 0.02
	}
	tr.Sort()
	return tr
}

func TestPhaseString(t *testing.T) {
	if PhaseTrain.String() != "train" || PhaseValidation.String() != "validation" {
		t.Error("phase names wrong")
	}
}

func TestEventEndAndCategory(t *testing.T) {
	e := Event{Name: "ncclAllReduce", Kind: calltree.KindNCCL, Start: 1.5, Duration: 0.5}
	if !mathutil.Close(e.End(), 2.0) {
		t.Errorf("End = %v", e.End())
	}
	if e.Category() != calltree.CategoryCommunication {
		t.Errorf("Category = %v", e.Category())
	}
}

func TestStepSpanContains(t *testing.T) {
	s := StepSpan{Start: 1, End: 2}
	if !s.Contains(1) {
		t.Error("start should be contained")
	}
	if s.Contains(2) {
		t.Error("end should be exclusive")
	}
	if s.Contains(0.5) || s.Contains(3) {
		t.Error("outside times contained")
	}
	if !mathutil.Close(s.Duration(), 1) {
		t.Errorf("Duration = %v", s.Duration())
	}
}

func TestValidateAcceptsWellFormed(t *testing.T) {
	if err := buildTestTrace().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsNegativeDuration(t *testing.T) {
	tr := buildTestTrace()
	tr.Events[0].Duration = -1
	if tr.Validate() == nil {
		t.Error("negative duration accepted")
	}
}

func TestValidateRejectsUnnamedEvent(t *testing.T) {
	tr := buildTestTrace()
	tr.Events[0].Name = ""
	if tr.Validate() == nil {
		t.Error("unnamed event accepted")
	}
}

func TestValidateRejectsOverlappingSteps(t *testing.T) {
	tr := &Trace{
		Steps: []StepSpan{
			{Epoch: 0, Index: 0, Start: 0, End: 1},
			{Epoch: 0, Index: 1, Start: 0.5, End: 1.5},
		},
		Epochs: []EpochSpan{{Index: 0, Start: 0, End: 2}},
	}
	if tr.Validate() == nil {
		t.Error("overlapping steps accepted")
	}
}

func TestValidateRejectsStepOutsideEpoch(t *testing.T) {
	tr := &Trace{
		Steps:  []StepSpan{{Epoch: 0, Index: 0, Start: 0, End: 5}},
		Epochs: []EpochSpan{{Index: 0, Start: 0, End: 2}},
	}
	if tr.Validate() == nil {
		t.Error("step escaping epoch accepted")
	}
}

func TestValidateRejectsMissingEpoch(t *testing.T) {
	tr := &Trace{Steps: []StepSpan{{Epoch: 7, Start: 0, End: 1}}}
	if tr.Validate() == nil {
		t.Error("step referencing missing epoch accepted")
	}
}

func TestValidateRejectsInvertedSpans(t *testing.T) {
	tr := &Trace{Epochs: []EpochSpan{{Index: 0, Start: 2, End: 1}}}
	if tr.Validate() == nil {
		t.Error("inverted epoch accepted")
	}
	tr2 := &Trace{
		Steps:  []StepSpan{{Epoch: 0, Start: 2, End: 1}},
		Epochs: []EpochSpan{{Index: 0, Start: 0, End: 3}},
	}
	if tr2.Validate() == nil {
		t.Error("inverted step accepted")
	}
}

func TestValidateRejectsNonFiniteMetrics(t *testing.T) {
	nan := math.NaN()
	inf := math.Inf(1)
	cases := []struct {
		name   string
		mutate func(tr *Trace)
	}{
		{"NaN event start", func(tr *Trace) { tr.Events[0].Start = nan }},
		{"Inf event duration", func(tr *Trace) { tr.Events[0].Duration = inf }},
		{"NaN event bytes", func(tr *Trace) { tr.Events[0].Bytes = nan }},
		{"negative event bytes", func(tr *Trace) { tr.Events[0].Bytes = -4096 }},
		{"negative event count", func(tr *Trace) { tr.Events[0].Count = -1 }},
		{"NaN step start", func(tr *Trace) { tr.Steps[0].Start = nan }},
		{"Inf step end", func(tr *Trace) { tr.Steps[0].End = inf }},
		{"NaN epoch start", func(tr *Trace) { tr.Epochs[0].Start = nan }},
		{"-Inf epoch end", func(tr *Trace) { tr.Epochs[0].End = math.Inf(-1) }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			tr := buildTestTrace()
			c.mutate(tr)
			if tr.Validate() == nil {
				t.Error("corrupt metric accepted")
			}
		})
	}
}

func TestStepOf(t *testing.T) {
	tr := buildTestTrace()
	// Inside the first step.
	if got := tr.StepOf(0.05); got != 0 {
		t.Errorf("StepOf(0.05) = %d, want 0", got)
	}
	// Between step 0 and step 1 (async region).
	if got := tr.StepOf(0.105); got != -1 {
		t.Errorf("StepOf(0.105) = %d, want -1", got)
	}
	// After everything.
	if got := tr.StepOf(1e9); got != -1 {
		t.Errorf("StepOf(+inf) = %d, want -1", got)
	}
}

func TestFollowingStep(t *testing.T) {
	tr := buildTestTrace()
	// In the async gap after step 0 the following step is step 1.
	idx := tr.FollowingStep(0.105)
	if idx == -1 || tr.Steps[idx].Index != 1 {
		t.Errorf("FollowingStep = %d", idx)
	}
	if got := tr.FollowingStep(1e9); got != -1 {
		t.Errorf("FollowingStep past end = %d, want -1", got)
	}
	if got := tr.FollowingStep(-1); got != 0 {
		t.Errorf("FollowingStep before start = %d, want 0", got)
	}
}

func TestStepsOfPhase(t *testing.T) {
	tr := buildTestTrace()
	train := tr.StepsOfPhase(PhaseTrain)
	if len(train) != 4 {
		t.Errorf("train steps = %d, want 4", len(train))
	}
	val := tr.StepsOfPhase(PhaseValidation)
	if len(val) != 2 {
		t.Errorf("validation steps = %d, want 2", len(val))
	}
}

func TestStepsOfPhaseSkipsWarmup(t *testing.T) {
	tr := buildTestTrace()
	// Skipping epoch 0 (warm-up) leaves only epoch 1 steps.
	train := tr.StepsOfPhase(PhaseTrain, 0)
	if len(train) != 2 {
		t.Fatalf("train steps after skip = %d, want 2", len(train))
	}
	for _, i := range train {
		if tr.Steps[i].Epoch != 1 {
			t.Errorf("step %d from wrong epoch %d", i, tr.Steps[i].Epoch)
		}
	}
}

func TestSortOrdersEverything(t *testing.T) {
	tr := &Trace{
		Events: []Event{{Name: "b", Start: 2}, {Name: "a", Start: 1}},
		Steps:  []StepSpan{{Index: 1, Start: 2, End: 3}, {Index: 0, Start: 0, End: 1}},
		Epochs: []EpochSpan{{Index: 1, Start: 5}, {Index: 0, Start: 0}},
	}
	tr.Sort()
	if tr.Events[0].Name != "a" || tr.Steps[0].Index != 0 || tr.Epochs[0].Index != 0 {
		t.Error("Sort did not order by start time")
	}
}

func TestTotalDuration(t *testing.T) {
	tr := buildTestTrace()
	d := tr.TotalDuration()
	if d <= 0 {
		t.Errorf("TotalDuration = %v", d)
	}
	empty := &Trace{}
	if empty.TotalDuration() != 0 {
		t.Error("empty trace should have zero duration")
	}
}
