package trace

import (
	"bytes"
	"encoding/json"
	"testing"
)

func TestWriteChromeTrace(t *testing.T) {
	tr := buildTestTrace()
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf, 3); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	want := len(tr.Events) + len(tr.Steps) + len(tr.Epochs)
	if len(events) != want {
		t.Fatalf("events = %d, want %d", len(events), want)
	}
	lanes := make(map[string]bool)
	for _, e := range events {
		if e["ph"] != "X" {
			t.Errorf("phase = %v, want X", e["ph"])
		}
		if int(e["pid"].(float64)) != 3 {
			t.Errorf("pid = %v, want 3", e["pid"])
		}
		lanes[e["tid"].(string)] = true
		if e["dur"].(float64) < 0 {
			t.Error("negative duration")
		}
	}
	for _, lane := range []string{"0-epochs", "1-steps", "2-cuda", "2-mpi", "2-memcpy"} {
		if !lanes[lane] {
			t.Errorf("lane %q missing (have %v)", lane, lanes)
		}
	}
}

func TestWriteChromeTraceArgs(t *testing.T) {
	tr := buildTestTrace()
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf, 0); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatal(err)
	}
	sawBytes := false
	for _, e := range events {
		if args, ok := e["args"].(map[string]any); ok {
			if _, ok := args["bytes"]; ok {
				sawBytes = true
			}
		}
	}
	if !sawBytes {
		t.Error("memcpy bytes not exported")
	}
}

func TestWriteChromeTraceEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := (&Trace{}).WriteChromeTrace(&buf, 0); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatal(err)
	}
	if len(events) != 0 {
		t.Errorf("empty trace produced %d events", len(events))
	}
}
