package trace

import (
	"encoding/json"
	"fmt"
	"io"
)

// chromeEvent is one entry of the Chrome trace-event ("catapult") format,
// which chrome://tracing and Perfetto render as a timeline.
type chromeEvent struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	TS    float64        `json:"ts"`  // microseconds
	Dur   float64        `json:"dur"` // microseconds
	PID   int            `json:"pid"`
	TID   string         `json:"tid"`
	Cat   string         `json:"cat,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// WriteChromeTrace serializes the trace as a Chrome trace-event JSON array
// so it can be opened in chrome://tracing or https://ui.perfetto.dev.
// Events are grouped into one lane ("thread") per kernel kind; step and
// epoch spans get their own lanes. pid labels the process (use the MPI
// rank).
func (t *Trace) WriteChromeTrace(w io.Writer, pid int) error {
	events := make([]chromeEvent, 0, len(t.Events)+len(t.Steps)+len(t.Epochs))
	for _, e := range t.Epochs {
		events = append(events, chromeEvent{
			Name: fmt.Sprintf("epoch %d", e.Index), Phase: "X",
			TS: e.Start * 1e6, Dur: e.Duration() * 1e6,
			PID: pid, TID: "0-epochs", Cat: "phase",
		})
	}
	for _, s := range t.Steps {
		events = append(events, chromeEvent{
			Name: fmt.Sprintf("%s step %d", s.Phase, s.Index), Phase: "X",
			TS: s.Start * 1e6, Dur: s.Duration() * 1e6,
			PID: pid, TID: "1-steps", Cat: "phase",
			Args: map[string]any{"epoch": s.Epoch},
		})
	}
	for _, e := range t.Events {
		ev := chromeEvent{
			Name: e.Name, Phase: "X",
			TS: e.Start * 1e6, Dur: e.Duration * 1e6,
			PID: pid, TID: "2-" + e.Kind.String(), Cat: e.Category().String(),
		}
		args := map[string]any{}
		if e.Callpath != "" {
			args["callpath"] = e.Callpath
		}
		if e.Bytes > 0 {
			args["bytes"] = e.Bytes
		}
		if e.Count > 1 {
			args["count"] = e.Count
		}
		if len(args) > 0 {
			ev.Args = args
		}
		events = append(events, ev)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(events)
}
