// Package trace defines the raw profiling data produced for one MPI rank
// of one application run: a stream of timestamped kernel events plus the
// NVTX step and epoch spans injected by the instrumentation (step (1) of
// Fig. 2 in the paper). Times are seconds from process start.
package trace

import (
	"fmt"
	"math"
	"sort"

	"extradeep/internal/calltree"
)

// Phase distinguishes training from validation steps.
type Phase int

// The two step phases.
const (
	PhaseTrain Phase = iota
	PhaseValidation
)

// String returns "train" or "validation".
func (p Phase) String() string {
	if p == PhaseValidation {
		return "validation"
	}
	return "train"
}

// Event is one execution of a kernel or function.
type Event struct {
	// Name is the kernel name, e.g. "EigenMetaKernel" or "MPI_Allreduce".
	Name string `json:"name"`
	// Kind classifies the kernel's API.
	Kind calltree.Kind `json:"kind"`
	// Callpath locates the kernel in the call tree, e.g.
	// "App->train->EigenMetaKernel". Empty means top level.
	Callpath string `json:"callpath,omitempty"`
	// Start is the event begin time in seconds.
	Start float64 `json:"start"`
	// Duration is the event length in seconds.
	Duration float64 `json:"duration"`
	// Bytes is the number of transferred bytes for memory operations,
	// zero otherwise.
	Bytes float64 `json:"bytes,omitempty"`
	// Count is the number of kernel invocations this event represents.
	// Profilers emit one event per invocation (Count 0 or 1); the
	// simulator may coalesce the invocations of one kernel within a step
	// into a single event carrying their total duration and count.
	Count int `json:"count,omitempty"`
}

// Visits returns the number of invocations the event stands for (≥ 1).
func (e Event) Visits() float64 {
	if e.Count > 1 {
		return float64(e.Count)
	}
	return 1
}

// End returns the event end time.
func (e Event) End() float64 { return e.Start + e.Duration }

// Category returns the event's phase category.
func (e Event) Category() calltree.Category { return calltree.CategoryOf(e.Kind) }

// StepSpan is the NVTX-delimited extent of one training or validation step.
type StepSpan struct {
	// Epoch is the zero-based epoch index the step belongs to.
	Epoch int `json:"epoch"`
	// Index is the zero-based step index within the epoch.
	Index int `json:"index"`
	// Phase is train or validation.
	Phase Phase `json:"phase"`
	// Start and End delimit the span in seconds.
	Start float64 `json:"start"`
	End   float64 `json:"end"`
}

// Contains reports whether time t falls inside the span (start-inclusive).
func (s StepSpan) Contains(t float64) bool { return t >= s.Start && t < s.End }

// Duration returns the span length.
func (s StepSpan) Duration() float64 { return s.End - s.Start }

// EpochSpan is the NVTX-delimited extent of one epoch.
type EpochSpan struct {
	// Index is the zero-based epoch index.
	Index int `json:"index"`
	// Start and End delimit the span in seconds.
	Start float64 `json:"start"`
	End   float64 `json:"end"`
}

// Duration returns the span length.
func (s EpochSpan) Duration() float64 { return s.End - s.Start }

// Trace is the complete per-rank profiling output of one run.
type Trace struct {
	// Rank is the MPI rank the trace belongs to.
	Rank int `json:"rank"`
	// Events are the recorded kernel executions, ordered by start time.
	Events []Event `json:"events"`
	// Steps are the NVTX step spans, ordered by start time.
	Steps []StepSpan `json:"steps"`
	// Epochs are the NVTX epoch spans, ordered by start time.
	Epochs []EpochSpan `json:"epochs"`
}

// Sort orders events, steps and epochs by start time. Aggregation assumes
// sorted traces.
func (t *Trace) Sort() {
	sort.SliceStable(t.Events, func(i, j int) bool { return t.Events[i].Start < t.Events[j].Start })
	sort.SliceStable(t.Steps, func(i, j int) bool { return t.Steps[i].Start < t.Steps[j].Start })
	sort.SliceStable(t.Epochs, func(i, j int) bool { return t.Epochs[i].Start < t.Epochs[j].Start })
}

// finite reports whether every value is a finite number (not NaN or ±Inf).
func finite(vs ...float64) bool {
	for _, v := range vs {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	return true
}

// Validate checks structural invariants: spans are well-formed, steps are
// non-overlapping and ordered, step spans nest inside their epoch span,
// events have non-negative durations, and every metric value is a finite
// number — a NaN or Inf admitted here would silently poison every median
// downstream, so corrupted measurements are rejected at the boundary.
func (t *Trace) Validate() error {
	for i, e := range t.Events {
		if !finite(e.Start, e.Duration, e.Bytes) {
			return fmt.Errorf("trace: event %d (%s) has non-finite metric value (start %v, duration %v, bytes %v)",
				i, e.Name, e.Start, e.Duration, e.Bytes)
		}
		if e.Duration < 0 {
			return fmt.Errorf("trace: event %d (%s) has negative duration %v", i, e.Name, e.Duration)
		}
		if e.Bytes < 0 {
			return fmt.Errorf("trace: event %d (%s) has negative byte count %v", i, e.Name, e.Bytes)
		}
		if e.Count < 0 {
			return fmt.Errorf("trace: event %d (%s) has negative invocation count %d", i, e.Name, e.Count)
		}
		if e.Name == "" {
			return fmt.Errorf("trace: event %d has no name", i)
		}
	}
	for i, s := range t.Steps {
		if !finite(s.Start, s.End) {
			return fmt.Errorf("trace: step %d/%d has non-finite bounds [%v, %v]", s.Epoch, s.Index, s.Start, s.End)
		}
		if s.End < s.Start {
			return fmt.Errorf("trace: step %d/%d ends before it starts", s.Epoch, s.Index)
		}
		if i > 0 && s.Start < t.Steps[i-1].End {
			return fmt.Errorf("trace: step %d/%d overlaps its predecessor", s.Epoch, s.Index)
		}
	}
	epochByIndex := make(map[int]EpochSpan, len(t.Epochs))
	for _, e := range t.Epochs {
		if !finite(e.Start, e.End) {
			return fmt.Errorf("trace: epoch %d has non-finite bounds [%v, %v]", e.Index, e.Start, e.End)
		}
		if e.End < e.Start {
			return fmt.Errorf("trace: epoch %d ends before it starts", e.Index)
		}
		epochByIndex[e.Index] = e
	}
	for _, s := range t.Steps {
		ep, ok := epochByIndex[s.Epoch]
		if !ok {
			return fmt.Errorf("trace: step %d/%d references missing epoch", s.Epoch, s.Index)
		}
		if s.Start < ep.Start || s.End > ep.End {
			return fmt.Errorf("trace: step %d/%d escapes its epoch span", s.Epoch, s.Index)
		}
	}
	return nil
}

// StepOf returns the index into Steps of the span containing time t, or
// -1 when t falls between steps (an asynchronous region).
func (t *Trace) StepOf(time float64) int {
	// Binary search on the sorted step starts.
	i := sort.Search(len(t.Steps), func(i int) bool { return t.Steps[i].End > time })
	if i < len(t.Steps) && t.Steps[i].Contains(time) {
		return i
	}
	return -1
}

// FollowingStep returns the index of the first step starting at or after
// time t, or -1 when no such step exists. Asynchronous kernels that fall
// between two steps are attributed to the following step, mirroring the
// paper's treatment of between-step kernels (Section 2.2).
func (t *Trace) FollowingStep(time float64) int {
	i := sort.Search(len(t.Steps), func(i int) bool { return t.Steps[i].Start >= time })
	if i < len(t.Steps) {
		return i
	}
	return -1
}

// StepsOfPhase returns the indices of all steps of the given phase in all
// epochs except those listed in skipEpochs (e.g. the warm-up epoch whose
// measurements are discarded).
func (t *Trace) StepsOfPhase(phase Phase, skipEpochs ...int) []int {
	skip := make(map[int]bool, len(skipEpochs))
	for _, e := range skipEpochs {
		skip[e] = true
	}
	var out []int
	for i, s := range t.Steps {
		if s.Phase == phase && !skip[s.Epoch] {
			out = append(out, i)
		}
	}
	return out
}

// TotalDuration returns the time between the first event/span start and
// the last event/span end, or 0 for an empty trace.
func (t *Trace) TotalDuration() float64 {
	var lo, hi float64
	set := false
	upd := func(start, end float64) {
		if !set {
			lo, hi, set = start, end, true
			return
		}
		if start < lo {
			lo = start
		}
		if end > hi {
			hi = end
		}
	}
	for _, e := range t.Events {
		upd(e.Start, e.End())
	}
	for _, s := range t.Steps {
		upd(s.Start, s.End)
	}
	for _, e := range t.Epochs {
		upd(e.Start, e.End)
	}
	if !set {
		return 0
	}
	return hi - lo
}
