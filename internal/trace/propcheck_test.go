package trace_test

import (
	"fmt"
	"reflect"
	"testing"

	"extradeep/internal/propcheck"
	"extradeep/internal/propcheck/edgen"
	"extradeep/internal/trace"
)

// TestPropSortIsIdempotentAndPreservesValidity: sorting a valid trace
// keeps it valid, and sorting twice changes nothing.
func TestPropSortIsIdempotentAndPreservesValidity(t *testing.T) {
	propcheck.Check(t, edgen.Trace(edgen.TraceShape{}), func(tr trace.Trace) error {
		tr.Sort()
		if err := tr.Validate(); err != nil {
			return fmt.Errorf("sorted trace invalid: %w", err)
		}
		again := tr
		again.Events = append([]trace.Event(nil), tr.Events...)
		again.Steps = append([]trace.StepSpan(nil), tr.Steps...)
		again.Epochs = append([]trace.EpochSpan(nil), tr.Epochs...)
		again.Sort()
		if !reflect.DeepEqual(tr, again) {
			return fmt.Errorf("second sort changed the trace")
		}
		return nil
	})
}

// TestPropStepLookupConsistent: for every step span, StepOf finds it from
// any interior time, FollowingStep(start) returns the step itself, and the
// exclusive end does not belong to the step.
func TestPropStepLookupConsistent(t *testing.T) {
	propcheck.Check(t, edgen.Trace(edgen.TraceShape{}), func(tr trace.Trace) error {
		for i, s := range tr.Steps {
			mid := s.Start + s.Duration()/2
			if got := tr.StepOf(mid); got != i {
				return fmt.Errorf("StepOf(mid of step %d) = %d", i, got)
			}
			if got := tr.StepOf(s.Start); got != i {
				return fmt.Errorf("StepOf(start of step %d) = %d (start is inclusive)", i, got)
			}
			if got := tr.FollowingStep(s.Start); got != i {
				return fmt.Errorf("FollowingStep(start of step %d) = %d", i, got)
			}
			if got := tr.StepOf(s.End); got == i {
				return fmt.Errorf("StepOf(end of step %d) = %d (end is exclusive)", i, got)
			}
		}
		return nil
	})
}

// TestPropStepsOfPhasePartition: every step index appears in exactly one
// of the train/validation phase lists, and skipping an epoch removes
// exactly that epoch's steps.
func TestPropStepsOfPhasePartition(t *testing.T) {
	propcheck.Check(t, edgen.Trace(edgen.TraceShape{}), func(tr trace.Trace) error {
		train := tr.StepsOfPhase(trace.PhaseTrain)
		val := tr.StepsOfPhase(trace.PhaseValidation)
		if len(train)+len(val) != len(tr.Steps) {
			return fmt.Errorf("phases partition %d+%d steps of %d", len(train), len(val), len(tr.Steps))
		}
		seen := map[int]bool{}
		for _, i := range append(append([]int(nil), train...), val...) {
			if seen[i] {
				return fmt.Errorf("step %d listed twice", i)
			}
			seen[i] = true
		}
		trainSkip0 := tr.StepsOfPhase(trace.PhaseTrain, 0)
		for _, i := range trainSkip0 {
			if tr.Steps[i].Epoch == 0 {
				return fmt.Errorf("step %d of skipped epoch 0 still listed", i)
			}
		}
		want := 0
		for _, i := range train {
			if tr.Steps[i].Epoch != 0 {
				want++
			}
		}
		if len(trainSkip0) != want {
			return fmt.Errorf("skip-epoch list has %d steps, want %d", len(trainSkip0), want)
		}
		return nil
	})
}
