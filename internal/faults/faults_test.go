package faults

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"unicode/utf8"
)

const sampleCSV = `# extradeep-csv v1
# app=cifar10
# params=p
# config=4
# rank=0
# rep=1
# wall=12.5
# sampled=true
epoch,0,0,0.2
step,0,0,train,0,0.1
event,EigenMetaKernel,cuda,App->train->EigenMetaKernel,0.01,0.05,0,1
`

const sampleJSON = `{"app":"cifar10","params":["p"],"config":[4],"rank":0,"rep":1,` +
	`"wall_time":12.5,"sampled":true,"trace":{"rank":0,` +
	`"events":[{"name":"EigenMetaKernel","kind":1,"start":0.01,"duration":0.05}],` +
	`"steps":[{"epoch":0,"index":0,"phase":0,"start":0,"end":0.1}],` +
	`"epochs":[{"index":0,"start":0,"end":0.2}]}}`

func TestApplyIsDeterministic(t *testing.T) {
	for _, k := range Kinds() {
		for _, tc := range []struct {
			format string
			data   string
		}{{"csv", sampleCSV}, {"json", sampleJSON}} {
			a, err := Apply(k, []byte(tc.data), tc.format)
			if err != nil {
				t.Fatalf("%s/%s: %v", k, tc.format, err)
			}
			b, err := Apply(k, []byte(tc.data), tc.format)
			if err != nil {
				t.Fatalf("%s/%s: %v", k, tc.format, err)
			}
			if !bytes.Equal(a, b) {
				t.Errorf("%s/%s: two applications differ", k, tc.format)
			}
		}
	}
}

func TestApplyMutatesExceptDuplicate(t *testing.T) {
	for _, k := range Kinds() {
		out, err := Apply(k, []byte(sampleCSV), "csv")
		if err != nil {
			t.Fatalf("%s: %v", k, err)
		}
		if k == DuplicateRankRep {
			if !bytes.Equal(out, []byte(sampleCSV)) {
				t.Errorf("%s: duplicate must keep bytes unchanged", k)
			}
			continue
		}
		if bytes.Equal(out, []byte(sampleCSV)) {
			t.Errorf("%s: corruption left the input unchanged", k)
		}
	}
}

func TestTruncateEndsMidLine(t *testing.T) {
	out, err := Apply(Truncate, []byte(sampleCSV), "csv")
	if err != nil {
		t.Fatal(err)
	}
	if len(out) >= len(sampleCSV) {
		t.Fatalf("truncate kept %d of %d bytes", len(out), len(sampleCSV))
	}
	if len(out) > 0 && out[len(out)-1] == '\n' {
		t.Error("truncate ended on a line boundary")
	}
}

func TestEmptyAndInvalidUTF8(t *testing.T) {
	out, err := Apply(Empty, []byte(sampleJSON), "json")
	if err != nil || len(out) != 0 {
		t.Fatalf("Empty: %v, %d bytes", err, len(out))
	}
	out, err = Apply(InvalidUTF8, []byte(sampleCSV), "csv")
	if err != nil {
		t.Fatal(err)
	}
	if utf8.Valid(out) {
		t.Error("InvalidUTF8 produced valid UTF-8")
	}
}

func TestSemanticKindsTargetTheDurationField(t *testing.T) {
	cases := []struct {
		kind     Kind
		format   string
		data     string
		fragment string
	}{
		{NaNMetric, "csv", sampleCSV, ",NaN,"},
		{InfMetric, "csv", sampleCSV, ",Inf,"},
		{NegativeDuration, "csv", sampleCSV, ",-0.5,"},
		{NaNMetric, "json", sampleJSON, `"duration":NaN`},
		{InfMetric, "json", sampleJSON, `"duration":1e999`},
		{NegativeDuration, "json", sampleJSON, `"duration":-0.5`},
	}
	for _, c := range cases {
		out, err := Apply(c.kind, []byte(c.data), c.format)
		if err != nil {
			t.Fatalf("%s/%s: %v", c.kind, c.format, err)
		}
		if !strings.Contains(string(out), c.fragment) {
			t.Errorf("%s/%s: output lacks %q:\n%s", c.kind, c.format, c.fragment, out)
		}
	}
}

func TestMissingHeader(t *testing.T) {
	out, err := Apply(MissingHeader, []byte(sampleCSV), "csv")
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(out), "extradeep-csv v1") {
		t.Error("magic header survived")
	}
	out, err = Apply(MissingHeader, []byte(sampleJSON), "json")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(out), `"app":""`) {
		t.Errorf("app field not blanked:\n%s", out)
	}
}

func TestApplyRejectsUnknownFormatAndKind(t *testing.T) {
	if _, err := Apply(Truncate, []byte(sampleCSV), "xml"); err == nil {
		t.Error("unknown format accepted")
	}
	if _, err := Apply(Kind(99), []byte(sampleCSV), "csv"); err == nil {
		t.Error("unknown kind accepted")
	}
	if _, err := Apply(NaNMetric, []byte("# extradeep-csv v1\n"), "csv"); err == nil {
		t.Error("NaNMetric without an event record accepted")
	}
}

func TestCorruptFileInPlaceAndDuplicate(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "cifar10.x4.mpi0.r1.csv")
	if err := os.WriteFile(path, []byte(sampleCSV), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := CorruptFile(path, Truncate)
	if err != nil {
		t.Fatal(err)
	}
	if out != path {
		t.Errorf("in-place corruption returned %q", out)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) >= len(sampleCSV) {
		t.Error("file not truncated in place")
	}

	if err := os.WriteFile(path, []byte(sampleCSV), 0o644); err != nil {
		t.Fatal(err)
	}
	dup, err := CorruptFile(path, DuplicateRankRep)
	if err != nil {
		t.Fatal(err)
	}
	if dup == path || filepath.Base(dup) != "zz-dup-cifar10.x4.mpi0.r1.csv" {
		t.Errorf("duplicate written to %q", dup)
	}
	dupData, err := os.ReadFile(dup)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dupData, []byte(sampleCSV)) {
		t.Error("duplicate differs from original")
	}
}

func TestKindStrings(t *testing.T) {
	seen := map[string]bool{}
	for _, k := range Kinds() {
		s := k.String()
		if s == "" || strings.HasPrefix(s, "kind(") {
			t.Errorf("kind %d has no name", int(k))
		}
		if seen[s] {
			t.Errorf("duplicate kind name %q", s)
		}
		seen[s] = true
	}
}
