// Package faults deterministically corrupts valid profile files, modeling
// the damage real profiling campaigns produce on shared clusters: killed
// jobs truncate exports, full filesystems leave empty or garbage files,
// buggy converters emit NaN/Inf metric values or drop interchange-format
// headers, and retried jobs duplicate rank/repetition files. The ingest
// layer and the fuzz targets use this harness to prove the loaders
// quarantine every corruption kind instead of aborting or smuggling
// non-finite values into the pipeline.
//
// All mutations are deterministic functions of the input bytes — no
// randomness — so a corruption that quarantines in a test quarantines
// forever.
//
// This harness covers at-rest damage: what the bytes on disk look like
// after something went wrong. Its runtime counterpart is
// internal/resilience's fault Injector, which applies the same
// determinism discipline to the pipeline's execution — seeded,
// schedule-replayable stage errors, panics, stalls, and cancellations
// (see DESIGN.md §13).
package faults

import (
	"bytes"
	"encoding/csv"
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// Kind enumerates the supported corruption kinds.
type Kind int

// The corruption kinds, roughly ordered from byte-level to semantic.
const (
	// Truncate cuts the file roughly in half, as a killed job or full
	// filesystem would, leaving a partial final line or JSON object.
	Truncate Kind = iota
	// Garbage overwrites the leading bytes with a 0xFE pattern,
	// destroying the JSON opening or the CSV magic header.
	Garbage
	// Empty replaces the file with zero bytes.
	Empty
	// InvalidUTF8 prepends an invalid UTF-8 byte sequence.
	InvalidUTF8
	// NaNMetric sets an event duration to NaN — syntactically valid in
	// CSV, where only semantic validation can catch it.
	NaNMetric
	// InfMetric sets an event duration to +Inf (an out-of-range number
	// literal in JSON).
	InfMetric
	// NegativeDuration sets an event duration to a negative value.
	NegativeDuration
	// MissingHeader removes the CSV magic line, or blanks the JSON "app"
	// field, so the file no longer identifies itself.
	MissingHeader
	// DuplicateRankRep duplicates a valid file under a second name, so
	// two profiles claim the same (app, configuration, rank, repetition).
	// Apply returns the bytes unchanged; CorruptFile writes the copy.
	DuplicateRankRep
)

// Kinds returns every corruption kind, for table-driven tests.
func Kinds() []Kind {
	return []Kind{
		Truncate, Garbage, Empty, InvalidUTF8, NaNMetric, InfMetric,
		NegativeDuration, MissingHeader, DuplicateRankRep,
	}
}

// String names the corruption kind.
func (k Kind) String() string {
	switch k {
	case Truncate:
		return "truncate"
	case Garbage:
		return "garbage"
	case Empty:
		return "empty"
	case InvalidUTF8:
		return "invalid-utf8"
	case NaNMetric:
		return "nan-metric"
	case InfMetric:
		return "inf-metric"
	case NegativeDuration:
		return "negative-duration"
	case MissingHeader:
		return "missing-header"
	case DuplicateRankRep:
		return "duplicate-rank-rep"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Apply returns a corrupted copy of a valid profile file's bytes. format
// is "json" (native store) or "csv" (interchange format); the semantic
// kinds need it to locate the fields they damage.
func Apply(k Kind, data []byte, format string) ([]byte, error) {
	if format != "json" && format != "csv" {
		return nil, fmt.Errorf("faults: unknown profile format %q", format)
	}
	switch k {
	case Truncate:
		return truncate(data), nil
	case Garbage:
		return garbage(data), nil
	case Empty:
		return []byte{}, nil
	case InvalidUTF8:
		return append([]byte{0xff, 0xfe, '\n'}, data...), nil
	case NaNMetric:
		return setEventDuration(data, format, "NaN")
	case InfMetric:
		if format == "json" {
			// JSON has no Inf literal; an out-of-range number is the
			// closest a converter can come to emitting one.
			return setEventDuration(data, format, "1e999")
		}
		return setEventDuration(data, format, "Inf")
	case NegativeDuration:
		return setEventDuration(data, format, "-0.5")
	case MissingHeader:
		if format == "json" {
			return blankJSONApp(data)
		}
		return dropCSVMagic(data)
	case DuplicateRankRep:
		// The corruption is set-level: the same bytes existing twice.
		return append([]byte(nil), data...), nil
	default:
		return nil, fmt.Errorf("faults: unknown corruption kind %d", int(k))
	}
}

// CorruptFile corrupts the file in place, inferring the format from the
// extension. For DuplicateRankRep it instead writes a colliding copy next
// to the original (prefixed so it sorts after every canonical name) and
// leaves the original intact. It returns the path of the corrupted file.
func CorruptFile(path string, k Kind) (string, error) {
	format := strings.TrimPrefix(filepath.Ext(path), ".")
	data, err := os.ReadFile(path)
	if err != nil {
		return "", fmt.Errorf("faults: %w", err)
	}
	mutated, err := Apply(k, data, format)
	if err != nil {
		return "", err
	}
	out := path
	if k == DuplicateRankRep {
		dir, base := filepath.Split(path)
		out = filepath.Join(dir, "zz-dup-"+base)
	}
	if err := os.WriteFile(out, mutated, 0o644); err != nil {
		return "", fmt.Errorf("faults: %w", err)
	}
	return out, nil
}

// truncate cuts the data in half; if the cut lands exactly on a line
// boundary it shaves one more byte so the final line is always partial.
func truncate(data []byte) []byte {
	n := len(data) / 2
	for n > 0 && data[n-1] == '\n' {
		n--
	}
	return append([]byte(nil), data[:n]...)
}

// garbage overwrites the first 16 bytes with 0xFE, clobbering the JSON
// opening brace or the CSV magic header.
func garbage(data []byte) []byte {
	out := append([]byte(nil), data...)
	for i := 0; i < len(out) && i < 16; i++ {
		out[i] = 0xfe
	}
	return out
}

// setEventDuration rewrites the duration of the first event to val.
func setEventDuration(data []byte, format, val string) ([]byte, error) {
	if format == "json" {
		return spliceJSONNumber(data, `"duration":`, val)
	}
	return spliceCSVEventField(data, 5, val)
}

// spliceJSONNumber replaces the numeric value following the first
// occurrence of key (e.g. `"duration":`) with val.
func spliceJSONNumber(data []byte, key, val string) ([]byte, error) {
	i := bytes.Index(data, []byte(key))
	if i < 0 {
		return nil, fmt.Errorf("faults: no %s field to corrupt", key)
	}
	start := i + len(key)
	end := start
	for end < len(data) && data[end] != ',' && data[end] != '}' {
		end++
	}
	if end == len(data) {
		return nil, fmt.Errorf("faults: unterminated %s value", key)
	}
	out := append([]byte(nil), data[:start]...)
	out = append(out, val...)
	return append(out, data[end:]...), nil
}

// spliceCSVEventField rewrites one field of the first "event" record.
func spliceCSVEventField(data []byte, field int, val string) ([]byte, error) {
	lines := strings.SplitAfter(string(data), "\n")
	for li, line := range lines {
		if !strings.HasPrefix(line, "event,") {
			continue
		}
		cr := csv.NewReader(strings.NewReader(line))
		cr.FieldsPerRecord = -1
		rec, err := cr.Read()
		if err != nil || len(rec) <= field {
			return nil, fmt.Errorf("faults: cannot parse event record %q", strings.TrimSpace(line))
		}
		rec[field] = val
		var buf strings.Builder
		cw := csv.NewWriter(&buf)
		if err := cw.Write(rec); err != nil {
			return nil, fmt.Errorf("faults: %w", err)
		}
		cw.Flush()
		if err := cw.Error(); err != nil {
			return nil, fmt.Errorf("faults: %w", err)
		}
		lines[li] = buf.String()
		return []byte(strings.Join(lines, "")), nil
	}
	return nil, fmt.Errorf("faults: no event record to corrupt")
}

// dropCSVMagic removes the "# extradeep-csv v1" magic line.
func dropCSVMagic(data []byte) ([]byte, error) {
	lines := strings.SplitAfter(string(data), "\n")
	for li, line := range lines {
		if strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(line), "#")) == "extradeep-csv v1" {
			return []byte(strings.Join(append(lines[:li:li], lines[li+1:]...), "")), nil
		}
	}
	return nil, fmt.Errorf("faults: no magic header to drop")
}

// blankJSONApp empties the "app" string of a native JSON profile.
func blankJSONApp(data []byte) ([]byte, error) {
	key := []byte(`"app":"`)
	i := bytes.Index(data, key)
	if i < 0 {
		return nil, fmt.Errorf("faults: no app field to blank")
	}
	start := i + len(key)
	end := start
	for end < len(data) && data[end] != '"' {
		if data[end] == '\\' {
			end++
		}
		end++
	}
	if end >= len(data) {
		return nil, fmt.Errorf("faults: unterminated app value")
	}
	return append(append([]byte(nil), data[:start]...), data[end:]...), nil
}
