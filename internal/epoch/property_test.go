package epoch

import (
	"math"
	"testing"
	"testing/quick"

	"extradeep/internal/aggregate"
)

// Property: KernelValue is linear in the step values — the per-epoch value
// of a sum of kernels equals the sum of per-epoch values (the property
// that makes category aggregation and per-kernel modeling consistent,
// Eqs. 4 and 6).
func TestKernelValueLinearity(t *testing.T) {
	p := Params{BatchSize: 64, TrainSamples: 10000, ValSamples: 2000, DataParallel: 4, ModelParallel: 1}
	f := func(t1, v1, t2, v2 float64) bool {
		if anyBad(t1, v1, t2, v2) {
			return true
		}
		a := aggregate.StepValue{Train: t1, Validation: v1}
		b := aggregate.StepValue{Train: t2, Validation: v2}
		sum := KernelValue(a.Add(b), p)
		parts := KernelValue(a, p) + KernelValue(b, p)
		return math.Abs(sum-parts) <= 1e-9*(1+math.Abs(sum))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: KernelValue scales linearly with the step value.
func TestKernelValueHomogeneity(t *testing.T) {
	p := Params{BatchSize: 32, TrainSamples: 5000, ValSamples: 1000, DataParallel: 2, ModelParallel: 1}
	f := func(tv, vv, k float64) bool {
		if anyBad(tv, vv, k) {
			return true
		}
		sv := aggregate.StepValue{Train: tv, Validation: vv}
		scaled := aggregate.StepValue{Train: tv * k, Validation: vv * k}
		lhs := KernelValue(scaled, p)
		rhs := k * KernelValue(sv, p)
		return math.Abs(lhs-rhs) <= 1e-6*(1+math.Abs(rhs))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: the number of training steps never increases when the batch
// size grows (Eq. 2 is monotone non-increasing in B).
func TestTrainStepsMonotoneInBatch(t *testing.T) {
	f := func(rawB1, rawB2 uint16) bool {
		b1 := float64(rawB1%1024) + 1
		b2 := float64(rawB2%1024) + 1
		if b1 > b2 {
			b1, b2 = b2, b1
		}
		p1 := Params{BatchSize: b1, TrainSamples: 100000, DataParallel: 4, ModelParallel: 1}
		p2 := p1
		p2.BatchSize = b2
		return p1.TrainSteps() >= p2.TrainSteps()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: weak scaling (D_t ∝ workers) keeps the step count invariant
// for any rank count and batch size.
func TestWeakScalingStepInvariance(t *testing.T) {
	f := func(rawRanks, rawBatch uint8) bool {
		ranks := float64(rawRanks%63) + 2
		batch := float64(rawBatch%255) + 1
		base := Params{BatchSize: batch, TrainSamples: 50000, DataParallel: 1, ModelParallel: 1}
		scaled := Params{BatchSize: batch, TrainSamples: 50000 * ranks, DataParallel: ranks, ModelParallel: 1}
		return base.TrainSteps() == scaled.TrainSteps()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func anyBad(xs ...float64) bool {
	for _, x := range xs {
		if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e12 {
			return true
		}
	}
	return false
}
