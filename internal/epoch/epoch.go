// Package epoch implements Extra-Deep's extrapolation of sampled per-step
// measurements to full training epochs (Section 2.3.1 of the paper):
//
//	n_t = ⌊(D_t/(G/M))/B⌋                      (Eq. 2)
//	n_v = ⌊(D_v/(G/M))/B⌋                      (Eq. 3)
//	F_kernel = n_t·ṽ_t + n_v·ṽ_v               (Eq. 4)
//	F_epoch  = n_t·(ṽ_t_comp+ṽ_t_comm+ṽ_t_mem)
//	         + n_v·(ṽ_v_comp+ṽ_v_comm+ṽ_v_mem) (Eq. 6)
//
// and assembles measurement experiments of the derived per-epoch metric
// values, which modeling then fits with the PMNF.
package epoch

import (
	"errors"
	"fmt"
	"math"

	"extradeep/internal/aggregate"
	"extradeep/internal/calltree"
	"extradeep/internal/measurement"
)

// Params are the analytical training-setup values the user provides once
// per application configuration (Section 2.3.1): batch size per worker B,
// dataset sizes, and the degrees of data and model parallelism.
type Params struct {
	// BatchSize is the batch size per worker B.
	BatchSize float64
	// TrainSamples is the number of samples in the training set D_t
	// (after any weak-scaling dataset replication).
	TrainSamples float64
	// ValSamples is the number of samples in the validation set D_v.
	ValSamples float64
	// DataParallel is the degree of data parallelism G.
	DataParallel float64
	// ModelParallel is the degree of model parallelism M.
	ModelParallel float64
}

// Validate checks that the parameters are usable.
func (p Params) Validate() error {
	if p.BatchSize <= 0 {
		return fmt.Errorf("epoch: batch size %v must be positive", p.BatchSize)
	}
	if p.DataParallel <= 0 || p.ModelParallel <= 0 {
		return fmt.Errorf("epoch: parallel degrees G=%v M=%v must be positive", p.DataParallel, p.ModelParallel)
	}
	if p.TrainSamples < 0 || p.ValSamples < 0 {
		return errors.New("epoch: negative dataset size")
	}
	return nil
}

// TrainSteps returns the number of training steps per epoch n_t (Eq. 2).
// Parameters that fail Validate yield 0 steps rather than a NaN-poisoned
// count.
func (p Params) TrainSteps() int {
	if p.BatchSize <= 0 || p.DataParallel <= 0 || p.ModelParallel <= 0 {
		return 0
	}
	return int(math.Floor(p.TrainSamples / (p.DataParallel / p.ModelParallel) / p.BatchSize))
}

// ValSteps returns the number of validation steps per epoch n_v (Eq. 3).
// Parameters that fail Validate yield 0 steps rather than a NaN-poisoned
// count.
func (p Params) ValSteps() int {
	if p.BatchSize <= 0 || p.DataParallel <= 0 || p.ModelParallel <= 0 {
		return 0
	}
	return int(math.Floor(p.ValSamples / (p.DataParallel / p.ModelParallel) / p.BatchSize))
}

// KernelValue computes the derived per-epoch metric value F_kernel (Eq. 4)
// from a kernel's final aggregate.
func KernelValue(sv aggregate.StepValue, p Params) float64 {
	return float64(p.TrainSteps())*sv.Train + float64(p.ValSteps())*sv.Validation
}

// SetupFunc maps an application configuration to its training-setup
// parameters; the dataset sizes may depend on the configuration (weak
// scaling multiplies the training set by the number of ranks).
type SetupFunc func(point measurement.Point) Params

// Callpath names for the synthetic application-level series.
const (
	// AppPath carries the total per-epoch value F_epoch (Eq. 6).
	AppPath = "App"
	// CompPath, CommPath and MemPath carry F_comp, F_comm, F_mem
	// (Eqs. 8–10).
	CompPath = "App(computation)"
	CommPath = "App(communication)"
	MemPath  = "App(memory)"
)

// CategoryPath returns the synthetic callpath for a phase category.
func CategoryPath(c calltree.Category) string {
	switch c {
	case calltree.CategoryComputation:
		return CompPath
	case calltree.CategoryCommunication:
		return CommPath
	case calltree.CategoryMemory:
		return MemPath
	default:
		return ""
	}
}

// BuildKernelExperiment assembles a measurement experiment of derived
// per-epoch values for every kernel (one series per metric and callpath,
// one repetition value per profiled repetition). Parameter names are taken
// from the first aggregate.
func BuildKernelExperiment(aggs []*aggregate.ConfigAggregate, setup SetupFunc) (*measurement.Experiment, error) {
	if len(aggs) == 0 {
		return nil, errors.New("epoch: no aggregates")
	}
	params := make([]measurement.Parameter, len(aggs[0].Params))
	for i, name := range aggs[0].Params {
		params[i] = measurement.Parameter{Name: name}
	}
	exp := measurement.NewExperiment(params...)
	for _, agg := range aggs {
		p := setup(agg.Point)
		if err := p.Validate(); err != nil {
			return nil, fmt.Errorf("epoch: setup for %s: %w", agg.Point.Key(), err)
		}
		for _, k := range agg.SortedKernels() {
			for _, metric := range sortedMetrics(k.PerRep) {
				perRep := k.PerRep[metric]
				reps := make([]float64, len(perRep))
				for i, sv := range perRep {
					reps[i] = KernelValue(sv, p)
				}
				if err := exp.Add(metric, k.Callpath, agg.Point, reps...); err != nil {
					return nil, err
				}
			}
		}
	}
	return exp, nil
}

// BuildApplicationExperiment assembles the application-level experiment:
// per metric, the category series F_comp/F_comm/F_mem (Eqs. 8–10) and the
// total F_epoch series (Eq. 6), with one repetition value per profiled
// repetition.
func BuildApplicationExperiment(aggs []*aggregate.ConfigAggregate, setup SetupFunc) (*measurement.Experiment, error) {
	if len(aggs) == 0 {
		return nil, errors.New("epoch: no aggregates")
	}
	params := make([]measurement.Parameter, len(aggs[0].Params))
	for i, name := range aggs[0].Params {
		params[i] = measurement.Parameter{Name: name}
	}
	exp := measurement.NewExperiment(params...)
	cats := []calltree.Category{
		calltree.CategoryComputation,
		calltree.CategoryCommunication,
		calltree.CategoryMemory,
	}
	for _, agg := range aggs {
		p := setup(agg.Point)
		if err := p.Validate(); err != nil {
			return nil, fmt.Errorf("epoch: setup for %s: %w", agg.Point.Key(), err)
		}
		totals := make([]float64, agg.Reps) // per-rep F_epoch for MetricTime
		for _, cat := range cats {
			byMetric := agg.CategoriesPerRep[cat]
			for _, metric := range sortedMetrics(byMetric) {
				perRep := byMetric[metric]
				reps := make([]float64, len(perRep))
				for i, sv := range perRep {
					reps[i] = KernelValue(sv, p)
					if metric == measurement.MetricTime && i < len(totals) {
						totals[i] += reps[i]
					}
				}
				if err := exp.Add(metric, CategoryPath(cat), agg.Point, reps...); err != nil {
					return nil, err
				}
			}
		}
		if err := exp.Add(measurement.MetricTime, AppPath, agg.Point, totals...); err != nil {
			return nil, err
		}
	}
	return exp, nil
}

// sortedMetrics returns the metric keys of a map in stable order.
func sortedMetrics[V any](m map[measurement.Metric]V) []measurement.Metric {
	order := []measurement.Metric{measurement.MetricTime, measurement.MetricVisits, measurement.MetricBytes}
	out := make([]measurement.Metric, 0, len(m))
	for _, k := range order {
		if _, ok := m[k]; ok {
			out = append(out, k)
		}
	}
	return out
}
