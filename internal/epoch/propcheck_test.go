package epoch_test

import (
	"fmt"
	"math"
	"math/big"
	"testing"

	"extradeep/internal/aggregate"
	"extradeep/internal/epoch"
	"extradeep/internal/propcheck"
	"extradeep/internal/propcheck/edgen"
)

// TestPropStepsMatchBigIntOracle: the float floor arithmetic of Eqs. 2–3,
// n = ⌊D/(G/M)/B⌋, agrees with exact big-int division D·M ÷ (G·B) across
// the generated parameter range (edgen bounds it so both sides are exact).
func TestPropStepsMatchBigIntOracle(t *testing.T) {
	propcheck.Check(t, edgen.EpochParams(), func(p epoch.Params) error {
		for _, c := range []struct {
			phase   string
			samples float64
			got     int
		}{
			{"train", p.TrainSamples, p.TrainSteps()},
			{"validation", p.ValSamples, p.ValSteps()},
		} {
			num := new(big.Int).Mul(big.NewInt(int64(c.samples)), big.NewInt(int64(p.ModelParallel)))
			den := new(big.Int).Mul(big.NewInt(int64(p.DataParallel)), big.NewInt(int64(p.BatchSize)))
			want := new(big.Int).Quo(num, den)
			if !want.IsInt64() || want.Int64() != int64(c.got) {
				return fmt.Errorf("%s steps: float floor gives %d, big-int oracle %s", c.phase, c.got, want)
			}
		}
		return nil
	})
}

// stepDelta pairs a valid training setup with an integer scaling factor
// for the monotonicity checks below.
type stepDelta struct {
	p epoch.Params
	f float64
}

func stepDeltaGen() propcheck.Gen[stepDelta] {
	pg := edgen.EpochParams()
	return propcheck.Gen[stepDelta]{
		Generate: func(r *propcheck.Rand) stepDelta {
			return stepDelta{p: pg.Generate(r), f: float64(r.IntRange(1, 8))}
		},
		Describe: func(d stepDelta) string {
			return fmt.Sprintf("{%s f=%g}", describeParams(d.p), d.f)
		},
	}
}

func describeParams(p epoch.Params) string {
	return fmt.Sprintf("Params{B=%g Dt=%g Dv=%g G=%g M=%g}",
		p.BatchSize, p.TrainSamples, p.ValSamples, p.DataParallel, p.ModelParallel)
}

// TestPropStepsMonotoneInSetup: Eq. 2 is monotone non-decreasing in the
// dataset size D_t and the model parallelism M, monotone non-increasing in
// the batch size B and the data parallelism G, and invariant when G and M
// scale together (G/M fixed).
func TestPropStepsMonotoneInSetup(t *testing.T) {
	propcheck.Check(t, stepDeltaGen(), func(d stepDelta) error {
		base := d.p.TrainSteps()

		q := d.p
		q.TrainSamples *= d.f
		if q.TrainSteps() < base {
			return fmt.Errorf("steps decreased from %d to %d when D_t grew ×%g", base, q.TrainSteps(), d.f)
		}
		q = d.p
		q.BatchSize *= d.f
		if q.TrainSteps() > base {
			return fmt.Errorf("steps increased from %d to %d when B grew ×%g", base, q.TrainSteps(), d.f)
		}
		q = d.p
		q.DataParallel *= d.f
		if q.TrainSteps() > base {
			return fmt.Errorf("steps increased from %d to %d when G grew ×%g", base, q.TrainSteps(), d.f)
		}
		q = d.p
		q.ModelParallel *= d.f
		if q.TrainSteps() < base {
			return fmt.Errorf("steps decreased from %d to %d when M grew ×%g", base, q.TrainSteps(), d.f)
		}
		q = d.p
		q.DataParallel *= d.f
		q.ModelParallel *= d.f
		if q.TrainSteps() != base {
			return fmt.Errorf("steps changed from %d to %d though G/M is fixed", base, q.TrainSteps())
		}
		return nil
	})
}

// kernelCase pairs a training setup with two step values and a scale, for
// the linearity/homogeneity invariants of Eq. 4.
type kernelCase struct {
	p              epoch.Params
	t1, v1, t2, v2 float64
	k              float64
}

func kernelCaseGen() propcheck.Gen[kernelCase] {
	pg := edgen.EpochParams()
	fg := propcheck.Float64Range(-1e6, 1e6)
	return propcheck.Gen[kernelCase]{
		Generate: func(r *propcheck.Rand) kernelCase {
			return kernelCase{
				p:  pg.Generate(r),
				t1: fg.Generate(r), v1: fg.Generate(r),
				t2: fg.Generate(r), v2: fg.Generate(r),
				k: r.Float64Range(-100, 100),
			}
		},
		Describe: func(c kernelCase) string {
			return fmt.Sprintf("{%s sv1=(%g,%g) sv2=(%g,%g) k=%g}",
				describeParams(c.p), c.t1, c.v1, c.t2, c.v2, c.k)
		},
	}
}

// TestPropKernelValueLinearity (migrated from testing/quick): the
// per-epoch value of a sum of kernels equals the sum of per-epoch values —
// the property that makes category aggregation and per-kernel modeling
// consistent (Eqs. 4 and 6). Now checked for arbitrary valid setups, not
// one fixed parameter set.
func TestPropKernelValueLinearity(t *testing.T) {
	propcheck.Check(t, kernelCaseGen(), func(c kernelCase) error {
		a := aggregate.StepValue{Train: c.t1, Validation: c.v1}
		b := aggregate.StepValue{Train: c.t2, Validation: c.v2}
		sum := epoch.KernelValue(a.Add(b), c.p)
		parts := epoch.KernelValue(a, c.p) + epoch.KernelValue(b, c.p)
		if math.Abs(sum-parts) > 1e-9*(1+math.Abs(sum)) {
			return fmt.Errorf("F(a+b)=%g but F(a)+F(b)=%g", sum, parts)
		}
		return nil
	})
}

// TestPropKernelValueHomogeneity (migrated from testing/quick):
// KernelValue scales linearly with the step value.
func TestPropKernelValueHomogeneity(t *testing.T) {
	propcheck.Check(t, kernelCaseGen(), func(c kernelCase) error {
		sv := aggregate.StepValue{Train: c.t1, Validation: c.v1}
		scaled := aggregate.StepValue{Train: c.t1 * c.k, Validation: c.v1 * c.k}
		lhs := epoch.KernelValue(scaled, c.p)
		rhs := c.k * epoch.KernelValue(sv, c.p)
		if math.Abs(lhs-rhs) > 1e-6*(1+math.Abs(rhs)) {
			return fmt.Errorf("F(k·v)=%g but k·F(v)=%g", lhs, rhs)
		}
		return nil
	})
}

// TestPropWeakScalingStepInvariance (migrated from testing/quick): weak
// scaling (D_t ∝ workers) keeps the step count invariant for any rank
// count, batch size and base dataset.
func TestPropWeakScalingStepInvariance(t *testing.T) {
	type wsCase struct{ ranks, batch, samples int }
	g := propcheck.Gen[wsCase]{
		Generate: func(r *propcheck.Rand) wsCase {
			return wsCase{
				ranks:   r.IntRange(2, 64),
				batch:   r.IntRange(1, 256),
				samples: r.IntRange(1, 100000),
			}
		},
	}
	propcheck.Check(t, g, func(c wsCase) error {
		base := epoch.Params{
			BatchSize: float64(c.batch), TrainSamples: float64(c.samples),
			DataParallel: 1, ModelParallel: 1,
		}
		scaled := base
		scaled.TrainSamples = float64(c.samples) * float64(c.ranks)
		scaled.DataParallel = float64(c.ranks)
		if base.TrainSteps() != scaled.TrainSteps() {
			return fmt.Errorf("weak scaling changed steps: %d → %d at %d ranks",
				base.TrainSteps(), scaled.TrainSteps(), c.ranks)
		}
		return nil
	})
}
