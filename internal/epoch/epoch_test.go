package epoch

import (
	"math"
	"testing"

	"extradeep/internal/aggregate"
	"extradeep/internal/calltree"
	"extradeep/internal/measurement"
)

func TestParamsValidate(t *testing.T) {
	good := Params{BatchSize: 256, TrainSamples: 50000, ValSamples: 10000, DataParallel: 4, ModelParallel: 1}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := good
	bad.BatchSize = 0
	if bad.Validate() == nil {
		t.Error("zero batch size accepted")
	}
	bad = good
	bad.DataParallel = 0
	if bad.Validate() == nil {
		t.Error("zero G accepted")
	}
	bad = good
	bad.TrainSamples = -1
	if bad.Validate() == nil {
		t.Error("negative dataset accepted")
	}
}

func TestTrainStepsEq2(t *testing.T) {
	// n_t = floor((Dt/(G/M))/B): 50000 samples, G=4, M=1, B=256
	// → floor(12500/256) = 48.
	p := Params{BatchSize: 256, TrainSamples: 50000, DataParallel: 4, ModelParallel: 1}
	if got := p.TrainSteps(); got != 48 {
		t.Errorf("TrainSteps = %d, want 48", got)
	}
}

func TestTrainStepsModelParallel(t *testing.T) {
	// With M=4 each model-parallel group of 4 ranks consumes one shard:
	// G=16, M=4 → effective data-parallel groups G/M=4.
	p := Params{BatchSize: 256, TrainSamples: 50000, DataParallel: 16, ModelParallel: 4}
	if got := p.TrainSteps(); got != 48 {
		t.Errorf("TrainSteps = %d, want 48", got)
	}
}

func TestValStepsEq3(t *testing.T) {
	p := Params{BatchSize: 100, ValSamples: 1050, DataParallel: 1, ModelParallel: 1}
	if got := p.ValSteps(); got != 10 {
		t.Errorf("ValSteps = %d, want 10", got)
	}
}

func TestWeakScalingKeepsStepsConstant(t *testing.T) {
	// Weak scaling multiplies D_t by the rank count; n_t stays constant.
	base := 50000.0
	for _, ranks := range []float64{2, 4, 8, 16} {
		p := Params{BatchSize: 256, TrainSamples: base * ranks, DataParallel: ranks, ModelParallel: 1}
		if got := p.TrainSteps(); got != 195 {
			t.Errorf("ranks=%v: TrainSteps = %d, want 195", ranks, got)
		}
	}
}

func TestStrongScalingShrinksSteps(t *testing.T) {
	p2 := Params{BatchSize: 256, TrainSamples: 50000, DataParallel: 2, ModelParallel: 1}
	p8 := Params{BatchSize: 256, TrainSamples: 50000, DataParallel: 8, ModelParallel: 1}
	if p8.TrainSteps() >= p2.TrainSteps() {
		t.Errorf("strong scaling: steps %d (8 ranks) should be < %d (2 ranks)",
			p8.TrainSteps(), p2.TrainSteps())
	}
}

func TestKernelValueEq4(t *testing.T) {
	p := Params{BatchSize: 10, TrainSamples: 1000, ValSamples: 100, DataParallel: 1, ModelParallel: 1}
	// n_t = 100, n_v = 10.
	sv := aggregate.StepValue{Train: 0.5, Validation: 0.2}
	want := 100*0.5 + 10*0.2
	if got := KernelValue(sv, p); math.Abs(got-want) > 1e-12 {
		t.Errorf("KernelValue = %v, want %v", got, want)
	}
}

func TestCategoryPath(t *testing.T) {
	if CategoryPath(calltree.CategoryComputation) != CompPath ||
		CategoryPath(calltree.CategoryCommunication) != CommPath ||
		CategoryPath(calltree.CategoryMemory) != MemPath {
		t.Error("category paths wrong")
	}
	if CategoryPath(calltree.CategoryUnknown) != "" {
		t.Error("unknown category should map to empty path")
	}
}

// buildAggregates fabricates aggregates at several configurations with a
// known per-step cost structure.
func buildAggregates(points []float64) []*aggregate.ConfigAggregate {
	var out []*aggregate.ConfigAggregate
	for _, x := range points {
		kernels := map[string]*aggregate.KernelAggregate{
			"App->train->k1": {
				Callpath: "App->train->k1", Name: "k1", Kind: calltree.KindCUDA,
				PerRep: map[measurement.Metric][]aggregate.StepValue{
					measurement.MetricTime:   {{Train: 0.1}, {Train: 0.11}},
					measurement.MetricVisits: {{Train: 2}, {Train: 2}},
				},
				Value: map[measurement.Metric]aggregate.StepValue{
					measurement.MetricTime:   {Train: 0.105},
					measurement.MetricVisits: {Train: 2},
				},
				Ranks: int(x),
			},
			"App->train->MPI_Allreduce": {
				Callpath: "App->train->MPI_Allreduce", Name: "MPI_Allreduce", Kind: calltree.KindMPI,
				PerRep: map[measurement.Metric][]aggregate.StepValue{
					measurement.MetricTime: {{Train: 0.01 * x}, {Train: 0.011 * x}},
				},
				Value: map[measurement.Metric]aggregate.StepValue{
					measurement.MetricTime: {Train: 0.0105 * x},
				},
				Ranks: int(x),
			},
		}
		agg := &aggregate.ConfigAggregate{
			App:     "toy",
			Params:  []string{"p"},
			Point:   measurement.Point{x},
			Kernels: kernels,
			Categories: map[calltree.Category]map[measurement.Metric]aggregate.StepValue{
				calltree.CategoryComputation: {
					measurement.MetricTime: {Train: 0.105},
				},
				calltree.CategoryCommunication: {
					measurement.MetricTime: {Train: 0.0105 * x},
				},
			},
			CategoriesPerRep: map[calltree.Category]map[measurement.Metric][]aggregate.StepValue{
				calltree.CategoryComputation: {
					measurement.MetricTime: {{Train: 0.1}, {Train: 0.11}},
				},
				calltree.CategoryCommunication: {
					measurement.MetricTime: {{Train: 0.01 * x}, {Train: 0.011 * x}},
				},
			},
			Reps: 2,
		}
		out = append(out, agg)
	}
	return out
}

func weakSetup(point measurement.Point) Params {
	return Params{
		BatchSize:     256,
		TrainSamples:  50000 * point[0],
		ValSamples:    10000,
		DataParallel:  point[0],
		ModelParallel: 1,
	}
}

func TestBuildKernelExperiment(t *testing.T) {
	aggs := buildAggregates([]float64{2, 4, 8, 16, 32})
	exp, err := BuildKernelExperiment(aggs, weakSetup)
	if err != nil {
		t.Fatal(err)
	}
	s := exp.Series(measurement.MetricTime, "App->train->k1")
	if s == nil {
		t.Fatal("k1 series missing")
	}
	if s.Len() != 5 {
		t.Errorf("k1 series has %d points, want 5", s.Len())
	}
	// Per-epoch value: n_t = floor(50000·x/x/256) = 195 steps, train 0.1 →
	// first rep value 19.5.
	sample := s.At(measurement.Point{2})
	if sample == nil || len(sample.Reps) != 2 {
		t.Fatal("sample missing or wrong rep count")
	}
	if math.Abs(sample.Reps[0]-19.5) > 1e-9 {
		t.Errorf("rep 0 epoch value = %v, want 19.5", sample.Reps[0])
	}
}

func TestBuildKernelExperimentVisits(t *testing.T) {
	aggs := buildAggregates([]float64{2, 4, 8, 16, 32})
	exp, err := BuildKernelExperiment(aggs, weakSetup)
	if err != nil {
		t.Fatal(err)
	}
	s := exp.Series(measurement.MetricVisits, "App->train->k1")
	if s == nil {
		t.Fatal("visits series missing")
	}
	sample := s.At(measurement.Point{2})
	// 2 visits/step × 195 steps = 390 per epoch.
	if math.Abs(sample.Reps[0]-390) > 1e-9 {
		t.Errorf("visits per epoch = %v, want 390", sample.Reps[0])
	}
}

func TestBuildKernelExperimentEmpty(t *testing.T) {
	if _, err := BuildKernelExperiment(nil, weakSetup); err == nil {
		t.Error("empty aggregates accepted")
	}
}

func TestBuildKernelExperimentInvalidSetup(t *testing.T) {
	aggs := buildAggregates([]float64{2})
	bad := func(measurement.Point) Params { return Params{} }
	if _, err := BuildKernelExperiment(aggs, bad); err == nil {
		t.Error("invalid setup accepted")
	}
}

func TestBuildApplicationExperiment(t *testing.T) {
	aggs := buildAggregates([]float64{2, 4, 8, 16, 32})
	exp, err := BuildApplicationExperiment(aggs, weakSetup)
	if err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{AppPath, CompPath, CommPath} {
		if exp.Series(measurement.MetricTime, path) == nil {
			t.Errorf("series %q missing", path)
		}
	}
	// F_epoch = F_comp + F_comm per repetition.
	app := exp.Series(measurement.MetricTime, AppPath).At(measurement.Point{4})
	comp := exp.Series(measurement.MetricTime, CompPath).At(measurement.Point{4})
	comm := exp.Series(measurement.MetricTime, CommPath).At(measurement.Point{4})
	for i := range app.Reps {
		sum := comp.Reps[i] + comm.Reps[i]
		if math.Abs(app.Reps[i]-sum) > 1e-9 {
			t.Errorf("rep %d: F_epoch = %v, comp+comm = %v", i, app.Reps[i], sum)
		}
	}
}

func TestBuildApplicationExperimentCommGrowsWithScale(t *testing.T) {
	aggs := buildAggregates([]float64{2, 4, 8, 16, 32})
	exp, err := BuildApplicationExperiment(aggs, weakSetup)
	if err != nil {
		t.Fatal(err)
	}
	s := exp.Series(measurement.MetricTime, CommPath)
	s.Sort()
	med := s.Medians()
	for i := 1; i < len(med); i++ {
		if med[i] <= med[i-1] {
			t.Errorf("communication time not growing: %v", med)
		}
	}
}

func TestBuildApplicationExperimentEmpty(t *testing.T) {
	if _, err := BuildApplicationExperiment(nil, weakSetup); err == nil {
		t.Error("empty aggregates accepted")
	}
}
