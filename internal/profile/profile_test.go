package profile

import (
	"math"
	"os"
	"path/filepath"
	"testing"

	"extradeep/internal/calltree"
	"extradeep/internal/mathutil"
	"extradeep/internal/trace"
)

func validProfile(rank, rep int, x float64) *Profile {
	return &Profile{
		App:      "cifar10",
		Params:   []string{"p"},
		Config:   []float64{x},
		Rank:     rank,
		Rep:      rep,
		WallTime: 12.5,
		Sampled:  true,
		Trace: trace.Trace{
			Rank: rank,
			Events: []trace.Event{
				{Name: "EigenMetaKernel", Kind: calltree.KindCUDA, Start: 0.01, Duration: 0.05},
			},
			Steps:  []trace.StepSpan{{Epoch: 0, Index: 0, Phase: trace.PhaseTrain, Start: 0, End: 0.1}},
			Epochs: []trace.EpochSpan{{Index: 0, Start: 0, End: 0.1}},
		},
	}
}

func TestFileName(t *testing.T) {
	cases := []struct {
		app    string
		config []float64
		rank   int
		rep    int
		want   string
	}{
		{"cifar10", []float64{4}, 0, 1, "cifar10.x4.mpi0.r1.json"},
		{"imagenet", []float64{4, 256}, 3, 2, "imagenet.x4_256.mpi3.r2.json"},
		{"imdb", []float64{0.5}, 10, 5, "imdb.x0.5.mpi10.r5.json"},
	}
	for _, c := range cases {
		if got := FileName(c.app, c.config, c.rank, c.rep); got != c.want {
			t.Errorf("FileName = %q, want %q", got, c.want)
		}
	}
}

func TestProfileValidate(t *testing.T) {
	if err := validProfile(0, 1, 4).Validate(); err != nil {
		t.Fatal(err)
	}
	p := validProfile(0, 1, 4)
	p.App = ""
	if p.Validate() == nil {
		t.Error("empty app accepted")
	}
	p = validProfile(0, 1, 4)
	p.Params = nil
	if p.Validate() == nil {
		t.Error("param/config mismatch accepted")
	}
	p = validProfile(-1, 1, 4)
	if p.Validate() == nil {
		t.Error("negative rank accepted")
	}
	p = validProfile(0, 0, 4)
	if p.Validate() == nil {
		t.Error("repetition 0 accepted")
	}
	p = validProfile(0, 1, 4)
	p.Trace.Events[0].Duration = -1
	if p.Validate() == nil {
		t.Error("invalid trace accepted")
	}
}

// TestParseFileName pins the inverse of FileName: every canonical name
// round-trips, including multi-parameter configs and fractional values
// whose decimal points must not be confused with name separators.
func TestParseFileName(t *testing.T) {
	cases := []struct {
		app    string
		config []float64
		rank   int
		rep    int
	}{
		{"cifar10", []float64{4}, 0, 1},
		{"imagenet", []float64{4, 256}, 3, 2},
		{"imdb", []float64{0.5}, 10, 5},
		{"deep.v2", []float64{1.25, 8}, 0, 3},
	}
	for _, c := range cases {
		name := FileName(c.app, c.config, c.rank, c.rep)
		app, config, rank, rep, ok := ParseFileName(name)
		if !ok {
			t.Errorf("ParseFileName(%q) failed", name)
			continue
		}
		if app != c.app || rank != c.rank || rep != c.rep || len(config) != len(c.config) {
			t.Errorf("ParseFileName(%q) = %q %v %d %d", name, app, config, rank, rep)
			continue
		}
		for i := range config {
			if !mathutil.Close(config[i], c.config[i]) {
				t.Errorf("ParseFileName(%q) config = %v, want %v", name, config, c.config)
			}
		}
	}
	// The CSV flavor of the canonical name parses too.
	if app, _, _, _, ok := ParseFileName("cifar10.x4.mpi0.r1.csv"); !ok || app != "cifar10" {
		t.Error("CSV extension rejected")
	}
}

func TestParseFileNameRejectsNonCanonical(t *testing.T) {
	for _, name := range []string{
		"",
		"README.txt",
		"profile.json",
		"app.mpi0.r1.json",        // no .x marker
		"app.x4.r1.json",          // no .mpi marker
		"app.x4.mpi0.json",        // no .r marker
		"app.xfoo.mpi0.r1.json",   // non-numeric config
		"app.x4.mpibad.r1.json",   // non-numeric rank
		"app.x4.mpi0.rbad.json",   // non-numeric rep
		".x4.mpi0.r1.json",        // empty app
		"app.x4.mpi-1.r1.json",    // negative rank
		"app.x4.mpi0.r0.json",     // rep below 1
		"app.xNaN.mpi0.r1.json",   // non-finite config
		"app.x1e999.mpi0.r1.json", // out-of-range config
	} {
		if _, _, _, _, ok := ParseFileName(name); ok {
			t.Errorf("ParseFileName(%q) accepted non-canonical name", name)
		}
	}
}

func TestProfileValidateRejectsNonFinite(t *testing.T) {
	nan := math.NaN()
	cases := []struct {
		name   string
		mutate func(p *Profile)
	}{
		{"NaN config", func(p *Profile) { p.Config[0] = nan }},
		{"Inf config", func(p *Profile) { p.Config[0] = math.Inf(1) }},
		{"NaN wall time", func(p *Profile) { p.WallTime = nan }},
		{"Inf wall time", func(p *Profile) { p.WallTime = math.Inf(-1) }},
		{"negative wall time", func(p *Profile) { p.WallTime = -1 }},
		{"NaN event duration", func(p *Profile) { p.Trace.Events[0].Duration = nan }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			p := validProfile(0, 1, 4)
			c.mutate(p)
			if p.Validate() == nil {
				t.Error("non-finite profile accepted")
			}
		})
	}
}

func TestPointIsCopy(t *testing.T) {
	p := validProfile(0, 1, 4)
	pt := p.Point()
	pt[0] = 99
	if !mathutil.Close(p.Config[0], 4) {
		t.Error("Point aliases the profile's config")
	}
}

func TestStoreWriteReadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := &Store{Dir: filepath.Join(dir, "profiles")}
	orig := validProfile(2, 1, 8)
	if err := s.Write(orig); err != nil {
		t.Fatal(err)
	}
	got, err := Read(filepath.Join(s.Dir, orig.FileName()))
	if err != nil {
		t.Fatal(err)
	}
	if got.App != orig.App || got.Rank != 2 || got.Rep != 1 || !mathutil.Close(got.Config[0], 8) {
		t.Errorf("round trip mismatch: %+v", got)
	}
	if len(got.Trace.Events) != 1 || got.Trace.Events[0].Name != "EigenMetaKernel" {
		t.Error("trace lost in round trip")
	}
	if got.Trace.Events[0].Kind != calltree.KindCUDA {
		t.Error("event kind lost in round trip")
	}
}

func TestStoreWriteRejectsInvalid(t *testing.T) {
	s := &Store{Dir: t.TempDir()}
	p := validProfile(0, 0, 4) // rep 0 is invalid
	if err := s.Write(p); err == nil {
		t.Error("invalid profile written")
	}
}

func TestReadRejectsCorruptFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Read(path); err == nil {
		t.Error("corrupt file accepted")
	}
}

func TestReadRejectsMissingFile(t *testing.T) {
	if _, err := Read(filepath.Join(t.TempDir(), "nope.json")); err == nil {
		t.Error("missing file accepted")
	}
}

func TestReadAllSortedAndFiltered(t *testing.T) {
	s := &Store{Dir: t.TempDir()}
	for _, rank := range []int{1, 0} {
		if err := s.Write(validProfile(rank, 1, 4)); err != nil {
			t.Fatal(err)
		}
	}
	// A stray non-JSON file must be ignored.
	if err := os.WriteFile(filepath.Join(s.Dir, "README.txt"), []byte("hi"), 0o644); err != nil {
		t.Fatal(err)
	}
	profiles, err := s.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(profiles) != 2 {
		t.Fatalf("got %d profiles, want 2", len(profiles))
	}
	if profiles[0].Rank != 0 || profiles[1].Rank != 1 {
		t.Error("profiles not sorted by file name")
	}
}

func TestReadAllMissingDir(t *testing.T) {
	s := &Store{Dir: filepath.Join(t.TempDir(), "absent")}
	if _, err := s.ReadAll(); err == nil {
		t.Error("missing directory accepted")
	}
}

func TestGroupByConfig(t *testing.T) {
	profiles := []*Profile{
		validProfile(1, 2, 4),
		validProfile(0, 1, 4),
		validProfile(0, 1, 8),
		validProfile(1, 1, 4),
	}
	groups := GroupByConfig(profiles)
	if len(groups) != 2 {
		t.Fatalf("got %d groups, want 2", len(groups))
	}
	g4 := groups[ConfigKey{App: "cifar10", Point: "(4)"}]
	if len(g4) != 3 {
		t.Fatalf("x4 group has %d profiles, want 3", len(g4))
	}
	// Ordered by (rep, rank): r1/mpi0, r1/mpi1, r2/mpi1.
	if g4[0].Rep != 1 || g4[0].Rank != 0 || g4[1].Rep != 1 || g4[1].Rank != 1 || g4[2].Rep != 2 {
		t.Errorf("group order wrong: %+v", []int{g4[0].Rank, g4[1].Rank, g4[2].Rank})
	}
}

func TestSortedKeys(t *testing.T) {
	groups := map[ConfigKey][]*Profile{
		{App: "b", Point: "(2)"}: nil,
		{App: "a", Point: "(8)"}: nil,
		{App: "a", Point: "(2)"}: nil,
	}
	keys := SortedKeys(groups)
	if keys[0].App != "a" || keys[0].Point != "(2)" || keys[2].App != "b" {
		t.Errorf("keys = %v", keys)
	}
}
