package profile

import (
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"testing"

	"extradeep/internal/faults"
)

// nonFinite reports whether any numeric field of the profile is NaN/Inf.
func nonFinite(p *Profile) bool {
	bad := func(vs ...float64) bool {
		for _, v := range vs {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
		}
		return false
	}
	if bad(p.WallTime) || bad(p.Config...) {
		return true
	}
	for _, e := range p.Trace.Events {
		if bad(e.Start, e.Duration, e.Bytes) {
			return true
		}
	}
	for _, s := range p.Trace.Steps {
		if bad(s.Start, s.End) {
			return true
		}
	}
	for _, ep := range p.Trace.Epochs {
		if bad(ep.Start, ep.End) {
			return true
		}
	}
	return false
}

// FuzzProfileRead asserts the loader invariant on arbitrary file bytes:
// Read returns either a valid, all-finite profile or an error — it never
// panics and never smuggles NaN/Inf into the pipeline.
func FuzzProfileRead(f *testing.F) {
	valid, err := json.Marshal(validProfile(0, 1, 4))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	for _, k := range faults.Kinds() {
		mutated, err := faults.Apply(k, valid, "json")
		if err != nil {
			f.Fatal(err)
		}
		f.Add(mutated)
	}
	f.Add([]byte("{not json"))
	f.Add([]byte(`{"app":"x","params":["p"],"config":[1e308],"rank":0,"rep":1}`))
	f.Add([]byte(`{"app":"x","rep":1,"trace":{"steps":[{"start":5,"end":1}]}}`))

	// One scratch file per worker process: os.WriteFile truncates, so
	// reusing the path is safe and keeps the fuzz loop I/O-light.
	path := filepath.Join(f.TempDir(), "fuzz.json")
	f.Fuzz(func(t *testing.T, data []byte) {
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		p, err := Read(path)
		if err != nil {
			return // rejected input: the other half of the invariant
		}
		if verr := p.Validate(); verr != nil {
			t.Fatalf("Read accepted an invalid profile: %v", verr)
		}
		if nonFinite(p) {
			t.Fatalf("Read smuggled a non-finite value: %+v", p)
		}
	})
}
