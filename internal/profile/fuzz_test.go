package profile

import (
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"testing"

	"extradeep/internal/faults"
)

// nonFinite reports whether any numeric field of the profile is NaN/Inf.
func nonFinite(p *Profile) bool {
	bad := func(vs ...float64) bool {
		for _, v := range vs {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
		}
		return false
	}
	if bad(p.WallTime) || bad(p.Config...) {
		return true
	}
	for _, e := range p.Trace.Events {
		if bad(e.Start, e.Duration, e.Bytes) {
			return true
		}
	}
	for _, s := range p.Trace.Steps {
		if bad(s.Start, s.End) {
			return true
		}
	}
	for _, ep := range p.Trace.Epochs {
		if bad(ep.Start, ep.End) {
			return true
		}
	}
	return false
}

// FuzzProfileRead asserts the loader invariant on arbitrary file bytes:
// Read returns either a valid, all-finite profile or an error — it never
// panics and never smuggles NaN/Inf into the pipeline.
func FuzzProfileRead(f *testing.F) {
	valid, err := json.Marshal(validProfile(0, 1, 4))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	for _, k := range faults.Kinds() {
		mutated, err := faults.Apply(k, valid, "json")
		if err != nil {
			f.Fatal(err)
		}
		f.Add(mutated)
	}
	f.Add([]byte("{not json"))
	f.Add([]byte(`{"app":"x","params":["p"],"config":[1e308],"rank":0,"rep":1}`))
	f.Add([]byte(`{"app":"x","rep":1,"trace":{"steps":[{"start":5,"end":1}]}}`))

	// One scratch file per worker process: os.WriteFile truncates, so
	// reusing the path is safe and keeps the fuzz loop I/O-light.
	path := filepath.Join(f.TempDir(), "fuzz.json")
	f.Fuzz(func(t *testing.T, data []byte) {
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		p, err := Read(path)
		if err != nil {
			return // rejected input: the other half of the invariant
		}
		if verr := p.Validate(); verr != nil {
			t.Fatalf("Read accepted an invalid profile: %v", verr)
		}
		if nonFinite(p) {
			t.Fatalf("Read smuggled a non-finite value: %+v", p)
		}
	})
}

// FuzzParseFileName asserts the naming-convention invariant on arbitrary
// strings: ParseFileName never panics, only accepts names whose parts are
// well-formed (non-empty app, rank ≥ 0, rep ≥ 1, finite configuration
// values), and every accepted name round-trips — rebuilding the canonical
// name from the parsed parts and parsing again yields identical parts.
func FuzzParseFileName(f *testing.F) {
	f.Add("cifar10.x4.mpi0.r1.json")
	f.Add("imdb.x0.5.mpi10.r5.csv")
	f.Add("app.v2.x1_2_3.mpi127.r99")
	f.Add("resnet.x1e-20_1024.mpi3.r2.json")
	f.Add("noconfig.mpi0.r1.json")
	f.Add("app.x.mpi0.r1")
	f.Add("app.xNaN.mpi0.r1")
	f.Add("app.x1e999.mpi0.r1")
	f.Add("app.x1.mpi-1.r1")
	f.Add("app.x1.mpi0.r0")
	f.Add(".x1.mpi0.r1")
	f.Add("")
	f.Fuzz(func(t *testing.T, name string) {
		app, config, rank, rep, ok := ParseFileName(name)
		if !ok {
			return // rejected input: the other half of the invariant
		}
		if app == "" || rank < 0 || rep < 1 {
			t.Fatalf("accepted %q with malformed parts: app=%q rank=%d rep=%d", name, app, rank, rep)
		}
		for _, v := range config {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("accepted %q with non-finite config %v", name, config)
			}
		}
		canonical := FileName(app, config, rank, rep)
		app2, config2, rank2, rep2, ok2 := ParseFileName(canonical)
		if !ok2 {
			t.Fatalf("canonical name %q rebuilt from accepted %q does not re-parse", canonical, name)
		}
		if app2 != app || rank2 != rank || rep2 != rep || len(config2) != len(config) {
			t.Fatalf("round-trip through %q changed parts: app %q→%q rank %d→%d rep %d→%d config %v→%v",
				canonical, app, app2, rank, rank2, rep, rep2, config, config2)
		}
		for i := range config {
			//edlint:ignore floateq FormatFloat 'g' with precision -1 guarantees an exact parse round-trip
			if config2[i] != config[i] {
				t.Fatalf("round-trip through %q changed config[%d]: %v → %v", canonical, i, config[i], config2[i])
			}
		}
	})
}
