package profile_test

import (
	"fmt"
	"testing"

	"extradeep/internal/profile"
	"extradeep/internal/propcheck"
)

// nameCase is an arbitrary canonical profile identity.
type nameCase struct {
	app    string
	config []float64
	rank   int
	rep    int
}

func nameCaseGen() propcheck.Gen[nameCase] {
	apps := []string{"cifar10", "imdb", "mlp", "resnet50", "app.v2", "a_b"}
	cfg := propcheck.SliceOf(propcheck.Float64Range(-1e6, 1e6), 1, 3)
	return propcheck.Gen[nameCase]{
		Generate: func(r *propcheck.Rand) nameCase {
			return nameCase{
				app:    apps[r.Intn(len(apps))],
				config: cfg.Generate(r),
				rank:   r.IntRange(0, 999),
				rep:    r.IntRange(1, 99),
			}
		},
		Describe: func(c nameCase) string {
			return profile.FileName(c.app, c.config, c.rank, c.rep)
		},
	}
}

// TestPropFileNameRoundTrip: ParseFileName inverts FileName exactly for
// any finite configuration — including fractional, negative and
// scientific-notation values and app names containing dots.
func TestPropFileNameRoundTrip(t *testing.T) {
	propcheck.Check(t, nameCaseGen(), func(c nameCase) error {
		name := profile.FileName(c.app, c.config, c.rank, c.rep)
		app, config, rank, rep, ok := profile.ParseFileName(name)
		if !ok {
			return fmt.Errorf("canonical name %q did not parse", name)
		}
		if app != c.app || rank != c.rank || rep != c.rep {
			return fmt.Errorf("%q parsed to (%s, mpi%d, r%d), want (%s, mpi%d, r%d)",
				name, app, rank, rep, c.app, c.rank, c.rep)
		}
		if len(config) != len(c.config) {
			return fmt.Errorf("%q parsed %d config values, want %d", name, len(config), len(c.config))
		}
		for i := range config {
			//edlint:ignore floateq file names carry full-precision 'g' floats, so the round-trip must be exact
			if config[i] != c.config[i] {
				return fmt.Errorf("%q config[%d] = %v, want %v (exact round-trip)", name, i, config[i], c.config[i])
			}
		}
		return nil
	})
}
