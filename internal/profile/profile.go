// Package profile defines the on-disk profile format of Extra-Deep: one
// JSON file per (application configuration, MPI rank, repetition), named
// after the paper's Fig. 1 convention, e.g. "cifar10.x4.mpi0.r1.json".
// A Store reads and writes directories of such profiles and groups them
// for the aggregation pipeline.
package profile

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"extradeep/internal/measurement"
	"extradeep/internal/trace"
)

// Profile is the complete profiling output of one rank of one run.
type Profile struct {
	// App is the benchmark/application name, e.g. "cifar10".
	App string `json:"app"`
	// Params are the execution-parameter names, e.g. ["p"].
	Params []string `json:"params"`
	// Config are the parameter values of this application configuration.
	Config []float64 `json:"config"`
	// Rank is the MPI rank this profile belongs to.
	Rank int `json:"rank"`
	// Rep is the 1-based repetition index of the measurement.
	Rep int `json:"rep"`
	// WallTime is the total wall-clock time of the (possibly sampled)
	// profiled run in seconds, used to quantify profiling overhead.
	WallTime float64 `json:"wall_time"`
	// Sampled records whether the efficient sampling strategy was used
	// (only a few steps profiled) or the full run was profiled.
	Sampled bool `json:"sampled"`
	// Trace is the recorded event stream.
	Trace trace.Trace `json:"trace"`
}

// Point returns the profile's application configuration as a measurement
// point.
func (p *Profile) Point() measurement.Point { return measurement.Point(p.Config).Clone() }

// Validate checks the profile's structural integrity, including that every
// numeric field is a finite number: a NaN or Inf configuration value or
// wall time would poison the modeling pipeline without ever failing a
// decode, so it is rejected here at the boundary.
func (p *Profile) Validate() error {
	if p.App == "" {
		return errors.New("profile: empty application name")
	}
	if len(p.Params) != len(p.Config) {
		return fmt.Errorf("profile: %d parameter names for %d values", len(p.Params), len(p.Config))
	}
	for i, v := range p.Config {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("profile: non-finite configuration value %v for parameter %d", v, i)
		}
	}
	if p.Rank < 0 {
		return fmt.Errorf("profile: negative rank %d", p.Rank)
	}
	if p.Rep < 1 {
		return fmt.Errorf("profile: repetition index %d (must be ≥ 1)", p.Rep)
	}
	if math.IsNaN(p.WallTime) || math.IsInf(p.WallTime, 0) || p.WallTime < 0 {
		return fmt.Errorf("profile: invalid wall time %v", p.WallTime)
	}
	return p.Trace.Validate()
}

// FileName returns the canonical profile file name, e.g.
// "cifar10.x4.mpi0.r1.json"; multi-parameter configurations join values
// with underscores: "cifar10.x4_256.mpi0.r1.json".
func FileName(app string, config []float64, rank, rep int) string {
	vals := make([]string, len(config))
	for i, v := range config {
		vals[i] = strconv.FormatFloat(v, 'g', -1, 64)
	}
	return fmt.Sprintf("%s.x%s.mpi%d.r%d.json", app, strings.Join(vals, "_"), rank, rep)
}

// FileName returns the profile's canonical file name.
func (p *Profile) FileName() string { return FileName(p.App, p.Config, p.Rank, p.Rep) }

// ParseFileName parses a canonical profile file name (any extension) back
// into its parts. It is the inverse of FileName and lets diagnostics name
// the application configuration a file belonged to even when the file
// itself is too corrupted to decode. ok is false for names that do not
// follow the app.x<config>.mpi<rank>.r<rep> convention.
func ParseFileName(name string) (app string, config []float64, rank, rep int, ok bool) {
	base := filepath.Base(name)
	// Strip only known profile extensions: configuration values may contain
	// dots ("imdb.x0.5.mpi10.r5"), so a generic Ext() strip would eat data.
	for _, ext := range []string{".json", ".csv"} {
		if strings.HasSuffix(base, ext) {
			base = strings.TrimSuffix(base, ext)
			break
		}
	}
	// Parse right to left: .r<rep>, then .mpi<rank>, then .x<config>.
	i := strings.LastIndex(base, ".r")
	if i < 0 {
		return "", nil, 0, 0, false
	}
	rep, err := strconv.Atoi(base[i+len(".r"):])
	if err != nil || rep < 1 {
		return "", nil, 0, 0, false
	}
	base = base[:i]
	i = strings.LastIndex(base, ".mpi")
	if i < 0 {
		return "", nil, 0, 0, false
	}
	rank, err = strconv.Atoi(base[i+len(".mpi"):])
	if err != nil || rank < 0 {
		return "", nil, 0, 0, false
	}
	base = base[:i]
	i = strings.LastIndex(base, ".x")
	if i <= 0 { // the app name must be non-empty
		return "", nil, 0, 0, false
	}
	for _, part := range strings.Split(base[i+len(".x"):], "_") {
		v, err := strconv.ParseFloat(part, 64)
		// ParseFloat accepts "NaN"/"Inf" and maps 1e999 to +Inf; a
		// canonical name never carries a non-finite configuration value.
		if err != nil || math.IsNaN(v) || math.IsInf(v, 0) {
			return "", nil, 0, 0, false
		}
		config = append(config, v)
	}
	return base[:i], config, rank, rep, true
}

// Store reads and writes profiles in a directory.
type Store struct {
	// Dir is the directory holding the profile files.
	Dir string
}

// Write serializes the profile into the store's directory, creating the
// directory if needed.
func (s *Store) Write(p *Profile) error {
	if err := p.Validate(); err != nil {
		return err
	}
	if err := os.MkdirAll(s.Dir, 0o755); err != nil {
		return fmt.Errorf("profile: creating store dir: %w", err)
	}
	data, err := json.Marshal(p)
	if err != nil {
		return fmt.Errorf("profile: encoding %s: %w", p.FileName(), err)
	}
	path := filepath.Join(s.Dir, p.FileName())
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("profile: writing %s: %w", path, err)
	}
	return nil
}

// Read loads a single profile file.
func Read(path string) (*Profile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("profile: reading %s: %w", path, err)
	}
	var p Profile
	if err := json.Unmarshal(data, &p); err != nil {
		return nil, fmt.Errorf("profile: decoding %s: %w", path, err)
	}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("profile: %s: %w", path, err)
	}
	return &p, nil
}

// ReadAll loads every .json profile in the store's directory, sorted by
// file name for deterministic processing.
func (s *Store) ReadAll() ([]*Profile, error) {
	entries, err := os.ReadDir(s.Dir)
	if err != nil {
		return nil, fmt.Errorf("profile: listing %s: %w", s.Dir, err)
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".json") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	profiles := make([]*Profile, 0, len(names))
	for _, name := range names {
		p, err := Read(filepath.Join(s.Dir, name))
		if err != nil {
			return nil, err
		}
		profiles = append(profiles, p)
	}
	return profiles, nil
}

// ConfigKey identifies one application configuration of one app.
type ConfigKey struct {
	App string
	// Point is the canonical key of the configuration's parameter values.
	Point string
}

// GroupByConfig groups profiles by (app, configuration); within each group
// the profiles are ordered by (repetition, rank). This is the input shape
// the aggregation pipeline expects: all ranks and repetitions of one
// measurement point together.
func GroupByConfig(profiles []*Profile) map[ConfigKey][]*Profile {
	groups := make(map[ConfigKey][]*Profile)
	for _, p := range profiles {
		key := ConfigKey{App: p.App, Point: measurement.Point(p.Config).Key()}
		groups[key] = append(groups[key], p)
	}
	for _, g := range groups {
		sort.SliceStable(g, func(i, j int) bool {
			if g[i].Rep != g[j].Rep {
				return g[i].Rep < g[j].Rep
			}
			return g[i].Rank < g[j].Rank
		})
	}
	return groups
}

// SortedKeys returns the group keys sorted by app name, then by point key,
// for deterministic iteration over GroupByConfig results.
func SortedKeys(groups map[ConfigKey][]*Profile) []ConfigKey {
	keys := make([]ConfigKey, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].App != keys[j].App {
			return keys[i].App < keys[j].App
		}
		return keys[i].Point < keys[j].Point
	})
	return keys
}
