package serve_test

// Shared fixtures for the edserve protocol harness: deterministic
// simulated measurement campaigns (via the internal/simulator engine),
// an in-process server + httptest client, and the batch-pipeline
// reference path the parity properties compare against.

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"testing"
	"time"

	"extradeep/internal/aggregate"
	"extradeep/internal/core"
	"extradeep/internal/epoch"
	"extradeep/internal/ingest"
	"extradeep/internal/pipeline"
	"extradeep/internal/serve"
	"extradeep/internal/simulator/engine"
	"extradeep/internal/simulator/hardware"
	"extradeep/internal/simulator/parallel"
)

const testApp = "imdb"

// testSetup returns the training-setup function every harness server and
// reference pipeline shares (imdb benchmark, data-parallel weak scaling
// — the writeCampaign fixture of the pipeline tests).
func testSetup(tb testing.TB) epoch.SetupFunc {
	tb.Helper()
	b, err := engine.ByName(testApp)
	if err != nil {
		tb.Fatal(err)
	}
	return engine.SetupFunc(b, parallel.DataParallel{}, true)
}

// makeCampaign simulates one weak-scaling measurement campaign and
// returns the profile files as upload-ready JSON documents, keyed by
// canonical file name. Deterministic in (ranks, reps, seed).
func makeCampaign(tb testing.TB, ranks []int, reps int, seed int64) map[string]string {
	tb.Helper()
	b, err := engine.ByName(testApp)
	if err != nil {
		tb.Fatal(err)
	}
	files := map[string]string{}
	for _, r := range ranks {
		cfg := engine.RunConfig{
			System: hardware.DEEP(), Strategy: parallel.DataParallel{},
			Ranks: r, WeakScaling: true, Seed: seed, SampleRanks: 1,
		}
		for rep := 1; rep <= reps; rep++ {
			ps, err := engine.Profile(b, cfg, rep, true)
			if err != nil {
				tb.Fatal(err)
			}
			for _, p := range ps {
				data, err := json.Marshal(p)
				if err != nil {
					tb.Fatal(err)
				}
				files[p.FileName()] = string(data)
			}
		}
	}
	return files
}

// defaultRanks is the standard modelable campaign extent (5 distinct
// configurations, the degradation gate's minimum).
var defaultRanks = []int{2, 4, 6, 8, 10}

// testServer wraps a started serve.Server with its HTTP front end.
type testServer struct {
	srv   *serve.Server
	ts    *httptest.Server
	spool string
	// stop cancels the server's lifecycle context (shutdown tests kill
	// the first instance mid-test; Cleanup makes the call idempotent).
	stop context.CancelFunc
}

// startServer builds, starts and exposes a server over httptest. Zero
// Config fields get harness defaults (fresh spool dir, shared setup).
// Cleanup cancels the lifecycle, drains fits and closes the listener.
func startServer(tb testing.TB, cfg serve.Config) *testServer {
	tb.Helper()
	if cfg.SpoolDir == "" {
		cfg.SpoolDir = tb.TempDir()
	}
	if cfg.Setup == nil {
		cfg.Setup = testSetup(tb)
	}
	if cfg.Analyze == (pipeline.AnalyzeOptions{}) {
		cfg.Analyze = pipeline.AnalyzeOptions{CoresPerRank: 1, TopKernels: 10}
	}
	srv, err := serve.New(cfg)
	if err != nil {
		tb.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	if err := srv.Start(ctx); err != nil {
		cancel()
		tb.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	tb.Cleanup(func() {
		ts.Close()
		cancel()
		drainCtx, done := context.WithTimeout(context.Background(), 30*time.Second)
		defer done()
		_ = srv.Drain(drainCtx)
	})
	return &testServer{srv: srv, ts: ts, spool: cfg.SpoolDir, stop: cancel}
}

// envelope builds the upload request body for a set of file contents.
func envelope(format string, contents []string) []byte {
	type f struct {
		Content string `json:"content"`
	}
	req := struct {
		Format   string `json:"format"`
		Profiles []f    `json:"profiles"`
	}{Format: format}
	for _, c := range contents {
		req.Profiles = append(req.Profiles, f{Content: c})
	}
	data, err := json.Marshal(req)
	if err != nil {
		panic(err)
	}
	return data
}

// do issues one request and returns status + body.
func (s *testServer) do(tb testing.TB, method, path string, body []byte) (int, []byte) {
	tb.Helper()
	req, err := http.NewRequest(method, s.ts.URL+path, bytes.NewReader(body))
	if err != nil {
		tb.Fatal(err)
	}
	resp, err := s.ts.Client().Do(req)
	if err != nil {
		tb.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		tb.Fatal(err)
	}
	return resp.StatusCode, out
}

// upload POSTs a batch of profile documents and returns status + body.
func (s *testServer) upload(tb testing.TB, app, format string, contents []string) (int, []byte) {
	tb.Helper()
	return s.do(tb, http.MethodPost, "/v1/apps/"+app+"/profiles", envelope(format, contents))
}

// mustUpload is upload asserting the 202 happy path.
func (s *testServer) mustUpload(tb testing.TB, app string, contents []string) {
	tb.Helper()
	status, body := s.upload(tb, app, "json", contents)
	if status != http.StatusAccepted {
		tb.Fatalf("upload: status %d, body %s", status, body)
	}
}

// settle waits until the application has no pending fit work and
// requires the last campaign to have succeeded with a snapshot.
func (s *testServer) settle(tb testing.TB, app string) *serve.Snapshot {
	tb.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	snap, err := s.srv.Settle(ctx, app)
	if err != nil {
		tb.Fatalf("settle %s: %v", app, err)
	}
	if snap == nil {
		tb.Fatalf("settle %s: no snapshot published", app)
	}
	return snap
}

// models GETs the fitted model file bytes (the fit-parity anchor).
func (s *testServer) models(tb testing.TB, app string) []byte {
	tb.Helper()
	status, body := s.do(tb, http.MethodGet, "/v1/apps/"+app+"/models", nil)
	if status != http.StatusOK {
		tb.Fatalf("models: status %d, body %s", status, body)
	}
	return body
}

// contentsOf flattens a campaign file map into a deterministic
// (name-sorted) content slice for single-batch uploads.
func contentsOf(files map[string]string) []string {
	names := make([]string, 0, len(files))
	for name := range files {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]string, len(names))
	for i, n := range names {
		out[i] = files[n]
	}
	return out
}

// batchModels runs the batch pipeline — option-for-option what the
// extradeep CLI executes — over a directory of profile files and returns
// the canonical encoded model set. This is the reference side of the
// API-versus-batch parity properties.
func batchModels(tb testing.TB, dir string, workers int) []byte {
	tb.Helper()
	pl := pipeline.New(pipeline.Config{Workers: workers, Aggregation: aggregate.DefaultOptions()})
	res, err := pl.Run(context.Background(), pipeline.RunSpec{
		ProfilesDir: dir,
		Format:      "json",
		Ingest:      ingest.Options{Policy: ingest.Lenient},
		Setup:       testSetup(tb),
		Analyze:     pipeline.AnalyzeOptions{CoresPerRank: 1, TopKernels: 10},
	})
	if err != nil {
		tb.Fatalf("batch pipeline over %s: %v", dir, err)
	}
	data, err := core.EncodeModels(res.Models)
	if err != nil {
		tb.Fatal(err)
	}
	return data
}

// writeProfilesDir materializes campaign files into a fresh directory
// (the way a batch CLI user would lay them out) and returns it.
func writeProfilesDir(tb testing.TB, files map[string]string) string {
	tb.Helper()
	dir := tb.TempDir()
	for name, content := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			tb.Fatal(err)
		}
	}
	return dir
}

// decodeJSON unmarshals a response body, failing the test on error.
func decodeJSON(tb testing.TB, body []byte, v any) {
	tb.Helper()
	if err := json.Unmarshal(body, v); err != nil {
		tb.Fatalf("decoding %s: %v", body, err)
	}
}

// errorCode extracts error.code from a refusal body.
func errorCode(tb testing.TB, body []byte) string {
	tb.Helper()
	var e struct {
		Error struct {
			Code string `json:"code"`
		} `json:"error"`
	}
	decodeJSON(tb, body, &e)
	return e.Error.Code
}
