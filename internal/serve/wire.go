package serve

import (
	"encoding/json"
	"errors"
	"net/http"
)

// The wire types below are the service's JSON vocabulary. Every error
// response carries an exit_equivalent mirroring the batch CLI's exit
// codes, so a client scripting against the API can keep the same failure
// taxonomy as one scripting against extradeep:
//
//	0 — success (200/202)
//	1 — internal failure (500: a campaign failed outright)
//	2 — request error (400 bad_request, 404 not_found, 405, 413)
//	3 — no usable data (409 conflict, 422 quarantined, 503 not_ready)
//	4 — partial success (degraded snapshots report it in-band, not as
//	    an error: responses carry "degraded": true)

// errorBody is the envelope of every non-2xx response.
type errorBody struct {
	Error errorDetail `json:"error"`
}

// errorDetail explains one refused request.
type errorDetail struct {
	// Code is the stable, machine-matchable error class.
	Code string `json:"code"`
	// Message is the human-readable cause.
	Message string `json:"message"`
	// ExitEquivalent is the batch CLI exit code this failure maps to.
	ExitEquivalent int `json:"exit_equivalent"`
	// Files details per-file upload failures (quarantine refusals), in
	// upload order; empty otherwise.
	Files []fileDetail `json:"files,omitempty"`
}

// fileDetail is one refused upload file, with the ingest stage the
// failure was classified under (read/decode/validate — the same taxonomy
// ingest.Quarantined uses on disk).
type fileDetail struct {
	Index  int    `json:"index"`
	Name   string `json:"name,omitempty"`
	Stage  string `json:"stage"`
	Reason string `json:"reason"`
}

// uploadRequest is the POST /v1/apps/{app}/profiles body: a batch of
// profile files, all in one format. The batch is atomic — either every
// file is validated and spooled, or none is and the store is unchanged.
type uploadRequest struct {
	// Format is "json" or "csv" and must match the application's
	// established format (fixed by its first upload).
	Format string `json:"format"`
	// Profiles are the file contents, verbatim.
	Profiles []uploadFile `json:"profiles"`
}

// uploadFile is one profile document in an upload batch.
type uploadFile struct {
	// Content is the profile file's bytes (a JSON document or CSV text).
	Content string `json:"content"`
}

// uploadResponse acknowledges an accepted batch (202): the files are
// spooled under their canonical names and a re-fit is scheduled.
type uploadResponse struct {
	App string `json:"app"`
	// Accepted names the spooled files in upload order.
	Accepted []string `json:"accepted"`
	// SpooledFiles is the application's total spool size afterwards.
	SpooledFiles int `json:"spooled_files"`
	// Refit reports that a fit campaign is (or will be) running.
	Refit bool `json:"refit"`
}

// healthResponse is GET /v1/health.
type healthResponse struct {
	Status string `json:"status"`
	Apps   int    `json:"apps"`
}

// appInfo is one row of GET /v1/apps and the body of
// GET /v1/apps/{app}/status.
type appInfo struct {
	App     string `json:"app"`
	Format  string `json:"format,omitempty"`
	Files   int    `json:"files"`
	Ready   bool   `json:"ready"`
	Pending bool   `json:"pending"`
	// Generation is the published snapshot's campaign number (0 before
	// the first campaign completes).
	Generation int64 `json:"generation"`
	Degraded   bool  `json:"degraded,omitempty"`
	// LastError carries the most recent failed campaign's cause.
	LastError string `json:"last_error,omitempty"`
}

// appsResponse is GET /v1/apps.
type appsResponse struct {
	Apps []appInfo `json:"apps"`
}

// predictResponse is GET /v1/apps/{app}/predict: the Q1 answer at x
// ranks with its 95% confidence interval.
type predictResponse struct {
	App        string  `json:"app"`
	Generation int64   `json:"generation"`
	X          float64 `json:"x"`
	// Seconds is the predicted training time per epoch T(x).
	Seconds float64 `json:"seconds"`
	Lo      float64 `json:"lo"`
	Hi      float64 `json:"hi"`
	CILevel float64 `json:"ci_level"`
	// Extrapolated marks x outside the measured range [Xs[0], Xs[n-1]].
	Extrapolated bool `json:"extrapolated,omitempty"`
	Degraded     bool `json:"degraded,omitempty"`
}

// speedupResponse is GET /v1/apps/{app}/speedup: the Eq. 11 achieved
// speedup Δa = (T₁−T(x))/(T₁/100) against the Eq. 13 theoretical
// Δt = (x−x₁)/(x₁/100), both relative to the measured baseline x₁.
type speedupResponse struct {
	App          string  `json:"app"`
	Generation   int64   `json:"generation"`
	X            float64 `json:"x"`
	Baseline     float64 `json:"baseline"`
	Achieved     float64 `json:"achieved"`
	Theoretical  float64 `json:"theoretical"`
	Extrapolated bool    `json:"extrapolated,omitempty"`
	Degraded     bool    `json:"degraded,omitempty"`
}

// efficiencyResponse is GET /v1/apps/{app}/efficiency: the Eq. 13
// parallel efficiency ε = Δa/Δt (1 at the baseline).
type efficiencyResponse struct {
	App          string  `json:"app"`
	Generation   int64   `json:"generation"`
	X            float64 `json:"x"`
	Baseline     float64 `json:"baseline"`
	Efficiency   float64 `json:"efficiency"`
	Extrapolated bool    `json:"extrapolated,omitempty"`
	Degraded     bool    `json:"degraded,omitempty"`
}

// costResponse is GET /v1/apps/{app}/cost: the Eq. 14 training cost
// C(x) = T(x)·x·ϱ/3600 in core-hours.
type costResponse struct {
	App          string  `json:"app"`
	Generation   int64   `json:"generation"`
	X            float64 `json:"x"`
	CoresPerRank float64 `json:"cores_per_rank"`
	// Seconds is T(x), the modeled time the cost integrates.
	Seconds      float64 `json:"seconds"`
	CoreHours    float64 `json:"core_hours"`
	Extrapolated bool    `json:"extrapolated,omitempty"`
	Degraded     bool    `json:"degraded,omitempty"`
}

// apiError is a refusal the handlers construct directly; it maps onto
// one HTTP status and one exit-equivalent class.
type apiError struct {
	status  int
	code    string
	message string
	files   []fileDetail
}

func (e *apiError) Error() string { return e.message }

// conflictError is a 409: the upload contradicts already-spooled state
// (duplicate identity or format mismatch). store.admit returns it.
type conflictError struct {
	kind   string
	detail string
}

func (e *conflictError) Error() string { return e.detail }

// errMixedSpool marks an application whose spool directory holds both
// formats (only producible by hand-editing the spool on disk).
var errMixedSpool = errors.New("spool directory holds both json and csv files; remove one format and restart")

// exitEquivalentFor maps an HTTP status to the batch CLI exit code with
// the same meaning (see the package comment table).
func exitEquivalentFor(status int) int {
	switch {
	case status < 400:
		return 0
	case status == http.StatusConflict,
		status == http.StatusUnprocessableEntity,
		status == http.StatusServiceUnavailable:
		return 3
	case status >= 400 && status < 500:
		return 2
	default:
		return 1
	}
}

// writeJSON serializes one response value. Encoding failures downgrade
// to a plain 500: the value types above cannot fail to marshal, so this
// is a can't-happen guard, not a code path.
func writeJSON(w http.ResponseWriter, status int, v any) {
	data, err := json.Marshal(v)
	if err != nil {
		http.Error(w, `{"error":{"code":"internal","message":"response encoding failed","exit_equivalent":1}}`, http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(append(data, '\n'))
}

// writeError serializes one refusal in the standard envelope.
func writeError(w http.ResponseWriter, status int, code, message string, files []fileDetail) {
	writeJSON(w, status, errorBody{Error: errorDetail{
		Code:           code,
		Message:        message,
		ExitEquivalent: exitEquivalentFor(status),
		Files:          files,
	}})
}

// writeAPIError dispatches an error to the envelope: apiErrors carry
// their own status/code, conflictErrors map to 409, anything else is a
// 500 internal.
func writeAPIError(w http.ResponseWriter, err error) {
	var ae *apiError
	if errors.As(err, &ae) {
		writeError(w, ae.status, ae.code, ae.message, ae.files)
		return
	}
	var ce *conflictError
	if errors.As(err, &ce) {
		writeError(w, http.StatusConflict, "conflict_"+ce.kind, ce.detail, nil)
		return
	}
	if errors.Is(err, errMixedSpool) {
		writeError(w, http.StatusConflict, "conflict_mixed_spool", err.Error(), nil)
		return
	}
	writeError(w, http.StatusInternalServerError, "internal", err.Error(), nil)
}
