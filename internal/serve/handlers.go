package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"extradeep/internal/analysis"
	"extradeep/internal/epoch"
	"extradeep/internal/ingest"
	"extradeep/internal/mathutil"
	"extradeep/internal/resilience"
)

// Handler returns the service's HTTP routing table. It is valid before
// Start (queries answer 503 not_ready until the first campaign
// publishes) and safe for concurrent use.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/health", s.deadline(s.handleHealth))
	mux.HandleFunc("GET /v1/apps", s.deadline(s.handleApps))
	mux.HandleFunc("GET /v1/apps/{app}/status", s.deadline(s.handleStatus))
	mux.HandleFunc("POST /v1/apps/{app}/profiles", s.deadline(s.handleUpload))
	mux.HandleFunc("GET /v1/apps/{app}/models", s.deadline(s.handleModels))
	mux.HandleFunc("GET /v1/apps/{app}/report", s.deadline(s.handleReport))
	mux.HandleFunc("GET /v1/apps/{app}/predict", s.deadline(s.handlePredict))
	mux.HandleFunc("GET /v1/apps/{app}/speedup", s.deadline(s.handleSpeedup))
	mux.HandleFunc("GET /v1/apps/{app}/efficiency", s.deadline(s.handleEfficiency))
	mux.HandleFunc("GET /v1/apps/{app}/cost", s.deadline(s.handleCost))
	// Unknown paths answer in the standard error envelope instead of the
	// mux's plain-text 404.
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		writeError(w, http.StatusNotFound, "not_found", "unknown route "+r.URL.Path, nil)
	})
	return mux
}

// deadline wraps a handler with the per-request deadline budget, derived
// through the configured clock so tests control it deterministically. A
// request whose context ends mid-handler answers 503 from whichever
// boundary check sees it first.
func (s *Server) deadline(h http.HandlerFunc) http.HandlerFunc {
	d := s.cfg.requestTimeout()
	if d <= 0 {
		return h
	}
	return func(w http.ResponseWriter, r *http.Request) {
		ctx, cancel := s.clock.WithTimeout(r.Context(), d)
		defer cancel()
		h(w, r.WithContext(ctx))
	}
}

// expired reports (and answers) a request whose context already ended —
// the deadline budget ran out or the client went away.
func expired(w http.ResponseWriter, r *http.Request) bool {
	if err := resilience.CauseOrErr(r.Context()); err != nil {
		writeError(w, http.StatusServiceUnavailable, "deadline", "request abandoned: "+err.Error(), nil)
		return true
	}
	return false
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	if expired(w, r) {
		return
	}
	writeJSON(w, http.StatusOK, healthResponse{Status: "ok", Apps: len(s.store.names())})
}

func (s *Server) handleApps(w http.ResponseWriter, r *http.Request) {
	if expired(w, r) {
		return
	}
	resp := appsResponse{Apps: []appInfo{}}
	for _, name := range s.store.names() {
		if a, ok := s.store.lookup(name); ok {
			resp.Apps = append(resp.Apps, infoOf(a))
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// infoOf condenses one application's state for listings.
func infoOf(a *appState) appInfo {
	st := a.status()
	info := appInfo{App: st.Name, Format: st.Format, Files: st.Files, Pending: st.Pending}
	if snap := a.snapshot(); snap != nil {
		info.Ready = true
		info.Generation = snap.Generation
		info.Degraded = snap.Degraded
	}
	if st.Last != nil && st.Last.err != nil {
		info.LastError = st.Last.err.Error()
	}
	if st.Mixed {
		info.LastError = errMixedSpool.Error()
	}
	return info
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	if expired(w, r) {
		return
	}
	a, ok := s.app(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, infoOf(a))
}

// app resolves the {app} path segment to existing state, answering the
// 400/404 itself when it cannot.
func (s *Server) app(w http.ResponseWriter, r *http.Request) (*appState, bool) {
	name := r.PathValue("app")
	if !validAppName(name) {
		writeError(w, http.StatusBadRequest, "bad_request", "invalid application name "+strconv.Quote(name), nil)
		return nil, false
	}
	a, ok := s.store.lookup(name)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown_app", "no profiles uploaded for application "+strconv.Quote(name), nil)
		return nil, false
	}
	return a, true
}

// upload is one validated file of an upload batch, ready to spool.
type upload struct {
	name string
	id   identity
	data []byte
}

func (s *Server) handleUpload(w http.ResponseWriter, r *http.Request) {
	if expired(w, r) {
		return
	}
	name := r.PathValue("app")
	if !validAppName(name) {
		writeError(w, http.StatusBadRequest, "bad_request", "invalid application name "+strconv.Quote(name), nil)
		return
	}
	req, err := decodeUploadRequest(r, s.cfg.maxUploadBytes())
	if err != nil {
		writeAPIError(w, err)
		return
	}
	batch, err := validateBatch(name, req)
	if err != nil {
		writeAPIError(w, err)
		return
	}

	a := s.store.get(name)
	// Serialize uploads per application: admission (conflict checks) and
	// the spool writes must be one atomic step or two racing uploads
	// could both admit the same identity.
	a.upMu.Lock()
	defer a.upMu.Unlock()
	if err := a.admit(req.Format, batch); err != nil {
		writeAPIError(w, err)
		return
	}
	if err := s.spool(name, batch); err != nil {
		writeAPIError(w, err)
		return
	}
	added := make(map[identity]string, len(batch))
	accepted := make([]string, 0, len(batch))
	for _, u := range batch {
		added[u.id] = u.name
		accepted = append(accepted, u.name)
	}
	a.commit(req.Format, added)
	s.kick(a)

	st := a.status()
	writeJSON(w, http.StatusAccepted, uploadResponse{
		App:          name,
		Accepted:     accepted,
		SpooledFiles: st.Files,
		Refit:        st.Pending,
	})
}

// decodeUploadRequest reads and shape-checks the upload envelope.
func decodeUploadRequest(r *http.Request, limit int64) (*uploadRequest, error) {
	body, err := io.ReadAll(http.MaxBytesReader(nil, r.Body, limit))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			return nil, &apiError{status: http.StatusRequestEntityTooLarge, code: "too_large",
				message: fmt.Sprintf("request body exceeds the %d-byte upload limit", tooBig.Limit)}
		}
		return nil, &apiError{status: http.StatusBadRequest, code: "bad_request", message: "reading request body: " + err.Error()}
	}
	var req uploadRequest
	if err := json.Unmarshal(body, &req); err != nil {
		return nil, &apiError{status: http.StatusBadRequest, code: "bad_request", message: "malformed upload envelope: " + err.Error()}
	}
	if req.Format != "json" && req.Format != "csv" {
		return nil, &apiError{status: http.StatusBadRequest, code: "bad_request",
			message: fmt.Sprintf("unknown profile format %q (have json, csv)", req.Format)}
	}
	if len(req.Profiles) == 0 {
		return nil, &apiError{status: http.StatusBadRequest, code: "bad_request", message: "upload envelope contains no profiles"}
	}
	return &req, nil
}

// validateBatch runs every uploaded document through the exact
// read/decode/validate classification directory ingestion uses
// (ingest.DecodeBytes) and derives canonical spool names. The batch is
// atomic: any failing file refuses the whole upload with 422 and
// per-file stage detail, and the store stays unchanged.
func validateBatch(app string, req *uploadRequest) ([]upload, error) {
	var batch []upload
	var rejected []fileDetail
	for i, f := range req.Profiles {
		p, stage, err := ingest.DecodeBytes([]byte(f.Content), req.Format)
		if err != nil {
			rejected = append(rejected, fileDetail{Index: i, Stage: stage.String(), Reason: err.Error()})
			continue
		}
		if p.App != app {
			return nil, &apiError{status: http.StatusBadRequest, code: "app_mismatch",
				message: fmt.Sprintf("profile %d declares application %q, uploaded to %q", i, p.App, app)}
		}
		name := p.FileName()
		if req.Format == "csv" {
			name = strings.TrimSuffix(name, ".json") + ".csv"
		}
		batch = append(batch, upload{
			name: name,
			id:   identity{point: p.Point().Key(), rank: p.Rank, rep: p.Rep},
			data: []byte(f.Content),
		})
	}
	if len(rejected) > 0 {
		return nil, &apiError{status: http.StatusUnprocessableEntity, code: "quarantined",
			message: fmt.Sprintf("%d of %d uploaded profile(s) failed validation; nothing was spooled", len(rejected), len(req.Profiles)),
			files:   rejected}
	}
	return batch, nil
}

// spool writes an admitted batch under the application's spool
// directory. Each file lands via a temporary ".part" name plus rename,
// so a fit campaign scanning the directory concurrently never reads a
// half-written profile; on any failure the already-written files of this
// batch are removed, keeping the upload atomic.
func (s *Server) spool(app string, batch []upload) error {
	dir := filepath.Join(s.cfg.SpoolDir, app)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("creating spool directory: %w", err)
	}
	var written []string
	undo := func() {
		for _, p := range written {
			_ = os.Remove(p)
		}
	}
	for _, u := range batch {
		path := filepath.Join(dir, u.name)
		tmp := path + ".part"
		if err := os.WriteFile(tmp, u.data, 0o644); err != nil {
			undo()
			return fmt.Errorf("spooling %s: %w", u.name, err)
		}
		if err := os.Rename(tmp, path); err != nil {
			_ = os.Remove(tmp)
			undo()
			return fmt.Errorf("spooling %s: %w", u.name, err)
		}
		written = append(written, path)
	}
	return nil
}

// snapshotFor resolves the application and its published snapshot,
// answering the error (404, 503 with last-failure detail, 409 for a
// mixed spool) itself when there is nothing to query.
func (s *Server) snapshotFor(w http.ResponseWriter, r *http.Request) (*appState, *Snapshot, bool) {
	a, ok := s.app(w, r)
	if !ok {
		return nil, nil, false
	}
	snap := a.snapshot()
	if snap == nil {
		st := a.status()
		if st.Mixed {
			writeAPIError(w, errMixedSpool)
			return nil, nil, false
		}
		msg := "no fitted models yet for application " + strconv.Quote(st.Name)
		if st.Pending {
			msg += " (fit campaign in progress)"
		} else if st.Last != nil && st.Last.err != nil {
			msg += ": last campaign failed: " + st.Last.err.Error()
		}
		writeError(w, http.StatusServiceUnavailable, "not_ready", msg, nil)
		return nil, nil, false
	}
	return a, snap, true
}

func (s *Server) handleModels(w http.ResponseWriter, r *http.Request) {
	if expired(w, r) {
		return
	}
	_, snap, ok := s.snapshotFor(w, r)
	if !ok {
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Extradeep-Generation", strconv.FormatInt(snap.Generation, 10))
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(snap.ModelsJSON)
}

func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	if expired(w, r) {
		return
	}
	_, snap, ok := s.snapshotFor(w, r)
	if !ok {
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.Header().Set("Extradeep-Generation", strconv.FormatInt(snap.Generation, 10))
	w.WriteHeader(http.StatusOK)
	_, _ = io.WriteString(w, snap.Report)
}

// queryX parses the x query parameter (the rank count the Section 3
// equations are asked at).
func queryX(w http.ResponseWriter, r *http.Request) (float64, bool) {
	raw := r.URL.Query().Get("x")
	if raw == "" {
		writeError(w, http.StatusBadRequest, "bad_request", "missing query parameter x (rank count)", nil)
		return 0, false
	}
	x, err := strconv.ParseFloat(raw, 64)
	if err != nil || x <= 0 {
		writeError(w, http.StatusBadRequest, "bad_request", "query parameter x must be a positive number, got "+strconv.Quote(raw), nil)
		return 0, false
	}
	return x, true
}

// extrapolated reports x outside the snapshot's measured range.
func (snap *Snapshot) extrapolated(x float64) bool {
	return len(snap.Xs) > 0 && (x < snap.Xs[0] || x > snap.Xs[len(snap.Xs)-1])
}

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	if expired(w, r) {
		return
	}
	name := r.PathValue("app")
	_, snap, ok := s.snapshotFor(w, r)
	if !ok {
		return
	}
	x, ok := queryX(w, r)
	if !ok {
		return
	}
	m := snap.Models.App[epoch.AppPath]
	lo, hi := m.PredictInterval(0.95, x)
	writeJSON(w, http.StatusOK, predictResponse{
		App:          name,
		Generation:   snap.Generation,
		X:            x,
		Seconds:      m.Predict(x),
		Lo:           lo,
		Hi:           hi,
		CILevel:      0.95,
		Extrapolated: snap.extrapolated(x),
		Degraded:     snap.Degraded,
	})
}

// speedupAt computes the Eq. 11 achieved speedup of x against the
// measured baseline x₁ = Xs[0]: Δa = (T₁−T(x))/(T₁/100).
func (snap *Snapshot) speedupAt(x float64) (x1, achieved float64, err error) {
	if len(snap.Xs) == 0 {
		return 0, 0, errors.New("snapshot has no measured configurations")
	}
	m := snap.Models.App[epoch.AppPath]
	x1 = snap.Xs[0]
	t1 := m.Predict(x1)
	if t1 == 0 {
		return 0, 0, errors.New("baseline runtime is zero")
	}
	return x1, (t1 - m.Predict(x)) / (t1 / 100), nil
}

func (s *Server) handleSpeedup(w http.ResponseWriter, r *http.Request) {
	if expired(w, r) {
		return
	}
	name := r.PathValue("app")
	_, snap, ok := s.snapshotFor(w, r)
	if !ok {
		return
	}
	x, ok := queryX(w, r)
	if !ok {
		return
	}
	x1, achieved, err := snap.speedupAt(x)
	if err != nil {
		writeAPIError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, speedupResponse{
		App:          name,
		Generation:   snap.Generation,
		X:            x,
		Baseline:     x1,
		Achieved:     achieved,
		Theoretical:  analysis.TheoreticalSpeedup(x1, x),
		Extrapolated: snap.extrapolated(x),
		Degraded:     snap.Degraded,
	})
}

func (s *Server) handleEfficiency(w http.ResponseWriter, r *http.Request) {
	if expired(w, r) {
		return
	}
	name := r.PathValue("app")
	_, snap, ok := s.snapshotFor(w, r)
	if !ok {
		return
	}
	x, ok := queryX(w, r)
	if !ok {
		return
	}
	x1, achieved, err := snap.speedupAt(x)
	if err != nil {
		writeAPIError(w, err)
		return
	}
	// Eq. 13: ε = Δa/Δt; the baseline itself has efficiency 1 (Δt = 0
	// there, so the ratio is taken only away from the baseline).
	eff := 1.0
	if !mathutil.AlmostEqual(x, x1, 1e-12) {
		eff = achieved / analysis.TheoreticalSpeedup(x1, x)
	}
	writeJSON(w, http.StatusOK, efficiencyResponse{
		App:          name,
		Generation:   snap.Generation,
		X:            x,
		Baseline:     x1,
		Efficiency:   eff,
		Extrapolated: snap.extrapolated(x),
		Degraded:     snap.Degraded,
	})
}

func (s *Server) handleCost(w http.ResponseWriter, r *http.Request) {
	if expired(w, r) {
		return
	}
	name := r.PathValue("app")
	_, snap, ok := s.snapshotFor(w, r)
	if !ok {
		return
	}
	x, ok := queryX(w, r)
	if !ok {
		return
	}
	rho := s.cfg.Analyze.CoresPerRank
	if raw := r.URL.Query().Get("cores_per_rank"); raw != "" {
		v, err := strconv.ParseFloat(raw, 64)
		if err != nil || v <= 0 {
			writeError(w, http.StatusBadRequest, "bad_request", "query parameter cores_per_rank must be a positive number, got "+strconv.Quote(raw), nil)
			return
		}
		rho = v
	}
	m := snap.Models.App[epoch.AppPath]
	cm := analysis.CostModel{Runtime: m.Function, CoresPerRank: rho}
	writeJSON(w, http.StatusOK, costResponse{
		App:          name,
		Generation:   snap.Generation,
		X:            x,
		CoresPerRank: rho,
		Seconds:      m.Predict(x),
		CoreHours:    cm.CoreHours(x),
		Extrapolated: snap.extrapolated(x),
		Degraded:     snap.Degraded,
	})
}
