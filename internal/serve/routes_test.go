package serve_test

// Route-level edge cases the property and golden suites do not reach:
// the report endpoint, empty-server health, per-request deadlines, the
// mixed-spool refusal, spool rescans over foreign files, and the serve
// configuration's own validation.

import (
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"extradeep/internal/serve"
)

func TestServeReportEndpoint(t *testing.T) {
	files := makeCampaign(t, defaultRanks, 1, 31)
	s := startServer(t, serve.Config{})
	s.mustUpload(t, testApp, contentsOf(files))
	s.settle(t, testApp)

	status, body := s.do(t, http.MethodGet, "/v1/apps/"+testApp+"/report", nil)
	if status != http.StatusOK {
		t.Fatalf("report: status %d, body %s", status, body)
	}
	text := string(body)
	// The rendered report opens with the model section; its full content
	// is pinned by the pipeline's own tests.
	if !strings.Contains(text, "application models") {
		t.Errorf("report missing the model section:\n%s", text)
	}
	if len(text) < 100 {
		t.Errorf("report suspiciously short (%d bytes)", len(text))
	}
}

func TestServeHealthEmpty(t *testing.T) {
	s := startServer(t, serve.Config{})
	status, body := s.do(t, http.MethodGet, "/v1/health", nil)
	if status != http.StatusOK {
		t.Fatalf("health: %d %s", status, body)
	}
	var h struct {
		Status string `json:"status"`
		Apps   int    `json:"apps"`
	}
	decodeJSON(t, body, &h)
	if h.Status != "ok" || h.Apps != 0 {
		t.Errorf("empty-server health = %+v, want ok/0", h)
	}

	// And the apps listing is an empty array, not null.
	status, body = s.do(t, http.MethodGet, "/v1/apps", nil)
	if status != http.StatusOK || !strings.Contains(string(body), `"apps":[]`) {
		t.Errorf("empty apps listing: %d %s", status, body)
	}
}

// TestServeRequestDeadline: with a (pathologically) tiny request budget
// every route answers the 503 deadline refusal instead of hanging.
func TestServeRequestDeadline(t *testing.T) {
	s := startServer(t, serve.Config{RequestTimeout: time.Nanosecond})
	for _, path := range []string{
		"/v1/health", "/v1/apps", "/v1/apps/" + testApp + "/status",
		"/v1/apps/" + testApp + "/models", "/v1/apps/" + testApp + "/report",
		"/v1/apps/" + testApp + "/predict?x=8",
	} {
		status, body := s.do(t, http.MethodGet, path, nil)
		if status != http.StatusServiceUnavailable {
			t.Errorf("%s: status %d, want 503; body %s", path, status, body)
			continue
		}
		if code := errorCode(t, body); code != "deadline" {
			t.Errorf("%s: error code %q, want deadline", path, code)
		}
	}
}

// TestServeTimeoutDisabled: a negative RequestTimeout turns the budget
// off entirely (the wrapper is not installed).
func TestServeTimeoutDisabled(t *testing.T) {
	s := startServer(t, serve.Config{RequestTimeout: -1})
	if status, body := s.do(t, http.MethodGet, "/v1/health", nil); status != http.StatusOK {
		t.Fatalf("health with disabled timeout: %d %s", status, body)
	}
}

// TestServeMissingX: every equation endpoint refuses a missing or
// non-positive x the same way.
func TestServeMissingX(t *testing.T) {
	files := makeCampaign(t, defaultRanks, 1, 41)
	s := startServer(t, serve.Config{})
	s.mustUpload(t, testApp, contentsOf(files))
	s.settle(t, testApp)

	for _, ep := range []string{"predict", "speedup", "efficiency", "cost"} {
		for _, q := range []string{"", "?x=0", "?x=banana"} {
			status, body := s.do(t, http.MethodGet, "/v1/apps/"+testApp+"/"+ep+q, nil)
			if status != http.StatusBadRequest {
				t.Errorf("%s%q: status %d, want 400; body %s", ep, q, status, body)
				continue
			}
			if code := errorCode(t, body); code != "bad_request" {
				t.Errorf("%s%q: error code %q, want bad_request", ep, q, code)
			}
		}
		// Extrapolation flag: x far beyond the measured range is answered,
		// flagged, never refused.
		status, body := s.do(t, http.MethodGet, "/v1/apps/"+testApp+"/"+ep+"?x=4096", nil)
		if status != http.StatusOK {
			t.Errorf("%s at x=4096: status %d, body %s", ep, status, body)
			continue
		}
		if !strings.Contains(string(body), `"extrapolated":true`) {
			t.Errorf("%s at x=4096 not flagged extrapolated: %s", ep, body)
		}
	}
}

// TestServeMixedSpool: a spool directory holding both formats (only
// producible by hand-editing the server's state on disk) marks the
// application unservable with the dedicated 409.
func TestServeMixedSpool(t *testing.T) {
	spool := t.TempDir()
	appDir := filepath.Join(spool, testApp)
	if err := os.MkdirAll(appDir, 0o755); err != nil {
		t.Fatal(err)
	}
	_, victim := victimProfile(t, 43)
	if err := os.WriteFile(filepath.Join(appDir, "imdb.x4.mpi0.r1.json"), []byte(victim), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(appDir, "imdb.x8.mpi0.r1.csv"), []byte("not,really,csv"), 0o644); err != nil {
		t.Fatal(err)
	}

	s := startServer(t, serve.Config{SpoolDir: spool})
	status, body := s.do(t, http.MethodGet, "/v1/apps/"+testApp+"/models", nil)
	if status != http.StatusConflict {
		t.Fatalf("mixed spool models: status %d, want 409; body %s", status, body)
	}
	if code := errorCode(t, body); code != "conflict_mixed_spool" {
		t.Fatalf("mixed spool models: code %q, want conflict_mixed_spool", code)
	}
	status, body = s.upload(t, testApp, "json", []string{victim})
	if status != http.StatusConflict {
		t.Fatalf("mixed spool upload: status %d, want 409; body %s", status, body)
	}
	if code := errorCode(t, body); code != "conflict_mixed_spool" {
		t.Fatalf("mixed spool upload: code %q, want conflict_mixed_spool", code)
	}
	// The listing surfaces the condition rather than hiding the app.
	status, body = s.do(t, http.MethodGet, "/v1/apps/"+testApp+"/status", nil)
	if status != http.StatusOK || !strings.Contains(string(body), "both json and csv") {
		t.Errorf("mixed status: %d %s", status, body)
	}
}

// TestServeSpoolScanIgnoresForeignFiles: a restart scan skips files that
// are not profile documents (editor droppings, notes) instead of
// refusing to boot — and still fits the real ones.
func TestServeSpoolScanIgnoresForeignFiles(t *testing.T) {
	spool := t.TempDir()
	appDir := filepath.Join(spool, testApp)
	if err := os.MkdirAll(appDir, 0o755); err != nil {
		t.Fatal(err)
	}
	files := makeCampaign(t, defaultRanks, 1, 47)
	for name, content := range files {
		if err := os.WriteFile(filepath.Join(appDir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	for name, content := range map[string]string{
		"notes.txt":       "measurement log, do not delete",
		"badname.json":    "{}",
		"imdb.x4.tmp.swp": "vim swap",
	} {
		if err := os.WriteFile(filepath.Join(appDir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	s := startServer(t, serve.Config{SpoolDir: spool})
	snap := s.settle(t, testApp)
	if snap.Profiles != len(files) {
		t.Errorf("scan fitted %d profiles, want %d (foreign files must be skipped)", snap.Profiles, len(files))
	}
}

// TestServeNewValidation: the constructor refuses configurations that
// cannot serve.
func TestServeNewValidation(t *testing.T) {
	if _, err := serve.New(serve.Config{Setup: testSetup(t)}); err == nil {
		t.Error("New without SpoolDir should fail")
	}
	if _, err := serve.New(serve.Config{SpoolDir: t.TempDir()}); err == nil {
		t.Error("New without Setup should fail")
	}
}
