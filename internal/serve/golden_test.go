package serve_test

// Golden-route suite: every endpoint's JSON wire shape — success and
// each error class, including the exit_equivalent status taxonomy — is
// pinned to a checked-in golden file. Volatile model numerics are
// redacted (the parity properties pin them bit-exactly elsewhere);
// everything else, down to field order and the HTTP status line, must
// match byte for byte. Regenerate with:
//
//	go test ./internal/serve/ -run TestPropServeGoldenRoutes -update

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"extradeep/internal/pipeline"
	"extradeep/internal/serve"
)

var update = flag.Bool("update", false, "rewrite the golden files under testdata/")

// volatileKeys are response fields whose values depend on fitted model
// coefficients; their numeric values are redacted so the goldens pin
// shape and taxonomy, not regression coefficients.
var volatileKeys = map[string]bool{
	"seconds": true, "lo": true, "hi": true,
	"achieved": true, "theoretical": true, "efficiency": true,
	"core_hours": true,
}

// redactVolatile walks a decoded JSON value replacing volatile numerics.
func redactVolatile(v any) any {
	switch t := v.(type) {
	case map[string]any:
		for k, val := range t {
			if volatileKeys[k] {
				if _, isNum := val.(float64); isNum {
					t[k] = "<num>"
					continue
				}
			}
			t[k] = redactVolatile(val)
		}
	case []any:
		for i := range t {
			t[i] = redactVolatile(t[i])
		}
	}
	return v
}

// canonicalBody renders a response for golden comparison: temp paths
// scrubbed, volatile numerics redacted, keys sorted, stable indentation.
func canonicalBody(tb testing.TB, status int, body []byte, scrub map[string]string) []byte {
	tb.Helper()
	text := string(body)
	for real, repl := range scrub {
		text = strings.ReplaceAll(text, real, repl)
	}
	var v any
	if err := json.Unmarshal([]byte(text), &v); err != nil {
		tb.Fatalf("response is not JSON: %v\n%s", err, text)
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetEscapeHTML(false)
	enc.SetIndent("", "  ")
	if err := enc.Encode(redactVolatile(v)); err != nil {
		tb.Fatal(err)
	}
	return []byte(fmt.Sprintf("HTTP %d\n%s", status, buf.Bytes()))
}

// checkGolden compares against testdata/<name>.golden, rewriting it
// under -update.
func checkGolden(tb testing.TB, name string, got []byte) {
	tb.Helper()
	path := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			tb.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			tb.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		tb.Fatalf("missing golden %s (regenerate with -update): %v", path, err)
	}
	if !bytes.Equal(got, want) {
		tb.Errorf("route response drifted from %s:\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
	}
}

// TestPropServeGoldenRoutes pins the full wire vocabulary: one settled
// deterministic campaign, then every route and every error class.
func TestPropServeGoldenRoutes(t *testing.T) {
	files := makeCampaign(t, defaultRanks, 1, 3)
	s := startServer(t, serve.Config{Analyze: testAnalyze(4)})
	s.mustUpload(t, testApp, contentsOf(files))
	s.settle(t, testApp)
	scrub := map[string]string{s.spool: "<spool>"}

	routes := []struct {
		name   string
		method string
		path   string
		body   []byte
	}{
		{"health", http.MethodGet, "/v1/health", nil},
		{"apps", http.MethodGet, "/v1/apps", nil},
		{"status", http.MethodGet, "/v1/apps/" + testApp + "/status", nil},
		{"predict", http.MethodGet, "/v1/apps/" + testApp + "/predict?x=8", nil},
		{"predict_extrapolated", http.MethodGet, "/v1/apps/" + testApp + "/predict?x=64", nil},
		{"speedup", http.MethodGet, "/v1/apps/" + testApp + "/speedup?x=8", nil},
		{"efficiency", http.MethodGet, "/v1/apps/" + testApp + "/efficiency?x=8", nil},
		{"efficiency_baseline", http.MethodGet, "/v1/apps/" + testApp + "/efficiency?x=2", nil},
		{"cost", http.MethodGet, "/v1/apps/" + testApp + "/cost?x=8", nil},
		{"cost_override", http.MethodGet, "/v1/apps/" + testApp + "/cost?x=8&cores_per_rank=16", nil},

		// Error classes, one golden each: the status line pins the code →
		// exit_equivalent mapping alongside the envelope shape.
		{"err_unknown_app", http.MethodGet, "/v1/apps/nope/status", nil},
		{"err_invalid_name", http.MethodGet, "/v1/apps/bad!name/status", nil},
		{"err_unknown_route", http.MethodGet, "/v1/nope", nil},
		{"err_missing_x", http.MethodGet, "/v1/apps/" + testApp + "/predict", nil},
		{"err_bad_x", http.MethodGet, "/v1/apps/" + testApp + "/predict?x=-3", nil},
		{"err_bad_envelope", http.MethodPost, "/v1/apps/" + testApp + "/profiles", []byte("not-json")},
		{"err_bad_format", http.MethodPost, "/v1/apps/" + testApp + "/profiles",
			[]byte(`{"format":"xml","profiles":[{"content":"x"}]}`)},
		{"err_quarantined", http.MethodPost, "/v1/apps/" + testApp + "/profiles",
			envelope("json", []string{"{broken"})},
	}
	for _, rt := range routes {
		t.Run(rt.name, func(t *testing.T) {
			status, body := s.do(t, rt.method, rt.path, rt.body)
			checkGolden(t, rt.name, canonicalBody(t, status, body, scrub))
		})
	}

	// Duplicate-identity conflict needs a victim already spooled: re-send
	// one campaign file verbatim.
	t.Run("err_conflict_duplicate", func(t *testing.T) {
		status, body := s.upload(t, testApp, "json", contentsOf(files)[:1])
		checkGolden(t, "err_conflict_duplicate", canonicalBody(t, status, body, scrub))
	})

	// Upload acknowledgement last — it mutates spool state for this app.
	t.Run("upload_accepted", func(t *testing.T) {
		extra := makeCampaign(t, []int{12}, 1, 3)
		status, body := s.upload(t, testApp, "json", contentsOf(extra))
		checkGolden(t, "upload_accepted", canonicalBody(t, status, body, scrub))
	})
}

// TestServeGoldenNotReady pins the 503 taxonomy: an application whose
// only campaign was refused by the degradation gate (too few
// configurations) reports not_ready with the gate's cause.
func TestServeGoldenNotReady(t *testing.T) {
	files := makeCampaign(t, []int{2, 4}, 1, 5) // below the 5-config floor
	s := startServer(t, serve.Config{})
	s.mustUpload(t, testApp, contentsOf(files))
	// Settle without the happy-path helper: the campaign is expected to
	// fail, so wait for quiescence and ignore the returned gate error.
	ctx := t.Context()
	if _, err := s.srv.Settle(ctx, testApp); err == nil {
		t.Fatal("campaign over 2 configurations should be refused by the gate")
	}
	scrub := map[string]string{s.spool: "<spool>"}
	status, body := s.do(t, http.MethodGet, "/v1/apps/"+testApp+"/models", nil)
	checkGolden(t, "err_not_ready_gate", canonicalBody(t, status, body, scrub))
}

// testAnalyze mirrors startServer's default analysis options with a
// chosen ϱ (cores per rank), so cost goldens exercise a non-unit value.
func testAnalyze(coresPerRank float64) pipeline.AnalyzeOptions {
	return pipeline.AnalyzeOptions{CoresPerRank: coresPerRank, TopKernels: 10}
}
