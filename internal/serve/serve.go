// Package serve is Extra-Deep's modeling-as-a-service layer: a
// long-running HTTP server wrapping the staged analysis pipeline
// (Ingest → Aggregate → EpochExtrapolate → Fit → Analyze → Report) so
// practitioners can query fitted models repeatedly — predict runtime,
// speedup, efficiency and cost (Eqs. 11–14) for new configurations —
// without re-running a batch analysis per question.
//
// Clients POST profile files (the same JSON/CSV formats internal/ingest
// quarantine-validates) to /v1/apps/{app}/profiles; the server spools
// accepted files per application, coalesces bursts of uploads into one
// fit campaign per application, and answers
// GET /v1/apps/{app}/{predict,speedup,efficiency,cost,models,report}
// from an atomically swapped fitted-model snapshot. The architecture:
//
//   - Store: application states sharded by FNV-1a of the app name, each
//     shard behind its own mutex, so uploads and queries for different
//     applications never contend on one lock. Per-application state
//     carries the upload spool bookkeeping plus an atomic.Pointer to the
//     current Snapshot — queries load the pointer once and answer
//     entirely from that value, so a response always reflects one fully
//     fitted campaign, never a torn mix of two.
//
//   - Fit scheduling: an upload marks its application dirty and ensures
//     exactly one fit loop goroutine runs for it. The loop clears the
//     dirty flag, optionally waits one coalescing window (absorbing the
//     rest of a burst), runs the full pipeline over the spool directory,
//     and publishes the new snapshot; if more uploads arrived meanwhile
//     the loop goes around again, so N concurrent uploads cost at most
//     two campaigns, not N. Campaign concurrency across applications is
//     bounded by a semaphore; the per-campaign fit fan-out reuses
//     internal/pipeline's bounded forEach pool.
//
//   - Parity by construction: the fit path IS the batch path. Uploads
//     are spooled verbatim under their canonical file names and the
//     campaign runs pipeline.Run over that directory with the same
//     options the extradeep CLI would use, so the fitted ModelSet is
//     byte-identical to a batch run on the same files
//     (TestPropServeFitParity pins it).
//
//   - Incremental re-fit: with a checkpoint directory configured, every
//     campaign runs with resilience checkpointing and resume, so adding
//     one configuration re-fits only the tasks whose content keys
//     changed — unchanged kernels are reused byte-identically.
//
// All handlers honor context cancellation and a per-request deadline
// budget derived through resilience.Clock; fit campaigns run under the
// pipeline's stage timeouts and retry policy. The package is policed by
// the ctxflow, sendguard and wallclock analyzers: every goroutine is
// cancellable, every lock release is deferred, and no wall-clock value
// can reach a model or a serialized response.
package serve

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"extradeep/internal/aggregate"
	"extradeep/internal/epoch"
	"extradeep/internal/modeling"
	"extradeep/internal/pipeline"
	"extradeep/internal/resilience"
)

// Config assembles a Server. SpoolDir and Setup are required; everything
// else has serving defaults.
type Config struct {
	// SpoolDir is the root of the per-application upload spool: accepted
	// uploads are written verbatim to SpoolDir/<app>/<canonical name>,
	// and fit campaigns run the ingest stage over that directory. The
	// spool is the server's durable input state — a restarted server
	// rescans it and re-fits every application found.
	SpoolDir string
	// CheckpointDir enables incremental fit checkpointing: each
	// application's campaigns persist per-task state under
	// CheckpointDir/<app>. Empty disables checkpointing.
	CheckpointDir string
	// Resume reuses checkpointed fit tasks across campaigns (and across
	// server restarts), so an incremental upload re-fits only tasks whose
	// content keys changed. Ignored without CheckpointDir.
	Resume bool
	// Setup derives the training-setup values (Section 2.3.1) per
	// configuration, exactly as the batch CLI's -benchmark/-batch flags
	// do. Required.
	Setup epoch.SetupFunc
	// Analyze configures the Section 3 questions answered per campaign.
	Analyze pipeline.AnalyzeOptions
	// Aggregation and Modeling configure the pipeline stages; zero values
	// use the package defaults (matching the batch CLI).
	Aggregation aggregate.Options
	Modeling    modeling.Options
	// MinConfigurations is the ingest degradation gate's per-application
	// minimum; 0 means the paper's five.
	MinConfigurations int
	// Workers bounds each campaign's fit worker pool (0 = all cores).
	Workers int
	// MaxCampaigns bounds how many applications may fit concurrently
	// (default 2). The per-campaign fan-out is bounded separately by
	// Workers.
	MaxCampaigns int
	// Shards is the store's shard count (default 16).
	Shards int
	// RequestTimeout is the per-request deadline budget applied to every
	// handler (default 30s; negative disables).
	RequestTimeout time.Duration
	// CoalesceWindow is how long a fit loop waits after the first dirty
	// mark before starting a campaign, so a burst of uploads lands in one
	// re-fit (default 0: fit immediately).
	CoalesceWindow time.Duration
	// StageTimeout and Retries are the campaign's per-stage resilience
	// budget and retry policy, as in the batch CLI.
	StageTimeout time.Duration
	Retries      int
	// MaxUploadBytes bounds one upload request body (default 64 MiB).
	MaxUploadBytes int64
	// Clock paces request deadlines, coalescing windows and campaign
	// retries; nil means the wall clock. Tests substitute a FakeClock.
	Clock resilience.Clock
	// Observer receives per-campaign stage events; nil discards them.
	Observer pipeline.Observer
}

func (c Config) maxCampaigns() int {
	if c.MaxCampaigns <= 0 {
		return 2
	}
	return c.MaxCampaigns
}

func (c Config) requestTimeout() time.Duration {
	if c.RequestTimeout == 0 {
		return 30 * time.Second
	}
	if c.RequestTimeout < 0 {
		return 0
	}
	return c.RequestTimeout
}

func (c Config) maxUploadBytes() int64 {
	if c.MaxUploadBytes <= 0 {
		return 64 << 20
	}
	return c.MaxUploadBytes
}

// Server is the modeling service: a sharded application store plus the
// fit scheduler. Create with New, wire into an http.Server via Handler,
// call Start to begin serving fits, and Drain on shutdown.
type Server struct {
	cfg   Config
	store *store
	clock resilience.Clock

	// life is the server's lifecycle context, recorded by Start: fit
	// loops derive from it, so cancelling it (SIGTERM in cmd/edserve)
	// stops scheduling and interrupts in-flight campaigns at the next
	// stage or fit-task boundary — checkpointed state stays resumable.
	life context.Context

	// fitSem bounds concurrent campaigns across applications.
	fitSem chan struct{}
	// fits counts live fit-loop goroutines, for Drain.
	fits sync.WaitGroup

	mu      sync.Mutex
	started bool
	closed  bool
}

// New validates the configuration and builds a stopped server: Handler
// works immediately (queries answer 503 until fits complete), Start
// begins fitting.
func New(cfg Config) (*Server, error) {
	if cfg.SpoolDir == "" {
		return nil, errors.New("serve: Config.SpoolDir is required")
	}
	if cfg.Setup == nil {
		return nil, errors.New("serve: Config.Setup is required")
	}
	if err := os.MkdirAll(cfg.SpoolDir, 0o755); err != nil {
		return nil, fmt.Errorf("serve: spool dir: %w", err)
	}
	clock := cfg.Clock
	if clock == nil {
		clock = resilience.WallClock{}
	}
	return &Server{
		cfg:    cfg,
		store:  newStore(cfg.Shards),
		clock:  clock,
		fitSem: make(chan struct{}, cfg.maxCampaigns()),
	}, nil
}

// Start records the lifecycle context, rescans the spool for
// applications left by a previous process, and schedules a fit for each
// — with Config.Resume and an intact checkpoint directory those fits
// reuse every unchanged task, so a restarted server converges to
// identical predictions cheaply. Start must be called exactly once.
func (s *Server) Start(ctx context.Context) error {
	if err := s.markStarted(ctx); err != nil {
		return err
	}
	apps, err := scanSpool(s.cfg.SpoolDir)
	if err != nil {
		return err
	}
	for _, sa := range apps {
		a := s.store.get(sa.name)
		a.adopt(sa)
		s.kick(a)
	}
	return nil
}

// markStarted records the lifecycle context exactly once.
func (s *Server) markStarted(ctx context.Context) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.started {
		return errors.New("serve: Start called twice")
	}
	s.started = true
	s.life = ctx
	return nil
}

// scannedApp is one application directory found in the spool.
type scannedApp struct {
	name   string
	format string
	files  int
	ids    map[identity]string
	// mixed reports a spool holding both formats — an unservable state
	// the upload path prevents but a hand-edited spool can produce.
	mixed bool
}

// scanSpool enumerates the applications spooled under root, in sorted
// order, recovering each one's format, file count and identity index.
func scanSpool(root string) ([]scannedApp, error) {
	entries, err := os.ReadDir(root)
	if err != nil {
		return nil, fmt.Errorf("serve: scanning spool: %w", err)
	}
	var out []scannedApp
	for _, e := range entries {
		if !e.IsDir() || !validAppName(e.Name()) {
			continue
		}
		sa, err := scanApp(root, e.Name())
		if err != nil {
			return nil, err
		}
		if sa.files > 0 || sa.mixed {
			out = append(out, sa)
		}
	}
	return out, nil
}

// scanApp inventories one application's spool directory.
func scanApp(root, name string) (scannedApp, error) {
	dir := filepath.Join(root, name)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return scannedApp{}, fmt.Errorf("serve: scanning spool app %s: %w", name, err)
	}
	sa := scannedApp{name: name, ids: map[identity]string{}}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		format, ok := formatOf(e.Name())
		if !ok {
			continue
		}
		if sa.format == "" {
			sa.format = format
		} else if sa.format != format {
			sa.mixed = true
		}
		sa.files++
		if id, ok := identityFromName(e.Name()); ok {
			sa.ids[id] = e.Name()
		}
	}
	return sa, nil
}

// Settle blocks until the application has no fit work scheduled or
// running — every upload so far is covered by a completed (successful or
// failed) campaign — and returns the published snapshot plus the last
// campaign error, either of which may be nil. It exists for clients (and
// tests) that need a quiescence point instead of polling /status.
func (s *Server) Settle(ctx context.Context, app string) (*Snapshot, error) {
	a, ok := s.store.lookup(app)
	if !ok {
		return nil, fmt.Errorf("serve: unknown application %q", app)
	}
	for {
		// Fetch the wakeup channel before inspecting state: a transition
		// between the two closes the fetched channel, so no wakeup can be
		// missed.
		ch := a.changed()
		st := a.status()
		if !st.Pending {
			var lastErr error
			if st.Last != nil {
				lastErr = st.Last.err
			}
			return a.snapshot(), lastErr
		}
		select {
		case <-ch:
		case <-ctx.Done():
			return nil, resilience.CauseOrErr(ctx)
		}
	}
}

// Drain waits for every fit loop to finish (they observe the Start
// context, so cancel that first for a prompt drain) or for ctx to end,
// whichever comes first. After a clean drain every completed campaign's
// checkpoint state is fully persisted.
func (s *Server) Drain(ctx context.Context) error {
	s.setClosed()
	done := make(chan struct{})
	//edlint:ignore ctxflow waiter exits when the fit WaitGroup drains; fit loops themselves observe the Start context, and Drain's select below bounds the wait
	go func() {
		defer close(done)
		s.fits.Wait()
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("serve: drain interrupted: %w", resilience.CauseOrErr(ctx))
	}
}

// setClosed stops kick from spawning new fit loops.
func (s *Server) setClosed() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
}

// schedulable reports whether new fit loops may start, returning the
// lifecycle context they must run under.
func (s *Server) schedulable() (context.Context, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.started || s.closed || s.life == nil || s.life.Err() != nil {
		return nil, false
	}
	return s.life, true
}
