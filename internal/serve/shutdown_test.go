package serve_test

// Graceful-shutdown suite: a server cancelled mid-work drains cleanly,
// loses nothing, and a restarted server over the same spool and
// checkpoint directory converges to byte-identical models and
// predictions. This is the satellite pinning the crash-consistency
// story: the spool is the durable truth, campaigns are re-runnable, and
// checkpoint resume only makes the re-run cheaper.

import (
	"bytes"
	"context"
	"net/http"
	"testing"
	"time"

	"extradeep/internal/serve"
)

// restartable builds a server over caller-owned spool/checkpoint dirs so
// a second instance can adopt the same state after the first dies.
func restartable(tb testing.TB, spool, ckpt string, coalesce time.Duration) (*testServer, context.CancelFunc) {
	tb.Helper()
	cfg := serve.Config{
		SpoolDir:       spool,
		CheckpointDir:  ckpt,
		Resume:         true,
		Setup:          testSetup(tb),
		CoalesceWindow: coalesce,
	}
	s := startServer(tb, cfg)
	// startServer wires its own lifecycle cancel into tb.Cleanup; for the
	// shutdown tests we need to kill the first instance mid-test, so give
	// the caller an explicit handle too.
	return s, s.stop
}

func TestServeShutdownDuringCoalesce(t *testing.T) {
	spool, ckpt := t.TempDir(), t.TempDir()
	files := makeCampaign(t, defaultRanks, 1, 21)

	// First life: upload lands, then the server dies inside the coalesce
	// window — before any campaign ran. The turn must be handed back so
	// the work survives the restart.
	first, kill := restartable(t, spool, ckpt, 30*time.Second)
	first.mustUpload(t, testApp, contentsOf(files))
	kill()
	drainCtx, done := context.WithTimeout(context.Background(), 30*time.Second)
	defer done()
	if err := first.srv.Drain(drainCtx); err != nil {
		t.Fatalf("drain after mid-coalesce cancel: %v", err)
	}
	if gen := statusGeneration(t, first); gen != 0 {
		t.Fatalf("no campaign should have completed inside the coalesce window, got generation %d", gen)
	}

	// Second life: Start rescans the spool, finds the unfitted files and
	// fits them without any new upload.
	second, _ := restartable(t, spool, ckpt, 0)
	snap := second.settle(t, testApp)
	if snap.Profiles != len(files) {
		t.Fatalf("restarted server fitted %d profiles, want %d", snap.Profiles, len(files))
	}
	got := second.models(t, testApp)
	want := batchModels(t, spool+"/"+testApp, 1)
	if !bytes.Equal(got, want) {
		t.Error("models after restart differ from batch reference over the same spool")
	}
}

func TestServeShutdownMidFitResume(t *testing.T) {
	spool, ckpt := t.TempDir(), t.TempDir()
	files := makeCampaign(t, defaultRanks, 2, 37)

	// First life: cancel immediately after the upload is acknowledged, so
	// the cancellation races the in-flight campaign. Both outcomes are
	// legal — campaign finished (snapshot published) or campaign aborted
	// (turn handed back) — and the restart must converge either way.
	first, kill := restartable(t, spool, ckpt, 0)
	first.mustUpload(t, testApp, contentsOf(files))
	kill()
	drainCtx, done := context.WithTimeout(context.Background(), 30*time.Second)
	defer done()
	if err := first.srv.Drain(drainCtx); err != nil {
		t.Fatalf("drain mid-fit: %v", err)
	}

	// Second life over the same dirs: resume from checkpoints.
	second, _ := restartable(t, spool, ckpt, 0)
	snap := second.settle(t, testApp)
	if snap.Profiles != len(files) {
		t.Fatalf("restarted server fitted %d profiles, want %d", snap.Profiles, len(files))
	}
	restarted := second.models(t, testApp)

	// Control: an uninterrupted server over a copy of the same campaign.
	control := startServer(t, serve.Config{})
	control.mustUpload(t, testApp, contentsOf(files))
	control.settle(t, testApp)
	controlModels := control.models(t, testApp)

	if !bytes.Equal(restarted, controlModels) {
		t.Error("resumed models differ from an uninterrupted server's models")
	}

	// "Serves identical predictions": the full prediction bodies — not
	// just the model file — must match between resumed and control.
	for _, route := range []string{"/predict?x=8", "/speedup?x=8", "/efficiency?x=8", "/cost?x=8"} {
		stA, bodyA := second.do(t, http.MethodGet, "/v1/apps/"+testApp+route, nil)
		stB, bodyB := control.do(t, http.MethodGet, "/v1/apps/"+testApp+route, nil)
		if stA != http.StatusOK || stB != http.StatusOK {
			t.Fatalf("%s: statuses %d/%d, want 200/200", route, stA, stB)
		}
		if !bytes.Equal(bodyA, bodyB) {
			t.Errorf("%s: resumed response %s differs from control %s", route, bodyA, bodyB)
		}
	}
}

// TestServeDrainIdempotent: draining an idle server returns immediately
// and a second drain is harmless.
func TestServeDrainIdempotent(t *testing.T) {
	s, kill := restartable(t, t.TempDir(), t.TempDir(), 0)
	kill()
	for i := 0; i < 2; i++ {
		ctx, done := context.WithTimeout(context.Background(), 5*time.Second)
		if err := s.srv.Drain(ctx); err != nil {
			t.Fatalf("drain %d: %v", i, err)
		}
		done()
	}
}

// statusGeneration reads the published campaign generation off the
// status endpoint (valid even on a stopped server: queries keep working,
// only fit scheduling is dead).
func statusGeneration(tb testing.TB, s *testServer) int64 {
	tb.Helper()
	status, body := s.do(tb, http.MethodGet, "/v1/apps/"+testApp+"/status", nil)
	if status != http.StatusOK {
		tb.Fatalf("status: %d %s", status, body)
	}
	var info struct {
		Generation int64 `json:"generation"`
	}
	decodeJSON(tb, body, &info)
	return info.Generation
}
