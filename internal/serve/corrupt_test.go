package serve_test

// The corruption suite: every internal/faults damage kind, uploaded
// through the API, must be refused with the right status and per-file
// stage classification — and the store must be provably unchanged (the
// next campaign still matches the batch reference).

import (
	"bytes"
	"net/http"
	"strings"
	"testing"

	"extradeep/internal/faults"
	"extradeep/internal/importer"
	"extradeep/internal/serve"
	"extradeep/internal/simulator/engine"
	"extradeep/internal/simulator/hardware"
	"extradeep/internal/simulator/parallel"
)

// victimProfile returns one valid rank-4 profile document to damage.
// Its damaged variants never reach admission (they fail validation
// first), so identity collisions with spooled files cannot occur.
func victimProfile(tb testing.TB, seed int64) (name, content string) {
	tb.Helper()
	files := makeCampaign(tb, []int{4}, 1, seed)
	for n, c := range files {
		return n, c
	}
	tb.Fatal("no victim generated")
	return "", ""
}

// uploadDetail decodes the files array of a refusal envelope.
func uploadDetail(tb testing.TB, body []byte) []struct {
	Index  int    `json:"index"`
	Name   string `json:"name"`
	Stage  string `json:"stage"`
	Reason string `json:"reason"`
} {
	tb.Helper()
	var e struct {
		Error struct {
			Files []struct {
				Index  int    `json:"index"`
				Name   string `json:"name"`
				Stage  string `json:"stage"`
				Reason string `json:"reason"`
			} `json:"files"`
		} `json:"error"`
	}
	decodeJSON(tb, body, &e)
	return e.Error.Files
}

// appFiles reads the spooled-file count off the status endpoint.
func appFiles(tb testing.TB, s *testServer, app string) int {
	tb.Helper()
	status, body := s.do(tb, http.MethodGet, "/v1/apps/"+app+"/status", nil)
	if status != http.StatusOK {
		tb.Fatalf("status: %d %s", status, body)
	}
	var info struct {
		Files int `json:"files"`
	}
	decodeJSON(tb, body, &info)
	return info.Files
}

// TestServeCorruptUploads: one server, a settled healthy campaign, then
// every content-damaging fault kind thrown at it. Each damaged upload
// must come back 422 with read/decode/validate stage detail, leave the
// spool untouched, and the final model set must still match the batch
// pipeline over the spool — corruption never reaches the fit.
func TestServeCorruptUploads(t *testing.T) {
	files := makeCampaign(t, defaultRanks, 1, 7)
	s := startServer(t, serve.Config{})
	s.mustUpload(t, testApp, contentsOf(files))
	s.settle(t, testApp)
	baseline := appFiles(t, s, testApp)

	_, victim := victimProfile(t, 99)
	validStages := map[string]bool{"read": true, "decode": true, "validate": true}

	for _, kind := range faults.Kinds() {
		if kind == faults.DuplicateRankRep {
			continue // set-level fault, covered by TestServeDuplicateUpload
		}
		t.Run(kind.String(), func(t *testing.T) {
			damaged, err := faults.Apply(kind, []byte(victim), "json")
			if err != nil {
				t.Fatal(err)
			}
			status, body := s.upload(t, testApp, "json", []string{string(damaged)})
			if status != http.StatusUnprocessableEntity {
				t.Fatalf("%s upload: status %d, want 422; body %s", kind, status, body)
			}
			if code := errorCode(t, body); code != "quarantined" {
				t.Fatalf("%s upload: error code %q, want quarantined", kind, code)
			}
			details := uploadDetail(t, body)
			if len(details) != 1 {
				t.Fatalf("%s upload: %d file details, want 1", kind, len(details))
			}
			d := details[0]
			if !validStages[d.Stage] {
				t.Errorf("%s upload: stage %q not in read/decode/validate", kind, d.Stage)
			}
			if d.Reason == "" {
				t.Errorf("%s upload: empty refusal reason", kind)
			}
			if got := appFiles(t, s, testApp); got != baseline {
				t.Errorf("%s upload: spool grew from %d to %d files despite refusal", kind, baseline, got)
			}
		})
	}

	// The refusals must have been side-effect free: the spool still fits
	// to exactly the batch pipeline's answer.
	snap := s.settle(t, testApp)
	if snap.Generation != 1 {
		t.Errorf("corrupt uploads triggered refits: generation %d, want 1", snap.Generation)
	}
	got := s.models(t, testApp)
	want := batchModels(t, s.spool+"/"+testApp, 1)
	if !bytes.Equal(got, want) {
		t.Error("models after corrupt-upload barrage differ from batch reference")
	}
}

// TestServeDuplicateUpload covers the set-level DuplicateRankRep fault:
// the same identity twice in one batch, and an upload colliding with an
// already-spooled file, are both 409 conflicts that change nothing.
func TestServeDuplicateUpload(t *testing.T) {
	s := startServer(t, serve.Config{})
	_, victim := victimProfile(t, 11)

	// Same identity twice within one batch: atomic refusal.
	status, body := s.upload(t, testApp, "json", []string{victim, victim})
	if status != http.StatusConflict {
		t.Fatalf("in-batch duplicate: status %d, want 409; body %s", status, body)
	}
	if code := errorCode(t, body); code != "conflict_duplicate" {
		t.Fatalf("in-batch duplicate: error code %q, want conflict_duplicate", code)
	}
	if got := appFiles(t, s, testApp); got != 0 {
		t.Fatalf("in-batch duplicate spooled %d files, want 0 (atomic refusal)", got)
	}

	// Spool it once, then collide with the spooled copy.
	s.mustUpload(t, testApp, []string{victim})
	status, body = s.upload(t, testApp, "json", []string{victim})
	if status != http.StatusConflict {
		t.Fatalf("spool duplicate: status %d, want 409; body %s", status, body)
	}
	if code := errorCode(t, body); code != "conflict_duplicate" {
		t.Fatalf("spool duplicate: error code %q, want conflict_duplicate", code)
	}
	if got := appFiles(t, s, testApp); got != 1 {
		t.Fatalf("spool duplicate left %d files, want 1", got)
	}
}

// TestServeFormatConflict: an application's profile format is fixed by
// its first upload; a later upload in the other format is a 409.
func TestServeFormatConflict(t *testing.T) {
	s := startServer(t, serve.Config{})
	_, victim := victimProfile(t, 13)
	s.mustUpload(t, testApp, []string{victim})

	var csvDoc bytes.Buffer
	b, err := engine.ByName(testApp)
	if err != nil {
		t.Fatal(err)
	}
	ps, err := engine.Profile(b, engine.RunConfig{
		System: hardware.DEEP(), Strategy: parallel.DataParallel{},
		Ranks: 8, WeakScaling: true, Seed: 13, SampleRanks: 1,
	}, 2, true)
	if err != nil {
		t.Fatal(err)
	}
	if err := importer.WriteCSV(&csvDoc, ps[0]); err != nil {
		t.Fatal(err)
	}
	status, body := s.upload(t, testApp, "csv", []string{csvDoc.String()})
	if status != http.StatusConflict {
		t.Fatalf("format switch: status %d, want 409; body %s", status, body)
	}
	if code := errorCode(t, body); code != "conflict_format" {
		t.Fatalf("format switch: error code %q, want conflict_format", code)
	}
}

// TestServeCSVCorruption: the CSV decode path classifies damage too —
// a CSV document without its magic header is refused at the decode
// stage, and NaN metrics (syntactically valid CSV) at validate.
func TestServeCSVCorruption(t *testing.T) {
	b, err := engine.ByName(testApp)
	if err != nil {
		t.Fatal(err)
	}
	ps, err := engine.Profile(b, engine.RunConfig{
		System: hardware.DEEP(), Strategy: parallel.DataParallel{},
		Ranks: 4, WeakScaling: true, Seed: 17, SampleRanks: 1,
	}, 1, true)
	if err != nil {
		t.Fatal(err)
	}
	var doc bytes.Buffer
	if err := importer.WriteCSV(&doc, ps[0]); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		kind      faults.Kind
		wantStage string
	}{
		{faults.MissingHeader, "decode"},
		{faults.NaNMetric, "validate"},
	}
	for _, tc := range cases {
		t.Run(tc.kind.String(), func(t *testing.T) {
			s := startServer(t, serve.Config{})
			damaged, err := faults.Apply(tc.kind, doc.Bytes(), "csv")
			if err != nil {
				t.Fatal(err)
			}
			status, body := s.upload(t, testApp, "csv", []string{string(damaged)})
			if status != http.StatusUnprocessableEntity {
				t.Fatalf("status %d, want 422; body %s", status, body)
			}
			details := uploadDetail(t, body)
			if len(details) != 1 || details[0].Stage != tc.wantStage {
				t.Fatalf("detail %+v, want single %s-stage refusal", details, tc.wantStage)
			}
		})
	}
}

// TestServeAppMismatch: a structurally valid profile declaring a
// different application than the URL path is a 400, not a quarantine —
// the client addressed the wrong collection.
func TestServeAppMismatch(t *testing.T) {
	s := startServer(t, serve.Config{})
	_, victim := victimProfile(t, 23)
	status, body := s.upload(t, "cifar10", "json", []string{victim})
	if status != http.StatusBadRequest {
		t.Fatalf("app mismatch: status %d, want 400; body %s", status, body)
	}
	if code := errorCode(t, body); code != "app_mismatch" {
		t.Fatalf("app mismatch: error code %q, want app_mismatch", code)
	}
	if !strings.Contains(string(body), testApp) {
		t.Errorf("app mismatch body should name the declared application; got %s", body)
	}
}

// TestServeEnvelopeRefusals: malformed envelopes are 400s with the
// bad_request code, before any profile-level validation runs.
func TestServeEnvelopeRefusals(t *testing.T) {
	s := startServer(t, serve.Config{})
	cases := []struct {
		name string
		body []byte
	}{
		{"not json", []byte("profiles=please")},
		{"unknown format", []byte(`{"format":"xml","profiles":[{"content":"x"}]}`)},
		{"no profiles", []byte(`{"format":"json","profiles":[]}`)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			status, body := s.do(t, http.MethodPost, "/v1/apps/"+testApp+"/profiles", tc.body)
			if status != http.StatusBadRequest {
				t.Fatalf("status %d, want 400; body %s", status, body)
			}
			if code := errorCode(t, body); code != "bad_request" {
				t.Fatalf("error code %q, want bad_request", code)
			}
		})
	}
}

// TestServeUploadTooLarge: bodies over the configured cap are 413.
func TestServeUploadTooLarge(t *testing.T) {
	s := startServer(t, serve.Config{MaxUploadBytes: 512})
	big := envelope("json", []string{strings.Repeat("x", 4096)})
	status, body := s.do(t, http.MethodPost, "/v1/apps/"+testApp+"/profiles", big)
	if status != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized upload: status %d, want 413; body %s", status, body)
	}
	if code := errorCode(t, body); code != "too_large" {
		t.Fatalf("oversized upload: error code %q, want too_large", code)
	}
}
