package serve

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"sort"

	"extradeep/internal/aggregate"
	"extradeep/internal/core"
	"extradeep/internal/ingest"
	"extradeep/internal/pipeline"
	"extradeep/internal/resilience"
)

// kick ensures a fit loop is running for the application: it marks the
// state dirty and, when no loop holds the claim, spawns one under the
// server lifecycle context. Called after every accepted upload and once
// per application at Start.
func (s *Server) kick(a *appState) {
	ctx, ok := s.schedulable()
	if !ok {
		return
	}
	if !a.claimFit() {
		return
	}
	s.fits.Add(1)
	go func(ctx context.Context) {
		defer s.fits.Done()
		s.fitLoop(ctx, a)
	}(ctx)
}

// fitLoop is the application's single fit goroutine: it turns dirty
// spool state into published snapshots until nothing is dirty, then
// releases the claim and exits. Because exactly one loop runs per
// application and each turn consumes the dirty flag once, a burst of N
// concurrent uploads costs at most two campaigns — the one in flight
// when the burst lands, plus one over the complete spool.
func (s *Server) fitLoop(ctx context.Context, a *appState) {
	for {
		// Absorb the rest of an upload burst before consuming the turn:
		// everything spooled during the window lands in this campaign.
		if w := s.cfg.CoalesceWindow; w > 0 && ctx.Err() == nil {
			_ = s.clock.Sleep(ctx, w)
		}
		gen, done := a.takeTurn(ctx.Err() != nil)
		if done {
			return
		}
		// Bound campaign concurrency across applications.
		select {
		case s.fitSem <- struct{}{}:
		case <-ctx.Done():
			a.abort()
			return
		}
		snap, out := s.campaign(ctx, a, gen)
		<-s.fitSem
		if ctx.Err() != nil && snap == nil {
			// Interrupted mid-campaign: the spool content this turn
			// claimed was never fitted. Put the turn back so a restarted
			// server (or a later Start) re-fits it.
			a.abort()
			return
		}
		a.publish(snap, out)
	}
}

// abort returns an unconsumed turn: the spool stays dirty and the loop's
// claim is released, so the work is picked up by the next kick (in this
// process or after a restart's spool rescan).
func (a *appState) abort() {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.dirty = true
	a.fitting = false
	a.signalLocked()
}

// campaign runs one full pipeline over the application's spool directory
// and builds the snapshot to publish. The pipeline configuration is
// exactly the batch CLI's — same default aggregation and modeling
// options, same lenient ingest with degradation gate — so the fitted
// ModelSet is byte-identical to a batch run over the same files. With a
// checkpoint directory, the campaign checkpoints under
// CheckpointDir/<app> and (with Resume) reuses every fit task whose
// content key is unchanged, which is what makes incremental uploads
// cheap: one new configuration re-fits only affected kernels.
func (s *Server) campaign(ctx context.Context, a *appState, gen int64) (*Snapshot, *fitOutcome) {
	cfg := s.cfg
	var ckpt *resilience.Store
	if cfg.CheckpointDir != "" {
		dir := filepath.Join(cfg.CheckpointDir, a.name)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, &fitOutcome{gen: gen, err: err}
		}
		ckpt = &resilience.Store{Dir: dir}
	}
	agg := cfg.Aggregation
	if agg == (aggregate.Options{}) {
		agg = aggregate.DefaultOptions()
	}
	pl := pipeline.New(pipeline.Config{
		Workers:           cfg.Workers,
		Aggregation:       agg,
		Modeling:          cfg.Modeling,
		MinConfigurations: cfg.MinConfigurations,
		Observer:          cfg.Observer,
		Retry:             resilience.RetryPolicy{MaxAttempts: cfg.Retries},
		StageTimeout:      cfg.StageTimeout,
		Clock:             cfg.Clock,
		Checkpoint:        ckpt,
		Resume:            cfg.Resume,
	})
	res, err := pl.Run(ctx, pipeline.RunSpec{
		ProfilesDir: filepath.Join(cfg.SpoolDir, a.name),
		Format:      a.spoolFormat(),
		Ingest:      ingest.Options{Policy: ingest.Lenient, MinConfigurations: cfg.MinConfigurations},
		Setup:       cfg.Setup,
		Analyze:     cfg.Analyze,
	})
	if err != nil {
		var ge *ingest.GateError
		return nil, &fitOutcome{gen: gen, err: err, gate: errors.As(err, &ge)}
	}
	snap, err := buildSnapshot(gen, res)
	if err != nil {
		return nil, &fitOutcome{gen: gen, err: err}
	}
	return snap, &fitOutcome{gen: gen}
}

// buildSnapshot freezes one completed pipeline run into the immutable
// value queries answer from.
func buildSnapshot(gen int64, res *pipeline.RunResult) (*Snapshot, error) {
	encoded, err := core.EncodeModels(res.Models)
	if err != nil {
		return nil, err
	}
	var xs []float64
	for _, row := range res.Analysis.Rows {
		xs = append(xs, row.Ranks)
	}
	sort.Float64s(xs)
	return &Snapshot{
		Generation:  gen,
		Profiles:    len(res.Ingest.Profiles),
		Quarantined: len(res.Ingest.Quarantined),
		Warnings:    append([]string(nil), res.Ingest.Warnings...),
		Models:      res.Models,
		Analysis:    res.Analysis,
		Report:      res.Report,
		ModelsJSON:  encoded,
		Xs:          xs,
		Degraded:    res.Degraded(),
	}, nil
}
