package serve_test

// The protocol property suite: seeded, replayable propcheck properties
// over the full HTTP surface — fit parity with the batch pipeline,
// upload-order/partition invariance, and concurrent-client safety.
// Campaign fits are expensive, so every property runs a small iteration
// sweep (EDCHECK_ITERS multiplies it in the long-haul gate).

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"testing"

	"extradeep/internal/propcheck"
	"extradeep/internal/serve"
)

// campaignShape is the generated input of the protocol properties: which
// rank counts were measured, how many repetitions, and the simulation
// seed. Every shape yields a modelable campaign (≥5 distinct
// configurations, the degradation gate's minimum).
type campaignShape struct {
	Ranks []int
	Reps  int
	Seed  int64
}

// rankPool is the universe of measured rank counts shapes draw from.
var rankPool = []int{2, 4, 6, 8, 10, 12, 16}

// genShape draws a campaign shape: 5 or 6 distinct rank counts, 1–2
// repetitions, and an arbitrary simulation seed.
func genShape() propcheck.Gen[campaignShape] {
	return propcheck.Gen[campaignShape]{
		Generate: func(r *propcheck.Rand) campaignShape {
			n := r.IntRange(5, 6)
			perm := r.Perm(len(rankPool))
			ranks := make([]int, n)
			for i := 0; i < n; i++ {
				ranks[i] = rankPool[perm[i]]
			}
			return campaignShape{Ranks: ranks, Reps: r.IntRange(1, 2), Seed: r.Int64Range(1, 1<<30)}
		},
		Describe: func(s campaignShape) string {
			return fmt.Sprintf("campaign{ranks=%v reps=%d seed=%d}", s.Ranks, s.Reps, s.Seed)
		},
	}
}

// TestPropServeFitParity: uploading a campaign through the API yields a
// model set byte-identical to the batch pipeline run over the same
// files. Parity is the service's core contract — an API client and a CLI
// user asking the same question must get the same answer.
func TestPropServeFitParity(t *testing.T) {
	if testing.Short() {
		t.Skip("full fit campaigns are too slow for -short")
	}
	propcheck.CheckConfig(t, propcheck.Config{Iterations: 3}, genShape(), func(shape campaignShape) error {
		files := makeCampaign(t, shape.Ranks, shape.Reps, shape.Seed)
		s := startServer(t, serve.Config{})
		s.mustUpload(t, testApp, contentsOf(files))
		snap := s.settle(t, testApp)
		if snap.Generation < 1 {
			return fmt.Errorf("settled at generation %d, want >= 1", snap.Generation)
		}
		apiModels := s.models(t, testApp)

		// The reference side runs over the server's own spool directory:
		// the server spools uploads verbatim, so this is exactly "the
		// same files" a batch user would analyze.
		refModels := batchModels(t, s.spool+"/"+testApp, 1)
		if !bytes.Equal(apiModels, refModels) {
			return fmt.Errorf("API model set (%d bytes) differs from batch pipeline (%d bytes)", len(apiModels), len(refModels))
		}
		return nil
	})
}

// partition is a generated upload plan: an order permutation of the
// campaign files and cut points splitting them into sequential batches.
type partition struct {
	Shape campaignShape
	// Order is a permutation seed for the file order.
	Order int64
	// Batches is how many sequential uploads the files split into.
	Batches int
}

func genPartition() propcheck.Gen[partition] {
	shape := genShape()
	return propcheck.Gen[partition]{
		Generate: func(r *propcheck.Rand) partition {
			return partition{Shape: shape.Generate(r), Order: r.Int64Range(1, 1<<30), Batches: r.IntRange(2, 4)}
		},
		Describe: func(p partition) string {
			return fmt.Sprintf("partition{ranks=%v reps=%d seed=%d order=%d batches=%d}",
				p.Shape.Ranks, p.Shape.Reps, p.Shape.Seed, p.Order, p.Batches)
		},
	}
}

// splitContents shuffles the campaign files by the partition's order
// seed and cuts them into the requested number of non-empty batches.
func splitContents(files map[string]string, order int64, batches int) [][]string {
	contents := contentsOf(files)
	r := propcheck.NewRand(order)
	r.Shuffle(len(contents), func(i, j int) { contents[i], contents[j] = contents[j], contents[i] })
	if batches > len(contents) {
		batches = len(contents)
	}
	per := (len(contents) + batches - 1) / batches
	var out [][]string
	for start := 0; start < len(contents); start += per {
		end := start + per
		if end > len(contents) {
			end = len(contents)
		}
		out = append(out, contents[start:end])
	}
	return out
}

// TestPropServeIncremental: any upload order and any partition of a
// campaign into sequential batches converges to the same final model set
// as uploading everything at once. Intermediate states may legitimately
// be un-modelable (the degradation gate refuses < 5 configurations);
// only the settled end state is pinned.
func TestPropServeIncremental(t *testing.T) {
	if testing.Short() {
		t.Skip("full fit campaigns are too slow for -short")
	}
	propcheck.CheckConfig(t, propcheck.Config{Iterations: 3}, genPartition(), func(p partition) error {
		files := makeCampaign(t, p.Shape.Ranks, p.Shape.Reps, p.Shape.Seed)

		// Incremental path: batches uploaded one at a time, settling in
		// between so every intermediate campaign actually runs.
		inc := startServer(t, serve.Config{CheckpointDir: t.TempDir(), Resume: true})
		for _, batch := range splitContents(files, p.Order, p.Batches) {
			status, body := inc.upload(t, testApp, "json", batch)
			if status != http.StatusAccepted {
				return fmt.Errorf("incremental upload refused: %d %s", status, body)
			}
		}
		snap := inc.settle(t, testApp)
		if snap == nil {
			return fmt.Errorf("incremental server never published")
		}
		incModels := inc.models(t, testApp)

		// One-shot reference over the identical file set.
		ref := startServer(t, serve.Config{})
		ref.mustUpload(t, testApp, contentsOf(files))
		ref.settle(t, testApp)
		refModels := ref.models(t, testApp)

		if !bytes.Equal(incModels, refModels) {
			return fmt.Errorf("incremental final models differ from one-shot upload")
		}
		return nil
	})
}

// TestPropServeConcurrentClients: N clients uploading disjoint slices of
// one campaign concurrently, with readers hammering the query surface
// throughout, never lose an update and never observe a torn snapshot.
// Run under -race by verify.sh.
func TestPropServeConcurrentClients(t *testing.T) {
	if testing.Short() {
		t.Skip("full fit campaigns are too slow for -short")
	}
	propcheck.CheckConfig(t, propcheck.Config{Iterations: 2}, genPartition(), func(p partition) error {
		files := makeCampaign(t, p.Shape.Ranks, p.Shape.Reps, p.Shape.Seed)
		batches := splitContents(files, p.Order, p.Batches)

		s := startServer(t, serve.Config{MaxCampaigns: 2})
		var writers sync.WaitGroup
		errs := make([]error, len(batches))
		for i, batch := range batches {
			writers.Add(1)
			//edlint:ignore ctxflow test client completes one bounded upload; writers.Wait below joins it
			go func(i int, batch []string) {
				defer writers.Done()
				status, body := s.upload(t, testApp, "json", batch)
				if status != http.StatusAccepted {
					errs[i] = fmt.Errorf("client %d refused: %d %s", i, status, body)
				}
			}(i, batch)
		}
		// Reader: every 200 response from /models must be a complete,
		// well-formed model file — a torn snapshot would fail to decode
		// or carry an invalid version. Raw HTTP only: t.Fatal is not
		// legal off the test goroutine.
		stop := make(chan struct{})
		readerDone := make(chan error, 1)
		//edlint:ignore ctxflow reader loop polls the stop channel each pass; close(stop)+<-readerDone below join it
		go func() {
			defer close(readerDone)
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := s.ts.Client().Get(s.ts.URL + "/v1/apps/" + testApp + "/models")
				if err != nil {
					//edlint:ignore sendguard readerDone is buffered to 1 and each path sends at most once before returning
					readerDone <- fmt.Errorf("reader: %v", err)
					return
				}
				body, err := io.ReadAll(resp.Body)
				_ = resp.Body.Close()
				if err != nil {
					//edlint:ignore sendguard readerDone is buffered to 1 and each path sends at most once before returning
					readerDone <- fmt.Errorf("reader: %v", err)
					return
				}
				if resp.StatusCode == http.StatusOK {
					var mf struct {
						Version int `json:"version"`
					}
					if err := json.Unmarshal(body, &mf); err != nil || mf.Version != 1 {
						//edlint:ignore sendguard readerDone is buffered to 1 and each path sends at most once before returning
						readerDone <- fmt.Errorf("torn /models response (version=%d, err=%v)", mf.Version, err)
						return
					}
				}
			}
		}()

		writers.Wait()
		close(stop)
		if err := <-readerDone; err != nil {
			return err
		}
		for _, err := range errs {
			if err != nil {
				return err
			}
		}

		// No lost updates: the settled state covers every upload — its
		// models equal the one-shot reference over the full file set.
		snap := s.settle(t, testApp)
		if snap.Profiles != len(files) {
			return fmt.Errorf("settled snapshot covers %d profiles, want %d (lost update)", snap.Profiles, len(files))
		}
		got := s.models(t, testApp)
		want := batchModels(t, s.spool+"/"+testApp, 1)
		if !bytes.Equal(got, want) {
			return fmt.Errorf("concurrent-upload final models differ from batch reference")
		}
		return nil
	})
}
