package serve

import (
	"hash/fnv"
	"regexp"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"extradeep/internal/measurement"
	"extradeep/internal/pipeline"
	"extradeep/internal/profile"
)

// store holds every application's state, sharded by FNV-1a of the app
// name so uploads and queries for different applications contend only
// within their shard. Shard count is fixed at construction.
type store struct {
	shards []*shard
}

// shard is one bucket of the store: a mutex over its app map. The map
// holds pointers; app state has its own finer-grained synchronization,
// so the shard lock is held only for lookup/insert.
type shard struct {
	mu   sync.Mutex
	apps map[string]*appState
}

const defaultShards = 16

func newStore(shards int) *store {
	if shards <= 0 {
		shards = defaultShards
	}
	st := &store{shards: make([]*shard, shards)}
	for i := range st.shards {
		st.shards[i] = &shard{apps: make(map[string]*appState)}
	}
	return st
}

// shardOf maps an app name to its shard.
func (st *store) shardOf(app string) *shard {
	h := fnv.New32a()
	h.Write([]byte(app))
	return st.shards[int(h.Sum32())%len(st.shards)]
}

// get returns the state for app, creating it on first use.
func (st *store) get(app string) *appState {
	sh := st.shardOf(app)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	a, ok := sh.apps[app]
	if !ok {
		a = &appState{name: app, ids: map[identity]string{}, pubCh: make(chan struct{})}
		sh.apps[app] = a
	}
	return a
}

// lookup returns the state for app without creating it.
func (st *store) lookup(app string) (*appState, bool) {
	sh := st.shardOf(app)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	a, ok := sh.apps[app]
	return a, ok
}

// names returns every known application name, sorted — the /v1/apps
// listing must not leak map iteration order.
func (st *store) names() []string {
	var out []string
	for _, sh := range st.shards {
		out = append(out, sh.names()...)
	}
	sort.Strings(out)
	return out
}

func (sh *shard) names() []string {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	out := make([]string, 0, len(sh.apps))
	for name := range sh.apps {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// identity is the uniqueness key of a profile within one application's
// campaign, mirroring internal/ingest's duplicate detection: two spooled
// files must never claim the same (configuration, rank, repetition).
type identity struct {
	point string
	rank  int
	rep   int
}

// identityFromName recovers a spooled file's identity from its canonical
// app.x{config}.mpi{rank}.r{rep} name.
func identityFromName(name string) (identity, bool) {
	_, config, rank, rep, ok := profile.ParseFileName(name)
	if !ok {
		return identity{}, false
	}
	return identity{point: measurement.Point(config).Key(), rank: rank, rep: rep}, true
}

// Snapshot is one fully fitted campaign, published atomically: every
// query answers entirely from one snapshot value, so a client never sees
// a torn mix of two campaigns. Snapshots are immutable after publish.
type Snapshot struct {
	// Generation counts published campaigns for this application,
	// starting at 1. It is echoed in every query response, so a client
	// can correlate a prediction with the /models state it came from.
	Generation int64
	// Profiles and Quarantined are the ingest outcome of the campaign.
	Profiles    int
	Quarantined int
	// Warnings are the ingest degradation warnings.
	Warnings []string
	// Models is the fitted model set, byte-identical to a batch run over
	// the same spool (see ModelsJSON for the canonical encoding).
	Models *pipeline.ModelSet
	// Analysis carries the Section 3 results over the measured range.
	Analysis *pipeline.AnalysisResult
	// Report is the rendered text report.
	Report string
	// ModelsJSON is core.EncodeModels(Models), cached at publish time so
	// /models answers without re-encoding.
	ModelsJSON []byte
	// Xs are the measured parameter values, sorted ascending; Xs[0] is
	// the speedup/efficiency baseline x₁ of Eqs. 11–13.
	Xs []float64
	// Degraded reports a partial campaign: some per-kernel fits were
	// quarantined (the batch CLI's exit-4 analog).
	Degraded bool
}

// fitOutcome classifies the last completed fit attempt, for error
// surfaces on /models and /health.
type fitOutcome struct {
	// gen is the campaign generation the outcome belongs to.
	gen int64
	// err is nil after a successful campaign.
	err error
	// gate marks an ingest degradation-gate refusal (not yet modelable)
	// as opposed to an internal failure.
	gate bool
}

// appState is one application's mutable serving state. The mutex guards
// the spool bookkeeping and scheduling flags; the published snapshot is
// read through an atomic pointer so queries never take the lock.
type appState struct {
	name string

	// upMu serializes upload batches for this application, held across
	// the whole admit → spool-write → commit sequence so admission
	// checks and the files they admitted cannot interleave.
	upMu sync.Mutex

	mu sync.Mutex
	// format is the application's profile format ("json" or "csv"),
	// fixed by the first upload; "" until then.
	format string
	// files counts spooled profile files.
	files int
	// ids indexes spooled identities → file name, for duplicate refusal.
	ids map[identity]string
	// dirty marks spool content not yet covered by a fit campaign;
	// fitting marks a live fit loop. Together they coalesce bursts: an
	// upload only spawns a loop when none runs, otherwise the running
	// loop picks the new state up on its next turn.
	dirty   bool
	fitting bool
	// gen counts started campaigns (the next snapshot's generation).
	gen int64
	// last is the most recent fit outcome (nil before the first).
	last *fitOutcome
	// mixed marks a spool directory holding both formats (only reachable
	// by hand-editing the spool); the app is unservable until cleaned.
	mixed bool
	// pubCh is closed (and replaced) on every state transition — commit,
	// campaign publish, fit-loop settle — so Settle waiters can block
	// without polling.
	pubCh chan struct{}

	snap atomic.Pointer[Snapshot]
}

// signalLocked wakes every Settle waiter. Callers hold a.mu.
func (a *appState) signalLocked() {
	close(a.pubCh)
	a.pubCh = make(chan struct{})
}

// changed returns a channel closed at the next state transition.
func (a *appState) changed() <-chan struct{} {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.pubCh
}

// adopt seeds the state from a spool rescan at server start.
func (a *appState) adopt(sa scannedApp) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.format = sa.format
	a.files = sa.files
	a.mixed = sa.mixed
	for id, name := range sa.ids {
		a.ids[id] = name
	}
	a.dirty = a.files > 0 && !a.mixed
}

// snapshot returns the current published snapshot (nil before the first
// campaign completes).
func (a *appState) snapshot() *Snapshot { return a.snap.Load() }

// status is a consistent copy of the scheduling state, for listings.
type appStatus struct {
	Name    string
	Format  string
	Files   int
	Pending bool // dirty or mid-campaign: the snapshot lags the spool
	Mixed   bool
	Last    *fitOutcome
}

func (a *appState) status() appStatus {
	a.mu.Lock()
	defer a.mu.Unlock()
	return appStatus{
		Name:    a.name,
		Format:  a.format,
		Files:   a.files,
		Pending: a.dirty || a.fitting,
		Mixed:   a.mixed,
		Last:    a.last,
	}
}

// commit records an accepted batch of uploads: fixes the format on first
// use, indexes the identities, bumps the file count and marks the state
// dirty. The caller has already validated and written the files.
func (a *appState) commit(format string, added map[identity]string) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.format == "" {
		a.format = format
	}
	for id, name := range added {
		a.ids[id] = name
	}
	a.files += len(added)
	a.dirty = true
	a.signalLocked()
}

// admit checks one upload batch against the spooled state under the
// lock: format consistency and identity uniqueness (against the spool
// and within the batch). It returns the first conflict, or nil.
func (a *appState) admit(format string, batch []upload) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.mixed {
		return errMixedSpool
	}
	if a.format != "" && a.format != format {
		return &conflictError{kind: "format", detail: "application " + a.name + " already serves " + a.format + " profiles; cannot accept " + format}
	}
	seen := map[identity]string{}
	for _, u := range batch {
		if prev, ok := a.ids[u.id]; ok {
			return &conflictError{kind: "duplicate", detail: u.name + " duplicates the identity of already-spooled " + prev}
		}
		if prev, ok := seen[u.id]; ok {
			return &conflictError{kind: "duplicate", detail: u.name + " duplicates the identity of " + prev + " in the same upload"}
		}
		seen[u.id] = u.name
	}
	return nil
}

// claimFit marks the state dirty and claims the fit loop if none runs.
// It returns true when the caller must spawn the loop.
func (a *appState) claimFit() bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.mixed || a.files == 0 {
		return false
	}
	a.dirty = true
	if a.fitting {
		return false
	}
	a.fitting = true
	return true
}

// takeTurn consumes the dirty flag for one campaign turn, allocating its
// generation. When nothing is dirty (or the loop should stop) it clears
// the fitting claim and reports done=true.
func (a *appState) takeTurn(stopped bool) (gen int64, done bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if stopped || !a.dirty {
		a.fitting = false
		a.signalLocked()
		return 0, true
	}
	a.dirty = false
	a.gen++
	return a.gen, false
}

// spoolFormat returns the format campaigns must ingest with.
func (a *appState) spoolFormat() string {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.format
}

// publish stores the campaign outcome: on success the snapshot pointer
// swaps to the fully built value; either way the outcome is recorded.
func (a *appState) publish(snap *Snapshot, out *fitOutcome) {
	if snap != nil {
		a.snap.Store(snap)
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.last = out
	a.signalLocked()
}

// appNamePattern is the accepted application path segment: the same
// alphabet canonical profile file names use, so an app directory name is
// always a safe single path component.
var appNamePattern = regexp.MustCompile(`^[A-Za-z0-9][A-Za-z0-9._-]{0,127}$`)

func validAppName(name string) bool {
	return appNamePattern.MatchString(name) && !strings.Contains(name, "..")
}

// formatOf classifies a file name by profile-format extension.
func formatOf(name string) (string, bool) {
	switch {
	case strings.HasSuffix(name, ".json"):
		return "json", true
	case strings.HasSuffix(name, ".csv"):
		return "csv", true
	}
	return "", false
}
