package serve_test

// BenchmarkServe measures the query hot path — /predict against a
// settled snapshot — under 1, 4 and 16 concurrent clients, all on a
// fixed campaign seed. Beyond the usual ns/op, each variant reports
// req/s and p99 latency, and (with EDSERVE_BENCH_OUT set, as the
// verify.sh serve-bench stage does) appends them to a machine-readable
// results file, the live counterpart of the committed BENCH_serve.json
// trajectory.

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"runtime"
	"sort"
	"sync"
	"testing"
	"time"

	"extradeep/internal/serve"
)

// benchResult is one variant's measured outcome.
type benchResult struct {
	Clients   int     `json:"clients"`
	Requests  int     `json:"requests"`
	ReqPerSec float64 `json:"req_per_s"`
	P99Ns     int64   `json:"p99_ns"`
	NsPerOp   int64   `json:"ns_per_op"`
}

// benchFile is the EDSERVE_BENCH_OUT schema.
type benchFile struct {
	Benchmark   string                 `json:"benchmark"`
	Description string                 `json:"description"`
	Command     string                 `json:"command"`
	Environment map[string]any         `json:"environment"`
	Date        string                 `json:"date"`
	Results     map[string]benchResult `json:"results"`
}

var (
	benchMu      sync.Mutex
	benchResults = map[string]benchResult{}
)

// recordBench appends one variant to the output file (rewritten whole on
// every variant, so a partial run still leaves valid JSON).
func recordBench(b *testing.B, name string, res benchResult) {
	out := os.Getenv("EDSERVE_BENCH_OUT")
	if out == "" {
		return
	}
	benchMu.Lock()
	defer benchMu.Unlock()
	benchResults[name] = res
	f := benchFile{
		Benchmark:   "BenchmarkServe",
		Description: "edserve query hot path: GET /v1/apps/{app}/predict against a settled snapshot (imdb campaign, 5 ranks x 1 rep, seed 1), under 1/4/16 concurrent clients over a shared httptest transport.",
		Command:     "EDSERVE_BENCH_OUT=BENCH_serve.json go test -run '^$' -bench BenchmarkServe ./internal/serve/",
		Environment: map[string]any{
			"goos":   runtime.GOOS,
			"goarch": runtime.GOARCH,
			"cores":  runtime.NumCPU(),
		},
		Date:    time.Now().UTC().Format("2006-01-02"),
		Results: benchResults,
	}
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkServe(b *testing.B) {
	files := makeCampaign(b, defaultRanks, 1, 1)
	s := startServer(b, serve.Config{})
	s.mustUpload(b, testApp, contentsOf(files))
	s.settle(b, testApp)
	url := s.ts.URL + "/v1/apps/" + testApp + "/predict?x=8"
	client := s.ts.Client()

	for _, clients := range []int{1, 4, 16} {
		name := fmt.Sprintf("clients=%d", clients)
		b.Run(name, func(b *testing.B) {
			latencies := make([][]time.Duration, clients)
			var work sync.WaitGroup
			requests := make(chan struct{})
			failures := make(chan error, clients)
			for c := 0; c < clients; c++ {
				work.Add(1)
				//edlint:ignore ctxflow benchmark client drains the requests channel; close(requests)+work.Wait below bound its lifetime
				go func(c int) {
					defer work.Done()
					for range requests {
						t0 := time.Now()
						resp, err := client.Get(url)
						if err != nil {
							select {
							case failures <- err:
							default:
							}
							return
						}
						_ = resp.Body.Close()
						if resp.StatusCode != http.StatusOK {
							select {
							case failures <- fmt.Errorf("predict: status %d", resp.StatusCode):
							default:
							}
							return
						}
						latencies[c] = append(latencies[c], time.Since(t0))
					}
				}(c)
			}

			b.ResetTimer()
			start := time.Now()
			for i := 0; i < b.N; i++ {
				// Guard the send: a client that errored has stopped
				// receiving, and an unguarded send would hang forever.
				select {
				case requests <- struct{}{}:
				case err := <-failures:
					b.Fatal(err)
				}
			}
			close(requests)
			work.Wait()
			elapsed := time.Since(start)
			b.StopTimer()

			select {
			case err := <-failures:
				b.Fatal(err)
			default:
			}

			var all []time.Duration
			for _, ls := range latencies {
				all = append(all, ls...)
			}
			if len(all) != b.N {
				b.Fatalf("completed %d requests, want %d", len(all), b.N)
			}
			sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
			p99 := all[(len(all)-1)*99/100]
			rps := float64(b.N) / elapsed.Seconds()
			b.ReportMetric(float64(p99.Nanoseconds()), "p99-ns")
			b.ReportMetric(rps, "req/s")
			recordBench(b, name, benchResult{
				Clients:   clients,
				Requests:  b.N,
				ReqPerSec: rps,
				P99Ns:     p99.Nanoseconds(),
				NsPerOp:   elapsed.Nanoseconds() / int64(b.N),
			})
		})
	}
}
