// Package diagnose checks a set of profiles for the measurement-quality
// problems that silently ruin empirical models: missing ranks or
// repetitions, inconsistent step counts across ranks, absent warm-up
// epochs, kernels observed in too few configurations to be modeled
// (they will be filtered, Fig. 2 step (4)), excessive run-to-run
// variation, too few configurations for modeling at all, and semantic
// corruption — NaN/Inf or negative event metric values that decode
// without error but would poison the aggregation medians. It is the
// pre-flight check of the analysis pipeline.
package diagnose

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"extradeep/internal/aggregate"
	"extradeep/internal/mathutil"
	"extradeep/internal/measurement"
	"extradeep/internal/profile"
	"extradeep/internal/trace"
)

// Severity grades a finding.
type Severity int

// Severity levels.
const (
	// Info findings are observations, not problems.
	Info Severity = iota
	// Warning findings degrade model quality.
	Warning
	// Error findings prevent modeling.
	Error
)

// String names the severity.
func (s Severity) String() string {
	switch s {
	case Info:
		return "info"
	case Warning:
		return "warning"
	case Error:
		return "error"
	default:
		return "unknown"
	}
}

// Finding is one diagnostic result.
type Finding struct {
	Severity Severity
	// Subject locates the finding (configuration, kernel, …).
	Subject string
	// Message describes the problem and its consequence.
	Message string
}

// Report is the complete diagnosis of a profile set.
type Report struct {
	Findings []Finding
	// Configurations is the number of distinct measurement points seen.
	Configurations int
	// Profiles is the number of profile files inspected.
	Profiles int
}

// Errors returns the findings of Error severity.
func (r *Report) Errors() []Finding { return r.bySeverity(Error) }

// Warnings returns the findings of Warning severity.
func (r *Report) Warnings() []Finding { return r.bySeverity(Warning) }

func (r *Report) bySeverity(s Severity) []Finding {
	var out []Finding
	for _, f := range r.Findings {
		if f.Severity == s {
			out = append(out, f)
		}
	}
	return out
}

// OK reports whether modeling can proceed (no Error findings).
func (r *Report) OK() bool { return len(r.Errors()) == 0 }

// add appends a finding.
func (r *Report) add(sev Severity, subject, format string, args ...any) {
	r.Findings = append(r.Findings, Finding{
		Severity: sev, Subject: subject, Message: fmt.Sprintf(format, args...),
	})
}

// Options tunes the thresholds.
type Options struct {
	// MinConfigurations for modeling; 0 = the paper's 5.
	MinConfigurations int
	// VariationWarn is the run-to-run variation above which a warning is
	// raised (0 = 0.25; the paper calls 15%+ common and 17.4% its JURECA
	// average, so only clearly pathological spread warns by default).
	VariationWarn float64
}

func (o Options) minConfigs() int {
	if o.MinConfigurations <= 0 {
		return measurement.MinModelingPoints
	}
	return o.MinConfigurations
}

func (o Options) variationWarn() float64 {
	if o.VariationWarn <= 0 {
		return 0.25
	}
	return o.VariationWarn
}

// corruptEventMetrics scans a trace for semantically corrupt event
// metrics — NaN/Inf start, duration or byte values, or negative durations
// and byte counts — which decode without error (e.g. from the CSV
// interchange format or an in-memory producer) yet would silently poison
// the aggregation medians. It returns the number of corrupt events and a
// description of the first one.
func corruptEventMetrics(tr *trace.Trace) (count int, first string) {
	bad := func(v float64) bool { return math.IsNaN(v) || math.IsInf(v, 0) }
	for i, e := range tr.Events {
		var reason string
		switch {
		case bad(e.Start) || bad(e.Duration) || bad(e.Bytes):
			reason = fmt.Sprintf("non-finite metric (start %v, duration %v, bytes %v)", e.Start, e.Duration, e.Bytes)
		case e.Duration < 0:
			reason = fmt.Sprintf("negative duration %v", e.Duration)
		case e.Bytes < 0:
			reason = fmt.Sprintf("negative byte count %v", e.Bytes)
		default:
			continue
		}
		count++
		if first == "" {
			first = fmt.Sprintf("event %d (%s): %s", i, e.Name, reason)
		}
	}
	return count, first
}

// Check diagnoses a profile set.
func Check(profiles []*profile.Profile, opts Options) *Report {
	rep := &Report{Profiles: len(profiles)}
	if len(profiles) == 0 {
		rep.add(Error, "profiles", "no profiles to analyze")
		return rep
	}

	groups := profile.GroupByConfig(profiles)
	keys := profile.SortedKeys(groups)
	rep.Configurations = len(keys)

	if len(keys) < opts.minConfigs() {
		rep.add(Error, "configurations",
			"only %d measured configuration(s); modeling needs at least %d (the paper's minimum to separate logarithmic, linear and polynomial growth)",
			len(keys), opts.minConfigs())
	}

	apps := map[string]bool{}
	for _, k := range keys {
		apps[k.App] = true
	}
	if len(apps) > 1 {
		names := make([]string, 0, len(apps))
		for a := range apps {
			names = append(names, a)
		}
		sort.Strings(names)
		rep.add(Error, "profiles", "profiles mix applications: %s", strings.Join(names, ", "))
	}

	kernelConfigs := map[string]int{}

	for _, key := range keys {
		group := groups[key]
		subject := fmt.Sprintf("%s %s", key.App, key.Point)

		// Rank/repetition completeness.
		byRep := map[int]map[int]bool{}
		maxRank := -1
		for _, p := range group {
			if byRep[p.Rep] == nil {
				byRep[p.Rep] = map[int]bool{}
			}
			if byRep[p.Rep][p.Rank] {
				rep.add(Warning, subject, "duplicate profile for repetition %d rank %d", p.Rep, p.Rank)
			}
			byRep[p.Rep][p.Rank] = true
			if p.Rank > maxRank {
				maxRank = p.Rank
			}
		}
		if len(byRep) == 1 {
			rep.add(Warning, subject, "single repetition: run-to-run variation cannot be assessed (the paper uses 5)")
		}
		repIdxs := make([]int, 0, len(byRep))
		for repIdx := range byRep {
			repIdxs = append(repIdxs, repIdx)
		}
		sort.Ints(repIdxs)
		for _, repIdx := range repIdxs {
			ranks := byRep[repIdx]
			for r := 0; r <= maxRank; r++ {
				if !ranks[r] {
					rep.add(Warning, subject, "repetition %d is missing rank %d (ranks 0..%d seen elsewhere)", repIdx, r, maxRank)
				}
			}
		}

		// Per-profile structure.
		stepCounts := map[int]bool{}
		for _, p := range group {
			tr := &p.Trace
			if n, first := corruptEventMetrics(tr); n > 0 {
				rep.add(Error, subject,
					"rank %d rep %d has %d event(s) with corrupt metric values (first: %s) — NaN/Inf or negative measurements would poison every median downstream",
					p.Rank, p.Rep, n, first)
			}
			if len(tr.Epochs) == 0 {
				rep.add(Error, subject, "rank %d rep %d has no epoch marks — instrumentation missing?", p.Rank, p.Rep)
				continue
			}
			if len(tr.Epochs) < 2 {
				rep.add(Warning, subject, "rank %d rep %d profiled a single epoch: no warm-up epoch to discard (first-epoch initialization will distort the medians)", p.Rank, p.Rep)
			}
			train := tr.StepsOfPhase(trace.PhaseTrain)
			if len(train) == 0 {
				rep.add(Error, subject, "rank %d rep %d has no training steps", p.Rank, p.Rep)
				continue
			}
			stepCounts[len(train)] = true
			if len(tr.Events) == 0 {
				rep.add(Error, subject, "rank %d rep %d has step marks but no events", p.Rank, p.Rep)
			}
		}
		if len(stepCounts) > 1 {
			var counts []int
			for c := range stepCounts {
				counts = append(counts, c)
			}
			sort.Ints(counts)
			rep.add(Warning, subject, "training-step counts differ across ranks/repetitions: %v — medians will mix different step sets", counts)
		}

		// Aggregate to assess variation and kernel coverage.
		agg, err := aggregate.Aggregate(group, aggregate.DefaultOptions())
		if err != nil {
			rep.add(Error, subject, "aggregation failed: %v", err)
			continue
		}
		for _, path := range sortedPaths(agg.Kernels) {
			k := agg.Kernels[path]
			kernelConfigs[path]++
			perRep := k.PerRep[measurement.MetricTime]
			vals := make([]float64, 0, len(perRep))
			for _, sv := range perRep {
				vals = append(vals, sv.Train+sv.Validation)
			}
			if cv, ok := mathutil.CoefficientOfVariation(vals); ok && cv > opts.variationWarn() {
				rep.add(Warning, subject,
					"kernel %s varies %.0f%% run-to-run (threshold %.0f%%): its model will carry that uncertainty",
					path, cv*100, opts.variationWarn()*100)
			}
		}
		if k := len(agg.Kernels); k > 0 {
			rep.add(Info, subject, "%d kernels, %d repetition(s), %d training steps profiled",
				k, agg.Reps, agg.TrainSteps)
		}
	}

	// Kernel coverage across configurations (Fig. 2 step (4)).
	var thin []string
	for path, n := range kernelConfigs {
		if n < opts.minConfigs() && len(keys) >= opts.minConfigs() {
			thin = append(thin, path)
		}
	}
	sort.Strings(thin)
	for _, path := range thin {
		rep.add(Info, path, "observed in only %d of %d configurations: will be filtered before modeling",
			kernelConfigs[path], len(keys))
	}
	return rep
}

// sortedPaths returns m's keys in sorted order, so findings are emitted
// deterministically regardless of map iteration order.
func sortedPaths[V any](m map[string]V) []string {
	paths := make([]string, 0, len(m))
	for path := range m {
		paths = append(paths, path)
	}
	sort.Strings(paths)
	return paths
}

// Render formats the report for terminal output.
func (r *Report) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "diagnosis: %d profiles, %d configurations — %d error(s), %d warning(s)\n",
		r.Profiles, r.Configurations, len(r.Errors()), len(r.Warnings()))
	for _, f := range r.Findings {
		if f.Severity == Info {
			continue
		}
		fmt.Fprintf(&b, "  [%s] %s: %s\n", f.Severity, f.Subject, f.Message)
	}
	if r.OK() {
		b.WriteString("  modeling can proceed\n")
	} else {
		b.WriteString("  modeling blocked — fix the errors above\n")
	}
	return b.String()
}
