package diagnose

import (
	"math"
	"sort"
	"strings"
	"testing"

	"extradeep/internal/mathutil"
	"extradeep/internal/profile"
	"extradeep/internal/simulator/engine"
	"extradeep/internal/simulator/hardware"
	"extradeep/internal/simulator/parallel"
	"extradeep/internal/trace"
)

// healthyProfiles produces a clean 5-configuration campaign.
func healthyProfiles(t *testing.T) []*profile.Profile {
	t.Helper()
	b, err := engine.ByName("imdb")
	if err != nil {
		t.Fatal(err)
	}
	var out []*profile.Profile
	for _, ranks := range []int{2, 4, 6, 8, 10} {
		cfg := engine.RunConfig{
			System: hardware.DEEP(), Strategy: parallel.DataParallel{FusionBuckets: 4},
			Ranks: ranks, WeakScaling: true, Seed: 9, SampleRanks: 2,
		}
		for rep := 1; rep <= 3; rep++ {
			ps, err := engine.Profile(b, cfg, rep, true)
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, ps...)
		}
	}
	return out
}

func TestCheckHealthyCampaign(t *testing.T) {
	rep := Check(healthyProfiles(t), Options{})
	if !rep.OK() {
		t.Fatalf("healthy campaign reported errors: %+v", rep.Errors())
	}
	if rep.Configurations != 5 {
		t.Errorf("configurations = %d, want 5", rep.Configurations)
	}
	if !strings.Contains(rep.Render(), "modeling can proceed") {
		t.Error("render missing proceed line")
	}
}

func TestCheckEmpty(t *testing.T) {
	rep := Check(nil, Options{})
	if rep.OK() {
		t.Error("empty set reported OK")
	}
}

func TestCheckTooFewConfigurations(t *testing.T) {
	ps := healthyProfiles(t)
	// Keep only the 2- and 4-rank configurations.
	var subset []*profile.Profile
	for _, p := range ps {
		if p.Config[0] <= 4 {
			subset = append(subset, p)
		}
	}
	rep := Check(subset, Options{})
	if rep.OK() {
		t.Error("2-configuration set reported OK")
	}
	found := false
	for _, f := range rep.Errors() {
		if strings.Contains(f.Message, "needs at least 5") {
			found = true
		}
	}
	if !found {
		t.Errorf("missing min-configuration error: %+v", rep.Errors())
	}
}

func TestCheckMixedApplications(t *testing.T) {
	ps := healthyProfiles(t)
	ps[0].App = "other"
	rep := Check(ps, Options{})
	if rep.OK() {
		t.Error("mixed applications reported OK")
	}
}

func TestCheckMissingRank(t *testing.T) {
	ps := healthyProfiles(t)
	// Drop rank 0 of one repetition of one configuration.
	var subset []*profile.Profile
	for _, p := range ps {
		if mathutil.Close(p.Config[0], 4) && p.Rep == 2 && p.Rank == 0 {
			continue
		}
		subset = append(subset, p)
	}
	rep := Check(subset, Options{})
	found := false
	for _, f := range rep.Warnings() {
		if strings.Contains(f.Message, "missing rank 0") {
			found = true
		}
	}
	if !found {
		t.Errorf("missing-rank warning absent: %+v", rep.Warnings())
	}
}

// TestCheckDeterministic pins the finding order of Check: per-repetition
// and per-kernel findings are emitted in sorted order, not Go's randomized
// map order, so the rendered diagnosis is byte-identical across runs.
func TestCheckDeterministic(t *testing.T) {
	ps := healthyProfiles(t)
	// Drop one rank from each of the three repetitions of one
	// configuration, so several repetition-keyed findings exist whose
	// relative order a map range would randomize.
	var subset []*profile.Profile
	for _, p := range ps {
		if mathutil.Close(p.Config[0], 4) && p.Rank == p.Rep-1 {
			continue
		}
		subset = append(subset, p)
	}
	want := Check(subset, Options{}).Render()
	for i := 0; i < 5; i++ {
		if got := Check(subset, Options{}).Render(); got != want {
			t.Fatalf("Check rendering differs between runs:\n--- first\n%s\n--- run %d\n%s", want, i+1, got)
		}
	}
	// The repetition findings must appear in ascending repetition order.
	var reps []string
	for _, f := range Check(subset, Options{}).Warnings() {
		if strings.Contains(f.Message, "is missing rank") {
			reps = append(reps, f.Message[:strings.Index(f.Message, " is missing")])
		}
	}
	if len(reps) < 2 {
		t.Fatalf("expected several missing-rank warnings, got %v", reps)
	}
	if !sort.StringsAreSorted(reps) {
		t.Errorf("missing-rank warnings not in repetition order: %v", reps)
	}
}

func TestCheckSingleRepetitionWarns(t *testing.T) {
	ps := healthyProfiles(t)
	var subset []*profile.Profile
	for _, p := range ps {
		if p.Rep == 1 {
			subset = append(subset, p)
		}
	}
	rep := Check(subset, Options{})
	found := false
	for _, f := range rep.Warnings() {
		if strings.Contains(f.Message, "single repetition") {
			found = true
		}
	}
	if !found {
		t.Error("single-repetition warning absent")
	}
}

func TestCheckNoEpochMarks(t *testing.T) {
	ps := healthyProfiles(t)
	ps[0].Trace.Epochs = nil
	ps[0].Trace.Steps = nil
	rep := Check(ps, Options{})
	if rep.OK() {
		t.Error("missing instrumentation reported OK")
	}
	found := false
	for _, f := range rep.Errors() {
		if strings.Contains(f.Message, "no epoch marks") {
			found = true
		}
	}
	if !found {
		t.Errorf("epoch-mark error absent: %+v", rep.Errors())
	}
}

func TestCheckSingleEpochWarns(t *testing.T) {
	ps := healthyProfiles(t)
	// Rebuild one profile with a single epoch.
	b, _ := engine.ByName("imdb")
	cfg := engine.RunConfig{
		System: hardware.DEEP(), Strategy: parallel.DataParallel{FusionBuckets: 4},
		Ranks: 2, WeakScaling: true, Seed: 9, SampleRanks: 1, ProfileEpochs: 1,
	}
	single, err := engine.Profile(b, cfg, 9, true)
	if err != nil {
		t.Fatal(err)
	}
	ps = append(ps, single...)
	rep := Check(ps, Options{})
	found := false
	for _, f := range rep.Warnings() {
		if strings.Contains(f.Message, "single epoch") {
			found = true
		}
	}
	if !found {
		t.Error("single-epoch warning absent")
	}
}

func TestCheckDuplicateProfileWarns(t *testing.T) {
	ps := healthyProfiles(t)
	ps = append(ps, ps[0])
	rep := Check(ps, Options{})
	found := false
	for _, f := range rep.Warnings() {
		if strings.Contains(f.Message, "duplicate profile") {
			found = true
		}
	}
	if !found {
		t.Error("duplicate warning absent")
	}
}

func TestCheckInconsistentStepCounts(t *testing.T) {
	ps := healthyProfiles(t)
	// Give one rank an extra fake step inside its last epoch.
	tr := &ps[0].Trace
	last := tr.Steps[len(tr.Steps)-1]
	extra := trace.StepSpan{
		Epoch: last.Epoch, Index: last.Index + 1, Phase: trace.PhaseTrain,
		Start: last.End + 1e-6, End: last.End + 2e-6,
	}
	// Extend the epoch span to contain it.
	for i := range tr.Epochs {
		if tr.Epochs[i].Index == last.Epoch && tr.Epochs[i].End < extra.End {
			tr.Epochs[i].End = extra.End + 1e-6
		}
	}
	tr.Steps = append(tr.Steps, extra)
	tr.Sort()
	rep := Check(ps, Options{})
	found := false
	for _, f := range rep.Warnings() {
		if strings.Contains(f.Message, "step counts differ") {
			found = true
		}
	}
	if !found {
		t.Errorf("step-count warning absent: %+v", rep.Warnings())
	}
}

func TestCheckCorruptEventMetrics(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*trace.Event)
	}{
		{"nan-duration", func(e *trace.Event) { e.Duration = math.NaN() }},
		{"inf-start", func(e *trace.Event) { e.Start = math.Inf(1) }},
		{"nan-bytes", func(e *trace.Event) { e.Bytes = math.NaN() }},
		{"negative-duration", func(e *trace.Event) { e.Duration = -0.25 }},
		{"negative-bytes", func(e *trace.Event) { e.Bytes = -4096 }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			ps := healthyProfiles(t)
			c.mutate(&ps[0].Trace.Events[0])
			rep := Check(ps, Options{})
			if rep.OK() {
				t.Fatal("semantically corrupt profile reported OK")
			}
			found := false
			for _, f := range rep.Errors() {
				if strings.Contains(f.Message, "corrupt metric values") {
					found = true
				}
			}
			if !found {
				t.Errorf("corrupt-metric error absent: %+v", rep.Errors())
			}
		})
	}
}

func TestCheckCorruptMetricsCountsEvents(t *testing.T) {
	ps := healthyProfiles(t)
	ps[0].Trace.Events[0].Duration = math.NaN()
	ps[0].Trace.Events[1].Bytes = math.Inf(-1)
	rep := Check(ps, Options{})
	found := false
	for _, f := range rep.Errors() {
		if strings.Contains(f.Message, "2 event(s) with corrupt metric values") {
			found = true
		}
	}
	if !found {
		t.Errorf("corrupt-metric count wrong: %+v", rep.Errors())
	}
}

func TestSeverityString(t *testing.T) {
	if Info.String() != "info" || Warning.String() != "warning" || Error.String() != "error" {
		t.Error("severity names wrong")
	}
	if Severity(9).String() != "unknown" {
		t.Error("unknown severity name wrong")
	}
}
