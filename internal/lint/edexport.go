package lint

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"go/constant"
	"go/token"
	"go/types"
	"math/big"
	"runtime"
	"sort"
)

// This file is edlint's export-data codec ("edexport"): a gob-based
// serializer for a closed set of type-checked packages, built so the load
// cache (cache.go) can persist the standard-library universe between runs
// instead of re-type-checking ~140 stdlib packages from source on every
// invocation — by far the dominant cost of a cold edlint pass.
//
// The encoding is a flat, index-addressed graph: one package table, one
// type table, objects per package referencing types by index. Cycles
// (self-referential named types, recursive constraints) are handled the
// way every Go export format handles them: composite entries for Named
// and TypeParam types are materialized as placeholders before their
// components are resolved. Generics are fully supported — type
// parameters, constraints with unions, generic signatures, and
// instantiated named types (rebuilt via types.Instantiate) — because the
// modern stdlib closure includes iter, slices, maps and cmp.
//
// Two deliberate simplifications, both invisible to the analyzers:
// positions are dropped (decoded objects sit at token.NoPos; diagnostics
// only ever position module AST nodes), and alias type names are decoded
// in the legacy representation (a TypeName whose type is the aliased
// type), which types.Identical treats identically.
//
// The codec is all-or-nothing by design: a bundle holds the full
// transitive closure of the packages it was saved with, so every
// cross-package type reference resolves inside the bundle and no mixed
// universe (half cached, half freshly source-checked) can arise. Mixing
// would be unsound: go/types compares named types by object identity, so
// two copies of "fmt" would make fmt.Stringer unequal to itself.

// expFormat versions the encoding; bump on any incompatible change.
const expFormat = 1

// Type table entry kinds.
const (
	kBasic = iota + 1
	kUniverse
	kNamed
	kInstance
	kTypeParam
	kPointer
	kSlice
	kArray
	kMap
	kChan
	kStruct
	kInterface
	kSignature
	kUnion
)

// expBundle is the on-disk shape of one package-set export. All type
// references are 1-based indices into Types (0 = nil); package
// references are 0-based indices into Pkgs.
type expBundle struct {
	Format   int
	Go       string // runtime.Version() of the writer
	OS, Arch string
	Pkgs     []expPackage
	Types    []expType
}

// expPackage is one package: identity, imports, and scope objects.
type expPackage struct {
	Path    string
	Name    string
	Imports []int
	Objects []expObject
}

// expObject is one package-scope object.
type expObject struct {
	Kind byte // 'T' type name, 'A' alias, 'F' func, 'V' var, 'C' const
	Name string
	Type int // type reference (1-based)
	Val  expValue
}

// expType is one type-table entry; which fields are meaningful depends on
// Kind. gob omits zero-valued fields, so the union stays compact.
type expType struct {
	Kind  int
	Basic int    // kBasic: types.BasicKind
	Name  string // kNamed/kTypeParam: object name; kUniverse: universe name
	Pkg   int    // kNamed/kTypeParam: declaring package

	Elem int   // pointer/slice/array/chan elem; named underlying
	Key  int   // map key
	Len  int64 // array length
	Dir  int   // chan direction

	Fields  []expField  // struct fields
	Params  []expField  // signature parameters
	Results []expField  // signature results
	Methods []expMethod // named/interface methods
	Embeds  []int       // interface embeddeds
	Terms   []expTerm   // union terms

	Variadic   bool
	RecvType   int   // signature receiver type (1-based, 0 = none)
	TParams    []int // named/signature type parameters
	RTParams   []int // signature receiver type parameters
	Constraint int   // type parameter constraint
	Origin     int   // instance origin
	TArgs      []int // instance type arguments
}

// expField is a struct field, parameter, or result.
type expField struct {
	Name     string
	Pkg      int
	Type     int
	Embedded bool
	Tag      string
}

// expMethod is a named-type or interface method.
type expMethod struct {
	Name string
	Pkg  int
	Sig  int
}

// expTerm is one union term.
type expTerm struct {
	Tilde bool
	Type  int
}

// expValue is a constant value. Ints and the rational parts of floats and
// complex numbers travel as exact decimal strings, so no precision is
// lost round-tripping untyped constants like math.Pi.
type expValue struct {
	Kind byte // 'b' bool, 's' string, 'i' int, 'f' float, 'c' complex, 'u' unknown
	B    bool
	S    string
	Num  string // int/float exact string ("314159/100000" form for floats)
	INum string // imaginary part of a complex value
}

// expEncoder assigns stable indices while walking the type graph.
type expEncoder struct {
	pkgIndex map[*types.Package]int
	pkgs     []*types.Package
	typIndex map[types.Type]int
	typs     []expType
}

// exportPackages encodes the transitive import closure of pkgs.
func exportPackages(pkgs []*types.Package) ([]byte, error) {
	closure := importClosure(pkgs)
	e := &expEncoder{
		pkgIndex: make(map[*types.Package]int),
		typIndex: make(map[types.Type]int),
	}
	// Register the closure first so package indices are assigned in
	// deterministic (path) order regardless of type-walk order.
	for _, p := range closure {
		e.pkg(p)
	}
	b := &expBundle{
		Format: expFormat,
		Go:     runtime.Version(),
		OS:     runtime.GOOS,
		Arch:   runtime.GOARCH,
	}
	for _, p := range closure {
		b.Pkgs = append(b.Pkgs, e.encodePackage(p))
	}
	b.Types = e.typs
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(b); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// importClosure returns the transitive import closure in path order.
func importClosure(pkgs []*types.Package) []*types.Package {
	seen := make(map[*types.Package]bool)
	var walk func(p *types.Package)
	var all []*types.Package
	walk = func(p *types.Package) {
		if p == nil || seen[p] {
			return
		}
		seen[p] = true
		all = append(all, p)
		for _, imp := range p.Imports() {
			walk(imp)
		}
	}
	for _, p := range pkgs {
		walk(p)
	}
	sort.Slice(all, func(i, j int) bool { return all[i].Path() < all[j].Path() })
	return all
}

// pkg interns a package and returns its index.
func (e *expEncoder) pkg(p *types.Package) int {
	if i, ok := e.pkgIndex[p]; ok {
		return i
	}
	i := len(e.pkgs)
	e.pkgIndex[p] = i
	e.pkgs = append(e.pkgs, p)
	return i
}

// encodePackage serializes one package's identity, imports and scope.
func (e *expEncoder) encodePackage(p *types.Package) expPackage {
	xp := expPackage{Path: p.Path(), Name: p.Name()}
	for _, imp := range p.Imports() {
		xp.Imports = append(xp.Imports, e.pkg(imp))
	}
	if p == types.Unsafe {
		return xp // unsafe's objects are compiler intrinsics, never encoded
	}
	scope := p.Scope()
	for _, name := range scope.Names() { // Names() is sorted
		obj := scope.Lookup(name)
		xo := expObject{Name: name}
		switch obj := obj.(type) {
		case *types.TypeName:
			if obj.IsAlias() {
				xo.Kind = 'A'
				xo.Type = e.typ(types.Unalias(obj.Type()))
			} else {
				xo.Kind = 'T'
				xo.Type = e.typ(obj.Type())
			}
		case *types.Func:
			xo.Kind = 'F'
			xo.Type = e.typ(obj.Type())
		case *types.Var:
			xo.Kind = 'V'
			xo.Type = e.typ(obj.Type())
		case *types.Const:
			xo.Kind = 'C'
			xo.Type = e.typ(obj.Type())
			xo.Val = encodeValue(obj.Val())
		default:
			continue // builtins and labels never sit in package scopes
		}
		xp.Objects = append(xp.Objects, xo)
	}
	return xp
}

// typ interns a type and returns its 1-based reference (0 for nil).
// Placeholder-before-recursion keeps cyclic graphs terminating: the index
// is published in typIndex before any component is resolved.
func (e *expEncoder) typ(t types.Type) int {
	if t == nil {
		return 0
	}
	if a, ok := t.(*types.Alias); ok {
		return e.typ(types.Unalias(a))
	}
	if i, ok := e.typIndex[t]; ok {
		return i + 1
	}
	i := len(e.typs)
	e.typIndex[t] = i
	e.typs = append(e.typs, expType{})

	var x expType
	switch t := t.(type) {
	case *types.Basic:
		x = expType{Kind: kBasic, Basic: int(t.Kind())}
	case *types.Named:
		switch {
		case t.Obj().Pkg() == nil:
			x = expType{Kind: kUniverse, Name: t.Obj().Name()}
		case t.TypeArgs() != nil && t.TypeArgs().Len() > 0:
			x.Kind = kInstance
			x.Origin = e.typ(t.Origin())
			for j := 0; j < t.TypeArgs().Len(); j++ {
				x.TArgs = append(x.TArgs, e.typ(t.TypeArgs().At(j)))
			}
		default:
			x.Kind = kNamed
			x.Pkg = e.pkg(t.Obj().Pkg())
			x.Name = t.Obj().Name()
			for j := 0; j < t.TypeParams().Len(); j++ {
				x.TParams = append(x.TParams, e.typ(t.TypeParams().At(j)))
			}
			x.Elem = e.typ(t.Underlying())
			for j := 0; j < t.NumMethods(); j++ {
				m := t.Method(j)
				x.Methods = append(x.Methods, expMethod{Name: m.Name(), Pkg: e.pkg(m.Pkg()), Sig: e.typ(m.Type())})
			}
		}
	case *types.TypeParam:
		x.Kind = kTypeParam
		x.Name = t.Obj().Name()
		x.Pkg = e.pkg(t.Obj().Pkg())
		x.Constraint = e.typ(t.Constraint())
	case *types.Pointer:
		x = expType{Kind: kPointer, Elem: e.typ(t.Elem())}
	case *types.Slice:
		x = expType{Kind: kSlice, Elem: e.typ(t.Elem())}
	case *types.Array:
		x = expType{Kind: kArray, Elem: e.typ(t.Elem()), Len: t.Len()}
	case *types.Map:
		x = expType{Kind: kMap, Key: e.typ(t.Key()), Elem: e.typ(t.Elem())}
	case *types.Chan:
		x = expType{Kind: kChan, Dir: int(t.Dir()), Elem: e.typ(t.Elem())}
	case *types.Struct:
		x.Kind = kStruct
		for j := 0; j < t.NumFields(); j++ {
			f := t.Field(j)
			x.Fields = append(x.Fields, expField{
				Name: f.Name(), Pkg: e.pkg(f.Pkg()), Type: e.typ(f.Type()),
				Embedded: f.Embedded(), Tag: t.Tag(j),
			})
		}
	case *types.Interface:
		x.Kind = kInterface
		for j := 0; j < t.NumExplicitMethods(); j++ {
			m := t.ExplicitMethod(j)
			x.Methods = append(x.Methods, expMethod{Name: m.Name(), Pkg: e.pkg(m.Pkg()), Sig: e.sigBare(m.Type().(*types.Signature))})
		}
		for j := 0; j < t.NumEmbeddeds(); j++ {
			x.Embeds = append(x.Embeds, e.typ(t.EmbeddedType(j)))
		}
	case *types.Signature:
		x.Kind = kSignature
		x.Variadic = t.Variadic()
		if r := t.Recv(); r != nil {
			x.RecvType = e.typ(r.Type())
		}
		for j := 0; j < t.RecvTypeParams().Len(); j++ {
			x.RTParams = append(x.RTParams, e.typ(t.RecvTypeParams().At(j)))
		}
		for j := 0; j < t.TypeParams().Len(); j++ {
			x.TParams = append(x.TParams, e.typ(t.TypeParams().At(j)))
		}
		x.Params = e.tuple(t.Params())
		x.Results = e.tuple(t.Results())
	case *types.Union:
		x.Kind = kUnion
		for j := 0; j < t.Len(); j++ {
			term := t.Term(j)
			x.Terms = append(x.Terms, expTerm{Tilde: term.Tilde(), Type: e.typ(term.Type())})
		}
	case *types.Tuple:
		// Tuples only appear inside signatures, which encode them inline.
		x.Kind = kStruct
	default:
		x.Kind = kBasic
		x.Basic = int(types.Invalid)
	}
	e.typs[i] = x
	return i + 1
}

// sigBare encodes a signature with its receiver stripped. Interface
// method receivers point back at the — possibly anonymous — interface,
// and an anonymous interface has no placeholder to break that cycle with
// at decode time; the decoder reinstalls receivers via NewInterfaceType.
func (e *expEncoder) sigBare(sig *types.Signature) int {
	if i, ok := e.typIndex[sig]; ok {
		return i + 1
	}
	i := len(e.typs)
	e.typIndex[sig] = i
	e.typs = append(e.typs, expType{})
	x := expType{
		Kind:     kSignature,
		Variadic: sig.Variadic(),
		Params:   e.tuple(sig.Params()),
		Results:  e.tuple(sig.Results()),
	}
	e.typs[i] = x
	return i + 1
}

// tuple flattens a parameter/result tuple.
func (e *expEncoder) tuple(t *types.Tuple) []expField {
	var fs []expField
	for j := 0; j < t.Len(); j++ {
		v := t.At(j)
		fs = append(fs, expField{Name: v.Name(), Pkg: e.pkg(v.Pkg()), Type: e.typ(v.Type())})
	}
	return fs
}

// encodeValue serializes one constant value exactly.
func encodeValue(v constant.Value) expValue {
	if v == nil {
		return expValue{Kind: 'u'}
	}
	switch v.Kind() {
	case constant.Bool:
		return expValue{Kind: 'b', B: constant.BoolVal(v)}
	case constant.String:
		return expValue{Kind: 's', S: constant.StringVal(v)}
	case constant.Int:
		return expValue{Kind: 'i', Num: v.ExactString()}
	case constant.Float:
		return expValue{Kind: 'f', Num: v.ExactString()}
	case constant.Complex:
		return expValue{
			Kind: 'c',
			Num:  constant.Real(v).ExactString(),
			INum: constant.Imag(v).ExactString(),
		}
	}
	return expValue{Kind: 'u'}
}

// expDecoder rebuilds the package set from a bundle.
type expDecoder struct {
	b    *expBundle
	pkgs []*types.Package
	typs []types.Type
	ctx  *types.Context
}

// importPackages decodes a bundle into a path-keyed package map. A
// corrupt or incompatible bundle returns an error rather than a partial
// universe; panics from malformed data are converted to errors so a bad
// cache file degrades to a miss, never a crash.
func importPackages(data []byte) (m map[string]*types.Package, err error) {
	defer func() {
		if r := recover(); r != nil {
			m, err = nil, fmt.Errorf("edexport: corrupt bundle: %v", r)
		}
	}()
	var b expBundle
	if derr := gob.NewDecoder(bytes.NewReader(data)).Decode(&b); derr != nil {
		return nil, derr
	}
	if b.Format != expFormat {
		return nil, fmt.Errorf("edexport: format %d, want %d", b.Format, expFormat)
	}
	if b.Go != runtime.Version() || b.OS != runtime.GOOS || b.Arch != runtime.GOARCH {
		return nil, fmt.Errorf("edexport: bundle for %s/%s/%s, running %s/%s/%s",
			b.Go, b.OS, b.Arch, runtime.Version(), runtime.GOOS, runtime.GOARCH)
	}
	d := &expDecoder{
		b:    &b,
		typs: make([]types.Type, len(b.Types)),
		ctx:  types.NewContext(),
	}
	for _, xp := range b.Pkgs {
		if xp.Path == "unsafe" {
			d.pkgs = append(d.pkgs, types.Unsafe)
			continue
		}
		d.pkgs = append(d.pkgs, types.NewPackage(xp.Path, xp.Name))
	}
	m = make(map[string]*types.Package, len(b.Pkgs))
	for pi, xp := range b.Pkgs {
		pkg := d.pkgs[pi]
		m[xp.Path] = pkg
		if pkg == types.Unsafe {
			continue
		}
		scope := pkg.Scope()
		for _, o := range xp.Objects {
			switch o.Kind {
			case 'T':
				named, ok := d.typ(o.Type).(*types.Named)
				if !ok {
					return nil, fmt.Errorf("edexport: type name %s.%s is not a named type", xp.Path, o.Name)
				}
				scope.Insert(named.Obj())
			case 'A':
				scope.Insert(types.NewTypeName(token.NoPos, pkg, o.Name, d.typ(o.Type)))
			case 'F':
				scope.Insert(types.NewFunc(token.NoPos, pkg, o.Name, d.typ(o.Type).(*types.Signature)))
			case 'V':
				scope.Insert(types.NewVar(token.NoPos, pkg, o.Name, d.typ(o.Type)))
			case 'C':
				val, verr := decodeValue(o.Val)
				if verr != nil {
					return nil, verr
				}
				scope.Insert(types.NewConst(token.NoPos, pkg, o.Name, d.typ(o.Type), val))
			}
		}
	}
	for pi, xp := range b.Pkgs {
		pkg := d.pkgs[pi]
		if pkg == types.Unsafe {
			continue
		}
		imps := make([]*types.Package, 0, len(xp.Imports))
		for _, ii := range xp.Imports {
			imps = append(imps, d.pkgs[ii])
		}
		pkg.SetImports(imps)
		pkg.MarkComplete()
	}
	return m, nil
}

// pkg resolves a package index.
func (d *expDecoder) pkg(i int) *types.Package {
	p := d.pkgs[i]
	if p == types.Unsafe {
		return types.Unsafe
	}
	return p
}

// typ resolves a 1-based type reference, materializing on first use.
// Named and TypeParam entries publish their placeholder before resolving
// components, mirroring the encoder's cycle handling.
func (d *expDecoder) typ(ref int) types.Type {
	if ref == 0 {
		return nil
	}
	i := ref - 1
	if t := d.typs[i]; t != nil {
		return t
	}
	x := d.b.Types[i]
	switch x.Kind {
	case kBasic:
		t := types.Typ[types.BasicKind(x.Basic)]
		d.typs[i] = t
		return t
	case kUniverse:
		obj := types.Universe.Lookup(x.Name)
		if obj == nil {
			//edlint:ignore libpanic importPackages recovers decoder panics into a cache-miss error; threading an error through the recursive resolver would bury the hot path in plumbing
			panic(fmt.Sprintf("unknown universe type %q", x.Name))
		}
		t := obj.Type()
		d.typs[i] = t
		return t
	case kNamed:
		obj := types.NewTypeName(token.NoPos, d.pkg(x.Pkg), x.Name, nil)
		named := types.NewNamed(obj, nil, nil)
		d.typs[i] = named
		if len(x.TParams) > 0 {
			// Type parameters must be bound before the underlying type or
			// any instantiation references them.
			tps := make([]*types.TypeParam, len(x.TParams))
			for j, r := range x.TParams {
				tps[j] = d.typ(r).(*types.TypeParam)
			}
			named.SetTypeParams(tps)
		}
		named.SetUnderlying(d.typ(x.Elem))
		for _, m := range x.Methods {
			named.AddMethod(types.NewFunc(token.NoPos, d.pkg(m.Pkg), m.Name, d.typ(m.Sig).(*types.Signature)))
		}
		return named
	case kInstance:
		origin := d.typ(x.Origin)
		args := make([]types.Type, len(x.TArgs))
		for j, r := range x.TArgs {
			args[j] = d.typ(r)
		}
		t, err := types.Instantiate(d.ctx, origin, args, false)
		if err != nil {
			//edlint:ignore libpanic importPackages recovers decoder panics into a cache-miss error; threading an error through the recursive resolver would bury the hot path in plumbing
			panic(fmt.Sprintf("instantiating %s: %v", origin, err))
		}
		d.typs[i] = t
		return t
	case kTypeParam:
		tn := types.NewTypeName(token.NoPos, d.pkg(x.Pkg), x.Name, nil)
		tp := types.NewTypeParam(tn, nil)
		d.typs[i] = tp
		tp.SetConstraint(d.typ(x.Constraint))
		return tp
	case kPointer:
		t := types.NewPointer(d.typ(x.Elem))
		d.typs[i] = t
		return t
	case kSlice:
		t := types.NewSlice(d.typ(x.Elem))
		d.typs[i] = t
		return t
	case kArray:
		t := types.NewArray(d.typ(x.Elem), x.Len)
		d.typs[i] = t
		return t
	case kMap:
		t := types.NewMap(d.typ(x.Key), d.typ(x.Elem))
		d.typs[i] = t
		return t
	case kChan:
		t := types.NewChan(types.ChanDir(x.Dir), d.typ(x.Elem))
		d.typs[i] = t
		return t
	case kStruct:
		fields := make([]*types.Var, len(x.Fields))
		tags := make([]string, len(x.Fields))
		for j, f := range x.Fields {
			fields[j] = types.NewField(token.NoPos, d.pkg(f.Pkg), f.Name, d.typ(f.Type), f.Embedded)
			tags[j] = f.Tag
		}
		t := types.NewStruct(fields, tags)
		d.typs[i] = t
		return t
	case kInterface:
		methods := make([]*types.Func, len(x.Methods))
		for j, m := range x.Methods {
			// Interface method signatures are rebuilt receiver-less:
			// NewInterfaceType installs the interface as the receiver.
			sig := d.typ(m.Sig).(*types.Signature)
			bare := types.NewSignatureType(nil, nil, nil, sig.Params(), sig.Results(), sig.Variadic())
			methods[j] = types.NewFunc(token.NoPos, d.pkg(m.Pkg), m.Name, bare)
		}
		embeds := make([]types.Type, len(x.Embeds))
		for j, r := range x.Embeds {
			embeds[j] = d.typ(r)
		}
		t := types.NewInterfaceType(methods, embeds)
		t.Complete()
		d.typs[i] = t
		return t
	case kSignature:
		var recv *types.Var
		if x.RecvType != 0 {
			recv = types.NewVar(token.NoPos, nil, "", d.typ(x.RecvType))
		}
		rtps := make([]*types.TypeParam, len(x.RTParams))
		for j, r := range x.RTParams {
			rtps[j] = d.typ(r).(*types.TypeParam)
		}
		tps := make([]*types.TypeParam, len(x.TParams))
		for j, r := range x.TParams {
			tps[j] = d.typ(r).(*types.TypeParam)
		}
		t := types.NewSignatureType(recv, rtps, tps, d.tuple(x.Params), d.tuple(x.Results), x.Variadic)
		d.typs[i] = t
		return t
	case kUnion:
		terms := make([]*types.Term, len(x.Terms))
		for j, tm := range x.Terms {
			terms[j] = types.NewTerm(tm.Tilde, d.typ(tm.Type))
		}
		t := types.NewUnion(terms)
		d.typs[i] = t
		return t
	}
	//edlint:ignore libpanic importPackages recovers decoder panics into a cache-miss error; threading an error through the recursive resolver would bury the hot path in plumbing
	panic(fmt.Sprintf("unknown type kind %d", x.Kind))
}

// tuple rebuilds a parameter/result tuple.
func (d *expDecoder) tuple(fs []expField) *types.Tuple {
	vars := make([]*types.Var, len(fs))
	for j, f := range fs {
		vars[j] = types.NewVar(token.NoPos, d.pkg(f.Pkg), f.Name, d.typ(f.Type))
	}
	return types.NewTuple(vars...)
}

// decodeValue rebuilds one constant value from its exact encoding.
func decodeValue(v expValue) (constant.Value, error) {
	rat := func(s string) (constant.Value, error) {
		r, ok := new(big.Rat).SetString(s)
		if !ok {
			return nil, fmt.Errorf("edexport: bad rational %q", s)
		}
		return constant.Make(r), nil
	}
	switch v.Kind {
	case 'b':
		return constant.MakeBool(v.B), nil
	case 's':
		return constant.MakeString(v.S), nil
	case 'i':
		n, ok := new(big.Int).SetString(v.Num, 10)
		if !ok {
			return nil, fmt.Errorf("edexport: bad integer %q", v.Num)
		}
		return constant.Make(n), nil
	case 'f':
		return rat(v.Num)
	case 'c':
		re, err := rat(v.Num)
		if err != nil {
			return nil, err
		}
		im, err := rat(v.INum)
		if err != nil {
			return nil, err
		}
		return constant.BinaryOp(re, token.ADD, constant.MakeImag(im)), nil
	}
	return constant.MakeUnknown(), nil
}
