package lint

import "testing"

// TestSelfCheck is the tier-1 enforcement point: it loads the surrounding
// module and runs the full default analyzer suite over every package,
// including tests. Any finding fails `go test ./...`, so the repository
// cannot regress below a clean `go run ./cmd/edlint ./...`.
func TestSelfCheck(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checking the whole module is not short")
	}
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatalf("locating module root: %v", err)
	}
	mod, err := LoadModule(root)
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	diags := Run(mod, DefaultAnalyzers(), nil)
	for _, d := range diags {
		t.Errorf("%s", d)
	}
	if len(diags) > 0 {
		t.Logf("%d findings; fix them or suppress with //edlint:ignore <analyzer> <reason>", len(diags))
	}
}
