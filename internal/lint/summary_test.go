package lint

import (
	"os"
	"path/filepath"
	"sort"
	"testing"
)

// writeTestModule materializes a throwaway module from a file map and
// loads it; the interproc goldens pin the analyzer-facing behaviour,
// these tests pin the summary table itself.
func writeTestModule(t *testing.T, files map[string]string) *Module {
	t.Helper()
	root := t.TempDir()
	for _, rel := range sortedKeys(files) {
		p := filepath.Join(root, rel)
		if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, []byte(files[rel]), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	mod, err := LoadModule(root)
	if err != nil {
		t.Fatalf("loading test module: %v", err)
	}
	return mod
}

func sortedKeys(m map[string]string) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// TestSummarizeRecursiveFixpoint: a clock read inside a mutual-recursion
// cycle must reach every member of the SCC — the fixpoint, not a single
// bottom-up pass, is what makes Pong (which only calls Ping) tainted.
func TestSummarizeRecursiveFixpoint(t *testing.T) {
	mod := writeTestModule(t, map[string]string{
		"go.mod": "module fix\n\ngo 1.24\n",
		"a/a.go": `package a

import "time"

func now() string { return time.Now().String() }

func Ping(n int) string {
	if n == 0 {
		return now()
	}
	return Pong(n - 1)
}

func Pong(n int) string { return Ping(n - 1) }
`,
	})
	sums := Summarize(mod)
	for _, name := range []string{"now", "Ping", "Pong"} {
		s := sums.funcs["fix/a."+name]
		if s == nil {
			t.Fatalf("no summary for fix/a.%s (%d summaries total)", name, sums.Len())
		}
		if s.ReadsClock == nil {
			t.Errorf("fix/a.%s: ReadsClock is nil; the SCC fixpoint must carry the clock read around the Ping/Pong cycle", name)
			continue
		}
		if last := s.ReadsClock.Chain[len(s.ReadsClock.Chain)-1]; last != "time.Now" {
			t.Errorf("fix/a.%s: trace ends at %q, want the time.Now root", name, last)
		}
	}
}

// TestSummarizeDiscardsError: the informational DiscardsError bit must
// propagate through a wrapper, and a sanctioned `_ =` discard must not
// set it at all.
func TestSummarizeDiscardsError(t *testing.T) {
	mod := writeTestModule(t, map[string]string{
		"go.mod": "module fix\n\ngo 1.24\n",
		"a/a.go": `package a

import "os"

func drop(p string) {
	os.Chdir(p)
}

func viaDrop(p string) { drop(p) }

func sanctioned(p string) {
	_ = os.Chdir(p)
}
`,
	})
	sums := Summarize(mod)
	for _, name := range []string{"drop", "viaDrop"} {
		s := sums.funcs["fix/a."+name]
		if s == nil {
			t.Fatalf("no summary for fix/a.%s", name)
		}
		if s.DiscardsError == nil {
			t.Errorf("fix/a.%s: DiscardsError is nil, want the dropped os.Chdir error", name)
		}
	}
	if s := sums.funcs["fix/a.sanctioned"]; s == nil {
		t.Fatal("no summary for fix/a.sanctioned")
	} else if s.DiscardsError != nil {
		t.Errorf("fix/a.sanctioned: DiscardsError = %v, want nil — an explicit `_ =` discard is sanctioned", s.DiscardsError.Chain)
	}
}
