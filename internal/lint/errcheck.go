package lint

import (
	"go/ast"
	"go/types"
)

// ErrCheck ("errcheck-lite") reports statements that call an
// error-returning function and drop the error on the floor. A dropped
// error is how a truncated profile or a failed model export turns into a
// silently wrong experiment.
//
// Deliberate discards stay visible and allowed: `_ = f()` documents the
// decision. A small set of can't-fail or fail-later idioms is also exempt:
//
//   - fmt.Print/Printf/Println (stdout chatter; nothing sensible to do);
//   - fmt.Fprint* to os.Stdout/os.Stderr, *strings.Builder,
//     *bytes.Buffer, hash writers, or *bufio.Writer (the first four
//     cannot fail; bufio errors are sticky and surface at Flush, which IS
//     checked);
//   - method calls on *strings.Builder, *bytes.Buffer and hash.Hash
//     values, whose errors are documented to always be nil — except
//     (*bufio.Writer).Flush, where the buffered errors finally surface;
//   - `defer x.Close()` (best-effort cleanup; write paths must check
//     Close explicitly on the success path instead of deferring it).
var ErrCheck = &Analyzer{
	Name: "errcheck",
	Doc: "reports discarded error results from statement-position calls; " +
		"handle the error or assign it to _ explicitly",
	Run: runErrCheck,
}

func runErrCheck(pass *Pass) {
	check := func(call *ast.CallExpr, deferred bool) {
		if call == nil || !returnsError(pass, call) || exemptCall(pass, call, deferred) {
			return
		}
		pass.Reportf(call.Pos(), "result of %s includes an error that is discarded; handle it or assign to _",
			calleeLabel(call))
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := n.X.(*ast.CallExpr); ok {
					check(call, false)
				}
			case *ast.GoStmt:
				check(n.Call, false)
			case *ast.DeferStmt:
				check(n.Call, true)
			}
			return true
		})
	}
}

// returnsError reports whether the call's results include an error.
func returnsError(pass *Pass, call *ast.CallExpr) bool {
	t := pass.TypeOf(call)
	if t == nil {
		return false
	}
	errType := types.Universe.Lookup("error").Type()
	switch t := t.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if types.Identical(t.At(i).Type(), errType) {
				return true
			}
		}
		return false
	default:
		return types.Identical(t, errType)
	}
}

// exemptCall implements the allowlist documented on ErrCheck.
func exemptCall(pass *Pass, call *ast.CallExpr, deferred bool) bool {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	// Package-level fmt functions.
	if id, ok := unparen(sel.X).(*ast.Ident); ok {
		if pn, ok := pass.Info.Uses[id].(*types.PkgName); ok && pn.Imported().Path() == "fmt" {
			name := sel.Sel.Name
			switch name {
			case "Print", "Printf", "Println":
				return true
			case "Fprint", "Fprintf", "Fprintln":
				return len(call.Args) > 0 && exemptWriter(pass, call.Args[0])
			}
			return false
		}
	}
	// Method calls on never-fail (or fail-at-Flush) receivers.
	if selInfo := pass.Info.Selections[sel]; selInfo != nil && selInfo.Kind() == types.MethodVal {
		recv := selInfo.Recv()
		if isNeverFailWriterType(recv) {
			return true
		}
		if isBufioWriter(recv) && sel.Sel.Name != "Flush" {
			return true
		}
	}
	if deferred && sel.Sel.Name == "Close" {
		return true
	}
	return false
}

// exemptWriter reports whether the expression is a writer whose Write
// cannot meaningfully fail: os.Stdout/os.Stderr, strings.Builder,
// bytes.Buffer, hash writers, or a bufio.Writer (checked at Flush).
func exemptWriter(pass *Pass, e ast.Expr) bool {
	e = unparen(e)
	if sel, ok := e.(*ast.SelectorExpr); ok {
		if id, ok := unparen(sel.X).(*ast.Ident); ok {
			if pn, ok := pass.Info.Uses[id].(*types.PkgName); ok && pn.Imported().Path() == "os" {
				if sel.Sel.Name == "Stdout" || sel.Sel.Name == "Stderr" {
					return true
				}
			}
		}
	}
	t := pass.TypeOf(e)
	return t != nil && (isNeverFailWriterType(t) || isBufioWriter(t))
}

// isNeverFailWriterType matches *strings.Builder, *bytes.Buffer and any
// named type from package hash (hash.Hash implementations document that
// Write never returns an error).
func isNeverFailWriterType(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	pkg, name := named.Obj().Pkg().Path(), named.Obj().Name()
	switch {
	case pkg == "strings" && name == "Builder":
		return true
	case pkg == "bytes" && name == "Buffer":
		return true
	case pkg == "hash" || (len(pkg) > 5 && pkg[:5] == "hash/"):
		return true
	}
	return false
}

// isBufioWriter matches *bufio.Writer.
func isBufioWriter(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Path() == "bufio" && named.Obj().Name() == "Writer"
}

// calleeLabel renders the callee for a diagnostic message.
func calleeLabel(call *ast.CallExpr) string {
	return types.ExprString(call.Fun)
}
