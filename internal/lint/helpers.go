package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// isFloat reports whether t's underlying type is a floating-point kind
// (including untyped float constants).
func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// isNumeric reports whether t's underlying type is any numeric kind.
func isNumeric(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsNumeric != 0
}

// constantValue returns the compile-time constant value of e, if any.
func constantValue(info *types.Info, e ast.Expr) (constant.Value, bool) {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil {
		return nil, false
	}
	return tv.Value, true
}

// isZeroConstant reports whether e is a compile-time constant equal to 0.
func isZeroConstant(info *types.Info, e ast.Expr) bool {
	v, ok := constantValue(info, e)
	if !ok {
		return false
	}
	return v.Kind() != constant.Unknown && constant.Sign(v) == 0 &&
		(v.Kind() == constant.Int || v.Kind() == constant.Float)
}

// unparen strips any number of enclosing parentheses.
func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// usedObjects collects the variable objects referenced anywhere inside e.
func usedObjects(info *types.Info, e ast.Expr) []types.Object {
	var objs []types.Object
	ast.Inspect(e, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if obj := info.Uses[id]; obj != nil {
			if _, isVar := obj.(*types.Var); isVar {
				objs = append(objs, obj)
			}
		}
		return true
	})
	return objs
}

// mentionsObject reports whether any identifier inside e resolves to obj.
func mentionsObject(info *types.Info, e ast.Expr, obj types.Object) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, ok := n.(*ast.Ident); ok && info.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}

// mentionsExprString reports whether e contains a subexpression whose
// types.ExprString rendering equals want (used to match field selectors
// like c.InterBandwidth across occurrences).
func mentionsExprString(e ast.Expr, want string) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		if sub, ok := n.(ast.Expr); ok && types.ExprString(sub) == want {
			found = true
		}
		return !found
	})
	return found
}

// comparisonOps are the binary operators that constitute a value guard.
var comparisonOps = map[token.Token]bool{
	token.EQL: true, token.NEQ: true,
	token.LSS: true, token.GTR: true,
	token.LEQ: true, token.GEQ: true,
}

// hasPriorGuard reports whether fn contains, at a position before `before`,
// a comparison (or switch tag) over an expression satisfying `matches`.
// This is a deliberately coarse stand-in for dominator analysis: it asks
// "did this function compare the value against anything at all before
// using it dangerously?", which in straight-line guard-then-use code —
// the only style this repository permits — coincides with dominance,
// while keeping the analyzer dependency-free and fast. Guards placed
// after the use, or in a different function, do not count.
func hasPriorGuard(fn ast.Node, before token.Pos, matches func(ast.Expr) bool) bool {
	found := false
	ast.Inspect(fn, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.BinaryExpr:
			if n.Pos() < before && comparisonOps[n.Op] && (matches(n.X) || matches(n.Y)) {
				found = true
			}
		case *ast.SwitchStmt:
			if n.Tag != nil && n.Pos() < before && matches(n.Tag) {
				found = true
			}
		}
		return !found
	})
	return found
}

// eachTopFunc invokes fn for every top-level function declaration with a
// body. Nested function literals are deliberately NOT separate units:
// guard-style analyzers walk the whole declaration, so a guard in the
// enclosing function protects a use inside a closure (a closure captures
// the already-validated locals), and each expression is visited exactly
// once.
func eachTopFunc(file *ast.File, fn func(*ast.FuncDecl)) {
	for _, decl := range file.Decls {
		if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
			fn(fd)
		}
	}
}

// paramObjects returns the objects bound to the parameters and receiver of
// the function declarations/literals lexically enclosing pos in file.
func paramObjects(info *types.Info, file *ast.File, pos token.Pos) map[types.Object]bool {
	objs := make(map[types.Object]bool)
	addFields := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			for _, name := range f.Names {
				if obj := info.Defs[name]; obj != nil {
					objs[obj] = true
				}
			}
		}
	}
	ast.Inspect(file, func(n ast.Node) bool {
		if n == nil || pos < n.Pos() || pos >= n.End() {
			return n == file
		}
		switch n := n.(type) {
		case *ast.FuncDecl:
			addFields(n.Recv)
			addFields(n.Type.Params)
		case *ast.FuncLit:
			addFields(n.Type.Params)
		}
		return true
	})
	return objs
}

// isMathCall reports whether call invokes math.<name> and returns its
// arguments when it does.
func isMathCall(info *types.Info, call *ast.CallExpr, names ...string) (string, bool) {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	pkgID, ok := unparen(sel.X).(*ast.Ident)
	if !ok {
		return "", false
	}
	pkgName, ok := info.Uses[pkgID].(*types.PkgName)
	if !ok || pkgName.Imported().Path() != "math" {
		return "", false
	}
	for _, n := range names {
		if sel.Sel.Name == n {
			return n, true
		}
	}
	return "", false
}

// inTestFile reports whether pos lies in a _test.go file.
func inTestFile(fset *token.FileSet, pos token.Pos) bool {
	name := fset.Position(pos).Filename
	return len(name) >= len("_test.go") && name[len(name)-len("_test.go"):] == "_test.go"
}
