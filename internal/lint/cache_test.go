package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// copyFixtureModule copies the interproc fixture module into a fresh
// temp directory so tests can mutate it freely.
func copyFixtureModule(t testing.TB) string {
	t.Helper()
	dst := t.TempDir()
	if err := copyTree(filepath.Join("testdata", "src", "interproc"), dst); err != nil {
		t.Fatalf("copying fixture module: %v", err)
	}
	return dst
}

// TestLintCacheParity is the cold/warm contract on a module with a rich,
// non-empty finding set (the interproc fixture): a cacheless run, a
// cache-priming run, a std-bundle-warm run and a findings-cache-hit run
// must all produce byte-identical diagnostics, and the cache states must
// progress miss → hit.
func TestLintCacheParity(t *testing.T) {
	root := copyFixtureModule(t)
	cacheDir := t.TempDir()

	cold, _, err := Lint(root, Options{NoCache: true})
	if err != nil {
		t.Fatalf("cacheless run: %v", err)
	}
	if len(cold) == 0 {
		t.Fatalf("fixture module produced no findings; the parity test needs a non-empty set")
	}
	want := formatDiags(cold)

	prime, pstats, err := Lint(root, Options{CacheDir: cacheDir})
	if err != nil {
		t.Fatalf("priming run: %v", err)
	}
	if pstats.StdCache != "miss" || pstats.FindingsCache != "miss" {
		t.Errorf("priming run: StdCache=%s FindingsCache=%s, want miss/miss", pstats.StdCache, pstats.FindingsCache)
	}
	if got := formatDiags(prime); got != want {
		t.Errorf("priming run diverges from cacheless run\n--- cacheless ---\n%s--- priming ---\n%s", want, got)
	}

	warm, wstats, err := Lint(root, Options{CacheDir: cacheDir, NoFindingsCache: true})
	if err != nil {
		t.Fatalf("std-warm run: %v", err)
	}
	if wstats.StdCache != "hit" {
		t.Errorf("std-warm run: StdCache=%s, want hit", wstats.StdCache)
	}
	if got := formatDiags(warm); got != want {
		t.Errorf("std-warm run diverges from cacheless run\n--- cacheless ---\n%s--- warm ---\n%s", want, got)
	}

	hit, hstats, err := Lint(root, Options{CacheDir: cacheDir})
	if err != nil {
		t.Fatalf("findings-hit run: %v", err)
	}
	if hstats.FindingsCache != "hit" {
		t.Errorf("findings run: FindingsCache=%s, want hit", hstats.FindingsCache)
	}
	if got := formatDiags(hit); got != want {
		t.Errorf("findings-cache hit diverges from cacheless run\n--- cacheless ---\n%s--- hit ---\n%s", want, got)
	}
}

// TestLintFilterBypassesFindingsCache: a package filter must never be
// served from — or poison — the findings cache.
func TestLintFilterBypassesFindingsCache(t *testing.T) {
	root := copyFixtureModule(t)
	cacheDir := t.TempDir()
	filter := func(p *Package) bool { return strings.HasSuffix(p.Path, "/modeling") }
	diags, stats, err := Lint(root, Options{CacheDir: cacheDir, Filter: filter})
	if err != nil {
		t.Fatalf("filtered run: %v", err)
	}
	if stats.FindingsCache != "bypass" {
		t.Errorf("filtered run: FindingsCache=%s, want bypass", stats.FindingsCache)
	}
	for _, d := range diags {
		if !strings.Contains(d.Pos.Filename, "modeling") {
			t.Errorf("filtered run leaked a finding outside the filter: %s", d)
		}
	}
	// A full run right after must be a miss, not a hit on the subset.
	full, fstats, err := Lint(root, Options{CacheDir: cacheDir})
	if err != nil {
		t.Fatalf("full run: %v", err)
	}
	if fstats.FindingsCache != "miss" {
		t.Errorf("full run after filtered run: FindingsCache=%s, want miss", fstats.FindingsCache)
	}
	if len(full) <= len(diags) {
		t.Errorf("full run found %d diagnostics, filtered run %d; the full set must be strictly larger here",
			len(full), len(diags))
	}
}

// TestLoadModuleWorkersParity: the parallel loader must produce the same
// analysis — same unit order, same findings — for any worker count. Run
// under -race this doubles as the loader's data-race test.
func TestLoadModuleWorkersParity(t *testing.T) {
	root := copyFixtureModule(t)
	seq, err := LoadModule(root)
	if err != nil {
		t.Fatalf("sequential load: %v", err)
	}
	par, _, err := LoadModuleWith(root, LoadOptions{Workers: 4})
	if err != nil {
		t.Fatalf("parallel load: %v", err)
	}
	if len(seq.Pkgs) != len(par.Pkgs) {
		t.Fatalf("unit count differs: sequential %d, parallel %d", len(seq.Pkgs), len(par.Pkgs))
	}
	for i := range seq.Pkgs {
		if seq.Pkgs[i].Path != par.Pkgs[i].Path {
			t.Errorf("unit %d: sequential %s, parallel %s", i, seq.Pkgs[i].Path, par.Pkgs[i].Path)
		}
	}
	a := formatDiags(Run(seq, DefaultAnalyzers(), nil))
	b := formatDiags(Run(par, DefaultAnalyzers(), nil))
	if a != b {
		t.Errorf("findings differ between sequential and parallel load\n--- sequential ---\n%s--- parallel ---\n%s", a, b)
	}
}

// TestImportCycleReported: the upfront cycle check must name the cycle
// instead of deadlocking or reporting a bare failure under concurrency.
func TestImportCycleReported(t *testing.T) {
	root := t.TempDir()
	write := func(rel, content string) {
		t.Helper()
		p := filepath.Join(root, rel)
		if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module cyc\n\ngo 1.24\n")
	write("a/a.go", "package a\n\nimport \"cyc/b\"\n\nvar A = b.B\n")
	write("b/b.go", "package b\n\nimport \"cyc/a\"\n\nvar B = a.A\n")
	_, _, err := LoadModuleWith(root, LoadOptions{Workers: 4})
	if err == nil || !strings.Contains(err.Error(), "import cycle") {
		t.Fatalf("cyclic module: got error %v, want an import cycle report", err)
	}
}

// TestStdBundleCorruptFallsBack: a torn or garbage bundle file must
// degrade to a miss (and a successful cold load), never an error.
func TestStdBundleCorruptFallsBack(t *testing.T) {
	root := copyFixtureModule(t)
	cacheDir := t.TempDir()
	if err := os.WriteFile(stdBundlePath(cacheDir), []byte("not a bundle"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, stats, err := Lint(root, Options{CacheDir: cacheDir, NoFindingsCache: true})
	if err != nil {
		t.Fatalf("lint with corrupt bundle: %v", err)
	}
	if stats.StdCache != "miss" {
		t.Errorf("corrupt bundle: StdCache=%s, want miss", stats.StdCache)
	}
}
