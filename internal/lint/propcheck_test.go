package lint

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"extradeep/internal/propcheck"
)

// The lint package's property suite drives the incremental cache with
// randomized edit histories over a copy of the interproc fixture module
// and checks the two invariants the cache must never lose:
//
//  1. Parity — warm findings are byte-identical to the cold reference
//     after every mutation (the mutations are comment-only, so the
//     reference never changes while every edit changes the content key).
//  2. Key discipline — a run is a findings-cache hit exactly when the
//     module's content state has been linted before: touching a file
//     (same bytes, fresh mtime) keeps the hit, an unseen edit forces a
//     miss, and reverting an edit restores the old key and its hit.

// fixtureSourceFiles are the mutable .go files of the interproc fixture,
// relative to the module root.
var fixtureSourceFiles = []string{
	"internal/helpers/helpers.go",
	"internal/modeling/modeling.go",
	"internal/pipeline/pipeline.go",
	"report/report.go",
}

// cacheMutation is one step of an edit history.
type cacheMutation struct {
	op   int // 0 touch, 1 edit (append a unique comment), 2 revert
	file int // index into fixtureSourceFiles
}

// cacheHistory is one generated case.
type cacheHistory struct {
	muts []cacheMutation
}

func cacheHistoryGen() propcheck.Gen[cacheHistory] {
	opNames := []string{"touch", "edit", "revert"}
	return propcheck.Gen[cacheHistory]{
		Generate: func(r *propcheck.Rand) cacheHistory {
			n := r.IntRange(1, 3)
			muts := make([]cacheMutation, n)
			for i := range muts {
				muts[i] = cacheMutation{op: r.Intn(3), file: r.Intn(len(fixtureSourceFiles))}
			}
			return cacheHistory{muts: muts}
		},
		Shrink: func(h cacheHistory) []cacheHistory {
			var out []cacheHistory
			for i := range h.muts {
				rest := append(append([]cacheMutation(nil), h.muts[:i]...), h.muts[i+1:]...)
				out = append(out, cacheHistory{muts: rest})
			}
			return out
		},
		Describe: func(h cacheHistory) string {
			parts := make([]string, len(h.muts))
			for i, m := range h.muts {
				parts[i] = fmt.Sprintf("%s(%s)", opNames[m.op], filepath.Base(fixtureSourceFiles[m.file]))
			}
			return "[" + strings.Join(parts, " ") + "]"
		},
	}
}

// TestPropLintCacheParity: for any short history of touch/edit/revert
// mutations, every cached run reproduces the cold reference findings
// byte-for-byte, and the findings-cache hit/miss state equals "this exact
// content state was linted before". One std bundle is primed up front and
// shared, so each miss re-checks only the five-package fixture module.
func TestPropLintCacheParity(t *testing.T) {
	if testing.Short() {
		t.Skip("lints a module per mutation; skipped in -short")
	}
	cacheDir := t.TempDir()

	// The cold reference, computed once: comment-only mutations never
	// change findings, only content keys. The same run primes the bundle.
	refRoot := copyFixtureModule(t)
	refDiags, _, err := Lint(refRoot, Options{CacheDir: cacheDir})
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}
	reference := formatDiags(refDiags)
	if reference == "" {
		t.Fatal("fixture module produced no findings; the property needs a non-empty reference")
	}

	editSerial := 0
	propcheck.CheckConfig(t, propcheck.Config{Iterations: 4}, cacheHistoryGen(), func(h cacheHistory) error {
		root, err := os.MkdirTemp("", "edlint-prop-*")
		if err != nil {
			return err
		}
		defer func() { _ = os.RemoveAll(root) }()
		if err := copyTree(filepath.Join("testdata", "src", "interproc"), root); err != nil {
			return err
		}
		pristine := make(map[string][]byte, len(fixtureSourceFiles))
		for _, rel := range fixtureSourceFiles {
			data, err := os.ReadFile(filepath.Join(root, rel))
			if err != nil {
				return err
			}
			pristine[rel] = data
		}

		seen := map[string]bool{}
		runAndCheck := func(step string, wantHit bool) error {
			diags, stats, err := Lint(root, Options{CacheDir: cacheDir})
			if err != nil {
				return fmt.Errorf("%s: %w", step, err)
			}
			want := "miss"
			if wantHit {
				want = "hit"
			}
			if stats.FindingsCache != want {
				return fmt.Errorf("%s: findings cache %s, want %s", step, stats.FindingsCache, want)
			}
			if got := formatDiags(diags); got != reference {
				return fmt.Errorf("%s: findings diverge from the cold reference\n--- got ---\n%s--- want ---\n%s",
					step, got, reference)
			}
			return nil
		}
		state := func() (string, error) { return moduleStateFingerprint(root) }

		fp, err := state()
		if err != nil {
			return err
		}
		if err := runAndCheck("initial run", seen[fp]); err != nil {
			return err
		}
		seen[fp] = true

		for i, m := range h.muts {
			rel := fixtureSourceFiles[m.file]
			abs := filepath.Join(root, rel)
			switch m.op {
			case 0: // touch: same bytes, fresh mtime
				cur, err := os.ReadFile(abs)
				if err != nil {
					return err
				}
				if err := os.WriteFile(abs, cur, 0o644); err != nil {
					return err
				}
			case 1: // edit: append a comment unique across the whole test
				editSerial++
				f, err := os.OpenFile(abs, os.O_APPEND|os.O_WRONLY, 0o644)
				if err != nil {
					return err
				}
				if _, err := fmt.Fprintf(f, "\n// propcheck edit %d\n", editSerial); err != nil {
					_ = f.Close()
					return err
				}
				if err := f.Close(); err != nil {
					return err
				}
			case 2: // revert to pristine content
				if err := os.WriteFile(abs, pristine[rel], 0o644); err != nil {
					return err
				}
			}
			fp, err := state()
			if err != nil {
				return err
			}
			if err := runAndCheck(fmt.Sprintf("after mutation %d", i+1), seen[fp]); err != nil {
				return err
			}
			seen[fp] = true
		}
		return nil
	})
}

// moduleStateFingerprint hashes the mutable files' current content; two
// equal fingerprints mean the loader sees identical modules. Roots are
// excluded deliberately: the findings key includes the root path, so the
// expectation tracker must too — each case uses one root throughout.
func moduleStateFingerprint(root string) (string, error) {
	h := sha256.New()
	for _, rel := range fixtureSourceFiles {
		data, err := os.ReadFile(filepath.Join(root, rel))
		if err != nil {
			return "", err
		}
		_, _ = fmt.Fprintf(h, "%s\x00%x\n", rel, sha256.Sum256(data))
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// copyTree copies a directory tree (used by the property, which cannot
// call t.TempDir-based helpers from inside a prop function).
func copyTree(src, dst string) error {
	return filepath.Walk(src, func(p string, fi os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		rel, rerr := filepath.Rel(src, p)
		if rerr != nil {
			return rerr
		}
		out := filepath.Join(dst, rel)
		if fi.IsDir() {
			return os.MkdirAll(out, 0o755)
		}
		data, rerr := os.ReadFile(p)
		if rerr != nil {
			return rerr
		}
		return os.WriteFile(out, data, 0o644)
	})
}
