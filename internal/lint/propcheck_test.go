package lint

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"extradeep/internal/propcheck"
)

// The lint package's property suite drives the incremental cache with
// randomized edit histories over a copy of the interproc fixture module
// and checks the two invariants the cache must never lose:
//
//  1. Parity — warm findings are byte-identical to the matching cold
//     reference after every mutation. Touch/edit/revert mutations are
//     comment-only, so they change content keys without changing
//     findings; the hotpath-toggle mutation flips a //edlint:hotpath
//     directive on report/perf.go, so the expected findings switch
//     between the pristine and the directive reference — a directive-only
//     edit is semantically real and must never be served a stale answer.
//  2. Key discipline — a run is a findings-cache hit exactly when the
//     module's content state has been linted before: touching a file
//     (same bytes, fresh mtime) keeps the hit, an unseen edit forces a
//     miss, and reverting an edit restores the old key and its hit.

// fixtureSourceFiles are the mutable .go files of the interproc fixture,
// relative to the module root.
var fixtureSourceFiles = []string{
	"internal/helpers/helpers.go",
	"internal/modeling/modeling.go",
	"internal/pipeline/pipeline.go",
	"report/report.go",
	"report/perf.go",
}

// perfFixtureFile is the file whose hot-path directive the toggle
// mutation flips; hotToggleLine is the inserted doc-comment line.
const (
	perfFixtureFile = "report/perf.go"
	hotToggleLine   = "//edlint:hotpath toggled by the cache propcheck\n"
)

// cacheMutation is one step of an edit history.
type cacheMutation struct {
	op   int // 0 touch, 1 edit (append a unique comment), 2 revert, 3 toggle hotpath
	file int // index into fixtureSourceFiles (op 3 always targets perf.go)
}

// cacheHistory is one generated case.
type cacheHistory struct {
	muts []cacheMutation
}

func cacheHistoryGen() propcheck.Gen[cacheHistory] {
	opNames := []string{"touch", "edit", "revert", "hotpath"}
	return propcheck.Gen[cacheHistory]{
		Generate: func(r *propcheck.Rand) cacheHistory {
			n := r.IntRange(1, 3)
			muts := make([]cacheMutation, n)
			for i := range muts {
				muts[i] = cacheMutation{op: r.Intn(4), file: r.Intn(len(fixtureSourceFiles))}
				if muts[i].op == 3 {
					muts[i].file = fixtureFileIndex(perfFixtureFile)
				}
			}
			return cacheHistory{muts: muts}
		},
		Shrink: func(h cacheHistory) []cacheHistory {
			var out []cacheHistory
			for i := range h.muts {
				rest := append(append([]cacheMutation(nil), h.muts[:i]...), h.muts[i+1:]...)
				out = append(out, cacheHistory{muts: rest})
			}
			return out
		},
		Describe: func(h cacheHistory) string {
			parts := make([]string, len(h.muts))
			for i, m := range h.muts {
				parts[i] = fmt.Sprintf("%s(%s)", opNames[m.op], filepath.Base(fixtureSourceFiles[m.file]))
			}
			return "[" + strings.Join(parts, " ") + "]"
		},
	}
}

// fixtureFileIndex resolves a fixture path to its mutation index.
func fixtureFileIndex(rel string) int {
	for i, f := range fixtureSourceFiles {
		if f == rel {
			return i
		}
	}
	panic("unknown fixture file " + rel)
}

// withHotDirective inserts the toggle directive into perf.go's pristine
// content, as the last line of BuildLabels' doc comment.
func withHotDirective(pristine []byte) []byte {
	return []byte(strings.Replace(string(pristine),
		"func BuildLabels", hotToggleLine+"func BuildLabels", 1))
}

// TestPropLintCacheParity: for any short history of touch/edit/revert/
// hotpath-toggle mutations, every cached run reproduces the matching cold
// reference findings byte-for-byte, and the findings-cache hit/miss state
// equals "this exact content state was linted before". One std bundle is
// primed up front and shared, so each miss re-checks only the fixture
// module itself.
func TestPropLintCacheParity(t *testing.T) {
	if testing.Short() {
		t.Skip("lints a module per mutation; skipped in -short")
	}
	cacheDir := t.TempDir()

	// Two cold references, computed once: comment-only mutations never
	// change findings, and the hotpath toggle switches between exactly
	// these two content states of perf.go. The first run primes the
	// bundle.
	refRoot := copyFixtureModule(t)
	refDiags, _, err := Lint(refRoot, Options{CacheDir: cacheDir})
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}
	reference := formatDiags(refDiags)
	if reference == "" {
		t.Fatal("fixture module produced no findings; the property needs a non-empty reference")
	}

	hotRoot := copyFixtureModule(t)
	hotPerf := filepath.Join(hotRoot, filepath.FromSlash(perfFixtureFile))
	pristinePerf, err := os.ReadFile(hotPerf)
	if err != nil {
		t.Fatalf("reading %s: %v", hotPerf, err)
	}
	if err := os.WriteFile(hotPerf, withHotDirective(pristinePerf), 0o644); err != nil {
		t.Fatalf("writing hot perf.go: %v", err)
	}
	hotDiags, _, err := Lint(hotRoot, Options{CacheDir: cacheDir})
	if err != nil {
		t.Fatalf("hot reference run: %v", err)
	}
	hotReference := formatDiags(hotDiags)
	if hotReference == reference {
		t.Fatal("the //edlint:hotpath toggle changed no findings; the directive oracle is vacuous")
	}
	if !strings.Contains(hotReference, "prealloc:") {
		t.Fatalf("the directive reference lacks the expected prealloc finding:\n%s", hotReference)
	}

	editSerial := 0
	propcheck.CheckConfig(t, propcheck.Config{Iterations: 4}, cacheHistoryGen(), func(h cacheHistory) error {
		root, err := os.MkdirTemp("", "edlint-prop-*")
		if err != nil {
			return err
		}
		defer func() { _ = os.RemoveAll(root) }()
		if err := copyTree(filepath.Join("testdata", "src", "interproc"), root); err != nil {
			return err
		}
		pristine := make(map[string][]byte, len(fixtureSourceFiles))
		for _, rel := range fixtureSourceFiles {
			data, err := os.ReadFile(filepath.Join(root, rel))
			if err != nil {
				return err
			}
			pristine[rel] = data
		}

		seen := map[string]bool{}
		// expected picks the reference matching the current directive
		// state of perf.go: the findings oracle, not just the key oracle.
		expected := func() (string, error) {
			cur, err := os.ReadFile(filepath.Join(root, filepath.FromSlash(perfFixtureFile)))
			if err != nil {
				return "", err
			}
			if strings.Contains(string(cur), strings.TrimSpace(hotToggleLine)) {
				return hotReference, nil
			}
			return reference, nil
		}
		runAndCheck := func(step string, wantHit bool) error {
			diags, stats, err := Lint(root, Options{CacheDir: cacheDir})
			if err != nil {
				return fmt.Errorf("%s: %w", step, err)
			}
			want := "miss"
			if wantHit {
				want = "hit"
			}
			if stats.FindingsCache != want {
				return fmt.Errorf("%s: findings cache %s, want %s", step, stats.FindingsCache, want)
			}
			ref, err := expected()
			if err != nil {
				return err
			}
			if got := formatDiags(diags); got != ref {
				return fmt.Errorf("%s: findings diverge from the cold reference for this directive state\n--- got ---\n%s--- want ---\n%s",
					step, got, ref)
			}
			return nil
		}
		state := func() (string, error) { return moduleStateFingerprint(root) }

		fp, err := state()
		if err != nil {
			return err
		}
		if err := runAndCheck("initial run", seen[fp]); err != nil {
			return err
		}
		seen[fp] = true

		for i, m := range h.muts {
			rel := fixtureSourceFiles[m.file]
			abs := filepath.Join(root, rel)
			switch m.op {
			case 0: // touch: same bytes, fresh mtime
				cur, err := os.ReadFile(abs)
				if err != nil {
					return err
				}
				if err := os.WriteFile(abs, cur, 0o644); err != nil {
					return err
				}
			case 1: // edit: append a comment unique across the whole test
				editSerial++
				f, err := os.OpenFile(abs, os.O_APPEND|os.O_WRONLY, 0o644)
				if err != nil {
					return err
				}
				if _, err := fmt.Fprintf(f, "\n// propcheck edit %d\n", editSerial); err != nil {
					_ = f.Close()
					return err
				}
				if err := f.Close(); err != nil {
					return err
				}
			case 2: // revert to pristine content
				if err := os.WriteFile(abs, pristine[rel], 0o644); err != nil {
					return err
				}
			case 3: // toggle the //edlint:hotpath directive on perf.go
				cur, err := os.ReadFile(abs)
				if err != nil {
					return err
				}
				next := withHotDirective(pristine[rel])
				if strings.Contains(string(cur), strings.TrimSpace(hotToggleLine)) {
					next = pristine[rel]
				}
				if err := os.WriteFile(abs, next, 0o644); err != nil {
					return err
				}
			}
			fp, err := state()
			if err != nil {
				return err
			}
			if err := runAndCheck(fmt.Sprintf("after mutation %d", i+1), seen[fp]); err != nil {
				return err
			}
			seen[fp] = true
		}
		return nil
	})
}

// moduleStateFingerprint hashes the mutable files' current content; two
// equal fingerprints mean the loader sees identical modules. Roots are
// excluded deliberately: the findings key includes the root path, so the
// expectation tracker must too — each case uses one root throughout.
func moduleStateFingerprint(root string) (string, error) {
	h := sha256.New()
	for _, rel := range fixtureSourceFiles {
		data, err := os.ReadFile(filepath.Join(root, rel))
		if err != nil {
			return "", err
		}
		_, _ = fmt.Fprintf(h, "%s\x00%x\n", rel, sha256.Sum256(data))
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// TestPropPerfAnalyzersParity pins the determinism contract of the perf
// analyzer family over the allocloop fixture module: findings — traces
// included — are byte-identical between a sequential load (Workers: 1)
// and a parallel load at any worker count, and between a cold
// findings-cache run and the warm hit that follows it. The summaries
// behind the traces are computed bottom-up over SCCs, so this is the
// property that the fixpoint order never leaks into output.
func TestPropPerfAnalyzersParity(t *testing.T) {
	if testing.Short() {
		t.Skip("loads the fixture module per iteration; skipped in -short")
	}
	perf := []*Analyzer{AllocLoop, BoxIface, DeferHot, PreAlloc}
	root := filepath.Join("testdata", "src", "allocloop")

	seqMod, _, err := LoadModuleWith(root, LoadOptions{Workers: 1})
	if err != nil {
		t.Fatalf("sequential load: %v", err)
	}
	seq := formatDiags(Run(seqMod, perf, nil))
	if !strings.Contains(seq, "←") {
		t.Fatalf("the sequential reference lacks an interprocedural trace; the parity check would be vacuous:\n%s", seq)
	}

	propcheck.CheckConfig(t, propcheck.Config{Iterations: 6}, propcheck.IntRange(2, 8), func(workers int) error {
		mod, _, err := LoadModuleWith(root, LoadOptions{Workers: workers})
		if err != nil {
			return fmt.Errorf("load with %d workers: %w", workers, err)
		}
		if got := formatDiags(Run(mod, perf, nil)); got != seq {
			return fmt.Errorf("findings at %d workers diverge from the sequential load\n--- got ---\n%s--- want ---\n%s",
				workers, got, seq)
		}
		return nil
	})

	cacheDir := t.TempDir()
	cold, coldStats, err := Lint(root, Options{CacheDir: cacheDir, Analyzers: perf})
	if err != nil {
		t.Fatalf("cold cached run: %v", err)
	}
	if coldStats.FindingsCache != "miss" {
		t.Fatalf("cold run findings cache = %s, want miss", coldStats.FindingsCache)
	}
	warm, warmStats, err := Lint(root, Options{CacheDir: cacheDir, Analyzers: perf})
	if err != nil {
		t.Fatalf("warm cached run: %v", err)
	}
	if warmStats.FindingsCache != "hit" {
		t.Fatalf("warm run findings cache = %s, want hit", warmStats.FindingsCache)
	}
	if got := formatDiags(cold); got != seq {
		t.Errorf("cold cached findings diverge from the sequential load\n--- got ---\n%s--- want ---\n%s", got, seq)
	}
	if got := formatDiags(warm); got != seq {
		t.Errorf("warm cached findings diverge from the sequential load\n--- got ---\n%s--- want ---\n%s", got, seq)
	}
}

// copyTree copies a directory tree (used by the property, which cannot
// call t.TempDir-based helpers from inside a prop function).
func copyTree(src, dst string) error {
	return filepath.Walk(src, func(p string, fi os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		rel, rerr := filepath.Rel(src, p)
		if rerr != nil {
			return rerr
		}
		out := filepath.Join(dst, rel)
		if fi.IsDir() {
			return os.MkdirAll(out, 0o755)
		}
		data, rerr := os.ReadFile(p)
		if rerr != nil {
			return rerr
		}
		return os.WriteFile(out, data, 0o644)
	})
}
