package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// sendGuardPolicedPackages mirrors ctxflow's scope: the packages that own
// goroutines, channels and WaitGroups. PR 3's cancellation tests catch a
// leaked count or a stuck send dynamically, after the fact; sendguard
// rejects the shapes that make those leaks possible.
var sendGuardPolicedPackages = []string{
	"internal/pipeline",
	"internal/core",
	// resilience holds the injector/retrier/checkpoint mutexes and the
	// timer channels behind Clock; the same acquire/release discipline
	// applies.
	"internal/resilience",
	// serve holds the store/app mutexes and the campaign semaphore; both
	// disciplines (deferred unlock, cancellable sends) apply.
	"internal/serve",
}

// SendGuard enforces the acquire-paired-with-deferred-release discipline
// on the concurrency primitives of the pipeline/core packages:
//
//   - a channel send that is not a select case — if the receiver has gone
//     away (cancellation, early error) the send blocks forever; every send
//     must race a cancellation case (buffered-channel sends that provably
//     cannot block need an //edlint:ignore sendguard <reason>);
//   - wg.Done() called outside a defer — a panic or early return on any
//     path between the work and the Done leaks the count and deadlocks
//     Wait;
//   - wg.Add() inside a spawned goroutine — the race window between spawn
//     and Add lets Wait return before the goroutine is counted; Add must
//     happen before the go statement;
//   - wg.Add() in a function whose body (closures included) never defers a
//     matching Done — the count can never drain;
//   - mu.Lock()/RLock() not immediately followed by the matching deferred
//     Unlock — an early return between acquire and release deadlocks the
//     next user.
var SendGuard = &Analyzer{
	Name: "sendguard",
	Doc: "reports channel sends outside a select case, WaitGroup counts " +
		"without a deferred release on every path, and locks without an " +
		"immediately deferred unlock (pipeline/core packages)",
	Run: runSendGuard,
}

// sendGuardPoliced reports whether the unit path (test suffix ignored)
// owns concurrency primitives and is under sendguard's discipline.
func sendGuardPoliced(path string) bool {
	path = strings.TrimSuffix(path, "_test")
	for _, p := range sendGuardPolicedPackages {
		if strings.HasSuffix(path, p) {
			return true
		}
	}
	return false
}

func runSendGuard(pass *Pass) {
	if !sendGuardPoliced(pass.Path) {
		return
	}
	for _, file := range pass.Files {
		selectComms := collectSelectComms(file)
		deferredCalls := collectDeferredCalls(file)
		spawned := collectSpawnedLits(file)
		eachTopFunc(file, func(fd *ast.FuncDecl) {
			checkSends(pass, fd, selectComms)
			checkInterprocSends(pass, fd)
			checkWaitGroups(pass, fd, deferredCalls, spawned)
			checkLocks(pass, fd)
		})
	}
}

// checkInterprocSends reports calls that hand a channel to a helper
// outside the policed packages which — per its module summary — performs
// a bare send on the corresponding parameter: the blocking risk crosses
// the call boundary, so the caller inherits the finding with the
// cross-function trace. Helpers inside the policed packages are skipped;
// their own bodies already yield the send finding.
func checkInterprocSends(pass *Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		cs := pass.Sums.LookupCall(pass.Info, call)
		if cs == nil || len(cs.BareSendParams) == 0 || sendGuardPoliced(cs.Pkg) {
			return true
		}
		for i, arg := range call.Args {
			eff, ok := cs.BareSendParams[i]
			if !ok {
				continue
			}
			pass.Reportf(call.Pos(),
				"call to %s sends on %s outside any select case (%s): if the receiver is gone the send blocks forever; select against ctx.Done() inside the helper, or suppress at the send with //edlint:ignore sendguard <reason>",
				cs.Display, types.ExprString(arg), eff.render(funcDisplay(pass, fd), cs.Display))
		}
		return true
	})
}

// collectSelectComms records every statement that is the communication of
// a select case (exempt from the bare-send rule).
func collectSelectComms(file *ast.File) map[ast.Stmt]bool {
	comms := make(map[ast.Stmt]bool)
	ast.Inspect(file, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectStmt)
		if !ok {
			return true
		}
		for _, clause := range sel.Body.List {
			if cc, ok := clause.(*ast.CommClause); ok && cc.Comm != nil {
				comms[cc.Comm] = true
			}
		}
		return true
	})
	return comms
}

// collectDeferredCalls records every call expression that is the call of a
// defer statement.
func collectDeferredCalls(file *ast.File) map[*ast.CallExpr]bool {
	deferred := make(map[*ast.CallExpr]bool)
	ast.Inspect(file, func(n ast.Node) bool {
		if d, ok := n.(*ast.DeferStmt); ok && d.Call != nil {
			deferred[d.Call] = true
		}
		return true
	})
	return deferred
}

// collectSpawnedLits records every function literal that is the direct
// callee of a go statement.
func collectSpawnedLits(file *ast.File) map[*ast.FuncLit]bool {
	spawned := make(map[*ast.FuncLit]bool)
	ast.Inspect(file, func(n ast.Node) bool {
		g, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		if lit, ok := unparen(g.Call.Fun).(*ast.FuncLit); ok {
			spawned[lit] = true
		}
		return true
	})
	return spawned
}

// checkSends reports channel sends that are not select-case comms.
func checkSends(pass *Pass, fd *ast.FuncDecl, selectComms map[ast.Stmt]bool) {
	ast.Inspect(fd, func(n ast.Node) bool {
		send, ok := n.(*ast.SendStmt)
		if !ok || selectComms[send] {
			return true
		}
		pass.Reportf(send.Pos(),
			"channel send outside a select case: if the receiver is gone the send blocks forever; select against ctx.Done() (a provably non-blocking buffered send needs //edlint:ignore sendguard <reason>)")
		return true
	})
}

// checkWaitGroups applies the three WaitGroup rules to fd.
func checkWaitGroups(pass *Pass, fd *ast.FuncDecl, deferredCalls map[*ast.CallExpr]bool, spawned map[*ast.FuncLit]bool) {
	// Map each Add target to whether a deferred Done on the same rendering
	// exists anywhere in the declaration (closures included).
	deferredDone := make(map[string]bool)
	ast.Inspect(fd, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || !deferredCalls[call] {
			return true
		}
		if recv, name := waitGroupMethod(pass, call); name == "Done" {
			deferredDone[recv] = true
		}
		return true
	})

	var inGo func(n ast.Node, inside bool)
	inGo = func(n ast.Node, inside bool) {
		ast.Inspect(n, func(m ast.Node) bool {
			switch m := m.(type) {
			case *ast.FuncLit:
				if m != n {
					inGo(m, inside || spawned[m])
					return false
				}
			case *ast.CallExpr:
				recv, name := waitGroupMethod(pass, m)
				switch name {
				case "Done":
					if !deferredCalls[m] {
						pass.Reportf(m.Pos(),
							"%s.Done() is not deferred: a panic or early return before this call leaks the WaitGroup count and deadlocks Wait; use defer %s.Done() at the top of the goroutine",
							recv, recv)
					}
				case "Add":
					if inside {
						pass.Reportf(m.Pos(),
							"%s.Add() inside a spawned goroutine races Wait: the counter may still be zero when Wait runs; call Add before the go statement",
							recv)
					} else if !deferredDone[recv] {
						pass.Reportf(m.Pos(),
							"%s.Add() has no matching deferred %s.Done() anywhere in this function: the count can never drain on every path",
							recv, recv)
					}
				}
			}
			return true
		})
	}
	inGo(fd, false)
}

// checkLocks reports Lock/RLock calls whose next statement is not the
// matching deferred unlock.
func checkLocks(pass *Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd, func(n ast.Node) bool {
		block, ok := n.(*ast.BlockStmt)
		if !ok {
			return true
		}
		for i, stmt := range block.List {
			expr, ok := stmt.(*ast.ExprStmt)
			if !ok {
				continue
			}
			call, ok := expr.X.(*ast.CallExpr)
			if !ok {
				continue
			}
			recv, name := mutexMethod(pass, call)
			var want string
			switch name {
			case "Lock":
				want = "Unlock"
			case "RLock":
				want = "RUnlock"
			default:
				continue
			}
			if i+1 < len(block.List) {
				if d, ok := block.List[i+1].(*ast.DeferStmt); ok {
					if drecv, dname := mutexMethod(pass, d.Call); dname == want && drecv == recv {
						continue
					}
				}
			}
			pass.Reportf(call.Pos(),
				"%s.%s() is not followed by defer %s.%s(): an early return or panic between acquire and release deadlocks the next user",
				recv, name, recv, want)
		}
		return true
	})
}

// waitGroupMethod returns the rendered receiver and method name when call
// is a method call on a sync.WaitGroup.
func waitGroupMethod(pass *Pass, call *ast.CallExpr) (string, string) {
	return methodOnSyncType(pass, call, "WaitGroup")
}

// mutexMethod returns the rendered receiver and method name when call is a
// method call on a sync.Mutex or sync.RWMutex.
func mutexMethod(pass *Pass, call *ast.CallExpr) (string, string) {
	if recv, name := methodOnSyncType(pass, call, "Mutex"); name != "" {
		return recv, name
	}
	return methodOnSyncType(pass, call, "RWMutex")
}

// methodOnSyncType matches a method call whose receiver is sync.<typeName>
// (directly or behind a pointer) and returns the receiver's rendering and
// the method name.
func methodOnSyncType(pass *Pass, call *ast.CallExpr, typeName string) (string, string) {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	var recv types.Type
	if selInfo := pass.Info.Selections[sel]; selInfo != nil && selInfo.Kind() == types.MethodVal {
		recv = selInfo.Recv()
	} else {
		recv = pass.TypeOf(sel.X)
	}
	if recv == nil || !isNamedInPackage(recv, "sync", typeName) {
		return "", ""
	}
	return types.ExprString(sel.X), sel.Sel.Name
}
