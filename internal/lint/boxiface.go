package lint

import "go/ast"

// BoxIface reports scalar-to-interface conversions inside hot loops:
// explicit any(x)/interface{}(x) conversions, basic-typed arguments
// passed into interface parameters (the fmt sink pattern — every
// fmt.Sprintf("%d", i) in a fold loop boxes the int per iteration), and
// calls whose interprocedural summary says the callee boxes, rendered
// with the trace to the root conversion. Cold exit paths (error returns,
// panics) are exempt; hot callees report their own bodies.
var BoxIface = &Analyzer{
	Name: "boxiface",
	Doc: "reports scalar-to-interface boxing in designated hot loops, " +
		"including fmt sink arguments and transitively-boxing calls with an " +
		"interprocedural trace to the conversion site",
	Run: runBoxIface,
}

func runBoxIface(pass *Pass) {
	for _, file := range pass.Files {
		if inTestFile(pass.Fset, file.Pos()) {
			continue
		}
		eachTopFunc(file, func(fd *ast.FuncDecl) {
			if !isHotFunc(pass, fd) {
				return
			}
			for _, site := range allocScan(pass, fd) {
				if !site.inLoop {
					continue
				}
				switch site.kind {
				case allocBox:
					pass.Reportf(site.pos,
						"%s on every iteration of a hot loop in %s%s; format outside the loop, use a typed sink, or suppress with //edlint:ignore boxiface <reason>",
						site.desc, funcDisplay(pass, fd), hotLoopSuffix(pass, fd))
				case allocBoxCall:
					if site.sum.Hot {
						continue // the callee polices its own body
					}
					pass.Reportf(site.pos,
						"call to %s boxes a scalar into an interface on every iteration of a hot loop (%s); sanction the source with //edlint:ignore boxiface <reason> — which clears every caller — or move the conversion out of the loop",
						site.sum.Display, hotDisplayPath(pass, fd, site))
				}
			}
		})
	}
}
