package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// ctxPolicedPackages are the concurrency-bearing packages whose goroutines
// must all be cancellable: the staged pipeline and the facade that drives
// it. DESIGN.md §9's cancellation contract ("prompt drain, no goroutine
// leaks") is only as strong as context propagation into every spawn.
var ctxPolicedPackages = []string{
	"internal/pipeline",
	"internal/core",
	// resilience owns the clock/timeout plumbing (FakeClock goroutine-free
	// by design, WallClock timers) the pipeline's cancellation contract
	// now runs through.
	"internal/resilience",
	// serve spawns the per-application fit loops; every goroutine must
	// observe the server lifecycle context.
	"internal/serve",
}

// CtxFlow enforces context propagation in the concurrency core. In the
// policed packages it reports:
//
//   - a go statement whose spawned function neither receives nor captures
//     any context.Context value — cancellation can never reach that
//     goroutine, so it outlives the pipeline run it belongs to;
//   - in non-test code, a context.Background() or context.TODO() call
//     inside a function that has a context.Context parameter — the
//     enclosing context (deadline, cancellation, values) is silently
//     dropped instead of propagated.
//
// Deriving a context is fine: a goroutine that captures a child of ctx
// (context.WithCancel(ctx), ...) mentions a context value and passes.
// Genuinely detached goroutines must say why via
// //edlint:ignore ctxflow <reason>.
var CtxFlow = &Analyzer{
	Name: "ctxflow",
	Doc: "reports goroutines in the pipeline/core packages that do not " +
		"receive a context.Context, and Background()/TODO() calls that " +
		"drop an enclosing ctx parameter",
	Run: runCtxFlow,
}

// ctxPoliced reports whether the unit path (test suffix ignored) is in
// the concurrency core.
func ctxPoliced(path string) bool {
	path = strings.TrimSuffix(path, "_test")
	for _, p := range ctxPolicedPackages {
		if strings.HasSuffix(path, p) {
			return true
		}
	}
	return false
}

func runCtxFlow(pass *Pass) {
	if !ctxPoliced(pass.Path) {
		return
	}
	for _, file := range pass.Files {
		eachTopFunc(file, func(fd *ast.FuncDecl) {
			hasCtxParam := funcHasContextParam(pass, fd)
			ast.Inspect(fd, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.GoStmt:
					if !mentionsContextValue(pass, n.Call) {
						pass.Reportf(n.Pos(),
							"goroutine started without any context.Context; cancellation cannot reach it — capture ctx (or a context derived from it) so the pipeline's drain guarantee holds")
					}
				case *ast.CallExpr:
					if inTestFile(pass.Fset, n.Pos()) {
						return true // tests legitimately create root contexts
					}
					if name, ok := rootContextCall(pass, n); ok && hasCtxParam {
						pass.Reportf(n.Pos(),
							"context.%s() inside a function that already has a context.Context parameter drops the enclosing context; propagate the ctx parameter instead",
							name)
						return true
					}
					checkCtxCallSummary(pass, fd, hasCtxParam, n)
				}
				return true
			})
		})
	}
}

// checkCtxCallSummary applies the interprocedural ctxflow rules to one
// call: the statically resolved callee's summary says it drops the
// context (creates a root context while accepting none) or spawns a
// goroutine no context can reach. Callees inside the policed packages
// are skipped — their own bodies already yield the finding.
func checkCtxCallSummary(pass *Pass, fd *ast.FuncDecl, hasCtxParam bool, call *ast.CallExpr) {
	cs := pass.Sums.LookupCall(pass.Info, call)
	if cs == nil || ctxPoliced(cs.Pkg) {
		return
	}
	if hasCtxParam && !cs.HasCtxParam && cs.DropsContext != nil {
		pass.Reportf(call.Pos(),
			"call to %s drops the enclosing context: the callee takes no context.Context and creates a root context inside (%s); thread the ctx parameter through the helper instead",
			cs.Display, cs.DropsContext.render(funcDisplay(pass, fd), cs.Display))
	}
	if cs.SpawnsDetached != nil {
		pass.Reportf(call.Pos(),
			"call to %s starts a goroutine that no context.Context can reach (%s); cancellation cannot drain it — pass a ctx into the spawn chain or suppress with //edlint:ignore ctxflow <reason>",
			cs.Display, cs.SpawnsDetached.render(funcDisplay(pass, fd), cs.Display))
	}
}

// funcHasContextParam reports whether fd declares a context.Context
// parameter (or receiver).
func funcHasContextParam(pass *Pass, fd *ast.FuncDecl) bool {
	check := func(fl *ast.FieldList) bool {
		if fl == nil {
			return false
		}
		for _, f := range fl.List {
			if t := pass.TypeOf(f.Type); isContextType(t) {
				return true
			}
		}
		return false
	}
	return check(fd.Type.Params) || check(fd.Recv)
}

// mentionsContextValue reports whether any expression within the spawned
// call (the callee, its arguments, or a closure body) has type
// context.Context.
func mentionsContextValue(pass *Pass, call *ast.CallExpr) bool {
	found := false
	ast.Inspect(call, func(n ast.Node) bool {
		if found {
			return false
		}
		if e, ok := n.(ast.Expr); ok {
			if isContextType(pass.TypeOf(e)) {
				found = true
			}
		}
		return !found
	})
	return found
}

// rootContextCall matches context.Background() and context.TODO().
func rootContextCall(pass *Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	id, ok := unparen(sel.X).(*ast.Ident)
	if !ok {
		return "", false
	}
	pn, ok := pass.Info.Uses[id].(*types.PkgName)
	if !ok || pn.Imported().Path() != "context" {
		return "", false
	}
	if sel.Sel.Name == "Background" || sel.Sel.Name == "TODO" {
		return sel.Sel.Name, true
	}
	return "", false
}
