package lint

import (
	"fmt"
	"sort"
	"strings"
)

// DefaultAnalyzers returns the full edlint suite in stable order. This is
// the set the self-check test and cmd/edlint enforce over the repository.
func DefaultAnalyzers() []*Analyzer {
	return []*Analyzer{
		AllocLoop,
		BoxIface,
		CtxFlow,
		DeferHot,
		DivGuard,
		ErrCheck,
		FloatEq,
		LibPanic,
		LogDomain,
		MapOrder,
		NaNInOut,
		PreAlloc,
		SendGuard,
		WallClock,
	}
}

// Select resolves a comma-separated list of analyzer names against the
// default suite; an empty spec selects everything.
func Select(spec string) ([]*Analyzer, error) {
	all := DefaultAnalyzers()
	if strings.TrimSpace(spec) == "" {
		return all, nil
	}
	byName := make(map[string]*Analyzer, len(all))
	names := make([]string, 0, len(all))
	for _, a := range all {
		byName[a.Name] = a
		names = append(names, a.Name)
	}
	sort.Strings(names)
	var out []*Analyzer
	for _, name := range strings.Split(spec, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		a, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("lint: unknown analyzer %q (have %s)", name, strings.Join(names, ", "))
		}
		out = append(out, a)
	}
	if len(out) == 0 {
		return all, nil
	}
	return out, nil
}
