package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// This file is edlint v3's interprocedural summary pass. For every
// function declaration of the module it computes a FuncSummary — a small
// set of effect bits, each carrying a cross-function trace to its root
// cause — bottom-up over the call graph's strongly connected components,
// with a fixpoint inside each component so recursion converges. The
// dataflow core (dataflow.go) and the four flow analyzers consume the
// table: a call to a function whose summary says "reads the wall clock
// three frames down" or "returns a slice in map-iteration order" becomes
// a taint source at the call site, and the finding's message renders the
// whole chain (report.Write ← formatRows ← bucketByNode ← range over m).
//
// Sanctioned sources stay sanctioned interprocedurally: a nondeterminism
// source covered by an //edlint:ignore directive for the relevant
// analyzer is excluded from its function's summary, so the suppression at
// the source silences the laundered findings at every caller too (the
// propcheck engine's ignore-file wallclock directive is the canonical
// case: its seeded math/rand draws must not taint every generator that
// calls through propcheck.Rand).

// EffectTrace is the call chain from a summarized function down to the
// root cause of one effect. The first element is the summarized
// function's direct culprit (a callee's display name or a source
// description like "time.Now" or "range over m"); the last element is
// always the source itself.
type EffectTrace struct {
	Chain []string
}

// maxTraceLen bounds rendered chains; deeper chains elide the middle.
const maxTraceLen = 8

// render joins the chain for messages, prefixed with the given head
// (usually the reporting function and the called function).
func (e *EffectTrace) render(head ...string) string {
	chain := append(append([]string(nil), head...), e.Chain...)
	if len(chain) > maxTraceLen {
		elided := append([]string(nil), chain[:maxTraceLen-2]...)
		elided = append(elided, "…", chain[len(chain)-1])
		chain = elided
	}
	return strings.Join(chain, " ← ")
}

// extend builds a caller's trace from a callee's: the callee's display
// name followed by the callee's own chain.
func (e *EffectTrace) extend(callee string) *EffectTrace {
	return &EffectTrace{Chain: append([]string{callee}, e.Chain...)}
}

// FuncSummary is the interprocedural effect summary of one function
// declaration. A nil trace pointer means "this function provably does
// not have the effect through any statically resolved call chain".
type FuncSummary struct {
	// Key is the function's cross-unit identity (types.Func.FullName).
	Key string
	// Display is the compact trace rendering ("report.Write").
	Display string
	// Pkg is the import path of the analysis unit declaring the function.
	Pkg string
	// HasCtxParam reports whether the function receives a context.Context
	// (parameter or receiver).
	HasCtxParam bool
	// Hot marks a designated hot path (//edlint:hotpath directive or the
	// policed default set). Hot callees report their own bodies, so the
	// perf analyzers skip call-site findings into them — the same
	// single-report contract wallclock keeps across policed packages.
	Hot bool

	// ReadsClock: calls time.Now/Since/Until, directly or transitively.
	ReadsClock *EffectTrace
	// ReadsRand: draws from math/rand (v1 or v2), directly or transitively.
	ReadsRand *EffectTrace
	// OrderedReturn: returns a slice or array whose element order descends
	// from map iteration and is never sorted before the return.
	OrderedReturn *EffectTrace
	// DropsContext: calls context.Background()/TODO(), directly or through
	// callees that take no context parameter of their own.
	DropsContext *EffectTrace
	// SpawnsDetached: starts a goroutine that mentions no context.Context
	// value, directly or transitively.
	SpawnsDetached *EffectTrace
	// DiscardsError: drops an error result on the floor (errcheck's rules),
	// directly or transitively. Informational: exposed for tooling and
	// tests; errcheck itself stays intra-procedural because the callee's
	// own finding already marks the site.
	DiscardsError *EffectTrace
	// BareSendParams maps a parameter index to a trace when the function
	// performs a channel send outside any select on that parameter
	// (directly or by passing it along to a callee that does).
	BareSendParams map[int]*EffectTrace

	// AllocatesPerCall: performs a heap allocation (make/new, escaping
	// composite literal, or an allocating stdlib intrinsic) on some path
	// of every call, directly or transitively. Amortized idioms
	// (grow-to-cap loops, cap-guarded makes, [:0] reuse) and cold exit
	// paths are excluded — see allocflow.go.
	AllocatesPerCall *EffectTrace
	// GrowsSlice: performs a non-amortized append that may reallocate,
	// directly or transitively.
	GrowsSlice *EffectTrace
	// BoxesToInterface: converts or passes a scalar into an interface
	// (fmt sinks included), directly or transitively.
	BoxesToInterface *EffectTrace
	// CapturesByClosure: builds a variable-capturing function literal
	// (a heap-allocated closure), directly or transitively.
	CapturesByClosure *EffectTrace
}

// SummaryTable holds every function summary of one module, keyed by
// types.Func.FullName.
type SummaryTable struct {
	funcs map[string]*FuncSummary
}

// Lookup resolves the summary for a called function object, or nil when
// the function has no body in the module (stdlib, interface method,
// function value).
func (t *SummaryTable) Lookup(fn *types.Func) *FuncSummary {
	if t == nil || fn == nil {
		return nil
	}
	return t.funcs[fn.FullName()]
}

// LookupCall resolves the summary of a call expression's static callee.
func (t *SummaryTable) LookupCall(info *types.Info, call *ast.CallExpr) *FuncSummary {
	if t == nil {
		return nil
	}
	key, ok := calleeKey(info, call)
	if !ok {
		return nil
	}
	return t.funcs[key]
}

// Len reports the number of summarized functions.
func (t *SummaryTable) Len() int {
	if t == nil {
		return 0
	}
	return len(t.funcs)
}

// summarizer carries the module-wide state of one summary computation.
type summarizer struct {
	mod   *Module
	graph *callGraph
	table *SummaryTable
	// sanction answers "is this analyzer suppressed at this position?";
	// sanctioned sources are excluded from summaries so a suppression at
	// the source silences every laundered caller-side finding too.
	dirs []directive
}

// Summarize computes the interprocedural summary table for a loaded
// module: intrinsic effects per function, then bottom-up propagation over
// the call graph's SCCs with a per-component fixpoint.
func Summarize(mod *Module) *SummaryTable {
	s := &summarizer{
		mod:   mod,
		graph: buildCallGraph(mod),
		table: &SummaryTable{funcs: make(map[string]*FuncSummary)},
	}
	known := make(map[string]bool)
	for _, a := range DefaultAnalyzers() {
		known[a.Name] = true
	}
	for _, pkg := range mod.Pkgs {
		dirs, _ := collectDirectives(mod.Fset, pkg.Files, known)
		s.dirs = append(s.dirs, dirs...)
	}
	for _, comp := range s.graph.sccs() {
		// Seed the component with empty summaries so in-component calls
		// resolve during the fixpoint instead of reading nil.
		for _, key := range comp {
			n := s.graph.nodes[key]
			s.table.funcs[key] = &FuncSummary{
				Key:         key,
				Display:     n.display,
				Pkg:         n.pkg.Path,
				HasCtxParam: declHasContextParam(n.pkg, n.decl),
				Hot:         hotByDirective(n.decl) || hotByDefault(n.pkg.Path, n.display),
			}
		}
		for {
			changed := false
			for _, key := range comp {
				if s.recompute(s.graph.nodes[key]) {
					changed = true
				}
			}
			if !changed || len(comp) == 1 && !selfCalls(s.graph.nodes[comp[0]]) {
				break
			}
		}
	}
	return s.table
}

// selfCalls reports whether a node calls itself (a one-node SCC needs a
// fixpoint only when it is directly recursive).
func selfCalls(n *funcNode) bool {
	for _, c := range n.callees {
		if c == n.key {
			return true
		}
	}
	return false
}

// sanctioned reports whether an ignore directive for the analyzer covers
// the position.
func (s *summarizer) sanctioned(analyzer string, p token.Position) bool {
	for _, d := range s.dirs {
		if d.analyzer == analyzer && d.file == p.Filename && p.Line >= d.from && p.Line <= d.to {
			return true
		}
	}
	return false
}

// sanctionedPos resolves pos and applies sanctioned.
func (s *summarizer) sanctionedPos(analyzer string, pos token.Pos) bool {
	return s.sanctioned(analyzer, s.mod.Fset.Position(pos))
}

// recompute re-derives one function's summary from its body and the
// current table, merging monotonically (an effect once set keeps its
// first trace, which makes the fixpoint deterministic). It reports
// whether any effect was newly set.
func (s *summarizer) recompute(n *funcNode) bool {
	sum := s.table.funcs[n.key]
	pass := &Pass{
		Analyzer:   &Analyzer{Name: "summary"},
		Fset:       s.mod.Fset,
		Files:      n.pkg.Files,
		Pkg:        n.pkg.Types,
		Info:       n.pkg.Info,
		Path:       n.pkg.Path,
		IsTestUnit: n.pkg.IsTest,
		Sums:       s.table,
	}
	changed := false
	set := func(dst **EffectTrace, tr *EffectTrace) {
		if *dst == nil && tr != nil {
			*dst = tr
			changed = true
		}
	}

	set(&sum.ReadsClock, s.clockTrace(pass, n, srcTime, "wallclock"))
	set(&sum.ReadsRand, s.clockTrace(pass, n, srcRand, "wallclock"))
	set(&sum.OrderedReturn, s.orderedReturnTrace(pass, n))
	set(&sum.DropsContext, s.dropsContextTrace(pass, n))
	set(&sum.SpawnsDetached, s.spawnsDetachedTrace(pass, n))
	set(&sum.DiscardsError, s.discardsErrorTrace(pass, n))
	alloc, grow, box, closure := s.allocEffects(pass, n)
	set(&sum.AllocatesPerCall, alloc)
	set(&sum.GrowsSlice, grow)
	set(&sum.BoxesToInterface, box)
	set(&sum.CapturesByClosure, closure)
	if s.mergeBareSends(pass, n, sum) {
		changed = true
	}
	return changed
}

// clockTrace finds the earliest wall-clock or rand effect of fd: a direct
// source call, or a call to a summarized function carrying the effect.
// Sources covered by a wallclock suppression are sanctioned and skipped.
func (s *summarizer) clockTrace(pass *Pass, n *funcNode, kind sourceKind, analyzer string) *EffectTrace {
	var best *EffectTrace
	var bestPos token.Pos = -1
	consider := func(p token.Pos, tr *EffectTrace) {
		if tr != nil && (bestPos < 0 || p < bestPos) {
			best, bestPos = tr, p
		}
	}
	ast.Inspect(n.decl, func(node ast.Node) bool {
		call, ok := node.(*ast.CallExpr)
		if !ok {
			return true
		}
		if src := nondetCallSource(pass, call); src != nil && src.kind == kind {
			if !s.sanctionedPos(analyzer, src.pos) {
				consider(src.pos, &EffectTrace{Chain: []string{src.desc}})
			}
			return true
		}
		if cs := s.table.LookupCall(pass.Info, call); cs != nil {
			var eff *EffectTrace
			if kind == srcTime {
				eff = cs.ReadsClock
			} else {
				eff = cs.ReadsRand
			}
			if eff != nil && !s.sanctionedPos(analyzer, call.Pos()) {
				consider(call.Pos(), eff.extend(cs.Display))
			}
		}
		return true
	})
	return best
}

// orderedReturnTrace reports a return of a slice/array whose element
// order descends from map iteration (directly, or via a callee whose
// summary says so) with no sort between the accumulation and the return.
func (s *summarizer) orderedReturnTrace(pass *Pass, n *funcNode) *EffectTrace {
	flows := taintFunc(pass, n.decl)
	var found *EffectTrace
	ast.Inspect(n.decl, func(node ast.Node) bool {
		if found != nil {
			return false
		}
		ret, ok := node.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, res := range ret.Results {
			src := flows.exprSource(res)
			if src == nil || !src.mapOrdered() {
				continue
			}
			t := pass.TypeOf(res)
			if t == nil || !isSliceOrArray(t) {
				continue
			}
			if s.sanctionedPos("maporder", src.pos) {
				continue
			}
			// The append-then-sort idiom sanitizes: any sort/slices call
			// in the function mentioning the returned expression.
			if sortedAfter(pass, n.decl, 0, res) {
				continue
			}
			found = src.asTrace()
		}
		return found == nil
	})
	return found
}

// dropsContextTrace reports a context.Background()/TODO() call in
// non-test code, directly or through callees that take no context of
// their own (if the callee accepts a ctx parameter, the caller's context
// flowed in and the drop is the callee's own intra-procedural finding).
func (s *summarizer) dropsContextTrace(pass *Pass, n *funcNode) *EffectTrace {
	var best *EffectTrace
	var bestPos token.Pos = -1
	consider := func(p token.Pos, tr *EffectTrace) {
		if tr != nil && (bestPos < 0 || p < bestPos) {
			best, bestPos = tr, p
		}
	}
	ast.Inspect(n.decl, func(node ast.Node) bool {
		call, ok := node.(*ast.CallExpr)
		if !ok {
			return true
		}
		if inTestFile(pass.Fset, call.Pos()) {
			return true
		}
		if name, ok := rootContextCall(pass, call); ok {
			if !s.sanctionedPos("ctxflow", call.Pos()) {
				consider(call.Pos(), &EffectTrace{Chain: []string{"context." + name}})
			}
			return true
		}
		if cs := s.table.LookupCall(pass.Info, call); cs != nil && cs.DropsContext != nil && !cs.HasCtxParam {
			if !s.sanctionedPos("ctxflow", call.Pos()) {
				consider(call.Pos(), cs.DropsContext.extend(cs.Display))
			}
		}
		return true
	})
	return best
}

// spawnsDetachedTrace reports a goroutine started without any
// context.Context value in reach, directly or transitively.
func (s *summarizer) spawnsDetachedTrace(pass *Pass, n *funcNode) *EffectTrace {
	var best *EffectTrace
	var bestPos token.Pos = -1
	consider := func(p token.Pos, tr *EffectTrace) {
		if tr != nil && (bestPos < 0 || p < bestPos) {
			best, bestPos = tr, p
		}
	}
	ast.Inspect(n.decl, func(node ast.Node) bool {
		switch node := node.(type) {
		case *ast.GoStmt:
			if !mentionsContextValue(pass, node.Call) && !s.sanctionedPos("ctxflow", node.Pos()) {
				consider(node.Pos(), &EffectTrace{Chain: []string{"go " + types.ExprString(node.Call.Fun)}})
			}
		case *ast.CallExpr:
			if cs := s.table.LookupCall(pass.Info, node); cs != nil && cs.SpawnsDetached != nil {
				if !s.sanctionedPos("ctxflow", node.Pos()) {
					consider(node.Pos(), cs.SpawnsDetached.extend(cs.Display))
				}
			}
		}
		return true
	})
	return best
}

// discardsErrorTrace reports a discarded error result (errcheck's rules:
// statement-position call of an error-returning function outside the
// exempt idioms), directly or transitively.
func (s *summarizer) discardsErrorTrace(pass *Pass, n *funcNode) *EffectTrace {
	var best *EffectTrace
	var bestPos token.Pos = -1
	consider := func(p token.Pos, tr *EffectTrace) {
		if tr != nil && (bestPos < 0 || p < bestPos) {
			best, bestPos = tr, p
		}
	}
	direct := func(call *ast.CallExpr, deferred bool) {
		if call == nil || !returnsError(pass, call) || exemptCall(pass, call, deferred) {
			return
		}
		if !s.sanctionedPos("errcheck", call.Pos()) {
			consider(call.Pos(), &EffectTrace{Chain: []string{calleeLabel(call)}})
		}
	}
	ast.Inspect(n.decl, func(node ast.Node) bool {
		switch node := node.(type) {
		case *ast.ExprStmt:
			if call, ok := node.X.(*ast.CallExpr); ok {
				direct(call, false)
			}
		case *ast.GoStmt:
			direct(node.Call, false)
		case *ast.DeferStmt:
			direct(node.Call, true)
		case *ast.CallExpr:
			if cs := s.table.LookupCall(pass.Info, node); cs != nil && cs.DiscardsError != nil {
				if !s.sanctionedPos("errcheck", node.Pos()) {
					consider(node.Pos(), cs.DiscardsError.extend(cs.Display))
				}
			}
		}
		return true
	})
	return best
}

// mergeBareSends records, per channel-typed parameter, whether fd sends
// on it outside any select — directly, or by handing the parameter to a
// callee that does. Reports whether a new parameter effect appeared.
func (s *summarizer) mergeBareSends(pass *Pass, n *funcNode, sum *FuncSummary) bool {
	params := paramIndexMap(pass, n.decl)
	if len(params) == 0 {
		return false
	}
	selectComms := make(map[ast.Stmt]bool)
	for _, file := range n.pkg.Files {
		if fileOf(pass.Fset, file, n.decl.Pos()) {
			selectComms = collectSelectComms(file)
			break
		}
	}
	changed := false
	record := func(idx int, tr *EffectTrace) {
		if tr == nil {
			return
		}
		if sum.BareSendParams == nil {
			sum.BareSendParams = make(map[int]*EffectTrace)
		}
		if _, done := sum.BareSendParams[idx]; !done {
			sum.BareSendParams[idx] = tr
			changed = true
		}
	}
	ast.Inspect(n.decl, func(node ast.Node) bool {
		switch node := node.(type) {
		case *ast.SendStmt:
			if selectComms[node] || s.sanctionedPos("sendguard", node.Pos()) {
				return true
			}
			if id, ok := unparen(node.Chan).(*ast.Ident); ok {
				if obj := pass.Info.Uses[id]; obj != nil {
					if idx, isParam := params[obj]; isParam {
						record(idx, &EffectTrace{Chain: []string{id.Name + " <- (send outside select)"}})
					}
				}
			}
		case *ast.CallExpr:
			cs := s.table.LookupCall(pass.Info, node)
			if cs == nil || len(cs.BareSendParams) == 0 || s.sanctionedPos("sendguard", node.Pos()) {
				return true
			}
			for ai, arg := range node.Args {
				tr, ok := cs.BareSendParams[ai]
				if !ok {
					continue
				}
				id, isIdent := unparen(arg).(*ast.Ident)
				if !isIdent {
					continue
				}
				obj := pass.Info.Uses[id]
				if obj == nil {
					continue
				}
				if idx, isParam := params[obj]; isParam {
					record(idx, tr.extend(cs.Display))
				}
			}
		}
		return true
	})
	return changed
}

// paramIndexMap maps fd's parameter objects to their positional index.
func paramIndexMap(pass *Pass, fd *ast.FuncDecl) map[types.Object]int {
	params := make(map[types.Object]int)
	idx := 0
	if fd.Type.Params != nil {
		for _, field := range fd.Type.Params.List {
			if len(field.Names) == 0 {
				idx++
				continue
			}
			for _, name := range field.Names {
				if obj := pass.Info.Defs[name]; obj != nil {
					params[obj] = idx
				}
				idx++
			}
		}
	}
	return params
}

// declHasContextParam reports whether the declaration receives a
// context.Context (parameter or receiver), using the unit's type info.
func declHasContextParam(pkg *Package, fd *ast.FuncDecl) bool {
	check := func(fl *ast.FieldList) bool {
		if fl == nil {
			return false
		}
		for _, f := range fl.List {
			if t := pkg.Info.TypeOf(f.Type); isContextType(t) {
				return true
			}
		}
		return false
	}
	return check(fd.Type.Params) || check(fd.Recv)
}

// fileOf reports whether pos lies within file.
func fileOf(fset *token.FileSet, file *ast.File, p token.Pos) bool {
	return file.FileStart <= p && p < file.FileEnd
}

// isSliceOrArray reports whether t's underlying type is a sequence whose
// element order is observable.
func isSliceOrArray(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Slice, *types.Array:
		return true
	}
	return false
}
