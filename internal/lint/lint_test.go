package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestFindModuleRoot(t *testing.T) {
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatalf("FindModuleRoot: %v", err)
	}
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		t.Errorf("returned root %s has no go.mod: %v", root, err)
	}
	// Walking up from a nested directory must land on the same root.
	nested, err := FindModuleRoot(filepath.Join("testdata", "src", "floateq"))
	if err != nil {
		t.Fatalf("FindModuleRoot(nested): %v", err)
	}
	if nested != root {
		t.Errorf("nested lookup found %s, want %s", nested, root)
	}
}

func TestFindModuleRootMissing(t *testing.T) {
	if _, err := FindModuleRoot(t.TempDir()); err == nil {
		t.Error("expected an error for a directory tree without go.mod")
	}
}

func TestModulePath(t *testing.T) {
	dir := t.TempDir()
	gomod := filepath.Join(dir, "go.mod")
	if err := os.WriteFile(gomod, []byte("module example.com/m\n\ngo 1.21\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := modulePath(gomod)
	if err != nil {
		t.Fatalf("modulePath: %v", err)
	}
	if got != "example.com/m" {
		t.Errorf("modulePath = %q, want example.com/m", got)
	}
	if err := os.WriteFile(gomod, []byte("go 1.21\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := modulePath(gomod); err == nil {
		t.Error("expected an error for a go.mod without a module directive")
	}
}

func TestLoadDirRejectsEmptyDir(t *testing.T) {
	if _, _, err := LoadDir(t.TempDir(), "fixture/empty"); err == nil {
		t.Error("expected an error for a directory without Go files")
	}
}

func TestLoadDirRejectsTypeErrors(t *testing.T) {
	dir := t.TempDir()
	src := "package broken\n\nfunc f() int { return \"not an int\" }\n"
	if err := os.WriteFile(filepath.Join(dir, "broken.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := LoadDir(dir, "fixture/broken"); err == nil {
		t.Error("expected a type error to fail the load")
	}
}

func TestLoadModuleRejectsNoGoFiles(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte("module example.com/empty\n\ngo 1.21\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := LoadModule(dir)
	if err == nil {
		t.Fatal("expected an error for a module without Go files")
	}
	if !strings.Contains(err.Error(), "no Go files") {
		t.Errorf("error = %v, want it to say the module has no Go files", err)
	}
}

func TestLoadModuleReportsTypeErrorsWithPositions(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte("module example.com/broken\n\ngo 1.21\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	src := `package broken

func f() int { return "a" }
func g() int { return "b" }
func h() int { return "c" }
func i() int { return "d" }
`
	if err := os.WriteFile(filepath.Join(dir, "broken.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := LoadModule(dir)
	if err == nil {
		t.Fatal("expected type errors to fail the load")
	}
	msg := err.Error()
	if !strings.Contains(msg, "broken.go:3") {
		t.Errorf("error lacks the first error position: %v", err)
	}
	if strings.Count(msg, "broken.go:") != 3 || !strings.Contains(msg, "1 more") {
		t.Errorf("error should show three positioned errors and the remainder count: %v", err)
	}
}

// parseOne parses src as a single in-memory file for directive tests.
func parseOne(t *testing.T, fset *token.FileSet, src string) *ast.File {
	t.Helper()
	f, err := parser.ParseFile(fset, "dir_test_src.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return f
}

func TestCollectDirectives(t *testing.T) {
	src := `package p

func f() {
	//edlint:ignore floateq a documented reason
	_ = 1
	//edlint:ignore floateq
	_ = 2
	//edlint:ignore
	_ = 3
	//edlint:ignore bogus some reason
	_ = 4
}
`
	fset := token.NewFileSet()
	f := parseOne(t, fset, src)
	known := map[string]bool{"floateq": true}
	dirs, malformed := collectDirectives(fset, []*ast.File{f}, known)
	if len(dirs) != 1 {
		t.Fatalf("got %d well-formed directives, want 1: %+v", len(dirs), dirs)
	}
	if dirs[0].analyzer != "floateq" || dirs[0].from != 4 || dirs[0].to != 5 {
		t.Errorf("directive = %+v, want floateq covering lines 4-5", dirs[0])
	}
	if len(malformed) != 3 {
		t.Fatalf("got %d malformed diagnostics, want 3: %v", len(malformed), malformed)
	}
	wants := []string{"without a reason", "malformed directive", "unknown analyzer bogus"}
	for i, w := range wants {
		if !strings.Contains(malformed[i].Message, w) {
			t.Errorf("malformed[%d] = %q, want it to mention %q", i, malformed[i].Message, w)
		}
	}
}

func TestSuppressCoversLineAndLineBelow(t *testing.T) {
	mk := func(line int, analyzer string) Diagnostic {
		return Diagnostic{
			Pos:      token.Position{Filename: "f.go", Line: line, Column: 1},
			Analyzer: analyzer,
			Message:  "m",
		}
	}
	dirs := []directive{{analyzer: "floateq", file: "f.go", from: 10, to: 11}}
	diags := []Diagnostic{
		mk(10, "floateq"),  // same line: suppressed
		mk(11, "floateq"),  // line below: suppressed
		mk(12, "floateq"),  // two lines below: kept
		mk(11, "divguard"), // other analyzer: kept
	}
	kept := suppress(diags, dirs)
	if len(kept) != 2 {
		t.Fatalf("kept %d diagnostics, want 2: %v", len(kept), kept)
	}
	if kept[0].Pos.Line != 12 || kept[1].Analyzer != "divguard" {
		t.Errorf("unexpected survivors: %v", kept)
	}
}

func TestCollectDirectivesScopes(t *testing.T) {
	src := `package p

//edlint:ignore-file divguard generated lookup tables divide by constants

//edlint:ignore-block floateq the loop compares table entries bit-exactly
func f() {
	for i := 0; i < 3; i++ {
		_ = i
	}
}

//edlint:ignore-everything floateq no such scope
func g() {}
`
	fset := token.NewFileSet()
	f := parseOne(t, fset, src)
	known := map[string]bool{"floateq": true, "divguard": true}
	dirs, malformed := collectDirectives(fset, []*ast.File{f}, known)
	if len(dirs) != 2 {
		t.Fatalf("got %d directives, want 2: %+v", len(dirs), dirs)
	}
	if d := dirs[0]; d.analyzer != "divguard" || d.from != 1 || d.to != wholeFile {
		t.Errorf("file directive = %+v, want divguard covering the whole file", d)
	}
	// The block directive sits above func f (lines 6-10): it must cover
	// exactly that span, not just two lines and not the whole file.
	if d := dirs[1]; d.analyzer != "floateq" || d.from != 6 || d.to != 10 {
		t.Errorf("block directive = %+v, want floateq covering lines 6-10", d)
	}
	if len(malformed) != 1 || !strings.Contains(malformed[0].Message, "unknown ignore scope") {
		t.Errorf("malformed = %v, want one unknown-scope diagnostic", malformed)
	}
}

func TestSuppressScopes(t *testing.T) {
	mk := func(line int, analyzer string) Diagnostic {
		return Diagnostic{
			Pos:      token.Position{Filename: "f.go", Line: line, Column: 1},
			Analyzer: analyzer,
			Message:  "m",
		}
	}
	dirs := []directive{
		{analyzer: "floateq", file: "f.go", from: 6, to: 10},         // block
		{analyzer: "divguard", file: "f.go", from: 1, to: wholeFile}, // file
	}
	diags := []Diagnostic{
		mk(6, "floateq"),    // block start: suppressed
		mk(10, "floateq"),   // block end: suppressed
		mk(11, "floateq"),   // past the block: kept
		mk(999, "divguard"), // anywhere in the file: suppressed
		mk(7, "logdomain"),  // other analyzer inside the block: kept
	}
	kept := suppress(diags, dirs)
	if len(kept) != 2 {
		t.Fatalf("kept %d diagnostics, want 2: %v", len(kept), kept)
	}
	if kept[0].Pos.Line != 11 || kept[1].Analyzer != "logdomain" {
		t.Errorf("unexpected survivors: %v", kept)
	}
}

func TestBlockSpanFallsBackWithoutNode(t *testing.T) {
	src := `package p

//edlint:ignore-block floateq floats below are table constants

// (nothing starts on the next line either)

var x = 1.0
`
	fset := token.NewFileSet()
	f := parseOne(t, fset, src)
	dirs, malformed := collectDirectives(fset, []*ast.File{f}, map[string]bool{"floateq": true})
	if len(malformed) != 0 {
		t.Fatalf("unexpected malformed diagnostics: %v", malformed)
	}
	if len(dirs) != 1 || dirs[0].from != 3 || dirs[0].to != 4 {
		t.Errorf("directive = %+v, want line-scope fallback covering 3-4", dirs)
	}
}

func TestDiagnosticString(t *testing.T) {
	d := Diagnostic{
		Pos:      token.Position{Filename: "x.go", Line: 3, Column: 7},
		Analyzer: "floateq",
		Message:  "exact comparison",
	}
	want := "x.go:3:7: floateq: exact comparison"
	if got := d.String(); got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestSelect(t *testing.T) {
	all, err := Select("")
	if err != nil {
		t.Fatalf("Select(\"\"): %v", err)
	}
	if len(all) != len(DefaultAnalyzers()) {
		t.Errorf("empty spec selected %d analyzers, want the full suite of %d", len(all), len(DefaultAnalyzers()))
	}
	two, err := Select("floateq,libpanic")
	if err != nil {
		t.Fatalf("Select: %v", err)
	}
	if len(two) != 2 || two[0].Name != "floateq" || two[1].Name != "libpanic" {
		t.Errorf("Select(floateq,libpanic) = %v", names(two))
	}
	if _, err := Select("nosuch"); err == nil {
		t.Error("expected an error for an unknown analyzer name")
	}
}

func names(as []*Analyzer) []string {
	out := make([]string, len(as))
	for i, a := range as {
		out[i] = a.Name
	}
	return out
}
