// Package lint is Extra-Deep's project-native static-analysis framework
// ("edlint"). It parses and type-checks the whole module with nothing but
// the standard library (go/parser, go/ast, go/types) and runs a suite of
// analyzers tuned to the failure modes that silently corrupt empirical
// performance models: float equality, unguarded divisions, logarithm
// domain errors, NaN/Inf escaping exported numeric APIs, discarded errors,
// panics in library code — and, via a small intra-procedural dataflow
// core (dataflow.go) that tracks which values descend from a
// nondeterminism source, map-iteration order reaching output (maporder),
// goroutines outside context cancellation (ctxflow), wall-clock and rand
// reads in the deterministic core (wallclock), and unguarded concurrency
// acquire/release shapes (sendguard).
//
// The framework mirrors the shape of golang.org/x/tools/go/analysis at a
// fraction of its surface: an Analyzer is a named Run function over a Pass,
// a Pass wraps one type-checked package, and diagnostics carry positions.
// Findings are suppressed with a mandatory reason at one of three scopes
//
//	//edlint:ignore <analyzer> <reason>        // its line and the line below
//	//edlint:ignore-block <analyzer> <reason>  // the syntax node underneath
//	//edlint:ignore-file <analyzer> <reason>   // the whole file
//
// and malformed directives are themselves diagnostics (see suppress.go).
//
// Tier-1 enforcement lives in selfcheck_test.go, which loads the
// surrounding module and fails `go test ./...` on any finding, so the
// repository can never regress below a clean lint; verify.sh additionally
// budgets the full-repo run (edlint-bench) and BENCH_lint.json tracks its
// cost via BenchmarkLintRepo.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Diagnostic is one positioned finding of one analyzer.
type Diagnostic struct {
	// Pos is the resolved source position of the finding.
	Pos token.Position
	// Analyzer is the name of the analyzer that produced the finding.
	Analyzer string
	// Message describes the finding and, where possible, the fix.
	Message string
}

// String formats the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Analyzer is one named static-analysis pass.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and ignore directives.
	Name string
	// Doc is a one-paragraph description of what the analyzer reports.
	Doc string
	// Run inspects the Pass's package and reports findings via Reportf.
	Run func(*Pass)
}

// Pass carries one type-checked package through one analyzer run.
type Pass struct {
	// Analyzer is the pass's analyzer.
	Analyzer *Analyzer
	// Fset resolves token positions for the package's files.
	Fset *token.FileSet
	// Files are the package's parsed files (with comments).
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// Info holds the type-checker's expression/object maps.
	Info *types.Info
	// Path is the package's import path; analysis units that include
	// test files keep the import path of the package under test.
	Path string
	// IsTestUnit reports whether the unit contains _test.go files.
	IsTestUnit bool
	// Sums is the module-wide interprocedural summary table (edlint v3).
	// It is shared by every pass of one run; analyzers use it to resolve
	// effects laundered through helpers. May be nil in reduced harnesses;
	// lookups on a nil table resolve to nothing.
	Sums *SummaryTable

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the type of expression e, or nil when unknown.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.Info.TypeOf(e) }

// Run executes the analyzers over every analysis unit of the module whose
// package passes the filter (a nil filter selects everything), applies
// //edlint:ignore suppression, and returns the surviving diagnostics in
// deterministic (position, analyzer) order. Malformed ignore directives
// are reported as "ignore" diagnostics.
func Run(mod *Module, analyzers []*Analyzer, filter func(*Package) bool) []Diagnostic {
	// Directives are validated against the whole default suite, not just the
	// analyzers selected for this run: an //edlint:ignore logdomain directive
	// is well-formed even when only floateq is running.
	known := make(map[string]bool, len(analyzers))
	for _, a := range DefaultAnalyzers() {
		known[a.Name] = true
	}
	for _, a := range analyzers {
		known[a.Name] = true
	}
	// The summary table is module-wide by construction: it must see every
	// function body even when the filter narrows the reported packages,
	// or a cross-package trace would dead-end at the filter boundary.
	sums := Summarize(mod)
	var all []Diagnostic
	for _, pkg := range mod.Pkgs {
		if filter != nil && !filter(pkg) {
			continue
		}
		var diags []Diagnostic
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:   a,
				Fset:       mod.Fset,
				Files:      pkg.Files,
				Pkg:        pkg.Types,
				Info:       pkg.Info,
				Path:       pkg.Path,
				IsTestUnit: pkg.IsTest,
				Sums:       sums,
				diags:      &diags,
			}
			a.Run(pass)
		}
		dirs, malformed := collectDirectives(mod.Fset, pkg.Files, known)
		all = append(all, suppress(diags, dirs)...)
		all = append(all, malformed...)
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return all
}
