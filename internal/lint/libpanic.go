package lint

import (
	"go/ast"
	"go/types"
)

// LibPanic reports panic calls in library code. Extra-Deep's packages are
// embedded in long-running services and batch pipelines; a panic in a leaf
// numeric routine tears down an entire modeling run that an error return
// would have degraded gracefully. Panics remain acceptable in package
// main (top-level CLIs may crash on programmer error) and in test files
// (the testing runner converts them into failures).
var LibPanic = &Analyzer{
	Name: "libpanic",
	Doc: "reports panic(...) in non-main, non-test library code; return " +
		"an error instead",
	Run: runLibPanic,
}

func runLibPanic(pass *Pass) {
	if pass.Pkg.Name() == "main" {
		return
	}
	for _, file := range pass.Files {
		if inTestFile(pass.Fset, file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			id, ok := unparen(call.Fun).(*ast.Ident)
			if !ok || id.Name != "panic" {
				return true
			}
			if obj, ok := pass.Info.Uses[id].(*types.Builtin); !ok || obj.Name() != "panic" {
				return true
			}
			pass.Reportf(call.Pos(), "panic in library code; return an error so callers can degrade gracefully")
			return true
		})
	}
}
