package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FloatEq reports == and != between floating-point operands. Exact float
// comparison silently breaks under the rounding that pervades Extra-Deep's
// aggregation and model-fitting arithmetic; comparisons should go through
// mathutil.AlmostEqual (or an explicit tolerance).
//
// One idiom is exempt: comparing against the literal constant 0. An exact
// zero test is the canonical guard before a division and is well-defined
// (0.0 has an exact representation, and values that are "almost zero"
// still divide safely). Comparisons where both sides are compile-time
// constants are likewise exempt — they are decided at compile time, not
// subject to runtime rounding.
var FloatEq = &Analyzer{
	Name: "floateq",
	Doc: "reports ==/!= on floating-point operands; compare with " +
		"mathutil.AlmostEqual or an explicit tolerance instead " +
		"(exact comparison against the literal 0 is exempt)",
	Run: runFloatEq,
}

func runFloatEq(pass *Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			tx, ty := pass.TypeOf(be.X), pass.TypeOf(be.Y)
			if tx == nil || ty == nil || (!isFloat(tx) && !isFloat(ty)) {
				return true
			}
			if isZeroConstant(pass.Info, be.X) || isZeroConstant(pass.Info, be.Y) {
				return true
			}
			_, cx := constantValue(pass.Info, be.X)
			_, cy := constantValue(pass.Info, be.Y)
			if cx && cy {
				return true
			}
			pass.Reportf(be.OpPos,
				"floating-point %s comparison of %s and %s; use mathutil.AlmostEqual or an explicit tolerance",
				be.Op, types.ExprString(be.X), types.ExprString(be.Y))
			return true
		})
	}
}
