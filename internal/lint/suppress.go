package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// ignorePrefix introduces a suppression directive. The full syntax is
//
//	//edlint:ignore <analyzer> <reason>
//
// and the directive silences findings of <analyzer> on its own line and on
// the line directly below it, so it works both as a trailing comment and
// as a standalone comment above the offending statement. The reason is
// mandatory: a suppression that cannot say why it exists is itself a bug.
const ignorePrefix = "edlint:ignore"

// directive is one parsed ignore directive.
type directive struct {
	analyzer string
	file     string
	line     int
}

// collectDirectives parses every //edlint:ignore directive of the files.
// Malformed directives (missing analyzer, missing reason, or naming an
// analyzer that does not exist) are returned as diagnostics so they fail
// the lint instead of silently suppressing nothing.
func collectDirectives(fset *token.FileSet, files []*ast.File, known map[string]bool) ([]directive, []Diagnostic) {
	var dirs []directive
	var malformed []Diagnostic
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//"+ignorePrefix)
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				fields := strings.Fields(text)
				switch {
				case len(fields) == 0:
					malformed = append(malformed, Diagnostic{
						Pos:      pos,
						Analyzer: "ignore",
						Message:  "malformed directive: want //edlint:ignore <analyzer> <reason>",
					})
					continue
				case len(fields) < 2:
					malformed = append(malformed, Diagnostic{
						Pos:      pos,
						Analyzer: "ignore",
						Message:  "suppression of " + fields[0] + " without a reason; append one",
					})
					continue
				case len(known) > 0 && !known[fields[0]]:
					malformed = append(malformed, Diagnostic{
						Pos:      pos,
						Analyzer: "ignore",
						Message:  "unknown analyzer " + fields[0] + " in ignore directive",
					})
					continue
				}
				dirs = append(dirs, directive{analyzer: fields[0], file: pos.Filename, line: pos.Line})
			}
		}
	}
	return dirs, malformed
}

// suppress drops diagnostics covered by a directive: same file, same
// analyzer, and on the directive's line or the line directly below it.
func suppress(diags []Diagnostic, dirs []directive) []Diagnostic {
	if len(dirs) == 0 {
		return diags
	}
	type key struct {
		file     string
		line     int
		analyzer string
	}
	covered := make(map[key]bool, 2*len(dirs))
	for _, d := range dirs {
		covered[key{d.file, d.line, d.analyzer}] = true
		covered[key{d.file, d.line + 1, d.analyzer}] = true
	}
	kept := diags[:0]
	for _, d := range diags {
		if covered[key{d.Pos.Filename, d.Pos.Line, d.Analyzer}] {
			continue
		}
		kept = append(kept, d)
	}
	return kept
}
