package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// Suppression directives silence findings with a mandatory reason — a
// suppression that cannot say why it exists is itself a bug. Three scopes
// exist, from narrowest to widest:
//
//	//edlint:ignore <analyzer> <reason>
//	//edlint:ignore-block <analyzer> <reason>
//	//edlint:ignore-file <analyzer> <reason>
//
// The line form covers its own line and the line directly below it, so it
// works both as a trailing comment and as a standalone comment above the
// offending statement. The block form covers the whole source span of the
// largest syntax node starting on its line or the line below — a trailing
// comment on a `for` header or a standalone comment above a function
// covers the entire loop or function. The file form covers its file.
// Malformed directives (missing analyzer, missing reason, unknown
// analyzer, unknown scope) are themselves diagnostics so they fail the
// lint instead of silently suppressing nothing.
const ignorePrefix = "edlint:ignore"

// directive is one parsed ignore directive, resolved to the inclusive
// line range [from, to] of its file that it covers.
type directive struct {
	analyzer string
	file     string
	from, to int
}

// wholeFile marks a directive's `to` line as unbounded.
const wholeFile = 1 << 30

// collectDirectives parses every //edlint:ignore[-block|-file] directive
// of the files and resolves each to the line range it covers. Malformed
// directives are returned as "ignore" diagnostics.
func collectDirectives(fset *token.FileSet, files []*ast.File, known map[string]bool) ([]directive, []Diagnostic) {
	var dirs []directive
	var malformed []Diagnostic
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//"+ignorePrefix)
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				scope := "line"
				switch {
				case strings.HasPrefix(text, "-block"):
					scope, text = "block", strings.TrimPrefix(text, "-block")
				case strings.HasPrefix(text, "-file"):
					scope, text = "file", strings.TrimPrefix(text, "-file")
				case strings.HasPrefix(text, "-"):
					malformed = append(malformed, Diagnostic{
						Pos:      pos,
						Analyzer: "ignore",
						Message:  "unknown ignore scope " + strings.Fields(text)[0] + ": want //edlint:ignore, //edlint:ignore-block or //edlint:ignore-file",
					})
					continue
				}
				fields := strings.Fields(text)
				switch {
				case len(fields) == 0:
					malformed = append(malformed, Diagnostic{
						Pos:      pos,
						Analyzer: "ignore",
						Message:  "malformed directive: want //edlint:ignore <analyzer> <reason>",
					})
					continue
				case len(fields) < 2:
					malformed = append(malformed, Diagnostic{
						Pos:      pos,
						Analyzer: "ignore",
						Message:  "suppression of " + fields[0] + " without a reason; append one",
					})
					continue
				case len(known) > 0 && !known[fields[0]]:
					malformed = append(malformed, Diagnostic{
						Pos:      pos,
						Analyzer: "ignore",
						Message:  "unknown analyzer " + fields[0] + " in ignore directive",
					})
					continue
				}
				d := directive{analyzer: fields[0], file: pos.Filename}
				switch scope {
				case "line":
					d.from, d.to = pos.Line, pos.Line+1
				case "block":
					d.from, d.to = blockSpan(fset, f, pos.Line)
				case "file":
					d.from, d.to = 1, wholeFile
				}
				dirs = append(dirs, d)
			}
		}
	}
	return dirs, malformed
}

// blockSpan resolves the line range an ignore-block directive on dline
// covers: the full span of the largest syntax node that starts on dline
// (trailing comment on a statement or loop header) or on dline+1
// (standalone comment above it). With no such node — a directive floating
// in blank space — it degrades to the line form's coverage.
func blockSpan(fset *token.FileSet, f *ast.File, dline int) (int, int) {
	var best ast.Node
	bestEnd := -1
	ast.Inspect(f, func(n ast.Node) bool {
		switch n.(type) {
		case nil:
			return false
		case *ast.Comment, *ast.CommentGroup:
			return false // the directive itself is not a coverable block
		}
		if start := fset.Position(n.Pos()).Line; start == dline || start == dline+1 {
			if end := fset.Position(n.End()).Line; end > bestEnd {
				best, bestEnd = n, end
			}
		}
		return true
	})
	if best == nil {
		return dline, dline + 1
	}
	return fset.Position(best.Pos()).Line, bestEnd
}

// suppress drops diagnostics covered by a directive: same file, same
// analyzer, line within the directive's range.
func suppress(diags []Diagnostic, dirs []directive) []Diagnostic {
	if len(dirs) == 0 {
		return diags
	}
	kept := diags[:0]
	for _, d := range diags {
		covered := false
		for _, dir := range dirs {
			if dir.analyzer == d.Analyzer && dir.file == d.Pos.Filename &&
				d.Pos.Line >= dir.from && d.Pos.Line <= dir.to {
				covered = true
				break
			}
		}
		if !covered {
			kept = append(kept, d)
		}
	}
	return kept
}
