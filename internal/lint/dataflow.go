package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// This file is edlint's intra-procedural dataflow core: a small taint
// analysis that computes, per function, the reaching set of
// "nondeterministic" values — values whose bits or ordering can differ
// between two runs on identical input. Four source classes are tracked:
//
//   - map iteration order (the key/value variables of a range over a map);
//   - sync.Map.Range iteration order (the callback's parameters);
//   - wall-clock reads (time.Now, time.Since, time.Until);
//   - pseudo-randomness (any call into math/rand, package-level or on a
//     *rand.Rand).
//
// Propagation is a forward fixpoint over assignments: a variable assigned
// from a tainted expression becomes tainted with the same source, and a
// range over a tainted collection taints its iteration variables. The
// analysis is deliberately intra-procedural and may-taint (no
// path-sensitivity, no sanitization except sorting, which the analyzers
// model themselves): it answers "could this value descend from a
// nondeterministic source?", which is exactly the question the maporder
// and wallclock analyzers ask.

// sourceKind classifies a nondeterminism source.
type sourceKind int

// The tracked source classes.
const (
	srcMapRange sourceKind = iota
	srcSyncMapRange
	srcTime
	srcRand
)

// String names the source class for diagnostics.
func (k sourceKind) String() string {
	switch k {
	case srcMapRange:
		return "map iteration order"
	case srcSyncMapRange:
		return "sync.Map.Range iteration order"
	case srcTime:
		return "wall-clock time"
	case srcRand:
		return "math/rand"
	default:
		return "nondeterministic value"
	}
}

// taintSource is one nondeterministic value origin inside a function.
type taintSource struct {
	kind sourceKind
	// pos is where the source is introduced (the call or range keyword).
	pos token.Pos
	// desc renders the source for messages, e.g. "time.Now()" or
	// "range over m". For interprocedural sources it is the callee's
	// display name ("formatRows").
	desc string
	// interproc marks a source introduced by a call to a function whose
	// summary carries the effect (edlint v3); trace is the callee's chain
	// down to the root cause and calleePkg its defining unit's path, so
	// analyzers can skip call sites whose callee already reports the
	// effect intra-procedurally.
	interproc bool
	trace     []string
	calleePkg string
}

// mapOrdered reports whether the source is a map-iteration-order class.
func (s *taintSource) mapOrdered() bool {
	return s.kind == srcMapRange || s.kind == srcSyncMapRange
}

// asTrace renders the source as an effect trace: the source description,
// prefixed by the callee chain for interprocedural sources.
func (s *taintSource) asTrace() *EffectTrace {
	return &EffectTrace{Chain: append([]string{s.desc}, s.trace...)}
}

// via renders the cross-function chain for a finding at a call site, with
// the given head elements (typically the enclosing function) first.
func (s *taintSource) via(head ...string) string {
	return s.asTrace().render(head...)
}

// flowSet is the result of the reaching analysis for one function
// declaration: the sources it introduces and the variable objects that may
// carry a value descending from each.
type flowSet struct {
	pass *Pass
	// sources lists every nondeterminism source in the function, in
	// source order.
	sources []*taintSource
	// tainted maps a variable object to the source it descends from (the
	// first source reaching it; a variable merged from several sources
	// keeps the one that reached it first, which is enough for reporting).
	tainted map[types.Object]*taintSource
}

// taintFunc runs the reaching analysis over one function declaration.
func taintFunc(pass *Pass, fn *ast.FuncDecl) *flowSet {
	f := &flowSet{pass: pass, tainted: make(map[types.Object]*taintSource)}
	f.seed(fn)
	// Forward fixpoint: each pass propagates taint one assignment deeper.
	// Chains are short in practice; the node count bounds the iteration for
	// pathological inputs.
	limit := 0
	ast.Inspect(fn, func(n ast.Node) bool { limit++; return true })
	for i := 0; i < limit; i++ {
		if !f.propagate(fn) {
			break
		}
	}
	return f
}

// seed records every source the function introduces and taints the
// variables directly bound to one (range variables, callback parameters).
func (f *flowSet) seed(fn *ast.FuncDecl) {
	ast.Inspect(fn, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.RangeStmt:
			if t := f.pass.TypeOf(n.X); t != nil && isMapType(t) {
				src := &taintSource{kind: srcMapRange, pos: n.Pos(), desc: "range over " + types.ExprString(n.X)}
				f.sources = append(f.sources, src)
				f.mark(n.Key, src)
				f.mark(n.Value, src)
			}
		case *ast.CallExpr:
			if src := nondetCallSource(f.pass, n); src != nil {
				f.sources = append(f.sources, src)
			} else if src := summaryCallSource(f.pass, n); src != nil {
				f.sources = append(f.sources, src)
			}
			if lit := syncMapRangeCallback(f.pass, n); lit != nil {
				src := &taintSource{kind: srcSyncMapRange, pos: n.Pos(), desc: types.ExprString(n.Fun)}
				f.sources = append(f.sources, src)
				for _, field := range lit.Type.Params.List {
					for _, name := range field.Names {
						if obj := f.pass.Info.Defs[name]; obj != nil {
							f.tainted[obj] = src
						}
					}
				}
			}
		}
		return true
	})
}

// propagate performs one forward pass over the function's assignments and
// range statements, returning whether any new variable became tainted.
func (f *flowSet) propagate(fn *ast.FuncDecl) bool {
	changed := false
	ast.Inspect(fn, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) == len(n.Rhs) {
				for i, rhs := range n.Rhs {
					if src := f.exprSource(rhs); src != nil {
						changed = f.markChanged(n.Lhs[i], src) || changed
					}
				}
			} else if len(n.Rhs) == 1 {
				// x, y := f() — one tainted result taints every target.
				if src := f.exprSource(n.Rhs[0]); src != nil {
					for _, lhs := range n.Lhs {
						changed = f.markChanged(lhs, src) || changed
					}
				}
			}
			// Compound assignment (x += tainted) taints the target too.
			if n.Tok != token.ASSIGN && n.Tok != token.DEFINE && len(n.Rhs) == 1 {
				if src := f.exprSource(n.Rhs[0]); src != nil {
					for _, lhs := range n.Lhs {
						changed = f.markChanged(lhs, src) || changed
					}
				}
			}
		case *ast.ValueSpec:
			for i, v := range n.Values {
				src := f.exprSource(v)
				if src == nil {
					continue
				}
				if len(n.Values) == len(n.Names) {
					changed = f.markChanged(n.Names[i], src) || changed
				} else {
					for _, name := range n.Names {
						changed = f.markChanged(name, src) || changed
					}
				}
			}
		case *ast.RangeStmt:
			// Ranging over a tainted collection taints the iteration
			// variables (order and contents both descend from the source).
			if src := f.exprSource(n.X); src != nil {
				changed = f.markChanged(n.Key, src) || changed
				changed = f.markChanged(n.Value, src) || changed
			}
		}
		return true
	})
	return changed
}

// mark taints the object bound to the identifier e (no-op otherwise).
func (f *flowSet) mark(e ast.Expr, src *taintSource) { f.markChanged(e, src) }

// markChanged taints e's object and reports whether it was newly tainted.
func (f *flowSet) markChanged(e ast.Expr, src *taintSource) bool {
	id, ok := unparen(e).(*ast.Ident)
	if !ok || id.Name == "_" {
		return false
	}
	obj := f.pass.Info.Defs[id]
	if obj == nil {
		obj = f.pass.Info.Uses[id]
	}
	if obj == nil {
		return false
	}
	if _, done := f.tainted[obj]; done {
		return false
	}
	f.tainted[obj] = src
	return true
}

// exprSource returns the source a value of e may descend from: e mentions
// a tainted variable, or contains a nondeterministic call.
func (f *flowSet) exprSource(e ast.Expr) *taintSource {
	if e == nil {
		return nil
	}
	var found *taintSource
	ast.Inspect(e, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		switch n := n.(type) {
		case *ast.Ident:
			if obj := f.pass.Info.Uses[n]; obj != nil {
				if src, ok := f.tainted[obj]; ok {
					found = src
				}
			}
		case *ast.CallExpr:
			if src := nondetCallSource(f.pass, n); src != nil {
				found = src
			} else if src := summaryCallSource(f.pass, n); src != nil {
				found = src
			}
		}
		return found == nil
	})
	return found
}

// summaryCallSource classifies a call as an interprocedural
// nondeterminism source: the statically resolved callee's summary says it
// reads the clock, draws randomness, or returns a map-ordered sequence.
// The returned source carries the callee's trace so findings can render
// the whole cross-function chain.
func summaryCallSource(pass *Pass, call *ast.CallExpr) *taintSource {
	cs := pass.Sums.LookupCall(pass.Info, call)
	if cs == nil {
		return nil
	}
	mk := func(kind sourceKind, eff *EffectTrace) *taintSource {
		return &taintSource{
			kind:      kind,
			pos:       call.Pos(),
			desc:      cs.Display,
			interproc: true,
			trace:     eff.Chain,
			calleePkg: cs.Pkg,
		}
	}
	// Order matters only for values carrying several effects at once; map
	// order wins because it is the effect the value's consumers observe.
	switch {
	case cs.OrderedReturn != nil:
		return mk(srcMapRange, cs.OrderedReturn)
	case cs.ReadsClock != nil:
		return mk(srcTime, cs.ReadsClock)
	case cs.ReadsRand != nil:
		return mk(srcRand, cs.ReadsRand)
	}
	return nil
}

// nondetCallSource classifies call as a wall-clock or randomness source.
// Map-order sources are structural (range statements) and handled by seed.
func nondetCallSource(pass *Pass, call *ast.CallExpr) *taintSource {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	// Package-level calls: time.Now/Since/Until, math/rand.*.
	if id, ok := unparen(sel.X).(*ast.Ident); ok {
		if pn, ok := pass.Info.Uses[id].(*types.PkgName); ok {
			switch pn.Imported().Path() {
			case "time":
				switch sel.Sel.Name {
				case "Now", "Since", "Until":
					return &taintSource{kind: srcTime, pos: call.Pos(), desc: "time." + sel.Sel.Name}
				}
				return nil
			case "math/rand", "math/rand/v2":
				return &taintSource{kind: srcRand, pos: call.Pos(), desc: "rand." + sel.Sel.Name}
			}
		}
	}
	// Method calls on *rand.Rand values.
	if selInfo := pass.Info.Selections[sel]; selInfo != nil && selInfo.Kind() == types.MethodVal {
		if named := namedType(selInfo.Recv()); named != nil {
			pkg := named.Obj().Pkg()
			if pkg != nil && (pkg.Path() == "math/rand" || pkg.Path() == "math/rand/v2") {
				return &taintSource{kind: srcRand, pos: call.Pos(), desc: types.ExprString(call.Fun)}
			}
		}
	}
	return nil
}

// syncMapRangeCallback returns the function-literal callback of a
// (*sync.Map).Range call, or nil when call is something else.
func syncMapRangeCallback(pass *Pass, call *ast.CallExpr) *ast.FuncLit {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Range" || len(call.Args) != 1 {
		return nil
	}
	recv := pass.TypeOf(sel.X)
	if recv == nil || !isNamedInPackage(recv, "sync", "Map") {
		return nil
	}
	lit, ok := unparen(call.Args[0]).(*ast.FuncLit)
	if !ok || lit.Type.Params == nil {
		return nil
	}
	return lit
}

// isMapType reports whether t's underlying type is a map.
func isMapType(t types.Type) bool {
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// namedType unwraps pointers and returns t's named type, or nil.
func namedType(t types.Type) *types.Named {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

// isNamedInPackage reports whether t (possibly behind a pointer) is the
// named type pkg.name.
func isNamedInPackage(t types.Type, pkg, name string) bool {
	named := namedType(t)
	if named == nil || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Path() == pkg && named.Obj().Name() == name
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	return t != nil && isNamedInPackage(t, "context", "Context")
}
