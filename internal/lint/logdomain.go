package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// LogDomain reports calls to math.Log, math.Log2, math.Log10, math.Sqrt
// and math.Pow whose argument is not visibly inside the function's domain.
// A non-positive log argument or a negative sqrt/pow base yields NaN, the
// exact class of silent corruption that invalidates a PMNF fit without
// any error surfacing.
//
// A call is accepted when:
//   - the argument is a compile-time constant inside the domain;
//   - the argument is structurally non-negative (math.Abs(...), x*x, or a
//     len(...) conversion) — for Sqrt, where non-negativity suffices;
//   - some value used by the argument was compared against anything
//     earlier in the function (the guard-then-use idiom); or
//   - for Pow, the exponent is an integer constant (negative bases are
//     well-defined for integer exponents).
//
// Test files are exempt: they feed known in-domain constants.
var LogDomain = &Analyzer{
	Name: "logdomain",
	Doc: "reports math.Log/Log2/Log10/Sqrt/Pow calls whose argument has " +
		"no positivity guard earlier in the function",
	Run: runLogDomain,
}

func runLogDomain(pass *Pass) {
	for _, file := range pass.Files {
		if inTestFile(pass.Fset, file.Pos()) {
			// Tests feed known in-domain constants; the guard discipline
			// is a library-code contract.
			continue
		}
		eachTopFunc(file, func(fn *ast.FuncDecl) {
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				name, ok := isMathCall(pass.Info, call, "Log", "Log2", "Log10", "Sqrt", "Pow")
				if !ok || len(call.Args) == 0 {
					return true
				}
				arg := unparen(call.Args[0])
				if name == "Pow" {
					if len(call.Args) < 2 {
						return true
					}
					// Integer exponents are total for any base.
					if v, ok := constantValue(pass.Info, call.Args[1]); ok {
						if constant.ToInt(v).Kind() == constant.Int {
							return true
						}
					}
				}
				if v, ok := constantValue(pass.Info, arg); ok {
					f, _ := constant.Float64Val(constant.ToFloat(v))
					inDomain := f > 0 || ((name == "Sqrt" || name == "Pow") && f == 0)
					if !inDomain {
						pass.Reportf(call.Pos(), "math.%s of constant %v is outside the domain", name, v)
					}
					return true
				}
				if structurallyNonNegative(pass, arg) && name != "Log" && name != "Log2" && name != "Log10" {
					return true
				}
				objs := usedObjects(pass.Info, arg)
				for _, obj := range objs {
					obj := obj
					if hasPriorGuard(fn, call.Pos(), func(e ast.Expr) bool {
						return mentionsObject(pass.Info, e, obj)
					}) {
						return true
					}
				}
				pass.Reportf(call.Pos(),
					"math.%s without a domain guard on its argument earlier in this function; out-of-domain input yields NaN",
					name)
				return true
			})
		})
	}
}

// structurallyNonNegative recognizes argument shapes that cannot be
// negative: math.Abs(...), x*x with identical operands, len/cap
// conversions, and unary plus thereof.
func structurallyNonNegative(pass *Pass, e ast.Expr) bool {
	switch e := unparen(e).(type) {
	case *ast.CallExpr:
		if _, ok := isMathCall(pass.Info, e, "Abs"); ok {
			return true
		}
		// Conversions like float64(len(xs)).
		if len(e.Args) == 1 {
			if inner, ok := unparen(e.Args[0]).(*ast.CallExpr); ok {
				if id, ok := unparen(inner.Fun).(*ast.Ident); ok && (id.Name == "len" || id.Name == "cap") {
					return true
				}
			}
		}
	case *ast.BinaryExpr:
		if e.Op == token.MUL && astExprEqual(e.X, e.Y) {
			return true
		}
	}
	return false
}

// astExprEqual reports whether two expressions render identically.
func astExprEqual(a, b ast.Expr) bool {
	return types.ExprString(a) == types.ExprString(b)
}
