package lint

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"go/ast"
	"sort"
	"strings"
)

// Hot-path designation: the perf analyzer family (allocloop, prealloc,
// boxiface, deferhot) reports only inside functions designated *hot* —
// the fit engine's inner loops, where a single stray allocation
// multiplies by hypotheses × folds × tasks. Two designation channels
// exist, mirroring wallclock's policed-package list but at function
// granularity:
//
//   - //edlint:hotpath as (part of) a function's doc comment marks that
//     one declaration hot, wherever it lives. Optional trailing text is
//     a free-form reason. A hotpath comment that is not the doc comment
//     of a function declaration is itself a diagnostic (reported by
//     allocloop), so a directive drifting away from its function fails
//     the lint instead of silently policing nothing.
//   - hotPathDefaults below names the policed core: the functions every
//     fit task funnels through. An entry matches by package-path suffix
//     plus the function's display name ("fitContext.prepare"), with a
//     "Recv.*" wildcard covering every method of a receiver type.
//
// Hotness deliberately does NOT propagate to transitive callees: a hot
// caller invoking a cold helper in a loop is the *caller's* finding
// (rendered with the interprocedural trace into the helper), while a
// hot callee reports its own body exactly once. This is the same
// single-report contract wallclock keeps across policed packages.

// hotPathDirective is the function-level hot marker, written as
// //edlint:hotpath [reason] in a declaration's doc comment.
const hotPathDirective = "edlint:hotpath"

// hotPathDefault designates hot functions by (package suffix, display
// name) pattern. A pattern "T.*" matches every method of receiver T; any
// other pattern matches the display name exactly.
type hotPathDefault struct {
	pkg     string
	pattern string
}

// hotPathDefaults is the policed default set: the design-matrix engine's
// per-hypothesis/per-fold paths and the worker plumbing that drives
// them. Every function here runs O(hypotheses × folds) or more per fit
// task, so an allocation inside is never noise.
var hotPathDefaults = []hotPathDefault{
	// The fit engine context: column prep, per-fold solves, selection.
	{"internal/modeling", "fitContext.*"},
	{"internal/modeling", "Fitter.Fit"},
	{"internal/modeling", "modeling.newFitContext"},
	{"internal/modeling", "modeling.sharedBasis"},
	{"internal/modeling", "modeling.basisSignature"},
	// Basis-column evaluation: every factor/term touch of every fit.
	{"internal/pmnf", "ColumnSet.*"},
	{"internal/pmnf", "pmnf.TermProduct"},
	{"internal/pmnf", "Factor.Eval"},
	{"internal/pmnf", "Term.Eval"},
	{"internal/pmnf", "Term.EvalBasis"},
	{"internal/pmnf", "Function.Eval"},
	{"internal/pmnf", "Function.EvalAt"},
	// The worker pool's fan-out and the per-task fit driver.
	{"internal/pipeline", "pipeline.forEach"},
	{"internal/pipeline", "Pipeline.fitOne"},
	// The solver each fold lands in, and the fit-quality scorers called
	// once per hypothesis.
	{"internal/mathutil", "mathutil.SolveLinearSystem"},
	{"internal/mathutil", "mathutil.SolveLinearSystemInto"},
	{"internal/mathutil", "SolveWorkspace.grow"},
	{"internal/mathutil", "mathutil.SMAPE"},
	{"internal/mathutil", "mathutil.RSS"},
}

// hotByDefault reports whether the (unit path, display name) pair is in
// the policed default set. The test-unit suffix is ignored so in-package
// test units police the same declarations.
func hotByDefault(path, display string) bool {
	path = strings.TrimSuffix(path, "_test")
	for _, d := range hotPathDefaults {
		if !strings.HasSuffix(path, d.pkg) {
			continue
		}
		if recv, ok := strings.CutSuffix(d.pattern, ".*"); ok {
			if strings.HasPrefix(display, recv+".") {
				return true
			}
			continue
		}
		if display == d.pattern {
			return true
		}
	}
	return false
}

// hotByDirective reports whether fd's doc comment carries the
// //edlint:hotpath marker.
func hotByDirective(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if strings.HasPrefix(c.Text, "//"+hotPathDirective) {
			return true
		}
	}
	return false
}

// isHotFunc reports whether the declaration is a designated hot path in
// this analysis unit, by directive or by default set.
func isHotFunc(pass *Pass, fd *ast.FuncDecl) bool {
	return hotByDirective(fd) || hotByDefault(pass.Path, funcDisplay(pass, fd))
}

// reportStrayHotpath flags //edlint:hotpath comments that are not the
// doc comment of a function declaration — they designate nothing and
// usually mean the directive drifted away from its function. Reported
// under allocloop (the family's flagship) so the ordinary suppression
// machinery applies.
func reportStrayHotpath(pass *Pass, file *ast.File) {
	anchored := make(map[*ast.Comment]bool)
	for _, decl := range file.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if ok && fd.Doc != nil {
			for _, c := range fd.Doc.List {
				anchored[c] = true
			}
		}
	}
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			if strings.HasPrefix(c.Text, "//"+hotPathDirective) && !anchored[c] {
				pass.Reportf(c.Pos(),
					"stray //edlint:hotpath directive: it must be (part of) a function declaration's doc comment to designate that function hot")
			}
		}
	}
}

// hotPathDefaultsDigest canonicalizes the policed default set into a
// short stable hash for the findings-cache key: editing the table above
// must invalidate cached findings exactly like editing a source file.
// (//edlint:hotpath directives live in file content and are already
// covered by the content hash.)
func hotPathDefaultsDigest() string {
	entries := make([]string, 0, len(hotPathDefaults))
	for _, d := range hotPathDefaults {
		entries = append(entries, d.pkg+"\x00"+d.pattern)
	}
	sort.Strings(entries)
	h := sha256.New()
	for _, e := range entries {
		fmt.Fprintf(h, "%s\n", e)
	}
	return hex.EncodeToString(h.Sum(nil))[:16]
}
