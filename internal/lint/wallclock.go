package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// wallclockPolicedPackages is the deterministic core: every package on the
// path from raw profiles to the rendered report. A wall-clock read or a
// math/rand draw anywhere here can change model coefficients, the
// CV-SMAPE model selection, or serialized output between two runs on
// identical input — exactly what the paper's reproducibility claim
// forbids. The simulator (seeded synthetic measurement substrate), the
// instrumentation layer, and the fault-injection harness are deliberately
// outside the list: producing measurements is their job.
var wallclockPolicedPackages = []string{
	"internal/aggregate",
	"internal/analysis",
	"internal/baseline",
	"internal/calltree",
	"internal/core",
	"internal/diagnose",
	"internal/epoch",
	"internal/experiments",
	"internal/importer",
	"internal/ingest",
	"internal/mathutil",
	"internal/measurement",
	"internal/modeling",
	"internal/pipeline",
	"internal/plot",
	"internal/pmnf",
	"internal/profile",
	// serve must pace every deadline and coalescing window through
	// resilience.Clock — a wall-clock read in a handler or fit loop
	// would leak nondeterminism into responses.
	"internal/serve",
	// propcheck is policed even though it is a math/rand consumer by
	// design: its engine file carries a sanctioned //edlint:ignore-file
	// wallclock directive, so the analyzer still guards every OTHER file
	// in the package (generators, shrinkers) against unseeded draws and
	// clock reads sneaking in beside the one sanctioned wrapper. The
	// edgen subpackage draws only through propcheck.Rand and needs no
	// suffix entry.
	"internal/propcheck",
	"internal/report",
	// resilience schedules faults, retries and checkpoints that must
	// replay identically from a seed: its only clock access goes through
	// the Clock interface, and the WallClock implementation is the one
	// sanctioned timer consumer.
	"internal/resilience",
	"internal/trace",
}

// WallClock keeps wall-clock time and pseudo-randomness out of the
// model-affecting paths. In the policed packages (non-test files) it
// reports every time.Now/Since/Until call and every math/rand draw,
// annotated with where the dataflow core sees the value land (returned,
// stored, or passed on). The one sanctioned consumer is the
// Observer/timings layer — stage durations are diagnostics, never model
// inputs — which must carry an explicit
// //edlint:ignore wallclock <reason> per source.
var WallClock = &Analyzer{
	Name: "wallclock",
	Doc: "reports wall-clock and math/rand reads in the deterministic core " +
		"(profiles -> models -> report); only the Observer/timings layer " +
		"may read the clock, via an explicit suppression",
	Run: runWallClock,
}

// wallclockPoliced reports whether the unit path (test suffix ignored)
// lies in the deterministic core.
func wallclockPoliced(path string) bool {
	path = strings.TrimSuffix(path, "_test")
	for _, p := range wallclockPolicedPackages {
		if strings.HasSuffix(path, p) {
			return true
		}
	}
	return false
}

func runWallClock(pass *Pass) {
	if !wallclockPoliced(pass.Path) {
		return
	}
	for _, file := range pass.Files {
		eachTopFunc(file, func(fd *ast.FuncDecl) {
			if inTestFile(pass.Fset, fd.Pos()) {
				return // seeded rand and timing assertions are test business
			}
			flows := taintFunc(pass, fd)
			uses := collectConsumptions(pass, fd, flows)
			for _, src := range flows.sources {
				if src.kind != srcTime && src.kind != srcRand {
					continue // map-order sources belong to maporder
				}
				if src.interproc {
					// Interprocedural: the callee's summary carries the
					// effect. When the callee lives in a policed package
					// its own body already yields the finding (or a
					// sanctioning suppression); reporting the caller too
					// would double every fix.
					if wallclockPoliced(src.calleePkg) {
						continue
					}
					pass.Reportf(src.pos,
						"call to %s reads %s through a helper outside the deterministic core (%s)%s; sanction the source with //edlint:ignore wallclock <reason> — which clears every caller — or move the read out of the call chain",
						src.desc, src.kind, src.via(funcDisplay(pass, fd)), firstConsumption(uses, src))
					continue
				}
				where := firstConsumption(uses, src)
				pass.Reportf(src.pos,
					"%s (%s) in the deterministic core%s; model inputs, selection and serialized output must not depend on it — move it to the Observer/timings layer or suppress with //edlint:ignore wallclock <reason>",
					src.desc, src.kind, where)
			}
		})
	}
}

// funcDisplay renders the enclosing declaration for trace heads.
func funcDisplay(pass *Pass, fd *ast.FuncDecl) string {
	if fn, ok := pass.Info.Defs[fd.Name].(*types.Func); ok {
		return displayName(fn)
	}
	return fd.Name.Name
}

// consumption is one place a nondeterministic value escapes a function's
// local dataflow: a return, a store into longer-lived state, or a call
// argument.
type consumption struct {
	pos  token.Pos
	src  *taintSource
	what string
}

// collectConsumptions finds, in source order, every point where a tainted
// value is returned, stored into a field/index/global, or passed to a
// call.
func collectConsumptions(pass *Pass, fd *ast.FuncDecl, flows *flowSet) []consumption {
	var uses []consumption
	add := func(pos token.Pos, src *taintSource, what string) {
		if src != nil {
			uses = append(uses, consumption{pos: pos, src: src, what: what})
		}
	}
	ast.Inspect(fd, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				add(n.Pos(), flows.exprSource(res), "reaches a return value")
			}
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				if _, isIdent := unparen(lhs).(*ast.Ident); isIdent {
					continue // local propagation, already tracked
				}
				var rhs ast.Expr
				if len(n.Rhs) == len(n.Lhs) {
					rhs = n.Rhs[i]
				} else if len(n.Rhs) == 1 {
					rhs = n.Rhs[0]
				}
				if rhs != nil {
					add(n.Pos(), flows.exprSource(rhs), "is stored in "+types.ExprString(lhs))
				}
			}
		case *ast.CallExpr:
			if nondetCallSource(pass, n) != nil {
				return true // the source itself, not a consumer
			}
			for _, arg := range n.Args {
				add(n.Pos(), flows.exprSource(arg), "is passed to "+types.ExprString(n.Fun))
			}
		}
		return true
	})
	sort.Slice(uses, func(i, j int) bool { return uses[i].pos < uses[j].pos })
	return uses
}

// firstConsumption renders the first consumption attributed to src, or ""
// when its value never visibly escapes. Sources are matched by origin
// position: exprSource re-derives a fresh taintSource for a call embedded
// in an expression, so pointer identity would miss those.
func firstConsumption(uses []consumption, src *taintSource) string {
	for _, u := range uses {
		if u.src.pos == src.pos {
			return "; its value " + u.what
		}
	}
	return ""
}
