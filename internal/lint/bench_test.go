package lint

import "testing"

// BenchmarkLintRepo measures one full edlint pass over the surrounding
// module: parse + type-check every package (tests included) and run the
// complete default analyzer suite. This is the cost of the self-check
// test and of the verify.sh edlint gate; its trajectory is recorded in
// BENCH_lint.json and budgeted by the edlint-bench stage of verify.sh.
func BenchmarkLintRepo(b *testing.B) {
	root, err := FindModuleRoot(".")
	if err != nil {
		b.Fatalf("locating module root: %v", err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		mod, err := LoadModule(root)
		if err != nil {
			b.Fatalf("loading module: %v", err)
		}
		if diags := Run(mod, DefaultAnalyzers(), nil); len(diags) > 0 {
			b.Fatalf("repository is not lint-clean: %d finding(s), first: %s", len(diags), diags[0])
		}
	}
}

// BenchmarkAnalyzeOnly isolates the analyzer suite from the load: the
// module is parsed and type-checked once, then each iteration reruns
// every default analyzer. The gap to BenchmarkLintRepo is the
// parse/type-check share of the lint budget.
func BenchmarkAnalyzeOnly(b *testing.B) {
	root, err := FindModuleRoot(".")
	if err != nil {
		b.Fatalf("locating module root: %v", err)
	}
	mod, err := LoadModule(root)
	if err != nil {
		b.Fatalf("loading module: %v", err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if diags := Run(mod, DefaultAnalyzers(), nil); len(diags) > 0 {
			b.Fatalf("repository is not lint-clean: %d finding(s), first: %s", len(diags), diags[0])
		}
	}
}
