package lint

import "testing"

// BenchmarkLintRepo measures one full edlint pass over the surrounding
// module: parse + type-check every package (tests included) and run the
// complete default analyzer suite. This is the cost of the self-check
// test and of the verify.sh edlint gate; its trajectory is recorded in
// BENCH_lint.json and budgeted by the edlint-bench stage of verify.sh.
func BenchmarkLintRepo(b *testing.B) {
	root, err := FindModuleRoot(".")
	if err != nil {
		b.Fatalf("locating module root: %v", err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		mod, err := LoadModule(root)
		if err != nil {
			b.Fatalf("loading module: %v", err)
		}
		if diags := Run(mod, DefaultAnalyzers(), nil); len(diags) > 0 {
			b.Fatalf("repository is not lint-clean: %d finding(s), first: %s", len(diags), diags[0])
		}
	}
}

// BenchmarkLintRepoWarm measures the fully warm cache path: both the
// standard-library bundle and the findings cache are primed, so one
// iteration is a content re-hash plus a cache read — the cost of a
// repeated edlint run over an unchanged tree. The ratio to
// BenchmarkLintRepo is the incremental cache's headline speedup; both
// numbers are recorded in BENCH_lint.json.
func BenchmarkLintRepoWarm(b *testing.B) {
	root, err := FindModuleRoot(".")
	if err != nil {
		b.Fatalf("locating module root: %v", err)
	}
	cacheDir := b.TempDir()
	if _, _, err := Lint(root, Options{CacheDir: cacheDir}); err != nil {
		b.Fatalf("priming caches: %v", err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		diags, stats, err := Lint(root, Options{CacheDir: cacheDir})
		if err != nil {
			b.Fatalf("warm lint: %v", err)
		}
		if stats.FindingsCache != "hit" {
			b.Fatalf("warm iteration was a findings-cache %s, want hit", stats.FindingsCache)
		}
		if len(diags) > 0 {
			b.Fatalf("repository is not lint-clean: %d finding(s), first: %s", len(diags), diags[0])
		}
	}
}

// BenchmarkLintRepoWarmLoad measures the std-bundle-warm load path with
// the findings cache disabled: every iteration re-type-checks the module
// itself and reruns the analyzers, but resolves the standard library from
// the cached export bundle instead of source. The gap to BenchmarkLintRepo
// is the stdlib type-check share the bundle eliminates; the gap to
// BenchmarkLintRepoWarm is the honest cost of an edit that misses the
// findings cache.
func BenchmarkLintRepoWarmLoad(b *testing.B) {
	root, err := FindModuleRoot(".")
	if err != nil {
		b.Fatalf("locating module root: %v", err)
	}
	cacheDir := b.TempDir()
	if _, _, err := Lint(root, Options{CacheDir: cacheDir}); err != nil {
		b.Fatalf("priming caches: %v", err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		diags, stats, err := Lint(root, Options{CacheDir: cacheDir, NoFindingsCache: true})
		if err != nil {
			b.Fatalf("warm-load lint: %v", err)
		}
		if stats.StdCache != "hit" {
			b.Fatalf("warm-load iteration was a std-bundle %s, want hit", stats.StdCache)
		}
		if len(diags) > 0 {
			b.Fatalf("repository is not lint-clean: %d finding(s), first: %s", len(diags), diags[0])
		}
	}
}

// BenchmarkAnalyzeOnly isolates the analyzer suite from the load: the
// module is parsed and type-checked once, then each iteration reruns
// every default analyzer. The gap to BenchmarkLintRepo is the
// parse/type-check share of the lint budget.
func BenchmarkAnalyzeOnly(b *testing.B) {
	root, err := FindModuleRoot(".")
	if err != nil {
		b.Fatalf("locating module root: %v", err)
	}
	mod, err := LoadModule(root)
	if err != nil {
		b.Fatalf("loading module: %v", err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if diags := Run(mod, DefaultAnalyzers(), nil); len(diags) > 0 {
			b.Fatalf("repository is not lint-clean: %d finding(s), first: %s", len(diags), diags[0])
		}
	}
}
