package lint

import "go/ast"

// PreAlloc reports appends that grow a slice inside a hot range loop
// when the capacity is statically derivable from the ranged operand —
// the make(T, 0, len(xs)) fix is mechanical and removes the O(log n)
// reallocation-and-copy chain from the loop. Appends to reuse buffers
// ([:0] resets), capacity-planned targets (3-arg make) and grow-to-cap
// loops are exempt: they are the fix, not the finding.
var PreAlloc = &Analyzer{
	Name: "prealloc",
	Doc: "reports append-grown slices in hot range loops whose capacity is " +
		"statically derivable from the ranged operand; preallocate with " +
		"make(…, 0, len(operand)) before the loop",
	Run: runPreAlloc,
}

func runPreAlloc(pass *Pass) {
	for _, file := range pass.Files {
		if inTestFile(pass.Fset, file.Pos()) {
			continue
		}
		eachTopFunc(file, func(fd *ast.FuncDecl) {
			if !isHotFunc(pass, fd) {
				return
			}
			for _, site := range allocScan(pass, fd) {
				if site.kind != allocAppend || !site.inLoop || site.rangeCap == "" {
					continue
				}
				if site.target == site.rangeOperand {
					continue // growing the operand itself; capacity is moot
				}
				pass.Reportf(site.pos,
					"append grows %s inside a hot range over %s in %s%s; preallocate with make(…, 0, %s) before the loop, or suppress with //edlint:ignore prealloc <reason>",
					site.target, site.rangeOperand, funcDisplay(pass, fd), hotLoopSuffix(pass, fd), site.rangeCap)
			}
		})
	}
}
