// Package deferhot is a fixture for the deferhot analyzer: defer
// statements inside hot loop bodies allocate a defer record per iteration
// and run only at function exit, leaking the deferred resource until the
// loop ends. Hotness comes from //edlint:hotpath directives.
package deferhot

import "sync"

// SumLocked locks per row but unlocks only at function exit: the defer
// records pile up and the lock is never released between iterations.
//
//edlint:hotpath per-fold accumulation
func SumLocked(mu *sync.Mutex, rows [][]float64) float64 {
	total := 0.0
	for _, row := range rows {
		mu.Lock()
		defer mu.Unlock() // runs at exit, not per iteration
		total += row[0]
	}
	return total
}

// HoistedLock takes the lock once around the loop — the fix, no finding.
//
//edlint:hotpath hoisted-lock accumulation
func HoistedLock(mu *sync.Mutex, rows [][]float64) float64 {
	mu.Lock()
	defer mu.Unlock()
	total := 0.0
	for _, row := range rows {
		total += row[0]
	}
	return total
}

// WrappedBody runs the defer inside a per-iteration function whose exit
// is the iteration's end — the other sanctioned fix shape.
//
//edlint:hotpath wrapped-body accumulation
func WrappedBody(mu *sync.Mutex, rows [][]float64) float64 {
	total := 0.0
	for _, row := range rows {
		func() {
			mu.Lock()
			defer mu.Unlock()
			total += row[0]
		}()
	}
	return total
}

// Recovering keeps a sanctioned per-row recover guard: crash isolation is
// the point, and the reason records it.
//
//edlint:hotpath crash-isolation sweep
func Recovering(rows [][]float64) (bad int) {
	for _, row := range rows {
		//edlint:ignore deferhot one recover guard per row is the crash-isolation contract of the sweep
		defer func() {
			if recover() != nil {
				bad++
			}
		}()
		_ = row
	}
	return bad
}

// coldDefer is the SumLocked shape without a hot designation: silent.
func coldDefer(mu *sync.Mutex, rows [][]float64) {
	for range rows {
		mu.Lock()
		defer mu.Unlock()
	}
}

// use keeps coldDefer reachable for the type checker.
var _ = coldDefer
