// Package helpers is the cold support package of the allocloop fixture:
// nothing here is a hot path, so its allocating helpers become findings
// only at designated hot call sites, through the summary traces.
package helpers

// EvalTerm evaluates one term into a fresh result slice. The allocation
// is laundered through newBuf, one more frame down — hot callers must see
// the full trace to the root make.
func EvalTerm(row []float64) []float64 {
	out := newBuf(len(row))
	for i, v := range row {
		out[i] = v * v
	}
	return out
}

// newBuf is the root allocation site two frames below the hot loop. The
// make sits in the body's top-level return — the normal result path, not
// a cold early exit — so it counts toward the per-call summary.
func newBuf(n int) []float64 {
	return make([]float64, n)
}

// Scratch allocates by design: the suppression at the source clears every
// caller, hot or cold, in one sanctioned place.
func Scratch(n int) []float64 {
	//edlint:ignore allocloop scratch lives for the whole campaign; one call per task, never per iteration
	buf := make([]float64, n)
	return buf
}
