// Package modeling mirrors the fit engine's shape: it is loaded under an
// import path ending in internal/modeling, so every fitContext method is
// hot by the policed default set — no directive needed.
package modeling

import "fixture/internal/helpers"

// fitContext mirrors the engine's per-fit state; its methods match the
// "fitContext.*" entry of the policed default set.
type fitContext struct {
	rows [][]float64
	sums []float64
}

// fitOne calls the cold helper per iteration: the finding lands here,
// rendered with the interprocedural trace down to the root make.
func (fc *fitContext) fitOne() {
	for i, row := range fc.rows {
		term := helpers.EvalTerm(row) // laundered allocation, two frames down
		fc.sums[i] = term[0]
	}
}

// prepare keeps the plain intraprocedural positive: a direct make on
// every iteration of a hot loop.
func (fc *fitContext) prepare() {
	for i := range fc.rows {
		buf := make([]float64, 8) // direct per-iteration allocation
		fc.sums[i] = buf[0]
	}
}

// recycle is built from the sanctioned amortized idioms — a cap-guarded
// grow and a [:0] reset-reuse append — and must stay silent.
func (fc *fitContext) recycle(scratch []float64) {
	for _, row := range fc.rows {
		if cap(scratch) < len(row) {
			scratch = make([]float64, len(row))
		}
		scratch = scratch[:0]
		scratch = append(scratch, row...)
		fc.sums[0] += scratch[0]
	}
}

// seed calls the helper whose allocation is suppressed at the source; the
// sanction clears this hot call site too.
func (fc *fitContext) seed() {
	for i := range fc.rows {
		fc.rows[i] = helpers.Scratch(4)
	}
}

// retune keeps a sanctioned direct allocation: the reason records the
// amortization argument at the site.
func (fc *fitContext) retune() {
	for i := range fc.rows {
		//edlint:ignore allocloop the retune table is rebuilt once per epoch, not per fit
		fc.rows[i] = make([]float64, 16)
	}
}

// coldSetup allocates per iteration with the exact prepare shape, but it
// is not designated hot: the perf family stays silent off the hot paths.
func coldSetup(n int) [][]float64 {
	rows := make([][]float64, 0, n)
	for i := 0; i < n; i++ {
		rows = append(rows, make([]float64, i+1))
	}
	return rows
}

// Campaign keeps every fixture function reachable so the type checker
// sees real uses.
func Campaign(n int) float64 {
	fc := &fitContext{rows: coldSetup(n), sums: make([]float64, n)}
	fc.prepare()
	fc.fitOne()
	fc.recycle(nil)
	fc.seed()
	fc.retune()
	return fc.sums[0]
}

//edlint:hotpath this directive anchors no function declaration and must be reported as stray
var hotLabel = "stray"
