// Package resilience is a fixture for the wallclock analyzer over the
// resilience layer's import path. The layer's whole promise is seeded
// replay — fault schedules, backoff jitter and checkpoint state must be
// functions of their seeds and inputs alone — so clock reads and
// math/rand draws report here exactly as in the modeling core, and only
// the retrier's diagnostic timing read is sanctioned, with its reason.
package resilience

import (
	"math/rand"
	"time"
)

// BadJitteredBackoff computes a retry delay with a math/rand draw; the
// bug the analyzer catches is that the schedule stops being replayable
// from the policy seed.
func BadJitteredBackoff(attempt int, base time.Duration) time.Duration {
	d := base * time.Duration(1<<attempt)
	return d + time.Duration(rand.Int63n(int64(base))) // want: rand reaches a return value
}

// Record is a stand-in for a checkpoint task record.
type Record struct {
	Key       string
	WrittenAt int64
}

// BadStampedRecord stores the clock in checkpoint state — the write time
// would make two otherwise identical campaign states differ byte-for-byte
// and break resume's byte-identity guarantee.
func BadStampedRecord(key string) *Record {
	r := &Record{Key: key}
	r.WrittenAt = time.Now().UnixNano() // want: clock stored in checkpoint state
	return r
}

// SanctionedRetryTiming times one attempt for the retry diagnostic log
// only; the suppression names the sanctioned consumer and is the one
// clock access the resilience layer is allowed.
func SanctionedRetryTiming(attempt func() error) (time.Duration, error) {
	//edlint:ignore wallclock retrier diagnostics: attempt latency feeds the operator log, never the backoff schedule
	start := time.Now()
	err := attempt()
	//edlint:ignore wallclock retrier diagnostics: see above
	return time.Since(start), err
}
