// Package sendguard is a fixture for the sendguard analyzer. It is loaded
// under an import path ending in internal/pipeline, one of the policed
// concurrency packages: channel sends must race cancellation in a select,
// WaitGroup counts must be acquired before spawn and released in a defer,
// and locks must be followed by their deferred unlock.
package sendguard

import (
	"context"
	"sync"
)

// BadBareSend blocks forever once the receiver is gone.
func BadBareSend(ctx context.Context, out chan<- int) {
	out <- 1 // want: send outside a select
	_ = ctx
}

// GoodSelectSend races the send against cancellation.
func GoodSelectSend(ctx context.Context, out chan<- int) {
	select {
	case out <- 1: // ok: select case
	case <-ctx.Done():
	}
}

// BadUndeferredDone leaks the count on a panic inside work.
func BadUndeferredDone(ctx context.Context, wg *sync.WaitGroup, work func()) {
	wg.Add(1)
	go func() {
		work()
		wg.Done() // want: Done not deferred
		_ = ctx
	}()
}

// GoodDeferredDone releases the count on every path.
func GoodDeferredDone(ctx context.Context, wg *sync.WaitGroup, work func()) {
	wg.Add(1)
	go func() {
		defer wg.Done() // ok: deferred release
		work()
		_ = ctx
	}()
}

// BadAddInsideGoroutine lets Wait observe a zero counter before the
// goroutine is counted.
func BadAddInsideGoroutine(ctx context.Context, wg *sync.WaitGroup) {
	go func() {
		wg.Add(1) // want: Add races Wait
		defer wg.Done()
		_ = ctx
	}()
}

// BadAddWithoutDone acquires a count this function can never drain.
func BadAddWithoutDone(wg *sync.WaitGroup) {
	wg.Add(1) // want: no deferred Done anywhere
}

// Counter pairs a mutex with the state it guards.
type Counter struct {
	mu sync.Mutex
	n  int
}

// BadLockNoDefer deadlocks the next caller if the body panics.
func (c *Counter) BadLockNoDefer() int {
	c.mu.Lock() // want: no deferred Unlock follows
	n := c.n
	c.mu.Unlock()
	return n
}

// GoodLockDefer releases on every path.
func (c *Counter) GoodLockDefer() int {
	c.mu.Lock() // ok: deferred unlock on the next line
	defer c.mu.Unlock()
	return c.n
}

// SuppressedBufferedSend cannot block: the channel is created one slot
// larger than the number of sends, which the suppression documents.
func SuppressedBufferedSend() <-chan int {
	out := make(chan int, 1)
	//edlint:ignore sendguard the buffer is sized to the single send above it
	out <- 1 // ok: suppressed
	close(out)
	return out
}
