// Package divguard is a fixture for the divguard analyzer: division by an
// unguarded parameter or field is a finding; guarded and local
// denominators are not.
package divguard

type scale struct {
	Factor float64
	Count  int
}

func byParam(a, b float64) float64 {
	return a / b // want: parameter with no preceding zero-check
}

func byIntParam(a, n int) int {
	return a % n // want: modulo by unguarded parameter
}

func byField(a float64, s scale) float64 {
	return a / s.Factor // want: field with no preceding zero-check
}

func guardedParam(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b // ok: dominated by the zero-check above
}

func guardedField(a float64, s scale) float64 {
	if s.Factor <= 0 {
		return 0
	}
	return a / s.Factor // ok: dominated by the positivity check above
}

func switchGuard(a int, s scale) int {
	switch {
	case s.Count < 1:
		return 0
	}
	return a / s.Count // ok: switch compares the field first
}

func localDenominator(a float64) float64 {
	b := a + 1
	return a / b // ok: locals are assumed established safe
}

func constDenominator(a float64) float64 {
	return a / 2 // ok: non-zero constant
}

func guardInsideClosure(a, b float64) func() float64 {
	if b == 0 {
		return func() float64 { return 0 }
	}
	return func() float64 {
		return a / b // ok: the enclosing function guards b
	}
}
