// Package wallclock is a fixture for the wallclock analyzer. It is loaded
// under an import path ending in internal/modeling, one of the packages of
// the deterministic core: wall-clock reads and math/rand draws are
// reported with the place the value lands, unless explicitly suppressed.
package wallclock

import (
	"math/rand"
	"time"
)

// Model is a stand-in for a fitted model.
type Model struct {
	Coefficient float64
	FittedAt    int64
}

// BadTimestampedFit stores the clock in a model field.
func BadTimestampedFit(coef float64) *Model {
	m := &Model{Coefficient: coef}
	m.FittedAt = time.Now().UnixNano() // want: clock stored in model state
	return m
}

// BadJitteredCoefficient perturbs a coefficient with an unseeded draw.
func BadJitteredCoefficient(coef float64) float64 {
	return coef + rand.Float64()*1e-9 // want: rand reaches a return value
}

// BadElapsedSelection breaks ties with elapsed wall time.
func BadElapsedSelection(start time.Time, a, b float64) float64 {
	if time.Since(start) > time.Second { // want: clock steers selection
		return a
	}
	return b
}

// SeededRandStillFlagged threads an explicit seeded source; the draw is
// still reported, because even a fixed seed makes the result depend on
// the draw order — the deterministic core must not draw at all.
func SeededRandStillFlagged(rng *rand.Rand) float64 {
	return rng.Float64() // want: rand draw in the deterministic core
}

// BadStoredDraw persists a draw through a local into shared state; the
// finding names where the value lands.
func BadStoredDraw(dst map[string]float64) {
	v := rand.Float64() // want: the draw is stored in dst["jitter"]
	dst["jitter"] = v
}

// SuppressedObserver times a stage for diagnostics only; the suppression
// names the sanctioned consumer.
func SuppressedObserver(stage func()) time.Duration {
	//edlint:ignore wallclock observer timing: the duration is stderr telemetry, never a model input
	start := time.Now()
	stage()
	//edlint:ignore wallclock observer timing: see above
	return time.Since(start)
}
