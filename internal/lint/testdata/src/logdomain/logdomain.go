// Package logdomain is a fixture for the logdomain analyzer: math domain
// calls need an in-domain constant, a structural guarantee, or a prior
// guard on some value the argument uses.
package logdomain

import "math"

func unguardedLog(x float64) float64 {
	return math.Log(x) // want: no domain guard
}

func unguardedSqrt(x float64) float64 {
	return math.Sqrt(x) // want: no domain guard
}

func outOfDomainConstant() float64 {
	return math.Log(-1) // want: constant outside the domain
}

func guarded(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return math.Log(x) // ok: positivity guard above
}

func inDomainConstant() float64 {
	return math.Log2(8) // ok: constant inside the domain
}

func sqrtZeroConstant() float64 {
	return math.Sqrt(0) // ok: zero is in sqrt's domain
}

func structural(x float64) float64 {
	return math.Sqrt(x * x) // ok: a square cannot be negative
}

func absolute(x float64) float64 {
	return math.Sqrt(math.Abs(x)) // ok: math.Abs is non-negative
}

func lengthConversion(xs []float64) float64 {
	return math.Sqrt(float64(len(xs))) // ok: len is non-negative
}

func intExponent(x float64) float64 {
	return math.Pow(x, 3) // ok: integer exponents are total
}

func fractionalExponent(x float64) float64 {
	return math.Pow(x, 0.5) // want: fractional exponent, unguarded base
}

func guardedPow(x float64) float64 {
	if x < 0 {
		return 0
	}
	return math.Pow(x, 2.0/3.0) // ok: sign check above
}
