// Package floateq is a fixture for the floateq analyzer: exact float
// comparisons are findings, zero-literal guards and constant folds are not.
package floateq

func equal(a, b float64) bool {
	return a == b // want: exact comparison
}

func notEqual(a, b float64) bool {
	return a != b // want: exact comparison
}

func mixed(a float64, b int) bool {
	return a == float64(b) // want: float operand
}

func zeroGuard(a float64) bool {
	return a == 0 // ok: the canonical pre-division guard
}

func zeroGuardFlipped(a float64) bool {
	return 0 != a // ok: zero literal on the left
}

func constFold() bool {
	const x = 0.1
	const y = 0.2
	return x+y == 0.3 // ok: both sides are compile-time constants
}

func ints(a, b int) bool {
	return a == b // ok: not floating point
}

func suppressed(a, b float64) bool {
	//edlint:ignore floateq fixture: sanctioned exact comparison with a reason
	return a == b // ok: suppressed by the directive above
}

func trailing(a, b float64) bool {
	return a == b //edlint:ignore floateq fixture: trailing-comment form
}
