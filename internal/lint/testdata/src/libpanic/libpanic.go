// Package libpanic is a fixture for the libpanic analyzer: panic in
// library code is a finding; the error-return shape is the fix.
package libpanic

import "errors"

// Bad tears down the whole process on invalid input.
func Bad(x int) int {
	if x < 0 {
		panic("negative input") // want: panic in library code
	}
	return x
}

// Good lets the caller degrade gracefully.
func Good(x int) (int, error) {
	if x < 0 {
		return 0, errors.New("negative input")
	}
	return x, nil
}

// shadowed calls a local function named panic, not the builtin.
func shadowed() {
	panic := func(string) {}
	panic("not the builtin") // ok: resolves to the local closure
}
