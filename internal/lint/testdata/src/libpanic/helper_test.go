package libpanic

// mustPositive panics, but lives in a test file: the testing runner turns
// panics into failures, so libpanic exempts it.
func mustPositive(x int) int {
	if x < 0 {
		panic("negative input") // ok: test files are exempt
	}
	return x
}
