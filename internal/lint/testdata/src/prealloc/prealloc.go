// Package prealloc is a fixture for the prealloc analyzer: appends that
// grow a slice inside hot range loops where the capacity is statically
// derivable from the ranged operand, so the make(…, 0, len(xs)) fix is
// mechanical. Hotness comes from //edlint:hotpath directives — this
// fixture has no policed default path.
package prealloc

// Firsts collects the leading value of every row; the append reallocates
// O(log n) times even though len(rows) bounds the result exactly.
//
//edlint:hotpath per-task projection in the demo pipeline
func Firsts(rows [][]float64) []float64 {
	var firsts []float64
	for _, row := range rows {
		firsts = append(firsts, row[0]) // grows toward a known capacity
	}
	return firsts
}

// Squares ranges an integer: the count itself is the capacity.
//
//edlint:hotpath per-epoch schedule build
func Squares(n int) []int {
	var out []int
	for i := range n {
		out = append(out, i*i) // capacity is the ranged count
	}
	return out
}

// Planned preallocates with a 3-arg make: the append never grows the
// buffer in steady state, so no finding — this is the fix shape.
//
//edlint:hotpath the fixed Firsts
func Planned(rows [][]float64) []float64 {
	firsts := make([]float64, 0, len(rows))
	for _, row := range rows {
		firsts = append(firsts, row[0])
	}
	return firsts
}

// Recycled appends into a [:0] reset buffer — explicit reuse, no finding.
//
//edlint:hotpath reuse-buffer projection
func Recycled(buf []float64, rows [][]float64) []float64 {
	out := buf[:0]
	for _, row := range rows {
		out = append(out, row[0])
	}
	return out
}

// SelfGrow appends the ranged operand to itself: the final length is not
// derivable from the operand, so suggesting len(xs) would be wrong.
//
//edlint:hotpath doubling sweep
func SelfGrow(xs []float64) []float64 {
	for _, x := range xs {
		xs = append(xs, x)
	}
	return xs
}

// GrowToCap is the canonical scratch grower; amortized by design, exempt.
//
//edlint:hotpath scratch warm-up
func GrowToCap(xs []float64, n int) []float64 {
	for len(xs) < n {
		xs = append(xs, 0)
	}
	return xs
}

// Filtered keeps a sanctioned append: most rows are dropped, so
// preallocating len(rows) would waste memory on the common path.
//
//edlint:hotpath outlier filter in the demo pipeline
func Filtered(rows [][]float64) [][]float64 {
	var kept [][]float64
	for _, row := range rows {
		if len(row) == 0 {
			continue
		}
		//edlint:ignore prealloc the kept set is a tiny fraction of rows; preallocating len(rows) wastes memory
		kept = append(kept, row)
	}
	return kept
}

// ColdCollect has the exact Firsts shape without a hot designation; the
// perf family stays silent off the hot paths.
func ColdCollect(rows [][]float64) []float64 {
	var firsts []float64
	for _, row := range rows {
		firsts = append(firsts, row[0])
	}
	return firsts
}
