// Package ignorescope is a fixture for the widened suppression scopes:
// //edlint:ignore-block covers the syntax node below the directive,
// //edlint:ignore-file covers its whole file, and an unknown scope suffix
// is itself a finding. The file form is exercised for divguard, so the
// divisions sprinkled through the file stay silent while floateq findings
// outside the suppressed block survive.
package ignorescope

import "fmt"

//edlint:ignore-file divguard fixture: every division in this file guards its denominator upstream

// BlockSuppressed compares floats bit-exactly throughout; the block
// directive covers the whole function, including the loop.
//
//edlint:ignore-block floateq fixture: the table is built from exact binary fractions
func BlockSuppressed(table map[string]float64, probe float64) int {
	hits := 0
	for _, v := range table {
		if v == probe { // ok: inside the suppressed block
			hits++
		}
	}
	if probe == 0.5 { // ok: still inside the suppressed block
		hits++
	}
	return hits
}

// Survivor sits after the suppressed block, so its finding stays.
func Survivor(a, b float64) bool {
	return a == b // want: floateq outside any suppression
}

// FileScoped relies on the file-wide divguard directive.
func FileScoped(sum, n float64) float64 {
	return sum / n // ok: file-scoped divguard suppression
}

// EscapeHatch documents a maporder false positive: the print below emits
// a constant string per iteration, so map order is unobservable, which
// the intra-procedural analyzer cannot prove.
func EscapeHatch(m map[string]int) {
	//edlint:ignore-block maporder fixture: the loop prints one dot per entry, order cannot show
	for range m {
		fmt.Print(".") // ok: suppressed false positive
	}
}

//edlint:ignore-everywhere floateq no such scope exists
func UnknownScope(a, b float64) bool {
	return a == b // want: the directive above is malformed, nothing is suppressed
}
