// Package ctxflow is a fixture for the ctxflow analyzer. It is loaded
// under an import path ending in internal/pipeline, one of the policed
// concurrency packages: every goroutine must receive or capture a
// context.Context, and an enclosing ctx parameter must not be shadowed by
// a fresh root context.
package ctxflow

import (
	"context"
	"sync"
)

func work(ctx context.Context, out chan<- int) {
	select {
	case out <- 1:
	case <-ctx.Done():
	}
}

// BadDetached spawns a goroutine cancellation can never reach.
func BadDetached(out chan<- int) {
	go func() { // want: no context reaches the goroutine
		out <- 1
	}()
}

// GoodCapture captures ctx in the closure.
func GoodCapture(ctx context.Context, out chan<- int) {
	go func() { // ok: the closure selects on ctx.Done
		select {
		case out <- 1:
		case <-ctx.Done():
		}
	}()
}

// GoodArgument passes ctx to the spawned function.
func GoodArgument(ctx context.Context, out chan<- int) {
	go work(ctx, out) // ok: ctx is an argument
}

// GoodDerived spawns with a context derived from ctx.
func GoodDerived(ctx context.Context, out chan<- int) {
	child, cancel := context.WithCancel(ctx)
	defer cancel()
	go work(child, out) // ok: a child of ctx still carries cancellation
}

// BadRootContext drops the caller's deadline and cancellation.
func BadRootContext(ctx context.Context) context.Context {
	return context.Background() // want: enclosing ctx parameter is dropped
}

// GoodRootAtEntry creates a root context where none exists to propagate.
func GoodRootAtEntry() context.Context {
	return context.Background() // ok: no enclosing ctx to drop
}

// SuppressedJanitor is a deliberately detached background goroutine; the
// suppression documents why it must outlive any one run.
func SuppressedJanitor(wg *sync.WaitGroup) {
	wg.Add(1)
	//edlint:ignore ctxflow process-lifetime janitor, shut down via the WaitGroup instead
	go func() {
		defer wg.Done()
	}()
}
