// Package errcheck is a fixture for the errcheck analyzer: discarded
// errors in statement position are findings; documented never-fail idioms
// and explicit discards are not.
package errcheck

import (
	"errors"
	"fmt"
	"os"
	"strings"
)

func work() error { return errors.New("boom") }

func dropped() {
	work() // want: error discarded
}

func droppedGo() {
	go work() // want: error discarded in go statement
}

func explicitDiscard() {
	_ = work() // ok: the discard is visible
}

func handled() error {
	if err := work(); err != nil {
		return err
	}
	return nil
}

func deferredClose(f *os.File) {
	defer f.Close() // ok: best-effort cleanup
}

func neverFailWriters(b *strings.Builder) {
	fmt.Println("stdout chatter")      // ok: fmt.Print* is exempt
	fmt.Fprintf(b, "x=%d", 1)          // ok: strings.Builder cannot fail
	fmt.Fprintln(os.Stderr, "warning") // ok: stderr writes are exempt
	b.WriteString("tail")              // ok: never-fail method
}

func fallibleWriter(f *os.File) {
	fmt.Fprintf(f, "x=%d", 1) // want: file writes can fail
}
