// Package naninout is a fixture for the naninout analyzer. The fixture is
// loaded under an import path ending in internal/mathutil, one of the
// NaN-policed packages: exported float-returning functions with NaN-capable
// arithmetic must return an ok/error or engage with the NaN domain.
package naninout

import "math"

// BadMean divides by a parameter and hands the raw float to the caller.
func BadMean(sum, n float64) float64 {
	return sum / n // want: unchecked float division escapes
}

// BadLog wraps a math domain call without checking the result.
func BadLog(x float64) float64 {
	return math.Log(x) * 2 // want: unchecked domain call escapes
}

// GoodOK pushes the domain decision to the caller via the ok result.
func GoodOK(sum, n float64) (float64, bool) {
	if n == 0 {
		return 0, false
	}
	return sum / n, true
}

// GoodChecked engages with the NaN domain explicitly.
func GoodChecked(x float64) float64 {
	v := math.Log(x)
	if math.IsNaN(v) {
		return 0
	}
	return v
}

// GoodSentinel implements a documented NaN-sentinel convention.
func GoodSentinel(x float64) float64 {
	if x <= 0 {
		return math.NaN()
	}
	return math.Sqrt(x)
}

// Total contains no NaN-capable arithmetic at all.
func Total(xs []float64) float64 {
	var t float64
	for _, x := range xs {
		t += x
	}
	return t
}

// unexported helpers are not API and are out of scope.
func half(x float64) float64 {
	return x / 2
}
