// Package report is the maporder fixture caller: rows accumulated in map
// iteration order inside helpers must be reported when they reach an
// output sink here, and sorting — in either the caller or the callee —
// clears the finding.
package report

import (
	"fmt"
	"io"
	"sort"

	"fixture/internal/helpers"
)

// Write emits rows whose order follows map iteration inside the helper
// chain FormatRows ← bucketByNode.
func Write(w io.Writer, m map[string]int) {
	rows := helpers.FormatRows(m)
	fmt.Fprintln(w, rows)
}

// WriteSorted uses the helper that sorts before returning; the callee
// sanitizes and no finding may appear here.
func WriteSorted(w io.Writer, m map[string]int) {
	fmt.Fprintln(w, helpers.SortedRows(m))
}

// WriteResorted re-sorts in the caller before emitting; the caller
// sanitizes and no finding may appear here.
func WriteResorted(w io.Writer, m map[string]int) {
	rows := helpers.FormatRows(m)
	sort.Strings(rows)
	fmt.Fprintln(w, rows)
}
