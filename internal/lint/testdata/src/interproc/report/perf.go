// The cache propcheck toggles a //edlint:hotpath directive on BuildLabels
// between runs: with the directive, the append-in-loop below becomes a
// prealloc finding; without it, the perf family stays silent. A
// directive-only edit must therefore change both the findings-cache key
// and the findings themselves.
package report

// BuildLabels collects one label per row. Not designated hot in the
// pristine fixture; the propcheck inserts the directive above this
// declaration.
func BuildLabels(rows [][]float64) []string {
	var labels []string
	for range rows {
		labels = append(labels, "row")
	}
	return labels
}
