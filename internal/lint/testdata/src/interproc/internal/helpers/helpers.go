// Package helpers is the unpoliced helper layer of the interprocedural
// fixture: every function here launders an effect that a policed caller
// package consumes — or sanitizes it, proving the summary pass knows the
// difference.
package helpers

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"time"
)

// now launders the clock read one extra frame down.
func now() time.Time { return time.Now() }

// StampLabel returns a label derived from the wall clock, two frames
// away from time.Now.
func StampLabel() string { return now().String() }

// Draw returns an unseeded pseudo-random value.
func Draw() float64 { return rand.Float64() }

// SeededLabel draws through a sanctioned source: the suppression at the
// draw must clear every laundered caller as well.
func SeededLabel() string {
	//edlint:ignore wallclock fixture: the draw derives from a fixed seed and replays identically
	return fmt.Sprint(rand.New(rand.NewSource(42)).Int63())
}

// bucketByNode accumulates rows in map iteration order.
func bucketByNode(m map[string]int) []string {
	var rows []string
	for node, v := range m {
		rows = append(rows, fmt.Sprintf("%s=%d", node, v))
	}
	return rows
}

// FormatRows launders the map-ordered slice one frame up.
func FormatRows(m map[string]int) []string {
	return bucketByNode(m)
}

// SortedRows sanitizes: the rows are sorted before they return, so no
// caller may be flagged for emitting them.
func SortedRows(m map[string]int) []string {
	rows := bucketByNode(m)
	sort.Strings(rows)
	return rows
}

// Detach builds a root context while accepting none.
func Detach() context.Context {
	return context.Background()
}

// Spin starts a goroutine that no context.Context can reach.
func Spin(fn func()) {
	go fn()
}

// SpawnCtx spawns a goroutine that captures the caller's ctx: the spawn
// is cancellable and carries no detached-goroutine effect.
func SpawnCtx(ctx context.Context, fn func()) {
	go func() {
		<-ctx.Done()
		fn()
	}()
}

// Push performs a bare channel send on its parameter.
func Push(ch chan<- int, v int) {
	ch <- v
}

// Relay launders Push's bare send one frame up.
func Relay(ch chan<- int) {
	Push(ch, 7)
}

// PushSafe races the send against cancellation; no bare-send effect.
func PushSafe(ctx context.Context, ch chan<- int, v int) {
	select {
	case ch <- v:
	case <-ctx.Done():
	}
}
