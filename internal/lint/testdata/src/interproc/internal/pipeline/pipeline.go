// Package pipeline is the fixture's policed concurrency caller: ctxflow
// and sendguard findings here must cite helpers' laundered effects with
// the cross-function trace, and the sanitized helpers must stay silent.
package pipeline

import (
	"context"

	"fixture/internal/helpers"
)

// LaunderedDetach has a ctx parameter yet calls a helper that builds a
// root context internally — the context drop is laundered one call deep.
func LaunderedDetach(ctx context.Context) context.Context {
	return helpers.Detach()
}

// LaunderedSpawn spawns a goroutine through a helper that no context can
// reach.
func LaunderedSpawn(fn func()) {
	helpers.Spin(fn)
}

// SanitizedSpawn passes ctx into the helper, whose goroutine captures
// it; the spawn is cancellable and must not be reported.
func SanitizedSpawn(ctx context.Context, fn func()) {
	helpers.SpawnCtx(ctx, fn)
}

// LaunderedSend hands its channel to helpers that perform a bare send,
// one and two frames down.
func LaunderedSend(ch chan<- int) {
	helpers.Push(ch, 1)
	helpers.Relay(ch)
}

// SanitizedSend uses the helper whose send races ctx.Done in a select;
// no finding may appear here.
func SanitizedSend(ctx context.Context, ch chan<- int) {
	helpers.PushSafe(ctx, ch, 2)
}
