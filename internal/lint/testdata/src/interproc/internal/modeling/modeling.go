// Package modeling is the wallclock-policed caller of the fixture: clock
// and rand reads laundered through helpers must be reported here with the
// full cross-function trace, while the sanctioned seeded helper stays
// silent.
package modeling

import "fixture/internal/helpers"

// Label is tainted by a clock read two helper frames down.
func Label() string {
	return helpers.StampLabel()
}

// Jitter is tainted by an unseeded math/rand draw one frame down.
func Jitter() float64 {
	j := helpers.Draw()
	return j
}

// SeededTag calls the helper whose draw is sanctioned at the source; the
// suppression clears this caller too, so no finding may appear here.
func SeededTag() string {
	return helpers.SeededLabel()
}
