//edlint:ignore-file wallclock the engine is the one sanctioned math/rand consumer: every draw derives from an explicit replayable seed, never from the clock

// Package propcheck is a fixture for file-scoped wallclock suppression.
// It is loaded under an import path ending in internal/propcheck, a
// policed package that is a math/rand consumer by design: this file's
// ignore-file directive silences its own draws, while the sibling file
// (sloppy.go) stays fully policed — the suppression must not leak across
// file boundaries.
package propcheck

import "math/rand"

// Rand is a stand-in for the seeded generator wrapper.
type Rand struct {
	rng *rand.Rand
}

// NewRand derives a generator from an explicit seed; suppressed by the
// file directive even though it is a math/rand construction.
func NewRand(seed int64) *Rand {
	return &Rand{rng: rand.New(rand.NewSource(seed))}
}

// Float64 draws from the seeded source; suppressed by the file directive.
func (r *Rand) Float64() float64 {
	return r.rng.Float64()
}
