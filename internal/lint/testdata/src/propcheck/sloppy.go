package propcheck

import (
	"math/rand"
	"time"
)

// BadGlobalDraw bypasses the seeded wrapper with a global draw; the
// sibling file's ignore-file directive must not cover it.
func BadGlobalDraw() float64 {
	return rand.Float64() // want: rand reaches a return value
}

// BadClockSeed derives a seed from the clock, destroying replayability.
func BadClockSeed() *Rand {
	return NewRand(time.Now().UnixNano()) // want: clock reaches a return value
}
