// Package maporder is a fixture for the maporder analyzer: map iteration
// order must not reach output sinks, unsorted accumulations, or
// order-sensitive calls. The blessed idioms — append-then-sort, per-key
// buckets, in-place per-value sorts — must stay silent.
package maporder

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Report mimics a findings accumulator whose add order is observable.
type Report struct{ lines []string }

// Add appends one line to the report.
func (r *Report) Add(line string) { r.lines = append(r.lines, line) }

// BadPrint emits entries in map order.
func BadPrint(m map[string]int) {
	for k, v := range m {
		fmt.Printf("%s=%d\n", k, v) // want: sink inside a map range
	}
}

// BadBuilder writes to a strings.Builder in map order.
func BadBuilder(m map[string]int) string {
	var b strings.Builder
	for k := range m {
		b.WriteString(k) // want: method sink inside a map range
	}
	return b.String()
}

// BadAccumulate collects keys but never sorts them.
func BadAccumulate(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want: unsorted accumulation
	}
	return keys
}

// GoodSortedKeys is the blessed append-then-sort idiom.
func GoodSortedKeys(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // ok: sorted below
	}
	sort.Strings(keys)
	return keys
}

// GoodPerKeyBucket appends into the slot owned by the iteration key.
func GoodPerKeyBucket(src map[string][]int, dst map[string][]int) {
	for k, vs := range src {
		dst[k] = append(dst[k], vs...) // ok: per-key bucket
	}
}

// BadCollapsedBucket appends into a transformed index: distinct keys can
// collide in one bucket, whose element order then follows the map.
func BadCollapsedBucket(src map[string]int, dst map[int][]string) {
	for k, v := range src {
		dst[v%3] = append(dst[v%3], k) // want: collapsed bucket accumulates in map order
	}
}

// BadMutatingCall feeds iteration-dependent state into a method call.
func BadMutatingCall(m map[string]int, rep *Report) {
	for k := range m {
		rep.Add(k) // want: order-dependent mutation
	}
}

// GoodPerValueSort sorts each map value in place: per-value work cannot
// leak iteration order.
func GoodPerValueSort(groups map[string][]int) {
	for _, g := range groups {
		sort.Ints(g) // ok: in-place per-value sort
	}
}

// BadSyncMapRange writes to stdout from a sync.Map.Range callback.
func BadSyncMapRange(m *sync.Map) {
	m.Range(func(k, v any) bool {
		fmt.Println(k, v) // want: sink inside sync.Map.Range
		return true
	})
}

// SuppressedSingleton iterates a map that holds at most one entry by
// construction, so order cannot matter; the suppression documents that.
func SuppressedSingleton(singleton map[string]int) {
	for k, v := range singleton {
		//edlint:ignore maporder the map holds at most one entry by construction
		fmt.Printf("%s=%d\n", k, v) // ok: suppressed
	}
}
