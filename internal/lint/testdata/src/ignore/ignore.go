// Package ignore is a fixture for the suppression machinery: well-formed
// directives silence findings, malformed ones are findings themselves.
package ignore

func suppressedAbove(a, b float64) bool {
	//edlint:ignore floateq fixture: sanctioned exact comparison
	return a == b // ok: suppressed by the directive above
}

func suppressedTrailing(a, b float64) bool {
	return a == b //edlint:ignore floateq fixture: trailing form
}

func missingReason(a, b float64) bool {
	//edlint:ignore floateq
	return a == b // want: the directive lacks a reason, so it suppresses nothing
}

func unknownAnalyzer(a, b float64) bool {
	//edlint:ignore nosuchanalyzer the analyzer name is wrong
	return a == b // want: unknown analyzer, so the finding survives
}

func bareDirective(a, b float64) bool {
	//edlint:ignore
	return a == b // want: empty directive
}

func wrongAnalyzerName(a, b float64) bool {
	//edlint:ignore divguard reason aimed at the wrong analyzer
	return a == b // want: directive names divguard, finding is floateq
}
