// Package boxiface is a fixture for the boxiface analyzer: scalars
// converted or passed into interfaces inside hot loops — the fmt sink
// pattern and explicit any(x) conversions. Hotness comes from
// //edlint:hotpath directives.
package boxiface

import "fmt"

// Labels renders one label per value: the float argument is boxed into
// Sprintf's variadic interface parameter on every iteration.
//
//edlint:hotpath per-candidate label rendering
func Labels(xs []float64) []string {
	out := make([]string, 0, len(xs))
	for _, x := range xs {
		out = append(out, fmt.Sprintf("%.3f", x)) // boxes x per iteration
	}
	return out
}

// Widen stores each scalar through an explicit interface conversion.
//
//edlint:hotpath mirrors the residual accumulator
func Widen(xs []float64, sink []any) {
	for i, x := range xs {
		sink[i] = any(x) // explicit per-iteration boxing
	}
}

// describe builds one diagnostic label; the boxing happens here, and hot
// call sites report it with the interprocedural trace to this conversion.
func describe(x float64) string {
	return fmt.Sprintf("x=%g", x)
}

// Score calls the boxing helper per iteration: reported with the trace
// through describe down to the fmt sink argument.
//
//edlint:hotpath per-candidate scoring loop
func Score(xs []float64) int {
	n := 0
	for _, x := range xs {
		if len(describe(x)) > 4 { // laundered boxing, one frame down
			n++
		}
	}
	return n
}

// Announce keeps a sanctioned fmt sink: the banner prints once per epoch,
// far off the per-fit path.
//
//edlint:hotpath epoch boundary sweep
func Announce(epochs []int) {
	for _, e := range epochs {
		//edlint:ignore boxiface the banner prints once per epoch; this loop is epochs, not fits
		fmt.Println("epoch", e)
	}
}

// Forward passes an existing interface value along: nothing new is boxed,
// so no finding.
//
//edlint:hotpath pass-through sink
func Forward(vals []any) {
	for _, v := range vals {
		fmt.Println(v)
	}
}

// coldLabels is the Labels shape without a hot designation: silent.
func coldLabels(xs []float64) []string {
	out := make([]string, 0, len(xs))
	for _, x := range xs {
		out = append(out, fmt.Sprintf("%.3f", x))
	}
	return out
}

// use keeps coldLabels reachable for the type checker.
var _ = coldLabels
