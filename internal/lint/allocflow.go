package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// This file is the allocation-effect core shared by the perf analyzer
// family (allocloop, prealloc, boxiface, deferhot) and the summary pass.
// allocScan walks one function declaration with full lexical context —
// enclosing loops, amortized-growth regions, cold exit paths — and
// classifies every potential allocation or boxing site. The summarizer
// derives the interprocedural effects (AllocatesPerCall, GrowsSlice,
// BoxesToInterface, CapturesByClosure) from the same scan, so a helper
// that allocates three frames down taints its hot callers with a trace
// to the root site.
//
// Three amortized idioms are exempt by construction, because reporting
// them would punish exactly the code the analyzers exist to encourage:
//
//   - grow-to-cap loops: for len(x) < n { x = append(x, …) } — the
//     canonical reusable-scratch grower, amortized O(1) per call;
//   - cap-guarded allocations: if cap(dst) < n { dst = make(…) } — the
//     reuse-or-grow entry check of buffer-filling helpers;
//   - reset-reuse appends: appends to a target assigned from x[:0] or
//     preallocated with a 3-arg make — the buffer is recycled, append
//     never grows it in steady state.
//
// Sites inside nested return statements and panic arguments are also
// exempt: an early exit executes at most once per loop entry (the
// statement leaves the loop), so an error-path fmt.Errorf does not count
// as a per-iteration allocation. A return in the function body's
// top-level statement list is the function's normal result path and is
// NOT exempt — `return make([]T, n)` is the canonical allocating helper
// the summaries exist to expose.

// allocKind classifies one scanned site.
type allocKind int

const (
	// allocMake: make(T, …) of a slice, map or channel.
	allocMake allocKind = iota
	// allocNew: new(T).
	allocNew
	// allocLit: a slice/map composite literal or &T{…}.
	allocLit
	// allocIntrinsic: an allocating stdlib call (fmt.Sprintf, strconv
	// formatters, strings.Join, …) — functions without bodies in the
	// module whose allocation behaviour the scanner knows intrinsically.
	allocIntrinsic
	// allocAppend: a non-amortized append (GrowsSlice / prealloc).
	allocAppend
	// allocClosure: a function literal capturing enclosing variables.
	allocClosure
	// allocBox: a scalar (basic-typed) value converted or passed into an
	// interface, including fmt sink arguments.
	allocBox
	// allocCall: a call to a module function whose summary carries an
	// allocation-family effect (site.eff names which).
	allocCall
	// allocBoxCall: a call to a module function whose summary boxes.
	allocBoxCall
	// allocDefer: a defer statement inside a loop body (deferhot).
	allocDefer
)

// allocEffect names which summary field an allocCall site feeds.
type allocEffect int

const (
	effAlloc allocEffect = iota
	effGrow
	effClosure
)

// allocSite is one classified allocation/boxing site.
type allocSite struct {
	kind allocKind
	pos  token.Pos
	// desc renders the site for messages ("make([]float64, n)").
	desc string
	// inLoop marks sites lexically inside a for/range body.
	inLoop bool
	// rangeCap is the capacity expression derivable from the innermost
	// enclosing range loop ("len(rows)", or the operand itself for an
	// integer range); empty when the innermost loop derives none.
	rangeCap string
	// rangeOperand is the ranged operand's source text, so appends to
	// the operand itself are not told to preallocate from it.
	rangeOperand string
	// target is the append target's source text (allocAppend only).
	target string
	// sum/eff/effKind carry the callee summary for interprocedural
	// sites (allocCall, allocBoxCall).
	sum     *FuncSummary
	eff     *EffectTrace
	effKind allocEffect
}

// allocFrame is the lexical context of one AST node during the scan.
type allocFrame struct {
	node         ast.Node
	inLoop       bool
	rangeCap     string
	rangeOperand string
	exempt       bool
	inLit        bool
	// topBlock marks the declaration body's own statement list: a return
	// there is the normal result path, not a cold early exit.
	topBlock bool
}

// allocScan classifies every allocation/boxing site of fd, in source
// order. Function-literal bodies are not descended into: their
// allocations happen on the literal's own schedule, not per call of fd —
// the literal itself is the site (allocClosure) when it captures.
func allocScan(pass *Pass, fd *ast.FuncDecl) []allocSite {
	sc := &allocScanner{pass: pass, fd: fd, reuse: collectReuseTargets(pass, fd), claimed: make(map[ast.Node]bool)}
	stack := []allocFrame{{node: fd}}
	ast.Inspect(fd, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if n == fd {
			return true // the root frame is already seeded
		}
		f := sc.childFrame(stack[len(stack)-1], n)
		if lit, ok := n.(*ast.FuncLit); ok {
			sc.visitFuncLit(f, fd, lit)
			return false // closure bodies run on their own schedule
		}
		sc.visit(f, n)
		stack = append(stack, f)
		return true
	})
	return sc.sites
}

// allocScanner accumulates sites during one scan.
type allocScanner struct {
	pass *Pass
	fd   *ast.FuncDecl
	// reuse holds append targets exempted by a [:0] reset or a 3-arg
	// make anywhere in the declaration, keyed by source text.
	reuse map[string]bool
	// claimed marks nodes consumed by an enclosing site (&T{…} claims
	// its composite literal) so they are not classified twice.
	claimed map[ast.Node]bool
	sites   []allocSite
}

// childFrame derives n's lexical context from its parent's.
func (sc *allocScanner) childFrame(parent allocFrame, n ast.Node) allocFrame {
	f := parent
	f.node = n
	if _, ok := n.(*ast.BlockStmt); ok {
		// Only the declaration body's own statement list is top-level;
		// any nested block (if/for/switch bodies) is control flow.
		f.topBlock = parent.node == sc.fd && n == sc.fd.Body
	}
	switch p := parent.node.(type) {
	case *ast.ForStmt:
		if n == p.Body {
			f.inLoop = true
			f.rangeCap, f.rangeOperand = "", ""
			if growToCapLoop(sc.pass, p) {
				f.exempt = true
			}
		}
	case *ast.RangeStmt:
		if n == p.Body {
			f.inLoop = true
			f.rangeCap, f.rangeOperand = rangeCapacity(sc.pass, p)
		}
	case *ast.IfStmt:
		// The cap-guard idiom: if cap(dst) < n { dst = make(…) }.
		if (n == p.Body || n == p.Else) && mentionsCapCall(sc.pass, p.Cond) {
			f.exempt = true
		}
	case *ast.ReturnStmt:
		// A nested return is a cold early exit (it leaves any loop);
		// a top-level-body return is the function's normal result path.
		if !parent.topBlock {
			f.exempt = true
		}
	case *ast.CallExpr:
		if builtinName(sc.pass, p) == "panic" {
			f.exempt = true
		}
	case *ast.CompositeLit:
		f.inLit = true // the outer literal is the reported site
	}
	return f
}

// visit classifies one node in context f.
func (sc *allocScanner) visit(f allocFrame, n ast.Node) {
	if sc.claimed[n] {
		return
	}
	switch n := n.(type) {
	case *ast.DeferStmt:
		if f.inLoop {
			sc.add(f, allocSite{kind: allocDefer, pos: n.Pos(), desc: "defer " + shortExpr(types.ExprString(n.Call))})
		}
	case *ast.AssignStmt:
		sc.visitAssign(f, n)
	case *ast.UnaryExpr:
		if lit, ok := unparen(n.X).(*ast.CompositeLit); ok && n.Op == token.AND {
			sc.claimed[lit] = true
			if !f.exempt && !f.inLit {
				sc.add(f, allocSite{kind: allocLit, pos: n.Pos(), desc: "&" + litTypeString(sc.pass, lit) + "{…}"})
			}
		}
	case *ast.CompositeLit:
		if f.exempt || f.inLit {
			return
		}
		if t := sc.pass.TypeOf(n); t != nil {
			switch t.Underlying().(type) {
			case *types.Slice, *types.Map:
				sc.add(f, allocSite{kind: allocLit, pos: n.Pos(), desc: litTypeString(sc.pass, n) + "{…}"})
			}
		}
	case *ast.CallExpr:
		sc.visitCall(f, n)
	}
}

// visitAssign handles append classification and reuse-target discovery
// happens up front in collectReuseTargets; here only the sites fire.
func (sc *allocScanner) visitAssign(f allocFrame, n *ast.AssignStmt) {
	for i, lhs := range n.Lhs {
		var rhs ast.Expr
		if len(n.Rhs) == len(n.Lhs) {
			rhs = n.Rhs[i]
		} else if len(n.Rhs) == 1 && i == 0 {
			rhs = n.Rhs[0]
		}
		call, ok := unparen(rhs).(*ast.CallExpr)
		if !ok || builtinName(sc.pass, call) != "append" || len(call.Args) == 0 {
			continue
		}
		if f.exempt {
			continue
		}
		base := unparen(call.Args[0])
		if isZeroResetSlice(sc.pass, base) {
			continue // append(x[:0], …): explicit reuse
		}
		target := types.ExprString(lhs)
		if sc.reuse[target] || sc.reuse[types.ExprString(base)] {
			continue // target was reset or capacity-preallocated
		}
		sc.add(f, allocSite{
			kind:   allocAppend,
			pos:    call.Pos(),
			desc:   "append to " + target,
			target: target,
		})
	}
}

// visitCall classifies a call site: builtin allocators, allocating
// stdlib intrinsics, interface boxing of the arguments, and calls into
// the module whose summaries carry allocation-family effects.
func (sc *allocScanner) visitCall(f allocFrame, call *ast.CallExpr) {
	switch builtinName(sc.pass, call) {
	case "make":
		if !f.exempt {
			sc.add(f, allocSite{kind: allocMake, pos: call.Pos(), desc: shortExpr(types.ExprString(call))})
		}
		return
	case "new":
		if !f.exempt {
			sc.add(f, allocSite{kind: allocNew, pos: call.Pos(), desc: shortExpr(types.ExprString(call))})
		}
		return
	case "":
		// not a builtin
	default:
		return // append is handled at its assignment; others don't allocate
	}
	// Explicit conversion to an interface type: any(x), interface{}(x).
	if tv, ok := sc.pass.Info.Types[call.Fun]; ok && tv.IsType() {
		if !f.exempt && len(call.Args) == 1 && types.IsInterface(tv.Type) {
			if bt := basicArgType(sc.pass, call.Args[0]); bt != "" {
				sc.add(f, allocSite{kind: allocBox, pos: call.Pos(), desc: bt + " value boxed by conversion to " + shortExpr(tv.Type.String())})
			}
		}
		return
	}
	if !f.exempt {
		if desc, ok := intrinsicAllocCall(sc.pass, call); ok {
			sc.add(f, allocSite{kind: allocIntrinsic, pos: call.Pos(), desc: desc})
		}
		sc.visitBoxedArgs(f, call)
	}
	if cs := sc.pass.Sums.LookupCall(sc.pass.Info, call); cs != nil {
		switch {
		case cs.AllocatesPerCall != nil:
			sc.add(f, allocSite{kind: allocCall, pos: call.Pos(), sum: cs, eff: cs.AllocatesPerCall, effKind: effAlloc})
		case cs.GrowsSlice != nil:
			sc.add(f, allocSite{kind: allocCall, pos: call.Pos(), sum: cs, eff: cs.GrowsSlice, effKind: effGrow})
		case cs.CapturesByClosure != nil:
			sc.add(f, allocSite{kind: allocCall, pos: call.Pos(), sum: cs, eff: cs.CapturesByClosure, effKind: effClosure})
		}
		if cs.BoxesToInterface != nil {
			sc.add(f, allocSite{kind: allocBoxCall, pos: call.Pos(), sum: cs, eff: cs.BoxesToInterface})
		}
	}
}

// visitBoxedArgs reports basic-typed arguments passed into interface
// parameters — the fmt.Sprintf("%d", i) pattern that boxes a scalar per
// call. Variadic spreads (xs...) pass an existing slice and box nothing.
func (sc *allocScanner) visitBoxedArgs(f allocFrame, call *ast.CallExpr) {
	sig, ok := sc.pass.TypeOf(call.Fun).(*types.Signature)
	if !ok || call.Ellipsis.IsValid() {
		return
	}
	np := sig.Params().Len()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= np-1:
			if sl, ok := sig.Params().At(np - 1).Type().(*types.Slice); ok {
				pt = sl.Elem()
			}
		case i < np:
			pt = sig.Params().At(i).Type()
		}
		if pt == nil || !types.IsInterface(pt) {
			continue
		}
		bt := basicArgType(sc.pass, arg)
		if bt == "" {
			continue
		}
		sc.add(f, allocSite{kind: allocBox, pos: arg.Pos(), desc: bt + " argument " + shortExpr(types.ExprString(arg)) + " boxed into interface parameter of " + shortExpr(types.ExprString(call.Fun))})
	}
}

// visitFuncLit records a capturing closure (non-capturing literals are
// static in the gc compiler and allocate nothing).
func (sc *allocScanner) visitFuncLit(f allocFrame, fd *ast.FuncDecl, lit *ast.FuncLit) {
	if f.exempt {
		return
	}
	name, captures := closureCapture(sc.pass, fd, lit)
	if !captures {
		return
	}
	sc.add(f, allocSite{kind: allocClosure, pos: lit.Pos(), desc: "func literal capturing " + name})
}

// add stamps the frame context onto the site and records it.
func (sc *allocScanner) add(f allocFrame, site allocSite) {
	site.inLoop = f.inLoop
	site.rangeCap = f.rangeCap
	site.rangeOperand = f.rangeOperand
	sc.sites = append(sc.sites, site)
}

// collectReuseTargets finds append targets exempt from growth analysis:
// anything assigned from a [:0] reset or from a 3-arg (capacity-planned)
// make anywhere in the declaration. Capacity-planned fields of composite
// literals count too: x := &T{F: make([]E, 0, n)} exempts x.F.
func collectReuseTargets(pass *Pass, fd *ast.FuncDecl) map[string]bool {
	reuse := make(map[string]bool)
	isPlannedMake := func(e ast.Expr) bool {
		call, ok := unparen(e).(*ast.CallExpr)
		return ok && builtinName(pass, call) == "make" && len(call.Args) == 3
	}
	ast.Inspect(fd, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			rhs = unparen(rhs)
			target := types.ExprString(as.Lhs[i])
			if isZeroResetSlice(pass, rhs) || isPlannedMake(rhs) {
				reuse[target] = true
				continue
			}
			lit, ok := rhs.(*ast.CompositeLit)
			if !ok {
				if ue, isAddr := rhs.(*ast.UnaryExpr); isAddr && ue.Op == token.AND {
					lit, ok = unparen(ue.X).(*ast.CompositeLit)
				}
			}
			if !ok || lit == nil {
				continue
			}
			for _, elt := range lit.Elts {
				kv, isKV := elt.(*ast.KeyValueExpr)
				if !isKV || !isPlannedMake(kv.Value) {
					continue
				}
				if key, isIdent := kv.Key.(*ast.Ident); isIdent {
					reuse[target+"."+key.Name] = true
				}
			}
		}
		return true
	})
	return reuse
}

// isZeroResetSlice reports whether e is a [:0]-style reset: a slice
// expression whose high bound is the constant 0.
func isZeroResetSlice(pass *Pass, e ast.Expr) bool {
	se, ok := unparen(e).(*ast.SliceExpr)
	if !ok || se.High == nil {
		return false
	}
	return isZeroConstant(pass.Info, se.High)
}

// growToCapLoop recognizes for len(x) < n { x = append(x, …) }: a
// len-comparison loop condition with an append in the body. Amortized
// growth to a target capacity, exempt by design.
func growToCapLoop(pass *Pass, f *ast.ForStmt) bool {
	cond, ok := f.Cond.(*ast.BinaryExpr)
	if !ok || (cond.Op != token.LSS && cond.Op != token.LEQ) {
		return false
	}
	isLen := func(e ast.Expr) bool {
		call, ok := unparen(e).(*ast.CallExpr)
		return ok && builtinName(pass, call) == "len"
	}
	if !isLen(cond.X) && !isLen(cond.Y) {
		return false
	}
	hasAppend := false
	ast.Inspect(f.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && builtinName(pass, call) == "append" {
			hasAppend = true
		}
		return !hasAppend
	})
	return hasAppend
}

// mentionsCapCall reports whether the condition contains a cap(…) call —
// the reuse-or-grow guard of buffer-filling helpers.
func mentionsCapCall(pass *Pass, cond ast.Expr) bool {
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && builtinName(pass, call) == "cap" {
			found = true
		}
		return !found
	})
	return found
}

// rangeCapacity derives the preallocation capacity expression of a range
// statement: len(X) for sequences and maps, X itself for an integer
// range. The second result is the operand's own text.
func rangeCapacity(pass *Pass, r *ast.RangeStmt) (capExpr, operand string) {
	x := unparen(r.X)
	t := pass.TypeOf(x)
	if t == nil {
		return "", ""
	}
	operand = types.ExprString(x)
	switch u := t.Underlying().(type) {
	case *types.Slice, *types.Array, *types.Map:
		return "len(" + operand + ")", operand
	case *types.Basic:
		if u.Info()&types.IsString != 0 {
			return "len(" + operand + ")", operand
		}
		if u.Info()&types.IsInteger != 0 {
			return operand, operand
		}
	case *types.Pointer:
		if _, ok := u.Elem().Underlying().(*types.Array); ok {
			return "len(" + operand + ")", operand
		}
	}
	return "", ""
}

// closureCapture reports whether lit references a variable of the
// enclosing declaration (which forces a heap-allocated closure) and
// names the first captured variable.
func closureCapture(pass *Pass, fd *ast.FuncDecl, lit *ast.FuncLit) (string, bool) {
	var name string
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if name != "" {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := pass.Info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		if v.Pos() >= lit.Pos() && v.Pos() < lit.End() {
			return true // the literal's own parameter or local
		}
		if v.Pos() < fd.Pos() || v.Pos() >= fd.End() {
			return true // package-level state, not a capture
		}
		name = id.Name
		return false
	})
	return name, name != ""
}

// builtinName returns the builtin a call invokes ("make", "append",
// "len", …) or "" for non-builtin calls.
func builtinName(pass *Pass, call *ast.CallExpr) string {
	id, ok := unparen(call.Fun).(*ast.Ident)
	if !ok {
		return ""
	}
	if b, ok := pass.Info.Uses[id].(*types.Builtin); ok {
		return b.Name()
	}
	return ""
}

// allocIntrinsics names stdlib functions known to allocate their result
// on every call — bodies the summarizer cannot see. strings.Builder and
// the strconv.Append* family are deliberately absent: they are the fix,
// not the finding.
var allocIntrinsics = map[string]map[string]bool{
	"fmt": {
		"Sprintf": true, "Sprint": true, "Sprintln": true, "Errorf": true,
	},
	"strconv": {
		"FormatFloat": true, "FormatInt": true, "FormatUint": true,
		"Itoa": true, "Quote": true, "FormatComplex": true,
	},
	"strings": {
		"Join": true, "Repeat": true, "Split": true, "SplitN": true,
		"Fields": true, "Replace": true, "ReplaceAll": true,
		"ToUpper": true, "ToLower": true, "Map": true,
	},
	"bytes": {
		"Join": true, "Repeat": true, "Split": true, "Fields": true,
	},
}

// intrinsicAllocCall classifies a call of a known allocating stdlib
// function, returning its display ("fmt.Sprintf").
func intrinsicAllocCall(pass *Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	id, ok := unparen(sel.X).(*ast.Ident)
	if !ok {
		return "", false
	}
	pn, ok := pass.Info.Uses[id].(*types.PkgName)
	if !ok {
		return "", false
	}
	names := allocIntrinsics[pn.Imported().Path()]
	if names == nil || !names[sel.Sel.Name] {
		return "", false
	}
	return pn.Imported().Name() + "." + sel.Sel.Name, true
}

// basicArgType returns the rendered basic type of e when boxing e into
// an interface allocates: named or unnamed scalar/string types, not
// untyped nil and not values that are already interfaces.
func basicArgType(pass *Pass, e ast.Expr) string {
	t := pass.TypeOf(e)
	if t == nil || types.IsInterface(t) {
		return ""
	}
	bt, ok := t.Underlying().(*types.Basic)
	if !ok || bt.Kind() == types.UntypedNil || bt.Kind() == types.Invalid {
		return ""
	}
	return bt.Name()
}

// shortExpr caps rendered expressions for message brevity.
func shortExpr(s string) string {
	const max = 48
	if len(s) <= max {
		return s
	}
	return s[:max-1] + "…"
}

// litTypeString renders a composite literal's type, falling back to the
// checked type for elided element types.
func litTypeString(pass *Pass, lit *ast.CompositeLit) string {
	if lit.Type != nil {
		return shortExpr(types.ExprString(lit.Type))
	}
	if t := pass.TypeOf(lit); t != nil {
		return shortExpr(t.String())
	}
	return "composite"
}

// allocEffects derives the allocation-family summary effects of one
// declaration from its scan: the earliest non-sanctioned site per
// effect, with interprocedural sites extending the callee's trace.
// Exempt (amortized/cold-path) sites never reach the scan output, so a
// grow-to-cap helper stays effect-free.
func (s *summarizer) allocEffects(pass *Pass, n *funcNode) (alloc, grow, box, closure *EffectTrace) {
	setIf := func(dst **EffectTrace, analyzer string, pos token.Pos, tr *EffectTrace) {
		if *dst == nil && !s.sanctionedPos(analyzer, pos) {
			*dst = tr
		}
	}
	for _, site := range allocScan(pass, n.decl) {
		switch site.kind {
		case allocMake, allocNew, allocLit, allocIntrinsic:
			setIf(&alloc, "allocloop", site.pos, &EffectTrace{Chain: []string{site.desc}})
		case allocAppend:
			setIf(&grow, "allocloop", site.pos, &EffectTrace{Chain: []string{site.desc}})
		case allocClosure:
			setIf(&closure, "allocloop", site.pos, &EffectTrace{Chain: []string{site.desc}})
		case allocBox:
			setIf(&box, "boxiface", site.pos, &EffectTrace{Chain: []string{site.desc}})
		case allocCall:
			switch site.effKind {
			case effAlloc:
				setIf(&alloc, "allocloop", site.pos, site.eff.extend(site.sum.Display))
			case effGrow:
				setIf(&grow, "allocloop", site.pos, site.eff.extend(site.sum.Display))
			case effClosure:
				setIf(&closure, "allocloop", site.pos, site.eff.extend(site.sum.Display))
			}
		case allocBoxCall:
			setIf(&box, "boxiface", site.pos, site.eff.extend(site.sum.Display))
		}
	}
	return alloc, grow, box, closure
}

// hotDisplayPath renders the interprocedural chain of a perf finding:
// the hot reporting function, the callee, then the callee's own trace.
func hotDisplayPath(pass *Pass, fd *ast.FuncDecl, site allocSite) string {
	return site.eff.render(funcDisplay(pass, fd), site.sum.Display)
}

// hotLoopSuffix annotates messages with the designation channel, so a
// reader knows whether the function is hot by directive or by the
// policed default set.
func hotLoopSuffix(pass *Pass, fd *ast.FuncDecl) string {
	if hotByDirective(fd) {
		return " (hot by //edlint:hotpath)"
	}
	return " (policed fit-engine hot path)"
}
