package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// MapOrder enforces the pipeline's byte-identical-output guarantee at its
// root: Go map iteration order is randomized, so anything a map-range loop
// feeds into a report, a rendered stream, or an order-sensitive
// accumulation differs between runs. Three patterns are reported inside a
// range over a map (or a sync.Map.Range callback):
//
//   - a write to an output sink (fmt.Print*/Fprint*, io.WriteString, or a
//     Write*/Print* method such as strings.Builder.WriteString) — the
//     output is emitted in map order;
//   - an append to a slice declared outside the loop that is never passed
//     to sort/slices afterwards — the slice accumulates in map order (the
//     sorted-keys idiom, append-then-sort, is recognized and allowed);
//   - in non-test code, a statement-position call whose arguments depend
//     on the iteration variables — state mutated through a method (e.g. a
//     report's add) accumulates in map order.
//
// A fourth, interprocedural rule (edlint v3) fires outside any map range:
// an output sink whose argument came from a helper that — per its module
// summary — returns a slice accumulated in map iteration order without
// sorting it. The finding carries the cross-function trace; sorting in
// either the caller or the callee clears it.
//
// The fix is almost always the same: collect the keys, sort them, and
// iterate the sorted slice (cf. profile.SortedKeys). Where iteration order
// provably cannot reach the output, suppress with
// //edlint:ignore maporder <reason>.
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc: "reports map or sync.Map iteration whose order can reach output " +
		"or an unsorted accumulation; iterate sorted keys instead",
	Run: runMapOrder,
}

// mapRegion is one map-ordered iteration space: the body of a range over a
// map, or the body of a sync.Map.Range callback.
type mapRegion struct {
	body *ast.BlockStmt
	desc string
	pos  token.Pos
	// iterObjs are the objects bound to the iteration variables (range
	// key/value or callback parameters). An append into a bucket indexed
	// directly by one of these is per-key accumulation and order-free.
	iterObjs map[types.Object]bool
}

func runMapOrder(pass *Pass) {
	for _, file := range pass.Files {
		eachTopFunc(file, func(fd *ast.FuncDecl) {
			flows := taintFunc(pass, fd)
			reported := make(map[token.Pos]bool)
			for _, region := range mapRegions(pass, fd) {
				checkMapRegion(pass, fd, flows, region, reported)
			}
			checkInterprocMapOrder(pass, fd, flows, reported)
		})
	}
}

// mapRegions collects every map-ordered iteration space of fd.
func mapRegions(pass *Pass, fd *ast.FuncDecl) []mapRegion {
	var regions []mapRegion
	ast.Inspect(fd, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.RangeStmt:
			if t := pass.TypeOf(n.X); t != nil && isMapType(t) {
				iter := make(map[types.Object]bool)
				addIterObj(pass, iter, n.Key)
				addIterObj(pass, iter, n.Value)
				regions = append(regions, mapRegion{
					body:     n.Body,
					desc:     "range over " + types.ExprString(n.X),
					pos:      n.Pos(),
					iterObjs: iter,
				})
			}
		case *ast.CallExpr:
			if lit := syncMapRangeCallback(pass, n); lit != nil {
				iter := make(map[types.Object]bool)
				for _, field := range lit.Type.Params.List {
					for _, name := range field.Names {
						if obj := pass.Info.Defs[name]; obj != nil {
							iter[obj] = true
						}
					}
				}
				regions = append(regions, mapRegion{
					body:     lit.Body,
					desc:     types.ExprString(n.Fun),
					pos:      n.Pos(),
					iterObjs: iter,
				})
			}
		}
		return true
	})
	return regions
}

// checkMapRegion applies the three maporder rules to one region.
func checkMapRegion(pass *Pass, fd *ast.FuncDecl, flows *flowSet, region mapRegion, reported map[token.Pos]bool) {
	report := func(pos token.Pos, format string, args ...any) {
		if reported[pos] {
			return // a nested region already covers this node
		}
		reported[pos] = true
		pass.Reportf(pos, format, args...)
	}
	ast.Inspect(region.body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if name, ok := outputSinkCall(pass, n); ok {
				report(n.Pos(),
					"%s inside %s: output is emitted in map iteration order; iterate sorted keys instead",
					name, region.desc)
			}
		case *ast.AssignStmt:
			for _, rhs := range n.Rhs {
				call, ok := unparen(rhs).(*ast.CallExpr)
				if !ok || !isBuiltinAppend(pass, call) || len(call.Args) == 0 {
					continue
				}
				dst := unparen(call.Args[0])
				if declaredWithin(pass, dst, region.body) {
					continue // per-iteration local: order cannot escape
				}
				if indexedByIterVar(pass, dst, region.iterObjs) {
					continue // per-key bucket: each iteration appends to its own slot
				}
				if sortedAfter(pass, fd, call.Pos(), dst) {
					continue // append-then-sort idiom
				}
				report(call.Pos(),
					"append to %s inside %s accumulates in map iteration order and %s is never sorted; sort it or iterate sorted keys",
					types.ExprString(dst), region.desc, types.ExprString(dst))
			}
		case *ast.ExprStmt:
			if inTestFile(pass.Fset, n.Pos()) {
				return true // test chatter (t.Errorf in a map range) is harmless
			}
			call, ok := n.X.(*ast.CallExpr)
			if !ok || isBuiltinCall(pass, call) {
				return true
			}
			if _, sink := outputSinkCall(pass, call); sink {
				return true // rule 1 already covers sinks
			}
			if stdSortCall(pass, call) {
				return true // an in-place per-value sort cannot leak iteration order
			}
			for _, arg := range call.Args {
				src := flows.exprSource(arg)
				if src == nil || (src.kind != srcMapRange && src.kind != srcSyncMapRange) {
					continue
				}
				report(n.Pos(),
					"call %s inside %s receives %s, which depends on map iteration order; state mutated here accumulates in that order — iterate sorted keys",
					types.ExprString(call.Fun), region.desc, types.ExprString(arg))
				break
			}
		}
		return true
	})
}

// checkInterprocMapOrder reports output-sink calls whose argument carries
// map-iteration order laundered through a helper: the statically resolved
// callee's summary says it returns a slice accumulated inside a map range
// and never sorted. The caller-side append-then-sort idiom still
// sanitizes — any later sort/slices call over the value clears it — and a
// callee that sorts before returning never produces the summary in the
// first place.
func checkInterprocMapOrder(pass *Pass, fd *ast.FuncDecl, flows *flowSet, reported map[token.Pos]bool) {
	ast.Inspect(fd, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		name, sink := outputSinkCall(pass, call)
		if !sink {
			return true
		}
		for _, arg := range call.Args {
			src := flows.exprSource(arg)
			if src == nil || !src.interproc || !src.mapOrdered() {
				continue
			}
			if sortedAfter(pass, fd, src.pos, arg) {
				continue // caller re-sorts before (or after) emitting
			}
			if reported[call.Pos()] {
				break
			}
			reported[call.Pos()] = true
			pass.Reportf(call.Pos(),
				"%s emits %s, whose element order follows map iteration inside a helper (%s); sort the slice before emitting, or sort it inside the helper",
				name, types.ExprString(arg), src.via(funcDisplay(pass, fd)))
			break
		}
		return true
	})
}

// outputSinkCall reports whether call writes to an output stream and
// names the sink: fmt print functions, io.WriteString, or Write*/Print*
// methods (strings.Builder, bytes.Buffer, io.Writer, ...).
func outputSinkCall(pass *Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	if id, ok := unparen(sel.X).(*ast.Ident); ok {
		if pn, ok := pass.Info.Uses[id].(*types.PkgName); ok {
			switch pn.Imported().Path() {
			case "fmt":
				switch sel.Sel.Name {
				case "Print", "Printf", "Println", "Fprint", "Fprintf", "Fprintln":
					return "fmt." + sel.Sel.Name, true
				}
			case "io":
				if sel.Sel.Name == "WriteString" {
					return "io.WriteString", true
				}
			}
			return "", false
		}
	}
	if selInfo := pass.Info.Selections[sel]; selInfo != nil && selInfo.Kind() == types.MethodVal {
		switch sel.Sel.Name {
		case "Write", "WriteString", "WriteByte", "WriteRune", "Print", "Printf", "Println":
			return types.ExprString(call.Fun), true
		}
	}
	return "", false
}

// isBuiltinAppend reports whether call invokes the append builtin.
func isBuiltinAppend(pass *Pass, call *ast.CallExpr) bool {
	id, ok := unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "append" {
		return false
	}
	_, isBuiltin := pass.Info.Uses[id].(*types.Builtin)
	return isBuiltin
}

// isBuiltinCall reports whether call invokes any builtin (delete, panic,
// println, ...), which the order-dependent-call rule exempts.
func isBuiltinCall(pass *Pass, call *ast.CallExpr) bool {
	id, ok := unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	_, isBuiltin := pass.Info.Uses[id].(*types.Builtin)
	return isBuiltin
}

// addIterObj records the object bound to a range key/value identifier.
func addIterObj(pass *Pass, iter map[types.Object]bool, e ast.Expr) {
	id, ok := unparen(e).(*ast.Ident)
	if !ok || id.Name == "_" {
		return
	}
	if obj := pass.Info.Defs[id]; obj != nil {
		iter[obj] = true
	} else if obj := pass.Info.Uses[id]; obj != nil {
		iter[obj] = true // for k = range m with a pre-declared k
	}
}

// indexedByIterVar reports whether dst is an index expression whose index
// is directly one of the region's iteration variables — the per-key-bucket
// idiom dst[k] = append(dst[k], v), where each iteration owns its slot and
// iteration order cannot reach the result. A transformed index (dst[f(k)])
// does not qualify: distinct keys may collide in one bucket, whose element
// order would then follow the map.
func indexedByIterVar(pass *Pass, dst ast.Expr, iterObjs map[types.Object]bool) bool {
	idx, ok := unparen(dst).(*ast.IndexExpr)
	if !ok {
		return false
	}
	id, ok := unparen(idx.Index).(*ast.Ident)
	if !ok {
		return false
	}
	obj := pass.Info.Uses[id]
	return obj != nil && iterObjs[obj]
}

// declaredWithin reports whether the root identifier of e is declared
// inside the block (a per-iteration local whose order cannot outlive one
// iteration). Selector-based destinations (fields) live beyond the loop by
// construction and return false.
func declaredWithin(pass *Pass, e ast.Expr, block *ast.BlockStmt) bool {
	id, ok := unparen(e).(*ast.Ident)
	if !ok {
		return false
	}
	obj := pass.Info.Uses[id]
	if obj == nil {
		obj = pass.Info.Defs[id]
	}
	if obj == nil {
		return false
	}
	return obj.Pos() >= block.Pos() && obj.Pos() < block.End()
}

// sortedAfter reports whether fd contains, after pos, a call into package
// sort or slices that mentions dst — the append-then-sort idiom that makes
// a map-order accumulation deterministic again.
func sortedAfter(pass *Pass, fd *ast.FuncDecl, pos token.Pos, dst ast.Expr) bool {
	want := types.ExprString(unparen(dst))
	found := false
	ast.Inspect(fd, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < pos || !stdSortCall(pass, call) {
			return true
		}
		for _, arg := range call.Args {
			if mentionsExprString(arg, want) {
				found = true
				break
			}
		}
		return !found
	})
	return found
}

// stdSortCall reports whether call invokes a function from package sort or
// slices. Such a call reorders its argument in place, per value — it
// cannot leak map iteration order into the result.
func stdSortCall(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := unparen(sel.X).(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := pass.Info.Uses[id].(*types.PkgName)
	if !ok {
		return false
	}
	p := pn.Imported().Path()
	return p == "sort" || p == "slices"
}
