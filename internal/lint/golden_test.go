package lint

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden files from current analyzer output")

// TestGolden runs each analyzer over its fixture package under
// testdata/src/ and compares the formatted diagnostics against the
// checked-in golden file. Regenerate with:
//
//	go test ./internal/lint -run TestGolden -update
func TestGolden(t *testing.T) {
	cases := []struct {
		name      string // fixture directory and golden file stem
		path      string // import path the fixture is loaded under
		analyzers []*Analyzer
	}{
		{"floateq", "fixture/floateq", []*Analyzer{FloatEq}},
		{"divguard", "fixture/divguard", []*Analyzer{DivGuard}},
		{"logdomain", "fixture/logdomain", []*Analyzer{LogDomain}},
		// naninout only polices the numerical-core import paths, so the
		// fixture is loaded under one of them.
		{"naninout", "fixture/internal/mathutil", []*Analyzer{NaNInOut}},
		{"errcheck", "fixture/errcheck", []*Analyzer{ErrCheck}},
		{"libpanic", "fixture/libpanic", []*Analyzer{LibPanic}},
		{"maporder", "fixture/maporder", []*Analyzer{MapOrder}},
		// ctxflow, wallclock and sendguard police specific import paths,
		// so their fixtures are loaded under one of them.
		{"ctxflow", "fixture/internal/pipeline", []*Analyzer{CtxFlow}},
		{"wallclock", "fixture/internal/modeling", []*Analyzer{WallClock}},
		{"sendguard", "fixture/internal/pipeline", []*Analyzer{SendGuard}},
		// propcheck exercises file-scoped suppression boundaries: the
		// engine file's //edlint:ignore-file wallclock directive silences
		// its own draws but nothing in the sibling file.
		{"propcheck", "fixture/internal/propcheck", []*Analyzer{WallClock}},
		// The ignore fixtures exercise the suppression machinery against
		// the full default suite, so every analyzer name is "known".
		{"ignore", "fixture/ignore", DefaultAnalyzers()},
		{"ignorescope", "fixture/ignorescope", DefaultAnalyzers()},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			dir := filepath.Join("testdata", "src", tc.name)
			mod, _, err := LoadDir(dir, tc.path)
			if err != nil {
				t.Fatalf("LoadDir(%s): %v", dir, err)
			}
			diags := Run(mod, tc.analyzers, nil)
			var b strings.Builder
			for _, d := range diags {
				// Golden files must be machine-independent, so strip the
				// absolute directory from each position.
				fmt.Fprintf(&b, "%s:%d:%d: %s: %s\n",
					filepath.Base(d.Pos.Filename), d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
			}
			got := b.String()
			golden := filepath.Join("testdata", tc.name+".golden")
			if *update {
				if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
					t.Fatalf("writing %s: %v", golden, err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("reading %s (run with -update to create it): %v", golden, err)
			}
			if got != string(want) {
				t.Errorf("diagnostics for %s diverge from %s\n--- got ---\n%s--- want ---\n%s",
					tc.name, golden, got, want)
			}
			// Single-analyzer fixtures must keep at least one true positive
			// for that analyzer; full-suite fixtures (the suppression ones)
			// have no single expected name to assert on.
			if len(tc.analyzers) == 1 {
				if want := tc.analyzers[0].Name; !strings.Contains(got, want+":") {
					t.Errorf("fixture %s produced no %s finding; every fixture must keep at least one true positive",
						tc.name, want)
				}
			}
		})
	}
}
