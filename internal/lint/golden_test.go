package lint

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden files from current analyzer output")

// TestGolden runs each analyzer over its fixture package under
// testdata/src/ and compares the formatted diagnostics against the
// checked-in golden file. Regenerate with:
//
//	go test ./internal/lint -run TestGolden -update
func TestGolden(t *testing.T) {
	cases := []struct {
		name      string // fixture directory and golden file stem
		path      string // import path the fixture is loaded under
		analyzers []*Analyzer
	}{
		{"floateq", "fixture/floateq", []*Analyzer{FloatEq}},
		{"divguard", "fixture/divguard", []*Analyzer{DivGuard}},
		{"logdomain", "fixture/logdomain", []*Analyzer{LogDomain}},
		// naninout only polices the numerical-core import paths, so the
		// fixture is loaded under one of them.
		{"naninout", "fixture/internal/mathutil", []*Analyzer{NaNInOut}},
		{"errcheck", "fixture/errcheck", []*Analyzer{ErrCheck}},
		{"libpanic", "fixture/libpanic", []*Analyzer{LibPanic}},
		{"maporder", "fixture/maporder", []*Analyzer{MapOrder}},
		// ctxflow, wallclock and sendguard police specific import paths,
		// so their fixtures are loaded under one of them.
		{"ctxflow", "fixture/internal/pipeline", []*Analyzer{CtxFlow}},
		{"wallclock", "fixture/internal/modeling", []*Analyzer{WallClock}},
		{"sendguard", "fixture/internal/pipeline", []*Analyzer{SendGuard}},
		// resilience joined the wallclock-policed core with the fault
		// injection layer: the retrier's sanctioned diagnostic timing is
		// suppressed, everything else reports.
		{"resilience", "fixture/internal/resilience", []*Analyzer{WallClock}},
		// propcheck exercises file-scoped suppression boundaries: the
		// engine file's //edlint:ignore-file wallclock directive silences
		// its own draws but nothing in the sibling file.
		{"propcheck", "fixture/internal/propcheck", []*Analyzer{WallClock}},
		// The ignore fixtures exercise the suppression machinery against
		// the full default suite, so every analyzer name is "known".
		{"ignore", "fixture/ignore", DefaultAnalyzers()},
		{"ignorescope", "fixture/ignorescope", DefaultAnalyzers()},
		// The perf-family single-package fixtures designate hot functions
		// with //edlint:hotpath directives; allocloop's cross-package
		// fixture module has its own test below.
		{"prealloc", "fixture/prealloc", []*Analyzer{PreAlloc}},
		{"boxiface", "fixture/boxiface", []*Analyzer{BoxIface}},
		{"deferhot", "fixture/deferhot", []*Analyzer{DeferHot}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			testGoldenCase(t, tc.name, tc.path, tc.analyzers)
		})
	}
}

func testGoldenCase(t *testing.T, name, path string, analyzers []*Analyzer) {
	t.Helper()
	dir := filepath.Join("testdata", "src", name)
	mod, _, err := LoadDir(dir, path)
	if err != nil {
		t.Fatalf("LoadDir(%s): %v", dir, err)
	}
	got := formatDiags(Run(mod, analyzers, nil))
	compareGolden(t, name, got)
	// Single-analyzer fixtures must keep at least one true positive
	// for that analyzer; full-suite fixtures (the suppression ones)
	// have no single expected name to assert on.
	if len(analyzers) == 1 {
		if want := analyzers[0].Name; !strings.Contains(got, want+":") {
			t.Errorf("fixture %s produced no %s finding; every fixture must keep at least one true positive",
				name, want)
		}
	}
}

// formatDiags renders diagnostics machine-independently: golden files
// must not embed the absolute checkout directory, so positions keep only
// the file's base name.
func formatDiags(diags []Diagnostic) string {
	var b strings.Builder
	for _, d := range diags {
		fmt.Fprintf(&b, "%s:%d:%d: %s: %s\n",
			filepath.Base(d.Pos.Filename), d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
	}
	return b.String()
}

// compareGolden checks got against testdata/<name>.golden, rewriting the
// file under -update.
func compareGolden(t *testing.T, name, got string) {
	t.Helper()
	golden := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatalf("writing %s: %v", golden, err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading %s (run with -update to create it): %v", golden, err)
	}
	if got != string(want) {
		t.Errorf("diagnostics for %s diverge from %s\n--- got ---\n%s--- want ---\n%s",
			name, golden, got, want)
	}
}

// TestGoldenInterproc loads the multi-package fixture module under
// testdata/src/interproc with LoadModule — cross-package summaries need
// the whole module, not a single directory — and runs the four dataflow
// analyzers over it. Beyond the byte-exact golden it asserts the v3
// contract directly: each analyzer reports at least one laundered true
// positive whose message carries a cross-function "←" trace, and none of
// the sanitized helpers (callee sorts before returning, seeded draw
// suppressed at the source, goroutine capturing the caller's ctx, send
// racing ctx.Done in a select) leaks a false positive.
func TestGoldenInterproc(t *testing.T) {
	mod, err := LoadModule(filepath.Join("testdata", "src", "interproc"))
	if err != nil {
		t.Fatalf("LoadModule(interproc): %v", err)
	}
	analyzers := []*Analyzer{MapOrder, WallClock, CtxFlow, SendGuard}
	got := formatDiags(Run(mod, analyzers, nil))
	compareGolden(t, "interproc", got)

	for _, a := range analyzers {
		found := false
		for _, line := range strings.Split(got, "\n") {
			if strings.Contains(line, " "+a.Name+": ") && strings.Contains(line, "←") {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no interprocedural %s finding with a cross-function trace in the interproc fixture", a.Name)
		}
	}
	for _, fp := range []string{
		"SortedRows", "WriteSorted", "WriteResorted", // callee/caller sorts
		"SeededLabel", "SeededTag", // draw sanctioned at the source
		"SanitizedSpawn", "SpawnCtx", // goroutine captures the ctx
		"SanitizedSend", "PushSafe", // send races ctx.Done in a select
	} {
		if strings.Contains(got, fp) {
			t.Errorf("sanitized helper %s appears in a finding; the summary pass must not flag it:\n%s", fp, got)
		}
	}
}

// TestGoldenAllocLoop loads the perf-family module fixture under
// testdata/src/allocloop with LoadModule — the laundered make lives two
// packages away from the hot loop, so cross-package summaries need the
// whole module — and runs allocloop over it. Beyond the byte-exact golden
// it asserts the v4 contract directly: the fitContext methods are hot by
// the policed default set with no directive in the fixture's hot package,
// at least one finding renders the full interprocedural "←" trace to the
// root allocation site, the stray-directive police fires, and none of the
// sanctioned shapes (source-suppressed helper, amortized reuse, site
// suppression, undesignated cold function) leak a false positive.
func TestGoldenAllocLoop(t *testing.T) {
	mod, err := LoadModule(filepath.Join("testdata", "src", "allocloop"))
	if err != nil {
		t.Fatalf("LoadModule(allocloop): %v", err)
	}
	got := formatDiags(Run(mod, []*Analyzer{AllocLoop}, nil))
	compareGolden(t, "allocloop", got)

	if !strings.Contains(got, "fitContext.fitOne ← helpers.EvalTerm ← helpers.newBuf ← make([]float64, n)") {
		t.Errorf("no interprocedural allocloop trace to the root make in the allocloop fixture:\n%s", got)
	}
	if !strings.Contains(got, "stray //edlint:hotpath directive") {
		t.Errorf("the unanchored //edlint:hotpath directive was not reported as stray:\n%s", got)
	}
	for _, fp := range []string{
		"helpers.Scratch",    // allocation sanctioned at the source
		"fitContext.seed",    // hot caller of the sanctioned source
		"fitContext.recycle", // cap-guard + [:0] reset-reuse idioms
		"fitContext.retune",  // site-level suppression with a reason
		"coldSetup",          // same shape, not designated hot
	} {
		if strings.Contains(got, fp) {
			t.Errorf("sanctioned shape %s appears in a finding; the perf family must not flag it:\n%s", fp, got)
		}
	}
}
