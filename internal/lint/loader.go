package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Package is one analysis unit: a type-checked package plus the parsed
// files the diagnostics refer to. Packages that have in-package test files
// are loaded twice internally — once without tests (for importers) and once
// with — but only the richer variant is surfaced as an analysis unit, so
// every file is analyzed exactly once. External test packages (package
// foo_test) form their own unit with the "_test" path suffix.
type Package struct {
	// Path is the import path ("extradeep/internal/pmnf"); external test
	// packages carry a "_test" suffix.
	Path string
	// Dir is the absolute directory the files were read from.
	Dir string
	// Files are the unit's parsed files, comments included.
	Files []*ast.File
	// Types is the type-checked package.
	Types *types.Package
	// Info holds the type-checker's maps for the unit's files.
	Info *types.Info
	// IsTest reports whether the unit includes _test.go files.
	IsTest bool
}

// Module is a fully loaded and type-checked Go module.
type Module struct {
	// Root is the absolute module root (the directory holding go.mod).
	Root string
	// Path is the module path declared in go.mod.
	Path string
	// Fset is the shared file set of every parsed file.
	Fset *token.FileSet
	// Pkgs are the analysis units in deterministic (path) order.
	Pkgs []*Package
}

// LoadOptions tunes LoadModuleWith. The zero value reproduces the
// historical sequential, cacheless load exactly (modulo wall-clock).
type LoadOptions struct {
	// StdProvider, when non-nil, is offered the sorted list of the
	// module's direct non-module imports and may return a pre-built
	// standard-library universe covering all of them. The universe is
	// all-or-nothing: it must be a closed package set (every import of
	// every returned package resolves inside the map), because go/types
	// compares named types by object identity and a universe mixed from
	// cached and freshly source-checked packages would make stdlib types
	// unequal to themselves. Returning nil falls back to type-checking
	// the standard library from source.
	StdProvider func(directs []string) map[string]*types.Package
	// Workers bounds type-checking concurrency; <=0 means GOMAXPROCS.
	Workers int
}

// LoadStats reports how a LoadModuleWith call resolved its inputs.
type LoadStats struct {
	// StdCacheHit reports whether a StdProvider universe was used.
	StdCacheHit bool
	// StdUsed maps every directly imported non-module path to its
	// package, whatever resolved it — input for the cache layer's save.
	StdUsed map[string]*types.Package
	// Workers is the effective concurrency bound.
	Workers int
}

// dirEntry is one source directory of the module, split into the file
// groups Go's build model distinguishes.
type dirEntry struct {
	dir     string // absolute
	path    string // import path
	plain   []*ast.File
	inTest  []*ast.File // _test.go, same package name
	extTest []*ast.File // _test.go, package name + "_test"
	pkgName string
}

// loader resolves and type-checks packages on demand, memoizing results.
// After scan() the dirs map is read-only; plain/loading are guarded by mu
// so phase-2 units can import concurrently.
type loader struct {
	fset    *token.FileSet
	dirs    map[string]*dirEntry // import path → entry
	mu      sync.Mutex
	plain   map[string]*types.Package
	loading map[string]bool
	std     *stdImporter
}

// stdImporter resolves non-module imports: from a pre-built universe when
// one was provided, from the go/importer source importer otherwise. The
// source importer is not safe for concurrent use, so every resolution
// holds the mutex; with a warm universe the lock is held only for a map
// read. Direct imports are recorded for the cache layer's save path.
type stdImporter struct {
	mu     sync.Mutex
	cached map[string]*types.Package
	src    types.Importer
	used   map[string]*types.Package
}

func newStdImporter(fset *token.FileSet) *stdImporter {
	return &stdImporter{
		src:  importer.ForCompiler(fset, "source", nil),
		used: make(map[string]*types.Package),
	}
}

func (s *stdImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if p, ok := s.cached[path]; ok {
		s.used[path] = p
		return p, nil
	}
	if s.cached != nil {
		// The provider's coverage preflight should make this unreachable;
		// failing loudly beats silently mixing universes.
		return nil, fmt.Errorf("package %s missing from the cached standard-library universe", path)
	}
	p, err := s.src.Import(path)
	if err == nil {
		s.used[path] = p
	}
	return p, err
}

// LoadModule parses and type-checks every package of the module rooted at
// root (the directory containing go.mod), including test files, and
// returns the analysis units. Standard-library dependencies are resolved
// from source via go/importer, so no toolchain invocation or third-party
// dependency is needed. Type-check errors anywhere in the module fail the
// load: analyzers only ever see well-typed code.
func LoadModule(root string) (*Module, error) {
	mod, _, err := LoadModuleWith(root, LoadOptions{})
	return mod, err
}

// LoadModuleWith is LoadModule with a pluggable standard-library universe
// and bounded parallel type-checking across the module's import DAG. The
// load runs in two phases: plain (importable) packages are checked level
// by level along the dependency order, then every analysis unit — which
// only ever imports already-memoized plain packages — is checked
// concurrently. Results are deterministic regardless of worker count:
// unit order is path order, and on failure the error of the first unit in
// that order wins.
func LoadModuleWith(root string, opts LoadOptions) (*Module, *LoadStats, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, nil, err
	}
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, nil, err
	}
	fset := token.NewFileSet()
	ld := &loader{
		fset:    fset,
		dirs:    make(map[string]*dirEntry),
		plain:   make(map[string]*types.Package),
		loading: make(map[string]bool),
		std:     newStdImporter(fset),
	}
	if err := ld.scan(root, modPath); err != nil {
		return nil, nil, err
	}
	if len(ld.dirs) == 0 {
		return nil, nil, fmt.Errorf("lint: module %s at %s contains no Go files", modPath, root)
	}

	stats := &LoadStats{Workers: opts.Workers}
	if stats.Workers <= 0 {
		stats.Workers = runtime.GOMAXPROCS(0)
	}
	if opts.StdProvider != nil {
		if universe := opts.StdProvider(ld.externalImports()); universe != nil {
			ld.std.cached = universe
			stats.StdCacheHit = true
		}
	}

	// The scheduler needs the plain-package import DAG up front: the
	// level plan comes from it, and a cycle would otherwise deadlock-shape
	// into a false "still loading" answer under concurrency instead of
	// the clear report the sequential walk used to give.
	deps := ld.plainDeps()
	if cyc := importCycle(deps); cyc != nil {
		return nil, nil, fmt.Errorf("lint: import cycle: %s", strings.Join(cyc, " → "))
	}

	// Phase 1: memoize every plain package any unit will import, level by
	// level so that a package's dependencies are always already built when
	// its own check starts. Within a level, packages are independent.
	for _, level := range topoLevels(ld.neededPlain(deps), deps) {
		level := level
		err := runPool(stats.Workers, len(level), func(i int) error {
			if _, err := ld.Import(level[i]); err != nil {
				return fmt.Errorf("lint: %s: %w", level[i], err)
			}
			return nil
		})
		if err != nil {
			return nil, nil, err
		}
	}

	// Phase 2: check every analysis unit. Units never depend on each
	// other — they import only plain packages — so they all run at once.
	paths := make([]string, 0, len(ld.dirs))
	for p := range ld.dirs {
		paths = append(paths, p)
	}
	sort.Strings(paths)

	type unitSpec struct {
		path   string
		dir    string
		files  []*ast.File
		isTest bool
	}
	var specs []unitSpec
	for _, path := range paths {
		e := ld.dirs[path]
		// Unit 1: the package itself, with in-package tests when present.
		if files := append(append([]*ast.File(nil), e.plain...), e.inTest...); len(files) > 0 {
			specs = append(specs, unitSpec{path, e.dir, files, len(e.inTest) > 0})
		}
		// Unit 2: the external test package, if any.
		if len(e.extTest) > 0 {
			specs = append(specs, unitSpec{path + "_test", e.dir, e.extTest, true})
		}
	}
	units := make([]*Package, len(specs))
	err = runPool(stats.Workers, len(specs), func(i int) error {
		s := specs[i]
		info := newInfo()
		tpkg, err := ld.check(s.path, s.files, info)
		if err != nil {
			return fmt.Errorf("lint: %s: %w", s.path, err)
		}
		units[i] = &Package{
			Path:   s.path,
			Dir:    s.dir,
			Files:  s.files,
			Types:  tpkg,
			Info:   info,
			IsTest: s.isTest,
		}
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	stats.StdUsed = ld.std.used
	return &Module{Root: root, Path: modPath, Fset: fset, Pkgs: units}, stats, nil
}

// LoadDir parses and type-checks the single directory dir as a package
// with the given import path, resolving imports against the standard
// library only. It exists for fixture tests, whose packages live under
// testdata/ and are therefore invisible to LoadModule.
func LoadDir(dir, path string) (*Module, *Package, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return nil, nil, err
	}
	fset := token.NewFileSet()
	files, _, err := parseDir(fset, dir)
	if err != nil {
		return nil, nil, err
	}
	if len(files) == 0 {
		return nil, nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	ld := &loader{
		fset:    fset,
		dirs:    map[string]*dirEntry{},
		plain:   map[string]*types.Package{},
		loading: map[string]bool{},
		std:     newStdImporter(fset),
	}
	info := newInfo()
	tpkg, err := ld.check(path, files, info)
	if err != nil {
		return nil, nil, fmt.Errorf("lint: %s: %w", dir, err)
	}
	pkg := &Package{Path: path, Dir: dir, Files: files, Types: tpkg, Info: info}
	mod := &Module{Root: dir, Path: path, Fset: fset, Pkgs: []*Package{pkg}}
	return mod, pkg, nil
}

// scan walks the module tree and parses every source directory. Hidden
// directories, vendor/ and testdata/ trees are skipped, matching the go
// tool's build ignore rules.
func (ld *loader) scan(root, modPath string) error {
	return filepath.WalkDir(root, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if p != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
			name == "vendor" || name == "testdata") {
			return filepath.SkipDir
		}
		files, pkgName, perr := parseDir(ld.fset, p)
		if perr != nil {
			return perr
		}
		if len(files) == 0 {
			return nil
		}
		rel, rerr := filepath.Rel(root, p)
		if rerr != nil {
			return rerr
		}
		path := modPath
		if rel != "." {
			path = modPath + "/" + filepath.ToSlash(rel)
		}
		e := &dirEntry{dir: p, path: path, pkgName: pkgName}
		for _, f := range files {
			fname := ld.fset.Position(f.Package).Filename
			switch {
			case !strings.HasSuffix(fname, "_test.go"):
				e.plain = append(e.plain, f)
			case strings.HasSuffix(f.Name.Name, "_test"):
				e.extTest = append(e.extTest, f)
			default:
				e.inTest = append(e.inTest, f)
			}
		}
		ld.dirs[path] = e
		return nil
	})
}

// parseDir parses every .go file of one directory (without recursing) and
// returns the files in name order plus the non-test package name.
func parseDir(fset *token.FileSet, dir string) ([]*ast.File, string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, "", err
	}
	var files []*ast.File
	pkgName := ""
	for _, ent := range entries {
		name := ent.Name()
		if ent.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, "", err
		}
		files = append(files, f)
		if !strings.HasSuffix(name, "_test.go") {
			pkgName = f.Name.Name
		}
	}
	return files, pkgName, nil
}

// fileImports returns the distinct unquoted import paths of files.
func fileImports(files ...[]*ast.File) []string {
	seen := make(map[string]bool)
	var out []string
	for _, group := range files {
		for _, f := range group {
			for _, spec := range f.Imports {
				p, err := strconv.Unquote(spec.Path.Value)
				if err != nil || seen[p] {
					continue
				}
				seen[p] = true
				out = append(out, p)
			}
		}
	}
	sort.Strings(out)
	return out
}

// externalImports returns the sorted direct imports that resolve outside
// the module (the standard library, since edlint loads dependency-free
// modules). "unsafe" is excluded: it is a compiler intrinsic, not a
// package any universe needs to provide.
func (ld *loader) externalImports() []string {
	var out []string
	for _, e := range ld.dirs {
		for _, p := range fileImports(e.plain, e.inTest, e.extTest) {
			if _, ok := ld.dirs[p]; !ok && p != "unsafe" {
				out = append(out, p)
			}
		}
	}
	sort.Strings(out)
	return dedupSorted(out)
}

// plainDeps maps each module package to its module-internal imports from
// plain (non-test) files only — the graph the importer actually follows.
func (ld *loader) plainDeps() map[string][]string {
	deps := make(map[string][]string, len(ld.dirs))
	for path, e := range ld.dirs {
		var ds []string
		for _, p := range fileImports(e.plain) {
			if _, ok := ld.dirs[p]; ok {
				ds = append(ds, p)
			}
		}
		deps[path] = ds
	}
	return deps
}

// neededPlain returns, transitively closed and sorted, every module
// package some analysis unit imports — the set phase 1 must memoize.
// Test files participate as importers here: an external test package's
// self-import makes its package under test needed.
func (ld *loader) neededPlain(deps map[string][]string) []string {
	need := make(map[string]bool)
	var add func(p string)
	add = func(p string) {
		if need[p] {
			return
		}
		need[p] = true
		for _, d := range deps[p] {
			add(d)
		}
	}
	dirPaths := make([]string, 0, len(ld.dirs))
	for p := range ld.dirs {
		dirPaths = append(dirPaths, p)
	}
	sort.Strings(dirPaths)
	for _, dp := range dirPaths {
		e := ld.dirs[dp]
		for _, p := range fileImports(e.plain, e.inTest, e.extTest) {
			if _, ok := ld.dirs[p]; ok {
				add(p)
			}
		}
	}
	out := make([]string, 0, len(need))
	for p := range need {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// importCycle returns one module-internal import cycle as a path of
// import paths ending where it started, or nil when the graph is acyclic.
func importCycle(deps map[string][]string) []string {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make(map[string]int, len(deps))
	var stack []string
	var visit func(p string) []string
	visit = func(p string) []string {
		color[p] = gray
		stack = append(stack, p)
		for _, d := range deps[p] {
			switch color[d] {
			case white:
				if cyc := visit(d); cyc != nil {
					return cyc
				}
			case gray:
				for i, s := range stack {
					if s == d {
						return append(append([]string(nil), stack[i:]...), d)
					}
				}
			}
		}
		stack = stack[:len(stack)-1]
		color[p] = black
		return nil
	}
	paths := make([]string, 0, len(deps))
	for p := range deps {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		if color[p] == white {
			if cyc := visit(p); cyc != nil {
				return cyc
			}
		}
	}
	return nil
}

// topoLevels layers the needed packages by dependency depth: level 0 has
// no module-internal imports, level k imports only levels < k. Levels are
// sorted, so the schedule is deterministic for any worker count.
func topoLevels(needed []string, deps map[string][]string) [][]string {
	inNeed := make(map[string]bool, len(needed))
	for _, p := range needed {
		inNeed[p] = true
	}
	depth := make(map[string]int, len(needed))
	var rank func(p string) int
	rank = func(p string) int {
		if d, ok := depth[p]; ok {
			return d
		}
		depth[p] = 0 // settled below; cycles were rejected before this runs
		max := 0
		for _, d := range deps[p] {
			if inNeed[d] {
				if r := rank(d) + 1; r > max {
					max = r
				}
			}
		}
		depth[p] = max
		return max
	}
	var levels [][]string
	for _, p := range needed {
		r := rank(p)
		for len(levels) <= r {
			levels = append(levels, nil)
		}
		levels[r] = append(levels[r], p)
	}
	for _, lvl := range levels {
		sort.Strings(lvl)
	}
	return levels
}

// dedupSorted removes adjacent duplicates from a sorted slice in place.
func dedupSorted(s []string) []string {
	out := s[:0]
	for i, v := range s {
		if i == 0 || v != s[i-1] {
			out = append(out, v)
		}
	}
	return out
}

// runPool runs fn(0..n-1) on at most workers goroutines and returns the
// error of the smallest failing index, mirroring internal/pipeline's
// forEach contract: results are deterministic for any worker count, and
// every started task runs to completion before the pool returns.
func runPool(workers, n int, fn func(i int) error) error {
	if n == 0 {
		return nil
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	tasks := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range tasks {
				errs[i] = fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		tasks <- i
	}
	close(tasks)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Import resolves an import path: module-internal packages are
// type-checked from the scanned sources (memoized, cycle-checked), and
// everything else is delegated to the standard-library importer. Safe for
// concurrent use; LoadModuleWith's level schedule guarantees no two
// goroutines ever build the same plain package.
func (ld *loader) Import(path string) (*types.Package, error) {
	e, ok := ld.dirs[path]
	if !ok {
		return ld.std.Import(path)
	}
	ld.mu.Lock()
	if pkg, ok := ld.plain[path]; ok {
		ld.mu.Unlock()
		return pkg, nil
	}
	if ld.loading[path] {
		ld.mu.Unlock()
		return nil, fmt.Errorf("import cycle through %s", path)
	}
	ld.loading[path] = true
	ld.mu.Unlock()

	pkg, err := ld.check(path, e.plain, newInfo())

	ld.mu.Lock()
	delete(ld.loading, path)
	if err == nil {
		ld.plain[path] = pkg
	}
	ld.mu.Unlock()
	return pkg, err
}

// check type-checks one file set as the package at path. On failure it
// reports up to the first three positioned type errors, so the user sees
// what to fix instead of a bare "type errors" or an empty package.
func (ld *loader) check(path string, files []*ast.File, info *types.Info) (*types.Package, error) {
	var errs []error
	conf := types.Config{
		Importer: ld,
		Error:    func(err error) { errs = append(errs, err) },
	}
	pkg, err := conf.Check(path, ld.fset, files, info)
	if len(errs) > 0 {
		const maxShown = 3
		shown := errs
		suffix := ""
		if len(errs) > maxShown {
			shown = errs[:maxShown]
			suffix = fmt.Sprintf(" (and %d more)", len(errs)-maxShown)
		}
		msgs := make([]string, len(shown))
		for i, e := range shown {
			msgs[i] = e.Error()
		}
		return nil, fmt.Errorf("type errors: %s%s", strings.Join(msgs, "; "), suffix)
	}
	if err != nil {
		return nil, err
	}
	return pkg, nil
}

// newInfo allocates the full set of type-checker maps the analyzers use.
func newInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			p := strings.TrimSpace(rest)
			p = strings.Trim(p, `"`)
			if p != "" {
				return p, nil
			}
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s", gomod)
}

// FindModuleRoot walks upward from dir to the nearest directory containing
// a go.mod file.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("lint: no go.mod found above %s", dir)
		}
		dir = parent
	}
}
