package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one analysis unit: a type-checked package plus the parsed
// files the diagnostics refer to. Packages that have in-package test files
// are loaded twice internally — once without tests (for importers) and once
// with — but only the richer variant is surfaced as an analysis unit, so
// every file is analyzed exactly once. External test packages (package
// foo_test) form their own unit with the "_test" path suffix.
type Package struct {
	// Path is the import path ("extradeep/internal/pmnf"); external test
	// packages carry a "_test" suffix.
	Path string
	// Dir is the absolute directory the files were read from.
	Dir string
	// Files are the unit's parsed files, comments included.
	Files []*ast.File
	// Types is the type-checked package.
	Types *types.Package
	// Info holds the type-checker's maps for the unit's files.
	Info *types.Info
	// IsTest reports whether the unit includes _test.go files.
	IsTest bool
}

// Module is a fully loaded and type-checked Go module.
type Module struct {
	// Root is the absolute module root (the directory holding go.mod).
	Root string
	// Path is the module path declared in go.mod.
	Path string
	// Fset is the shared file set of every parsed file.
	Fset *token.FileSet
	// Pkgs are the analysis units in deterministic (path) order.
	Pkgs []*Package
}

// dirEntry is one source directory of the module, split into the file
// groups Go's build model distinguishes.
type dirEntry struct {
	dir     string // absolute
	path    string // import path
	plain   []*ast.File
	inTest  []*ast.File // _test.go, same package name
	extTest []*ast.File // _test.go, package name + "_test"
	pkgName string
}

// loader resolves and type-checks packages on demand, memoizing results.
type loader struct {
	fset    *token.FileSet
	dirs    map[string]*dirEntry // import path → entry
	plain   map[string]*types.Package
	loading map[string]bool
	std     types.Importer
	errs    []error
}

// LoadModule parses and type-checks every package of the module rooted at
// root (the directory containing go.mod), including test files, and
// returns the analysis units. Standard-library dependencies are resolved
// from source via go/importer, so no toolchain invocation or third-party
// dependency is needed. Type-check errors anywhere in the module fail the
// load: analyzers only ever see well-typed code.
func LoadModule(root string) (*Module, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	ld := &loader{
		fset:    fset,
		dirs:    make(map[string]*dirEntry),
		plain:   make(map[string]*types.Package),
		loading: make(map[string]bool),
		std:     importer.ForCompiler(fset, "source", nil),
	}
	if err := ld.scan(root, modPath); err != nil {
		return nil, err
	}
	if len(ld.dirs) == 0 {
		return nil, fmt.Errorf("lint: module %s at %s contains no Go files", modPath, root)
	}

	paths := make([]string, 0, len(ld.dirs))
	for p := range ld.dirs {
		paths = append(paths, p)
	}
	sort.Strings(paths)

	mod := &Module{Root: root, Path: modPath, Fset: fset}
	for _, path := range paths {
		e := ld.dirs[path]
		// Unit 1: the package itself, with in-package tests when present.
		files := append(append([]*ast.File(nil), e.plain...), e.inTest...)
		if len(files) > 0 {
			info := newInfo()
			tpkg, err := ld.check(path, files, info)
			if err != nil {
				return nil, fmt.Errorf("lint: %s: %w", path, err)
			}
			mod.Pkgs = append(mod.Pkgs, &Package{
				Path:   path,
				Dir:    e.dir,
				Files:  files,
				Types:  tpkg,
				Info:   info,
				IsTest: len(e.inTest) > 0,
			})
		}
		// Unit 2: the external test package, if any.
		if len(e.extTest) > 0 {
			info := newInfo()
			tpkg, err := ld.check(path+"_test", e.extTest, info)
			if err != nil {
				return nil, fmt.Errorf("lint: %s_test: %w", path, err)
			}
			mod.Pkgs = append(mod.Pkgs, &Package{
				Path:   path + "_test",
				Dir:    e.dir,
				Files:  e.extTest,
				Types:  tpkg,
				Info:   info,
				IsTest: true,
			})
		}
	}
	return mod, nil
}

// LoadDir parses and type-checks the single directory dir as a package
// with the given import path, resolving imports against the standard
// library only. It exists for fixture tests, whose packages live under
// testdata/ and are therefore invisible to LoadModule.
func LoadDir(dir, path string) (*Module, *Package, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return nil, nil, err
	}
	fset := token.NewFileSet()
	files, _, err := parseDir(fset, dir)
	if err != nil {
		return nil, nil, err
	}
	if len(files) == 0 {
		return nil, nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	ld := &loader{
		fset:  fset,
		dirs:  map[string]*dirEntry{},
		plain: map[string]*types.Package{},
		std:   importer.ForCompiler(fset, "source", nil),
	}
	info := newInfo()
	tpkg, err := ld.check(path, files, info)
	if err != nil {
		return nil, nil, fmt.Errorf("lint: %s: %w", dir, err)
	}
	pkg := &Package{Path: path, Dir: dir, Files: files, Types: tpkg, Info: info}
	mod := &Module{Root: dir, Path: path, Fset: fset, Pkgs: []*Package{pkg}}
	return mod, pkg, nil
}

// scan walks the module tree and parses every source directory. Hidden
// directories, vendor/ and testdata/ trees are skipped, matching the go
// tool's build ignore rules.
func (ld *loader) scan(root, modPath string) error {
	return filepath.WalkDir(root, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if p != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
			name == "vendor" || name == "testdata") {
			return filepath.SkipDir
		}
		files, pkgName, perr := parseDir(ld.fset, p)
		if perr != nil {
			return perr
		}
		if len(files) == 0 {
			return nil
		}
		rel, rerr := filepath.Rel(root, p)
		if rerr != nil {
			return rerr
		}
		path := modPath
		if rel != "." {
			path = modPath + "/" + filepath.ToSlash(rel)
		}
		e := &dirEntry{dir: p, path: path, pkgName: pkgName}
		for _, f := range files {
			fname := ld.fset.Position(f.Package).Filename
			switch {
			case !strings.HasSuffix(fname, "_test.go"):
				e.plain = append(e.plain, f)
			case strings.HasSuffix(f.Name.Name, "_test"):
				e.extTest = append(e.extTest, f)
			default:
				e.inTest = append(e.inTest, f)
			}
		}
		ld.dirs[path] = e
		return nil
	})
}

// parseDir parses every .go file of one directory (without recursing) and
// returns the files in name order plus the non-test package name.
func parseDir(fset *token.FileSet, dir string) ([]*ast.File, string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, "", err
	}
	var files []*ast.File
	pkgName := ""
	for _, ent := range entries {
		name := ent.Name()
		if ent.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, "", err
		}
		files = append(files, f)
		if !strings.HasSuffix(name, "_test.go") {
			pkgName = f.Name.Name
		}
	}
	return files, pkgName, nil
}

// Import resolves an import path: module-internal packages are
// type-checked from the scanned sources (memoized, cycle-checked), and
// everything else is delegated to the standard-library source importer.
func (ld *loader) Import(path string) (*types.Package, error) {
	e, ok := ld.dirs[path]
	if !ok {
		return ld.std.Import(path)
	}
	if pkg, ok := ld.plain[path]; ok {
		return pkg, nil
	}
	if ld.loading[path] {
		return nil, fmt.Errorf("import cycle through %s", path)
	}
	ld.loading[path] = true
	defer delete(ld.loading, path)
	pkg, err := ld.check(path, e.plain, newInfo())
	if err != nil {
		return nil, err
	}
	ld.plain[path] = pkg
	return pkg, nil
}

// check type-checks one file set as the package at path. On failure it
// reports up to the first three positioned type errors, so the user sees
// what to fix instead of a bare "type errors" or an empty package.
func (ld *loader) check(path string, files []*ast.File, info *types.Info) (*types.Package, error) {
	var errs []error
	conf := types.Config{
		Importer: ld,
		Error:    func(err error) { errs = append(errs, err) },
	}
	pkg, err := conf.Check(path, ld.fset, files, info)
	if len(errs) > 0 {
		const maxShown = 3
		shown := errs
		suffix := ""
		if len(errs) > maxShown {
			shown = errs[:maxShown]
			suffix = fmt.Sprintf(" (and %d more)", len(errs)-maxShown)
		}
		msgs := make([]string, len(shown))
		for i, e := range shown {
			msgs[i] = e.Error()
		}
		return nil, fmt.Errorf("type errors: %s%s", strings.Join(msgs, "; "), suffix)
	}
	if err != nil {
		return nil, err
	}
	return pkg, nil
}

// newInfo allocates the full set of type-checker maps the analyzers use.
func newInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			p := strings.TrimSpace(rest)
			p = strings.Trim(p, `"`)
			if p != "" {
				return p, nil
			}
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s", gomod)
}

// FindModuleRoot walks upward from dir to the nearest directory containing
// a go.mod file.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("lint: no go.mod found above %s", dir)
		}
		dir = parent
	}
}
