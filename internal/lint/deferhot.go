package lint

import "go/ast"

// DeferHot reports defer statements inside the loop bodies of designated
// hot functions: each iteration allocates a defer record that only runs
// at function exit, so a defer-per-iteration both leaks resources until
// the function returns and adds a per-iteration allocation. The fix is
// to hoist the defer out of the loop or wrap the loop body in its own
// function whose exit runs the defer.
var DeferHot = &Analyzer{
	Name: "deferhot",
	Doc: "reports defer statements inside hot loop bodies; each iteration " +
		"allocates a defer record that runs only at function exit — hoist the " +
		"defer or wrap the loop body in its own function",
	Run: runDeferHot,
}

func runDeferHot(pass *Pass) {
	for _, file := range pass.Files {
		if inTestFile(pass.Fset, file.Pos()) {
			continue
		}
		eachTopFunc(file, func(fd *ast.FuncDecl) {
			if !isHotFunc(pass, fd) {
				return
			}
			for _, site := range allocScan(pass, fd) {
				if site.kind != allocDefer || !site.inLoop {
					continue
				}
				pass.Reportf(site.pos,
					"%s inside a hot loop body in %s%s runs only at function exit and allocates a defer record per iteration; hoist it or wrap the loop body in its own function, or suppress with //edlint:ignore deferhot <reason>",
					site.desc, funcDisplay(pass, fd), hotLoopSuffix(pass, fd))
			}
		})
	}
}
