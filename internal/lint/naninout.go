package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// nanPolicedPackages are the numerical-core packages whose exported API
// must not leak unchecked NaN/Inf: everything downstream (model selection,
// ranking, reporting) consumes their outputs without re-validating them.
var nanPolicedPackages = []string{
	"internal/pmnf",
	"internal/modeling",
	"internal/epoch",
	"internal/aggregate",
	"internal/mathutil",
}

// NaNInOut polices the NaN contract of the numerical core. In the policed
// packages, an exported function whose results include a float (or float
// slice) must satisfy one of:
//
//   - it also returns an ok/error result, pushing the domain decision to
//     the caller;
//   - its body contains no NaN-capable arithmetic (no float division, no
//     math domain call), so it cannot invent a NaN; or
//   - its body explicitly engages with the NaN domain — calling
//     math.IsNaN/math.IsInf to check, or math.NaN/math.Inf to implement a
//     documented sentinel convention.
//
// Everything else can return an unchecked NaN/Inf that silently corrupts
// every downstream aggregate, and is reported.
var NaNInOut = &Analyzer{
	Name: "naninout",
	Doc: "reports exported float-returning functions in the numerical core " +
		"(pmnf, modeling, epoch, aggregate, mathutil) that contain " +
		"NaN-capable arithmetic but neither return an ok/error nor " +
		"check with math.IsNaN/IsInf",
	Run: runNaNInOut,
}

func runNaNInOut(pass *Pass) {
	path := strings.TrimSuffix(pass.Path, "_test")
	policed := false
	for _, p := range nanPolicedPackages {
		if strings.HasSuffix(path, p) {
			policed = true
			break
		}
	}
	if !policed {
		return
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !fd.Name.IsExported() {
				continue
			}
			if inTestFile(pass.Fset, fd.Pos()) {
				continue // test helpers are not API
			}
			if !returnsUncheckedFloat(pass, fd.Type.Results) {
				continue
			}
			if op := firstNaNCapableOp(pass, fd.Body); op != "" && !handlesNaN(pass, fd.Body) {
				pass.Reportf(fd.Name.Pos(),
					"exported %s returns a float computed with %s but neither returns an ok/error nor checks math.IsNaN/IsInf; callers cannot detect a poisoned result",
					fd.Name.Name, op)
			}
		}
	}
}

// returnsUncheckedFloat reports whether the result list contains a float
// or float-slice result and no trailing bool/error escape hatch.
func returnsUncheckedFloat(pass *Pass, results *ast.FieldList) bool {
	if results == nil || len(results.List) == 0 {
		return false
	}
	hasFloat := false
	for _, f := range results.List {
		t := pass.TypeOf(f.Type)
		if t == nil {
			continue
		}
		if isFloat(t) {
			hasFloat = true
		} else if sl, ok := t.Underlying().(*types.Slice); ok && isFloat(sl.Elem()) {
			hasFloat = true
		}
		switch {
		case types.Identical(t, types.Universe.Lookup("error").Type()):
			return false
		case t.Underlying() == types.Typ[types.Bool]:
			return false
		}
	}
	return hasFloat
}

// firstNaNCapableOp returns a description of the first operation in body
// that can produce NaN/Inf from finite inputs, or "" when there is none.
func firstNaNCapableOp(pass *Pass, body *ast.BlockStmt) string {
	op := ""
	ast.Inspect(body, func(n ast.Node) bool {
		if op != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.BinaryExpr:
			if n.Op == token.QUO {
				if t := pass.TypeOf(n.X); t != nil && isFloat(t) {
					op = "a float division"
				}
			}
		case *ast.CallExpr:
			if name, ok := isMathCall(pass.Info, n, "Log", "Log2", "Log10", "Sqrt", "Pow"); ok {
				op = "math." + name
			}
		}
		return op == ""
	})
	return op
}

// handlesNaN reports whether body engages with the NaN domain explicitly.
func handlesNaN(pass *Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if _, ok := isMathCall(pass.Info, call, "IsNaN", "IsInf", "NaN", "Inf"); ok {
				found = true
			}
		}
		return !found
	})
	return found
}
