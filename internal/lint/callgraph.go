package lint

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// This file builds edlint's module-wide call graph: one node per function
// declaration of every analysis unit, edges from direct (statically
// resolvable) calls. The graph is the substrate of the interprocedural
// summary pass (summary.go): summaries are computed bottom-up over the
// graph's strongly connected components, so a callee's effects are known
// before any of its callers are summarized, and mutual recursion is
// handled by a fixpoint within its component.
//
// Resolution is deliberately static-only: a call through an interface
// method, a function value, or a method value resolves to no node and
// contributes no edge. That keeps the graph sound for the analyzers'
// purpose — an unresolved call is treated as effect-free, so the
// interprocedural analyzers under-report rather than guess — and cheap
// enough to rebuild on every run.

// funcNode is one function declaration in the call graph.
type funcNode struct {
	// key is the stable cross-unit identity (types.Func.FullName): the
	// same function seen through an import resolves to the same key even
	// though the importer's types.Func object differs from the analysis
	// unit's.
	key string
	// display is the compact rendering used in cross-function traces,
	// e.g. "report.Write" or "Pipeline.Run".
	display string
	// pkg is the analysis unit declaring the function.
	pkg *Package
	// decl is the declaration, body included.
	decl *ast.FuncDecl
	// callees are the keys of every statically resolved callee that has a
	// node in the graph, sorted and de-duplicated.
	callees []string
}

// callGraph is the module-wide call graph.
type callGraph struct {
	nodes map[string]*funcNode
}

// buildCallGraph collects every function declaration of the module and
// resolves its direct callees.
func buildCallGraph(mod *Module) *callGraph {
	g := &callGraph{nodes: make(map[string]*funcNode)}
	for _, pkg := range mod.Pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				n := &funcNode{
					key:     obj.FullName(),
					display: displayName(obj),
					pkg:     pkg,
					decl:    fd,
				}
				// A name collision between units (the in-package unit and
				// an external-test unit share no declarations, so this
				// only guards hypothetical duplicates) keeps the first.
				if _, dup := g.nodes[n.key]; !dup {
					g.nodes[n.key] = n
				}
			}
		}
	}
	for _, n := range g.nodes {
		n.callees = resolveCallees(n, g.nodes)
	}
	return g
}

// resolveCallees walks one declaration and returns the sorted unique keys
// of every direct callee that has a node in the graph.
func resolveCallees(n *funcNode, nodes map[string]*funcNode) []string {
	seen := make(map[string]bool)
	ast.Inspect(n.decl, func(node ast.Node) bool {
		call, ok := node.(*ast.CallExpr)
		if !ok {
			return true
		}
		if key, ok := calleeKey(n.pkg.Info, call); ok {
			if _, known := nodes[key]; known {
				seen[key] = true
			}
		}
		return true
	})
	keys := make([]string, 0, len(seen))
	for k := range seen {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// calleeKey statically resolves a call expression to the FullName of the
// called function or method. Interface methods resolve to the abstract
// method's name, which never has a node, so dynamic dispatch contributes
// no edge.
func calleeKey(info *types.Info, call *ast.CallExpr) (string, bool) {
	var id *ast.Ident
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	case *ast.IndexExpr: // generic instantiation f[T](...)
		if inner, ok := unparen(fun.X).(*ast.Ident); ok {
			id = inner
		} else if sel, ok := unparen(fun.X).(*ast.SelectorExpr); ok {
			id = sel.Sel
		}
	}
	if id == nil {
		return "", false
	}
	fn, ok := info.Uses[id].(*types.Func)
	if !ok {
		return "", false
	}
	return fn.FullName(), true
}

// displayName renders a function object compactly for cross-function
// traces: "pkg.Func" for package functions, "Type.Method" for methods
// (pointer receivers lose the star; the type name carries the identity).
func displayName(fn *types.Func) string {
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		name := types.TypeString(t, func(p *types.Package) string { return "" })
		// Instantiated or generic receivers render with brackets; strip
		// them for trace brevity.
		if i := strings.IndexByte(name, '['); i > 0 {
			name = name[:i]
		}
		return name + "." + fn.Name()
	}
	if fn.Pkg() != nil {
		path := fn.Pkg().Path()
		if i := strings.LastIndexByte(path, '/'); i >= 0 {
			path = path[i+1:]
		}
		return path + "." + fn.Name()
	}
	return fn.Name()
}

// sccs returns the graph's strongly connected components in reverse
// topological order (callees before callers), each component's node keys
// sorted for determinism. Tarjan's algorithm emits components in exactly
// that order.
func (g *callGraph) sccs() [][]string {
	keys := make([]string, 0, len(g.nodes))
	for k := range g.nodes {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	index := make(map[string]int, len(keys))
	low := make(map[string]int, len(keys))
	onStack := make(map[string]bool, len(keys))
	var stack []string
	var comps [][]string
	next := 0

	// Iterative Tarjan: the explicit frame stack keeps pathological call
	// chains from overflowing the goroutine stack.
	type frame struct {
		key string
		ci  int // next callee index to visit
	}
	var visit func(root string)
	visit = func(root string) {
		frames := []frame{{key: root}}
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			n := g.nodes[f.key]
			if f.ci == 0 {
				index[f.key] = next
				low[f.key] = next
				next++
				stack = append(stack, f.key)
				onStack[f.key] = true
			}
			advanced := false
			for f.ci < len(n.callees) {
				c := n.callees[f.ci]
				f.ci++
				if _, seen := index[c]; !seen {
					frames = append(frames, frame{key: c})
					advanced = true
					break
				}
				if onStack[c] && index[c] < low[f.key] {
					low[f.key] = index[c]
				}
			}
			if advanced {
				continue
			}
			// All callees visited: pop the frame, fold lowlink upward,
			// and emit a component when this node is its root.
			if low[f.key] == index[f.key] {
				var comp []string
				for {
					k := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[k] = false
					comp = append(comp, k)
					if k == f.key {
						break
					}
				}
				sort.Strings(comp)
				comps = append(comps, comp)
			}
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				parent := &frames[len(frames)-1]
				if low[f.key] < low[parent.key] {
					low[parent.key] = low[f.key]
				}
			}
		}
	}
	for _, k := range keys {
		if _, seen := index[k]; !seen {
			visit(k)
		}
	}
	return comps
}
