package lint

import (
	"bytes"
	"crypto/sha256"
	"encoding/gob"
	"encoding/hex"
	"fmt"
	"go/build"
	"go/types"
	"io/fs"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"time"
)

// This file is edlint's incremental load cache and the high-level Lint
// entry point that ties it to the loader and the analyzers. Two layers,
// invalidated independently, both content-addressed:
//
// Layer 1 — the standard-library bundle. A cold edlint run spends nearly
// all of its time type-checking the ~140-package stdlib closure from
// source (the module itself checks in tens of milliseconds). The bundle
// persists that closure once, via the edexport codec, keyed by toolchain
// identity (go version + GOOS + GOARCH + format) and verified against a
// stat manifest (file name, size, mtime per package directory), so a
// GOROOT edit or toolchain swap degrades to a rebuild, never a stale hit.
// A preflight checks that every direct std import of the module is
// covered by the bundle before any of it is used: coverage is
// all-or-nothing because go/types compares named types by object
// identity, and a universe mixed from cached and freshly-checked
// packages would make stdlib types unequal to themselves.
//
// Layer 2 — the findings cache. When the module's content (every .go
// file plus go.mod, SHA-256 over bytes), the analyzer set, the toolchain
// and the analyzing executable are all unchanged, the previous run's
// diagnostics are returned without loading anything. Any edit anywhere
// changes the key; reverting the edit restores the old key and its hit.
// Package filters bypass this layer: a filtered run's findings are a
// subset and must never be served as the whole.
//
// Every failure mode — unreadable file, corrupt gob, version skew, stale
// manifest — degrades to a cache miss and a cold load. Writes go through
// a temp file + rename so a crashed run can't leave a torn entry.

// lintCacheFormat versions both cache file layouts; bump on change.
const lintCacheFormat = 1

// Options configures a Lint run. The zero value runs the default
// analyzer suite over every package with caching under DefaultCacheDir.
type Options struct {
	// Analyzers to run; nil means DefaultAnalyzers().
	Analyzers []*Analyzer
	// Filter restricts reported packages (nil selects everything). A
	// non-nil filter bypasses the findings cache.
	Filter func(*Package) bool
	// CacheDir overrides the cache location; "" means DefaultCacheDir().
	CacheDir string
	// NoCache disables both cache layers.
	NoCache bool
	// NoFindingsCache keeps the std bundle but always re-analyzes; used
	// by benchmarks that measure the warm load path itself.
	NoFindingsCache bool
	// Workers bounds type-checking concurrency; <=0 means GOMAXPROCS.
	Workers int
}

// Stats reports where a Lint run's time went and how the caches resolved.
type Stats struct {
	// Packages is the number of analysis units checked (0 on a findings
	// cache hit, which loads nothing).
	Packages int
	// Findings is the number of diagnostics returned.
	Findings int
	// LoadMS and AnalyzeMS split the run's wall time; on a findings hit
	// LoadMS covers only the module hash.
	LoadMS    int64
	AnalyzeMS int64
	// StdCache is "hit", "miss", or "off".
	StdCache string
	// FindingsCache is "hit", "miss", "bypass" (filter set), or "off".
	FindingsCache string
	// Workers is the effective type-check concurrency.
	Workers int
}

// DefaultCacheDir returns the per-user edlint cache directory, or "" when
// the platform reports no user cache location (caching is then disabled).
func DefaultCacheDir() string {
	base, err := os.UserCacheDir()
	if err != nil {
		return ""
	}
	return filepath.Join(base, "edlint")
}

// Lint loads the module rooted at root and runs the analyzers over it,
// consulting and refreshing the on-disk caches. The returned diagnostics
// are byte-identical to a cacheless run: both layers key on content, and
// the parity is pinned by TestLintCacheParity and the propcheck suite.
func Lint(root string, opts Options) ([]Diagnostic, *Stats, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, nil, err
	}
	analyzers := opts.Analyzers
	if analyzers == nil {
		analyzers = DefaultAnalyzers()
	}
	cacheDir := opts.CacheDir
	if cacheDir == "" {
		cacheDir = DefaultCacheDir()
	}
	if opts.NoCache {
		cacheDir = ""
	}

	stats := &Stats{StdCache: "off", FindingsCache: "off"}
	start := time.Now()

	// Layer 2 first: on a findings hit nothing needs loading at all.
	var findKey string
	if cacheDir != "" {
		switch {
		case opts.Filter != nil:
			stats.FindingsCache = "bypass"
		case opts.NoFindingsCache:
			stats.FindingsCache = "off"
		default:
			findKey, err = findingsKey(root, analyzers)
			if err != nil {
				return nil, nil, err
			}
			if diags, ok := loadFindings(cacheDir, findKey); ok {
				stats.FindingsCache = "hit"
				stats.Findings = len(diags)
				stats.LoadMS = time.Since(start).Milliseconds()
				return diags, stats, nil
			}
			stats.FindingsCache = "miss"
		}
	}

	// Layers miss or are off: load the module, offering the std bundle.
	lopts := LoadOptions{Workers: opts.Workers}
	if cacheDir != "" {
		stats.StdCache = "miss"
		lopts.StdProvider = func(directs []string) map[string]*types.Package {
			return loadStdBundle(cacheDir, directs)
		}
	}
	mod, lstats, err := LoadModuleWith(root, lopts)
	if err != nil {
		return nil, nil, err
	}
	if lstats.StdCacheHit {
		stats.StdCache = "hit"
	}
	stats.Workers = lstats.Workers
	stats.Packages = len(mod.Pkgs)
	stats.LoadMS = time.Since(start).Milliseconds()

	mark := time.Now()
	diags := Run(mod, analyzers, opts.Filter)
	stats.AnalyzeMS = time.Since(mark).Milliseconds()
	stats.Findings = len(diags)

	if cacheDir != "" {
		if stats.StdCache == "miss" {
			saveStdBundle(cacheDir, lstats.StdUsed)
		}
		if findKey != "" {
			saveFindings(cacheDir, findKey, diags)
		}
	}
	return diags, stats, nil
}

// ---- layer 1: the standard-library bundle ----

// stdCacheFile is the on-disk shape of the bundle: the stat manifest
// travels outside the export data so staleness is detected by a cheap
// directory scan, without decoding the multi-megabyte type graph.
type stdCacheFile struct {
	Format   int
	Manifest []pkgStamp
	Bundle   []byte
}

// pkgStamp records the identity of one stdlib package directory.
type pkgStamp struct {
	Path  string
	Dir   string
	Files []fileStamp
}

// fileStamp is one source file's stat identity.
type fileStamp struct {
	Name    string
	Size    int64
	MtimeNS int64
}

// stdBundlePath keys the bundle file by toolchain identity, so toolchain
// upgrades coexist instead of thrashing one slot.
func stdBundlePath(cacheDir string) string {
	id := fmt.Sprintf("%s-%s-%s-f%d", runtime.Version(), runtime.GOOS, runtime.GOARCH, lintCacheFormat)
	return filepath.Join(cacheDir, "std-"+sanitizeFileName(id)+".bin")
}

// sanitizeFileName keeps cache file names portable.
func sanitizeFileName(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '.', r == '-', r == '_':
			return r
		}
		return '_'
	}, s)
}

// loadStdBundle returns the cached stdlib universe when it is present,
// stat-fresh, and covers every direct import; nil (a miss) otherwise.
func loadStdBundle(cacheDir string, directs []string) map[string]*types.Package {
	data, err := os.ReadFile(stdBundlePath(cacheDir))
	if err != nil {
		return nil
	}
	var f stdCacheFile
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&f); err != nil || f.Format != lintCacheFormat {
		return nil
	}
	for _, ps := range f.Manifest {
		if !stampFresh(ps) {
			return nil
		}
	}
	universe, err := importPackages(f.Bundle)
	if err != nil {
		return nil
	}
	for _, p := range directs {
		if _, ok := universe[p]; !ok {
			return nil // partial coverage would mix universes; miss instead
		}
	}
	return universe
}

// saveStdBundle persists the closure of the std packages a cold load
// used. Best-effort: a failure to save only costs the next run its warm
// start, so errors are deliberately dropped.
func saveStdBundle(cacheDir string, used map[string]*types.Package) {
	if len(used) == 0 {
		return
	}
	paths := make([]string, 0, len(used))
	for p := range used {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	roots := make([]*types.Package, 0, len(used))
	for _, p := range paths {
		roots = append(roots, used[p])
	}
	bundle, err := exportPackages(roots)
	if err != nil {
		return
	}
	f := stdCacheFile{Format: lintCacheFormat, Bundle: bundle}
	for _, p := range importClosure(roots) {
		if ps, ok := stampPackage(p.Path()); ok {
			f.Manifest = append(f.Manifest, ps)
		}
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(f); err != nil {
		return
	}
	_ = writeFileAtomic(stdBundlePath(cacheDir), buf.Bytes())
}

// stampPackage records the current stat identity of one stdlib package
// directory. Unstampable packages ("unsafe", synthesized paths) are
// skipped rather than failing the save.
func stampPackage(path string) (pkgStamp, bool) {
	if path == "unsafe" {
		return pkgStamp{}, false
	}
	bp, err := build.Default.Import(path, "", build.FindOnly)
	if err != nil || bp.Dir == "" {
		return pkgStamp{}, false
	}
	files, ok := stampDir(bp.Dir)
	if !ok {
		return pkgStamp{}, false
	}
	return pkgStamp{Path: path, Dir: bp.Dir, Files: files}, true
}

// stampDir stats every .go file of one directory, in name order.
func stampDir(dir string) ([]fileStamp, bool) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, false
	}
	var out []fileStamp
	for _, ent := range entries {
		name := ent.Name()
		if ent.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasPrefix(name, ".") {
			continue
		}
		fi, err := ent.Info()
		if err != nil {
			return nil, false
		}
		out = append(out, fileStamp{Name: name, Size: fi.Size(), MtimeNS: fi.ModTime().UnixNano()})
	}
	return out, true
}

// stampFresh re-stats one manifest entry and reports whether it matches.
func stampFresh(ps pkgStamp) bool {
	files, ok := stampDir(ps.Dir)
	if !ok || len(files) != len(ps.Files) {
		return false
	}
	for i, f := range files {
		if f != ps.Files[i] {
			return false
		}
	}
	return true
}

// ---- layer 2: the findings cache ----

// findingsFile is the on-disk shape of one cached run.
type findingsFile struct {
	Format int
	Key    string
	Diags  []Diagnostic
}

// findingsKey fingerprints everything the diagnostics depend on: the
// cache format, the toolchain, the analyzing executable, the module root
// and its full .go/go.mod content, the analyzer suite, and the hot-path
// default table the perf analyzers police (//edlint:hotpath directives
// live in file content and are covered by the content hash). Content
// hashes, not mtimes: touching a file without changing it keeps the key,
// and reverting an edit restores it.
func findingsKey(root string, analyzers []*Analyzer) (string, error) {
	h := sha256.New()
	fmt.Fprintf(h, "edlint-findings/%d\n%s/%s/%s\n", lintCacheFormat, runtime.Version(), runtime.GOOS, runtime.GOARCH)
	exe, stamp, err := executableStamp()
	if err != nil {
		return "", err
	}
	fmt.Fprintf(h, "exe %s %s\n", exe, stamp)
	fmt.Fprintf(h, "root %s\n", root)
	names := make([]string, len(analyzers))
	for i, a := range analyzers {
		names[i] = a.Name
	}
	sort.Strings(names)
	fmt.Fprintf(h, "analyzers %s\n", strings.Join(names, ","))
	fmt.Fprintf(h, "hotpaths %s\n", hotPathDefaultsDigest())
	if err := hashModuleContent(h, root); err != nil {
		return "", err
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// executableStamp identifies the running binary by path, size and mtime:
// rebuilding edlint (or the test binary) with changed analyzer logic must
// invalidate cached findings even though no module file moved.
func executableStamp() (string, string, error) {
	exe, err := os.Executable()
	if err != nil {
		return "", "", err
	}
	fi, err := os.Stat(exe)
	if err != nil {
		return "", "", err
	}
	return exe, fmt.Sprintf("%d/%d", fi.Size(), fi.ModTime().UnixNano()), nil
}

// hashModuleContent feeds every module source file the loader would parse
// (plus go.mod) into h as "relpath\x00sha256(content)\n" records in
// sorted path order, applying the loader's directory skip rules so edits
// the load cannot see (testdata, vendor, hidden trees) don't churn keys.
func hashModuleContent(h interface{ Write(p []byte) (int, error) }, root string) error {
	var rels []string
	err := filepath.WalkDir(root, func(p string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		name := d.Name()
		if d.IsDir() {
			if p != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
				name == "vendor" || name == "testdata") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(name, ".go") || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			return nil
		}
		rel, rerr := filepath.Rel(root, p)
		if rerr != nil {
			return rerr
		}
		rels = append(rels, filepath.ToSlash(rel))
		return nil
	})
	if err != nil {
		return err
	}
	rels = append(rels, "go.mod")
	sort.Strings(rels)
	for _, rel := range rels {
		data, err := os.ReadFile(filepath.Join(root, filepath.FromSlash(rel)))
		if err != nil {
			return err
		}
		sum := sha256.Sum256(data)
		_, _ = fmt.Fprintf(h, "%s\x00%s\n", rel, hex.EncodeToString(sum[:]))
	}
	return nil
}

// findingsPath addresses one cached run by a prefix of its key; the full
// key is re-verified inside the file, so prefix collisions only miss.
func findingsPath(cacheDir, key string) string {
	return filepath.Join(cacheDir, "find-"+key[:16]+".bin")
}

// loadFindings returns the cached diagnostics for key, if any.
func loadFindings(cacheDir, key string) ([]Diagnostic, bool) {
	data, err := os.ReadFile(findingsPath(cacheDir, key))
	if err != nil {
		return nil, false
	}
	var f findingsFile
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&f); err != nil ||
		f.Format != lintCacheFormat || f.Key != key {
		return nil, false
	}
	return f.Diags, true
}

// saveFindings persists one run's diagnostics. Best-effort, like the
// bundle save.
func saveFindings(cacheDir, key string, diags []Diagnostic) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(findingsFile{Format: lintCacheFormat, Key: key, Diags: diags}); err != nil {
		return
	}
	_ = writeFileAtomic(findingsPath(cacheDir, key), buf.Bytes())
}

// writeFileAtomic writes data via a temp file + rename, so readers only
// ever observe absent or complete cache entries.
func writeFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	name := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		_ = tmp.Close()
		_ = os.Remove(name)
		return err
	}
	if err := tmp.Close(); err != nil {
		_ = os.Remove(name)
		return err
	}
	if err := os.Rename(name, path); err != nil {
		_ = os.Remove(name)
		return err
	}
	return nil
}
