package lint

import "go/ast"

// AllocLoop is the flagship of the perf analyzer family: it reports
// per-iteration heap allocations inside the loops of designated hot
// functions — direct make/new/composite-literal/intrinsic sites, and
// calls whose interprocedural summary says the callee allocates per
// call, rendered with the full trace to the root allocation site
// ("fitOne ← evalTerm ← make([]float64, …)"). Hot callees are skipped
// at the call site: their own bodies yield the finding exactly once.
//
// The amortized-growth idioms the fit engine is built on (grow-to-cap
// loops, cap-guarded makes, [:0] reuse buffers) and cold exit paths
// (returns, panics) are exempt — see allocflow.go — so the analyzer
// polices steady-state allocation behaviour, not buffer warm-up.
var AllocLoop = &Analyzer{
	Name: "allocloop",
	Doc: "reports per-iteration heap allocations in designated hot loops " +
		"(//edlint:hotpath directives plus the policed fit-engine default set), " +
		"including transitively-allocating calls with an interprocedural trace " +
		"to the root allocation site",
	Run: runAllocLoop,
}

func runAllocLoop(pass *Pass) {
	for _, file := range pass.Files {
		if inTestFile(pass.Fset, file.Pos()) {
			continue
		}
		reportStrayHotpath(pass, file)
		eachTopFunc(file, func(fd *ast.FuncDecl) {
			if !isHotFunc(pass, fd) {
				return
			}
			for _, site := range allocScan(pass, fd) {
				if !site.inLoop {
					continue
				}
				switch site.kind {
				case allocMake, allocNew, allocLit, allocIntrinsic:
					pass.Reportf(site.pos,
						"%s allocates on every iteration of a hot loop in %s%s; hoist it out of the loop or reuse a scratch buffer, or suppress with //edlint:ignore allocloop <reason>",
						site.desc, funcDisplay(pass, fd), hotLoopSuffix(pass, fd))
				case allocCall:
					if site.sum.Hot {
						continue // the callee polices its own body
					}
					pass.Reportf(site.pos,
						"call to %s allocates on every iteration of a hot loop (%s); hoist the call, pass a reusable buffer, or sanction the source with //edlint:ignore allocloop <reason> — which clears every caller",
						site.sum.Display, hotDisplayPath(pass, fd, site))
				}
			}
		})
	}
}
