package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// DivGuard reports divisions (and modulo) whose denominator is a function
// parameter or a struct field with no preceding zero-check in the same
// function. A zero denominator turns integer division into a panic and
// float division into ±Inf/NaN, which then silently propagates through
// every downstream aggregate and model fit.
//
// Scope is deliberately narrow to stay precise: only plain identifiers
// that resolve to parameters (or receivers) and field selector
// expressions are checked — locals are assumed to be established safe by
// the code that computed them, and constant denominators are checked for
// being non-zero at compile time. A "preceding zero-check" is any
// comparison or switch over the same value earlier in the function, which
// matches the guard-then-use style this codebase enforces. Test files are
// exempt: they exercise author-controlled inputs.
var DivGuard = &Analyzer{
	Name: "divguard",
	Doc: "reports x/y and x%y where y is a parameter or field that is " +
		"not compared against anything earlier in the function",
	Run: runDivGuard,
}

func runDivGuard(pass *Pass) {
	for _, file := range pass.Files {
		file := file
		if inTestFile(pass.Fset, file.Pos()) {
			// Tests exercise author-controlled inputs; the guard-then-use
			// discipline is a library-code contract.
			continue
		}
		eachTopFunc(file, func(fn *ast.FuncDecl) {
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				be, ok := n.(*ast.BinaryExpr)
				if !ok || (be.Op != token.QUO && be.Op != token.REM) {
					return true
				}
				t := pass.TypeOf(be.X)
				if t == nil || !isNumeric(t) {
					return true
				}
				den := unparen(be.Y)
				if _, ok := constantValue(pass.Info, den); ok {
					if isZeroConstant(pass.Info, den) {
						pass.Reportf(be.OpPos, "division by constant zero")
					}
					return true
				}
				switch den := den.(type) {
				case *ast.Ident:
					obj := pass.Info.Uses[den]
					if obj == nil {
						return true
					}
					params := paramObjects(pass.Info, file, be.Pos())
					if !params[obj] {
						return true // locals are out of scope for this check
					}
					guarded := hasPriorGuard(fn, be.OpPos, func(e ast.Expr) bool {
						return mentionsObject(pass.Info, e, obj)
					})
					if !guarded {
						pass.Reportf(be.OpPos,
							"division by parameter %q with no preceding zero-check in this function",
							den.Name)
					}
				case *ast.SelectorExpr:
					sel := pass.Info.Selections[den]
					if sel == nil || sel.Kind() != types.FieldVal {
						return true
					}
					want := types.ExprString(den)
					guarded := hasPriorGuard(fn, be.OpPos, func(e ast.Expr) bool {
						return mentionsExprString(e, want)
					})
					if !guarded {
						pass.Reportf(be.OpPos,
							"division by field %q with no preceding zero-check in this function",
							want)
					}
				}
				return true
			})
		})
	}
}
