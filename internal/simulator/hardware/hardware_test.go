package hardware

import (
	"testing"

	"extradeep/internal/mathutil"
)

func TestDEEPMatchesTable1(t *testing.T) {
	s := DEEP()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.Nodes != 75 {
		t.Errorf("DEEP nodes = %d, want 75", s.Nodes)
	}
	if s.Node.GPUsPerNode != 1 {
		t.Errorf("DEEP GPUs/node = %d, want 1", s.Node.GPUsPerNode)
	}
	if s.GPU().Name != "V100" {
		t.Errorf("DEEP GPU = %s, want V100", s.GPU().Name)
	}
	if s.NCCL {
		t.Error("DEEP must not support NCCL (Table 1)")
	}
	if s.Node.TotalCores() != 8 {
		t.Errorf("DEEP cores = %d, want 8", s.Node.TotalCores())
	}
	if s.CoresPerRank != 8 {
		t.Errorf("DEEP ϱ = %d, want 8", s.CoresPerRank)
	}
	// 100 Gbit/s EDR.
	if bw := s.Network.EffectiveBandwidth(); bw < 12e9 || bw > 13e9 {
		t.Errorf("DEEP bandwidth = %v B/s, want ≈12.5e9", bw)
	}
}

func TestJURECAMatchesTable1(t *testing.T) {
	s := JURECA()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.Nodes != 192 {
		t.Errorf("JURECA nodes = %d, want 192", s.Nodes)
	}
	if s.Node.GPUsPerNode != 4 {
		t.Errorf("JURECA GPUs/node = %d, want 4", s.Node.GPUsPerNode)
	}
	if s.GPU().Name != "A100" {
		t.Errorf("JURECA GPU = %s, want A100", s.GPU().Name)
	}
	if !s.NCCL {
		t.Error("JURECA must support NCCL (Table 1)")
	}
	if s.Node.TotalCores() != 128 {
		t.Errorf("JURECA cores = %d, want 128", s.Node.TotalCores())
	}
	// Dual HDR links.
	if s.Network.Links != 2 {
		t.Errorf("JURECA links = %d, want 2", s.Network.Links)
	}
}

func TestGPUEffectiveFLOPS(t *testing.T) {
	g := V100()
	eff := g.EffectiveFLOPS()
	if eff <= 0 || eff >= g.FP32TFLOPS*1e12 {
		t.Errorf("effective FLOPS = %v out of range", eff)
	}
	// Zero efficiency falls back to a default.
	g.Efficiency = 0
	if g.EffectiveFLOPS() <= 0 {
		t.Error("zero-efficiency fallback broken")
	}
}

func TestA100FasterThanV100(t *testing.T) {
	if A100().EffectiveFLOPS() <= V100().EffectiveFLOPS() {
		t.Error("A100 should out-compute V100")
	}
	if A100().MemBandwidthGBs <= V100().MemBandwidthGBs {
		t.Error("A100 should have more memory bandwidth")
	}
}

func TestNetworkLatencySeconds(t *testing.T) {
	n := Network{LatencyUS: 2}
	if !mathutil.Close(n.Latency(), 2e-6) {
		t.Errorf("Latency = %v, want 2e-6", n.Latency())
	}
}

func TestNetworkEffectiveBandwidthZeroLinks(t *testing.T) {
	n := Network{BandwidthGBs: 10}
	if !mathutil.Close(n.EffectiveBandwidth(), 10e9) {
		t.Errorf("0 links should default to 1: %v", n.EffectiveBandwidth())
	}
}

func TestMaxRanksAndNodesFor(t *testing.T) {
	j := JURECA()
	if j.MaxRanks() != 192*4 {
		t.Errorf("MaxRanks = %d", j.MaxRanks())
	}
	if j.NodesFor(1) != 1 || j.NodesFor(4) != 1 || j.NodesFor(5) != 2 || j.NodesFor(64) != 16 {
		t.Error("NodesFor wrong for JURECA")
	}
	d := DEEP()
	if d.NodesFor(64) != 64 {
		t.Errorf("DEEP NodesFor(64) = %d, want 64", d.NodesFor(64))
	}
}

func TestValidateRejectsBadSystems(t *testing.T) {
	good := DEEP()
	bad := good
	bad.Name = ""
	if bad.Validate() == nil {
		t.Error("unnamed system accepted")
	}
	bad = good
	bad.Nodes = 0
	if bad.Validate() == nil {
		t.Error("zero nodes accepted")
	}
	bad = good
	bad.Node.GPUs = nil
	if bad.Validate() == nil {
		t.Error("GPU-less system accepted")
	}
	bad = good
	bad.Network.BandwidthGBs = 0
	if bad.Validate() == nil {
		t.Error("zero bandwidth accepted")
	}
	bad = good
	bad.CoresPerRank = 0
	if bad.Validate() == nil {
		t.Error("zero ϱ accepted")
	}
}

func TestByName(t *testing.T) {
	if _, err := ByName("DEEP"); err != nil {
		t.Error(err)
	}
	if _, err := ByName("JURECA"); err != nil {
		t.Error(err)
	}
	if _, err := ByName("frontier"); err == nil {
		t.Error("unknown system accepted")
	}
}

func TestSystemsContainsBoth(t *testing.T) {
	all := Systems()
	if len(all) != 2 {
		t.Errorf("Systems() has %d entries", len(all))
	}
}
