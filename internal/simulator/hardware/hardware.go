// Package hardware describes the simulated HPC systems Extra-Deep is
// evaluated on. The paper's measurements come from the DEEP (Extreme Scale
// Booster) and JURECA (DC module) clusters at Jülich Supercomputing Centre
// (Table 1); this package captures the performance-relevant parameters of
// those systems — per-GPU compute throughput and memory bandwidth, host
// interconnects, network latency/bandwidth, and node topology — so that the
// training simulator can produce kernel timings with realistic scaling
// behaviour.
package hardware

import (
	"errors"
	"fmt"
)

// GPU describes one accelerator.
type GPU struct {
	// Name is the marketing name, e.g. "V100".
	Name string
	// FP32TFLOPS is the peak single-precision throughput in TFLOP/s.
	FP32TFLOPS float64
	// TensorTFLOPS is the peak mixed-precision (tensor-core) throughput.
	TensorTFLOPS float64
	// MemGiB is the device memory capacity.
	MemGiB float64
	// MemBandwidthGBs is the device memory bandwidth in GB/s.
	MemBandwidthGBs float64
	// PCIeGBs is the host↔device transfer bandwidth in GB/s.
	PCIeGBs float64
	// NVLinkGBs is the intra-node GPU↔GPU bandwidth in GB/s
	// (0 when the node has a single GPU or no NVLink).
	NVLinkGBs float64
	// Efficiency is the fraction of peak throughput realistically
	// sustained by DL kernels (≈0.3–0.5 in practice).
	Efficiency float64
}

// EffectiveFLOPS returns the sustained FLOP/s the simulator charges compute
// kernels against.
func (g GPU) EffectiveFLOPS() float64 {
	eff := g.Efficiency
	if eff <= 0 {
		eff = 0.35
	}
	return g.FP32TFLOPS * 1e12 * eff
}

// CPU describes one host processor.
type CPU struct {
	// Name is the marketing name.
	Name string
	// Cores is the number of physical cores.
	Cores int
	// BaseGHz is the base clock.
	BaseGHz float64
}

// Network describes the cluster interconnect.
type Network struct {
	// Name is the fabric name, e.g. "InfiniBand EDR".
	Name string
	// LatencyUS is the one-way small-message latency in microseconds.
	LatencyUS float64
	// BandwidthGBs is the per-link bandwidth in GB/s.
	BandwidthGBs float64
	// Links is the number of network adapters per node.
	Links int
}

// EffectiveBandwidth returns the aggregate injection bandwidth per node in
// bytes per second.
func (n Network) EffectiveBandwidth() float64 {
	links := n.Links
	if links <= 0 {
		links = 1
	}
	return n.BandwidthGBs * 1e9 * float64(links)
}

// Latency returns the one-way latency in seconds.
func (n Network) Latency() float64 { return n.LatencyUS * 1e-6 }

// Node describes one compute node.
type Node struct {
	CPUs        []CPU
	GPUs        []GPU
	MemGiB      float64
	GPUsPerNode int
}

// TotalCores returns the node's physical core count.
func (n Node) TotalCores() int {
	total := 0
	for _, c := range n.CPUs {
		total += c.Cores
	}
	return total
}

// System is a complete cluster description.
type System struct {
	// Name identifies the system, e.g. "DEEP".
	Name string
	// Nodes is the number of nodes available.
	Nodes int
	// Node is the per-node hardware.
	Node Node
	// Network is the inter-node fabric.
	Network Network
	// NCCL reports whether GPU-direct NCCL collectives are available;
	// without it gradient exchange is staged through host memory and MPI
	// (the DEEP configuration in the paper).
	NCCL bool
	// CoresPerRank is ϱ of the cost model (Eq. 14): CPU cores charged per
	// MPI rank.
	CoresPerRank int
}

// Validate checks the system description for usability.
func (s System) Validate() error {
	if s.Name == "" {
		return errors.New("hardware: system has no name")
	}
	if s.Nodes <= 0 {
		return fmt.Errorf("hardware: %s has %d nodes", s.Name, s.Nodes)
	}
	if len(s.Node.GPUs) == 0 {
		return fmt.Errorf("hardware: %s nodes have no GPUs", s.Name)
	}
	if s.Node.GPUsPerNode <= 0 {
		return fmt.Errorf("hardware: %s has no GPUs per node", s.Name)
	}
	if s.Network.BandwidthGBs <= 0 || s.Network.LatencyUS <= 0 {
		return fmt.Errorf("hardware: %s network parameters incomplete", s.Name)
	}
	if s.CoresPerRank <= 0 {
		return fmt.Errorf("hardware: %s cores per rank not set", s.Name)
	}
	return nil
}

// GPU returns the node's (homogeneous) GPU model.
func (s System) GPU() GPU { return s.Node.GPUs[0] }

// MaxRanks returns the maximum number of single-GPU MPI ranks the system
// supports (one rank per GPU, as in the paper's experiments).
func (s System) MaxRanks() int { return s.Nodes * s.Node.GPUsPerNode }

// NodesFor returns the number of nodes required to host the given number
// of single-GPU ranks.
func (s System) NodesFor(ranks int) int {
	g := s.Node.GPUsPerNode
	return (ranks + g - 1) / g
}

// DEEP returns the DEEP (Extreme Scale Booster) description of Table 1:
// 75 nodes, one 8-core Xeon Cascade Lake Silver 4215 each, 48 GB DDR4,
// InfiniBand EDR (100 Gbit/s), one V100 per node, no NCCL support.
func DEEP() System {
	return System{
		Name:  "DEEP",
		Nodes: 75,
		Node: Node{
			CPUs:        []CPU{{Name: "Xeon Cascade Lake Silver 4215", Cores: 8, BaseGHz: 2.5}},
			GPUs:        []GPU{V100()},
			MemGiB:      48,
			GPUsPerNode: 1,
		},
		Network: Network{
			Name:         "InfiniBand EDR",
			LatencyUS:    1.5,
			BandwidthGBs: 12.5, // 100 Gbit/s
			Links:        1,
		},
		NCCL:         false,
		CoresPerRank: 8,
	}
}

// JURECA returns the JURECA-DC description of Table 1: 192 nodes, two
// 64-core AMD EPYC 7742 each, 512 GB DDR4, dual InfiniBand HDR, four A100
// GPUs per node with NCCL support.
func JURECA() System {
	return System{
		Name:  "JURECA",
		Nodes: 192,
		Node: Node{
			CPUs:        []CPU{{Name: "AMD EPYC 7742", Cores: 64, BaseGHz: 2.25}, {Name: "AMD EPYC 7742", Cores: 64, BaseGHz: 2.25}},
			GPUs:        []GPU{A100(), A100(), A100(), A100()},
			MemGiB:      512,
			GPUsPerNode: 4,
		},
		Network: Network{
			Name:         "InfiniBand HDR",
			LatencyUS:    1.0,
			BandwidthGBs: 25, // 200 Gbit/s per link
			Links:        2,
		},
		NCCL:         true,
		CoresPerRank: 32, // 128 cores shared by 4 GPU ranks
	}
}

// V100 returns an NVIDIA V100 (SXM2 16 GB) description.
func V100() GPU {
	return GPU{
		Name:            "V100",
		FP32TFLOPS:      15.7,
		TensorTFLOPS:    125,
		MemGiB:          16,
		MemBandwidthGBs: 900,
		PCIeGBs:         16,
		NVLinkGBs:       0, // single GPU per DEEP node
		Efficiency:      0.35,
	}
}

// A100 returns an NVIDIA A100 (SXM4 40 GB) description.
func A100() GPU {
	return GPU{
		Name:            "A100",
		FP32TFLOPS:      19.5,
		TensorTFLOPS:    312,
		MemGiB:          40,
		MemBandwidthGBs: 1555,
		PCIeGBs:         32,
		NVLinkGBs:       600,
		Efficiency:      0.4,
	}
}

// Systems returns the built-in systems keyed by name.
func Systems() map[string]System {
	return map[string]System{"DEEP": DEEP(), "JURECA": JURECA()}
}

// ByName looks up a built-in system by name.
func ByName(name string) (System, error) {
	s, ok := Systems()[name]
	if !ok {
		return System{}, fmt.Errorf("hardware: unknown system %q (have DEEP, JURECA)", name)
	}
	return s, nil
}
