// Package dataset describes the five benchmark datasets of the paper's
// evaluation (Section 4.1): CIFAR-10, CIFAR-100, ImageNet, IMDB, and
// Speech Commands. Only the performance-relevant properties are modeled —
// sample counts, input shapes and bytes per sample — since sample *content*
// does not influence training time. Synthetic sample generation is
// provided for the I/O phase of the simulated training runs.
package dataset

import (
	"fmt"
	"math/rand"
)

// Kind classifies the learning task.
type Kind int

// The task kinds of the benchmark suite.
const (
	KindImage Kind = iota
	KindText
	KindAudio
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindImage:
		return "image"
	case KindText:
		return "text"
	case KindAudio:
		return "audio"
	default:
		return "unknown"
	}
}

// Dataset describes one benchmark dataset.
type Dataset struct {
	// Name identifies the dataset, e.g. "cifar10".
	Name string
	// Kind is the task type.
	Kind Kind
	// TrainSamples and ValSamples are the split sizes.
	TrainSamples int
	ValSamples   int
	// Classes is the number of target classes.
	Classes int
	// InputShape is (H, W, C) for images/audio spectrograms and
	// (sequence length, embedding vocabulary, 1) for text.
	InputShape [3]int
	// BytesPerSample is the raw storage size of one sample.
	BytesPerSample float64
	// AugmentationFactor is the relative preprocessing cost of one sample
	// (1 = plain decode; >1 adds augmentation work).
	AugmentationFactor float64
	// PreprocessCostPerSample is the single-core CPU time in seconds to
	// decode/augment/tokenize one sample (JPEG decode for ImageNet,
	// spectrogram extraction for Speech Commands, tokenization for IMDB).
	// Input pipelines parallelize this across the rank's CPU cores.
	PreprocessCostPerSample float64
}

// InputElements returns the number of scalar elements per sample.
func (d Dataset) InputElements() int {
	return d.InputShape[0] * d.InputShape[1] * d.InputShape[2]
}

// TotalBytes returns the raw size of the training split.
func (d Dataset) TotalBytes() float64 {
	return float64(d.TrainSamples) * d.BytesPerSample
}

// Validate checks the descriptor for usability.
func (d Dataset) Validate() error {
	if d.Name == "" {
		return fmt.Errorf("dataset: unnamed dataset")
	}
	if d.TrainSamples <= 0 || d.ValSamples < 0 {
		return fmt.Errorf("dataset %s: bad split sizes %d/%d", d.Name, d.TrainSamples, d.ValSamples)
	}
	if d.Classes <= 1 {
		return fmt.Errorf("dataset %s: %d classes", d.Name, d.Classes)
	}
	if d.InputElements() <= 0 {
		return fmt.Errorf("dataset %s: empty input shape", d.Name)
	}
	if d.BytesPerSample <= 0 {
		return fmt.Errorf("dataset %s: bytes per sample not set", d.Name)
	}
	return nil
}

// CIFAR10 returns the CIFAR-10 descriptor: 60 000 32×32 colour images in
// 10 classes (50 000 train / 10 000 test).
func CIFAR10() Dataset {
	return Dataset{
		Name: "cifar10", Kind: KindImage,
		TrainSamples: 50000, ValSamples: 10000, Classes: 10,
		InputShape: [3]int{32, 32, 3}, BytesPerSample: 32 * 32 * 3,
		AugmentationFactor:      1.5,
		PreprocessCostPerSample: 25e-6,
	}
}

// CIFAR100 returns the CIFAR-100 descriptor (same images, 100 classes).
func CIFAR100() Dataset {
	d := CIFAR10()
	d.Name = "cifar100"
	d.Classes = 100
	return d
}

// ImageNet returns the ILSVRC-2012 descriptor: ≈1.28 M training images,
// 50 000 validation images, 1 000 classes, 224×224 crops.
func ImageNet() Dataset {
	return Dataset{
		Name: "imagenet", Kind: KindImage,
		TrainSamples: 1281167, ValSamples: 50000, Classes: 1000,
		InputShape: [3]int{224, 224, 3}, BytesPerSample: 110 * 1024, // avg JPEG
		AugmentationFactor:      2.5,
		PreprocessCostPerSample: 1.5e-3,
	}
}

// IMDB returns the IMDB movie-review sentiment descriptor: 25 000 train /
// 25 000 test reviews, binary classification, 256-token sequences over a
// 20 000-word vocabulary.
func IMDB() Dataset {
	return Dataset{
		Name: "imdb", Kind: KindText,
		TrainSamples: 25000, ValSamples: 25000, Classes: 2,
		InputShape: [3]int{256, 20000, 1}, BytesPerSample: 256 * 4,
		AugmentationFactor:      1.0,
		PreprocessCostPerSample: 4e-4,
	}
}

// SpeechCommands returns the Google Speech Commands v2 descriptor:
// ≈85 000 train / 10 000 validation one-second utterances in 35 classes,
// presented as 124×129 log-mel spectrograms.
func SpeechCommands() Dataset {
	return Dataset{
		Name: "speechcommands", Kind: KindAudio,
		TrainSamples: 84843, ValSamples: 9981, Classes: 35,
		InputShape: [3]int{124, 129, 1}, BytesPerSample: 16000 * 2, // 1 s of 16 kHz PCM16
		AugmentationFactor:      1.8,
		PreprocessCostPerSample: 3e-4,
	}
}

// All returns the benchmark datasets keyed by name.
func All() map[string]Dataset {
	out := make(map[string]Dataset)
	for _, d := range []Dataset{CIFAR10(), CIFAR100(), ImageNet(), IMDB(), SpeechCommands()} {
		out[d.Name] = d
	}
	return out
}

// ByName looks a dataset up by name.
func ByName(name string) (Dataset, error) {
	d, ok := All()[name]
	if !ok {
		return Dataset{}, fmt.Errorf("dataset: unknown dataset %q", name)
	}
	return d, nil
}

// Names returns the dataset names in the paper's presentation order.
func Names() []string {
	return []string{"cifar10", "cifar100", "imagenet", "imdb", "speechcommands"}
}

// Sample is one synthetic training sample.
type Sample struct {
	// Input is the flattened input tensor.
	Input []float32
	// Label is the target class.
	Label int
}

// Generate produces n synthetic samples with the dataset's shape,
// deterministically from the seed. Content is random — it only exists so
// the simulated input pipeline has real bytes to move.
func (d Dataset) Generate(n int, seed int64) []Sample {
	rng := rand.New(rand.NewSource(seed))
	elems := d.InputElements()
	// Text inputs are token indices, not dense tensors; store the
	// sequence only.
	if d.Kind == KindText {
		elems = d.InputShape[0]
	}
	out := make([]Sample, n)
	for i := range out {
		in := make([]float32, elems)
		for j := range in {
			in[j] = rng.Float32()
		}
		out[i] = Sample{Input: in, Label: rng.Intn(d.Classes)}
	}
	return out
}

// Shard returns the half-open sample index range [lo, hi) that worker
// `rank` of `workers` processes when the dataset is sharded evenly, the
// way the benchmarks shard by MPI rank.
func (d Dataset) Shard(rank, workers int) (lo, hi int) {
	if workers <= 0 {
		return 0, d.TrainSamples
	}
	per := d.TrainSamples / workers
	lo = rank * per
	hi = lo + per
	if rank == workers-1 {
		hi = d.TrainSamples
	}
	return lo, hi
}
