package dataset

import "testing"

func TestAllDatasetsValid(t *testing.T) {
	for name, d := range All() {
		if err := d.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if d.Name != name {
			t.Errorf("map key %q != dataset name %q", name, d.Name)
		}
	}
}

func TestPaperDatasetSizes(t *testing.T) {
	// Sizes quoted in the paper: CIFAR-10 has 60 000 images (50 000
	// train), IMDB has 50 000 samples total, ImageNet >1.2 M train.
	c := CIFAR10()
	if c.TrainSamples+c.ValSamples != 60000 {
		t.Errorf("CIFAR-10 total = %d, want 60000", c.TrainSamples+c.ValSamples)
	}
	if c.Classes != 10 || c.InputShape != [3]int{32, 32, 3} {
		t.Errorf("CIFAR-10 descriptor wrong: %+v", c)
	}
	i := IMDB()
	if i.TrainSamples+i.ValSamples != 50000 {
		t.Errorf("IMDB total = %d, want 50000", i.TrainSamples+i.ValSamples)
	}
	n := ImageNet()
	if n.TrainSamples < 1_200_000 {
		t.Errorf("ImageNet train = %d, want >1.2M", n.TrainSamples)
	}
	if CIFAR100().Classes != 100 {
		t.Error("CIFAR-100 classes wrong")
	}
	if SpeechCommands().Classes != 35 {
		t.Error("Speech Commands classes wrong")
	}
}

func TestInputElements(t *testing.T) {
	if CIFAR10().InputElements() != 32*32*3 {
		t.Error("CIFAR-10 elements wrong")
	}
	if ImageNet().InputElements() != 224*224*3 {
		t.Error("ImageNet elements wrong")
	}
}

func TestTotalBytesOrdering(t *testing.T) {
	// ImageNet is by far the largest dataset.
	if ImageNet().TotalBytes() <= CIFAR10().TotalBytes()*10 {
		t.Error("ImageNet should dwarf CIFAR-10 in raw bytes")
	}
}

func TestValidateRejectsBadDescriptors(t *testing.T) {
	good := CIFAR10()
	bad := good
	bad.Name = ""
	if bad.Validate() == nil {
		t.Error("unnamed dataset accepted")
	}
	bad = good
	bad.TrainSamples = 0
	if bad.Validate() == nil {
		t.Error("empty train split accepted")
	}
	bad = good
	bad.Classes = 1
	if bad.Validate() == nil {
		t.Error("single-class dataset accepted")
	}
	bad = good
	bad.InputShape = [3]int{0, 0, 0}
	if bad.Validate() == nil {
		t.Error("empty shape accepted")
	}
	bad = good
	bad.BytesPerSample = 0
	if bad.Validate() == nil {
		t.Error("zero bytes/sample accepted")
	}
}

func TestByName(t *testing.T) {
	for _, name := range Names() {
		if _, err := ByName(name); err != nil {
			t.Errorf("ByName(%q): %v", name, err)
		}
	}
	if _, err := ByName("mnist"); err == nil {
		t.Error("unknown dataset accepted")
	}
}

func TestNamesOrderStable(t *testing.T) {
	n := Names()
	if len(n) != 5 || n[0] != "cifar10" || n[4] != "speechcommands" {
		t.Errorf("Names = %v", n)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	d := CIFAR10()
	a := d.Generate(3, 42)
	b := d.Generate(3, 42)
	if len(a) != 3 || len(b) != 3 {
		t.Fatal("wrong sample count")
	}
	for i := range a {
		if a[i].Label != b[i].Label {
			t.Fatal("labels differ across identical seeds")
		}
		for j := range a[i].Input {
			//edlint:ignore floateq reproducibility: the same seed must regenerate bit-identical inputs
			if a[i].Input[j] != b[i].Input[j] {
				t.Fatal("inputs differ across identical seeds")
			}
		}
	}
	c := d.Generate(3, 43)
	same := true
	for i := range a {
		if a[i].Label != c[i].Label {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical labels")
	}
}

func TestGenerateShapes(t *testing.T) {
	img := CIFAR10().Generate(1, 1)[0]
	if len(img.Input) != 32*32*3 {
		t.Errorf("image sample has %d elements", len(img.Input))
	}
	txt := IMDB().Generate(1, 1)[0]
	if len(txt.Input) != 256 {
		t.Errorf("text sample has %d tokens, want 256", len(txt.Input))
	}
}

func TestGenerateLabelsInRange(t *testing.T) {
	d := SpeechCommands()
	for _, s := range d.Generate(100, 7) {
		if s.Label < 0 || s.Label >= d.Classes {
			t.Fatalf("label %d out of range", s.Label)
		}
	}
}

func TestShardEven(t *testing.T) {
	d := CIFAR10() // 50000 train samples
	total := 0
	for rank := 0; rank < 8; rank++ {
		lo, hi := d.Shard(rank, 8)
		if hi <= lo {
			t.Fatalf("rank %d: empty shard [%d,%d)", rank, lo, hi)
		}
		total += hi - lo
	}
	if total != d.TrainSamples {
		t.Errorf("shards cover %d samples, want %d", total, d.TrainSamples)
	}
}

func TestShardRemainderGoesToLastRank(t *testing.T) {
	d := CIFAR10()
	_, hi := d.Shard(6, 7)
	lo7, hi7 := d.Shard(6, 7)
	_ = hi
	if hi7 != d.TrainSamples {
		t.Errorf("last shard ends at %d, want %d (lo=%d)", hi7, d.TrainSamples, lo7)
	}
}

func TestShardZeroWorkers(t *testing.T) {
	d := CIFAR10()
	lo, hi := d.Shard(0, 0)
	if lo != 0 || hi != d.TrainSamples {
		t.Error("zero workers should return the full range")
	}
}

func TestKindString(t *testing.T) {
	if KindImage.String() != "image" || KindText.String() != "text" || KindAudio.String() != "audio" {
		t.Error("kind names wrong")
	}
	if Kind(9).String() != "unknown" {
		t.Error("unknown kind name wrong")
	}
}
