package engine

import (
	"fmt"

	"extradeep/internal/simulator/hardware"
	"extradeep/internal/simulator/parallel"
)

// MemoryFootprint estimates the per-rank GPU memory of one training
// configuration in bytes, the quantity that forces model parallelism when
// it exceeds a single GPU (the paper's Section 1 motivation: "they far
// exceed the size of single GPU memory, making model parallelization …
// indispensable"). The estimate follows the standard accounting:
//
//	weights + gradients (4 B each per parameter)
//	+ optimizer state (8 B per parameter: Adam moments)
//	+ stored activations for the backward pass (per sample × batch)
//	+ a fixed framework/workspace reserve.
//
// The model-parallel fraction divides the parameter-related terms and the
// activations (each rank holds its shard).
type MemoryFootprint struct {
	WeightsBytes     float64
	GradientBytes    float64
	OptimizerBytes   float64
	ActivationsBytes float64
	WorkspaceBytes   float64
}

// Total returns the total footprint in bytes.
func (m MemoryFootprint) Total() float64 {
	return m.WeightsBytes + m.GradientBytes + m.OptimizerBytes + m.ActivationsBytes + m.WorkspaceBytes
}

// GiB returns the total footprint in GiB.
func (m MemoryFootprint) GiB() float64 { return m.Total() / (1 << 30) }

// EstimateMemory computes the per-rank footprint of the benchmark trained
// with the given strategy at the given scale.
func EstimateMemory(b Benchmark, strategy parallel.Strategy, ranks int, weakScaling bool) MemoryFootprint {
	fraction := strategy.ComputeFraction(ranks)
	params := b.Model.TotalParams() * fraction
	batch := PerWorkerBatch(b, strategy, ranks, weakScaling)
	return MemoryFootprint{
		WeightsBytes:     params * 4,
		GradientBytes:    params * 4,
		OptimizerBytes:   params * 8,
		ActivationsBytes: b.Model.ActivationBytes() * fraction * batch,
		WorkspaceBytes:   1.5 * (1 << 30),
	}
}

// CheckMemory reports whether the configuration fits the system's GPU
// memory, returning a descriptive error when it does not. Real deployments
// would respond with a smaller batch, gradient checkpointing, or a higher
// degree of model parallelism — which is why the check is advisory rather
// than enforced by Profile.
func CheckMemory(b Benchmark, sys hardware.System, strategy parallel.Strategy, ranks int, weakScaling bool) error {
	fp := EstimateMemory(b, strategy, ranks, weakScaling)
	capGiB := sys.GPU().MemGiB
	if fp.GiB() > capGiB {
		return fmt.Errorf("engine: %s at %d ranks needs ≈%.1f GiB per %s GPU (capacity %.0f GiB): reduce the batch, enable checkpointing, or raise model parallelism",
			b.Name, ranks, fp.GiB(), sys.GPU().Name, capGiB)
	}
	return nil
}
