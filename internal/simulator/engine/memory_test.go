package engine

import (
	"strings"
	"testing"

	"extradeep/internal/mathutil"
	"extradeep/internal/simulator/hardware"
	"extradeep/internal/simulator/parallel"
)

func TestEstimateMemoryComponents(t *testing.T) {
	b := mustBenchmark(t, "cifar10")
	fp := EstimateMemory(b, parallel.DataParallel{}, 4, true)
	params := b.Model.TotalParams()
	if !mathutil.Close(fp.WeightsBytes, params*4) {
		t.Errorf("weights = %v, want %v", fp.WeightsBytes, params*4)
	}
	if !mathutil.Close(fp.GradientBytes, params*4) {
		t.Errorf("gradients = %v", fp.GradientBytes)
	}
	if !mathutil.Close(fp.OptimizerBytes, params*8) {
		t.Errorf("optimizer = %v", fp.OptimizerBytes)
	}
	if fp.ActivationsBytes <= 0 || fp.WorkspaceBytes <= 0 {
		t.Error("activations/workspace missing")
	}
	if !mathutil.Close(fp.Total(), fp.WeightsBytes+fp.GradientBytes+fp.OptimizerBytes+fp.ActivationsBytes+fp.WorkspaceBytes) {
		t.Error("Total does not sum the components")
	}
}

func TestEstimateMemoryModelParallelShrinks(t *testing.T) {
	b := mustBenchmark(t, "cifar10")
	full := EstimateMemory(b, parallel.DataParallel{}, 16, true)
	sharded := EstimateMemory(b, parallel.TensorParallel{GroupSize: 4}, 16, true)
	if sharded.WeightsBytes >= full.WeightsBytes {
		t.Error("model parallelism should shard the weights")
	}
	if sharded.Total() >= full.Total() {
		t.Error("model parallelism should reduce the footprint")
	}
}

func TestEstimateMemoryStrongScalingShrinksActivations(t *testing.T) {
	b := mustBenchmark(t, "cifar10")
	small := EstimateMemory(b, parallel.DataParallel{}, 64, false)
	big := EstimateMemory(b, parallel.DataParallel{}, 2, false)
	// Strong scaling: per-worker batch shrinks with ranks, so activations
	// shrink too.
	if small.ActivationsBytes >= big.ActivationsBytes {
		t.Errorf("activations should shrink under strong scaling: %v vs %v",
			small.ActivationsBytes, big.ActivationsBytes)
	}
}

func TestCheckMemoryAcceptsPaperConfigs(t *testing.T) {
	// Every benchmark at its paper configuration must fit the evaluation
	// systems — the authors ran them.
	bs, err := Benchmarks()
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range bs {
		for _, sys := range []hardware.System{hardware.DEEP(), hardware.JURECA()} {
			if err := CheckMemory(b, sys, parallel.DataParallel{}, 8, true); err != nil {
				t.Errorf("%s on %s: %v", b.Name, sys.Name, err)
			}
		}
	}
}

func TestCheckMemoryRejectsHugeBatch(t *testing.T) {
	b := mustBenchmark(t, "imagenet")
	b.BatchSize = 4096 // ≈ hundreds of GiB of activations
	err := CheckMemory(b, hardware.DEEP(), parallel.DataParallel{}, 8, true)
	if err == nil {
		t.Fatal("oversized batch accepted")
	}
	if !strings.Contains(err.Error(), "GiB") {
		t.Errorf("error lacks sizing detail: %v", err)
	}
}

func TestCheckMemoryModelParallelRescues(t *testing.T) {
	// A configuration that exceeds a single GPU can fit once sharded —
	// the paper's motivation for model parallelism.
	b := mustBenchmark(t, "imagenet")
	b.BatchSize = 1024
	if err := CheckMemory(b, hardware.DEEP(), parallel.DataParallel{}, 8, true); err == nil {
		t.Skip("batch too small to exceed memory on this calibration")
	}
	if err := CheckMemory(b, hardware.JURECA(), parallel.TensorParallel{GroupSize: 4}, 8, true); err != nil {
		t.Errorf("tensor parallelism should rescue the configuration: %v", err)
	}
}
