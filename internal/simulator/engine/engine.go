package engine

import (
	"fmt"
	"hash/fnv"
	"math"
	"sort"

	"extradeep/internal/calltree"
	"extradeep/internal/profile"
	"extradeep/internal/simulator/dataset"
	"extradeep/internal/simulator/dnn"
	"extradeep/internal/simulator/hardware"
	"extradeep/internal/simulator/network"
	"extradeep/internal/simulator/noise"
	"extradeep/internal/simulator/parallel"
	"extradeep/internal/trace"
)

// Granularity selects how compute kernels are reported in the trace.
type Granularity int

const (
	// GranularityType coalesces the kernels of one layer type and
	// direction into a single event per step carrying the invocation
	// count — compact traces for large parameter sweeps.
	GranularityType Granularity = iota
	// GranularityLayer emits one event per layer and direction, yielding
	// the kernel-rich traces of the case study.
	GranularityLayer
)

// RunConfig describes one simulated application configuration.
type RunConfig struct {
	// System is the cluster the run executes on.
	System hardware.System
	// Strategy is the parallelization strategy.
	Strategy parallel.Strategy
	// Ranks is the number of MPI ranks (one GPU each).
	Ranks int
	// WeakScaling multiplies the training set by the rank count.
	WeakScaling bool
	// Granularity selects the trace detail level.
	Granularity Granularity
	// Noise calibrates the system-noise processes; the zero value derives
	// the calibration from the system name.
	Noise noise.Params
	// Seed is the base random seed; all derived randomness is
	// deterministic in (Seed, benchmark, ranks, repetition, rank).
	Seed int64
	// SampleRanks bounds how many representative ranks produce traces
	// (0 = all ranks). Aggregation medians over a handful of ranks are
	// statistically equivalent and keep large sweeps tractable.
	SampleRanks int
	// ProfileSteps is the number of training steps profiled per epoch
	// under the efficient sampling strategy (default 5, per the paper).
	ProfileSteps int
	// ProfileEpochs is the number of profiled epochs (default 2; the
	// first acts as warm-up and is discarded by aggregation).
	ProfileEpochs int
	// OverheadFactor is the profiling overhead as a fraction of executed
	// time (default 0.052 ≈ the paper's 5.4% average).
	OverheadFactor float64
	// ProfileParams and ProfilePoint optionally override the identity a
	// profile is recorded under, for multi-parameter campaigns (e.g.
	// Params ["p","b"], Point [ranks, batch]). When unset, profiles are
	// identified by the rank count alone (["p"], [Ranks]).
	ProfileParams []string
	ProfilePoint  []float64
}

func (c RunConfig) noiseParams(b Benchmark) noise.Params {
	p := c.Noise
	if p == (noise.Params{}) {
		if c.System.Name == "JURECA" {
			p = noise.JURECAParams()
		} else {
			p = noise.DEEPParams()
		}
	}
	// Training complexity amplifies measurement variance: bigger models
	// and datasets stress memory, I/O and the fabric harder, which is why
	// the paper finds ImageNet hardest and IMDB easiest to predict
	// (Section 4.2.3). Scale the run/step components by a factor derived
	// from the per-epoch training FLOPs.
	f := complexityFactor(b)
	p.RunSigma0 *= f
	p.RunSigmaPerLog *= f
	p.StepSigma *= f
	return p
}

// complexityFactor maps a benchmark's per-epoch training cost to a noise
// multiplier in [0.7, 2].
func complexityFactor(b Benchmark) float64 {
	epochFLOPs := b.Model.TrainFLOPs() * float64(b.Dataset.TrainSamples)
	if epochFLOPs < 1 {
		// Degenerate zero-cost models: clamp before the log so the noise
		// factor bottoms out at 0.7 instead of going NaN.
		epochFLOPs = 1
	}
	f := 0.7 + 0.08*math.Log2(epochFLOPs/1e12)
	if f < 0.7 {
		f = 0.7
	}
	if f > 2 {
		f = 2
	}
	return f
}

func (c RunConfig) profileSteps() int {
	if c.ProfileSteps <= 0 {
		return 5
	}
	return c.ProfileSteps
}

func (c RunConfig) profileEpochs() int {
	if c.ProfileEpochs <= 0 {
		return 2
	}
	return c.ProfileEpochs
}

func (c RunConfig) overheadFactor() float64 {
	if c.OverheadFactor <= 0 {
		return 0.052
	}
	return c.OverheadFactor
}

// Validate checks the configuration.
func (c RunConfig) Validate() error {
	if err := c.System.Validate(); err != nil {
		return err
	}
	if c.Strategy == nil {
		return fmt.Errorf("engine: no strategy")
	}
	if c.Ranks < 1 {
		return fmt.Errorf("engine: %d ranks", c.Ranks)
	}
	if c.Ranks > c.System.MaxRanks() {
		return fmt.Errorf("engine: %d ranks exceed %s's capacity of %d", c.Ranks, c.System.Name, c.System.MaxRanks())
	}
	return nil
}

// kernelSpec is the noise-free template of one kernel's executions within
// a step.
type kernelSpec struct {
	callpath string
	name     string
	kind     calltree.Kind
	dur      float64 // total duration within one step (all invocations)
	bytes    float64 // transferred bytes (memory operations)
	count    int     // invocations represented
	overlap  bool    // CPU-side: does not extend the step's critical path
}

// gpuArch returns the kernel-name prefix of the system's GPU generation.
func gpuArch(sys hardware.System) string {
	if sys.GPU().Name == "A100" {
		return "ampere"
	}
	return "volta"
}

// kernelNames returns the profiler-visible (forward, backward) kernel
// names of a layer type, plus the CPU-side library call accompanying it.
func kernelNames(arch string, t dnn.LayerType) (fwd, bwd, api string, apiKind calltree.Kind) {
	switch t {
	case dnn.Conv2D:
		return arch + "_scudnn_128x64_relu_interior_nn_v1",
			arch + "_scudnn_128x64_dgrad_interior_nn_v1",
			"cudnnConvolutionForward", calltree.KindCuDNN
	case dnn.DepthwiseConv2D:
		return "depthwise_fprop_kernel", "depthwise_bprop_kernel",
			"cudnnConvolutionForward", calltree.KindCuDNN
	case dnn.Dense:
		return arch + "_sgemm_128x64_nn", arch + "_sgemm_128x64_tn",
			"cublasSgemm_v2", calltree.KindCuBLAS
	case dnn.BatchNorm:
		return "bn_fw_tr_1C11_kernel_NCHW", "bn_bw_1C11_kernel_NCHW",
			"cudnnBatchNormalizationForwardTraining", calltree.KindCuDNN
	case dnn.MaxPool, dnn.AvgPool, dnn.GlobalAvgPool:
		return "pooling_fw_4d_kernel", "pooling_bw_4d_kernel",
			"cudnnPoolingForward", calltree.KindCuDNN
	case dnn.Embedding:
		return "gather_kernel", "scatter_add_kernel", "", calltree.KindUnknown
	case dnn.SqueezeExcite:
		return "se_module_fwd_kernel", "se_module_bwd_kernel", "", calltree.KindUnknown
	default: // element-wise: ReLU, Swish, Add, Softmax — TensorFlow Eigen
		return "EigenMetaKernel", "EigenMetaKernel", "", calltree.KindUnknown
	}
}

// layerTime returns the GPU time of a set of layer invocations: the
// roofline maximum of compute and memory time plus launch overhead.
func layerTime(flops, memBytes float64, launches int, gpu hardware.GPU) float64 {
	const launchOverhead = 4e-6
	ct := flops / gpu.EffectiveFLOPS()
	mt := memBytes / (gpu.MemBandwidthGBs * 1e9)
	t := ct
	if mt > t {
		t = mt
	}
	return t + float64(launches)*launchOverhead
}

// stepSpecs builds the ordered kernel specs of one training or validation
// step (noise-free medians).
func stepSpecs(b Benchmark, cfg RunConfig, phase trace.Phase) []kernelSpec {
	sys := cfg.System
	gpu := sys.GPU()
	arch := gpuArch(sys)
	fraction := cfg.Strategy.ComputeFraction(cfg.Ranks)
	batch := PerWorkerBatch(b, cfg.Strategy, cfg.Ranks, cfg.WeakScaling)
	prefix := "App->train->"
	if phase == trace.PhaseValidation {
		prefix = "App->test->"
	}

	var specs []kernelSpec
	add := func(s kernelSpec) { specs = append(specs, s) }

	// --- framework dispatch (Python/graph-executor overhead per step) ---
	dispatch := 25e-3
	if phase == trace.PhaseValidation {
		dispatch = 15e-3
	}
	add(kernelSpec{
		callpath: prefix + "os.step_dispatch", name: "os.step_dispatch", kind: calltree.KindOS,
		dur: dispatch, count: 1,
	})

	// --- input pipeline (I/O + preprocessing on the CPU) ---------------
	sampleBytes := b.Dataset.BytesPerSample * batch
	add(kernelSpec{
		callpath: prefix + "sys_read", name: "sys_read", kind: calltree.KindOS,
		dur: sampleBytes / 2e9, count: 4,
	})
	if phase == trace.PhaseTrain {
		cores := float64(sys.CoresPerRank)
		if cores < 1 {
			cores = 1
		}
		add(kernelSpec{
			callpath: prefix + "os.preprocess", name: "os.preprocess", kind: calltree.KindOS,
			dur:   batch * b.Dataset.PreprocessCostPerSample * b.Dataset.AugmentationFactor / cores,
			count: 1,
		})
	}

	// --- host→device transfer of the input batch -----------------------
	inputElems := float64(b.Dataset.InputElements())
	if b.Dataset.Kind == dataset.KindText {
		// Text batches are token-index tensors, not dense one-hot inputs.
		inputElems = float64(b.Dataset.InputShape[0])
	}
	h2dBytes := inputElems * 4 * batch
	add(kernelSpec{
		callpath: prefix + "Memcpy HtoD", name: "Memcpy HtoD", kind: calltree.KindMemcpy,
		dur: h2dBytes/(gpu.PCIeGBs*1e9) + 5e-6, bytes: h2dBytes, count: 1,
	})

	// --- forward (and backward) compute kernels ------------------------
	type group struct {
		flops, mem float64
		layers     []dnn.Layer
	}
	compute := b.Model.ComputeLayers()
	apiCalls := make(map[string]*kernelSpec) // cuDNN/cuBLAS library calls

	emitCompute := func(callbase string, l dnn.Layer, flops, mem float64, count int, backward bool) {
		fwdName, bwdName, api, apiKind := kernelNames(arch, l.Type)
		name := fwdName
		if backward {
			name = bwdName
		}
		add(kernelSpec{
			callpath: callbase + name, name: name, kind: calltree.KindCUDA,
			dur: layerTime(flops, mem, count, gpu), count: count,
		})
		if api != "" {
			key := prefix + api
			spec := apiCalls[key]
			if spec == nil {
				spec = &kernelSpec{callpath: key, name: api, kind: apiKind, overlap: true}
				apiCalls[key] = spec
			}
			spec.count += count
			spec.dur += float64(count) * 12e-6
		}
	}

	if cfg.Granularity == GranularityLayer {
		for _, l := range compute {
			flops := l.FwdFLOPs * batch * fraction
			mem := l.ActivationBytes() * batch * 2 * fraction
			emitCompute(prefix+l.Name+"->", l, flops, mem, 1, false)
		}
		if phase == trace.PhaseTrain {
			for i := len(compute) - 1; i >= 0; i-- {
				l := compute[i]
				flops := l.BwdFLOPs() * batch * fraction
				mem := l.ActivationBytes() * batch * 3 * fraction
				emitCompute(prefix+l.Name+"->", l, flops, mem, 1, true)
			}
		}
	} else {
		groups := make(map[dnn.LayerType]*group)
		var order []dnn.LayerType
		for _, l := range compute {
			g := groups[l.Type]
			if g == nil {
				g = &group{}
				groups[l.Type] = g
				order = append(order, l.Type)
			}
			g.flops += l.FwdFLOPs * batch * fraction
			g.mem += l.ActivationBytes() * batch * 2 * fraction
			g.layers = append(g.layers, l)
		}
		for _, t := range order {
			g := groups[t]
			emitCompute(prefix, g.layers[0], g.flops, g.mem, len(g.layers), false)
		}
		if phase == trace.PhaseTrain {
			for i := len(order) - 1; i >= 0; i-- {
				g := groups[order[i]]
				emitCompute(prefix, g.layers[0], 2*g.flops, g.mem*1.5, len(g.layers), true)
			}
		}
	}

	// --- training-only: gradient buffers, exchange, weight update -------
	if phase == trace.PhaseTrain {
		gradBytes := b.Model.GradientBytes() * fraction
		add(kernelSpec{
			callpath: prefix + "Memset", name: "Memset", kind: calltree.KindMemset,
			dur: gradBytes/(gpu.MemBandwidthGBs*1e9) + 4e-6, bytes: gradBytes, count: 1,
		})

		for _, op := range cfg.Strategy.StepComms(b.Model, cfg.Ranks, int(math.Round(batch))) {
			groupRanks := op.GroupRanks
			if groupRanks <= 0 {
				groupRanks = cfg.Ranks
			}
			net := network.FromSystem(sys, groupRanks)
			dur := float64(op.Count) * net.Time(op.Op, op.Bytes)
			if dur <= 0 {
				continue
			}
			name := op.Label
			if name == "" {
				name = net.KernelName(op.Op)
			}
			kind := calltree.KindMPI
			if sys.NCCL {
				kind = calltree.KindNCCL
			}
			add(kernelSpec{
				callpath: prefix + name, name: name, kind: kind,
				dur: dur, count: op.Count,
			})
		}

		updBytes := 3 * gradBytes
		add(kernelSpec{
			callpath: prefix + "sgd_update_kernel", name: "sgd_update_kernel", kind: calltree.KindCUDA,
			dur: updBytes/(gpu.MemBandwidthGBs*1e9) + 4e-6, count: 1,
		})
	} else if cfg.Ranks > 1 {
		// Validation reduces the accuracy metric across ranks.
		net := network.FromSystem(sys, cfg.Ranks)
		name := net.KernelName(network.Allreduce)
		kind := calltree.KindMPI
		if sys.NCCL {
			kind = calltree.KindNCCL
		}
		add(kernelSpec{
			callpath: prefix + name, name: name, kind: kind,
			dur: net.Time(network.Allreduce, 64), count: 1,
		})
	}

	// --- CPU-side overlapped bookkeeping --------------------------------
	totalKernels := 0
	for _, s := range specs {
		if s.kind == calltree.KindCUDA {
			totalKernels += s.count
		}
	}
	add(kernelSpec{
		callpath: prefix + "cudaLaunchKernel", name: "cudaLaunchKernel", kind: calltree.KindCUDAAPI,
		dur: float64(totalKernels) * 5e-6, count: totalKernels, overlap: true,
	})
	// Sorted iteration: spec order determines the per-event noise stream,
	// so map order would make otherwise identical runs diverge.
	apiKeys := make([]string, 0, len(apiCalls))
	for k := range apiCalls {
		apiKeys = append(apiKeys, k)
	}
	sort.Strings(apiKeys)
	for _, k := range apiKeys {
		add(*apiCalls[k])
	}

	// --- NVTX user functions (exclusive Python-side time) ---------------
	if phase == trace.PhaseTrain {
		add(kernelSpec{callpath: prefix + "training_step", name: "training_step", kind: calltree.KindNVTX, dur: 60e-6, count: 1, overlap: true})
		add(kernelSpec{callpath: prefix + "compute_gradients", name: "compute_gradients", kind: calltree.KindNVTX, dur: 40e-6, count: 1, overlap: true})
		add(kernelSpec{callpath: prefix + "update_weights", name: "update_weights", kind: calltree.KindNVTX, dur: 20e-6, count: 1, overlap: true})
	} else {
		add(kernelSpec{callpath: prefix + "test_step", name: "test_step", kind: calltree.KindNVTX, dur: 50e-6, count: 1, overlap: true})
	}
	return specs
}

// stepExposedTime sums the critical-path durations of a spec set plus the
// strategy's pipeline bubble.
func stepExposedTime(specs []kernelSpec, cfg RunConfig) float64 {
	var t float64
	for _, s := range specs {
		if !s.overlap {
			t += s.dur
		}
	}
	return t * (1 + cfg.Strategy.BubbleOverhead(cfg.Ranks))
}

// derive returns a deterministic seed from components.
func derive(base int64, parts ...string) int64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d", base)
	for _, p := range parts {
		h.Write([]byte{0})
		h.Write([]byte(p))
	}
	return int64(h.Sum64() & math.MaxInt64)
}

// warmupScale returns the compute inflation of step s in the warm-up
// epoch: frameworks autotune and allocate during the first steps.
func warmupScale(stepIdx int) float64 {
	return 1 + 2.2*math.Exp(-1.2*float64(stepIdx))
}

// InitTime returns the fixed startup cost of one run: framework import,
// graph building, and first-touch dataset I/O. It appears in profiled
// wall-clock times but not in steady-state epoch times.
func InitTime(b Benchmark) float64 {
	return 0.8 + b.Dataset.TotalBytes()/20e9
}

// Profile simulates one profiling run of the benchmark at the given
// configuration and repetition, returning per-rank profiles. With
// sampled=true the efficient sampling strategy is used (ProfileSteps
// training steps and up to ProfileSteps validation steps from
// ProfileEpochs epochs); with sampled=false entire epochs are profiled.
func Profile(b Benchmark, cfg RunConfig, rep int, sampled bool) ([]*profile.Profile, error) {
	if err := b.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	ep := EpochParams(b, cfg.Strategy, cfg.Ranks, cfg.WeakScaling)
	nt, nv := ep.TrainSteps(), ep.ValSteps()
	if nt < 1 {
		return nil, fmt.Errorf("engine: configuration yields %d training steps per epoch", nt)
	}

	epochs := cfg.profileEpochs()
	trainSteps, valSteps := nt, nv
	if sampled {
		trainSteps = minInt(cfg.profileSteps(), nt)
		valSteps = minInt(cfg.profileSteps(), nv)
	}

	trainSpecs := stepSpecs(b, cfg, trace.PhaseTrain)
	valSpecs := stepSpecs(b, cfg, trace.PhaseValidation)

	ranksToTrace := cfg.Ranks
	if cfg.SampleRanks > 0 && cfg.SampleRanks < ranksToTrace {
		ranksToTrace = cfg.SampleRanks
	}

	nodes := cfg.System.NodesFor(cfg.Ranks)
	params := cfg.noiseParams(b)
	// The communication factor of a step is shared by all ranks (a
	// collective finishes together); draw it from a rank-independent
	// stream.
	commRng := noise.NewSource(params, nodes, derive(cfg.Seed, b.Name, cfg.System.Name, cfg.Strategy.Name(),
		fmt.Sprintf("comm/%d/%d/%d/%v", cfg.Ranks, b.BatchSize, rep, cfg.WeakScaling)))

	// Pre-draw per-(epoch, step, phase) comm factors so every rank sees
	// identical collective durations.
	type stepKey struct {
		epoch, step int
		phase       trace.Phase
	}
	commFactors := make(map[stepKey]float64)
	for e := 0; e < epochs; e++ {
		for s := 0; s < trainSteps; s++ {
			commFactors[stepKey{e, s, trace.PhaseTrain}] = commRng.CommFactor()
		}
		for s := 0; s < valSteps; s++ {
			commFactors[stepKey{e, s, trace.PhaseValidation}] = commRng.CommFactor()
		}
	}

	profiles := make([]*profile.Profile, 0, ranksToTrace)
	for rank := 0; rank < ranksToTrace; rank++ {
		src := noise.NewSource(params, nodes, derive(cfg.Seed, b.Name, cfg.System.Name, cfg.Strategy.Name(),
			fmt.Sprintf("rank/%d/%d/%d/%d/%v", cfg.Ranks, b.BatchSize, rep, rank, cfg.WeakScaling)))
		tr := trace.Trace{Rank: rank}
		cursor := 1e-4 * float64(rank%7) // slight per-rank stagger

		emitStep := func(epochIdx, stepIdx int, phase trace.Phase, specs []kernelSpec) {
			key := stepKey{epochIdx, stepIdx, phase}
			cf := commFactors[key]
			if cf == 0 {
				cf = 1
			}
			stepFactor := src.StepFactor()
			warm := 1.0
			if epochIdx == 0 && phase == trace.PhaseTrain {
				warm = warmupScale(stepIdx)
			}
			start := cursor
			for _, s := range specs {
				dur := s.dur
				switch calltree.CategoryOf(s.kind) {
				case calltree.CategoryCommunication:
					// Collectives complete together: the factor is shared
					// by all ranks of the step, and the per-rank step
					// jitter must not apply.
					dur *= cf
				case calltree.CategoryMemory:
					dur *= src.KernelFactor() * stepFactor
				default:
					dur *= src.ComputeFactor() * warm * stepFactor
				}
				ev := trace.Event{
					Name: s.name, Kind: s.kind, Callpath: s.callpath,
					Start: cursor, Duration: dur, Bytes: s.bytes, Count: s.count,
				}
				// Data-dependent variability: invocation counts of I/O and
				// fused element-wise kernels fluctuate per step, and
				// transfer sizes vary with variable-length samples.
				if s.kind == calltree.KindOS && s.count > 1 {
					ev.Count = s.count + src.CountJitter(2)
				} else if s.kind == calltree.KindCUDA && s.count > 1 {
					// Shape-dependent kernel splitting and autotuning make
					// the number of launches of a kernel family fluctuate.
					ev.Count = s.count + src.CountJitter(2)
				}
				if s.kind == calltree.KindMemcpy && s.bytes > 4096 {
					ev.Bytes = s.bytes * src.BytesJitter()
				}
				tr.Events = append(tr.Events, ev)
				if !s.overlap {
					cursor += dur
				}
			}
			bubble := cfg.Strategy.BubbleOverhead(cfg.Ranks)
			if bubble > 0 && phase == trace.PhaseTrain {
				cursor += (cursor - start) * bubble
			}
			cursor += 2e-6
			tr.Steps = append(tr.Steps, trace.StepSpan{
				Epoch: epochIdx, Index: stepIdx, Phase: phase, Start: start, End: cursor,
			})
			if phase == trace.PhaseTrain {
				// Asynchronous loss copy lands between steps.
				d2h := trace.Event{
					Name: "Memcpy DtoH", Kind: calltree.KindMemcpy,
					Callpath: "App->train->Memcpy DtoH",
					Start:    cursor + 1e-6, Duration: 3e-6 * src.KernelFactor(),
					Bytes: 4096, Count: 1,
				}
				tr.Events = append(tr.Events, d2h)
				cursor += 2e-5
			}
		}

		for e := 0; e < epochs; e++ {
			epochStart := cursor
			for s := 0; s < trainSteps; s++ {
				emitStep(e, s, trace.PhaseTrain, trainSpecs)
			}
			for s := 0; s < valSteps; s++ {
				emitStep(e, trainSteps+s, trace.PhaseValidation, valSpecs)
			}
			cursor += 1e-5
			tr.Epochs = append(tr.Epochs, trace.EpochSpan{Index: e, Start: epochStart, End: cursor})
			cursor += 1e-5
		}
		tr.Sort()

		wall := InitTime(b) + tr.TotalDuration()*(1+cfg.overheadFactor())
		params := cfg.ProfileParams
		point := cfg.ProfilePoint
		if len(params) == 0 || len(params) != len(point) {
			params = []string{"p"}
			point = []float64{float64(cfg.Ranks)}
		}
		profiles = append(profiles, &profile.Profile{
			App:      b.Name,
			Params:   append([]string(nil), params...),
			Config:   append([]float64(nil), point...),
			Rank:     rank,
			Rep:      rep,
			WallTime: wall,
			Sampled:  sampled,
			Trace:    tr,
		})
	}
	return profiles, nil
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// RunNoiseFactor returns the run-level multiplicative noise factor of one
// repetition — the same factor the trace generator applies to rank 0's
// computation. It is exposed so coarse-grained baselines (e.g. full-run
// profiling that only records wall times) perturb analytic epoch times
// consistently with the fine-grained simulation.
func RunNoiseFactor(b Benchmark, cfg RunConfig, rep int) float64 {
	nodes := cfg.System.NodesFor(cfg.Ranks)
	src := noise.NewSource(cfg.noiseParams(b), nodes, derive(cfg.Seed, b.Name, cfg.System.Name, cfg.Strategy.Name(),
		fmt.Sprintf("rank/%d/%d/%d/%d/%v", cfg.Ranks, b.BatchSize, rep, 0, cfg.WeakScaling)))
	return src.RunFactorCompute()
}

// EpochStats summarizes the analytic (noise-free) per-epoch timing of a
// configuration, used for the profiling-overhead experiment (Fig. 8).
type EpochStats struct {
	// TrainSteps and ValSteps are n_t and n_v.
	TrainSteps, ValSteps int
	// StepTime and ValStepTime are the steady-state step durations.
	StepTime, ValStepTime float64
	// ExecTimePerEpoch is the full epoch wall time n_t·t_s + n_v·t_v.
	ExecTimePerEpoch float64
	// SampledExecPerEpoch is the executed time per profiled epoch under
	// the efficient sampling strategy (ProfileSteps steps plus
	// initialization amortized over the profiled epochs).
	SampledExecPerEpoch float64
	// ProfilingTimeFull and ProfilingTimeSampled are the profiling
	// overheads per epoch for full-epoch and sampled profiling.
	ProfilingTimeFull, ProfilingTimeSampled float64
}

// SavingsFraction returns the relative reduction in profiled execution
// time achieved by the sampling strategy (the paper reports 94.9% on
// average across the five benchmarks at 64 nodes).
func (s EpochStats) SavingsFraction() float64 {
	if s.ExecTimePerEpoch == 0 {
		return 0
	}
	return 1 - s.SampledExecPerEpoch/s.ExecTimePerEpoch
}

// Stats computes the analytic epoch statistics for a configuration.
func Stats(b Benchmark, cfg RunConfig) (EpochStats, error) {
	if err := b.Validate(); err != nil {
		return EpochStats{}, err
	}
	if err := cfg.Validate(); err != nil {
		return EpochStats{}, err
	}
	ep := EpochParams(b, cfg.Strategy, cfg.Ranks, cfg.WeakScaling)
	nt, nv := ep.TrainSteps(), ep.ValSteps()
	tStep := stepExposedTime(stepSpecs(b, cfg, trace.PhaseTrain), cfg)
	tVal := stepExposedTime(stepSpecs(b, cfg, trace.PhaseValidation), cfg)
	exec := float64(nt)*tStep + float64(nv)*tVal
	epochs := float64(cfg.profileEpochs())
	sampledSteps := float64(minInt(cfg.profileSteps(), nt))
	sampledVal := float64(minInt(cfg.profileSteps(), nv))
	sampled := (InitTime(b) + epochs*(sampledSteps*tStep+sampledVal*tVal)) / epochs
	of := cfg.overheadFactor()
	return EpochStats{
		TrainSteps: nt, ValSteps: nv,
		StepTime: tStep, ValStepTime: tVal,
		ExecTimePerEpoch:     exec,
		SampledExecPerEpoch:  sampled,
		ProfilingTimeFull:    of * exec,
		ProfilingTimeSampled: of * sampled,
	}, nil
}
