package engine

import (
	"testing"

	"extradeep/internal/calltree"
	"extradeep/internal/mathutil"
	"extradeep/internal/measurement"
	"extradeep/internal/simulator/hardware"
	"extradeep/internal/simulator/parallel"
	"extradeep/internal/trace"
)

func testConfig(ranks int) RunConfig {
	return RunConfig{
		System:      hardware.DEEP(),
		Strategy:    parallel.DataParallel{FusionBuckets: 4},
		Ranks:       ranks,
		WeakScaling: true,
		Seed:        1,
		SampleRanks: 2,
	}
}

func mustBenchmark(t *testing.T, name string) Benchmark {
	t.Helper()
	b, err := ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestByNameAllBenchmarks(t *testing.T) {
	bs, err := Benchmarks()
	if err != nil {
		t.Fatal(err)
	}
	if len(bs) != 5 {
		t.Fatalf("got %d benchmarks, want 5", len(bs))
	}
	for _, b := range bs {
		if err := b.Validate(); err != nil {
			t.Errorf("%s: %v", b.Name, err)
		}
	}
	if _, err := ByName("mnist"); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

func TestBenchmarkValidateCatchesBadFields(t *testing.T) {
	b := mustBenchmark(t, "cifar10")
	b.BatchSize = 0
	if b.Validate() == nil {
		t.Error("zero batch accepted")
	}
	b = mustBenchmark(t, "cifar10")
	b.Model = nil
	if b.Validate() == nil {
		t.Error("nil model accepted")
	}
}

func TestEpochParamsWeakScaling(t *testing.T) {
	b := mustBenchmark(t, "cifar10")
	strat := parallel.DataParallel{}
	p4 := EpochParams(b, strat, 4, true)
	p16 := EpochParams(b, strat, 16, true)
	if p4.TrainSteps() != p16.TrainSteps() {
		t.Errorf("weak scaling: steps %d vs %d, want equal", p4.TrainSteps(), p16.TrainSteps())
	}
	if !mathutil.Close(p4.DataParallel, 4) || !mathutil.Close(p4.ModelParallel, 1) {
		t.Errorf("G,M = %v,%v", p4.DataParallel, p4.ModelParallel)
	}
}

func TestEpochParamsStrongScaling(t *testing.T) {
	// Strong scaling fixes the global batch: the number of steps per
	// epoch stays constant while the per-worker batch shrinks.
	b := mustBenchmark(t, "cifar10")
	strat := parallel.DataParallel{}
	p4 := EpochParams(b, strat, 4, false)
	p16 := EpochParams(b, strat, 16, false)
	if p16.TrainSteps() != p4.TrainSteps() {
		t.Errorf("strong scaling: steps %d vs %d, want equal (fixed global batch)", p16.TrainSteps(), p4.TrainSteps())
	}
	if p16.BatchSize >= p4.BatchSize {
		t.Errorf("strong scaling: per-worker batch should shrink (%v vs %v)", p16.BatchSize, p4.BatchSize)
	}
	// Global batch = per-worker batch × workers stays fixed.
	if g4, g16 := p4.BatchSize*4, p16.BatchSize*16; !mathutil.Close(g4, g16) {
		t.Errorf("global batch changed: %v vs %v", g4, g16)
	}
}

func TestPerWorkerBatchFloorsAtOne(t *testing.T) {
	b := mustBenchmark(t, "imdb") // B = 128, global batch 1024
	if got := PerWorkerBatch(b, parallel.DataParallel{}, 4096, false); !mathutil.Close(got, 1) {
		t.Errorf("per-worker batch = %v, want clamp to 1", got)
	}
}

func TestSetupFunc(t *testing.T) {
	b := mustBenchmark(t, "cifar10")
	f := SetupFunc(b, parallel.DataParallel{}, true)
	p := f(measurement.Point{8})
	if !mathutil.Close(p.DataParallel, 8) {
		t.Errorf("setup G = %v, want 8", p.DataParallel)
	}
}

func TestProfileBasicShape(t *testing.T) {
	b := mustBenchmark(t, "cifar10")
	profiles, err := Profile(b, testConfig(4), 1, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(profiles) != 2 { // SampleRanks = 2
		t.Fatalf("got %d profiles, want 2", len(profiles))
	}
	for _, p := range profiles {
		if err := p.Validate(); err != nil {
			t.Fatal(err)
		}
		if !p.Sampled {
			t.Error("profile not marked sampled")
		}
		if len(p.Trace.Epochs) != 2 {
			t.Errorf("epochs = %d, want 2", len(p.Trace.Epochs))
		}
		// 5 train + validation steps per epoch.
		train := p.Trace.StepsOfPhase(trace.PhaseTrain)
		if len(train) != 10 {
			t.Errorf("train steps = %d, want 10", len(train))
		}
	}
}

func TestProfileDeterministic(t *testing.T) {
	b := mustBenchmark(t, "imdb")
	a1, err := Profile(b, testConfig(4), 1, true)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := Profile(b, testConfig(4), 1, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(a1[0].Trace.Events) != len(a2[0].Trace.Events) {
		t.Fatal("event counts differ")
	}
	for i := range a1[0].Trace.Events {
		//edlint:ignore floateq determinism: identical seeds must yield bit-identical traces
		if a1[0].Trace.Events[i].Duration != a2[0].Trace.Events[i].Duration {
			t.Fatal("durations differ across identical runs")
		}
	}
}

func TestProfileRepetitionsDiffer(t *testing.T) {
	b := mustBenchmark(t, "imdb")
	r1, err := Profile(b, testConfig(4), 1, true)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Profile(b, testConfig(4), 2, true)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range r1[0].Trace.Events {
		//edlint:ignore floateq determinism: identical seeds must yield bit-identical traces
		if r1[0].Trace.Events[i].Duration != r2[0].Trace.Events[i].Duration {
			same = false
			break
		}
	}
	if same {
		t.Error("different repetitions produced identical traces")
	}
}

func TestProfileContainsExpectedKernels(t *testing.T) {
	b := mustBenchmark(t, "cifar10")
	profiles, err := Profile(b, testConfig(4), 1, true)
	if err != nil {
		t.Fatal(err)
	}
	names := make(map[string]bool)
	kinds := make(map[calltree.Kind]bool)
	for _, e := range profiles[0].Trace.Events {
		names[e.Name] = true
		kinds[e.Kind] = true
	}
	for _, want := range []string{
		"sys_read", "Memcpy HtoD", "Memcpy DtoH", "Memset",
		"MPI_Allreduce", "sgd_update_kernel", "EigenMetaKernel",
		"cudaLaunchKernel", "training_step",
	} {
		if !names[want] {
			t.Errorf("kernel %q missing from trace", want)
		}
	}
	for _, want := range []calltree.Kind{
		calltree.KindCUDA, calltree.KindMPI, calltree.KindMemcpy,
		calltree.KindMemset, calltree.KindOS, calltree.KindNVTX,
		calltree.KindCUDAAPI, calltree.KindCuDNN,
	} {
		if !kinds[want] {
			t.Errorf("kind %v missing from trace", want)
		}
	}
}

func TestProfileNCCLOnJURECA(t *testing.T) {
	b := mustBenchmark(t, "cifar10")
	cfg := testConfig(8)
	cfg.System = hardware.JURECA()
	profiles, err := Profile(b, cfg, 1, true)
	if err != nil {
		t.Fatal(err)
	}
	sawNCCL := false
	for _, e := range profiles[0].Trace.Events {
		if e.Kind == calltree.KindNCCL {
			sawNCCL = true
		}
		if e.Kind == calltree.KindMPI {
			t.Errorf("MPI kernel %q on the NCCL system", e.Name)
		}
	}
	if !sawNCCL {
		t.Error("no NCCL kernels on JURECA")
	}
}

func TestProfileGranularityLayer(t *testing.T) {
	b := mustBenchmark(t, "cifar10")
	cfgType := testConfig(4)
	cfgLayer := testConfig(4)
	cfgLayer.Granularity = GranularityLayer
	pType, err := Profile(b, cfgType, 1, true)
	if err != nil {
		t.Fatal(err)
	}
	pLayer, err := Profile(b, cfgLayer, 1, true)
	if err != nil {
		t.Fatal(err)
	}
	countPaths := func(ps []*trace.Event) int { return 0 }
	_ = countPaths
	paths := func(tr trace.Trace) map[string]bool {
		out := make(map[string]bool)
		for _, e := range tr.Events {
			out[e.Callpath] = true
		}
		return out
	}
	if len(paths(pLayer[0].Trace)) <= len(paths(pType[0].Trace)) {
		t.Errorf("layer granularity should yield more distinct callpaths (%d vs %d)",
			len(paths(pLayer[0].Trace)), len(paths(pType[0].Trace)))
	}
}

func TestProfileWarmupEpochSlower(t *testing.T) {
	b := mustBenchmark(t, "cifar10")
	profiles, err := Profile(b, testConfig(2), 1, true)
	if err != nil {
		t.Fatal(err)
	}
	tr := profiles[0].Trace
	var e0, e1 float64
	for _, s := range tr.Steps {
		if s.Phase != trace.PhaseTrain {
			continue
		}
		if s.Epoch == 0 {
			e0 += s.Duration()
		} else {
			e1 += s.Duration()
		}
	}
	if e0 <= e1 {
		t.Errorf("warm-up epoch (%v) should be slower than epoch 1 (%v)", e0, e1)
	}
}

func TestProfileValidationRejectsBadConfig(t *testing.T) {
	b := mustBenchmark(t, "cifar10")
	cfg := testConfig(4)
	cfg.Ranks = 0
	if _, err := Profile(b, cfg, 1, true); err == nil {
		t.Error("zero ranks accepted")
	}
	cfg = testConfig(4)
	cfg.Ranks = 10_000
	if _, err := Profile(b, cfg, 1, true); err == nil {
		t.Error("over-capacity ranks accepted")
	}
	cfg = testConfig(4)
	cfg.Strategy = nil
	if _, err := Profile(b, cfg, 1, true); err == nil {
		t.Error("nil strategy accepted")
	}
}

func TestProfileFullHasAllSteps(t *testing.T) {
	b := mustBenchmark(t, "imdb") // smallest benchmark: full profile is cheap
	cfg := testConfig(2)
	cfg.SampleRanks = 1
	profiles, err := Profile(b, cfg, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	ep := EpochParams(b, cfg.Strategy, cfg.Ranks, cfg.WeakScaling)
	train := profiles[0].Trace.StepsOfPhase(trace.PhaseTrain)
	if len(train) != 2*ep.TrainSteps() {
		t.Errorf("full profile train steps = %d, want %d", len(train), 2*ep.TrainSteps())
	}
	if profiles[0].Sampled {
		t.Error("full profile marked sampled")
	}
}

func TestStepTimeGrowsWithScaleWeak(t *testing.T) {
	b := mustBenchmark(t, "cifar10")
	prev := 0.0
	for _, ranks := range []int{2, 8, 32, 64} {
		st, err := Stats(b, testConfig(ranks))
		if err != nil {
			t.Fatal(err)
		}
		if st.StepTime <= prev {
			t.Errorf("step time at %d ranks = %v, not growing", ranks, st.StepTime)
		}
		prev = st.StepTime
	}
}

func TestStatsEpochTimes(t *testing.T) {
	b := mustBenchmark(t, "cifar10")
	st, err := Stats(b, testConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	if st.TrainSteps != 195 { // 50000·4/4/256
		t.Errorf("train steps = %d, want 195", st.TrainSteps)
	}
	if st.ExecTimePerEpoch <= 0 || st.SampledExecPerEpoch <= 0 {
		t.Error("non-positive epoch times")
	}
	if st.SampledExecPerEpoch >= st.ExecTimePerEpoch {
		t.Error("sampling should reduce the profiled window")
	}
	if st.ProfilingTimeFull <= st.ProfilingTimeSampled {
		t.Error("full profiling should cost more overhead")
	}
}

func TestStatsSavingsNearPaper(t *testing.T) {
	// The paper reports ≈94.9% average savings across the five
	// benchmarks on 64 nodes (Fig. 8). Verify the simulated average
	// falls in the 85–99% band.
	bs, err := Benchmarks()
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, b := range bs {
		st, err := Stats(b, testConfig(64))
		if err != nil {
			t.Fatal(err)
		}
		s := st.SavingsFraction()
		if s <= 0 || s >= 1 {
			t.Errorf("%s: savings = %v out of range", b.Name, s)
		}
		sum += s
	}
	avg := sum / float64(len(bs))
	if avg < 0.85 || avg > 0.995 {
		t.Errorf("average savings = %v, want ≈0.949", avg)
	}
}

func TestStatsImageNetDominates(t *testing.T) {
	// Fig. 8: ImageNet's epoch dwarfs the others.
	imagenet, err := Stats(mustBenchmark(t, "imagenet"), testConfig(64))
	if err != nil {
		t.Fatal(err)
	}
	cifar, err := Stats(mustBenchmark(t, "cifar10"), testConfig(64))
	if err != nil {
		t.Fatal(err)
	}
	imdb, err := Stats(mustBenchmark(t, "imdb"), testConfig(64))
	if err != nil {
		t.Fatal(err)
	}
	if imagenet.ExecTimePerEpoch <= 5*cifar.ExecTimePerEpoch {
		t.Errorf("ImageNet epoch (%v) should dwarf CIFAR-10 (%v)", imagenet.ExecTimePerEpoch, cifar.ExecTimePerEpoch)
	}
	if imdb.ExecTimePerEpoch >= cifar.ExecTimePerEpoch {
		t.Errorf("IMDB epoch (%v) should undercut CIFAR-10 (%v)", imdb.ExecTimePerEpoch, cifar.ExecTimePerEpoch)
	}
}

func TestSamplingLessEffectiveForShortBenchmarks(t *testing.T) {
	// Fig. 8: the strategy saves most on long epochs (ImageNet) and
	// least on short ones (IMDB).
	imagenet, _ := Stats(mustBenchmark(t, "imagenet"), testConfig(64))
	imdb, _ := Stats(mustBenchmark(t, "imdb"), testConfig(64))
	if imagenet.SavingsFraction() <= imdb.SavingsFraction() {
		t.Errorf("ImageNet savings (%v) should exceed IMDB savings (%v)",
			imagenet.SavingsFraction(), imdb.SavingsFraction())
	}
}

func TestTensorParallelStepCostsDiffer(t *testing.T) {
	b := mustBenchmark(t, "cifar10")
	dataCfg := testConfig(16)
	tensorCfg := testConfig(16)
	tensorCfg.Strategy = parallel.TensorParallel{GroupSize: 4}
	dataStats, err := Stats(b, dataCfg)
	if err != nil {
		t.Fatal(err)
	}
	tensorStats, err := Stats(b, tensorCfg)
	if err != nil {
		t.Fatal(err)
	}
	//edlint:ignore floateq the strategies must produce observably different step times; any inequality suffices
	if dataStats.StepTime == tensorStats.StepTime {
		t.Error("strategies should produce different step costs")
	}
}

func TestStatsZeroTrainStepsRejectedByProfile(t *testing.T) {
	// A dataset smaller than one global batch yields 0 steps per epoch.
	b := mustBenchmark(t, "cifar10")
	b.Dataset.TrainSamples = 100 // < one batch of 256
	cfg := testConfig(2)
	cfg.WeakScaling = false
	if _, err := Profile(b, cfg, 1, true); err == nil {
		t.Error("zero-step configuration accepted")
	}
}

func TestInitTimeGrowsWithDataset(t *testing.T) {
	small := InitTime(mustBenchmark(t, "imdb"))
	big := InitTime(mustBenchmark(t, "imagenet"))
	if big <= small {
		t.Error("InitTime should grow with dataset size")
	}
}
