package engine

import (
	"strings"
	"testing"

	"extradeep/internal/calltree"
	"extradeep/internal/mathutil"
	"extradeep/internal/simulator/hardware"
	"extradeep/internal/simulator/parallel"
	"extradeep/internal/trace"
)

func TestJURECATracesUseAmpereKernels(t *testing.T) {
	b := mustBenchmark(t, "cifar10")
	cfg := testConfig(8)
	cfg.System = hardware.JURECA()
	profiles, err := Profile(b, cfg, 1, true)
	if err != nil {
		t.Fatal(err)
	}
	sawAmpere := false
	for _, e := range profiles[0].Trace.Events {
		if strings.HasPrefix(e.Name, "ampere_") {
			sawAmpere = true
		}
		if strings.HasPrefix(e.Name, "volta_") {
			t.Errorf("Volta kernel %q on an A100 system", e.Name)
		}
	}
	if !sawAmpere {
		t.Error("no Ampere kernels on JURECA")
	}
}

func TestProfileParamsOverride(t *testing.T) {
	b := mustBenchmark(t, "imdb")
	cfg := testConfig(4)
	cfg.ProfileParams = []string{"p", "b"}
	cfg.ProfilePoint = []float64{4, 128}
	profiles, err := Profile(b, cfg, 1, true)
	if err != nil {
		t.Fatal(err)
	}
	p := profiles[0]
	if len(p.Params) != 2 || p.Params[1] != "b" {
		t.Errorf("params = %v", p.Params)
	}
	if len(p.Config) != 2 || !mathutil.Close(p.Config[1], 128) {
		t.Errorf("config = %v", p.Config)
	}
}

func TestProfileParamsMismatchFallsBack(t *testing.T) {
	b := mustBenchmark(t, "imdb")
	cfg := testConfig(4)
	cfg.ProfileParams = []string{"p", "b"}
	cfg.ProfilePoint = []float64{4} // length mismatch → fallback
	profiles, err := Profile(b, cfg, 1, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(profiles[0].Params) != 1 || profiles[0].Params[0] != "p" {
		t.Errorf("fallback params = %v", profiles[0].Params)
	}
}

func TestAsyncStrategyProfiles(t *testing.T) {
	b := mustBenchmark(t, "cifar10")
	cfg := testConfig(16)
	cfg.Strategy = parallel.AsyncDataParallel{}
	profiles, err := Profile(b, cfg, 1, true)
	if err != nil {
		t.Fatal(err)
	}
	sawPush, sawPull := false, false
	for _, e := range profiles[0].Trace.Events {
		switch e.Name {
		case "ps_push_gradients":
			sawPush = true
		case "ps_pull_weights":
			sawPull = true
		}
	}
	if !sawPush || !sawPull {
		t.Error("parameter-server kernels missing from ASP trace")
	}
}

func TestTensorParallelTraceHasActivationComm(t *testing.T) {
	b := mustBenchmark(t, "cifar10")
	cfg := testConfig(16)
	cfg.Strategy = parallel.TensorParallel{GroupSize: 4}
	profiles, err := Profile(b, cfg, 1, true)
	if err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	for _, e := range profiles[0].Trace.Events {
		names[e.Name] = true
	}
	if !names["tensor_activation_allreduce"] {
		t.Errorf("tensor activation exchange missing: %v", names)
	}
	if !names["gradient_allreduce"] {
		t.Error("sharded gradient exchange missing")
	}
}

func TestSampledTraceSmallerThanFull(t *testing.T) {
	b := mustBenchmark(t, "imdb")
	cfg := testConfig(2)
	cfg.SampleRanks = 1
	sampled, err := Profile(b, cfg, 1, true)
	if err != nil {
		t.Fatal(err)
	}
	full, err := Profile(b, cfg, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(sampled[0].Trace.Events)*5 > len(full[0].Trace.Events) {
		t.Errorf("sampled trace (%d events) should be far smaller than full (%d)",
			len(sampled[0].Trace.Events), len(full[0].Trace.Events))
	}
	if sampled[0].WallTime >= full[0].WallTime {
		t.Error("sampled wall time should undercut full profiling")
	}
}

func TestTraceStepsCoverAllEvents(t *testing.T) {
	// Every event either lies inside a step or is attributable to a
	// following step (no event may be lost by aggregation except trailing
	// async copies at the very end of the run).
	b := mustBenchmark(t, "cifar10")
	profiles, err := Profile(b, testConfig(4), 1, true)
	if err != nil {
		t.Fatal(err)
	}
	tr := profiles[0].Trace
	lost := 0
	for _, e := range tr.Events {
		if tr.StepOf(e.Start) == -1 && tr.FollowingStep(e.Start) == -1 {
			lost++
		}
	}
	// Only the final asynchronous copy after the last step may be lost.
	if lost > 1 {
		t.Errorf("%d events unattributable to any step", lost)
	}
}

func TestValidationStepsHaveNoGradientExchange(t *testing.T) {
	b := mustBenchmark(t, "cifar10")
	profiles, err := Profile(b, testConfig(4), 1, true)
	if err != nil {
		t.Fatal(err)
	}
	tr := profiles[0].Trace
	for _, e := range tr.Events {
		idx := tr.StepOf(e.Start)
		if idx == -1 {
			continue
		}
		if tr.Steps[idx].Phase == trace.PhaseValidation && e.Name == "Memset" {
			t.Error("gradient-buffer memset during validation")
		}
	}
}

func TestComplexityFactorOrdering(t *testing.T) {
	// The paper's ordering: ImageNet hardest, IMDB easiest.
	factors := map[string]float64{}
	for _, name := range []string{"cifar10", "imagenet", "imdb", "speechcommands"} {
		b := mustBenchmark(t, name)
		factors[name] = complexityFactor(b)
	}
	if !(factors["imdb"] < factors["speechcommands"] &&
		factors["speechcommands"] < factors["cifar10"] &&
		factors["cifar10"] < factors["imagenet"]) {
		t.Errorf("complexity ordering wrong: %v", factors)
	}
}

func TestCommNoiseSharedAcrossRanks(t *testing.T) {
	// A collective finishes together: within one step, every rank's
	// MPI_Allreduce event must have the identical duration.
	b := mustBenchmark(t, "cifar10")
	cfg := testConfig(4)
	cfg.SampleRanks = 3
	profiles, err := Profile(b, cfg, 1, true)
	if err != nil {
		t.Fatal(err)
	}
	perStep := func(p int) []float64 {
		var out []float64
		for _, e := range profiles[p].Trace.Events {
			if e.Kind == calltree.KindMPI && e.Name == "MPI_Allreduce" {
				out = append(out, e.Duration)
			}
		}
		return out
	}
	a, b2, c := perStep(0), perStep(1), perStep(2)
	if len(a) == 0 || len(a) != len(b2) || len(a) != len(c) {
		t.Fatalf("allreduce counts differ: %d/%d/%d", len(a), len(b2), len(c))
	}
	for i := range a {
		//edlint:ignore floateq determinism: identical seeds must yield bit-identical sequences
		if a[i] != b2[i] || a[i] != c[i] {
			t.Fatalf("collective durations diverge across ranks at step %d", i)
		}
	}
}
