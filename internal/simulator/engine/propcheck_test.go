package engine

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"

	"extradeep/internal/propcheck"
	"extradeep/internal/trace"
)

// engineCase is one simulated campaign configuration.
type engineCase struct {
	seed    int64
	ranks   int
	sampled bool
}

func engineCaseGen() propcheck.Gen[engineCase] {
	return propcheck.Gen[engineCase]{
		Generate: func(r *propcheck.Rand) engineCase {
			return engineCase{
				seed:    r.Int64Range(1, 1<<40),
				ranks:   1 << r.IntRange(1, 3), // 2, 4, 8
				sampled: r.Bool(),
			}
		},
		Describe: func(c engineCase) string {
			return fmt.Sprintf("{seed=%d ranks=%d sampled=%v}", c.seed, c.ranks, c.sampled)
		},
	}
}

// TestPropSameSeedByteIdenticalProfiles: simulating the same configuration
// with the same seed twice yields byte-identical event streams — every
// random draw is derived from the explicit seed, never from global or
// clock state.
func TestPropSameSeedByteIdenticalProfiles(t *testing.T) {
	b := mustBenchmark(t, "cifar10")
	propcheck.CheckConfig(t, propcheck.Config{Iterations: 8}, engineCaseGen(), func(c engineCase) error {
		cfg := testConfig(c.ranks)
		cfg.Seed = c.seed
		run := func() ([]byte, error) {
			ps, err := Profile(b, cfg, 1, c.sampled)
			if err != nil {
				return nil, err
			}
			return json.Marshal(ps)
		}
		j1, err := run()
		if err != nil {
			return fmt.Errorf("first run: %w", err)
		}
		j2, err := run()
		if err != nil {
			return fmt.Errorf("second run: %w", err)
		}
		if !bytes.Equal(j1, j2) {
			return fmt.Errorf("same seed %d produced different event streams (%d vs %d bytes)",
				c.seed, len(j1), len(j2))
		}
		return nil
	})
}

// TestPropSampledIsPrefixConsistentSubset: the efficient sampling strategy
// profiles a prefix of each epoch's training steps; those steps must be
// byte-identical to the corresponding steps of the full-profiling run —
// sampling selects a subset of the work, it does not perturb it.
func TestPropSampledIsPrefixConsistentSubset(t *testing.T) {
	b := mustBenchmark(t, "cifar10")
	propcheck.CheckConfig(t, propcheck.Config{Iterations: 5}, engineCaseGen(), func(c engineCase) error {
		cfg := testConfig(c.ranks)
		cfg.Seed = c.seed
		sampledPs, err := Profile(b, cfg, 1, true)
		if err != nil {
			return fmt.Errorf("sampled run: %w", err)
		}
		fullPs, err := Profile(b, cfg, 1, false)
		if err != nil {
			return fmt.Errorf("full run: %w", err)
		}
		if len(sampledPs) != len(fullPs) {
			return fmt.Errorf("rank sets differ: %d sampled vs %d full profiles", len(sampledPs), len(fullPs))
		}
		for i := range sampledPs {
			trS, trF := sampledPs[i].Trace, fullPs[i].Trace
			stepsS := epochTrainSteps(&trS, 0)
			stepsF := epochTrainSteps(&trF, 0)
			if len(stepsS) > len(stepsF) {
				return fmt.Errorf("rank %d: sampled run has more epoch-0 train steps (%d) than the full run (%d)",
					sampledPs[i].Rank, len(stepsS), len(stepsF))
			}
			for j := range stepsS {
				ss, sf := trS.Steps[stepsS[j]], trF.Steps[stepsF[j]]
				if ss != sf {
					return fmt.Errorf("rank %d: epoch-0 train step %d differs: sampled %+v vs full %+v",
						sampledPs[i].Rank, j, ss, sf)
				}
				evS := eventsWithin(&trS, ss)
				evF := eventsWithin(&trF, sf)
				if len(evS) != len(evF) {
					return fmt.Errorf("rank %d step %d: %d sampled events vs %d full events",
						sampledPs[i].Rank, j, len(evS), len(evF))
				}
				for k := range evS {
					if evS[k] != evF[k] {
						return fmt.Errorf("rank %d step %d event %d differs: %+v vs %+v",
							sampledPs[i].Rank, j, k, evS[k], evF[k])
					}
				}
			}
		}
		return nil
	})
}

// epochTrainSteps returns the indices of epoch ep's training steps.
func epochTrainSteps(tr *trace.Trace, ep int) []int {
	var out []int
	for i, s := range tr.Steps {
		if s.Epoch == ep && s.Phase == trace.PhaseTrain {
			out = append(out, i)
		}
	}
	return out
}

// eventsWithin returns the events starting inside the step span.
func eventsWithin(tr *trace.Trace, s trace.StepSpan) []trace.Event {
	var out []trace.Event
	for _, e := range tr.Events {
		if s.Contains(e.Start) {
			out = append(out, e)
		}
	}
	return out
}
