// Package engine simulates distributed DNN training runs and produces the
// per-rank profiler traces Extra-Deep's pipeline consumes. It is the
// substitute for the paper's measurement substrate (TensorFlow/PyTorch +
// Horovod on the DEEP and JURECA clusters profiled with Nsight Systems),
// reproducing the same observable interface: named, categorized,
// timestamped kernel events per MPI rank, bracketed by NVTX step and epoch
// marks, with warm-up distortion in the first epoch and seeded system
// noise that grows with scale.
package engine

import (
	"fmt"

	"extradeep/internal/epoch"
	"extradeep/internal/measurement"
	"extradeep/internal/simulator/dataset"
	"extradeep/internal/simulator/dnn"
	"extradeep/internal/simulator/parallel"
)

// Benchmark pairs a dataset with its architecture and batch size, matching
// the paper's five application benchmarks.
type Benchmark struct {
	// Name is the benchmark identifier (the dataset name).
	Name string
	// Dataset is the input data descriptor.
	Dataset dataset.Dataset
	// Model is the DNN architecture.
	Model *dnn.Model
	// BatchSize is the per-worker batch size B.
	BatchSize int
}

// Validate checks the benchmark's consistency.
func (b Benchmark) Validate() error {
	if b.Name == "" {
		return fmt.Errorf("engine: unnamed benchmark")
	}
	if err := b.Dataset.Validate(); err != nil {
		return err
	}
	if b.Model == nil {
		return fmt.Errorf("engine: benchmark %s has no model", b.Name)
	}
	if err := b.Model.Validate(); err != nil {
		return err
	}
	if b.BatchSize <= 0 {
		return fmt.Errorf("engine: benchmark %s batch size %d", b.Name, b.BatchSize)
	}
	return nil
}

// ByName builds one of the paper's five benchmarks: CIFAR-10 and CIFAR-100
// train a ResNet-50 with batch 256 per rank (the case-study setup),
// ImageNet an EfficientNet-B0, IMDB the NNLM, and Speech Commands the
// ten-layer CNN.
func ByName(name string) (Benchmark, error) {
	ds, err := dataset.ByName(name)
	if err != nil {
		return Benchmark{}, err
	}
	m, err := dnn.ForBenchmark(name, ds.InputShape[0], ds.InputShape[1], ds.InputShape[2], ds.Classes)
	if err != nil {
		return Benchmark{}, err
	}
	batch := 256
	switch name {
	case "imagenet", "imdb":
		batch = 128
	}
	return Benchmark{Name: name, Dataset: ds, Model: m, BatchSize: batch}, nil
}

// Benchmarks returns all five paper benchmarks in presentation order.
func Benchmarks() ([]Benchmark, error) {
	var out []Benchmark
	for _, name := range dataset.Names() {
		b, err := ByName(name)
		if err != nil {
			return nil, err
		}
		out = append(out, b)
	}
	return out, nil
}

// GlobalBatchFactor anchors the fixed global batch of strong-scaling runs:
// the global batch is BatchSize × GlobalBatchFactor samples per step, so a
// run with 8 data-parallel workers uses the benchmark's nominal per-worker
// batch, and larger allocations shrink the per-worker batch accordingly.
// This is the standard strong-scaling regime (same problem, same global
// batch, more resources) and matches the paper's note that batch-related
// values are "naturally adjusted" as the rank count scales (Section 4.1).
const GlobalBatchFactor = 8

// PerWorkerBatch returns the per-worker batch size B of a configuration:
// the nominal batch under weak scaling, and the fixed global batch divided
// by the number of data-parallel workers under strong scaling (≥ 1).
func PerWorkerBatch(b Benchmark, strategy parallel.Strategy, ranks int, weakScaling bool) float64 {
	if weakScaling {
		return float64(b.BatchSize)
	}
	g, m := strategy.Degrees(ranks)
	workers := g / m
	if workers < 1 {
		workers = 1
	}
	pb := float64(b.BatchSize) * GlobalBatchFactor / workers
	if pb < 1 {
		pb = 1
	}
	return pb
}

// EpochParams returns the analytical training-setup values (Section 2.3.1)
// for the benchmark at the given scale: per-worker batch size, dataset
// sizes (weak scaling multiplies the training set by the rank count, as in
// the case-study benchmark), and the strategy's parallel degrees.
func EpochParams(b Benchmark, strategy parallel.Strategy, ranks int, weakScaling bool) epoch.Params {
	g, m := strategy.Degrees(ranks)
	train := float64(b.Dataset.TrainSamples)
	if weakScaling {
		train *= float64(ranks)
	}
	return epoch.Params{
		BatchSize:     PerWorkerBatch(b, strategy, ranks, weakScaling),
		TrainSamples:  train,
		ValSamples:    float64(b.Dataset.ValSamples),
		DataParallel:  g,
		ModelParallel: m,
	}
}

// SetupFunc returns the epoch.SetupFunc for a benchmark/strategy pair,
// treating the first point coordinate as the rank count. It feeds the
// epoch extrapolation of the modeling pipeline.
func SetupFunc(b Benchmark, strategy parallel.Strategy, weakScaling bool) epoch.SetupFunc {
	return func(point measurement.Point) epoch.Params {
		ranks := int(point[0])
		return EpochParams(b, strategy, ranks, weakScaling)
	}
}
