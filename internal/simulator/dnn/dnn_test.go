package dnn

import (
	"strings"
	"testing"

	"extradeep/internal/mathutil"
)

func TestResNet50ImageNetParams(t *testing.T) {
	m := ResNet50(224, 224, 3, 1000)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	p := m.TotalParams()
	// Canonical ResNet-50 has ≈25.6 M parameters.
	if p < 24e6 || p > 27e6 {
		t.Errorf("ResNet-50 params = %v, want ≈25.6M", p)
	}
}

func TestResNet50ImageNetFLOPs(t *testing.T) {
	m := ResNet50(224, 224, 3, 1000)
	f := m.FwdFLOPs()
	// Canonical forward cost ≈ 4.1 GMACs ≈ 8.2 GFLOPs.
	if f < 6e9 || f > 10e9 {
		t.Errorf("ResNet-50 fwd FLOPs = %v, want ≈8.2e9", f)
	}
}

func TestResNet50CIFARSmallStem(t *testing.T) {
	m := ResNet50(32, 32, 3, 10)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	// Small-input variant: no 7×7 stem, no max-pool.
	for _, l := range m.Layers {
		if l.Name == "pool1" {
			t.Error("CIFAR ResNet-50 should not have the stem max-pool")
		}
	}
	// Parameters barely change (only the fc layer shrinks).
	p := m.TotalParams()
	if p < 22e6 || p > 26e6 {
		t.Errorf("CIFAR ResNet-50 params = %v", p)
	}
}

func TestEfficientNetB0Params(t *testing.T) {
	m := EfficientNetB0(224, 224, 3, 1000)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	p := m.TotalParams()
	// Canonical EfficientNet-B0 has ≈5.3 M parameters.
	if p < 4.3e6 || p > 6.3e6 {
		t.Errorf("EfficientNet-B0 params = %v, want ≈5.3M", p)
	}
}

func TestEfficientNetB0FLOPs(t *testing.T) {
	m := EfficientNetB0(224, 224, 3, 1000)
	f := m.FwdFLOPs()
	// Canonical ≈0.39 GMACs ≈ 0.78 GFLOPs.
	if f < 0.5e9 || f > 1.3e9 {
		t.Errorf("EfficientNet-B0 fwd FLOPs = %v, want ≈0.78e9", f)
	}
}

func TestCNN10HasTenHiddenLayers(t *testing.T) {
	m := CNN10(124, 129, 1, 35)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	convs, denses := 0, 0
	for _, l := range m.Layers {
		switch l.Type {
		case Conv2D:
			convs++
		case Dense:
			denses++
		}
	}
	// 8 conv + 2 hidden dense = 10 hidden layers; +1 classifier dense.
	if convs != 8 {
		t.Errorf("CNN10 convs = %d, want 8", convs)
	}
	if denses != 3 {
		t.Errorf("CNN10 dense layers = %d, want 3 (2 hidden + classifier)", denses)
	}
}

func TestNNLMParamsDominatedByEmbedding(t *testing.T) {
	m := NNLM(256, 20000, 2)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	var embParams float64
	for _, l := range m.Layers {
		if l.Type == Embedding {
			embParams = l.Params
		}
	}
	if !mathutil.Close(embParams, 20000*128) {
		t.Errorf("embedding params = %v, want 2.56M", embParams)
	}
	if embParams/m.TotalParams() < 0.9 {
		t.Errorf("embedding should dominate NNLM params (%v of %v)", embParams, m.TotalParams())
	}
}

func TestRelativeComputeCostsMatchPaper(t *testing.T) {
	// The paper's Fig. 8 hierarchy: ImageNet ≫ CIFAR ≫ Speech Commands >
	// IMDB in per-epoch compute. Per-sample cost × samples gives the
	// epoch cost ordering.
	resnetCIFAR := ResNet50(32, 32, 3, 10).TrainFLOPs() * 50000
	effnetImageNet := EfficientNetB0(224, 224, 3, 1000).TrainFLOPs() * 1281167
	nnlmIMDB := NNLM(256, 20000, 2).TrainFLOPs() * 25000
	cnnSpeech := CNN10(124, 129, 1, 35).TrainFLOPs() * 84843

	if effnetImageNet <= resnetCIFAR {
		t.Error("ImageNet epoch should cost more than CIFAR-10 epoch")
	}
	if resnetCIFAR <= cnnSpeech {
		t.Error("CIFAR-10 epoch should cost more than Speech Commands epoch")
	}
	if cnnSpeech <= nnlmIMDB {
		t.Error("Speech Commands epoch should cost more than IMDB epoch")
	}
}

func TestGradientBytes(t *testing.T) {
	m := ResNet50(224, 224, 3, 1000)
	if !mathutil.Close(m.GradientBytes(), m.TotalParams()*4) {
		t.Error("gradient bytes should be 4 bytes per parameter")
	}
}

func TestTrainFLOPsIsThreeTimesForward(t *testing.T) {
	m := CNN10(124, 129, 1, 35)
	if !mathutil.Close(m.TrainFLOPs(), 3*m.FwdFLOPs()) {
		t.Error("train FLOPs should be 3× forward")
	}
}

func TestActivationBytesPositive(t *testing.T) {
	for _, m := range []*Model{
		ResNet50(32, 32, 3, 10),
		EfficientNetB0(224, 224, 3, 1000),
		CNN10(124, 129, 1, 35),
		NNLM(256, 20000, 2),
	} {
		if m.ActivationBytes() <= 0 {
			t.Errorf("%s: non-positive activation bytes", m.Name)
		}
	}
}

func TestComputeLayersExcludePlumbing(t *testing.T) {
	m := CNN10(124, 129, 1, 35)
	for _, l := range m.ComputeLayers() {
		if l.Type == Flatten || l.Type == Dropout {
			t.Errorf("plumbing layer %s in compute set", l.Name)
		}
	}
	if len(m.ComputeLayers()) == 0 {
		t.Error("no compute layers")
	}
}

func TestLayerAccounting(t *testing.T) {
	// conv2D: 3×3×16→32 on 8×8 input, stride 1: params = 9·16·32 = 4608,
	// FLOPs = 2·8·8·32·(9·16) = 589824.
	l := conv2D("c", 8, 8, 16, 32, 3, 1, false)
	if !mathutil.Close(l.Params, 4608) {
		t.Errorf("conv params = %v, want 4608", l.Params)
	}
	if !mathutil.Close(l.FwdFLOPs, 589824) {
		t.Errorf("conv FLOPs = %v, want 589824", l.FwdFLOPs)
	}
	if l.OutH != 8 || l.OutW != 8 || l.OutC != 32 {
		t.Errorf("conv shape = %dx%dx%d", l.OutH, l.OutW, l.OutC)
	}
	// Stride 2 halves the spatial dims (same padding).
	l2 := conv2D("c2", 8, 8, 16, 32, 3, 2, false)
	if l2.OutH != 4 || l2.OutW != 4 {
		t.Errorf("strided conv shape = %dx%d, want 4x4", l2.OutH, l2.OutW)
	}
}

func TestDenseAccounting(t *testing.T) {
	l := dense("d", 100, 10, true)
	if !mathutil.Close(l.Params, 100*10+10) {
		t.Errorf("dense params = %v", l.Params)
	}
	if !mathutil.Close(l.FwdFLOPs, 2*100*10) {
		t.Errorf("dense FLOPs = %v", l.FwdFLOPs)
	}
}

func TestDepthwiseAccounting(t *testing.T) {
	l := dwConv2D("dw", 16, 16, 32, 3, 1)
	if !mathutil.Close(l.Params, 9*32) {
		t.Errorf("dw params = %v, want 288", l.Params)
	}
	if !mathutil.Close(l.FwdFLOPs, 2*16*16*32*9) {
		t.Errorf("dw FLOPs = %v", l.FwdFLOPs)
	}
}

func TestBwdFLOPsTwiceForward(t *testing.T) {
	l := dense("d", 10, 10, false)
	if !mathutil.Close(l.BwdFLOPs(), 2*l.FwdFLOPs) {
		t.Error("backward should be 2× forward")
	}
}

func TestValidateCatchesDuplicates(t *testing.T) {
	m := &Model{Name: "dup", Layers: []Layer{
		{Name: "a", Type: Dense},
		{Name: "a", Type: Dense},
	}}
	if m.Validate() == nil {
		t.Error("duplicate layer names accepted")
	}
}

func TestValidateCatchesNegativeAccounting(t *testing.T) {
	m := &Model{Name: "neg", Layers: []Layer{{Name: "a", Type: Dense, Params: -1}}}
	if m.Validate() == nil {
		t.Error("negative params accepted")
	}
}

func TestValidateCatchesEmpty(t *testing.T) {
	if (&Model{Name: "empty"}).Validate() == nil {
		t.Error("empty model accepted")
	}
	if (&Model{Layers: []Layer{{Name: "a"}}}).Validate() == nil {
		t.Error("unnamed model accepted")
	}
}

func TestForBenchmark(t *testing.T) {
	cases := []struct {
		dataset string
		want    string
	}{
		{"cifar10", "resnet50"},
		{"cifar100", "resnet50"},
		{"imagenet", "efficientnet_b0"},
		{"imdb", "nnlm"},
		{"speechcommands", "cnn10"},
	}
	for _, c := range cases {
		m, err := ForBenchmark(c.dataset, 224, 224, 3, 10)
		if c.dataset == "imdb" {
			m, err = ForBenchmark(c.dataset, 256, 20000, 1, 2)
		}
		if err != nil {
			t.Errorf("%s: %v", c.dataset, err)
			continue
		}
		if m.Name != c.want {
			t.Errorf("%s → %s, want %s", c.dataset, m.Name, c.want)
		}
	}
	if _, err := ForBenchmark("mnist", 28, 28, 1, 10); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

func TestLayerTypeStringsUnique(t *testing.T) {
	seen := make(map[string]bool)
	for lt := Conv2D; lt <= SqueezeExcite; lt++ {
		s := lt.String()
		if strings.HasPrefix(s, "layer(") {
			t.Errorf("missing name for layer type %d", int(lt))
		}
		if seen[s] {
			t.Errorf("duplicate layer-type name %q", s)
		}
		seen[s] = true
	}
}
