package dnn

import "fmt"

// ResNet50 builds a ResNet-50 (He et al.) for the given input shape and
// class count. For ImageNet-sized inputs the standard 7×7/2 stem plus
// 3×3/2 max-pool is used; for small inputs (CIFAR) the common 3×3/1 stem
// without pooling. With 1000 classes and 224×224×3 input the parameter
// count is the canonical ≈25.6 M.
func ResNet50(inputH, inputW, inputC, classes int) *Model {
	m := &Model{Name: "resnet50", InputH: inputH, InputW: inputW, InputC: inputC}
	h, w, c := inputH, inputW, inputC

	big := inputH >= 64
	if big {
		m.add(conv2D("conv1", h, w, c, 64, 7, 2, false))
	} else {
		m.add(conv2D("conv1", h, w, c, 64, 3, 1, false))
	}
	h, w, c = m.last().OutH, m.last().OutW, 64
	m.add(batchNorm("conv1_bn", h, w, c))
	m.add(activation("conv1_relu", ReLU, h, w, c))
	if big {
		m.add(pool("pool1", MaxPool, h, w, c, 3, 2))
		h, w = m.last().OutH, m.last().OutW
	}

	stages := []struct {
		mid, blocks, stride int
	}{
		{64, 3, 1},
		{128, 4, 2},
		{256, 6, 2},
		{512, 3, 2},
	}
	for si, st := range stages {
		for b := 0; b < st.blocks; b++ {
			stride := 1
			if b == 0 {
				stride = st.stride
			}
			h, w, c = m.bottleneck(fmt.Sprintf("res%d_%d", si+2, b), h, w, c, st.mid, stride)
		}
	}

	m.add(globalAvgPool("avg_pool", h, w, c))
	m.add(dense("fc", c, classes, true))
	m.add(softmax("softmax", classes))
	return m
}

// bottleneck appends one ResNet bottleneck block (1×1 reduce, 3×3, 1×1
// expand ×4, projection shortcut when shape changes) and returns the new
// tensor shape.
func (m *Model) bottleneck(name string, h, w, inC, midC, stride int) (int, int, int) {
	outC := 4 * midC

	m.add(conv2D(name+"_conv1", h, w, inC, midC, 1, 1, false))
	m.add(batchNorm(name+"_bn1", h, w, midC))
	m.add(activation(name+"_relu1", ReLU, h, w, midC))

	m.add(conv2D(name+"_conv2", h, w, midC, midC, 3, stride, false))
	h2, w2 := m.last().OutH, m.last().OutW
	m.add(batchNorm(name+"_bn2", h2, w2, midC))
	m.add(activation(name+"_relu2", ReLU, h2, w2, midC))

	m.add(conv2D(name+"_conv3", h2, w2, midC, outC, 1, 1, false))
	m.add(batchNorm(name+"_bn3", h2, w2, outC))

	if stride != 1 || inC != outC {
		m.add(conv2D(name+"_proj", h, w, inC, outC, 1, stride, false))
		m.add(batchNorm(name+"_proj_bn", h2, w2, outC))
	}
	m.add(residualAdd(name+"_add", h2, w2, outC))
	m.add(activation(name+"_relu3", ReLU, h2, w2, outC))
	return h2, w2, outC
}

// EfficientNetB0 builds an EfficientNet-B0 (Tan & Le) for the given input
// shape and class count. With 1000 classes and 224×224×3 input the
// parameter count is the canonical ≈5.3 M.
func EfficientNetB0(inputH, inputW, inputC, classes int) *Model {
	m := &Model{Name: "efficientnet_b0", InputH: inputH, InputW: inputW, InputC: inputC}
	h, w := inputH, inputW

	m.add(conv2D("stem_conv", h, w, inputC, 32, 3, 2, false))
	h, w = m.last().OutH, m.last().OutW
	c := 32
	m.add(batchNorm("stem_bn", h, w, c))
	m.add(activation("stem_swish", Swish, h, w, c))

	blocks := []struct {
		expand, outC, repeats, stride, kernel int
	}{
		{1, 16, 1, 1, 3},
		{6, 24, 2, 2, 3},
		{6, 40, 2, 2, 5},
		{6, 80, 3, 2, 3},
		{6, 112, 3, 1, 5},
		{6, 192, 4, 2, 5},
		{6, 320, 1, 1, 3},
	}
	for bi, blk := range blocks {
		for r := 0; r < blk.repeats; r++ {
			stride := 1
			if r == 0 {
				stride = blk.stride
			}
			h, w, c = m.mbconv(fmt.Sprintf("block%d_%d", bi+1, r), h, w, c, blk.outC, blk.expand, blk.kernel, stride)
		}
	}

	m.add(conv2D("head_conv", h, w, c, 1280, 1, 1, false))
	c = 1280
	m.add(batchNorm("head_bn", h, w, c))
	m.add(activation("head_swish", Swish, h, w, c))
	m.add(globalAvgPool("head_pool", h, w, c))
	m.add(Layer{Name: "head_dropout", Type: Dropout, OutH: 1, OutW: 1, OutC: c})
	m.add(dense("fc", c, classes, true))
	m.add(softmax("softmax", classes))
	return m
}

// mbconv appends one mobile inverted-bottleneck block with squeeze-and-
// excitation and returns the new tensor shape. The SE bottleneck width is
// derived from the block's input channels (ratio 0.25), per the reference
// implementation.
func (m *Model) mbconv(name string, h, w, inC, outC, expand, kernel, stride int) (int, int, int) {
	c := inC
	if expand != 1 {
		c = inC * expand
		m.add(conv2D(name+"_expand", h, w, inC, c, 1, 1, false))
		m.add(batchNorm(name+"_expand_bn", h, w, c))
		m.add(activation(name+"_expand_swish", Swish, h, w, c))
	}
	m.add(dwConv2D(name+"_dwconv", h, w, c, kernel, stride))
	h2, w2 := m.last().OutH, m.last().OutW
	m.add(batchNorm(name+"_dw_bn", h2, w2, c))
	m.add(activation(name+"_dw_swish", Swish, h2, w2, c))

	reduced := inC / 4
	if reduced < 1 {
		reduced = 1
	}
	m.add(squeezeExcite(name+"_se", h2, w2, c, reduced))

	m.add(conv2D(name+"_project", h2, w2, c, outC, 1, 1, false))
	m.add(batchNorm(name+"_project_bn", h2, w2, outC))

	if stride == 1 && inC == outC {
		m.add(residualAdd(name+"_add", h2, w2, outC))
	}
	return h2, w2, outC
}

// CNN10 builds the paper's ten-hidden-layer CNN for Speech Commands
// spectrogram input: eight 3×3 convolution layers in three pooled stages
// (the first convolution downsamples the spectrogram with stride 2, as is
// customary for keyword-spotting CNNs) followed by two dense layers, then
// the classifier.
func CNN10(inputH, inputW, inputC, classes int) *Model {
	m := &Model{Name: "cnn10", InputH: inputH, InputW: inputW, InputC: inputC}
	h, w, c := inputH, inputW, inputC

	widths := []int{32, 64, 128}
	for si, width := range widths {
		for b := 0; b < 3; b++ {
			// Three stages of 3/3/2 conv layers = 8 conv layers.
			if si == 2 && b == 2 {
				break
			}
			stride := 1
			if si == 0 && b == 0 {
				stride = 2
			}
			m.add(conv2D(fmt.Sprintf("conv%d_%d", si+1, b+1), h, w, c, width, 3, stride, true))
			h, w = m.last().OutH, m.last().OutW
			c = width
			m.add(activation(fmt.Sprintf("relu%d_%d", si+1, b+1), ReLU, h, w, c))
		}
		m.add(pool(fmt.Sprintf("pool%d", si+1), MaxPool, h, w, c, 2, 2))
		h, w = m.last().OutH, m.last().OutW
	}

	m.add(Layer{Name: "flatten", Type: Flatten, OutH: 1, OutW: 1, OutC: h * w * c})
	in := h * w * c
	m.add(dense("dense1", in, 256, true))
	m.add(activation("dense1_relu", ReLU, 1, 1, 256))
	m.add(dense("dense2", 256, 128, true))
	m.add(activation("dense2_relu", ReLU, 1, 1, 128))
	m.add(dense("fc", 128, classes, true))
	m.add(softmax("softmax", classes))
	return m
}

// NNLM builds the neural-network language model used for the IMDB
// benchmark: a token embedding averaged over the sequence, followed by two
// hidden dense layers and the binary classifier.
func NNLM(seqLen, vocab, classes int) *Model {
	const dim = 128
	m := &Model{Name: "nnlm", InputH: seqLen, InputW: 1, InputC: 1}
	m.add(embedding("embedding", vocab, dim, seqLen))
	m.add(globalAvgPool("seq_pool", seqLen, 1, dim))
	m.add(dense("dense1", dim, 256, true))
	m.add(activation("dense1_relu", ReLU, 1, 1, 256))
	m.add(Layer{Name: "dropout1", Type: Dropout, OutH: 1, OutW: 1, OutC: 256})
	m.add(dense("dense2", 256, 64, true))
	m.add(activation("dense2_relu", ReLU, 1, 1, 64))
	m.add(dense("fc", 64, classes, true))
	m.add(softmax("softmax", classes))
	return m
}

// add appends a layer.
func (m *Model) add(l Layer) { m.Layers = append(m.Layers, l) }

// last returns the most recently added layer.
func (m *Model) last() Layer { return m.Layers[len(m.Layers)-1] }

// ForBenchmark returns the architecture the paper pairs with each dataset:
// ResNet-50 for CIFAR-10/100, EfficientNet-B0 for ImageNet, the NNLM for
// IMDB and the ten-layer CNN for Speech Commands.
func ForBenchmark(datasetName string, inputH, inputW, inputC, classes int) (*Model, error) {
	switch datasetName {
	case "cifar10", "cifar100":
		return ResNet50(inputH, inputW, inputC, classes), nil
	case "imagenet":
		return EfficientNetB0(inputH, inputW, inputC, classes), nil
	case "imdb":
		return NNLM(inputH, inputW, classes), nil
	case "speechcommands":
		return CNN10(inputH, inputW, inputC, classes), nil
	default:
		return nil, fmt.Errorf("dnn: no architecture mapped to dataset %q", datasetName)
	}
}
