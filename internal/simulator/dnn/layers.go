// Package dnn models deep neural networks as layer graphs with exact
// per-layer parameter, FLOP and activation-size accounting. The four
// architectures of the paper's evaluation (Section 4.1) are provided:
// ResNet-50 (CIFAR-10/100), EfficientNet-B0 (ImageNet), a ten-layer CNN
// (Speech Commands) and an NNLM (IMDB). The training simulator charges
// compute kernels against these counts, so the *relative* cost structure
// of the benchmarks (ImageNet ≫ CIFAR ≫ IMDB) matches the paper's Fig. 8.
package dnn

import (
	"errors"
	"fmt"
)

// LayerType enumerates the supported layer operators.
type LayerType int

// The layer operators used by the four benchmark architectures.
const (
	Conv2D LayerType = iota
	DepthwiseConv2D
	Dense
	BatchNorm
	ReLU
	Swish
	MaxPool
	AvgPool
	GlobalAvgPool
	Add
	Embedding
	Dropout
	Softmax
	Flatten
	SqueezeExcite
)

// String names the layer type.
func (t LayerType) String() string {
	switch t {
	case Conv2D:
		return "conv2d"
	case DepthwiseConv2D:
		return "dwconv2d"
	case Dense:
		return "dense"
	case BatchNorm:
		return "batchnorm"
	case ReLU:
		return "relu"
	case Swish:
		return "swish"
	case MaxPool:
		return "maxpool"
	case AvgPool:
		return "avgpool"
	case GlobalAvgPool:
		return "globalavgpool"
	case Add:
		return "add"
	case Embedding:
		return "embedding"
	case Dropout:
		return "dropout"
	case Softmax:
		return "softmax"
	case Flatten:
		return "flatten"
	case SqueezeExcite:
		return "squeeze_excite"
	default:
		return fmt.Sprintf("layer(%d)", int(t))
	}
}

// Layer is one operator of a network with its cost accounting.
type Layer struct {
	// Name is the unique layer name within the model.
	Name string
	// Type is the operator.
	Type LayerType
	// OutH, OutW, OutC describe the output tensor (H=sequence length and
	// W=1 for text models).
	OutH, OutW, OutC int
	// Params is the number of trainable parameters.
	Params float64
	// FwdFLOPs is the forward-pass floating-point operations per sample.
	FwdFLOPs float64
	// The backward pass is charged at twice the forward cost (gradient
	// w.r.t. inputs and weights), the standard approximation.
}

// OutputElements returns the number of scalars in the output tensor.
func (l Layer) OutputElements() float64 {
	return float64(l.OutH) * float64(l.OutW) * float64(l.OutC)
}

// ActivationBytes returns the output activation size per sample in bytes
// (float32 storage).
func (l Layer) ActivationBytes() float64 { return l.OutputElements() * 4 }

// BwdFLOPs returns the backward-pass cost per sample.
func (l Layer) BwdFLOPs() float64 { return 2 * l.FwdFLOPs }

// IsCompute reports whether the layer performs substantial GPU compute
// (as opposed to shape plumbing like Flatten).
func (l Layer) IsCompute() bool {
	switch l.Type {
	case Flatten, Dropout:
		return false
	}
	return true
}

// Model is a sequential layer graph (residual adds are represented as Add
// layers whose FLOPs cover the element-wise sum).
type Model struct {
	// Name identifies the architecture, e.g. "resnet50".
	Name string
	// InputH, InputW, InputC is the input tensor shape.
	InputH, InputW, InputC int
	// Layers is the operator sequence.
	Layers []Layer
}

// Validate checks structural sanity.
func (m *Model) Validate() error {
	if m.Name == "" {
		return errors.New("dnn: unnamed model")
	}
	if len(m.Layers) == 0 {
		return fmt.Errorf("dnn: model %s has no layers", m.Name)
	}
	seen := make(map[string]bool, len(m.Layers))
	for _, l := range m.Layers {
		if l.Name == "" {
			return fmt.Errorf("dnn: model %s has an unnamed layer", m.Name)
		}
		if seen[l.Name] {
			return fmt.Errorf("dnn: model %s has duplicate layer %q", m.Name, l.Name)
		}
		seen[l.Name] = true
		if l.Params < 0 || l.FwdFLOPs < 0 {
			return fmt.Errorf("dnn: layer %s has negative accounting", l.Name)
		}
	}
	return nil
}

// TotalParams returns the number of trainable parameters.
func (m *Model) TotalParams() float64 {
	var total float64
	for _, l := range m.Layers {
		total += l.Params
	}
	return total
}

// FwdFLOPs returns the forward-pass FLOPs per sample.
func (m *Model) FwdFLOPs() float64 {
	var total float64
	for _, l := range m.Layers {
		total += l.FwdFLOPs
	}
	return total
}

// TrainFLOPs returns the per-sample cost of one training step (forward +
// backward ≈ 3× forward).
func (m *Model) TrainFLOPs() float64 { return 3 * m.FwdFLOPs() }

// GradientBytes returns the size of one full gradient exchange in bytes
// (float32 gradients, one per parameter).
func (m *Model) GradientBytes() float64 { return m.TotalParams() * 4 }

// ActivationBytes returns the total activation memory per sample.
func (m *Model) ActivationBytes() float64 {
	var total float64
	for _, l := range m.Layers {
		total += l.ActivationBytes()
	}
	return total
}

// ComputeLayers returns the layers that map to GPU compute kernels.
func (m *Model) ComputeLayers() []Layer {
	out := make([]Layer, 0, len(m.Layers))
	for _, l := range m.Layers {
		if l.IsCompute() {
			out = append(out, l)
		}
	}
	return out
}

// --- layer constructors -----------------------------------------------

// convOut returns the spatial output size of a same/valid convolution.
// A non-positive stride is treated as 1 rather than dividing by zero.
func convOut(in, kernel, stride int, same bool) int {
	if stride <= 0 {
		stride = 1
	}
	if same {
		return (in + stride - 1) / stride
	}
	return (in-kernel)/stride + 1
}

// conv2D builds a standard convolution layer. Padding is "same".
func conv2D(name string, inH, inW, inC, outC, kernel, stride int, bias bool) Layer {
	outH := convOut(inH, kernel, stride, true)
	outW := convOut(inW, kernel, stride, true)
	params := float64(kernel * kernel * inC * outC)
	if bias {
		params += float64(outC)
	}
	// 2 FLOPs (mul+add) per MAC.
	flops := 2 * float64(outH) * float64(outW) * float64(outC) * float64(kernel*kernel*inC)
	return Layer{Name: name, Type: Conv2D, OutH: outH, OutW: outW, OutC: outC, Params: params, FwdFLOPs: flops}
}

// dwConv2D builds a depthwise convolution (one filter per channel).
func dwConv2D(name string, inH, inW, channels, kernel, stride int) Layer {
	outH := convOut(inH, kernel, stride, true)
	outW := convOut(inW, kernel, stride, true)
	params := float64(kernel * kernel * channels)
	flops := 2 * float64(outH) * float64(outW) * float64(channels) * float64(kernel*kernel)
	return Layer{Name: name, Type: DepthwiseConv2D, OutH: outH, OutW: outW, OutC: channels, Params: params, FwdFLOPs: flops}
}

// dense builds a fully connected layer.
func dense(name string, inUnits, outUnits int, bias bool) Layer {
	params := float64(inUnits * outUnits)
	if bias {
		params += float64(outUnits)
	}
	return Layer{Name: name, Type: Dense, OutH: 1, OutW: 1, OutC: outUnits, Params: params, FwdFLOPs: 2 * float64(inUnits) * float64(outUnits)}
}

// batchNorm builds a batch-normalization layer (2 trainable + 2 running
// statistics per channel; only γ and β are trainable parameters).
func batchNorm(name string, h, w, c int) Layer {
	return Layer{Name: name, Type: BatchNorm, OutH: h, OutW: w, OutC: c, Params: 2 * float64(c), FwdFLOPs: 4 * float64(h) * float64(w) * float64(c)}
}

// activation builds an element-wise activation layer.
func activation(name string, t LayerType, h, w, c int) Layer {
	perElem := 1.0
	if t == Swish {
		perElem = 4 // sigmoid + multiply
	}
	return Layer{Name: name, Type: t, OutH: h, OutW: w, OutC: c, FwdFLOPs: perElem * float64(h) * float64(w) * float64(c)}
}

// pool builds a max/avg pooling layer.
func pool(name string, t LayerType, inH, inW, c, kernel, stride int) Layer {
	outH := convOut(inH, kernel, stride, true)
	outW := convOut(inW, kernel, stride, true)
	return Layer{Name: name, Type: t, OutH: outH, OutW: outW, OutC: c, FwdFLOPs: float64(outH) * float64(outW) * float64(c) * float64(kernel*kernel)}
}

// globalAvgPool reduces H×W×C to 1×1×C.
func globalAvgPool(name string, inH, inW, c int) Layer {
	return Layer{Name: name, Type: GlobalAvgPool, OutH: 1, OutW: 1, OutC: c, FwdFLOPs: float64(inH) * float64(inW) * float64(c)}
}

// residualAdd is an element-wise sum of two tensors.
func residualAdd(name string, h, w, c int) Layer {
	return Layer{Name: name, Type: Add, OutH: h, OutW: w, OutC: c, FwdFLOPs: float64(h) * float64(w) * float64(c)}
}

// embedding builds a token-embedding lookup.
func embedding(name string, vocab, dim, seqLen int) Layer {
	return Layer{
		Name: name, Type: Embedding,
		OutH: seqLen, OutW: 1, OutC: dim,
		Params:   float64(vocab) * float64(dim),
		FwdFLOPs: float64(seqLen) * float64(dim), // gather cost
	}
}

// softmax builds the output activation.
func softmax(name string, classes int) Layer {
	return Layer{Name: name, Type: Softmax, OutH: 1, OutW: 1, OutC: classes, FwdFLOPs: 5 * float64(classes)}
}

// squeezeExcite builds an SE block (global pool + two dense layers +
// channel-wise scale) on an H×W×C tensor; reduced counts the bottleneck
// units, conventionally derived from the MBConv block's *input* channels.
func squeezeExcite(name string, h, w, c, reduced int) Layer {
	params := float64(c*reduced+reduced) + float64(reduced*c+c)
	flops := float64(h*w*c) + // squeeze (global pool)
		2*float64(c*reduced) + 2*float64(reduced*c) + // two dense layers
		float64(h*w*c) // excite (scale)
	return Layer{Name: name, Type: SqueezeExcite, OutH: h, OutW: w, OutC: c, Params: params, FwdFLOPs: flops}
}
