// Package parallel models the three distributed-training strategies the
// paper evaluates (Section 4.1): pure data parallelism, tensor (data+model)
// parallelism, and pipeline parallelism. A strategy determines the degrees
// of data and model parallelism (G and M of Section 2.3.1), the fraction
// of the model each rank computes, and the communication operations issued
// per training step.
package parallel

import (
	"fmt"

	"extradeep/internal/simulator/dnn"
	"extradeep/internal/simulator/network"
)

// CommOp is one communication operation of a training step.
type CommOp struct {
	// Op is the collective type.
	Op network.Collective
	// Bytes is the per-rank message size.
	Bytes float64
	// Count is how many times the operation runs per step.
	Count int
	// GroupRanks is the communicator size (sub-communicators for
	// model-parallel groups); 0 means all ranks.
	GroupRanks int
	// Label overrides the profiler kernel name ("" uses the collective's
	// conventional name for the system).
	Label string
}

// Strategy describes one parallelization approach.
type Strategy interface {
	// Name returns the strategy identifier used in reports.
	Name() string
	// Degrees returns (G, M) for the given total rank count.
	Degrees(ranks int) (g, m float64)
	// ComputeFraction is the fraction of the model's FLOPs one rank
	// executes per (micro)batch.
	ComputeFraction(ranks int) float64
	// BubbleOverhead is the relative idle time caused by the strategy's
	// schedule (pipeline fill/drain); 0 for non-pipelined strategies.
	BubbleOverhead(ranks int) float64
	// StepComms returns the communication operations of one training
	// step for a model trained with the given per-worker batch size.
	StepComms(m *dnn.Model, ranks, batch int) []CommOp
}

// DataParallel is plain Horovod-style data parallelism: every rank holds
// the full model, processes its own shard, and allreduces gradients after
// every step. G = ranks, M = 1.
type DataParallel struct {
	// FusionBuckets is the number of gradient-fusion buckets the
	// allreduce is split into (Horovod tensor fusion); ≥ 1.
	FusionBuckets int
}

// Name implements Strategy.
func (DataParallel) Name() string { return "data" }

// Degrees implements Strategy.
func (DataParallel) Degrees(ranks int) (float64, float64) { return float64(ranks), 1 }

// ComputeFraction implements Strategy.
func (DataParallel) ComputeFraction(int) float64 { return 1 }

// BubbleOverhead implements Strategy.
func (DataParallel) BubbleOverhead(int) float64 { return 0 }

// StepComms implements Strategy: one (bucketed) gradient allreduce.
func (d DataParallel) StepComms(m *dnn.Model, ranks, batch int) []CommOp {
	buckets := d.FusionBuckets
	if buckets < 1 {
		buckets = 1
	}
	grad := m.GradientBytes()
	return []CommOp{{
		Op:         network.Allreduce,
		Bytes:      grad / float64(buckets),
		Count:      buckets,
		GroupRanks: ranks,
	}}
}

// TensorParallel is Megatron/Mesh-TensorFlow-style tensor parallelism
// combined with data parallelism: groups of M ranks split every weight
// tensor; activations are allreduced within the group twice per
// transformer/conv block, and gradient shards are allreduced across the
// data-parallel dimension. G = ranks, M = GroupSize (the paper uses M = 4).
type TensorParallel struct {
	// GroupSize is the model-parallel group width M (default 4).
	GroupSize int
}

func (t TensorParallel) groupSize() int {
	if t.GroupSize <= 0 {
		return 4
	}
	return t.GroupSize
}

// Name implements Strategy.
func (TensorParallel) Name() string { return "tensor" }

// Degrees implements Strategy. Following the paper's Section 4.2.1, the
// degree of data parallelism counts all ranks (G = x1) while M ranks
// cooperate on each model replica.
func (t TensorParallel) Degrees(ranks int) (float64, float64) {
	return float64(ranks), float64(t.groupSize())
}

// ComputeFraction implements Strategy: each rank computes 1/M of the model.
func (t TensorParallel) ComputeFraction(ranks int) float64 {
	m := t.groupSize()
	if ranks < m {
		return 1
	}
	return 1 / float64(m)
}

// BubbleOverhead implements Strategy.
func (TensorParallel) BubbleOverhead(int) float64 { return 0 }

// StepComms implements Strategy: per-block activation allreduces inside
// the tensor group plus the sharded gradient allreduce across groups.
func (t TensorParallel) StepComms(m *dnn.Model, ranks, batch int) []CommOp {
	g := t.groupSize()
	if ranks < g {
		return DataParallel{}.StepComms(m, ranks, batch)
	}
	// Activation exchange: two allreduces per compute-heavy block. The
	// per-op payload is the mean activation size of the compute layers
	// times the per-worker batch.
	compute := m.ComputeLayers()
	blocks := 0
	var actBytes float64
	for _, l := range compute {
		if l.Type == dnn.Conv2D || l.Type == dnn.Dense || l.Type == dnn.DepthwiseConv2D {
			blocks++
			actBytes += l.ActivationBytes()
		}
	}
	if blocks == 0 {
		blocks = 1
		actBytes = 4
	}
	meanAct := actBytes / float64(blocks) * float64(batch)

	groups := ranks / g
	ops := []CommOp{{
		Op:         network.Allreduce,
		Bytes:      meanAct,
		Count:      2 * blocks,
		GroupRanks: g,
		Label:      "tensor_activation_allreduce",
	}}
	if groups > 1 {
		ops = append(ops, CommOp{
			Op:         network.Allreduce,
			Bytes:      m.GradientBytes() / float64(g),
			Count:      1,
			GroupRanks: groups,
			Label:      "gradient_allreduce",
		})
	}
	return ops
}

// PipelineParallel splits the model into M sequential stages (GPipe
// style); microbatches flow through the pipeline, activations travel
// point-to-point between stages, and gradient shards are allreduced across
// the data-parallel replicas of each stage. G = ranks, M = Stages.
type PipelineParallel struct {
	// Stages is the pipeline depth M (default 4).
	Stages int
	// MicroBatches is the number of microbatches per step (default 8);
	// the pipeline bubble is (Stages−1)/MicroBatches.
	MicroBatches int
}

func (p PipelineParallel) stages() int {
	if p.Stages <= 0 {
		return 4
	}
	return p.Stages
}

func (p PipelineParallel) microBatches() int {
	if p.MicroBatches <= 0 {
		return 8
	}
	return p.MicroBatches
}

// Name implements Strategy.
func (PipelineParallel) Name() string { return "pipeline" }

// Degrees implements Strategy.
func (p PipelineParallel) Degrees(ranks int) (float64, float64) {
	return float64(ranks), float64(p.stages())
}

// ComputeFraction implements Strategy: each stage computes 1/M of the
// model.
func (p PipelineParallel) ComputeFraction(ranks int) float64 {
	m := p.stages()
	if ranks < m {
		return 1
	}
	return 1 / float64(m)
}

// BubbleOverhead implements Strategy: (M−1)/microbatches idle fraction.
func (p PipelineParallel) BubbleOverhead(ranks int) float64 {
	m := p.stages()
	if ranks < m {
		return 0
	}
	return float64(m-1) / float64(p.microBatches())
}

// StepComms implements Strategy.
func (p PipelineParallel) StepComms(m *dnn.Model, ranks, batch int) []CommOp {
	s := p.stages()
	if ranks < s {
		return DataParallel{}.StepComms(m, ranks, batch)
	}
	// Boundary activation size: mean activation of the model's compute
	// layers, per microbatch.
	compute := m.ComputeLayers()
	var actBytes float64
	if len(compute) > 0 {
		for _, l := range compute {
			actBytes += l.ActivationBytes()
		}
		actBytes /= float64(len(compute))
	}
	micro := p.microBatches()
	microBatch := float64(batch) / float64(micro)
	if microBatch < 1 {
		microBatch = 1
	}
	ops := []CommOp{{
		Op: network.PointToPoint,
		// Forward and backward activation/grad transfers per microbatch.
		Bytes:      actBytes * microBatch,
		Count:      2 * micro,
		GroupRanks: 2,
		Label:      "pipeline_p2p",
	}}
	groups := ranks / s
	if groups > 1 {
		ops = append(ops, CommOp{
			Op:         network.Allreduce,
			Bytes:      m.GradientBytes() / float64(s),
			Count:      1,
			GroupRanks: groups,
			Label:      "gradient_allreduce",
		})
	}
	return ops
}

// ByName returns the strategy with the given name using the paper's
// configuration (M = 4 for the hybrid strategies).
func ByName(name string) (Strategy, error) {
	switch name {
	case "data":
		return DataParallel{FusionBuckets: 4}, nil
	case "tensor":
		return TensorParallel{GroupSize: 4}, nil
	case "pipeline":
		return PipelineParallel{Stages: 4, MicroBatches: 8}, nil
	case "async":
		return AsyncDataParallel{}, nil
	default:
		return nil, fmt.Errorf("parallel: unknown strategy %q (have data, tensor, pipeline, async)", name)
	}
}

// Names returns the strategy names evaluated in the paper, in its
// presentation order. The asynchronous strategy ("async") is an extension
// beyond the paper's three and is resolvable via ByName.
func Names() []string { return []string{"data", "tensor", "pipeline"} }

// AllNames returns every implemented strategy including the ASP extension.
func AllNames() []string { return []string{"data", "tensor", "pipeline", "async"} }
