package parallel

import (
	"testing"

	"extradeep/internal/mathutil"
	"extradeep/internal/simulator/network"
)

func TestAsyncDegrees(t *testing.T) {
	g, m := AsyncDataParallel{}.Degrees(32)
	if !mathutil.Close(g, 32) || !mathutil.Close(m, 1) {
		t.Errorf("G,M = %v,%v; want 32,1", g, m)
	}
}

func TestAsyncNoBubbleFullCompute(t *testing.T) {
	a := AsyncDataParallel{}
	if a.BubbleOverhead(64) != 0 {
		t.Error("ASP has no synchronization bubble")
	}
	if !mathutil.Close(a.ComputeFraction(64), 1) {
		t.Error("ASP workers hold the full model")
	}
}

func TestAsyncServerDefaults(t *testing.T) {
	a := AsyncDataParallel{}
	if a.servers(4) != 1 {
		t.Errorf("servers(4) = %d, want 1", a.servers(4))
	}
	if a.servers(64) != 8 {
		t.Errorf("servers(64) = %d, want 8", a.servers(64))
	}
	if (AsyncDataParallel{Servers: 3}).servers(64) != 3 {
		t.Error("explicit server count ignored")
	}
}

func TestAsyncCommsArePointToPoint(t *testing.T) {
	m := testModel()
	ops := AsyncDataParallel{}.StepComms(m, 16, 256)
	if len(ops) != 2 {
		t.Fatalf("ops = %d, want 2 (push + pull)", len(ops))
	}
	for _, op := range ops {
		if op.Op != network.PointToPoint {
			t.Errorf("op %s is %v, want p2p", op.Label, op.Op)
		}
		if op.Label == "" {
			t.Error("ASP ops must carry labels (no collective kernel name exists)")
		}
	}
}

func TestAsyncServerContentionGrows(t *testing.T) {
	// With a fixed server count, per-worker transfer cost grows with the
	// worker count (ingest bottleneck).
	m := testModel()
	a := AsyncDataParallel{Servers: 2}
	small := a.StepComms(m, 8, 256)[0].Bytes
	large := a.StepComms(m, 64, 256)[0].Bytes
	if large <= small {
		t.Errorf("server contention should grow: %v vs %v", small, large)
	}
}

func TestAsyncDefaultProvisioningKeepsContentionBounded(t *testing.T) {
	// With the default 1-server-per-8-workers rule the contention factor
	// stays at ≈8 regardless of scale.
	m := testModel()
	a := AsyncDataParallel{}
	b16 := a.StepComms(m, 16, 256)[0].Bytes
	b128 := a.StepComms(m, 128, 256)[0].Bytes
	if !mathutil.Close(b16, b128) {
		t.Errorf("default provisioning should keep per-worker bytes flat: %v vs %v", b16, b128)
	}
}

func TestByNameAsync(t *testing.T) {
	s, err := ByName("async")
	if err != nil {
		t.Fatal(err)
	}
	if s.Name() != "async" {
		t.Errorf("Name = %q", s.Name())
	}
	all := AllNames()
	if len(all) != 4 || all[3] != "async" {
		t.Errorf("AllNames = %v", all)
	}
}
