package parallel

import (
	"testing"

	"extradeep/internal/mathutil"
	"extradeep/internal/simulator/dnn"
	"extradeep/internal/simulator/network"
)

func testModel() *dnn.Model { return dnn.ResNet50(32, 32, 3, 10) }

func TestByName(t *testing.T) {
	for _, name := range Names() {
		s, err := ByName(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if s.Name() != name {
			t.Errorf("ByName(%q).Name() = %q", name, s.Name())
		}
	}
	if _, err := ByName("zero"); err == nil {
		t.Error("unknown strategy accepted")
	}
}

func TestDataParallelDegrees(t *testing.T) {
	g, m := DataParallel{}.Degrees(64)
	if !mathutil.Close(g, 64) || !mathutil.Close(m, 1) {
		t.Errorf("G,M = %v,%v; want 64,1", g, m)
	}
}

func TestDataParallelComputeFull(t *testing.T) {
	if !mathutil.Close((DataParallel{}).ComputeFraction(64), 1) {
		t.Error("data parallelism should compute the full model per rank")
	}
	if (DataParallel{}).BubbleOverhead(64) != 0 {
		t.Error("data parallelism has no pipeline bubble")
	}
}

func TestDataParallelComms(t *testing.T) {
	m := testModel()
	ops := DataParallel{FusionBuckets: 4}.StepComms(m, 16, 256)
	if len(ops) != 1 {
		t.Fatalf("ops = %d, want 1", len(ops))
	}
	op := ops[0]
	if op.Op != network.Allreduce || op.Count != 4 || op.GroupRanks != 16 {
		t.Errorf("op = %+v", op)
	}
	if total := op.Bytes * float64(op.Count); !mathutil.Close(total, m.GradientBytes()) {
		t.Errorf("total allreduce bytes = %v, want %v", total, m.GradientBytes())
	}
}

func TestDataParallelDefaultBucket(t *testing.T) {
	ops := DataParallel{}.StepComms(testModel(), 4, 256)
	if ops[0].Count != 1 {
		t.Errorf("default buckets = %d, want 1", ops[0].Count)
	}
}

func TestTensorParallelDegrees(t *testing.T) {
	g, m := TensorParallel{GroupSize: 4}.Degrees(64)
	// Paper §4.2.1: G = x1, M = 4 for the hybrid benchmarks.
	if !mathutil.Close(g, 64) || !mathutil.Close(m, 4) {
		t.Errorf("G,M = %v,%v; want 64,4", g, m)
	}
}

func TestTensorParallelComputeFraction(t *testing.T) {
	s := TensorParallel{GroupSize: 4}
	if f := s.ComputeFraction(64); !mathutil.Close(f, 0.25) {
		t.Errorf("fraction = %v, want 0.25", f)
	}
	// Fewer ranks than the group size: degenerate to full model.
	if f := s.ComputeFraction(2); !mathutil.Close(f, 1) {
		t.Errorf("degenerate fraction = %v, want 1", f)
	}
}

func TestTensorParallelComms(t *testing.T) {
	m := testModel()
	ops := TensorParallel{GroupSize: 4}.StepComms(m, 16, 256)
	if len(ops) != 2 {
		t.Fatalf("ops = %d, want 2 (activation + gradient)", len(ops))
	}
	act, grad := ops[0], ops[1]
	if act.GroupRanks != 4 {
		t.Errorf("activation group = %d, want 4", act.GroupRanks)
	}
	if act.Count < 2 {
		t.Errorf("activation op count = %d, want ≥2", act.Count)
	}
	if grad.GroupRanks != 4 { // 16 ranks / group 4 = 4 groups
		t.Errorf("gradient group = %d, want 4", grad.GroupRanks)
	}
	if grad.Bytes >= m.GradientBytes() {
		t.Error("gradient allreduce should move a shard, not the full gradient")
	}
}

func TestTensorParallelDegenerateFallsBack(t *testing.T) {
	ops := TensorParallel{GroupSize: 4}.StepComms(testModel(), 2, 256)
	if len(ops) != 1 || ops[0].Op != network.Allreduce {
		t.Errorf("degenerate tensor parallelism should act data-parallel: %+v", ops)
	}
}

func TestPipelineParallelDegrees(t *testing.T) {
	g, m := PipelineParallel{Stages: 4}.Degrees(64)
	if !mathutil.Close(g, 64) || !mathutil.Close(m, 4) {
		t.Errorf("G,M = %v,%v; want 64,4", g, m)
	}
}

func TestPipelineBubble(t *testing.T) {
	p := PipelineParallel{Stages: 4, MicroBatches: 8}
	if b := p.BubbleOverhead(16); !mathutil.Close(b, 3.0/8) {
		t.Errorf("bubble = %v, want 0.375", b)
	}
	if b := p.BubbleOverhead(2); b != 0 {
		t.Errorf("degenerate bubble = %v, want 0", b)
	}
}

func TestPipelineComms(t *testing.T) {
	m := testModel()
	ops := PipelineParallel{Stages: 4, MicroBatches: 8}.StepComms(m, 16, 256)
	if len(ops) != 2 {
		t.Fatalf("ops = %d, want 2 (p2p + gradient)", len(ops))
	}
	p2p := ops[0]
	if p2p.Op != network.PointToPoint {
		t.Errorf("first op = %v, want p2p", p2p.Op)
	}
	if p2p.Count != 16 { // 2 × 8 microbatches
		t.Errorf("p2p count = %d, want 16", p2p.Count)
	}
}

func TestPipelineDegenerateFallsBack(t *testing.T) {
	ops := PipelineParallel{Stages: 4}.StepComms(testModel(), 2, 256)
	if len(ops) != 1 || ops[0].Op != network.Allreduce {
		t.Errorf("degenerate pipeline should act data-parallel: %+v", ops)
	}
}

func TestHybridCommLighterGradientThanData(t *testing.T) {
	// Hybrid strategies exchange gradient shards; the gradient portion
	// must be smaller than pure data parallelism's full-gradient
	// exchange.
	m := testModel()
	dataOps := DataParallel{}.StepComms(m, 16, 256)
	tensorOps := TensorParallel{GroupSize: 4}.StepComms(m, 16, 256)
	var dataGrad, tensorGrad float64
	dataGrad = dataOps[0].Bytes * float64(dataOps[0].Count)
	for _, op := range tensorOps {
		if op.Label == "gradient_allreduce" {
			tensorGrad = op.Bytes * float64(op.Count)
		}
	}
	if tensorGrad >= dataGrad {
		t.Errorf("tensor gradient traffic %v should be below data parallel %v", tensorGrad, dataGrad)
	}
}

func TestDefaultsApplied(t *testing.T) {
	if g, m := (TensorParallel{}).Degrees(8); !mathutil.Close(g, 8) || !mathutil.Close(m, 4) {
		t.Errorf("default tensor degrees = %v,%v", g, m)
	}
	if g, m := (PipelineParallel{}).Degrees(8); !mathutil.Close(g, 8) || !mathutil.Close(m, 4) {
		t.Errorf("default pipeline degrees = %v,%v", g, m)
	}
	if (PipelineParallel{}).microBatches() != 8 {
		t.Error("default microbatches wrong")
	}
}
