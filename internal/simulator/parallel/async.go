package parallel

import (
	"math"

	"extradeep/internal/simulator/dnn"
	"extradeep/internal/simulator/network"
)

// AsyncDataParallel is asynchronous data parallelism with a sharded
// parameter server (the ASP model the paper distinguishes from Extra-P's
// BSP-only support, Section 2): workers push gradients to and pull weights
// from a set of parameter-server shards without a global barrier. There is
// no collective; each worker exchanges the full model twice per step
// point-to-point, and the servers' aggregate ingest bandwidth becomes the
// contention point as workers are added.
type AsyncDataParallel struct {
	// Servers is the number of parameter-server shards (default:
	// max(1, workers/8), a common provisioning rule).
	Servers int
}

func (a AsyncDataParallel) servers(ranks int) int {
	if a.Servers > 0 {
		return a.Servers
	}
	s := ranks / 8
	if s < 1 {
		s = 1
	}
	return s
}

// Name implements Strategy.
func (AsyncDataParallel) Name() string { return "async" }

// Degrees implements Strategy: all ranks process distinct data (G = x₁),
// no model splitting (M = 1).
func (AsyncDataParallel) Degrees(ranks int) (float64, float64) { return float64(ranks), 1 }

// ComputeFraction implements Strategy.
func (AsyncDataParallel) ComputeFraction(int) float64 { return 1 }

// BubbleOverhead implements Strategy: ASP has no synchronization bubble —
// that is its selling point (workers never wait for stragglers).
func (AsyncDataParallel) BubbleOverhead(int) float64 { return 0 }

// StepComms implements Strategy: one gradient push and one weight pull of
// the full model per step, point-to-point to the server shards. The
// per-transfer time is inflated by the server-side contention factor
// workers/servers, modeling the ingest bottleneck that makes parameter
// servers scale sub-linearly.
func (a AsyncDataParallel) StepComms(m *dnn.Model, ranks, batch int) []CommOp {
	servers := a.servers(ranks)
	contention := math.Ceil(float64(ranks) / float64(servers))
	bytes := m.GradientBytes() * contention
	return []CommOp{
		{
			Op:         network.PointToPoint,
			Bytes:      bytes,
			Count:      1,
			GroupRanks: 2,
			Label:      "ps_push_gradients",
		},
		{
			Op:         network.PointToPoint,
			Bytes:      bytes,
			Count:      1,
			GroupRanks: 2,
			Label:      "ps_pull_weights",
		},
	}
}
