package noise

import (
	"math"
	"testing"

	"extradeep/internal/mathutil"
)

func TestRunSigmaGrowsWithNodes(t *testing.T) {
	p := DEEPParams()
	prev := -1.0
	for _, nodes := range []int{1, 2, 4, 16, 64} {
		s := p.RunSigma(nodes)
		if s <= prev {
			t.Errorf("sigma(%d) = %v not increasing", nodes, s)
		}
		prev = s
	}
}

func TestRunSigmaClampNonPositiveNodes(t *testing.T) {
	p := DEEPParams()
	if !mathutil.Close(p.RunSigma(0), p.RunSigma(1)) {
		t.Error("nodes=0 not clamped to 1")
	}
}

func TestCalibrationMatchesPaperScale(t *testing.T) {
	// The paper reports ≈12.6% average run-to-run variation on DEEP and
	// ≈17.4% on JURECA at the evaluated scales (up to 64 nodes). The
	// log-scale sigma at mid-scale (≈16–64 nodes) should be in that
	// region.
	d := DEEPParams().RunSigma(32)
	if d < 0.06 || d > 0.2 {
		t.Errorf("DEEP sigma(32) = %v, want ≈0.09", d)
	}
	j := JURECAParams().RunSigma(16)
	if j <= DEEPParams().RunSigma(16) {
		t.Error("JURECA should be noisier than DEEP")
	}
}

func TestSourceDeterministic(t *testing.T) {
	a := NewSource(DEEPParams(), 8, 42)
	b := NewSource(DEEPParams(), 8, 42)
	//edlint:ignore floateq determinism: identical seeds must yield bit-identical factors
	if a.RunFactorCompute() != b.RunFactorCompute() || a.RunFactorComm() != b.RunFactorComm() {
		t.Error("run factors differ for identical seeds")
	}
	for i := 0; i < 10; i++ {
		//edlint:ignore floateq determinism: identical seeds must yield bit-identical factors
		if a.StepFactor() != b.StepFactor() {
			t.Fatal("step factors diverge")
		}
		//edlint:ignore floateq determinism: identical seeds must yield bit-identical factors
		if a.KernelFactor() != b.KernelFactor() {
			t.Fatal("kernel factors diverge")
		}
	}
}

func TestSourceSeedsDiffer(t *testing.T) {
	a := NewSource(DEEPParams(), 8, 1)
	b := NewSource(DEEPParams(), 8, 2)
	//edlint:ignore floateq different seeds must yield observably different streams; any inequality suffices
	if a.RunFactorCompute() == b.RunFactorCompute() {
		t.Error("different seeds produced identical run factors")
	}
}

func TestFactorsPositive(t *testing.T) {
	s := NewSource(JURECAParams(), 64, 7)
	for i := 0; i < 1000; i++ {
		for _, f := range []float64{s.StepFactor(), s.KernelFactor(), s.CommFactor(), s.ComputeFactor()} {
			if f <= 0 || math.IsNaN(f) || math.IsInf(f, 0) {
				t.Fatalf("non-positive/invalid factor %v", f)
			}
		}
	}
}

func TestFactorsCenteredNearOne(t *testing.T) {
	// The log-normal median is 1; the sample geometric mean over many
	// draws should be close to 1.
	s := NewSource(DEEPParams(), 4, 3)
	var logSum float64
	const n = 20000
	for i := 0; i < n; i++ {
		logSum += math.Log(s.StepFactor())
	}
	if gm := math.Exp(logSum / n); gm < 0.99 || gm > 1.01 {
		t.Errorf("geometric mean = %v, want ≈1", gm)
	}
}

func TestRunSpreadGrowsWithScale(t *testing.T) {
	// Sample run factors at small and large scale; the spread (std of
	// logs) must grow.
	spread := func(nodes int) float64 {
		var sum, sum2 float64
		const n = 2000
		for seed := int64(0); seed < n; seed++ {
			f := math.Log(NewSource(DEEPParams(), nodes, seed).RunFactorCompute())
			sum += f
			sum2 += f * f
		}
		mean := sum / n
		return math.Sqrt(sum2/n - mean*mean)
	}
	small, large := spread(2), spread(64)
	if large <= small*1.5 {
		t.Errorf("run spread does not grow with scale: %v → %v", small, large)
	}
}

func TestCommNoisierThanCompute(t *testing.T) {
	var commSpread, compSpread float64
	const n = 2000
	var cSum, cSum2, kSum, kSum2 float64
	for seed := int64(0); seed < n; seed++ {
		s := NewSource(DEEPParams(), 16, seed)
		lc := math.Log(s.RunFactorComm())
		lk := math.Log(s.RunFactorCompute())
		cSum += lc
		cSum2 += lc * lc
		kSum += lk
		kSum2 += lk * lk
	}
	commSpread = math.Sqrt(cSum2/n - (cSum/n)*(cSum/n))
	compSpread = math.Sqrt(kSum2/n - (kSum/n)*(kSum/n))
	if commSpread <= compSpread {
		t.Errorf("comm spread %v should exceed compute spread %v", commSpread, compSpread)
	}
}

func TestCountJitterRange(t *testing.T) {
	s := NewSource(DEEPParams(), 4, 5)
	counts := map[int]int{}
	for i := 0; i < 5000; i++ {
		j := s.CountJitter(2)
		if j < 0 || j > 2 {
			t.Fatalf("jitter %d out of range", j)
		}
		counts[j]++
	}
	// Zero must dominate (P(0) = 1/2) and both positive values occur.
	if counts[0] < 2000 {
		t.Errorf("zero jitter too rare: %v", counts)
	}
	if counts[1] == 0 || counts[2] == 0 {
		t.Errorf("positive jitter missing: %v", counts)
	}
}

func TestCountJitterZeroMax(t *testing.T) {
	s := NewSource(DEEPParams(), 4, 5)
	for i := 0; i < 100; i++ {
		if s.CountJitter(0) != 0 {
			t.Fatal("max=0 should always return 0")
		}
	}
}

func TestBytesJitterNearOne(t *testing.T) {
	s := NewSource(DEEPParams(), 4, 5)
	for i := 0; i < 1000; i++ {
		f := s.BytesJitter()
		if f < 0.8 || f > 1.25 {
			t.Fatalf("bytes jitter %v outside the ±2%%-sigma envelope", f)
		}
	}
}

func TestCountJitterIndependentOfTimingStream(t *testing.T) {
	// Drawing count jitter must not shift the timing-noise stream.
	a := NewSource(DEEPParams(), 8, 42)
	b := NewSource(DEEPParams(), 8, 42)
	for i := 0; i < 50; i++ {
		a.CountJitter(2) // extra draws on the count stream only
	}
	for i := 0; i < 20; i++ {
		//edlint:ignore floateq stream isolation: the timing stream must be bit-identical with and without count draws
		if a.StepFactor() != b.StepFactor() {
			t.Fatal("count jitter perturbed the timing stream")
		}
	}
}

func TestZeroSigmaGivesUnitFactors(t *testing.T) {
	s := NewSource(Params{}, 4, 9)
	if !mathutil.Close(s.RunFactorCompute(), 1) || !mathutil.Close(s.StepFactor(), 1) || !mathutil.Close(s.KernelFactor(), 1) {
		t.Error("zero-sigma params should produce unit factors")
	}
}
