// Package noise provides the seeded, reproducible system-noise processes
// of the training simulator. The paper reports run-to-run variations of
// 0.6–13.9% that grow with scale (average 12.6% on DEEP and 17.4% on
// JURECA, Section 4.3); this package generates multiplicative log-normal
// noise whose spread follows that calibration: a per-run component shared
// by all steps of one execution (queue placement, neighbours on the
// fabric), a per-step jitter, and a per-kernel micro-jitter.

//edlint:ignore-file wallclock the noise substrate is seeded by construction: every math/rand draw derives from the caller's explicit campaign seed, never from the clock, so runs replay byte-identically
package noise

import (
	"math"
	"math/rand"
)

// Params calibrates the noise model.
type Params struct {
	// RunSigma0 is the relative run-to-run spread with a single node.
	RunSigma0 float64
	// RunSigmaPerLog is the additional spread per log₂(nodes).
	RunSigmaPerLog float64
	// StepSigma is the relative per-step jitter.
	StepSigma float64
	// KernelSigma is the relative per-kernel micro-jitter.
	KernelSigma float64
	// CommFactor scales the run and step components for communication
	// operations, which are more exposed to fabric contention.
	CommFactor float64
}

// DEEPParams returns the calibration for the DEEP system (average
// run-to-run variation ≈12.6% at the evaluated scales).
func DEEPParams() Params {
	return Params{
		RunSigma0:      0.008,
		RunSigmaPerLog: 0.016,
		StepSigma:      0.01,
		KernelSigma:    0.03,
		CommFactor:     2.0,
	}
}

// JURECAParams returns the calibration for the JURECA system (average
// run-to-run variation ≈17.4%).
func JURECAParams() Params {
	return Params{
		RunSigma0:      0.012,
		RunSigmaPerLog: 0.022,
		StepSigma:      0.014,
		KernelSigma:    0.04,
		CommFactor:     2.2,
	}
}

// RunSigma returns the run-to-run spread at the given node count.
func (p Params) RunSigma(nodes int) float64 {
	if nodes < 1 {
		nodes = 1
	}
	return p.RunSigma0 + p.RunSigmaPerLog*math.Log2(float64(nodes))
}

// Source generates the noise factors of one simulated execution.
// It is deterministic for a given seed.
type Source struct {
	params Params
	rng    *rand.Rand
	// countRng is a second, independent stream for discrete count/bytes
	// jitter, so that adding or removing count jitter does not shift the
	// timing-noise stream.
	countRng *rand.Rand
	// runCompute and runComm are the per-run multiplicative factors,
	// fixed at construction.
	runCompute float64
	runComm    float64
}

// NewSource creates a noise source for one run at the given scale.
// The per-run factor is drawn once; per-step and per-kernel factors are
// drawn on demand.
func NewSource(p Params, nodes int, seed int64) *Source {
	rng := rand.New(rand.NewSource(seed))
	sigma := p.RunSigma(nodes)
	s := &Source{params: p, rng: rng, countRng: rand.New(rand.NewSource(seed ^ 0x5deece66d))}
	s.runCompute = logNormal(rng, sigma)
	s.runComm = logNormal(rng, sigma*p.CommFactor)
	return s
}

// logNormal draws a multiplicative factor with median 1 and log-scale
// sigma.
func logNormal(rng *rand.Rand, sigma float64) float64 {
	if sigma <= 0 {
		return 1
	}
	return math.Exp(rng.NormFloat64() * sigma)
}

// RunFactorCompute returns the run-level factor applied to computation.
func (s *Source) RunFactorCompute() float64 { return s.runCompute }

// RunFactorComm returns the run-level factor applied to communication.
func (s *Source) RunFactorComm() float64 { return s.runComm }

// StepFactor draws the jitter of one training step.
func (s *Source) StepFactor() float64 { return logNormal(s.rng, s.params.StepSigma) }

// KernelFactor draws the micro-jitter of one kernel execution.
func (s *Source) KernelFactor() float64 { return logNormal(s.rng, s.params.KernelSigma) }

// CommFactor draws the jitter of one communication operation, combining
// the run-level communication factor with per-operation spread.
func (s *Source) CommFactor() float64 {
	return s.runComm * logNormal(s.rng, s.params.StepSigma*s.params.CommFactor)
}

// ComputeFactor combines the run-level compute factor with per-kernel
// jitter.
func (s *Source) ComputeFactor() float64 {
	return s.runCompute * logNormal(s.rng, s.params.KernelSigma)
}

// CountJitter returns a small non-negative integer perturbation (0…max)
// for kernel invocation counts: data loaders retry reads, frameworks
// re-launch fused element-wise kernels depending on input shapes, and so
// on. The distribution is biased toward 0 so counts stay near nominal.
func (s *Source) CountJitter(max int) int {
	if max <= 0 {
		return 0
	}
	// P(0) = 1/2, remaining mass uniform over 1…max.
	if s.countRng.Intn(2) == 0 {
		return 0
	}
	return 1 + s.countRng.Intn(max)
}

// BytesJitter returns a multiplicative factor for transfer sizes
// (variable-length samples such as JPEGs make per-batch byte counts vary
// slightly).
func (s *Source) BytesJitter() float64 { return logNormal(s.countRng, 0.02) }
