// Package network provides analytical cost models for the communication
// operations of distributed DNN training: allreduce (gradient exchange),
// allgather, reduce-scatter, broadcast, all-to-all and point-to-point
// transfers, on both the CPU-staged MPI path (DEEP: single GPU per node,
// no NCCL) and the GPU-direct NCCL path with hierarchical intra-/inter-node
// transfers (JURECA: 4 GPUs per node, NVLink + InfiniBand).
//
// The models follow the standard α–β formulation (latency + bytes/bandwidth)
// with algorithm-dependent factors: ring allreduce moves 2·n·(p−1)/p bytes
// in 2·(p−1) stages, tree-based collectives pay ⌈log₂ p⌉ rounds. A mild
// contention factor grows with the number of participating nodes to model
// shared-fabric congestion, which is what makes communication the dominant
// scaling bottleneck in the paper's case study (Section 3.1).
package network

import (
	"fmt"
	"math"

	"extradeep/internal/simulator/hardware"
)

// Collective enumerates the modeled communication operations.
type Collective int

// The supported collectives.
const (
	Allreduce Collective = iota
	Allgather
	ReduceScatter
	Broadcast
	AllToAll
	PointToPoint
)

// String returns the collective's conventional name.
func (c Collective) String() string {
	switch c {
	case Allreduce:
		return "allreduce"
	case Allgather:
		return "allgather"
	case ReduceScatter:
		return "reduce_scatter"
	case Broadcast:
		return "broadcast"
	case AllToAll:
		return "alltoall"
	case PointToPoint:
		return "p2p"
	default:
		return fmt.Sprintf("collective(%d)", int(c))
	}
}

// Config carries the hardware parameters of the communication model.
type Config struct {
	// Ranks is the number of participating MPI ranks p.
	Ranks int
	// GPUsPerNode is the number of ranks sharing one node.
	GPUsPerNode int
	// InterLatency is the one-way inter-node latency in seconds (α).
	InterLatency float64
	// InterBandwidth is the per-node injection bandwidth in bytes/s (1/β).
	InterBandwidth float64
	// IntraBandwidth is the intra-node GPU↔GPU bandwidth in bytes/s
	// (NVLink); zero means intra-node transfers also use the network
	// stack.
	IntraBandwidth float64
	// StagingBandwidth is the host↔device bandwidth in bytes/s used when
	// collectives are staged through CPU memory (the no-NCCL path).
	StagingBandwidth float64
	// UseNCCL selects GPU-direct hierarchical collectives.
	UseNCCL bool
	// ContentionPerNodeLog is the relative bandwidth degradation per
	// log₂(nodes), modeling fabric congestion (≈0.05–0.15).
	ContentionPerNodeLog float64
	// KneeNodes and KneeFactor model fabric saturation beyond a node
	// threshold: above KneeNodes the effective bandwidth is additionally
	// divided by 1 + KneeFactor·(nodes−KneeNodes)/KneeNodes. This is the
	// scale-dependent behaviour change the paper's Section 4.3 warns
	// about ("communication algorithms and performed memory techniques
	// might change depending on the application scale") — predictions
	// from measurements entirely below the knee cannot anticipate it.
	// Zero disables the knee.
	KneeNodes  int
	KneeFactor float64
}

// FromSystem derives a communication config for p ranks on the given
// system, one rank per GPU. Systems with several GPUs per node (JURECA)
// saturate their shared network adapters at scale, modeled by a bandwidth
// knee beyond 8 nodes; single-GPU nodes (DEEP) inject far less pressure
// per node and stay knee-free over the evaluated scales.
func FromSystem(sys hardware.System, ranks int) Config {
	gpu := sys.GPU()
	cfg := Config{
		Ranks:                ranks,
		GPUsPerNode:          sys.Node.GPUsPerNode,
		InterLatency:         sys.Network.Latency(),
		InterBandwidth:       sys.Network.EffectiveBandwidth(),
		IntraBandwidth:       gpu.NVLinkGBs * 1e9,
		StagingBandwidth:     gpu.PCIeGBs * 1e9,
		UseNCCL:              sys.NCCL,
		ContentionPerNodeLog: 0.08,
	}
	if sys.Node.GPUsPerNode > 1 {
		cfg.KneeNodes = 8
		cfg.KneeFactor = 0.35
	}
	return cfg
}

// Nodes returns the number of nodes spanned by the configured ranks.
func (c Config) Nodes() int {
	g := c.GPUsPerNode
	if g <= 0 {
		g = 1
	}
	n := (c.Ranks + g - 1) / g
	if n < 1 {
		n = 1
	}
	return n
}

// effectiveInterBandwidth applies the congestion factor and the
// saturation knee.
func (c Config) effectiveInterBandwidth() float64 {
	bw := c.InterBandwidth
	if bw <= 0 {
		bw = 1e9
	}
	nodes := float64(c.Nodes())
	if nodes > 1 && c.ContentionPerNodeLog > 0 {
		bw /= 1 + c.ContentionPerNodeLog*math.Log2(nodes)
	}
	if c.KneeNodes > 0 && nodes > float64(c.KneeNodes) {
		bw /= 1 + c.KneeFactor*(nodes-float64(c.KneeNodes))/float64(c.KneeNodes)
	}
	return bw
}

// Time returns the predicted duration in seconds of one collective over
// the given message size (bytes per rank). Single-rank configurations
// return 0 (no communication needed).
func (c Config) Time(op Collective, bytes float64) float64 {
	if c.Ranks <= 1 {
		return 0
	}
	if bytes < 0 {
		bytes = 0
	}
	switch op {
	case Allreduce:
		return c.allreduce(bytes)
	case Allgather:
		return c.allgather(bytes)
	case ReduceScatter:
		// Ring reduce-scatter is half an allreduce.
		return c.allreduce(bytes) / 2
	case Broadcast:
		return c.broadcast(bytes)
	case AllToAll:
		return c.alltoall(bytes)
	case PointToPoint:
		return c.p2p(bytes)
	default:
		return 0
	}
}

// allreduce models the gradient exchange.
//
// NCCL path: hierarchical ring — intra-node reduce over NVLink, inter-node
// ring over the fabric between node leaders, intra-node broadcast.
// MPI path: ring allreduce over the fabric with host staging on both ends.
func (c Config) allreduce(bytes float64) float64 {
	p := float64(c.Ranks)
	alpha := c.InterLatency
	interBW := c.effectiveInterBandwidth()

	if c.UseNCCL && c.GPUsPerNode > 1 {
		nodes := float64(c.Nodes())
		var t float64
		// Intra-node reduce + broadcast over NVLink.
		local := math.Min(float64(c.GPUsPerNode), p)
		if local > 1 && c.IntraBandwidth > 0 {
			t += 2 * bytes * (local - 1) / local / c.IntraBandwidth
			t += 2 * (local - 1) * 3e-6 // NVLink hop latency
		}
		// Inter-node ring among node leaders.
		if nodes > 1 {
			t += 2 * (nodes - 1) * alpha
			t += 2 * bytes * (nodes - 1) / nodes / interBW
		}
		return t
	}

	// CPU-staged MPI path: device→host staging, then a reduce+broadcast
	// tree (the typical MPI_Allreduce algorithm for large messages on
	// moderate rank counts), then host→device. Every tree level moves the
	// full payload, so the time grows with ⌈log₂ p⌉ — the communication
	// growth that dominates the paper's weak-scaling case study.
	var t float64
	if c.StagingBandwidth > 0 {
		t += 2 * bytes / c.StagingBandwidth
	}
	// Continuous log₂(p) rounds: production MPI libraries blend several
	// algorithms across rank counts, so the effective round count grows
	// smoothly rather than as the exact ⌈log₂ p⌉ staircase.
	if p < 1 {
		p = 1 // degenerate rank counts must not poison the log
	}
	rounds := math.Log2(p)
	if rounds < 1 {
		rounds = 1
	}
	t += 2 * rounds * (alpha + bytes/interBW)
	return t
}

// allgather models gathering bytes from every rank to all ranks.
func (c Config) allgather(bytes float64) float64 {
	p := float64(c.Ranks)
	alpha := c.InterLatency
	bw := c.effectiveInterBandwidth()
	return (p-1)*alpha + bytes*(p-1)/bw
}

// broadcast models a binomial-tree broadcast.
func (c Config) broadcast(bytes float64) float64 {
	p := float64(c.Ranks)
	if p < 1 {
		p = 1 // degenerate rank counts must not poison the log
	}
	rounds := math.Ceil(math.Log2(p))
	bw := c.effectiveInterBandwidth()
	return rounds * (c.InterLatency + bytes/bw)
}

// alltoall models a full personalized exchange (tensor-parallel
// activations); bytes is the per-pair message size.
func (c Config) alltoall(bytes float64) float64 {
	p := float64(c.Ranks)
	bw := c.effectiveInterBandwidth()
	return (p-1)*c.InterLatency + bytes*(p-1)/bw
}

// p2p models one point-to-point transfer (pipeline-parallel activations).
// Within a node NVLink is used when available.
func (c Config) p2p(bytes float64) float64 {
	if c.UseNCCL && c.IntraBandwidth > 0 && c.GPUsPerNode > 1 {
		// Neighbouring pipeline stages are packed onto the same node
		// where possible; charge the cheaper path.
		return 3e-6 + bytes/c.IntraBandwidth
	}
	return c.InterLatency + bytes/c.effectiveInterBandwidth()
}

// KernelName returns the profiler-visible kernel name of a collective on
// this configuration: ncclX on the NCCL path, MPI_X otherwise.
func (c Config) KernelName(op Collective) string {
	if c.UseNCCL {
		switch op {
		case Allreduce:
			return "ncclAllReduce"
		case Allgather:
			return "ncclAllGather"
		case ReduceScatter:
			return "ncclReduceScatter"
		case Broadcast:
			return "ncclBroadcast"
		case AllToAll:
			return "ncclAllToAll"
		case PointToPoint:
			return "ncclSend"
		}
	}
	switch op {
	case Allreduce:
		return "MPI_Allreduce"
	case Allgather:
		return "MPI_Allgather"
	case ReduceScatter:
		return "MPI_Reduce_scatter"
	case Broadcast:
		return "MPI_Bcast"
	case AllToAll:
		return "MPI_Alltoall"
	case PointToPoint:
		return "MPI_Sendrecv"
	}
	return "MPI_Unknown"
}
