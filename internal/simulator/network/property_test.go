package network

import (
	"testing"
	"testing/quick"

	"extradeep/internal/simulator/hardware"
)

// Property: collective time is non-negative and finite for any sane input.
func TestTimeNonNegativeProperty(t *testing.T) {
	ops := []Collective{Allreduce, Allgather, ReduceScatter, Broadcast, AllToAll, PointToPoint}
	f := func(rawRanks uint8, rawBytes uint32, opIdx uint8, jureca bool) bool {
		ranks := int(rawRanks%200) + 1
		bytes := float64(rawBytes)
		sys := hardware.DEEP()
		if jureca {
			sys = hardware.JURECA()
		}
		cfg := FromSystem(sys, ranks)
		d := cfg.Time(ops[int(opIdx)%len(ops)], bytes)
		return d >= 0 && d < 1e6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

// Property: collective time is monotone non-decreasing in the message
// size for a fixed configuration.
func TestTimeMonotoneInBytesProperty(t *testing.T) {
	ops := []Collective{Allreduce, Allgather, ReduceScatter, Broadcast, AllToAll, PointToPoint}
	f := func(rawRanks uint8, b1, b2 uint32, opIdx uint8) bool {
		ranks := int(rawRanks%128) + 2
		lo, hi := float64(b1), float64(b2)
		if lo > hi {
			lo, hi = hi, lo
		}
		cfg := FromSystem(hardware.JURECA(), ranks)
		op := ops[int(opIdx)%len(ops)]
		return cfg.Time(op, lo) <= cfg.Time(op, hi)+1e-15
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

// Property: allreduce time is monotone non-decreasing in the rank count
// on the staged-MPI path (more ranks never make the collective cheaper).
func TestAllreduceMonotoneInRanksProperty(t *testing.T) {
	f := func(r1, r2 uint8, rawBytes uint32) bool {
		a := int(r1%70) + 2
		b := int(r2%70) + 2
		if a > b {
			a, b = b, a
		}
		bytes := float64(rawBytes % 100_000_000)
		ca := FromSystem(hardware.DEEP(), a)
		cb := FromSystem(hardware.DEEP(), b)
		return ca.Time(Allreduce, bytes) <= cb.Time(Allreduce, bytes)+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
