package network

import (
	"testing"

	"extradeep/internal/mathutil"
	"extradeep/internal/simulator/hardware"
)

func deepConfig(ranks int) Config   { return FromSystem(hardware.DEEP(), ranks) }
func jurecaConfig(ranks int) Config { return FromSystem(hardware.JURECA(), ranks) }

func TestCollectiveString(t *testing.T) {
	names := map[Collective]string{
		Allreduce: "allreduce", Allgather: "allgather", ReduceScatter: "reduce_scatter",
		Broadcast: "broadcast", AllToAll: "alltoall", PointToPoint: "p2p",
	}
	for c, want := range names {
		if got := c.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(c), got, want)
		}
	}
}

func TestSingleRankNoCommunication(t *testing.T) {
	cfg := deepConfig(1)
	for _, op := range []Collective{Allreduce, Allgather, Broadcast, AllToAll, PointToPoint} {
		if got := cfg.Time(op, 1e6); got != 0 {
			t.Errorf("%v with 1 rank = %v, want 0", op, got)
		}
	}
}

func TestAllreduceGrowsWithRanks(t *testing.T) {
	const bytes = 100 * 1e6 // 100 MB gradient
	prev := 0.0
	for _, p := range []int{2, 4, 8, 16, 32, 64} {
		cur := deepConfig(p).Time(Allreduce, bytes)
		if cur <= prev {
			t.Errorf("allreduce(%d ranks) = %v not > %v", p, cur, prev)
		}
		prev = cur
	}
}

func TestAllreduceGrowsWithBytes(t *testing.T) {
	cfg := deepConfig(8)
	small := cfg.Time(Allreduce, 1e6)
	large := cfg.Time(Allreduce, 100e6)
	if large <= small {
		t.Errorf("larger message not slower: %v vs %v", large, small)
	}
}

func TestNegativeBytesTreatedAsZero(t *testing.T) {
	cfg := deepConfig(8)
	if got := cfg.Time(Allreduce, -5); !mathutil.Close(got, cfg.Time(Allreduce, 0)) {
		t.Error("negative bytes not clamped")
	}
}

func TestNCCLHierarchicalBeatsStagedMPIIntraNode(t *testing.T) {
	// 4 ranks on one JURECA node: NVLink-only allreduce must beat the
	// CPU-staged MPI path of a 4-rank DEEP configuration.
	nccl := jurecaConfig(4).Time(Allreduce, 100e6)
	mpi := deepConfig(4).Time(Allreduce, 100e6)
	if nccl >= mpi {
		t.Errorf("intra-node NCCL (%v) should beat staged MPI (%v)", nccl, mpi)
	}
}

func TestReduceScatterHalfOfAllreduce(t *testing.T) {
	cfg := deepConfig(16)
	ar := cfg.Time(Allreduce, 10e6)
	rs := cfg.Time(ReduceScatter, 10e6)
	if rs <= 0 || rs >= ar {
		t.Errorf("reduce-scatter = %v, allreduce = %v", rs, ar)
	}
}

func TestBroadcastLogScaling(t *testing.T) {
	// Broadcast rounds grow with ⌈log2 p⌉, so t(64)/t(4) ≈ 3 for
	// latency-dominated messages.
	small := deepConfig(4).Time(Broadcast, 8)
	big := deepConfig(64).Time(Broadcast, 8)
	ratio := big / small
	if ratio < 2 || ratio > 5 {
		t.Errorf("broadcast scaling ratio = %v, want ≈3", ratio)
	}
}

func TestContentionSlowsLargeScale(t *testing.T) {
	with := deepConfig(64)
	without := with
	without.ContentionPerNodeLog = 0
	bytes := 50e6
	if with.Time(Allreduce, bytes) <= without.Time(Allreduce, bytes) {
		t.Error("contention factor has no effect")
	}
}

func TestNodesComputation(t *testing.T) {
	if got := jurecaConfig(4).Nodes(); got != 1 {
		t.Errorf("4 ranks on JURECA = %d nodes, want 1", got)
	}
	if got := jurecaConfig(5).Nodes(); got != 2 {
		t.Errorf("5 ranks on JURECA = %d nodes, want 2", got)
	}
	if got := deepConfig(8).Nodes(); got != 8 {
		t.Errorf("8 ranks on DEEP = %d nodes, want 8", got)
	}
	zero := Config{Ranks: 0}
	if zero.Nodes() != 1 {
		t.Error("zero ranks should clamp to 1 node")
	}
}

func TestP2PUsesNVLinkWhenAvailable(t *testing.T) {
	nvlink := jurecaConfig(8).Time(PointToPoint, 10e6)
	fabric := deepConfig(8).Time(PointToPoint, 10e6)
	if nvlink >= fabric {
		t.Errorf("NVLink p2p (%v) should beat fabric p2p (%v)", nvlink, fabric)
	}
}

func TestKernelNames(t *testing.T) {
	d := deepConfig(4)
	if d.KernelName(Allreduce) != "MPI_Allreduce" {
		t.Errorf("DEEP allreduce name = %s", d.KernelName(Allreduce))
	}
	j := jurecaConfig(4)
	if j.KernelName(Allreduce) != "ncclAllReduce" {
		t.Errorf("JURECA allreduce name = %s", j.KernelName(Allreduce))
	}
	if d.KernelName(Broadcast) != "MPI_Bcast" || j.KernelName(Broadcast) != "ncclBroadcast" {
		t.Error("broadcast kernel names wrong")
	}
}

func TestUnknownCollectiveZero(t *testing.T) {
	if got := deepConfig(4).Time(Collective(99), 1e6); got != 0 {
		t.Errorf("unknown collective = %v, want 0", got)
	}
}

func TestEffectiveBandwidthFallback(t *testing.T) {
	cfg := Config{Ranks: 4, GPUsPerNode: 1}
	// No bandwidth set: must not divide by zero.
	if got := cfg.Time(Allreduce, 1e6); got <= 0 {
		t.Errorf("fallback bandwidth path = %v", got)
	}
}

func TestAllreduceWeakScalingShape(t *testing.T) {
	// Under weak scaling the gradient size is constant; the allreduce
	// time curve over p should be concave-ish (growth slows), matching
	// the sub-linear comm growth the paper models. Check that the ratio
	// t(2p)/t(p) decreases with p.
	bytes := 100e6
	r1 := deepConfig(4).Time(Allreduce, bytes) / deepConfig(2).Time(Allreduce, bytes)
	r2 := deepConfig(64).Time(Allreduce, bytes) / deepConfig(32).Time(Allreduce, bytes)
	if r2 >= r1 {
		t.Errorf("allreduce growth not flattening: ratios %v then %v", r1, r2)
	}
}
