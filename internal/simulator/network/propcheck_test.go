package network

import (
	"fmt"
	"testing"

	"extradeep/internal/propcheck"
	"extradeep/internal/simulator/hardware"
)

var collectivePool = []Collective{Allreduce, Allgather, ReduceScatter, Broadcast, AllToAll, PointToPoint}

type timingCase struct {
	ranks  int
	bytes  float64
	op     Collective
	jureca bool
}

func timingCaseGen() propcheck.Gen[timingCase] {
	return propcheck.Gen[timingCase]{
		Generate: func(r *propcheck.Rand) timingCase {
			return timingCase{
				ranks:  r.IntRange(1, 200),
				bytes:  float64(r.Int64Range(0, 1<<32)),
				op:     collectivePool[r.Intn(len(collectivePool))],
				jureca: r.Bool(),
			}
		},
		Describe: func(c timingCase) string {
			return fmt.Sprintf("{ranks=%d bytes=%g op=%v jureca=%v}", c.ranks, c.bytes, c.op, c.jureca)
		},
	}
}

// TestPropTimeNonNegative (migrated from testing/quick): collective time
// is non-negative and finite for any sane input.
func TestPropTimeNonNegative(t *testing.T) {
	propcheck.Check(t, timingCaseGen(), func(c timingCase) error {
		sys := hardware.DEEP()
		if c.jureca {
			sys = hardware.JURECA()
		}
		d := FromSystem(sys, c.ranks).Time(c.op, c.bytes)
		if !(d >= 0 && d < 1e6) {
			return fmt.Errorf("time %g outside [0, 1e6)", d)
		}
		return nil
	})
}

// TestPropTimeMonotoneInBytes (migrated from testing/quick): collective
// time is monotone non-decreasing in the message size for a fixed
// configuration.
func TestPropTimeMonotoneInBytes(t *testing.T) {
	type bytesCase struct {
		ranks  int
		lo, hi float64
		op     Collective
	}
	g := propcheck.Gen[bytesCase]{
		Generate: func(r *propcheck.Rand) bytesCase {
			a := float64(r.Int64Range(0, 1<<32))
			b := float64(r.Int64Range(0, 1<<32))
			if a > b {
				a, b = b, a
			}
			return bytesCase{
				ranks: r.IntRange(2, 129),
				lo:    a, hi: b,
				op: collectivePool[r.Intn(len(collectivePool))],
			}
		},
	}
	propcheck.Check(t, g, func(c bytesCase) error {
		cfg := FromSystem(hardware.JURECA(), c.ranks)
		tl, th := cfg.Time(c.op, c.lo), cfg.Time(c.op, c.hi)
		if tl > th+1e-15 {
			return fmt.Errorf("time(%g bytes)=%g exceeds time(%g bytes)=%g", c.lo, tl, c.hi, th)
		}
		return nil
	})
}

// TestPropAllreduceMonotoneInRanks (migrated from testing/quick):
// allreduce time is monotone non-decreasing in the rank count on the
// staged-MPI path (more ranks never make the collective cheaper).
func TestPropAllreduceMonotoneInRanks(t *testing.T) {
	type ranksCase struct {
		a, b  int
		bytes float64
	}
	g := propcheck.Gen[ranksCase]{
		Generate: func(r *propcheck.Rand) ranksCase {
			a := r.IntRange(2, 71)
			b := r.IntRange(2, 71)
			if a > b {
				a, b = b, a
			}
			return ranksCase{a: a, b: b, bytes: float64(r.Int64Range(0, 100_000_000))}
		},
	}
	propcheck.Check(t, g, func(c ranksCase) error {
		ta := FromSystem(hardware.DEEP(), c.a).Time(Allreduce, c.bytes)
		tb := FromSystem(hardware.DEEP(), c.b).Time(Allreduce, c.bytes)
		if ta > tb+1e-12 {
			return fmt.Errorf("allreduce(%d ranks)=%g exceeds allreduce(%d ranks)=%g", c.a, ta, c.b, tb)
		}
		return nil
	})
}
