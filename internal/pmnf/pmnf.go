// Package pmnf implements the Performance Model Normal Form used by
// Extra-P and Extra-Deep (Eq. 5/7 of the paper):
//
//	f(x₁,…,x_m) = c₀ + Σ_{k=1..h} c_k · Π_{l=1..m} x_l^{i_kl} · log₂^{j_kl}(x_l)
//
// A Function is a constant plus a sum of Terms; each Term is a coefficient
// times a product of per-parameter Factors carrying a polynomial exponent i
// and a log₂ exponent j. The package provides evaluation, human-readable
// rendering, and asymptotic-growth comparison used for bottleneck ranking
// (Section 3.1 of the paper).
package pmnf

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"extradeep/internal/mathutil"
)

// Factor is one parameter's contribution x^i · log₂^j(x) within a term.
type Factor struct {
	// Param is the zero-based index of the parameter this factor applies to.
	Param int
	// PolyExp is the polynomial exponent i (may be fractional, e.g. 2/3).
	PolyExp float64
	// LogExp is the logarithmic exponent j.
	LogExp int
}

// Eval evaluates the factor at parameter value x.
// Values x ≤ 0 are outside the PMNF domain and yield NaN when a log factor
// is present or a fractional exponent is used.
func (f Factor) Eval(x float64) float64 {
	if x <= 0 {
		// Outside the PMNF domain: logs are undefined and fractional
		// exponents of non-positive bases have no real value. Surface an
		// explicit NaN instead of letting math.Pow produce one silently.
		if f.LogExp != 0 {
			return math.NaN()
		}
		if _, frac := math.Modf(f.PolyExp); frac != 0 {
			return math.NaN()
		}
	}
	v := 1.0
	if f.PolyExp != 0 {
		v = math.Pow(x, f.PolyExp)
	}
	if f.LogExp != 0 {
		l := mathutil.Log2(x)
		for k := 0; k < f.LogExp; k++ {
			v *= l
		}
	}
	return v
}

// IsConstant reports whether the factor is identically 1.
func (f Factor) IsConstant() bool { return f.PolyExp == 0 && f.LogExp == 0 }

// String renders the factor using the parameter placeholder name p, e.g.
// "x^(2/3)·log2(x)^2" for PolyExp=0.6667, LogExp=2.
func (f Factor) String() string { return f.Render("x") }

// Render renders the factor with an explicit parameter name.
func (f Factor) Render(name string) string {
	var parts []string
	if f.PolyExp != 0 {
		//edlint:ignore floateq rendering branch: an exponent that is exactly 1 prints bare, anything else prints with the caret
		if f.PolyExp == 1 {
			parts = append(parts, name)
		} else {
			parts = append(parts, fmt.Sprintf("%s^%s", name, formatExponent(f.PolyExp)))
		}
	}
	if f.LogExp != 0 {
		if f.LogExp == 1 {
			parts = append(parts, fmt.Sprintf("log2(%s)", name))
		} else {
			parts = append(parts, fmt.Sprintf("log2(%s)^%d", name, f.LogExp))
		}
	}
	if len(parts) == 0 {
		return "1"
	}
	return strings.Join(parts, "*")
}

// formatExponent renders common rational exponents as fractions so that a
// model prints as x^(2/3) rather than x^0.6666666666666666.
func formatExponent(e float64) string {
	// Try denominators up to 4 (the exponent sets use quarters and thirds).
	for _, den := range []int{1, 2, 3, 4} {
		num := e * float64(den)
		if math.Abs(num-math.Round(num)) < 1e-9 {
			n := int(math.Round(num))
			if den == 1 {
				return fmt.Sprintf("%d", n)
			}
			return fmt.Sprintf("(%d/%d)", n, den)
		}
	}
	return fmt.Sprintf("%.4g", e)
}

// Term is a coefficient times a product of factors: c · Π x_l^{i_l}·log₂^{j_l}(x_l).
type Term struct {
	Coefficient float64
	Factors     []Factor
}

// Eval evaluates the term at the given parameter values. Parameters not
// referenced by any factor do not influence the result.
func (t Term) Eval(params []float64) float64 {
	v := t.Coefficient
	for _, f := range t.Factors {
		if f.Param < 0 || f.Param >= len(params) {
			return math.NaN()
		}
		v *= f.Eval(params[f.Param])
	}
	return v
}

// EvalBasis evaluates the term's basis (the product of factors without the
// coefficient), as needed when fitting coefficients by linear regression.
func (t Term) EvalBasis(params []float64) float64 {
	v := 1.0
	for _, f := range t.Factors {
		if f.Param < 0 || f.Param >= len(params) {
			return math.NaN()
		}
		v *= f.Eval(params[f.Param])
	}
	return v
}

// Render renders the term using the given parameter names; a nil or short
// names slice falls back to x1, x2, ….
func (t Term) Render(names []string) string {
	var parts []string
	for _, f := range t.Factors {
		if f.IsConstant() {
			continue
		}
		parts = append(parts, f.Render(paramName(names, f.Param)))
	}
	if len(parts) == 0 {
		return fmt.Sprintf("%.4g", t.Coefficient)
	}
	return fmt.Sprintf("%.4g*%s", t.Coefficient, strings.Join(parts, "*"))
}

func paramName(names []string, i int) string {
	if i >= 0 && i < len(names) && names[i] != "" {
		return names[i]
	}
	return fmt.Sprintf("x%d", i+1)
}

// Function is a complete PMNF model: constant plus sum of terms.
// The zero value is the constant function 0.
type Function struct {
	Constant float64
	Terms    []Term
	// ParamNames optionally carries human-readable parameter names used
	// when rendering the function (e.g. "p" for the number of MPI ranks).
	ParamNames []string
}

// Constant returns a PMNF function that is identically c.
func ConstantFunction(c float64) *Function { return &Function{Constant: c} }

// Eval evaluates the model at the given parameter values.
func (fn *Function) Eval(params ...float64) float64 {
	v := fn.Constant
	for _, t := range fn.Terms {
		v += t.Eval(params)
	}
	return v
}

// EvalAt is Eval taking a slice, convenient when the arity is dynamic.
func (fn *Function) EvalAt(params []float64) float64 { return fn.Eval(params...) }

// NumParams returns the highest referenced parameter index + 1.
func (fn *Function) NumParams() int {
	n := 0
	for _, t := range fn.Terms {
		for _, f := range t.Factors {
			if f.Param+1 > n {
				n = f.Param + 1
			}
		}
	}
	if len(fn.ParamNames) > n {
		n = len(fn.ParamNames)
	}
	return n
}

// String renders the function in the paper's style, e.g.
// "158.6 + 0.58*p^(2/3)*log2(p)^2".
func (fn *Function) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%.4g", fn.Constant)
	for _, t := range fn.Terms {
		if t.Coefficient < 0 {
			neg := t
			neg.Coefficient = -neg.Coefficient
			b.WriteString(" - ")
			b.WriteString(neg.Render(fn.ParamNames))
		} else {
			b.WriteString(" + ")
			b.WriteString(t.Render(fn.ParamNames))
		}
	}
	return b.String()
}

// Growth describes the asymptotic growth of a function as a whole, used for
// ranking kernels by their scaling behaviour (Section 3.1). PolyDegree is
// the total polynomial degree of the dominant term (sum of i over all
// parameters) and LogDegree the total logarithmic degree.
type Growth struct {
	PolyDegree float64
	LogDegree  int
}

// Compare orders growths: -1 if g grows slower than h, 0 if equal, +1 if
// faster. Polynomial degree dominates; log degree breaks ties.
func (g Growth) Compare(h Growth) int {
	const eps = 1e-9
	switch {
	case g.PolyDegree < h.PolyDegree-eps:
		return -1
	case g.PolyDegree > h.PolyDegree+eps:
		return 1
	case g.LogDegree < h.LogDegree:
		return -1
	case g.LogDegree > h.LogDegree:
		return 1
	}
	return 0
}

// String renders the growth in Big-O notation, e.g. "O(x^2*log2(x))".
func (g Growth) String() string {
	if g.PolyDegree == 0 && g.LogDegree == 0 {
		return "O(1)"
	}
	f := Factor{PolyExp: g.PolyDegree, LogExp: g.LogDegree}
	return "O(" + f.Render("x") + ")"
}

// Growth returns the asymptotic growth of the function: the dominant
// (fastest-growing) term among terms with a non-negligible coefficient.
// A pure constant has growth O(1).
func (fn *Function) Growth() Growth {
	best := Growth{}
	for _, t := range fn.Terms {
		if math.Abs(t.Coefficient) < 1e-12 {
			continue
		}
		g := Growth{}
		for _, f := range t.Factors {
			g.PolyDegree += f.PolyExp
			g.LogDegree += f.LogExp
		}
		if g.Compare(best) > 0 {
			best = g
		}
	}
	return best
}

// SortByGrowth sorts the given functions from fastest- to slowest-growing;
// ties are broken by the value at the supplied reference point so that, of
// two O(x) kernels, the more expensive ranks first. It returns the order
// as a permutation of indices into fns.
func SortByGrowth(fns []*Function, reference []float64) []int {
	idx := make([]int, len(fns))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		ga, gb := fns[idx[a]].Growth(), fns[idx[b]].Growth()
		if c := ga.Compare(gb); c != 0 {
			return c > 0
		}
		return fns[idx[a]].EvalAt(reference) > fns[idx[b]].EvalAt(reference)
	})
	return idx
}
