package pmnf

import (
	"math"
	"testing"

	"extradeep/internal/mathutil"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestFactorEvalPolynomial(t *testing.T) {
	f := Factor{PolyExp: 2}
	if got := f.Eval(3); !mathutil.Close(got, 9) {
		t.Errorf("x² at 3 = %v, want 9", got)
	}
}

func TestFactorEvalLog(t *testing.T) {
	f := Factor{LogExp: 2}
	if got := f.Eval(8); !mathutil.Close(got, 9) {
		t.Errorf("log²(8) = %v, want 9", got)
	}
}

func TestFactorEvalMixed(t *testing.T) {
	f := Factor{PolyExp: 1, LogExp: 1}
	if got := f.Eval(4); !mathutil.Close(got, 8) {
		t.Errorf("x·log(x) at 4 = %v, want 8", got)
	}
}

func TestFactorEvalFractional(t *testing.T) {
	f := Factor{PolyExp: 2.0 / 3.0}
	if got := f.Eval(8); !approx(got, 4, 1e-9) {
		t.Errorf("x^(2/3) at 8 = %v, want 4", got)
	}
}

func TestFactorEvalConstant(t *testing.T) {
	f := Factor{}
	if got := f.Eval(123); !mathutil.Close(got, 1) {
		t.Errorf("constant factor = %v, want 1", got)
	}
	if !f.IsConstant() {
		t.Error("IsConstant false for empty factor")
	}
}

func TestFactorDomain(t *testing.T) {
	f := Factor{LogExp: 1}
	if !math.IsNaN(f.Eval(0)) {
		t.Error("log factor at 0 should be NaN")
	}
	if !math.IsNaN(f.Eval(-2)) {
		t.Error("log factor at -2 should be NaN")
	}
}

func TestFactorRender(t *testing.T) {
	cases := []struct {
		f    Factor
		want string
	}{
		{Factor{}, "1"},
		{Factor{PolyExp: 1}, "p"},
		{Factor{PolyExp: 2}, "p^2"},
		{Factor{PolyExp: 2.0 / 3.0}, "p^(2/3)"},
		{Factor{PolyExp: 0.25}, "p^(1/4)"},
		{Factor{LogExp: 1}, "log2(p)"},
		{Factor{LogExp: 2}, "log2(p)^2"},
		{Factor{PolyExp: 1.5, LogExp: 1}, "p^(3/2)*log2(p)"},
	}
	for _, c := range cases {
		if got := c.f.Render("p"); got != c.want {
			t.Errorf("Render(%+v) = %q, want %q", c.f, got, c.want)
		}
	}
}

func TestTermEval(t *testing.T) {
	term := Term{Coefficient: 2, Factors: []Factor{{Param: 0, PolyExp: 1}, {Param: 1, LogExp: 1}}}
	// 2 · x1 · log2(x2) at (3, 4) = 2·3·2 = 12
	if got := term.Eval([]float64{3, 4}); !mathutil.Close(got, 12) {
		t.Errorf("term = %v, want 12", got)
	}
}

func TestTermEvalBasisExcludesCoefficient(t *testing.T) {
	term := Term{Coefficient: 5, Factors: []Factor{{Param: 0, PolyExp: 2}}}
	if got := term.EvalBasis([]float64{3}); !mathutil.Close(got, 9) {
		t.Errorf("basis = %v, want 9", got)
	}
}

func TestTermEvalOutOfRangeParam(t *testing.T) {
	term := Term{Coefficient: 1, Factors: []Factor{{Param: 3, PolyExp: 1}}}
	if got := term.Eval([]float64{1}); !math.IsNaN(got) {
		t.Errorf("out-of-range param = %v, want NaN", got)
	}
}

func TestFunctionEvalCaseStudyModel(t *testing.T) {
	// The paper's case-study model: T(x) = 158.58 + 0.58·x^(2/3)·log2(x)².
	fn := &Function{
		Constant: 158.58,
		Terms: []Term{{
			Coefficient: 0.58,
			Factors:     []Factor{{Param: 0, PolyExp: 2.0 / 3.0, LogExp: 2}},
		}},
	}
	// At x=40 the paper reports ≈352.37 s.
	got := fn.Eval(40)
	// (the paper rounds the printed coefficients, so allow ±2 s)
	if !approx(got, 352.37, 2.0) {
		t.Errorf("T(40) = %v, want ≈352.37", got)
	}
}

func TestFunctionString(t *testing.T) {
	fn := &Function{
		Constant:   158.58,
		ParamNames: []string{"p"},
		Terms: []Term{{
			Coefficient: 0.58,
			Factors:     []Factor{{Param: 0, PolyExp: 2.0 / 3.0, LogExp: 2}},
		}},
	}
	want := "158.6 + 0.58*p^(2/3)*log2(p)^2"
	if got := fn.String(); got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
}

func TestFunctionStringNegativeTerm(t *testing.T) {
	fn := &Function{
		Constant: 10,
		Terms:    []Term{{Coefficient: -2, Factors: []Factor{{Param: 0, PolyExp: 1}}}},
	}
	want := "10 - 2*x1"
	if got := fn.String(); got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
}

func TestConstantFunction(t *testing.T) {
	fn := ConstantFunction(7)
	if got := fn.Eval(99, 3); !mathutil.Close(got, 7) {
		t.Errorf("constant fn = %v, want 7", got)
	}
	if g := fn.Growth(); g.PolyDegree != 0 || g.LogDegree != 0 {
		t.Errorf("constant growth = %v, want O(1)", g)
	}
}

func TestNumParams(t *testing.T) {
	fn := &Function{Terms: []Term{{Coefficient: 1, Factors: []Factor{{Param: 2, PolyExp: 1}}}}}
	if got := fn.NumParams(); got != 3 {
		t.Errorf("NumParams = %d, want 3", got)
	}
}

func TestGrowthCompare(t *testing.T) {
	cases := []struct {
		a, b Growth
		want int
	}{
		{Growth{1, 0}, Growth{2, 0}, -1},
		{Growth{2, 0}, Growth{1, 0}, 1},
		{Growth{1, 0}, Growth{1, 1}, -1},
		{Growth{1, 1}, Growth{1, 1}, 0},
		{Growth{0, 1}, Growth{0.5, 0}, -1}, // log grows slower than any root
	}
	for _, c := range cases {
		if got := c.a.Compare(c.b); got != c.want {
			t.Errorf("Compare(%v,%v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestGrowthString(t *testing.T) {
	cases := []struct {
		g    Growth
		want string
	}{
		{Growth{}, "O(1)"},
		{Growth{1, 0}, "O(x)"},
		{Growth{2, 1}, "O(x^2*log2(x))"},
		{Growth{0, 2}, "O(log2(x)^2)"},
	}
	for _, c := range cases {
		if got := c.g.String(); got != c.want {
			t.Errorf("Growth%v.String = %q, want %q", c.g, got, c.want)
		}
	}
}

func TestFunctionGrowthDominantTerm(t *testing.T) {
	fn := &Function{
		Constant: 5,
		Terms: []Term{
			{Coefficient: 100, Factors: []Factor{{Param: 0, PolyExp: 1}}},
			{Coefficient: 0.001, Factors: []Factor{{Param: 0, PolyExp: 2, LogExp: 1}}},
		},
	}
	g := fn.Growth()
	if !mathutil.Close(g.PolyDegree, 2) || g.LogDegree != 1 {
		t.Errorf("growth = %v, want {2 1}", g)
	}
}

func TestFunctionGrowthIgnoresZeroCoefficients(t *testing.T) {
	fn := &Function{
		Terms: []Term{
			{Coefficient: 0, Factors: []Factor{{Param: 0, PolyExp: 3}}},
			{Coefficient: 1, Factors: []Factor{{Param: 0, PolyExp: 1}}},
		},
	}
	if g := fn.Growth(); !mathutil.Close(g.PolyDegree, 1) {
		t.Errorf("growth = %v, want poly degree 1", g)
	}
}

func TestFunctionGrowthMultiParam(t *testing.T) {
	fn := &Function{
		Terms: []Term{{
			Coefficient: 1,
			Factors:     []Factor{{Param: 0, PolyExp: 1}, {Param: 1, PolyExp: 0.5, LogExp: 1}},
		}},
	}
	g := fn.Growth()
	if !approx(g.PolyDegree, 1.5, 1e-12) || g.LogDegree != 1 {
		t.Errorf("growth = %v, want {1.5 1}", g)
	}
}

func TestSortByGrowth(t *testing.T) {
	constant := ConstantFunction(1e9)
	linear := &Function{Terms: []Term{{Coefficient: 1, Factors: []Factor{{Param: 0, PolyExp: 1}}}}}
	quadratic := &Function{Terms: []Term{{Coefficient: 1e-6, Factors: []Factor{{Param: 0, PolyExp: 2}}}}}
	order := SortByGrowth([]*Function{constant, linear, quadratic}, []float64{64})
	// Fastest growth first: quadratic, linear, constant — despite the huge
	// constant coefficient.
	want := []int{2, 1, 0}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestSortByGrowthTieBreakByValue(t *testing.T) {
	cheap := &Function{Terms: []Term{{Coefficient: 1, Factors: []Factor{{Param: 0, PolyExp: 1}}}}}
	costly := &Function{Terms: []Term{{Coefficient: 50, Factors: []Factor{{Param: 0, PolyExp: 1}}}}}
	order := SortByGrowth([]*Function{cheap, costly}, []float64{10})
	if order[0] != 1 {
		t.Errorf("order = %v, want the costly O(x) kernel first", order)
	}
}
