package pmnf

import "math"

// ColumnSet caches per-configuration basis columns for a fixed set of
// measurement rows. It is the evaluation substrate of the modeling
// layer's design-matrix engine: every Factor is evaluated exactly once
// per configuration, no matter how many hypotheses (or cross-validation
// folds) reference it afterwards.
//
// All column evaluations replicate the scalar evaluation paths of this
// package bit for bit:
//
//   - FactorColumn[r] == f.Eval(rows[r][f.Param])
//   - TermColumn[r]   == t.EvalBasis(rows[r])
//   - EvalTerm        == t.Eval(rows[r])
//   - EvalFunction    == fn.EvalAt(rows[r])
//
// The products are carried out in the same operand order as the scalar
// code, so a fit assembled from cached columns selects exactly the model
// a direct evaluation would (floating-point multiplication is not
// associative; the order is part of the contract and pinned by tests).
//
// A ColumnSet is not safe for concurrent use: the factor cache fills
// lazily. The modeling layer builds one per fit task and keeps it
// confined to that task's goroutine.
type ColumnSet struct {
	rows    [][]float64
	factors map[Factor][]float64
	shared  map[Factor][]float64
}

// NewColumnSet returns a column cache over the given configuration rows.
// The rows are referenced, not copied; callers must not mutate them while
// the set is in use.
func NewColumnSet(rows [][]float64) *ColumnSet {
	return &ColumnSet{rows: rows, factors: make(map[Factor][]float64, 64)}
}

// NewColumnSetShared returns a column cache pre-seeded with externally
// computed factor columns for the same rows. The shared map is consulted
// read-only and may be referenced by any number of sets concurrently
// (it must never be mutated after construction); factors outside it
// still fill the set's own lazy cache. This lets fit tasks over the same
// measurement points — the common case inside one campaign — evaluate
// each basis factor once per process instead of once per task.
func NewColumnSetShared(rows [][]float64, shared map[Factor][]float64) *ColumnSet {
	return &ColumnSet{rows: rows, factors: make(map[Factor][]float64, 8), shared: shared}
}

// Len returns the number of configuration rows.
func (cs *ColumnSet) Len() int { return len(cs.rows) }

// Row returns the r-th configuration row.
func (cs *ColumnSet) Row(r int) []float64 { return cs.rows[r] }

// FactorColumn returns the cached column of f evaluated at every row,
// computing and caching it on first use. Entries where f.Param is outside
// the row's arity are NaN, mirroring Term.EvalBasis's bounds behaviour.
// The returned slice is owned by the cache — callers must not modify it.
func (cs *ColumnSet) FactorColumn(f Factor) []float64 {
	if col, ok := cs.shared[f]; ok {
		return col
	}
	if col, ok := cs.factors[f]; ok {
		return col
	}
	col := make([]float64, len(cs.rows))
	for r, row := range cs.rows {
		if f.Param < 0 || f.Param >= len(row) {
			col[r] = math.NaN()
			continue
		}
		col[r] = f.Eval(row[f.Param])
	}
	cs.factors[f] = col
	return col
}

// TermColumn fills dst with the term's basis evaluated at every row —
// bit-identical to t.EvalBasis(rows[r]) — and returns it. dst is grown as
// needed; passing a previous result back in avoids the allocation.
func (cs *ColumnSet) TermColumn(t Term, dst []float64) []float64 {
	facs := make([][]float64, len(t.Factors))
	for i, f := range t.Factors {
		facs[i] = cs.FactorColumn(f)
	}
	return TermProduct(len(cs.rows), facs, dst)
}

// TermProduct fills dst with the row-wise product of the factor columns —
// the term basis — in factor order, starting from 1.0, exactly as
// Term.EvalBasis multiplies scalar factor values. It is the one place the
// column engine's product order lives; TermColumn and the modeling
// layer's per-hypothesis column assembly both route through it. dst is
// grown as needed.
func TermProduct(n int, facs [][]float64, dst []float64) []float64 {
	if cap(dst) < n {
		dst = make([]float64, n)
	}
	dst = dst[:n]
	for r := range dst {
		dst[r] = 1.0
	}
	for _, col := range facs {
		for r := range dst {
			dst[r] *= col[r]
		}
	}
	return dst
}

// EvalTerm evaluates the full term (coefficient included) at row r from
// cached factor columns, bit-identical to t.Eval(rows[r]).
func (cs *ColumnSet) EvalTerm(t Term, r int) float64 {
	v := t.Coefficient
	for _, f := range t.Factors {
		v *= cs.FactorColumn(f)[r]
	}
	return v
}

// EvalFunction evaluates fn at row r from cached factor columns,
// bit-identical to fn.EvalAt(rows[r]).
func (cs *ColumnSet) EvalFunction(fn *Function, r int) float64 {
	v := fn.Constant
	for _, t := range fn.Terms {
		v += cs.EvalTerm(t, r)
	}
	return v
}
