package pmnf

import (
	"fmt"
	"math"
	"testing"

	"extradeep/internal/propcheck"
)

// genFunction generates random single-parameter PMNF instances (1–2
// compound terms over the Extra-P exponent sets), replacing the old
// math/rand randomFunction helper with a seed-replayable generator.
func genFunction() propcheck.Gen[*Function] {
	exps := []float64{0, 0.25, 1.0 / 3, 0.5, 2.0 / 3, 0.75, 1, 1.25, 1.5, 2}
	return propcheck.Gen[*Function]{
		Generate: func(r *propcheck.Rand) *Function {
			fn := &Function{Constant: r.NormFloat64() * 10}
			n := r.IntRange(1, 2)
			for k := 0; k < n; k++ {
				fn.Terms = append(fn.Terms, Term{
					Coefficient: r.NormFloat64() * 5,
					Factors: []Factor{{
						Param:   0,
						PolyExp: exps[r.Intn(len(exps))],
						LogExp:  r.IntRange(0, 2),
					}},
				})
			}
			return fn
		},
		Describe: func(fn *Function) string { return fn.String() },
	}
}

type fnAt struct {
	fn     *Function
	x1, x2 float64
	s      float64
}

func fnAtGen() propcheck.Gen[fnAt] {
	fg := genFunction()
	return propcheck.Gen[fnAt]{
		Generate: func(r *propcheck.Rand) fnAt {
			x1 := 1 + r.Float64Range(0, 50)
			return fnAt{
				fn: fg.Generate(r),
				x1: x1,
				x2: x1 + r.Float64Range(0, 50),
				s:  r.NormFloat64(),
			}
		},
		Describe: func(c fnAt) string {
			return fmt.Sprintf("{%s at x1=%g x2=%g s=%g}", c.fn, c.x1, c.x2, c.s)
		},
	}
}

// TestPropFunctionLinearity (migrated from a math/rand loop): Eval is
// linear in the coefficients — scaling every coefficient (and the
// constant) by s scales the result by s.
func TestPropFunctionLinearity(t *testing.T) {
	propcheck.Check(t, fnAtGen(), func(c fnAt) error {
		scaled := &Function{Constant: c.fn.Constant * c.s}
		for _, term := range c.fn.Terms {
			nt := term
			nt.Coefficient *= c.s
			scaled.Terms = append(scaled.Terms, nt)
		}
		a, b := c.fn.Eval(c.x1)*c.s, scaled.Eval(c.x1)
		if !approx(a, b, 1e-6*(1+math.Abs(a))) {
			return fmt.Errorf("s·f(x)=%g but (s·f)(x)=%g", a, b)
		}
		return nil
	})
}

// TestPropFunctionMonotone (migrated from a math/rand loop): PMNF
// functions with non-negative coefficients are monotone non-decreasing on
// x ≥ 1.
func TestPropFunctionMonotone(t *testing.T) {
	propcheck.Check(t, fnAtGen(), func(c fnAt) error {
		fn := &Function{Constant: c.fn.Constant}
		for _, term := range c.fn.Terms {
			nt := term
			nt.Coefficient = math.Abs(nt.Coefficient)
			fn.Terms = append(fn.Terms, nt)
		}
		if fn.Eval(c.x1) > fn.Eval(c.x2)+1e-9 {
			return fmt.Errorf("f(%g)=%g > f(%g)=%g for %s", c.x1, fn.Eval(c.x1), c.x2, fn.Eval(c.x2), fn)
		}
		return nil
	})
}

// TestPropFactorRenderTotal (migrated from testing/quick): Render is total
// — it returns a non-empty string for any exponent combination and never
// panics.
func TestPropFactorRenderTotal(t *testing.T) {
	type renderCase struct {
		poly   float64
		logExp int
	}
	g := propcheck.Gen[renderCase]{
		Generate: func(r *propcheck.Rand) renderCase {
			return renderCase{poly: r.Float64Range(-4, 4), logExp: r.IntRange(0, 3)}
		},
	}
	propcheck.Check(t, g, func(c renderCase) error {
		fac := Factor{PolyExp: c.poly, LogExp: c.logExp}
		if fac.Render("x") == "" {
			return fmt.Errorf("empty render for %+v", fac)
		}
		return nil
	})
}

// TestPropGrowthOrderingConsistent: Growth.Compare agrees with actual
// asymptotic dominance — if Compare says a grows strictly faster than b,
// then a's basis eventually exceeds b's.
func TestPropGrowthOrderingConsistent(t *testing.T) {
	g := propcheck.Gen[[2]*Function]{
		Generate: func(r *propcheck.Rand) [2]*Function {
			fg := genFunction()
			return [2]*Function{fg.Generate(r), fg.Generate(r)}
		},
		Describe: func(fns [2]*Function) string {
			return fmt.Sprintf("{%s vs %s}", fns[0], fns[1])
		},
	}
	propcheck.Check(t, g, func(fns [2]*Function) error {
		ga, gb := fns[0].Growth(), fns[1].Growth()
		cmp := ga.Compare(gb)
		if -cmp != gb.Compare(ga) {
			return fmt.Errorf("Compare not antisymmetric: %v vs %v", ga, gb)
		}
		if cmp > 0 {
			// a dominates: its basis must grow strictly faster between two
			// widely spaced points. Work in log space — the crossover point
			// of close polynomial degrees with opposing log factors can lie
			// beyond any fixed x, but the growth *rate* ordering is already
			// visible over a wide enough span.
			const x1, x2 = 1e6, 1e30
			rate := func(g Growth) float64 {
				return g.PolyDegree*(math.Log(x2)-math.Log(x1)) +
					float64(g.LogDegree)*(math.Log(math.Log2(x2))-math.Log(math.Log2(x1)))
			}
			if !(rate(ga) > rate(gb)) {
				return fmt.Errorf("%v compares above %v but grows no faster (log-rate %g ≤ %g)",
					ga, gb, rate(ga), rate(gb))
			}
		}
		return nil
	})
}
