package pmnf

import (
	"fmt"
	"math"
	"testing"

	"extradeep/internal/propcheck"
)

// The column engine's contract is bitwise: every cached-column evaluation
// must reproduce the corresponding scalar evaluation path exactly,
// because the modeling layer's bit-identical-selection guarantee rests on
// it. These tests compare Float64bits, not approximate values.

func bitsEqual(a, b float64) bool {
	return math.Float64bits(a) == math.Float64bits(b)
}

func testRows() [][]float64 {
	return [][]float64{{2, 32}, {4, 64}, {8, 128}, {16, 256}, {32, 512}}
}

func TestFactorColumnMatchesScalarEval(t *testing.T) {
	rows := testRows()
	cs := NewColumnSet(rows)
	factors := []Factor{
		{Param: 0, PolyExp: 1},
		{Param: 0, PolyExp: 0.5, LogExp: 1},
		{Param: 0, PolyExp: 2.0 / 3, LogExp: 2},
		{Param: 0, PolyExp: -1},
		{Param: 1, PolyExp: 1.25},
		{Param: 1, PolyExp: 0, LogExp: 1},
	}
	for _, f := range factors {
		col := cs.FactorColumn(f)
		if len(col) != len(rows) {
			t.Fatalf("%v: column length %d, want %d", f, len(col), len(rows))
		}
		for r, row := range rows {
			want := f.Eval(row[f.Param])
			if !bitsEqual(col[r], want) {
				t.Fatalf("%v row %d: column %x, scalar %x", f, r, math.Float64bits(col[r]), math.Float64bits(want))
			}
		}
		// Second fetch must return the cached column (same backing array).
		if again := cs.FactorColumn(f); &again[0] != &col[0] {
			t.Fatalf("%v: second fetch recomputed the column", f)
		}
	}
}

func TestFactorColumnOutOfRangeIsNaN(t *testing.T) {
	cs := NewColumnSet([][]float64{{2}, {4}, {8}})
	for _, f := range []Factor{{Param: 1, PolyExp: 1}, {Param: -1, PolyExp: 1}} {
		for r, v := range cs.FactorColumn(f) {
			if !math.IsNaN(v) {
				t.Fatalf("param %d row %d: got %g, want NaN", f.Param, r, v)
			}
		}
	}
}

func TestTermColumnMatchesEvalBasis(t *testing.T) {
	rows := testRows()
	cs := NewColumnSet(rows)
	terms := []Term{
		{Factors: []Factor{{Param: 0, PolyExp: 1.5, LogExp: 1}}},
		{Factors: []Factor{{Param: 0, PolyExp: 0.75}, {Param: 1, PolyExp: 1.0 / 3, LogExp: 2}}},
		{Factors: []Factor{{Param: 1, PolyExp: 2}, {Param: 0, PolyExp: -0.5, LogExp: 1}, {Param: 0, PolyExp: 0.25}}},
		{Factors: nil}, // empty product: the constant basis 1.0
	}
	var dst []float64
	for _, term := range terms {
		dst = cs.TermColumn(term, dst)
		for r, row := range rows {
			want := term.EvalBasis(row)
			if !bitsEqual(dst[r], want) {
				t.Fatalf("%s row %d: column %x (%g), scalar %x (%g)",
					term.Render(nil), r, math.Float64bits(dst[r]), dst[r], math.Float64bits(want), want)
			}
		}
	}
}

func TestSharedColumnsConsultedBeforeLocal(t *testing.T) {
	rows := [][]float64{{2}, {4}, {8}}
	f := Factor{Param: 0, PolyExp: 1}
	g := Factor{Param: 0, PolyExp: 2}
	pre := NewColumnSet(rows)
	shared := map[Factor][]float64{f: pre.FactorColumn(f)}
	cs := NewColumnSetShared(rows, shared)
	// The shared column is returned as-is (same backing array), never
	// recomputed into the local cache.
	if col := cs.FactorColumn(f); &col[0] != &shared[f][0] {
		t.Fatal("shared column was recomputed instead of reused")
	}
	// Factors outside the shared set still evaluate correctly and cache
	// locally.
	col := cs.FactorColumn(g)
	for r, row := range rows {
		if want := g.Eval(row[0]); !bitsEqual(col[r], want) {
			t.Fatalf("row %d: %g, want %g", r, col[r], want)
		}
	}
	if again := cs.FactorColumn(g); &again[0] != &col[0] {
		t.Fatal("local column was not cached")
	}
}

func TestTermProductReusesDst(t *testing.T) {
	facs := [][]float64{{2, 3, 4}, {5, 6, 7}}
	dst := make([]float64, 3)
	out := TermProduct(3, facs, dst)
	if &out[0] != &dst[0] {
		t.Fatal("TermProduct allocated despite sufficient dst capacity")
	}
	want := []float64{10, 18, 28}
	for i := range want {
		if !bitsEqual(out[i], want[i]) {
			t.Fatalf("row %d: %g, want %g", i, out[i], want[i])
		}
	}
}

func TestEvalTermAndFunctionMatchScalar(t *testing.T) {
	rows := testRows()
	cs := NewColumnSet(rows)
	fn := &Function{
		Constant: 3.7,
		Terms: []Term{
			{Coefficient: 2.25, Factors: []Factor{{Param: 0, PolyExp: 1, LogExp: 1}}},
			{Coefficient: -0.125, Factors: []Factor{{Param: 0, PolyExp: 0.5}, {Param: 1, PolyExp: 1}}},
		},
	}
	for r, row := range rows {
		for _, term := range fn.Terms {
			if got, want := cs.EvalTerm(term, r), term.Eval(row); !bitsEqual(got, want) {
				t.Fatalf("EvalTerm row %d: %x, scalar %x", r, math.Float64bits(got), math.Float64bits(want))
			}
		}
		if got, want := cs.EvalFunction(fn, r), fn.EvalAt(row); !bitsEqual(got, want) {
			t.Fatalf("EvalFunction row %d: %x, scalar %x", r, math.Float64bits(got), math.Float64bits(want))
		}
	}
}

// TestPropColumnsBitIdentical sweeps randomized functions and rows: the
// column APIs must agree with the scalar evaluation paths bit for bit on
// arbitrary (positive-domain) inputs, including fractional and negative
// exponents where Pow/Log rounding makes operand order observable.
func TestPropColumnsBitIdentical(t *testing.T) {
	type colCase struct {
		fn   *Function
		rows [][]float64
	}
	exps := []float64{-1, -0.5, 0, 0.25, 1.0 / 3, 0.5, 1, 1.5, 2, 7.0 / 3}
	gen := propcheck.Gen[colCase]{
		Generate: func(r *propcheck.Rand) colCase {
			arity := r.IntRange(1, 3)
			n := r.IntRange(3, 7)
			rows := make([][]float64, n)
			for i := range rows {
				row := make([]float64, arity)
				for j := range row {
					row[j] = r.Float64Range(1.1, 512)
				}
				rows[i] = row
			}
			fn := &Function{Constant: r.NormFloat64() * 10}
			for k, nt := 0, r.IntRange(1, 3); k < nt; k++ {
				var factors []Factor
				for f, nf := 0, r.IntRange(1, 2); f < nf; f++ {
					factors = append(factors, Factor{
						Param:   r.Intn(arity),
						PolyExp: exps[r.Intn(len(exps))],
						LogExp:  r.IntRange(0, 2),
					})
				}
				fn.Terms = append(fn.Terms, Term{Coefficient: r.NormFloat64() * 5, Factors: factors})
			}
			return colCase{fn: fn, rows: rows}
		},
		Describe: func(c colCase) string {
			return fmt.Sprintf("{%s over %d rows}", c.fn.String(), len(c.rows))
		},
	}
	propcheck.Check(t, gen, func(c colCase) error {
		cs := NewColumnSet(c.rows)
		var dst []float64
		for _, term := range c.fn.Terms {
			dst = cs.TermColumn(term, dst)
			for r, row := range c.rows {
				if want := term.EvalBasis(row); !bitsEqual(dst[r], want) {
					return fmt.Errorf("TermColumn row %d: %x != scalar %x", r, math.Float64bits(dst[r]), math.Float64bits(want))
				}
				if got, want := cs.EvalTerm(term, r), term.Eval(row); !bitsEqual(got, want) {
					return fmt.Errorf("EvalTerm row %d: %x != scalar %x", r, math.Float64bits(got), math.Float64bits(want))
				}
			}
		}
		for r, row := range c.rows {
			if got, want := cs.EvalFunction(c.fn, r), c.fn.EvalAt(row); !bitsEqual(got, want) {
				return fmt.Errorf("EvalFunction row %d: %x != scalar %x", r, math.Float64bits(got), math.Float64bits(want))
			}
		}
		return nil
	})
}
