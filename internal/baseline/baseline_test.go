package baseline

import (
	"testing"

	"extradeep/internal/simulator/engine"
	"extradeep/internal/simulator/hardware"
	"extradeep/internal/simulator/parallel"
)

func bench(t *testing.T, name string) engine.Benchmark {
	t.Helper()
	b, err := engine.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestAnalyticalBreakdown(t *testing.T) {
	b := bench(t, "cifar10")
	p, err := Analytical(b, hardware.DEEP(), parallel.DataParallel{FusionBuckets: 4}, 8, true)
	if err != nil {
		t.Fatal(err)
	}
	if p.ComputePerStep <= 0 || p.CommPerStep <= 0 || p.IOPerStep <= 0 {
		t.Errorf("breakdown has non-positive parts: %+v", p)
	}
	if p.StepsPerEpoch != 195 {
		t.Errorf("steps = %d, want 195", p.StepsPerEpoch)
	}
	if p.EpochTime <= 0 {
		t.Error("non-positive epoch time")
	}
}

func TestAnalyticalOptimisticVsSimulator(t *testing.T) {
	// The analytical model uses peak numbers and ideal terms, so it must
	// undercut the simulator's (calibrated) epoch time at every scale.
	b := bench(t, "cifar10")
	strat := parallel.DataParallel{FusionBuckets: 4}
	for _, ranks := range []int{2, 8, 32, 64} {
		ana, err := Analytical(b, hardware.DEEP(), strat, ranks, true)
		if err != nil {
			t.Fatal(err)
		}
		st, err := engine.Stats(b, engine.RunConfig{
			System: hardware.DEEP(), Strategy: strat, Ranks: ranks, WeakScaling: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		if ana.EpochTime >= st.ExecTimePerEpoch {
			t.Errorf("ranks %d: analytical %v not below simulated %v",
				ranks, ana.EpochTime, st.ExecTimePerEpoch)
		}
	}
}

func TestAnalyticalCommGrowsWithScale(t *testing.T) {
	b := bench(t, "cifar10")
	strat := parallel.DataParallel{FusionBuckets: 4}
	small, err := Analytical(b, hardware.DEEP(), strat, 2, true)
	if err != nil {
		t.Fatal(err)
	}
	big, err := Analytical(b, hardware.DEEP(), strat, 64, true)
	if err != nil {
		t.Fatal(err)
	}
	if big.CommPerStep <= small.CommPerStep {
		t.Error("analytical communication should grow with ranks")
	}
}

func TestAnalyticalErrors(t *testing.T) {
	b := bench(t, "cifar10")
	if _, err := Analytical(b, hardware.DEEP(), parallel.DataParallel{}, 0, true); err == nil {
		t.Error("zero ranks accepted")
	}
	b.Dataset.TrainSamples = 10
	if _, err := Analytical(b, hardware.DEEP(), parallel.DataParallel{}, 2, false); err == nil {
		t.Error("zero-step configuration accepted")
	}
}

func TestFullProfilingMatchesSampledShape(t *testing.T) {
	b := bench(t, "cifar10")
	cfg := engine.RunConfig{
		System: hardware.DEEP(), Strategy: parallel.DataParallel{FusionBuckets: 4},
		WeakScaling: true, Seed: 7,
	}
	res, err := FullProfiling(b, cfg, []int{2, 4, 6, 8, 10}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.Model == nil {
		t.Fatal("no model")
	}
	// Weak scaling: the full-profiling model must also grow.
	if res.Model.Predict(64) <= res.Model.Predict(2) {
		t.Errorf("full-profiling model flat: %s", res.Model.Function)
	}
	if res.ProfiledSeconds <= 0 {
		t.Error("no profiling cost recorded")
	}
	// 5 configs × 5 reps × 2 epochs ≈ 50 epoch executions ≈ 50× epoch
	// time; sanity: more than 10× one epoch.
	st, err := engine.Stats(b, func() engine.RunConfig { c := cfg; c.Ranks = 2; return c }())
	if err != nil {
		t.Fatal(err)
	}
	if res.ProfiledSeconds < 10*st.ExecTimePerEpoch {
		t.Errorf("profiled seconds %v implausibly low", res.ProfiledSeconds)
	}
}

func TestFullProfilingErrors(t *testing.T) {
	b := bench(t, "cifar10")
	cfg := engine.RunConfig{System: hardware.DEEP(), Strategy: parallel.DataParallel{}, WeakScaling: true}
	if _, err := FullProfiling(b, cfg, []int{2, 4, 6, 8, 10}, 0); err == nil {
		t.Error("zero reps accepted")
	}
	if _, err := FullProfiling(b, cfg, []int{2, 4}, 3); err == nil {
		t.Error("too few modeling points accepted")
	}
}
