// Package baseline implements the two comparison approaches the paper
// positions Extra-Deep against (Sections 1.1 and 4.3):
//
//   - An analytical performance model in the spirit of PALEO (Qi et al.)
//     and ParaDL (Kahira et al.): predict the training time per epoch from
//     first principles — layer FLOPs over peak device throughput plus
//     α–β communication terms — without any empirical measurement. Such
//     models are cheap but blind to everything not in their formulas
//     (framework overhead, input pipelines, contention, noise), which is
//     the paper's argument for empirical modeling.
//
//   - Classic Extra-P-style empirical modeling from full-run measurements:
//     the same PMNF machinery, but fed with end-to-end epoch wall times
//     from profiling entire epochs instead of Extra-Deep's sampled steps.
//     Accuracy matches Extra-Deep's (it measures the same quantity), but
//     the profiling cost is one-to-two orders of magnitude higher — the
//     trade-off Fig. 8 quantifies.
package baseline

import (
	"errors"
	"fmt"
	"math"

	"extradeep/internal/measurement"
	"extradeep/internal/modeling"
	"extradeep/internal/simulator/engine"
	"extradeep/internal/simulator/hardware"
	"extradeep/internal/simulator/network"
	"extradeep/internal/simulator/parallel"
)

// AnalyticalPrediction is the PALEO-style breakdown of one configuration.
type AnalyticalPrediction struct {
	// ComputePerStep is the forward+backward time per training step from
	// peak-FLOPS arithmetic.
	ComputePerStep float64
	// CommPerStep is the gradient-exchange time per step from ideal α–β
	// terms (no contention).
	CommPerStep float64
	// IOPerStep is the idealized input-pipeline time per step (raw bytes
	// over storage bandwidth, no preprocessing cost).
	IOPerStep float64
	// StepsPerEpoch is n_t.
	StepsPerEpoch int
	// EpochTime is the predicted training time per epoch.
	EpochTime float64
}

// Analytical computes the PALEO-style prediction for a configuration. It
// deliberately uses *peak* device numbers and ideal network terms — the
// information a first-principles model has without measuring — so its
// systematic optimism is intrinsic, not an implementation artifact.
func Analytical(b engine.Benchmark, sys hardware.System, strat parallel.Strategy, ranks int, weakScaling bool) (AnalyticalPrediction, error) {
	if err := b.Validate(); err != nil {
		return AnalyticalPrediction{}, err
	}
	if ranks < 1 {
		return AnalyticalPrediction{}, errors.New("baseline: ranks must be positive")
	}
	gpu := sys.GPU()
	batch := engine.PerWorkerBatch(b, strat, ranks, weakScaling)
	fraction := strat.ComputeFraction(ranks)

	// Compute: 3× forward FLOPs at PEAK single-precision throughput.
	peak := gpu.FP32TFLOPS * 1e12
	compute := b.Model.TrainFLOPs() * batch * fraction / peak

	// Communication: the strategy's collectives on an ideal, contention-
	// free fabric.
	var comm float64
	net := network.FromSystem(sys, ranks)
	net.ContentionPerNodeLog = 0
	net.KneeNodes = 0
	for _, op := range strat.StepComms(b.Model, ranks, int(math.Round(batch))) {
		sub := net
		if op.GroupRanks > 0 {
			sub = network.FromSystem(sys, op.GroupRanks)
			sub.ContentionPerNodeLog = 0
			sub.KneeNodes = 0
		}
		comm += float64(op.Count) * sub.Time(op.Op, op.Bytes)
	}

	// I/O: raw sample bytes over an ideal storage stream.
	io := b.Dataset.BytesPerSample * batch / 10e9

	ep := engine.EpochParams(b, strat, ranks, weakScaling)
	nt := ep.TrainSteps()
	if nt < 1 {
		return AnalyticalPrediction{}, fmt.Errorf("baseline: configuration yields %d steps per epoch", nt)
	}
	step := compute + comm + io
	return AnalyticalPrediction{
		ComputePerStep: compute,
		CommPerStep:    comm,
		IOPerStep:      io,
		StepsPerEpoch:  nt,
		EpochTime:      float64(nt)*step + float64(ep.ValSteps())*(compute/3+io),
	}, nil
}

// FullProfilingResult is the outcome of the Extra-P-style baseline.
type FullProfilingResult struct {
	// Model is the epoch-time model fitted on full-run wall times.
	Model *modeling.Model
	// ProfiledSeconds is the total simulated time spent executing
	// profiled epochs across all modeling configurations and repetitions.
	ProfiledSeconds float64
}

// FullProfiling models the training time per epoch the classic Extra-P
// way: profile entire epochs at every modeling configuration (here: take
// the simulated per-epoch wall time with run-level noise), then fit the
// PMNF to the end-to-end values. No kernels, no phases, no sampling.
func FullProfiling(b engine.Benchmark, cfg engine.RunConfig, modelingRanks []int, reps int) (*FullProfilingResult, error) {
	if reps < 1 {
		return nil, errors.New("baseline: need at least one repetition")
	}
	var points []measurement.Point
	var values []float64
	var profiled float64
	for _, ranks := range modelingRanks {
		c := cfg
		c.Ranks = ranks
		st, err := engine.Stats(b, c)
		if err != nil {
			return nil, err
		}
		var reps64 []float64
		for rep := 1; rep <= reps; rep++ {
			// Full profiling executes (and pays for) two epochs per
			// repetition, like the sampled strategy profiles two epochs.
			noisy := st.ExecTimePerEpoch * engine.RunNoiseFactor(b, c, rep)
			reps64 = append(reps64, noisy)
			profiled += 2 * noisy
		}
		med, _ := median(reps64)
		points = append(points, measurement.Point{float64(ranks)})
		values = append(values, med)
	}
	opts := modeling.DefaultOptions()
	if !cfg.WeakScaling {
		opts = modeling.StrongScalingOptions()
	}
	m, err := modeling.Fit(points, values, opts)
	if err != nil {
		return nil, err
	}
	return &FullProfilingResult{Model: m, ProfiledSeconds: profiled}, nil
}

func median(xs []float64) (float64, bool) {
	if len(xs) == 0 {
		return 0, false
	}
	tmp := append([]float64(nil), xs...)
	for i := 1; i < len(tmp); i++ {
		for j := i; j > 0 && tmp[j] < tmp[j-1]; j-- {
			tmp[j], tmp[j-1] = tmp[j-1], tmp[j]
		}
	}
	n := len(tmp)
	if n%2 == 1 {
		return tmp[n/2], true
	}
	return tmp[n/2-1]/2 + tmp[n/2]/2, true
}
