// Package propcheck is Extra-Deep's deterministic property-based and
// metamorphic testing engine. It provides seeded generator combinators,
// a greedy structural shrinker, and a runner whose failure reports always
// include a replayable seed:
//
//	propcheck: counterexample (seed 123456789) ...
//	replay: EDCHECK_SEED=123456789 go test -run '^TestProp...$' ./<pkg>
//
// Re-running a test with EDCHECK_SEED set replays exactly that one case
// (generation and shrinking are pure functions of the seed), so every
// red CI log is reproducible locally with a copy-paste. EDCHECK_ITERS
// multiplies every property's iteration budget; cmd/edcheck uses it for
// the long-haul pre-PR run.
//
// All randomness is drawn from math/rand sources seeded explicitly —
// never from the clock — so a property run is a deterministic function
// of (test name, config, environment).
//
//edlint:ignore-file wallclock propcheck is the seeded property-testing engine: every math/rand draw is derived from an explicit, replayable seed, never from the clock
package propcheck

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"os"
	"strconv"
	"strings"
)

// Environment variables honored by the runner.
const (
	// SeedEnv replays exactly one generation seed instead of the full
	// iteration sweep. Every failure report prints a ready-to-paste
	// assignment of this variable.
	SeedEnv = "EDCHECK_SEED"
	// ItersEnv multiplies every property's iteration count; cmd/edcheck
	// sets it for the long-haul run.
	ItersEnv = "EDCHECK_ITERS"
)

// Rand is the seeded randomness source handed to generators. It wraps
// math/rand deterministically: two Rands with the same seed produce the
// same draw sequence forever.
type Rand struct {
	src *rand.Rand
}

// NewRand returns a deterministic source for the given seed.
func NewRand(seed int64) *Rand {
	return &Rand{src: rand.New(rand.NewSource(seed))}
}

// Intn draws a uniform int in [0, n); n must be positive.
func (r *Rand) Intn(n int) int { return r.src.Intn(n) }

// IntRange draws a uniform int in [lo, hi] (inclusive).
func (r *Rand) IntRange(lo, hi int) int {
	if hi <= lo {
		return lo
	}
	return lo + r.src.Intn(hi-lo+1)
}

// Int64Range draws a uniform int64 in [lo, hi] (inclusive).
func (r *Rand) Int64Range(lo, hi int64) int64 {
	if hi <= lo {
		return lo
	}
	return lo + r.src.Int63n(hi-lo+1)
}

// Float64 draws a uniform float64 in [0, 1).
func (r *Rand) Float64() float64 { return r.src.Float64() }

// Float64Range draws a uniform finite float64 in [lo, hi).
func (r *Rand) Float64Range(lo, hi float64) float64 {
	if hi <= lo {
		return lo
	}
	return lo + r.src.Float64()*(hi-lo)
}

// NormFloat64 draws a standard normal value (always finite).
func (r *Rand) NormFloat64() float64 { return r.src.NormFloat64() }

// Bool draws a fair coin.
func (r *Rand) Bool() bool { return r.src.Intn(2) == 1 }

// Perm returns a random permutation of [0, n).
func (r *Rand) Perm(n int) []int { return r.src.Perm(n) }

// Shuffle permutes n elements via the given swap function.
func (r *Rand) Shuffle(n int, swap func(i, j int)) { r.src.Shuffle(n, swap) }

// TB is the subset of *testing.T the runner needs. Taking an interface
// lets propcheck's own self-tests capture failure reports and prove the
// seed-replay protocol works.
type TB interface {
	Helper()
	Name() string
	Logf(format string, args ...any)
	Errorf(format string, args ...any)
}

// Config tunes one property run. The zero value is ready to use.
type Config struct {
	// Iterations is the number of generated cases per run (default 100).
	// The EDCHECK_ITERS environment variable multiplies it.
	Iterations int
	// Seed overrides the base seed (default: FNV-1a of the test name, so
	// every property has a stable, distinct sweep).
	Seed int64
	// MaxShrink bounds the number of shrink candidates evaluated after a
	// failure (default 500).
	MaxShrink int
}

func (c Config) iterations() int {
	n := c.Iterations
	if n <= 0 {
		n = 100
	}
	if s := os.Getenv(ItersEnv); s != "" {
		if m, err := strconv.Atoi(s); err == nil && m > 1 {
			n *= m
		}
	}
	return n
}

func (c Config) maxShrink() int {
	if c.MaxShrink <= 0 {
		return 500
	}
	return c.MaxShrink
}

// Check runs prop against values drawn from g with the default Config,
// stopping at the first failure. See CheckConfig.
func Check[T any](t TB, g Gen[T], prop func(T) error) {
	t.Helper()
	CheckConfig(t, Config{}, g, prop)
}

// CheckConfig runs prop against cfg.Iterations values drawn from g. On
// the first failing case the input is greedily shrunk to a structurally
// minimal counterexample and reported together with the generation seed
// and a replay recipe. When the EDCHECK_SEED environment variable is set,
// exactly that one case runs instead of the sweep.
func CheckConfig[T any](t TB, cfg Config, g Gen[T], prop func(T) error) {
	t.Helper()
	if s := os.Getenv(SeedEnv); s != "" {
		seed, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Errorf("propcheck: invalid %s=%q: %v", SeedEnv, s, err)
			return
		}
		if !runCase(t, cfg, g, prop, seed, 0) {
			return
		}
		t.Logf("propcheck: %s=%d passed (replay)", SeedEnv, seed)
		return
	}
	base := cfg.Seed
	if base == 0 {
		base = nameSeed(t.Name())
	}
	iters := cfg.iterations()
	for i := 0; i < iters; i++ {
		if !runCase(t, cfg, g, prop, caseSeed(base, i), i) {
			return
		}
	}
}

// runCase generates, checks and (on failure) shrinks + reports one case.
// It returns false when the property failed.
func runCase[T any](t TB, cfg Config, g Gen[T], prop func(T) error, seed int64, iter int) bool {
	t.Helper()
	original := g.Generate(NewRand(seed))
	err := prop(original)
	if err == nil {
		return true
	}
	minimal, minErr, steps, tried := shrink(g, prop, original, err, cfg.maxShrink())
	report := &strings.Builder{}
	fmt.Fprintf(report, "propcheck: property failed at iteration %d (seed %d): %v\n", iter, seed, minErr)
	fmt.Fprintf(report, "  counterexample: %s\n", describe(g, minimal))
	if steps > 0 {
		fmt.Fprintf(report, "  shrunk in %d step(s) (%d candidate(s) tried) from: %s\n",
			steps, tried, describe(g, original))
	}
	fmt.Fprintf(report, "  replay: %s=%d go test -run '^%s$' ./...", SeedEnv, seed, rootTestName(t.Name()))
	t.Errorf("%s", report.String())
	return false
}

// describe renders a value for the failure report.
func describe[T any](g Gen[T], v T) string {
	if g.Describe != nil {
		return g.Describe(v)
	}
	return fmt.Sprintf("%#v", v)
}

// nameSeed derives a stable base seed from the test name, so distinct
// properties sweep distinct (but fixed) case sequences.
func nameSeed(name string) int64 {
	h := fnv.New64a()
	h.Write([]byte(name))
	return int64(h.Sum64() >> 1) // keep it positive for readable reports
}

// caseSeed derives the i-th generation seed from the base via a
// SplitMix64 finalizer: consecutive iterations get well-separated seeds,
// and one int64 fully identifies a case.
func caseSeed(base int64, i int) int64 {
	z := uint64(base) + uint64(i)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return int64(z >> 1)
}

// rootTestName strips subtest segments: "TestFoo/case_3" → "TestFoo".
func rootTestName(name string) string {
	if i := strings.IndexByte(name, '/'); i >= 0 {
		return name[:i]
	}
	return name
}
