package propcheck

// shrink greedily minimizes a failing input: it repeatedly asks the
// generator for simpler candidates and moves to the first one that still
// fails the property, until no candidate fails or the evaluation budget
// is spent. The walk is deterministic — candidate order comes from
// Gen.Shrink, which must itself be deterministic — so a replayed seed
// shrinks to the identical counterexample.
//
// It returns the minimal failing value, the error it produced, the
// number of accepted shrink steps, and the number of candidates tried.
func shrink[T any](g Gen[T], prop func(T) error, failing T, ferr error, budget int) (T, error, int, int) {
	if g.Shrink == nil {
		return failing, ferr, 0, 0
	}
	steps, tried := 0, 0
	for tried < budget {
		progressed := false
		for _, cand := range g.Shrink(failing) {
			tried++
			if err := prop(cand); err != nil {
				failing, ferr = cand, err
				steps++
				progressed = true
				break // greedy: restart from the simpler failing value
			}
			if tried >= budget {
				break
			}
		}
		if !progressed {
			break // local minimum: no simpler candidate still fails
		}
	}
	return failing, ferr, steps, tried
}
