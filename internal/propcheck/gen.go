package propcheck

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Gen describes how to generate — and optionally shrink and render —
// values of one type. Generate must be a pure function of the Rand it is
// given; Shrink must be deterministic and return candidates that are
// structurally strictly simpler than v (the shrinker guarantees
// termination by bounding candidate evaluations, but monotone candidates
// shrink much faster). Both extra fields may be nil.
type Gen[T any] struct {
	// Generate draws one value.
	Generate func(r *Rand) T
	// Shrink proposes simpler variants of a failing value, most
	// aggressive first. Nil disables shrinking.
	Shrink func(v T) []T
	// Describe renders a value in failure reports; nil falls back to %#v.
	Describe func(v T) string
}

// Const returns a generator that always yields v.
func Const[T any](v T) Gen[T] {
	return Gen[T]{Generate: func(*Rand) T { return v }}
}

// IntRange generates uniform ints in [lo, hi], shrinking toward lo.
func IntRange(lo, hi int) Gen[int] {
	return Gen[int]{
		Generate: func(r *Rand) int { return r.IntRange(lo, hi) },
		Shrink:   func(v int) []int { return shrinkInt(v, lo) },
	}
}

// Int64Range generates uniform int64s in [lo, hi], shrinking toward lo.
func Int64Range(lo, hi int64) Gen[int64] {
	return Gen[int64]{
		Generate: func(r *Rand) int64 { return r.Int64Range(lo, hi) },
		Shrink: func(v int64) []int64 {
			var out []int64
			for _, c := range shrinkLadder(v-lo, 0) {
				out = append(out, lo+c)
			}
			return out
		},
	}
}

// shrinkInt proposes candidates between floor and v, most aggressive
// first: the floor itself, then a binary ladder approaching v — ending
// at v−1, so a greedy re-check converges to the minimal failing value in
// O(log²) evaluations.
func shrinkInt(v, floor int) []int {
	var out []int
	for _, c := range shrinkLadder(int64(v)-int64(floor), 0) {
		out = append(out, floor+int(c))
	}
	return out
}

// shrinkLadder returns [floor, v−(v−floor)/2, v−(v−floor)/4, …, v−1]
// for v > floor (empty otherwise).
func shrinkLadder(v, floor int64) []int64 {
	if v <= floor {
		return nil
	}
	out := []int64{floor}
	for delta := (v - floor) / 2; delta > 0; delta /= 2 {
		out = append(out, v-delta)
	}
	return out
}

// Float64Range generates uniform finite float64s in [lo, hi), shrinking
// toward lo and toward round numbers. NaN and ±Inf are never produced.
func Float64Range(lo, hi float64) Gen[float64] {
	return Gen[float64]{
		Generate: func(r *Rand) float64 { return r.Float64Range(lo, hi) },
		Shrink: func(v float64) []float64 {
			var out []float64
			//edlint:ignore floateq candidate dedup: only proposals bit-distinct from v make shrink progress
			if t := math.Trunc(v); t != v && t >= lo {
				out = append(out, t) // drop the fractional part first
			}
			//edlint:ignore floateq candidate dedup: only proposals bit-distinct from v make shrink progress
			if mid := lo + (v-lo)/2; mid != v {
				out = append(out, mid)
			}
			//edlint:ignore floateq candidate dedup: only proposals bit-distinct from v make shrink progress
			if lo != v {
				out = append(out, lo)
			}
			return out
		},
	}
}

// Bool generates fair booleans, shrinking true → false.
func Bool() Gen[bool] {
	return Gen[bool]{
		Generate: func(r *Rand) bool { return r.Bool() },
		Shrink: func(v bool) []bool {
			if v {
				return []bool{false}
			}
			return nil
		},
	}
}

// OneOf picks uniformly among the given choices, shrinking toward
// earlier ones (put the simplest choice first).
func OneOf[T any](choices ...T) Gen[T] {
	return Gen[T]{
		Generate: func(r *Rand) T { return choices[r.Intn(len(choices))] },
	}
}

// SliceOf generates slices with length in [minLen, maxLen] whose
// elements come from elem. Shrinking removes elements down to minLen
// (halves first, then single elements) and then shrinks elements
// individually.
func SliceOf[T any](elem Gen[T], minLen, maxLen int) Gen[[]T] {
	return Gen[[]T]{
		Generate: func(r *Rand) []T {
			n := r.IntRange(minLen, maxLen)
			out := make([]T, n)
			for i := range out {
				out[i] = elem.Generate(r)
			}
			return out
		},
		Shrink: func(v []T) [][]T {
			var out [][]T
			// Structural cuts: drop the second half, then single elements.
			if len(v) > minLen {
				if keep := minLen + (len(v)-minLen)/2; keep < len(v) {
					out = append(out, append([]T(nil), v[:keep]...))
				}
				for i := len(v) - 1; i >= 0 && len(out) < 12; i-- {
					cut := make([]T, 0, len(v)-1)
					cut = append(cut, v[:i]...)
					cut = append(cut, v[i+1:]...)
					out = append(out, cut)
				}
			}
			// Element-wise shrinks, one element at a time.
			if elem.Shrink != nil {
				for i := range v {
					for _, sv := range elem.Shrink(v[i]) {
						cp := append([]T(nil), v...)
						cp[i] = sv
						out = append(out, cp)
						if len(out) >= 32 {
							return out
						}
					}
				}
			}
			return out
		},
	}
}

// MapOf generates maps with size in [minLen, maxLen]; duplicate keys
// drawn from key collapse, so sizes below minLen are possible when the
// key space is small. Shrinking drops entries (in sorted key order, for
// determinism) and shrinks values.
func MapOf[K comparable, V any](key Gen[K], val Gen[V], minLen, maxLen int) Gen[map[K]V] {
	return Gen[map[K]V]{
		Generate: func(r *Rand) map[K]V {
			n := r.IntRange(minLen, maxLen)
			out := make(map[K]V, n)
			for i := 0; i < n; i++ {
				out[key.Generate(r)] = val.Generate(r)
			}
			return out
		},
		Shrink: func(v map[K]V) []map[K]V {
			if len(v) <= minLen {
				return nil
			}
			keys := sortedKeys(v)
			var out []map[K]V
			for _, k := range keys {
				cp := make(map[K]V, len(v)-1)
				for _, kk := range keys {
					if kk != k {
						cp[kk] = v[kk]
					}
				}
				out = append(out, cp)
				if len(out) >= 16 {
					break
				}
			}
			return out
		},
		Describe: func(v map[K]V) string {
			// Render in sorted key order so identical maps always print
			// identically.
			var b strings.Builder
			b.WriteString("map{")
			for i, k := range sortedKeys(v) {
				if i > 0 {
					b.WriteString(", ")
				}
				fmt.Fprintf(&b, "%v:%v", k, v[k])
			}
			b.WriteString("}")
			return b.String()
		},
	}
}

// sortedKeys orders map keys by their rendered form — deterministic for
// any comparable key type.
func sortedKeys[K comparable, V any](m map[K]V) []K {
	keys := make([]K, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		return fmt.Sprint(keys[i]) < fmt.Sprint(keys[j])
	})
	return keys
}
