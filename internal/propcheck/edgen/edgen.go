// Package edgen provides propcheck generators for Extra-Deep's domain
// types: measurement points, training-setup parameters, per-rank traces
// with NVTX step/epoch spans, and profile sets following the canonical
// app.x{config}.mpi{rank}.r{rep} naming. Every generated value satisfies
// the type's own Validate contract, so invariant suites probe behaviour
// on valid inputs rather than tripping over boundary rejections.
package edgen

import (
	"fmt"

	"extradeep/internal/calltree"
	"extradeep/internal/epoch"
	"extradeep/internal/measurement"
	"extradeep/internal/profile"
	"extradeep/internal/propcheck"
	"extradeep/internal/trace"
)

// kernelPool is the kernel vocabulary generated traces draw from; names
// and kinds mirror what the NSight-style toolchain records (Table 2).
var kernelPool = []struct {
	name string
	kind calltree.Kind
}{
	{"EigenMetaKernel", calltree.KindCUDA},
	{"volta_sgemm_128x64_nn", calltree.KindCUDA},
	{"cudnn::winograd_fwd", calltree.KindCuDNN},
	{"MPI_Allreduce", calltree.KindMPI},
	{"ncclAllReduce", calltree.KindNCCL},
	{"cudaMemcpyHtoD", calltree.KindMemcpy},
}

// appPool is the application-name vocabulary for profile generation.
var appPool = []string{"cifar10", "mnist", "imdb", "resnet"}

// AppName generates an application name from a fixed pool.
func AppName() propcheck.Gen[string] {
	return propcheck.Gen[string]{
		Generate: func(r *propcheck.Rand) string { return appPool[r.Intn(len(appPool))] },
	}
}

// Point generates a measurement point with dims power-of-two-ish positive
// coordinates (the shapes real rank/batch configurations take), shrinking
// each coordinate toward 1.
func Point(dims int) propcheck.Gen[measurement.Point] {
	coord := propcheck.Gen[float64]{
		Generate: func(r *propcheck.Rand) float64 {
			v := float64(int64(1) << r.IntRange(0, 10)) // 1 … 1024
			if r.Intn(4) == 0 {
				v /= 2 // occasionally a fractional value like 0.5
			}
			return v
		},
		Shrink: func(v float64) []float64 {
			if v > 1 {
				return []float64{1, v / 2}
			}
			return nil
		},
	}
	slice := propcheck.SliceOf(coord, dims, dims)
	return propcheck.Gen[measurement.Point]{
		Generate: func(r *propcheck.Rand) measurement.Point {
			return measurement.Point(slice.Generate(r))
		},
		Shrink: func(v measurement.Point) []measurement.Point {
			var out []measurement.Point
			for _, c := range slice.Shrink([]float64(v)) {
				out = append(out, measurement.Point(c))
			}
			return out
		},
		Describe: func(v measurement.Point) string { return v.Key() },
	}
}

// EpochParams generates valid training-setup parameters within the exact
// float range of Eqs. 2–4: B ∈ [1,1024], D_t ≤ 1e9, D_v ≤ 1e7, M ∈
// {1,2,4,8} and G a multiple of M with G/M ≤ 4096 — so the floor
// arithmetic is exactly representable and comparable against a big-int
// oracle. Shrinking reduces the dataset sizes and parallel degrees.
func EpochParams() propcheck.Gen[epoch.Params] {
	return propcheck.Gen[epoch.Params]{
		Generate: func(r *propcheck.Rand) epoch.Params {
			m := float64(int64(1) << r.IntRange(0, 3)) // 1, 2, 4, 8
			return epoch.Params{
				BatchSize:     float64(r.IntRange(1, 1024)),
				TrainSamples:  float64(r.Int64Range(0, 1_000_000_000)),
				ValSamples:    float64(r.Int64Range(0, 10_000_000)),
				DataParallel:  m * float64(r.IntRange(1, 4096)),
				ModelParallel: m,
			}
		},
		Shrink: func(p epoch.Params) []epoch.Params {
			var out []epoch.Params
			add := func(q epoch.Params) {
				if q.Validate() == nil && q != p {
					out = append(out, q)
				}
			}
			q := p
			q.TrainSamples = 0
			add(q)
			q = p
			q.TrainSamples = float64(int64(p.TrainSamples) / 2)
			add(q)
			q = p
			q.ValSamples = 0
			add(q)
			q = p
			q.BatchSize = 1
			add(q)
			q = p
			q.DataParallel = p.ModelParallel
			add(q)
			q = p
			//edlint:ignore divguard ModelParallel is generated as 1<<k with k ≥ 0, never zero
			q.DataParallel, q.ModelParallel = p.DataParallel/p.ModelParallel, 1
			add(q)
			return out
		},
		Describe: func(p epoch.Params) string {
			return fmt.Sprintf("Params{B=%g Dt=%g Dv=%g G=%g M=%g}",
				p.BatchSize, p.TrainSamples, p.ValSamples, p.DataParallel, p.ModelParallel)
		},
	}
}

// TraceShape bounds the structure of generated traces.
type TraceShape struct {
	// MaxEpochs bounds the epoch count (≥ 1, default 3).
	MaxEpochs int
	// MaxTrainSteps and MaxValSteps bound the per-epoch step counts
	// (train ≥ 1, default 4; validation ≥ 0, default 2).
	MaxTrainSteps int
	MaxValSteps   int
	// MaxEventsPerStep bounds the kernel events inside one step
	// (default 4).
	MaxEventsPerStep int
}

func (s TraceShape) withDefaults() TraceShape {
	if s.MaxEpochs <= 0 {
		s.MaxEpochs = 3
	}
	if s.MaxTrainSteps <= 0 {
		s.MaxTrainSteps = 4
	}
	if s.MaxValSteps < 0 {
		s.MaxValSteps = 0
	} else if s.MaxValSteps == 0 {
		s.MaxValSteps = 2
	}
	if s.MaxEventsPerStep <= 0 {
		s.MaxEventsPerStep = 4
	}
	return s
}

// Trace generates a structurally valid per-rank trace: NVTX epoch spans
// containing ordered, non-overlapping train then validation step spans,
// each step holding kernel events drawn from a fixed vocabulary with
// finite non-negative timings. Generated traces always pass
// (*trace.Trace).Validate.
func Trace(shape TraceShape) propcheck.Gen[trace.Trace] {
	shape = shape.withDefaults()
	return propcheck.Gen[trace.Trace]{
		Generate: func(r *propcheck.Rand) trace.Trace {
			tr := trace.Trace{Rank: r.IntRange(0, 7)}
			cursor := r.Float64Range(0, 0.5)
			epochs := r.IntRange(1, shape.MaxEpochs)
			trainSteps := r.IntRange(1, shape.MaxTrainSteps)
			valSteps := r.IntRange(0, shape.MaxValSteps)
			for e := 0; e < epochs; e++ {
				epochStart := cursor
				emit := func(phase trace.Phase, idx int) {
					stepStart := cursor
					t := stepStart
					for k := r.IntRange(1, shape.MaxEventsPerStep); k > 0; k-- {
						kern := kernelPool[r.Intn(len(kernelPool))]
						ev := trace.Event{
							Name:     kern.name,
							Kind:     kern.kind,
							Callpath: "App->" + phase.String() + "->" + kern.name,
							Start:    t,
							Duration: r.Float64Range(0, 0.01),
						}
						if kern.kind == calltree.KindMemcpy {
							ev.Bytes = float64(r.IntRange(0, 1<<20))
						}
						tr.Events = append(tr.Events, ev)
						t = ev.End() + r.Float64Range(0, 0.001)
					}
					cursor = t + 0.001
					tr.Steps = append(tr.Steps, trace.StepSpan{
						Epoch: e, Index: idx, Phase: phase, Start: stepStart, End: cursor,
					})
					cursor += r.Float64Range(0, 0.002) // inter-step gap
				}
				for s := 0; s < trainSteps; s++ {
					emit(trace.PhaseTrain, s)
				}
				for s := 0; s < valSteps; s++ {
					emit(trace.PhaseValidation, s)
				}
				tr.Epochs = append(tr.Epochs, trace.EpochSpan{Index: e, Start: epochStart, End: cursor})
				cursor += 0.001
			}
			return tr
		},
		Describe: func(tr trace.Trace) string {
			return fmt.Sprintf("trace{rank=%d events=%d steps=%d epochs=%d}",
				tr.Rank, len(tr.Events), len(tr.Steps), len(tr.Epochs))
		},
	}
}

// SetShape bounds the structure of generated profile sets.
type SetShape struct {
	// Dims is the configuration dimensionality (default 1).
	Dims int
	// MaxConfigs, MaxRanks, MaxReps bound the set extent (defaults 4, 4,
	// 3; minimum 1 config, 1 rank, 1 rep each).
	MaxConfigs int
	MaxRanks   int
	MaxReps    int
	// Trace bounds the per-profile trace.
	Trace TraceShape
}

func (s SetShape) withDefaults() SetShape {
	if s.Dims <= 0 {
		s.Dims = 1
	}
	if s.MaxConfigs <= 0 {
		s.MaxConfigs = 4
	}
	if s.MaxRanks <= 0 {
		s.MaxRanks = 4
	}
	if s.MaxReps <= 0 {
		s.MaxReps = 3
	}
	return s
}

// Profile generates one valid single-rank profile (rank 0, rep 1) with a
// one-dimensional configuration.
func Profile() propcheck.Gen[*profile.Profile] {
	set := ProfileSet(SetShape{MaxConfigs: 1, MaxRanks: 1, MaxReps: 1})
	return propcheck.Gen[*profile.Profile]{
		Generate: func(r *propcheck.Rand) *profile.Profile { return set.Generate(r)[0] },
		Describe: func(p *profile.Profile) string { return p.FileName() },
	}
}

// ProfileSet generates the profiles of one application measured at
// several configurations, each with a full rank × repetition grid and
// canonical (app, config, rank, rep) identities — the input shape the
// ingest and aggregation pipelines expect. Every profile passes Validate.
// Shrinking drops trailing configurations down to one.
func ProfileSet(shape SetShape) propcheck.Gen[[]*profile.Profile] {
	shape = shape.withDefaults()
	point := Point(shape.Dims)
	tgen := Trace(shape.Trace)
	return propcheck.Gen[[]*profile.Profile]{
		Generate: func(r *propcheck.Rand) []*profile.Profile {
			app := appPool[r.Intn(len(appPool))]
			params := make([]string, shape.Dims)
			for i := range params {
				params[i] = fmt.Sprintf("x%d", i+1)
			}
			nConfigs := r.IntRange(1, shape.MaxConfigs)
			ranks := r.IntRange(1, shape.MaxRanks)
			reps := r.IntRange(1, shape.MaxReps)
			seen := map[string]bool{}
			var out []*profile.Profile
			for c := 0; c < nConfigs; c++ {
				pt := point.Generate(r)
				if seen[pt.Key()] {
					continue // collapsing duplicate configurations keeps identities unique
				}
				seen[pt.Key()] = true
				for rep := 1; rep <= reps; rep++ {
					for rank := 0; rank < ranks; rank++ {
						tr := tgen.Generate(r)
						tr.Rank = rank
						out = append(out, &profile.Profile{
							App:      app,
							Params:   append([]string(nil), params...),
							Config:   append([]float64(nil), pt...),
							Rank:     rank,
							Rep:      rep,
							WallTime: tr.TotalDuration(),
							Sampled:  false,
							Trace:    tr,
						})
					}
				}
			}
			return out
		},
		Shrink: func(v []*profile.Profile) [][]*profile.Profile {
			// Drop the profiles of the last configuration while more than
			// one configuration remains.
			groups := profile.GroupByConfig(v)
			keys := profile.SortedKeys(groups)
			if len(keys) <= 1 {
				return nil
			}
			var out []*profile.Profile
			for _, k := range keys[:len(keys)-1] {
				out = append(out, groups[k]...)
			}
			return [][]*profile.Profile{out}
		},
		Describe: func(v []*profile.Profile) string {
			groups := profile.GroupByConfig(v)
			return fmt.Sprintf("profiles{n=%d configs=%d}", len(v), len(groups))
		},
	}
}
