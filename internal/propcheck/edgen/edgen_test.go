package edgen

import (
	"fmt"
	"math"
	"testing"

	"extradeep/internal/epoch"
	"extradeep/internal/measurement"
	"extradeep/internal/profile"
	"extradeep/internal/propcheck"
	"extradeep/internal/trace"
)

// TestPropGeneratedTracesAreValid: every generated trace satisfies the
// trace package's own structural Validate contract.
func TestPropGeneratedTracesAreValid(t *testing.T) {
	propcheck.Check(t, Trace(TraceShape{}), func(tr trace.Trace) error {
		return tr.Validate()
	})
}

// TestPropGeneratedProfileSetsAreValid: every profile in a generated set
// passes Validate, carries its canonical file-name identity, and
// identities are unique across the set.
func TestPropGeneratedProfileSetsAreValid(t *testing.T) {
	propcheck.Check(t, ProfileSet(SetShape{}), func(ps []*profile.Profile) error {
		if len(ps) == 0 {
			return fmt.Errorf("empty profile set")
		}
		seen := map[string]bool{}
		for _, p := range ps {
			if err := p.Validate(); err != nil {
				return err
			}
			name := p.FileName()
			if seen[name] {
				return fmt.Errorf("duplicate identity %s", name)
			}
			seen[name] = true
			app, config, rank, rep, ok := profile.ParseFileName(name)
			if !ok || app != p.App || rank != p.Rank || rep != p.Rep || len(config) != len(p.Config) {
				return fmt.Errorf("file name %s does not round-trip", name)
			}
		}
		return nil
	})
}

// TestPropEpochParamsWithinOracleRange: generated setups validate, keep M
// dividing G, and stay inside the exactly-representable float range the
// big-int oracle comparison relies on.
func TestPropEpochParamsWithinOracleRange(t *testing.T) {
	propcheck.Check(t, EpochParams(), func(p epoch.Params) error {
		if err := p.Validate(); err != nil {
			return err
		}
		if math.Mod(p.DataParallel, p.ModelParallel) != 0 {
			return fmt.Errorf("M=%g does not divide G=%g", p.ModelParallel, p.DataParallel)
		}
		for _, v := range []float64{p.BatchSize, p.TrainSamples, p.ValSamples, p.DataParallel, p.ModelParallel} {
			//edlint:ignore floateq integrality check: a generated count must be exactly its own truncation
			if v != math.Trunc(v) || v > 1e9 {
				return fmt.Errorf("value %g outside the exact integer range", v)
			}
		}
		return nil
	})
}

// TestPropGeneratedPointsAreCanonical: points have the requested
// dimensionality and positive finite coordinates.
func TestPropGeneratedPointsAreCanonical(t *testing.T) {
	propcheck.Check(t, Point(2), func(pt measurement.Point) error {
		if len(pt) != 2 {
			return fmt.Errorf("point %v has %d dims, want 2", pt, len(pt))
		}
		for _, v := range pt {
			if !(v > 0) || math.IsInf(v, 0) {
				return fmt.Errorf("coordinate %v not positive finite", v)
			}
		}
		return nil
	})
}
