package propcheck

import (
	"errors"
	"fmt"
	"regexp"
	"strings"
	"testing"
)

// recorder is a TB that captures failure reports instead of failing, so
// the tests below can inspect (and replay) what the runner prints.
type recorder struct {
	name string
	logs []string
	errs []string
}

func (r *recorder) Helper()                      {}
func (r *recorder) Name() string                 { return r.name }
func (r *recorder) Logf(f string, args ...any)   { r.logs = append(r.logs, fmt.Sprintf(f, args...)) }
func (r *recorder) Errorf(f string, args ...any) { r.errs = append(r.errs, fmt.Sprintf(f, args...)) }
func (r *recorder) failure(t *testing.T) string {
	t.Helper()
	if len(r.errs) != 1 {
		t.Fatalf("want exactly 1 failure report, got %d: %v", len(r.errs), r.errs)
	}
	return r.errs[0]
}

var seedRe = regexp.MustCompile(`EDCHECK_SEED=(\d+) go test`)

// fromCounterexample cuts a failure report down to its replay-stable
// part: everything from the counterexample line on.
func fromCounterexample(report string) string {
	if i := strings.Index(report, "counterexample:"); i >= 0 {
		return report[i:]
	}
	return report
}

// errTooBig is the deliberately failing property used throughout: values
// above 50 fail, so the unique minimal counterexample is 51.
func errTooBig(v int) error {
	if v > 50 {
		return errors.New("value exceeds 50")
	}
	return nil
}

// TestFailureReportIsReplayableAndShrunk is the self-test required by the
// engine's contract: every failure report carries a replayable seed and a
// shrunk minimal counterexample, and re-running with EDCHECK_SEED set
// reproduces the identical report.
func TestFailureReportIsReplayableAndShrunk(t *testing.T) {
	rec := &recorder{name: "TestPropSelf"}
	Check[int](rec, IntRange(0, 100000), errTooBig)
	report := rec.failure(t)

	if !strings.Contains(report, "counterexample: 51") {
		t.Errorf("report did not shrink to the minimal counterexample 51:\n%s", report)
	}
	m := seedRe.FindStringSubmatch(report)
	if m == nil {
		t.Fatalf("report carries no EDCHECK_SEED replay recipe:\n%s", report)
	}
	if !strings.Contains(report, "go test -run '^TestPropSelf$'") {
		t.Errorf("replay recipe does not name the test:\n%s", report)
	}

	// Replay: with EDCHECK_SEED set, the runner must reproduce exactly
	// the same counterexample from just the seed. Compare from the
	// counterexample line on — only the sweep-iteration number in the
	// first line legitimately differs between sweep and replay.
	t.Setenv(SeedEnv, m[1])
	replay := &recorder{name: "TestPropSelf"}
	Check[int](replay, IntRange(0, 100000), errTooBig)
	got := replay.failure(t)
	if fromCounterexample(got) != fromCounterexample(report) {
		t.Errorf("replay diverged from the original report\n--- original ---\n%s\n--- replay ---\n%s", report, got)
	}
	if !strings.Contains(got, "seed "+m[1]) {
		t.Errorf("replay report does not carry the replayed seed %s:\n%s", m[1], got)
	}
}

// TestReplayOfPassingSeedLogs: a seed whose case passes must not fail the
// test, and must say it was a replay.
func TestReplayOfPassingSeedLogs(t *testing.T) {
	t.Setenv(SeedEnv, "7")
	rec := &recorder{name: "TestPropSelf"}
	Check[int](rec, Const(1), errTooBig)
	if len(rec.errs) != 0 {
		t.Fatalf("passing replay reported failure: %v", rec.errs)
	}
	if len(rec.logs) != 1 || !strings.Contains(rec.logs[0], "replay") {
		t.Fatalf("passing replay did not log: %v", rec.logs)
	}
}

// TestSweepIsDeterministic: the generated case sequence is a pure
// function of the test name and config.
func TestSweepIsDeterministic(t *testing.T) {
	draw := func() []int {
		var seen []int
		rec := &recorder{name: "TestPropSweep"}
		CheckConfig[int](rec, Config{Iterations: 50}, IntRange(0, 1<<30), func(v int) error {
			seen = append(seen, v)
			return nil
		})
		return seen
	}
	a, b := draw(), draw()
	if len(a) != 50 {
		t.Fatalf("want 50 cases, got %d", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("case %d diverged between identical sweeps: %d vs %d", i, a[i], b[i])
		}
	}
}

// TestSliceShrinkIsStructurallyMinimal: a property failing on "any
// element > 10" must shrink to a single-element slice holding 11.
func TestSliceShrinkIsStructurallyMinimal(t *testing.T) {
	rec := &recorder{name: "TestPropSlices"}
	g := SliceOf(IntRange(0, 1000), 0, 20)
	Check[[]int](rec, g, func(v []int) error {
		for _, x := range v {
			if x > 10 {
				return errors.New("element exceeds 10")
			}
		}
		return nil
	})
	report := rec.failure(t)
	if !strings.Contains(report, "counterexample: []int{11}") {
		t.Errorf("slice did not shrink to []int{11}:\n%s", report)
	}
}

// TestFloatGeneratorsAreFinite: floats-without-NaN is a generator
// invariant the whole suite relies on.
func TestFloatGeneratorsAreFinite(t *testing.T) {
	CheckConfig[float64](t, Config{Iterations: 2000}, Float64Range(-1e300, 1e300), func(v float64) error {
		//edlint:ignore floateq v != v is the NaN test this property exists to enforce
		if v != v || v > 1e308 || v < -1e308 {
			return fmt.Errorf("non-finite draw %v", v)
		}
		return nil
	})
}

// TestMapGeneratorRespectsBoundsAndShrinks: maps stay within size bounds
// and shrink by dropping entries deterministically.
func TestMapGeneratorRespectsBoundsAndShrinks(t *testing.T) {
	g := MapOf(IntRange(0, 1000), IntRange(0, 9), 0, 8)
	CheckConfig[map[int]int](t, Config{Iterations: 300}, g, func(m map[int]int) error {
		if len(m) > 8 {
			return fmt.Errorf("map of size %d exceeds bound", len(m))
		}
		return nil
	})

	rec := &recorder{name: "TestPropMaps"}
	Check[map[int]int](rec, g, func(m map[int]int) error {
		if len(m) >= 2 {
			return errors.New("too many entries")
		}
		return nil
	})
	if !strings.Contains(rec.failure(t), "counterexample: map{") {
		t.Errorf("map failure not rendered with deterministic key order:\n%s", rec.errs)
	}
	// The minimal failing map has exactly 2 entries.
	if c := rec.failure(t); strings.Count(c[strings.Index(c, "map{"):strings.Index(c, "}")], ":") != 2 {
		t.Errorf("map did not shrink to 2 entries:\n%s", c)
	}
}

// TestItersEnvMultiplies: EDCHECK_ITERS scales the iteration budget —
// the hook cmd/edcheck uses for the long-haul run.
func TestItersEnvMultiplies(t *testing.T) {
	t.Setenv(ItersEnv, "3")
	count := 0
	CheckConfig[int](t, Config{Iterations: 10}, IntRange(0, 1), func(int) error {
		count++
		return nil
	})
	if count != 30 {
		t.Fatalf("EDCHECK_ITERS=3 with 10 iterations ran %d cases, want 30", count)
	}
}

// TestIntShrinkLadder: the ladder proposes the floor first and ends just
// below the failing value, so greedy descent terminates at the boundary.
func TestIntShrinkLadder(t *testing.T) {
	got := shrinkInt(1000, 0)
	if got[0] != 0 {
		t.Errorf("first candidate %d, want the floor 0", got[0])
	}
	if got[len(got)-1] != 999 {
		t.Errorf("last candidate %d, want 999", got[len(got)-1])
	}
	if len(shrinkInt(5, 5)) != 0 {
		t.Errorf("shrinking a value at its floor must propose nothing")
	}
}
