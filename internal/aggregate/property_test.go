package aggregate

import (
	"math"
	"math/rand"
	"testing"

	"extradeep/internal/measurement"
	"extradeep/internal/profile"
)

// Property: scaling every event duration by a constant k scales the
// aggregated time values by k (the pipeline is homogeneous of degree 1 in
// durations), while visits stay unchanged.
func TestAggregateHomogeneityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 20; trial++ {
		k := 0.25 + rng.Float64()*4
		base := makeProfiles(2, 2, 0.01, 0.002)
		scaled := makeProfiles(2, 2, 0.01, 0.002)
		for _, p := range scaled {
			for i := range p.Trace.Events {
				p.Trace.Events[i].Duration *= k
			}
			// Keep steps/epochs valid: scale spans too.
			for i := range p.Trace.Steps {
				p.Trace.Steps[i].Start *= k
				p.Trace.Steps[i].End *= k
			}
			for i := range p.Trace.Epochs {
				p.Trace.Epochs[i].Start *= k
				p.Trace.Epochs[i].End *= k
			}
			for i := range p.Trace.Events {
				p.Trace.Events[i].Start *= k
			}
		}
		a, err := Aggregate(base, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		b, err := Aggregate(scaled, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		for path, ka := range a.Kernels {
			kb := b.Kernels[path]
			if kb == nil {
				t.Fatalf("kernel %s lost", path)
			}
			ta := ka.Value[measurement.MetricTime]
			tb := kb.Value[measurement.MetricTime]
			if math.Abs(tb.Train-k*ta.Train) > 1e-9*(1+tb.Train) {
				t.Fatalf("%s: train %v, want %v×%v", path, tb.Train, k, ta.Train)
			}
			va := ka.Value[measurement.MetricVisits]
			vb := kb.Value[measurement.MetricVisits]
			if va != vb {
				t.Fatalf("%s: visits changed under duration scaling", path)
			}
		}
	}
}

// Property: the order in which profiles are passed to Aggregate does not
// change the result (grouping by repetition and rank is internal).
func TestAggregateOrderInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 10; trial++ {
		ordered := makeProfiles(3, 3, 0.01, 0.002)
		shuffled := append([]*profile.Profile(nil), ordered...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		a, err := Aggregate(ordered, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		b, err := Aggregate(shuffled, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		for path, ka := range a.Kernels {
			kb := b.Kernels[path]
			if kb == nil {
				t.Fatalf("kernel %s lost under permutation", path)
			}
			if ka.Value[measurement.MetricTime] != kb.Value[measurement.MetricTime] {
				t.Fatalf("%s: aggregate changed under profile permutation", path)
			}
		}
	}
}

// Property: aggregated per-step time values are bounded by the longest
// profiled step duration (a kernel cannot spend more time in a step than
// the step itself, modulo the asynchronously attributed events).
func TestAggregateBoundedByStepProperty(t *testing.T) {
	profiles := makeProfiles(3, 2, 0.01, 0.002)
	var maxStep float64
	for _, p := range profiles {
		for _, s := range p.Trace.Steps {
			if d := s.Duration(); d > maxStep {
				maxStep = d
			}
		}
	}
	agg, err := Aggregate(profiles, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Allow a small slack for between-step async attribution.
	limit := maxStep * 1.2
	for path, k := range agg.Kernels {
		v := k.Value[measurement.MetricTime]
		if v.Train > limit || v.Validation > limit {
			t.Errorf("%s: per-step value %v exceeds max step %v", path, v, maxStep)
		}
	}
}
