package aggregate_test

import (
	"fmt"
	"math"
	"reflect"
	"testing"

	"extradeep/internal/aggregate"
	"extradeep/internal/measurement"
	"extradeep/internal/profile"
	"extradeep/internal/propcheck"
	"extradeep/internal/propcheck/edgen"
)

// permCase pairs the profiles of one configuration with a permutation of
// their order.
type permCase struct {
	profiles []*profile.Profile
	perm     []int
}

func permCaseGen() propcheck.Gen[permCase] {
	set := edgen.ProfileSet(edgen.SetShape{MaxConfigs: 1, MaxRanks: 4, MaxReps: 3})
	return propcheck.Gen[permCase]{
		Generate: func(r *propcheck.Rand) permCase {
			ps := set.Generate(r)
			return permCase{profiles: ps, perm: r.Perm(len(ps))}
		},
		Describe: func(c permCase) string {
			return fmt.Sprintf("{profiles=%d perm=%v}", len(c.profiles), c.perm)
		},
	}
}

// TestPropAggregatePermutationInvariance: aggregation over one
// configuration is invariant under any reordering of the input profiles —
// the median over steps, ranks and repetitions (Eq. 1, Fig. 2) does not
// depend on file-listing order.
func TestPropAggregatePermutationInvariance(t *testing.T) {
	propcheck.Check(t, permCaseGen(), func(c permCase) error {
		a, err := aggregate.Aggregate(c.profiles, aggregate.DefaultOptions())
		if err != nil {
			return fmt.Errorf("aggregating original order: %w", err)
		}
		shuffled := make([]*profile.Profile, len(c.profiles))
		for i, j := range c.perm {
			shuffled[i] = c.profiles[j]
		}
		b, err := aggregate.Aggregate(shuffled, aggregate.DefaultOptions())
		if err != nil {
			return fmt.Errorf("aggregating permuted order: %w", err)
		}
		if !reflect.DeepEqual(a, b) {
			return fmt.Errorf("aggregate differs after permuting %d profiles", len(c.profiles))
		}
		return nil
	})
}

// TestPropAggregateDuplicateRepIdempotence: measuring every repetition
// twice (under fresh repetition indices) leaves the final median
// aggregates unchanged — the median of a duplicated multiset is the median
// of the original.
func TestPropAggregateDuplicateRepIdempotence(t *testing.T) {
	set := edgen.ProfileSet(edgen.SetShape{MaxConfigs: 1, MaxRanks: 3, MaxReps: 3})
	propcheck.Check(t, set, func(ps []*profile.Profile) error {
		orig, err := aggregate.Aggregate(ps, aggregate.DefaultOptions())
		if err != nil {
			return fmt.Errorf("aggregating original: %w", err)
		}
		maxRep := 0
		for _, p := range ps {
			if p.Rep > maxRep {
				maxRep = p.Rep
			}
		}
		doubled := append([]*profile.Profile(nil), ps...)
		for _, p := range ps {
			cp := *p
			cp.Rep = p.Rep + maxRep
			doubled = append(doubled, &cp)
		}
		dup, err := aggregate.Aggregate(doubled, aggregate.DefaultOptions())
		if err != nil {
			return fmt.Errorf("aggregating duplicated reps: %w", err)
		}
		for path, ka := range orig.Kernels {
			kb, ok := dup.Kernels[path]
			if !ok {
				return fmt.Errorf("kernel %s vanished after duplication", path)
			}
			for metric, va := range ka.Value {
				vb := kb.Value[metric]
				if !closeStepValue(va, vb) {
					return fmt.Errorf("kernel %s %s: value %+v changed to %+v after duplicating reps",
						path, metric, va, vb)
				}
			}
		}
		for cat, byMetric := range orig.Categories {
			for metric, va := range byMetric {
				vb := dup.Categories[cat][metric]
				if !closeStepValue(va, vb) {
					return fmt.Errorf("category %v %s: value %+v changed to %+v after duplicating reps",
						cat, metric, va, vb)
				}
			}
		}
		return nil
	})
}

func closeStepValue(a, b aggregate.StepValue) bool {
	tol := func(x, y float64) bool { return math.Abs(x-y) <= 1e-12*(1+math.Abs(x)) }
	return tol(a.Train, b.Train) && tol(a.Validation, b.Validation)
}

// TestPropAggregateBoundedByStepDuration: the aggregated per-step time of
// any kernel never exceeds the longest step span it was observed in — a
// kernel cannot take longer than the step containing it.
func TestPropAggregateBoundedByStepDuration(t *testing.T) {
	set := edgen.ProfileSet(edgen.SetShape{MaxConfigs: 1, MaxRanks: 3, MaxReps: 2})
	propcheck.Check(t, set, func(ps []*profile.Profile) error {
		agg, err := aggregate.Aggregate(ps, aggregate.DefaultOptions())
		if err != nil {
			return fmt.Errorf("aggregating: %w", err)
		}
		maxStep := 0.0
		for _, p := range ps {
			for _, s := range p.Trace.Steps {
				if d := s.Duration(); d > maxStep {
					maxStep = d
				}
			}
		}
		for path, k := range agg.Kernels {
			sv := k.Value[measurement.MetricTime]
			if sv.Train > maxStep+1e-9 || sv.Validation > maxStep+1e-9 {
				return fmt.Errorf("kernel %s per-step time %+v exceeds longest step %g", path, sv, maxStep)
			}
		}
		return nil
	})
}
