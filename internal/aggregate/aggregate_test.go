package aggregate

import (
	"testing"

	"extradeep/internal/calltree"
	"extradeep/internal/mathutil"
	"extradeep/internal/measurement"
	"extradeep/internal/profile"
	"extradeep/internal/trace"
)

// makeTrace builds a trace with the given number of epochs, train steps
// per epoch and one validation step per epoch. kernelDur is the duration
// the compute kernel runs per step; commDur the MPI time per train step.
func makeTrace(rank, epochs, trainSteps int, kernelDur, commDur float64) trace.Trace {
	tr := trace.Trace{Rank: rank}
	t := 0.0
	for e := 0; e < epochs; e++ {
		epochStart := t
		for s := 0; s < trainSteps; s++ {
			start := t
			dur := kernelDur
			if e == 0 {
				dur *= 3 // warm-up distortion in epoch 0
			}
			tr.Events = append(tr.Events,
				trace.Event{Name: "EigenMetaKernel", Kind: calltree.KindCUDA, Callpath: "App->train->EigenMetaKernel", Start: start + 0.001, Duration: dur},
				trace.Event{Name: "MPI_Allreduce", Kind: calltree.KindMPI, Callpath: "App->train->MPI_Allreduce", Start: start + 0.001 + dur, Duration: commDur},
				trace.Event{Name: "Memcpy HtoD", Kind: calltree.KindMemcpy, Callpath: "App->train->Memcpy HtoD", Start: start + 0.0005, Duration: 0.0002, Bytes: 4096},
			)
			stepEnd := start + 0.001 + dur + commDur + 0.001
			tr.Steps = append(tr.Steps, trace.StepSpan{Epoch: e, Index: s, Phase: trace.PhaseTrain, Start: start, End: stepEnd})
			t = stepEnd
			// Async event between steps.
			tr.Events = append(tr.Events,
				trace.Event{Name: "Memcpy DtoH", Kind: calltree.KindMemcpy, Callpath: "App->train->Memcpy DtoH", Start: t + 0.0001, Duration: 0.0003, Bytes: 2048})
			t += 0.001
		}
		// Validation step.
		vStart := t
		tr.Events = append(tr.Events,
			trace.Event{Name: "EigenMetaKernel", Kind: calltree.KindCUDA, Callpath: "App->test->EigenMetaKernel", Start: vStart + 0.001, Duration: kernelDur / 2})
		vEnd := vStart + 0.001 + kernelDur/2 + 0.001
		tr.Steps = append(tr.Steps, trace.StepSpan{Epoch: e, Index: trainSteps, Phase: trace.PhaseValidation, Start: vStart, End: vEnd})
		t = vEnd
		tr.Epochs = append(tr.Epochs, trace.EpochSpan{Index: e, Start: epochStart, End: t})
		t += 0.002
	}
	tr.Sort()
	return tr
}

func makeProfiles(ranks, reps int, kernelDur, commDur float64) []*profile.Profile {
	var out []*profile.Profile
	for rep := 1; rep <= reps; rep++ {
		for rank := 0; rank < ranks; rank++ {
			out = append(out, &profile.Profile{
				App:      "cifar10",
				Params:   []string{"p"},
				Config:   []float64{float64(ranks)},
				Rank:     rank,
				Rep:      rep,
				WallTime: 1.5,
				Sampled:  true,
				Trace:    makeTrace(rank, 2, 5, kernelDur, commDur),
			})
		}
	}
	return out
}

func TestAggregateEmpty(t *testing.T) {
	if _, err := Aggregate(nil, DefaultOptions()); err == nil {
		t.Error("empty input accepted")
	}
}

func TestAggregateMixedConfigsRejected(t *testing.T) {
	a := makeProfiles(2, 1, 0.01, 0.002)
	b := makeProfiles(4, 1, 0.01, 0.002)
	if _, err := Aggregate(append(a, b...), DefaultOptions()); err == nil {
		t.Error("mixed configurations accepted")
	}
}

func TestAggregateBasicStructure(t *testing.T) {
	agg, err := Aggregate(makeProfiles(4, 3, 0.01, 0.002), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if agg.App != "cifar10" || !mathutil.Close(agg.Point[0], 4) {
		t.Errorf("identity wrong: %s %v", agg.App, agg.Point)
	}
	if agg.Reps != 3 {
		t.Errorf("Reps = %d, want 3", agg.Reps)
	}
	if agg.TrainSteps != 5 || agg.ValidationSteps != 1 {
		t.Errorf("steps = %d/%d, want 5/1", agg.TrainSteps, agg.ValidationSteps)
	}
	for _, want := range []string{
		"App->train->EigenMetaKernel",
		"App->train->MPI_Allreduce",
		"App->train->Memcpy HtoD",
		"App->train->Memcpy DtoH",
		"App->test->EigenMetaKernel",
	} {
		if agg.Kernels[want] == nil {
			t.Errorf("kernel %q missing", want)
		}
	}
}

func TestAggregateSkipsWarmupEpoch(t *testing.T) {
	// Epoch 0 has 3× kernel durations; with warm-up skipping, the
	// aggregated kernel time must reflect epoch 1 only.
	agg, err := Aggregate(makeProfiles(2, 1, 0.01, 0.002), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	k := agg.Kernels["App->train->EigenMetaKernel"]
	got := k.Value[measurement.MetricTime].Train
	if got < 0.009 || got > 0.011 {
		t.Errorf("train time = %v, want ≈0.01 (epoch-1 value)", got)
	}
}

func TestAggregateWithoutWarmupSkipping(t *testing.T) {
	opts := Options{SkipWarmupEpochs: 0}
	agg, err := Aggregate(makeProfiles(2, 1, 0.01, 0.002), opts)
	if err != nil {
		t.Fatal(err)
	}
	k := agg.Kernels["App->train->EigenMetaKernel"]
	got := k.Value[measurement.MetricTime].Train
	// Median over 10 steps (5 at 0.03, 5 at 0.01) = 0.02.
	if got < 0.019 || got > 0.021 {
		t.Errorf("train time = %v, want ≈0.02 (median across both epochs)", got)
	}
}

func TestAggregateVisitsMetric(t *testing.T) {
	agg, err := Aggregate(makeProfiles(2, 1, 0.01, 0.002), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	k := agg.Kernels["App->train->EigenMetaKernel"]
	if got := k.Value[measurement.MetricVisits].Train; !mathutil.Close(got, 1) {
		t.Errorf("visits per train step = %v, want 1", got)
	}
	v := agg.Kernels["App->test->EigenMetaKernel"]
	if got := v.Value[measurement.MetricVisits].Validation; !mathutil.Close(got, 1) {
		t.Errorf("visits per validation step = %v, want 1", got)
	}
}

func TestAggregateBytesOnlyForMemoryOps(t *testing.T) {
	agg, err := Aggregate(makeProfiles(2, 1, 0.01, 0.002), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	mem := agg.Kernels["App->train->Memcpy HtoD"]
	if got := mem.Value[measurement.MetricBytes].Train; !mathutil.Close(got, 4096) {
		t.Errorf("memcpy bytes = %v, want 4096", got)
	}
	comp := agg.Kernels["App->train->EigenMetaKernel"]
	if _, ok := comp.Value[measurement.MetricBytes]; ok {
		t.Error("compute kernel carries a bytes metric")
	}
}

func TestAggregateAsyncEventsAttributedToFollowingStep(t *testing.T) {
	agg, err := Aggregate(makeProfiles(2, 1, 0.01, 0.002), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	async := agg.Kernels["App->train->Memcpy DtoH"]
	if async == nil {
		t.Fatal("async kernel missing")
	}
	// The DtoH copy fires after each train step; attributed to the
	// following step it appears in train steps (and the validation step
	// absorbs the copy after the last train step of the epoch).
	if async.Value[measurement.MetricTime].Train <= 0 {
		t.Error("async kernel has no train-step time")
	}
}

func TestAggregateValidationSeparatedFromTrain(t *testing.T) {
	agg, err := Aggregate(makeProfiles(2, 1, 0.01, 0.002), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	v := agg.Kernels["App->test->EigenMetaKernel"]
	if v.Value[measurement.MetricTime].Train != 0 {
		t.Error("validation kernel leaked into train phase")
	}
	if got := v.Value[measurement.MetricTime].Validation; got < 0.004 || got > 0.006 {
		t.Errorf("validation time = %v, want ≈0.005", got)
	}
}

func TestAggregateCategories(t *testing.T) {
	agg, err := Aggregate(makeProfiles(2, 1, 0.01, 0.002), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	comp := agg.Categories[calltree.CategoryComputation][measurement.MetricTime]
	comm := agg.Categories[calltree.CategoryCommunication][measurement.MetricTime]
	mem := agg.Categories[calltree.CategoryMemory][measurement.MetricTime]
	if comp.Train < 0.009 {
		t.Errorf("computation train = %v", comp.Train)
	}
	if comm.Train < 0.0019 || comm.Train > 0.0021 {
		t.Errorf("communication train = %v, want ≈0.002", comm.Train)
	}
	if mem.Train <= 0 {
		t.Errorf("memory train = %v", mem.Train)
	}
	if comm.Validation != 0 {
		t.Error("communication leaked into validation")
	}
}

func TestAggregateCategoryIsSumOfKernels(t *testing.T) {
	agg, err := Aggregate(makeProfiles(2, 2, 0.01, 0.002), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, k := range agg.Kernels {
		if k.Category() == calltree.CategoryComputation {
			sum += k.Value[measurement.MetricTime].Train
		}
	}
	got := agg.Categories[calltree.CategoryComputation][measurement.MetricTime].Train
	if diff := got - sum; diff > 1e-12 || diff < -1e-12 {
		t.Errorf("category sum = %v, kernel sum = %v", got, sum)
	}
}

func TestAggregatePerRepLengths(t *testing.T) {
	agg, err := Aggregate(makeProfiles(2, 4, 0.01, 0.002), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range agg.Kernels {
		for metric, perRep := range k.PerRep {
			if len(perRep) != 4 {
				t.Errorf("kernel %s metric %s: perRep len = %d, want 4", k.Callpath, metric, len(perRep))
			}
		}
	}
	for cat, byMetric := range agg.CategoriesPerRep {
		for metric, perRep := range byMetric {
			if len(perRep) != 4 {
				t.Errorf("category %v metric %s: perRep len = %d, want 4", cat, metric, len(perRep))
			}
		}
	}
}

func TestAggregateRanksCount(t *testing.T) {
	agg, err := Aggregate(makeProfiles(3, 2, 0.01, 0.002), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	k := agg.Kernels["App->train->EigenMetaKernel"]
	if k.Ranks != 3 {
		t.Errorf("Ranks = %d, want 3", k.Ranks)
	}
	if k.StepsObserved == 0 {
		t.Error("StepsObserved = 0")
	}
}

func TestAggregateMedianRobustAcrossRanks(t *testing.T) {
	// One rank is 10× slower (straggler); the median over ranks should
	// stay near the typical value.
	profiles := makeProfiles(5, 1, 0.01, 0.002)
	slow := makeTrace(4, 2, 5, 0.1, 0.002)
	profiles[4].Trace = slow
	agg, err := Aggregate(profiles, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	got := agg.Kernels["App->train->EigenMetaKernel"].Value[measurement.MetricTime].Train
	if got > 0.02 {
		t.Errorf("median over ranks = %v, straggler leaked in", got)
	}
}

func TestAggregateMeanOption(t *testing.T) {
	profiles := makeProfiles(5, 1, 0.01, 0.002)
	profiles[4].Trace = makeTrace(4, 2, 5, 0.1, 0.002)
	opts := DefaultOptions()
	opts.UseMean = true
	agg, err := Aggregate(profiles, opts)
	if err != nil {
		t.Fatal(err)
	}
	got := agg.Kernels["App->train->EigenMetaKernel"].Value[measurement.MetricTime].Train
	if got < 0.02 {
		t.Errorf("mean over ranks = %v, should be dragged by straggler", got)
	}
}

func TestAggregateWallTimes(t *testing.T) {
	agg, err := Aggregate(makeProfiles(2, 2, 0.01, 0.002), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(agg.WallTimes) != 4 {
		t.Errorf("WallTimes = %d entries, want 4", len(agg.WallTimes))
	}
}

func TestSortedKernels(t *testing.T) {
	agg, err := Aggregate(makeProfiles(2, 1, 0.01, 0.002), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	ks := agg.SortedKernels()
	for i := 1; i < len(ks); i++ {
		if ks[i-1].Callpath >= ks[i].Callpath {
			t.Fatalf("kernels not sorted: %q before %q", ks[i-1].Callpath, ks[i].Callpath)
		}
	}
}

func TestStepValueAdd(t *testing.T) {
	a := StepValue{Train: 1, Validation: 2}
	b := StepValue{Train: 3, Validation: 4}
	c := a.Add(b)
	if !mathutil.Close(c.Train, 4) || !mathutil.Close(c.Validation, 6) {
		t.Errorf("Add = %+v", c)
	}
}

func TestSingleEpochTraceUsedAsIs(t *testing.T) {
	// A trace with a single epoch cannot lose it to warm-up skipping.
	var profiles []*profile.Profile
	for rank := 0; rank < 2; rank++ {
		profiles = append(profiles, &profile.Profile{
			App: "x", Params: []string{"p"}, Config: []float64{2},
			Rank: rank, Rep: 1,
			Trace: makeTrace(rank, 1, 3, 0.01, 0.001),
		})
	}
	agg, err := Aggregate(profiles, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	k := agg.Kernels["App->train->EigenMetaKernel"]
	// Epoch 0 is the warm-up epoch with 3× duration, but it is the only
	// epoch, so its data must be used.
	got := k.Value[measurement.MetricTime].Train
	if got < 0.029 || got > 0.031 {
		t.Errorf("single-epoch value = %v, want ≈0.03", got)
	}
}
