// Package aggregate implements Extra-Deep's measurement preprocessing and
// aggregation pipeline (Fig. 2 of the paper), which makes the efficient
// sampling strategy possible:
//
//  1. Within each profiled training/validation step, all metric values of a
//     kernel's executions are summed (Eq. 1), yielding v_nkr for step n,
//     rank k, repetition r. Kernels executed asynchronously between two
//     steps are attributed to the following step and aggregated the same
//     way.
//  2. Per rank and repetition, the median over steps gives ṽ_kr.
//  3. Per repetition, the median over ranks gives Ṽ_r, and the median over
//     repetitions gives Ṽ.
//  4. Kernels observed in fewer than five application configurations are
//     filtered out before modeling (handled by
//     measurement.Experiment.FilterInsufficient).
//
// Training and validation steps are aggregated separately because the
// epoch extrapolation (Eq. 4) weighs them with different step counts.
// The first epoch is treated as warm-up and excluded, mirroring the
// paper's handling of framework initialization effects.
package aggregate

import (
	"errors"
	"fmt"
	"sort"

	"extradeep/internal/calltree"
	"extradeep/internal/mathutil"
	"extradeep/internal/measurement"
	"extradeep/internal/profile"
	"extradeep/internal/trace"
)

// Options configures the aggregation pipeline.
type Options struct {
	// SkipWarmupEpochs is the number of leading epochs whose measurements
	// are discarded. The default (when the trace has more than one epoch)
	// is 1, per the paper. Traces with a single epoch are used as-is.
	SkipWarmupEpochs int
	// UseMean aggregates with means instead of medians across steps,
	// ranks and repetitions (for the noise-resilience ablation).
	UseMean bool
}

// DefaultOptions returns the paper's configuration: one warm-up epoch
// skipped, median aggregation.
func DefaultOptions() Options { return Options{SkipWarmupEpochs: 1} }

// StepValue carries a per-step metric value separated by phase.
type StepValue struct {
	// Train is the per-training-step value.
	Train float64
	// Validation is the per-validation-step value.
	Validation float64
}

// Add returns the component-wise sum of two step values.
func (v StepValue) Add(w StepValue) StepValue {
	return StepValue{Train: v.Train + w.Train, Validation: v.Validation + w.Validation}
}

// KernelAggregate is the fully aggregated measurement of one kernel at one
// application configuration.
type KernelAggregate struct {
	// Callpath identifies the kernel, e.g. "App->train->EigenMetaKernel".
	Callpath string
	// Name is the kernel's own name.
	Name string
	// Kind classifies the kernel.
	Kind calltree.Kind
	// PerRep holds, per metric, the per-repetition aggregated values Ṽ_r
	// (median over steps, then ranks) in repetition order.
	PerRep map[measurement.Metric][]StepValue
	// Value holds, per metric, the final aggregate Ṽ (median over
	// repetitions of PerRep).
	Value map[measurement.Metric]StepValue
	// Ranks is the number of distinct ranks the kernel was observed on.
	Ranks int
	// StepsObserved is the number of profiled steps (across phases) the
	// kernel was observed in, summed over ranks and repetitions; a kernel
	// seen in only one step or rank is usually performance-irrelevant.
	StepsObserved int
}

// Category returns the kernel's phase category.
func (k *KernelAggregate) Category() calltree.Category { return calltree.CategoryOf(k.Kind) }

// ConfigAggregate is the aggregation result for one application
// configuration (one measurement point), the "Extra-Deep object" of Fig. 1.
type ConfigAggregate struct {
	// App is the application name.
	App string
	// Params are the execution-parameter names.
	Params []string
	// Point is the application configuration.
	Point measurement.Point
	// Kernels maps callpath → kernel aggregate.
	Kernels map[string]*KernelAggregate
	// Categories holds, per phase category and metric, the sum of the
	// member kernels' final aggregates (the paper's Ṽ_comp, Ṽ_comm,
	// Ṽ_mem of Eq. 6) and the corresponding per-repetition sums.
	Categories map[calltree.Category]map[measurement.Metric]StepValue
	// CategoriesPerRep mirrors Categories per repetition, for run-to-run
	// variation analysis.
	CategoriesPerRep map[calltree.Category]map[measurement.Metric][]StepValue
	// Reps is the number of measurement repetitions aggregated.
	Reps int
	// TrainSteps and ValidationSteps are the profiled step counts per
	// epoch actually observed (after warm-up removal), per repetition of
	// rank 0 — used for sanity checks and overhead accounting.
	TrainSteps, ValidationSteps int
	// WallTimes are the per-profile wall-clock times, for profiling
	// overhead accounting (Fig. 8).
	WallTimes []float64
}

// kernelKey returns the aggregation key for an event: the callpath when
// set, the bare name otherwise.
func kernelKey(e trace.Event) string {
	if e.Callpath != "" {
		return e.Callpath
	}
	return e.Name
}

// metricValue extracts the value of metric m from an event: duration for
// time, 1 for visits, transferred bytes for bytes.
func metricValue(e trace.Event, m measurement.Metric) float64 {
	switch m {
	case measurement.MetricTime:
		return e.Duration
	case measurement.MetricVisits:
		return e.Visits()
	case measurement.MetricBytes:
		return e.Bytes
	default:
		return 0
	}
}

// metricsFor returns the metrics recorded for a kernel kind: memory
// operations additionally carry transferred bytes.
func metricsFor(kind calltree.Kind) []measurement.Metric {
	if calltree.CategoryOf(kind) == calltree.CategoryMemory {
		return []measurement.Metric{measurement.MetricTime, measurement.MetricVisits, measurement.MetricBytes}
	}
	return []measurement.Metric{measurement.MetricTime, measurement.MetricVisits}
}

// reduce aggregates a slice with median (default) or mean.
func reduce(xs []float64, useMean bool) float64 {
	if len(xs) == 0 {
		return 0
	}
	if useMean {
		m, _ := mathutil.Mean(xs) // non-empty by the guard above
		return m
	}
	m, _ := mathutil.Median(xs) // non-empty by the guard above
	return m
}

// perStepSums computes step (1) of the pipeline for one trace: for every
// kernel and metric, the per-step sums v_n, separated by phase. Steps of
// skipped (warm-up) epochs are excluded. Asynchronous events between steps
// are attributed to the following step.
type stepSums struct {
	// sums maps kernel key → metric → per-step values (aligned with the
	// kept step indices of that phase).
	train, validation map[string]map[measurement.Metric][]float64
	kinds             map[string]calltree.Kind
	names             map[string]string
	observed          map[string]int // steps with ≥1 event, per kernel
}

func perStepSums(tr *trace.Trace, skipEpochs []int, trainIdx, valIdx []int) stepSums {
	s := stepSums{
		train:      make(map[string]map[measurement.Metric][]float64),
		validation: make(map[string]map[measurement.Metric][]float64),
		kinds:      make(map[string]calltree.Kind),
		names:      make(map[string]string),
		observed:   make(map[string]int),
	}
	skip := make(map[int]bool, len(skipEpochs))
	for _, e := range skipEpochs {
		skip[e] = true
	}
	// Map global step index → (phase, position within kept steps).
	type slot struct {
		phase trace.Phase
		pos   int
	}
	slots := make(map[int]slot, len(trainIdx)+len(valIdx))
	for pos, i := range trainIdx {
		slots[i] = slot{trace.PhaseTrain, pos}
	}
	for pos, i := range valIdx {
		slots[i] = slot{trace.PhaseValidation, pos}
	}

	ensure := func(m map[string]map[measurement.Metric][]float64, key string, kind calltree.Kind, n int) map[measurement.Metric][]float64 {
		byMetric := m[key]
		if byMetric == nil {
			byMetric = make(map[measurement.Metric][]float64)
			for _, metric := range metricsFor(kind) {
				byMetric[metric] = make([]float64, n)
			}
			m[key] = byMetric
		}
		return byMetric
	}

	// Track which (kernel, step) pairs saw events, to count observations.
	type obsKey struct {
		kernel string
		step   int
	}
	seen := make(map[obsKey]bool)

	for _, e := range tr.Events {
		stepIdx := tr.StepOf(e.Start)
		if stepIdx == -1 {
			// Asynchronous kernel: attribute to the following step, per
			// the paper's between-step handling.
			stepIdx = tr.FollowingStep(e.Start)
			if stepIdx == -1 {
				continue // after the last step: outside the profiled window
			}
		}
		st := tr.Steps[stepIdx]
		if skip[st.Epoch] {
			continue
		}
		sl, ok := slots[stepIdx]
		if !ok {
			continue
		}
		key := kernelKey(e)
		s.kinds[key] = e.Kind
		s.names[key] = e.Name
		var byMetric map[measurement.Metric][]float64
		if sl.phase == trace.PhaseTrain {
			byMetric = ensure(s.train, key, e.Kind, len(trainIdx))
		} else {
			byMetric = ensure(s.validation, key, e.Kind, len(valIdx))
		}
		for _, metric := range metricsFor(e.Kind) {
			byMetric[metric][sl.pos] += metricValue(e, metric)
		}
		ok2 := obsKey{kernel: key, step: stepIdx}
		if !seen[ok2] {
			seen[ok2] = true
			s.observed[key]++
		}
	}
	return s
}

// Aggregate runs the full pipeline on the profiles of one application
// configuration (all ranks, all repetitions of one measurement point).
// The profiles must agree on app, params and config.
func Aggregate(profiles []*profile.Profile, opts Options) (*ConfigAggregate, error) {
	if len(profiles) == 0 {
		return nil, errors.New("aggregate: no profiles")
	}
	first := profiles[0]
	for _, p := range profiles[1:] {
		if p.App != first.App || !measurement.Point(p.Config).Equal(measurement.Point(first.Config)) {
			return nil, fmt.Errorf("aggregate: mixed configurations: %s%v vs %s%v",
				first.App, first.Config, p.App, p.Config)
		}
	}

	// Group by repetition, then by rank.
	byRep := make(map[int][]*profile.Profile)
	for _, p := range profiles {
		byRep[p.Rep] = append(byRep[p.Rep], p)
	}
	reps := make([]int, 0, len(byRep))
	for r := range byRep {
		reps = append(reps, r)
	}
	sort.Ints(reps)

	agg := &ConfigAggregate{
		App:              first.App,
		Params:           append([]string(nil), first.Params...),
		Point:            measurement.Point(first.Config).Clone(),
		Kernels:          make(map[string]*KernelAggregate),
		Categories:       make(map[calltree.Category]map[measurement.Metric]StepValue),
		CategoriesPerRep: make(map[calltree.Category]map[measurement.Metric][]StepValue),
		Reps:             len(reps),
	}

	// perRankValues[key][metric] collects, for the current repetition,
	// the per-rank reduced (median-over-steps) values.
	type repResult struct {
		values map[string]map[measurement.Metric]StepValue
	}
	var repResults []repResult
	kinds := make(map[string]calltree.Kind)
	names := make(map[string]string)
	rankSets := make(map[string]map[int]bool)
	stepsObserved := make(map[string]int)

	for _, rep := range reps {
		group := byRep[rep]
		sort.SliceStable(group, func(i, j int) bool { return group[i].Rank < group[j].Rank })
		// perRank[key][metric] → per-rank slice of ṽ_kr values.
		perRankTrain := make(map[string]map[measurement.Metric][]float64)
		perRankVal := make(map[string]map[measurement.Metric][]float64)

		for _, p := range group {
			tr := &p.Trace
			skipEpochs := warmupEpochs(tr, opts.SkipWarmupEpochs)
			trainIdx := tr.StepsOfPhase(trace.PhaseTrain, skipEpochs...)
			valIdx := tr.StepsOfPhase(trace.PhaseValidation, skipEpochs...)
			if agg.TrainSteps == 0 && p.Rank == 0 {
				agg.TrainSteps = len(trainIdx)
				agg.ValidationSteps = len(valIdx)
			}
			sums := perStepSums(tr, skipEpochs, trainIdx, valIdx)
			for _, key := range sortedCallpathKeys(sums.train) {
				byMetric := sums.train[key]
				kinds[key] = sums.kinds[key]
				names[key] = sums.names[key]
				addRankValue(perRankTrain, key, byMetric, opts.UseMean)
			}
			for _, key := range sortedCallpathKeys(sums.validation) {
				byMetric := sums.validation[key]
				kinds[key] = sums.kinds[key]
				names[key] = sums.names[key]
				addRankValue(perRankVal, key, byMetric, opts.UseMean)
			}
			for key, n := range sums.observed {
				stepsObserved[key] += n
				rs := rankSets[key]
				if rs == nil {
					rs = make(map[int]bool)
					rankSets[key] = rs
				}
				rs[p.Rank] = true
			}
			agg.WallTimes = append(agg.WallTimes, p.WallTime)
		}

		// Step (2): median over ranks.
		rr := repResult{values: make(map[string]map[measurement.Metric]StepValue)}
		allKeys := make(map[string]bool)
		for k := range perRankTrain {
			allKeys[k] = true
		}
		for k := range perRankVal {
			allKeys[k] = true
		}
		for key := range allKeys {
			byMetric := make(map[measurement.Metric]StepValue)
			for _, metric := range metricsFor(kinds[key]) {
				var sv StepValue
				if vs, ok := perRankTrain[key]; ok {
					sv.Train = reduce(vs[metric], opts.UseMean)
				}
				if vs, ok := perRankVal[key]; ok {
					sv.Validation = reduce(vs[metric], opts.UseMean)
				}
				byMetric[metric] = sv
			}
			rr.values[key] = byMetric
		}
		repResults = append(repResults, rr)
	}

	// Step (3): median over repetitions; assemble kernel aggregates.
	allKeys := make(map[string]bool)
	for _, rr := range repResults {
		for k := range rr.values {
			allKeys[k] = true
		}
	}
	for key := range allKeys {
		k := &KernelAggregate{
			Callpath:      key,
			Name:          names[key],
			Kind:          kinds[key],
			PerRep:        make(map[measurement.Metric][]StepValue),
			Value:         make(map[measurement.Metric]StepValue),
			Ranks:         len(rankSets[key]),
			StepsObserved: stepsObserved[key],
		}
		for _, metric := range metricsFor(k.Kind) {
			perRep := make([]StepValue, 0, len(repResults))
			for _, rr := range repResults {
				if byMetric, ok := rr.values[key]; ok {
					perRep = append(perRep, byMetric[metric])
				} else {
					perRep = append(perRep, StepValue{})
				}
			}
			k.PerRep[metric] = perRep
			trainVals := make([]float64, len(perRep))
			valVals := make([]float64, len(perRep))
			for i, sv := range perRep {
				trainVals[i] = sv.Train
				valVals[i] = sv.Validation
			}
			k.Value[metric] = StepValue{
				Train:      reduce(trainVals, opts.UseMean),
				Validation: reduce(valVals, opts.UseMean),
			}
		}
		agg.Kernels[key] = k
	}

	// Category sums (Eq. 6 inputs): sum the member kernels' aggregates.
	// Iterate in sorted callpath order — floating-point addition is not
	// associative, and map order would make the sums run-to-run unstable.
	for _, k := range agg.SortedKernels() {
		cat := k.Category()
		if cat == calltree.CategoryUnknown {
			continue
		}
		byMetric := agg.Categories[cat]
		if byMetric == nil {
			byMetric = make(map[measurement.Metric]StepValue)
			agg.Categories[cat] = byMetric
		}
		perRepByMetric := agg.CategoriesPerRep[cat]
		if perRepByMetric == nil {
			perRepByMetric = make(map[measurement.Metric][]StepValue)
			agg.CategoriesPerRep[cat] = perRepByMetric
		}
		for metric, sv := range k.Value {
			byMetric[metric] = byMetric[metric].Add(sv)
			perRep := perRepByMetric[metric]
			if perRep == nil {
				perRep = make([]StepValue, agg.Reps)
			}
			for i, rv := range k.PerRep[metric] {
				if i < len(perRep) {
					perRep[i] = perRep[i].Add(rv)
				}
			}
			perRepByMetric[metric] = perRep
		}
	}
	return agg, nil
}

// sortedCallpathKeys returns m's callpath keys in sorted order, so
// per-rank accumulation visits kernels deterministically regardless of
// map iteration order.
func sortedCallpathKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// addRankValue reduces per-step sums to one value per rank (step (2)'s
// input ṽ_kr) and appends it to the per-rank collection.
func addRankValue(perRank map[string]map[measurement.Metric][]float64, key string, byMetric map[measurement.Metric][]float64, useMean bool) {
	dst := perRank[key]
	if dst == nil {
		dst = make(map[measurement.Metric][]float64)
		perRank[key] = dst
	}
	for metric, stepVals := range byMetric {
		dst[metric] = append(dst[metric], reduce(stepVals, useMean))
	}
}

// warmupEpochs returns the epoch indices to skip: the first `skip` epochs,
// but never all of them — at least one epoch of data must remain.
func warmupEpochs(tr *trace.Trace, skip int) []int {
	if skip <= 0 || len(tr.Epochs) <= skip {
		if len(tr.Epochs) > 1 && skip > 0 {
			skip = len(tr.Epochs) - 1
		} else {
			return nil
		}
	}
	idx := make([]int, 0, skip)
	sorted := append([]trace.EpochSpan(nil), tr.Epochs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Index < sorted[j].Index })
	for i := 0; i < skip && i < len(sorted); i++ {
		idx = append(idx, sorted[i].Index)
	}
	return idx
}

// SortedKernels returns the aggregate's kernels sorted by callpath.
func (a *ConfigAggregate) SortedKernels() []*KernelAggregate {
	keys := make([]string, 0, len(a.Kernels))
	for k := range a.Kernels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]*KernelAggregate, len(keys))
	for i, k := range keys {
		out[i] = a.Kernels[k]
	}
	return out
}
