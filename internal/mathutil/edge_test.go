package mathutil

import (
	"errors"
	"math"
	"testing"
)

// These tests pin down the behavior of the numerical kernel on the inputs
// that corrupt performance models silently: empty slices, NaN, and ±Inf.

func TestEmptyInputs(t *testing.T) {
	if got := Sum(nil); got != 0 {
		t.Errorf("Sum(nil) = %v, want 0", got)
	}
	if _, ok := Mean(nil); ok {
		t.Error("Mean(nil) reported ok")
	}
	if _, ok := Median(nil); ok {
		t.Error("Median(nil) reported ok")
	}
	if _, ok := Quantile(nil, 0.5); ok {
		t.Error("Quantile(nil) reported ok")
	}
	if _, _, ok := MinMax(nil); ok {
		t.Error("MinMax(nil) reported ok")
	}
	if _, ok := SMAPE(nil, nil); ok {
		t.Error("SMAPE(nil, nil) reported ok")
	}
	if _, ok := MAPE(nil, nil); ok {
		t.Error("MAPE(nil, nil) reported ok")
	}
	if _, ok := RSS(nil, nil); ok {
		t.Error("RSS(nil, nil) reported ok")
	}
	if _, ok := RSquared(nil, nil); ok {
		t.Error("RSquared(nil, nil) reported ok")
	}
}

func TestTooFewElements(t *testing.T) {
	// Variance and friends need at least two samples.
	one := []float64{3.5}
	if _, ok := Variance(one); ok {
		t.Error("Variance of one element reported ok")
	}
	if _, ok := StdDev(one); ok {
		t.Error("StdDev of one element reported ok")
	}
	if _, ok := CoefficientOfVariation(one); ok {
		t.Error("CoefficientOfVariation of one element reported ok")
	}
}

func TestMismatchedLengths(t *testing.T) {
	p, a := []float64{1, 2}, []float64{1}
	if _, ok := SMAPE(p, a); ok {
		t.Error("SMAPE with mismatched lengths reported ok")
	}
	if _, ok := MAPE(p, a); ok {
		t.Error("MAPE with mismatched lengths reported ok")
	}
	if _, ok := RSS(p, a); ok {
		t.Error("RSS with mismatched lengths reported ok")
	}
	if _, ok := RSquared(p, a); ok {
		t.Error("RSquared with mismatched lengths reported ok")
	}
}

func TestNaNPropagation(t *testing.T) {
	nan := math.NaN()
	if got := Sum([]float64{1, nan, 2}); !math.IsNaN(got) {
		t.Errorf("Sum with a NaN = %v, want NaN", got)
	}
	m, ok := Mean([]float64{1, nan})
	if !ok || !math.IsNaN(m) {
		t.Errorf("Mean with a NaN = (%v, %v), want (NaN, true)", m, ok)
	}
	// A NaN q must be rejected, not interpolated.
	if _, ok := Quantile([]float64{1, 2, 3}, nan); ok {
		t.Error("Quantile with NaN q reported ok")
	}
	if !math.IsNaN(NormalQuantile(nan)) {
		t.Error("NormalQuantile(NaN) is not NaN")
	}
	if !math.IsNaN(StudentTQuantile(nan, 5)) {
		t.Error("StudentTQuantile(NaN, 5) is not NaN")
	}
}

func TestInfinityHandling(t *testing.T) {
	inf := math.Inf(1)
	if got := AbsPercentError(1, 0); !math.IsInf(got, 1) {
		t.Errorf("AbsPercentError(1, 0) = %v, want +Inf", got)
	}
	if got := AbsPercentError(0, 0); got != 0 {
		t.Errorf("AbsPercentError(0, 0) = %v, want 0", got)
	}
	// The median of an odd-length sample shrugs off a single Inf outlier.
	med, ok := Median([]float64{1, inf, 2})
	if !ok || !Close(med, 2) {
		t.Errorf("Median(1, +Inf, 2) = (%v, %v), want (2, true)", med, ok)
	}
	// The even-length branch halves before adding, so two near-max values
	// must not overflow to +Inf.
	big := math.MaxFloat64
	med, ok = Median([]float64{big, big})
	if !ok || math.IsInf(med, 1) || !Close(med, big) {
		t.Errorf("Median(MaxFloat64, MaxFloat64) = (%v, %v), want (MaxFloat64, true)", med, ok)
	}
	if got := NormalQuantile(0); !math.IsInf(got, -1) {
		t.Errorf("NormalQuantile(0) = %v, want -Inf", got)
	}
	if got := NormalQuantile(1); !math.IsInf(got, 1) {
		t.Errorf("NormalQuantile(1) = %v, want +Inf", got)
	}
}

func TestQuantileRange(t *testing.T) {
	xs := []float64{1, 2, 3}
	if _, ok := Quantile(xs, -0.01); ok {
		t.Error("Quantile with q < 0 reported ok")
	}
	if _, ok := Quantile(xs, 1.01); ok {
		t.Error("Quantile with q > 1 reported ok")
	}
	if v, ok := Quantile([]float64{7}, 0.99); !ok || !Close(v, 7) {
		t.Errorf("Quantile of a singleton = (%v, %v), want (7, true)", v, ok)
	}
}

func TestErrorMetricDegenerateInputs(t *testing.T) {
	// SMAPE defines two exact zeros as zero error.
	if v, ok := SMAPE([]float64{0}, []float64{0}); !ok || v != 0 {
		t.Errorf("SMAPE(0, 0) = (%v, %v), want (0, true)", v, ok)
	}
	// MAPE skips zero actuals; all-zero actuals leave nothing to average.
	if _, ok := MAPE([]float64{1, 2}, []float64{0, 0}); ok {
		t.Error("MAPE with all-zero actuals reported ok")
	}
	// R² is undefined when the actuals have no variance.
	if _, ok := RSquared([]float64{1, 2}, []float64{5, 5}); ok {
		t.Error("RSquared with constant actuals reported ok")
	}
}

func TestLog2Domain(t *testing.T) {
	if !math.IsNaN(Log2(0)) {
		t.Error("Log2(0) is not NaN")
	}
	if !math.IsNaN(Log2(-4)) {
		t.Error("Log2(-4) is not NaN")
	}
	if got := Log2(8); !Close(got, 3) {
		t.Errorf("Log2(8) = %v, want 3", got)
	}
}

func TestAlmostEqualSpecialValues(t *testing.T) {
	nan, inf := math.NaN(), math.Inf(1)
	if AlmostEqual(nan, nan, 1) {
		t.Error("NaN compared almost-equal to NaN; poisoned values must never pass")
	}
	if AlmostEqual(nan, 0, math.MaxFloat64) {
		t.Error("NaN compared almost-equal to 0 under a huge tolerance")
	}
	if !AlmostEqual(inf, inf, 0) {
		t.Error("+Inf is not almost-equal to itself")
	}
	if AlmostEqual(inf, math.Inf(-1), math.MaxFloat64) {
		t.Error("+Inf compared almost-equal to -Inf")
	}
	if !Close(1e15, 1e15+1) {
		t.Error("Close rejected a 1-ulp-scale difference at 1e15")
	}
	if Close(1, 1.001) {
		t.Error("Close accepted a 0.1% difference near 1")
	}
}

func TestSolveLinearSystemDegenerateInputs(t *testing.T) {
	if _, err := SolveLinearSystem(nil, nil); !errors.Is(err, ErrEmpty) {
		t.Errorf("empty system: err = %v, want ErrEmpty", err)
	}
	if _, err := SolveLinearSystem([][]float64{{1}}, []float64{1, 2}); err == nil {
		t.Error("dimension mismatch not rejected")
	}
	if _, err := SolveLinearSystem([][]float64{{1, 2}, {3}}, []float64{1, 2}); err == nil {
		t.Error("ragged matrix not rejected")
	}
	if _, err := SolveLinearSystem([][]float64{{1, 2}, {2, 4}}, []float64{1, 2}); !errors.Is(err, ErrSingular) {
		t.Errorf("collinear rows: err = %v, want ErrSingular", err)
	}
	if _, err := SolveLinearSystem([][]float64{{0, 0}, {1, 1}}, []float64{0, 1}); !errors.Is(err, ErrSingular) {
		t.Errorf("zero row: err = %v, want ErrSingular", err)
	}
	// A NaN-filled row has no usable scale and must surface as singular
	// rather than producing a NaN "solution".
	if _, err := SolveLinearSystem([][]float64{{math.NaN()}}, []float64{1}); !errors.Is(err, ErrSingular) {
		t.Errorf("NaN matrix: err = %v, want ErrSingular", err)
	}
}

func TestLeastSquaresDegenerateInputs(t *testing.T) {
	if _, err := LeastSquares(nil, nil); !errors.Is(err, ErrEmpty) {
		t.Errorf("empty design: err = %v, want ErrEmpty", err)
	}
	if _, err := LeastSquares([][]float64{{}}, []float64{1}); !errors.Is(err, ErrEmpty) {
		t.Errorf("zero-column design: err = %v, want ErrEmpty", err)
	}
	if _, err := LeastSquares([][]float64{{1, 2}}, []float64{1}); err == nil {
		t.Error("under-determined system not rejected")
	}
	if _, err := LeastSquares([][]float64{{1}, {2}}, []float64{1}); err == nil {
		t.Error("row/observation mismatch not rejected")
	}
	if _, err := LeastSquares([][]float64{{1, 2}, {3}}, []float64{1, 2}); err == nil {
		t.Error("ragged design matrix not rejected")
	}
}

func TestStudentTQuantileDomain(t *testing.T) {
	if !math.IsNaN(StudentTQuantile(0.5, 0)) {
		t.Error("df = 0 did not yield NaN")
	}
	if !math.IsNaN(StudentTQuantile(0, 5)) {
		t.Error("q = 0 did not yield NaN")
	}
	if !math.IsNaN(StudentTQuantile(1, 5)) {
		t.Error("q = 1 did not yield NaN")
	}
	// The median of any t distribution is 0.
	if got := StudentTQuantile(0.5, 7); !AlmostEqual(got, 0, 1e-12) {
		t.Errorf("StudentTQuantile(0.5, 7) = %v, want 0", got)
	}
}
