package mathutil

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular is returned when a linear system has no unique solution,
// e.g. when two basis functions of a PMNF hypothesis are collinear on the
// given measurement points.
var ErrSingular = errors.New("mathutil: singular or ill-conditioned system")

// SolveLinearSystem solves A·x = b in place of nothing: it copies its inputs,
// runs Gaussian elimination with scaled partial pivoting, and returns x.
// A must be square with len(A) == len(b).
func SolveLinearSystem(a [][]float64, b []float64) ([]float64, error) {
	return SolveLinearSystemInto(a, b, nil)
}

// SolveWorkspace holds the scratch buffers of SolveLinearSystemInto so
// repeated small solves (the PMNF fit engine issues one per
// cross-validation fold per hypothesis) reuse memory instead of
// allocating. The zero value is ready to use. A workspace is not safe
// for concurrent use.
type SolveWorkspace struct {
	m     [][]float64
	scale []float64
	x     []float64
}

// grow resizes the workspace for an n-equation system.
func (ws *SolveWorkspace) grow(n int) {
	for len(ws.m) < n {
		ws.m = append(ws.m, nil)
	}
	for i := 0; i < n; i++ {
		for len(ws.m[i]) < n+1 {
			ws.m[i] = append(ws.m[i], 0)
		}
	}
	for len(ws.scale) < n {
		ws.scale = append(ws.scale, 0)
	}
	for len(ws.x) < n {
		ws.x = append(ws.x, 0)
	}
}

// SolveLinearSystemInto is SolveLinearSystem with caller-owned scratch:
// the inputs are still copied (callers keep their data), but into the
// workspace's reusable buffers, and the returned solution aliases
// workspace memory — valid until the next solve on the same workspace.
// A nil workspace allocates fresh buffers, making the two functions
// interchangeable; the elimination itself is shared, so solutions are
// bit-identical between them.
func SolveLinearSystemInto(a [][]float64, b []float64, ws *SolveWorkspace) ([]float64, error) {
	n := len(a)
	if n == 0 {
		return nil, ErrEmpty
	}
	if len(b) != n {
		return nil, fmt.Errorf("mathutil: dimension mismatch: %d equations, %d right-hand sides", n, len(b))
	}
	if ws == nil {
		ws = &SolveWorkspace{}
	}
	ws.grow(n)
	// Copy the augmented system so callers keep their data.
	m := ws.m[:n]
	for i := range m {
		if len(a[i]) != n {
			return nil, fmt.Errorf("mathutil: row %d has %d columns, want %d", i, len(a[i]), n)
		}
		copy(m[i], a[i])
		m[i][n] = b[i]
	}
	// Row scale factors for scaled partial pivoting.
	scale := ws.scale[:n]
	for i := range m {
		scale[i] = 0
		for j := 0; j < n; j++ {
			if v := math.Abs(m[i][j]); v > scale[i] {
				scale[i] = v
			}
		}
		if scale[i] == 0 {
			return nil, ErrSingular
		}
	}
	for col := 0; col < n; col++ {
		// Pick the pivot row with the largest scaled magnitude.
		pivot := col
		best := math.Abs(m[col][col]) / scale[col]
		for r := col + 1; r < n; r++ {
			if v := math.Abs(m[r][col]) / scale[r]; v > best {
				best = v
				pivot = r
			}
		}
		if best < 1e-13 {
			return nil, ErrSingular
		}
		m[col], m[pivot] = m[pivot], m[col]
		scale[col], scale[pivot] = scale[pivot], scale[col]
		// Eliminate below.
		for r := col + 1; r < n; r++ {
			f := m[r][col] / m[col][col]
			if f == 0 {
				continue
			}
			for c := col; c <= n; c++ {
				m[r][c] -= f * m[col][c]
			}
		}
	}
	// Back substitution.
	x := ws.x[:n]
	for i := n - 1; i >= 0; i-- {
		sum := m[i][n]
		for j := i + 1; j < n; j++ {
			sum -= m[i][j] * x[j]
		}
		if m[i][i] == 0 {
			return nil, ErrSingular
		}
		x[i] = sum / m[i][i]
	}
	for _, v := range x {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, ErrSingular
		}
	}
	return x, nil
}

// LeastSquares fits coefficients c minimizing ‖X·c − y‖² where X is the
// design matrix (one row per observation, one column per basis function).
// It solves the normal equations XᵀX·c = Xᵀy; with the handful of basis
// functions a PMNF hypothesis uses (≤ 3), this is numerically adequate and
// avoids pulling in a full QR decomposition.
//
// It returns the coefficient vector, or an error when the system is
// under-determined (fewer rows than columns) or singular.
func LeastSquares(x [][]float64, y []float64) ([]float64, error) {
	rows := len(x)
	if rows == 0 {
		return nil, ErrEmpty
	}
	cols := len(x[0])
	if cols == 0 {
		return nil, ErrEmpty
	}
	if len(y) != rows {
		return nil, fmt.Errorf("mathutil: %d rows but %d observations", rows, len(y))
	}
	if rows < cols {
		return nil, fmt.Errorf("mathutil: under-determined system: %d observations for %d coefficients", rows, cols)
	}
	// Build XᵀX and Xᵀy.
	xtx := make([][]float64, cols)
	xty := make([]float64, cols)
	for i := 0; i < cols; i++ {
		xtx[i] = make([]float64, cols)
	}
	for r := 0; r < rows; r++ {
		if len(x[r]) != cols {
			return nil, fmt.Errorf("mathutil: ragged design matrix at row %d", r)
		}
		for i := 0; i < cols; i++ {
			xi := x[r][i]
			xty[i] += xi * y[r]
			for j := i; j < cols; j++ {
				xtx[i][j] += xi * x[r][j]
			}
		}
	}
	for i := 0; i < cols; i++ {
		for j := 0; j < i; j++ {
			xtx[i][j] = xtx[j][i]
		}
	}
	return SolveLinearSystem(xtx, xty)
}

// NormalQuantile returns the q-quantile of the standard normal distribution
// using the Acklam rational approximation (relative error < 1.15e-9).
// It returns ±Inf for q = 0 or 1 and NaN outside (0,1).
func NormalQuantile(q float64) float64 {
	switch {
	case math.IsNaN(q) || q < 0 || q > 1:
		return math.NaN()
	//edlint:ignore floateq the distribution's support endpoints are the exact values 0 and 1; nearby q must map to finite quantiles
	case q == 0:
		return math.Inf(-1)
	//edlint:ignore floateq the distribution's support endpoints are the exact values 0 and 1; nearby q must map to finite quantiles
	case q == 1:
		return math.Inf(1)
	}
	// Coefficients for the Acklam approximation.
	a := [6]float64{-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02, 1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00}
	b := [5]float64{-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02, 6.680131188771972e+01, -1.328068155288572e+01}
	c := [6]float64{-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00, -2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00}
	d := [4]float64{7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00, 3.754408661907416e+00}
	const lo, hi = 0.02425, 1 - 0.02425
	var x float64
	switch {
	case q < lo:
		u := math.Sqrt(-2 * math.Log(q))
		x = (((((c[0]*u+c[1])*u+c[2])*u+c[3])*u+c[4])*u + c[5]) /
			((((d[0]*u+d[1])*u+d[2])*u+d[3])*u + 1)
	case q > hi:
		u := math.Sqrt(-2 * math.Log(1-q))
		x = -(((((c[0]*u+c[1])*u+c[2])*u+c[3])*u+c[4])*u + c[5]) /
			((((d[0]*u+d[1])*u+d[2])*u+d[3])*u + 1)
	default:
		u := q - 0.5
		t := u * u
		x = (((((a[0]*t+a[1])*t+a[2])*t+a[3])*t+a[4])*t + a[5]) * u /
			(((((b[0]*t+b[1])*t+b[2])*t+b[3])*t+b[4])*t + 1)
	}
	return x
}

// StudentTQuantile returns the q-quantile of Student's t distribution with
// df degrees of freedom, used for the 95% confidence bands around model
// predictions (Fig. 3 of the paper). It uses the Cornish–Fisher style
// expansion around the normal quantile, which is accurate to a few 1e-4 for
// df ≥ 3 — ample for plotting confidence intervals.
// It returns NaN for df < 1 or q outside (0,1).
func StudentTQuantile(q float64, df int) float64 {
	if df < 1 || math.IsNaN(q) || q <= 0 || q >= 1 {
		return math.NaN()
	}
	if df == 1 {
		// Cauchy distribution: exact quantile.
		return math.Tan(math.Pi * (q - 0.5))
	}
	if df == 2 {
		// Exact closed form for df = 2.
		alpha := 2*q - 1
		//edlint:ignore logdomain alpha = 2q-1 lies in (-1,1) by the q-range guard above, so 1-alpha² > 0
		return alpha * math.Sqrt(2/(1-alpha*alpha))
	}
	z := NormalQuantile(q)
	n := float64(df)
	z2 := z * z
	// Hill's asymptotic expansion.
	g1 := (z2 + 1) * z / 4
	g2 := ((5*z2+16)*z2 + 3) * z / 96
	g3 := (((3*z2+19)*z2+17)*z2 - 15) * z / 384
	g4 := ((((79*z2+776)*z2+1482)*z2-1920)*z2 - 945) * z / 92160
	return z + g1/n + g2/(n*n) + g3/(n*n*n) + g4/(n*n*n*n)
}
