package mathutil

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

// SolveLinearSystemInto shares its elimination core with
// SolveLinearSystem; the fit engine's bit-identical-selection guarantee
// requires the two to return exactly the same solution bits for the same
// system, workspace reuse included.

func randomSystem(rng *rand.Rand, n int) ([][]float64, []float64) {
	a := make([][]float64, n)
	b := make([]float64, n)
	for i := range a {
		a[i] = make([]float64, n)
		for j := range a[i] {
			a[i][j] = rng.NormFloat64() * 10
		}
		a[i][i] += float64(n) * 5 // diagonally dominant: well-conditioned
		b[i] = rng.NormFloat64() * 100
	}
	return a, b
}

func TestSolveIntoMatchesSolveBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ws := &SolveWorkspace{}
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(5)
		a, b := randomSystem(rng, n)
		want, err1 := SolveLinearSystem(a, b)
		got, err2 := SolveLinearSystemInto(a, b, ws)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("trial %d: error mismatch: %v vs %v", trial, err1, err2)
		}
		if err1 != nil {
			continue
		}
		for i := range want {
			if math.Float64bits(want[i]) != math.Float64bits(got[i]) {
				t.Fatalf("trial %d (n=%d) x[%d]: fresh %x, workspace %x",
					trial, n, i, math.Float64bits(want[i]), math.Float64bits(got[i]))
			}
		}
	}
}

func TestSolveIntoWorkspaceReuseAcrossSizes(t *testing.T) {
	// A workspace grown by a large solve must still produce bit-identical
	// results for smaller systems afterwards (stale buffer content must
	// never leak into a solution).
	rng := rand.New(rand.NewSource(11))
	ws := &SolveWorkspace{}
	big, bigB := randomSystem(rng, 6)
	if _, err := SolveLinearSystemInto(big, bigB, ws); err != nil {
		t.Fatal(err)
	}
	for n := 1; n <= 4; n++ {
		a, b := randomSystem(rng, n)
		want, err := SolveLinearSystem(a, b)
		if err != nil {
			t.Fatal(err)
		}
		got, err := SolveLinearSystemInto(a, b, ws)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if math.Float64bits(want[i]) != math.Float64bits(got[i]) {
				t.Fatalf("n=%d x[%d]: fresh %x, reused workspace %x",
					n, i, math.Float64bits(want[i]), math.Float64bits(got[i]))
			}
		}
	}
}

func TestSolveIntoDoesNotMutateInputs(t *testing.T) {
	a := [][]float64{{2, 1}, {1, 3}}
	b := []float64{5, 10}
	aCopy := [][]float64{{2, 1}, {1, 3}}
	bCopy := []float64{5, 10}
	ws := &SolveWorkspace{}
	if _, err := SolveLinearSystemInto(a, b, ws); err != nil {
		t.Fatal(err)
	}
	for i := range a {
		for j := range a[i] {
			if math.Float64bits(a[i][j]) != math.Float64bits(aCopy[i][j]) {
				t.Fatalf("a[%d][%d] mutated", i, j)
			}
		}
		if math.Float64bits(b[i]) != math.Float64bits(bCopy[i]) {
			t.Fatalf("b[%d] mutated", i)
		}
	}
}

func TestSolveIntoErrorParity(t *testing.T) {
	ws := &SolveWorkspace{}
	cases := []struct {
		name string
		a    [][]float64
		b    []float64
	}{
		{"empty", nil, nil},
		{"mismatch", [][]float64{{1, 0}, {0, 1}}, []float64{1}},
		{"ragged", [][]float64{{1, 0}, {0}}, []float64{1, 2}},
		{"singular", [][]float64{{1, 2}, {2, 4}}, []float64{1, 2}},
		{"zero-row", [][]float64{{0, 0}, {1, 1}}, []float64{1, 2}},
	}
	for _, tc := range cases {
		_, err1 := SolveLinearSystem(tc.a, tc.b)
		_, err2 := SolveLinearSystemInto(tc.a, tc.b, ws)
		if err1 == nil || err2 == nil {
			t.Fatalf("%s: expected errors, got %v and %v", tc.name, err1, err2)
		}
		if errors.Is(err1, ErrSingular) != errors.Is(err2, ErrSingular) {
			t.Fatalf("%s: singular classification differs: %v vs %v", tc.name, err1, err2)
		}
	}
}
