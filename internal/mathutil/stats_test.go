package mathutil

import (
	"errors"
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestSum(t *testing.T) {
	cases := []struct {
		name string
		in   []float64
		want float64
	}{
		{"empty", nil, 0},
		{"single", []float64{3.5}, 3.5},
		{"several", []float64{1, 2, 3, 4}, 10},
		{"negatives", []float64{-1, 1, -2, 2}, 0},
	}
	for _, c := range cases {
		if got := Sum(c.in); !Close(got, c.want) {
			t.Errorf("%s: Sum(%v) = %v, want %v", c.name, c.in, got, c.want)
		}
	}
}

func TestSumKahanPrecision(t *testing.T) {
	// 1e8 copies of 0.1 would drift badly with naive summation; use a
	// smaller but still demonstrative case.
	xs := make([]float64, 1_000_000)
	for i := range xs {
		xs[i] = 0.1
	}
	if got := Sum(xs); !AlmostEqual(got, 100000, 1e-6) {
		t.Errorf("Kahan Sum drifted: got %v, want 100000", got)
	}
}

func TestMeanEmpty(t *testing.T) {
	if _, ok := Mean(nil); ok {
		t.Error("Mean(nil) reported ok")
	}
}

func TestMean(t *testing.T) {
	got, ok := Mean([]float64{2, 4, 6})
	if !ok || !Close(got, 4) {
		t.Errorf("Mean = %v, ok=%v; want 4, true", got, ok)
	}
}

func TestMeanErrEmpty(t *testing.T) {
	if _, err := MeanErr(nil); !errors.Is(err, ErrEmpty) {
		t.Errorf("MeanErr(nil) = %v, want ErrEmpty", err)
	}
}

func TestMeanErr(t *testing.T) {
	got, err := MeanErr([]float64{2, 4, 6})
	if err != nil || !Close(got, 4) {
		t.Errorf("MeanErr = %v, %v; want 4, nil", got, err)
	}
}

func TestMedianErrEmpty(t *testing.T) {
	if _, err := MedianErr(nil); !errors.Is(err, ErrEmpty) {
		t.Errorf("MedianErr(nil) = %v, want ErrEmpty", err)
	}
}

func TestMedianErr(t *testing.T) {
	got, err := MedianErr([]float64{9, 1, 5})
	if err != nil || !Close(got, 5) {
		t.Errorf("MedianErr = %v, %v; want 5, nil", got, err)
	}
}

func TestMedianOdd(t *testing.T) {
	got, ok := Median([]float64{9, 1, 5})
	if !ok || !Close(got, 5) {
		t.Errorf("Median = %v, want 5", got)
	}
}

func TestMedianEven(t *testing.T) {
	got, ok := Median([]float64{4, 1, 3, 2})
	if !ok || !Close(got, 2.5) {
		t.Errorf("Median = %v, want 2.5", got)
	}
}

func TestMedianEmpty(t *testing.T) {
	if _, ok := Median(nil); ok {
		t.Error("Median(nil) reported ok")
	}
}

func TestMedianDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Median(xs)
	//edlint:ignore floateq mutation check: the input must be bit-identical, not merely close
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Errorf("Median mutated its input: %v", xs)
	}
}

func TestMedianIsRobustToOutlier(t *testing.T) {
	base := []float64{10, 10, 10, 10, 1e9}
	got, _ := Median(base)
	if !Close(got, 10) {
		t.Errorf("Median with outlier = %v, want 10", got)
	}
}

// Property: the median always lies within [min, max] of the sample.
func TestMedianBoundsProperty(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		m, ok := Median(xs)
		if !ok {
			return false
		}
		min, max, _ := MinMax(xs)
		return m >= min && m <= max
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: the median is invariant under permutation of the sample.
func TestMedianPermutationInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(20)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64() * 100
		}
		want, _ := Median(xs)
		shuffled := append([]float64(nil), xs...)
		rng.Shuffle(n, func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		got, _ := Median(shuffled)
		//edlint:ignore floateq permutation invariance is exact: sorting the same multiset yields the same middle element
		if got != want {
			t.Fatalf("median changed under permutation: %v vs %v", got, want)
		}
	}
}

func TestQuantileEndpoints(t *testing.T) {
	xs := []float64{5, 1, 3}
	if q, _ := Quantile(xs, 0); !Close(q, 1) {
		t.Errorf("q0 = %v, want 1", q)
	}
	if q, _ := Quantile(xs, 1); !Close(q, 5) {
		t.Errorf("q1 = %v, want 5", q)
	}
	if q, _ := Quantile(xs, 0.5); !Close(q, 3) {
		t.Errorf("q0.5 = %v, want 3", q)
	}
}

func TestQuantileInterpolation(t *testing.T) {
	xs := []float64{0, 10}
	if q, _ := Quantile(xs, 0.25); !AlmostEqual(q, 2.5, 1e-12) {
		t.Errorf("q0.25 = %v, want 2.5", q)
	}
}

func TestQuantileInvalid(t *testing.T) {
	if _, ok := Quantile([]float64{1}, -0.1); ok {
		t.Error("negative q accepted")
	}
	if _, ok := Quantile([]float64{1}, 1.1); ok {
		t.Error("q > 1 accepted")
	}
	if _, ok := Quantile(nil, 0.5); ok {
		t.Error("empty input accepted")
	}
}

// Property: quantile is monotone in q.
func TestQuantileMonotoneProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(30)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.Float64() * 1000
		}
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.05 {
			v, ok := Quantile(xs, q)
			if !ok {
				t.Fatalf("Quantile failed at q=%v", q)
			}
			if v < prev-1e-9 {
				t.Fatalf("quantile not monotone: q=%v gave %v after %v", q, v, prev)
			}
			prev = v
		}
	}
}

func TestVariance(t *testing.T) {
	v, ok := Variance([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if !ok || !AlmostEqual(v, 4.571428571428571, 1e-12) {
		t.Errorf("Variance = %v, want ≈4.5714", v)
	}
}

func TestVarianceTooFew(t *testing.T) {
	if _, ok := Variance([]float64{1}); ok {
		t.Error("Variance of single element reported ok")
	}
}

func TestStdDevConstant(t *testing.T) {
	sd, ok := StdDev([]float64{3, 3, 3})
	if !ok || sd != 0 {
		t.Errorf("StdDev of constants = %v, want 0", sd)
	}
}

func TestCoefficientOfVariation(t *testing.T) {
	cv, ok := CoefficientOfVariation([]float64{90, 100, 110})
	if !ok || !AlmostEqual(cv, 0.1, 1e-12) {
		t.Errorf("CV = %v, want 0.1", cv)
	}
}

func TestCoefficientOfVariationZeroMean(t *testing.T) {
	if _, ok := CoefficientOfVariation([]float64{-1, 1}); ok {
		t.Error("CV with zero mean reported ok")
	}
}

func TestMinMax(t *testing.T) {
	min, max, ok := MinMax([]float64{3, -2, 7, 0})
	//edlint:ignore floateq MinMax returns elements of the input verbatim, so exact comparison is sound
	if !ok || min != -2 || max != 7 {
		t.Errorf("MinMax = (%v,%v), want (-2,7)", min, max)
	}
}

func TestAbsPercentError(t *testing.T) {
	if e := AbsPercentError(110, 100); !AlmostEqual(e, 10, 1e-12) {
		t.Errorf("APE = %v, want 10", e)
	}
	if e := AbsPercentError(0, 0); e != 0 {
		t.Errorf("APE(0,0) = %v, want 0", e)
	}
	if e := AbsPercentError(1, 0); !math.IsInf(e, 1) {
		t.Errorf("APE(1,0) = %v, want +Inf", e)
	}
}

func TestSMAPEPerfect(t *testing.T) {
	s, ok := SMAPE([]float64{1, 2, 3}, []float64{1, 2, 3})
	if !ok || s != 0 {
		t.Errorf("SMAPE perfect = %v, want 0", s)
	}
}

func TestSMAPEWorstCase(t *testing.T) {
	// Opposite signs give the maximum symmetric error of 200%.
	s, ok := SMAPE([]float64{1}, []float64{-1})
	if !ok || !AlmostEqual(s, 200, 1e-9) {
		t.Errorf("SMAPE opposite = %v, want 200", s)
	}
}

func TestSMAPEMismatch(t *testing.T) {
	if _, ok := SMAPE([]float64{1}, []float64{1, 2}); ok {
		t.Error("SMAPE length mismatch reported ok")
	}
}

// Property: SMAPE is symmetric in its arguments and bounded by [0, 200].
func TestSMAPESymmetryBoundsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 300; trial++ {
		n := 1 + rng.Intn(10)
		a := make([]float64, n)
		b := make([]float64, n)
		for i := range a {
			a[i] = rng.NormFloat64() * 50
			b[i] = rng.NormFloat64() * 50
		}
		s1, ok1 := SMAPE(a, b)
		s2, ok2 := SMAPE(b, a)
		if !ok1 || !ok2 {
			t.Fatal("SMAPE failed on valid input")
		}
		if !AlmostEqual(s1, s2, 1e-9) {
			t.Fatalf("SMAPE asymmetric: %v vs %v", s1, s2)
		}
		if s1 < 0 || s1 > 200+1e-9 {
			t.Fatalf("SMAPE out of bounds: %v", s1)
		}
	}
}

func TestMAPE(t *testing.T) {
	m, ok := MAPE([]float64{110, 90}, []float64{100, 100})
	if !ok || !AlmostEqual(m, 10, 1e-12) {
		t.Errorf("MAPE = %v, want 10", m)
	}
}

func TestMAPESkipsZeroActuals(t *testing.T) {
	m, ok := MAPE([]float64{5, 110}, []float64{0, 100})
	if !ok || !AlmostEqual(m, 10, 1e-12) {
		t.Errorf("MAPE = %v, want 10 (zero-actual point skipped)", m)
	}
}

func TestMAPEAllZeroActuals(t *testing.T) {
	if _, ok := MAPE([]float64{1}, []float64{0}); ok {
		t.Error("MAPE with only zero actuals reported ok")
	}
}

func TestRSS(t *testing.T) {
	r, ok := RSS([]float64{1, 2}, []float64{0, 4})
	if !ok || !Close(r, 5) {
		t.Errorf("RSS = %v, want 5", r)
	}
}

func TestRSquaredPerfectFit(t *testing.T) {
	r2, ok := RSquared([]float64{1, 2, 3}, []float64{1, 2, 3})
	if !ok || !AlmostEqual(r2, 1, 1e-12) {
		t.Errorf("R² = %v, want 1", r2)
	}
}

func TestRSquaredZeroVariance(t *testing.T) {
	if _, ok := RSquared([]float64{1, 1}, []float64{2, 2}); ok {
		t.Error("R² with zero TSS reported ok")
	}
}

func TestLog2(t *testing.T) {
	if v := Log2(8); !Close(v, 3) {
		t.Errorf("Log2(8) = %v, want 3", v)
	}
	if v := Log2(0); !math.IsNaN(v) {
		t.Errorf("Log2(0) = %v, want NaN", v)
	}
	if v := Log2(-1); !math.IsNaN(v) {
		t.Errorf("Log2(-1) = %v, want NaN", v)
	}
}

// Property: for sorted data the type-7 quantile at rank positions matches
// the raw order statistics.
func TestQuantileOrderStatisticsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 100; trial++ {
		n := 2 + rng.Intn(20)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.Float64() * 100
		}
		sorted := append([]float64(nil), xs...)
		sort.Float64s(sorted)
		for k := 0; k < n; k++ {
			q := float64(k) / float64(n-1)
			v, _ := Quantile(xs, q)
			if !AlmostEqual(v, sorted[k], 1e-9) {
				t.Fatalf("quantile at rank %d = %v, want %v", k, v, sorted[k])
			}
		}
	}
}
