package mathutil

import "math"

// AlmostEqual reports whether a and b are equal within the absolute
// tolerance tol. Exactly equal values — including equal infinities — are
// always almost-equal; NaN is almost-equal to nothing, so a poisoned
// value can never sneak through a comparison.
//
// This is the comparison the floateq analyzer steers all floating-point
// equality toward: exact ==/!= silently breaks under the rounding that
// pervades the aggregation and model-fitting arithmetic.
func AlmostEqual(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	//edlint:ignore floateq exact equality deliberately short-circuits equal infinities, which have no finite difference
	if a == b {
		return true
	}
	return math.Abs(a-b) <= tol
}

// Close reports whether a and b agree to roughly nine significant digits,
// using the hybrid absolute/relative tolerance 1e-9·max(1, |a|, |b|).
// It is the default comparison for tests: tight enough to catch any
// genuine numerical bug, loose enough to absorb benign rounding at every
// magnitude from nanoseconds to petaFLOP counts.
func Close(a, b float64) bool {
	scale := math.Max(math.Abs(a), math.Abs(b))
	if scale < 1 {
		scale = 1
	}
	return AlmostEqual(a, b, 1e-9*scale)
}
