package mathutil

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

func TestSolveLinearSystem2x2(t *testing.T) {
	a := [][]float64{{2, 1}, {1, 3}}
	b := []float64{5, 10}
	x, err := SolveLinearSystem(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !AlmostEqual(x[0], 1, 1e-10) || !AlmostEqual(x[1], 3, 1e-10) {
		t.Errorf("x = %v, want [1 3]", x)
	}
}

func TestSolveLinearSystemIdentity(t *testing.T) {
	a := [][]float64{{1, 0, 0}, {0, 1, 0}, {0, 0, 1}}
	b := []float64{7, -2, 0.5}
	x, err := SolveLinearSystem(a, b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range b {
		if !AlmostEqual(x[i], b[i], 1e-12) {
			t.Errorf("x[%d] = %v, want %v", i, x[i], b[i])
		}
	}
}

func TestSolveLinearSystemSingular(t *testing.T) {
	a := [][]float64{{1, 2}, {2, 4}}
	b := []float64{3, 6}
	if _, err := SolveLinearSystem(a, b); !errors.Is(err, ErrSingular) {
		t.Errorf("singular system: err = %v, want ErrSingular", err)
	}
}

func TestSolveLinearSystemNeedsPivoting(t *testing.T) {
	// Zero on the diagonal forces a row swap.
	a := [][]float64{{0, 1}, {1, 0}}
	b := []float64{2, 3}
	x, err := SolveLinearSystem(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !AlmostEqual(x[0], 3, 1e-12) || !AlmostEqual(x[1], 2, 1e-12) {
		t.Errorf("x = %v, want [3 2]", x)
	}
}

func TestSolveLinearSystemDimensionMismatch(t *testing.T) {
	if _, err := SolveLinearSystem([][]float64{{1}}, []float64{1, 2}); err == nil {
		t.Error("dimension mismatch accepted")
	}
	if _, err := SolveLinearSystem(nil, nil); err == nil {
		t.Error("empty system accepted")
	}
	if _, err := SolveLinearSystem([][]float64{{1, 2}}, []float64{1}); err == nil {
		t.Error("ragged matrix accepted")
	}
}

func TestSolveLinearSystemDoesNotMutate(t *testing.T) {
	a := [][]float64{{2, 1}, {1, 3}}
	b := []float64{5, 10}
	if _, err := SolveLinearSystem(a, b); err != nil {
		t.Fatal(err)
	}
	//edlint:ignore floateq mutation check: the inputs must be bit-identical, not merely close
	if a[0][0] != 2 || a[1][1] != 3 || b[0] != 5 {
		t.Error("SolveLinearSystem mutated its inputs")
	}
}

// Property: solving A·x = A·x0 recovers x0 for random well-conditioned A.
func TestSolveLinearSystemRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(5)
		a := make([][]float64, n)
		for i := range a {
			a[i] = make([]float64, n)
			for j := range a[i] {
				a[i][j] = rng.NormFloat64()
			}
			a[i][i] += float64(n) + 1 // diagonal dominance → well-conditioned
		}
		x0 := make([]float64, n)
		for i := range x0 {
			x0[i] = rng.NormFloat64() * 10
		}
		b := make([]float64, n)
		for i := range b {
			for j := range x0 {
				b[i] += a[i][j] * x0[j]
			}
		}
		x, err := SolveLinearSystem(a, b)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for i := range x {
			if !AlmostEqual(x[i], x0[i], 1e-6*(1+math.Abs(x0[i]))) {
				t.Fatalf("trial %d: x[%d] = %v, want %v", trial, i, x[i], x0[i])
			}
		}
	}
}

func TestLeastSquaresExactLine(t *testing.T) {
	// y = 3 + 2x on four points: exact recovery expected.
	x := [][]float64{{1, 1}, {1, 2}, {1, 3}, {1, 4}}
	y := []float64{5, 7, 9, 11}
	c, err := LeastSquares(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if !AlmostEqual(c[0], 3, 1e-9) || !AlmostEqual(c[1], 2, 1e-9) {
		t.Errorf("coefficients = %v, want [3 2]", c)
	}
}

func TestLeastSquaresOverdetermined(t *testing.T) {
	// Noise-free quadratic through 6 points with 3 basis functions.
	var x [][]float64
	var y []float64
	for i := 1; i <= 6; i++ {
		v := float64(i)
		x = append(x, []float64{1, v, v * v})
		y = append(y, 1+0.5*v+0.25*v*v)
	}
	c, err := LeastSquares(x, y)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 0.5, 0.25}
	for i := range want {
		if !AlmostEqual(c[i], want[i], 1e-7) {
			t.Errorf("c[%d] = %v, want %v", i, c[i], want[i])
		}
	}
}

func TestLeastSquaresUnderdetermined(t *testing.T) {
	x := [][]float64{{1, 2, 3}}
	y := []float64{1}
	if _, err := LeastSquares(x, y); err == nil {
		t.Error("under-determined system accepted")
	}
}

func TestLeastSquaresCollinear(t *testing.T) {
	x := [][]float64{{1, 2}, {2, 4}, {3, 6}}
	y := []float64{1, 2, 3}
	if _, err := LeastSquares(x, y); !errors.Is(err, ErrSingular) {
		t.Errorf("collinear basis: err = %v, want ErrSingular", err)
	}
}

func TestLeastSquaresResidualOrthogonality(t *testing.T) {
	// The residual of a least-squares fit must be orthogonal to the column
	// space: Xᵀ(y − X·c) ≈ 0.
	rng := rand.New(rand.NewSource(5))
	rows, cols := 12, 3
	x := make([][]float64, rows)
	y := make([]float64, rows)
	for i := range x {
		x[i] = make([]float64, cols)
		x[i][0] = 1
		for j := 1; j < cols; j++ {
			x[i][j] = rng.Float64() * 10
		}
		y[i] = rng.NormFloat64() * 5
	}
	c, err := LeastSquares(x, y)
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < cols; j++ {
		var dot float64
		for i := 0; i < rows; i++ {
			pred := 0.0
			for k := 0; k < cols; k++ {
				pred += x[i][k] * c[k]
			}
			dot += x[i][j] * (y[i] - pred)
		}
		if math.Abs(dot) > 1e-6 {
			t.Errorf("residual not orthogonal to column %d: dot = %v", j, dot)
		}
	}
}

func TestNormalQuantileKnownValues(t *testing.T) {
	cases := []struct{ q, want float64 }{
		{0.5, 0},
		{0.975, 1.959963985},
		{0.025, -1.959963985},
		{0.84134474, 0.9999999}, // Φ(1) ≈ 0.8413
		{0.99, 2.326347874},
	}
	for _, c := range cases {
		if got := NormalQuantile(c.q); !AlmostEqual(got, c.want, 1e-4) {
			t.Errorf("NormalQuantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
}

func TestNormalQuantileEdges(t *testing.T) {
	if !math.IsInf(NormalQuantile(0), -1) {
		t.Error("q=0 should be -Inf")
	}
	if !math.IsInf(NormalQuantile(1), 1) {
		t.Error("q=1 should be +Inf")
	}
	if !math.IsNaN(NormalQuantile(-0.1)) || !math.IsNaN(NormalQuantile(1.1)) {
		t.Error("out-of-range q should be NaN")
	}
}

func TestNormalQuantileSymmetry(t *testing.T) {
	for q := 0.01; q < 0.5; q += 0.01 {
		lo, hi := NormalQuantile(q), NormalQuantile(1-q)
		if !AlmostEqual(lo, -hi, 1e-8) {
			t.Errorf("asymmetric at q=%v: %v vs %v", q, lo, hi)
		}
	}
}

func TestStudentTQuantileDF1IsCauchy(t *testing.T) {
	// t(1) is the Cauchy distribution: 0.75 quantile is exactly 1.
	if got := StudentTQuantile(0.75, 1); !AlmostEqual(got, 1, 1e-9) {
		t.Errorf("t(1) q0.75 = %v, want 1", got)
	}
}

func TestStudentTQuantileDF2(t *testing.T) {
	// Known value: t(2) 0.975 quantile = 4.30265.
	if got := StudentTQuantile(0.975, 2); !AlmostEqual(got, 4.30265, 1e-3) {
		t.Errorf("t(2) q0.975 = %v, want 4.30265", got)
	}
}

func TestStudentTQuantileKnownValues(t *testing.T) {
	cases := []struct {
		q    float64
		df   int
		want float64
		tol  float64
	}{
		{0.975, 4, 2.776445, 5e-3},
		{0.975, 10, 2.228139, 2e-3},
		{0.975, 30, 2.042272, 1e-3},
		{0.95, 5, 2.015048, 5e-3},
	}
	for _, c := range cases {
		if got := StudentTQuantile(c.q, c.df); !AlmostEqual(got, c.want, c.tol) {
			t.Errorf("t(%d) q%v = %v, want %v", c.df, c.q, got, c.want)
		}
	}
}

func TestStudentTQuantileConvergesToNormal(t *testing.T) {
	z := NormalQuantile(0.975)
	tq := StudentTQuantile(0.975, 10_000)
	if !AlmostEqual(z, tq, 1e-3) {
		t.Errorf("t(10000) = %v should approach z = %v", tq, z)
	}
}

func TestStudentTQuantileInvalid(t *testing.T) {
	if !math.IsNaN(StudentTQuantile(0.5, 0)) {
		t.Error("df=0 accepted")
	}
	if !math.IsNaN(StudentTQuantile(0, 5)) || !math.IsNaN(StudentTQuantile(1, 5)) {
		t.Error("boundary q accepted")
	}
}

func TestStudentTQuantileMedianIsZero(t *testing.T) {
	for df := 1; df <= 50; df += 7 {
		if got := StudentTQuantile(0.5, df); !AlmostEqual(got, 0, 1e-9) {
			t.Errorf("t(%d) median = %v, want 0", df, got)
		}
	}
}
