// Package mathutil provides the small numerical and statistical kernel used
// throughout Extra-Deep: robust location estimates (median, quantiles),
// dispersion measures, error metrics (SMAPE, MAPE, RSS, R²), and probability
// helpers (normal and Student-t quantiles) for confidence intervals.
//
// All functions operate on float64 slices and never modify their inputs
// unless explicitly documented otherwise.
package mathutil

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned by statistics that are undefined on empty input.
var ErrEmpty = errors.New("mathutil: empty input")

// Sum returns the sum of xs. An empty slice sums to zero.
func Sum(xs []float64) float64 {
	// Kahan summation: profiles can mix nanosecond-scale kernel durations
	// with multi-second phase totals, where naive summation loses precision.
	var sum, comp float64
	for _, x := range xs {
		y := x - comp
		t := sum + y
		comp = (t - sum) - y
		sum = t
	}
	return sum
}

// Mean returns the arithmetic mean of xs.
// It returns 0 and false when xs is empty.
func Mean(xs []float64) (float64, bool) {
	if len(xs) == 0 {
		return 0, false
	}
	return Sum(xs) / float64(len(xs)), true
}

// MeanErr is Mean with an error instead of a bool, for call sites that
// propagate failure: it returns ErrEmpty when xs is empty.
func MeanErr(xs []float64) (float64, error) {
	m, ok := Mean(xs)
	if !ok {
		return 0, ErrEmpty
	}
	return m, nil
}

// Median returns the median of xs without modifying it.
// It returns 0 and false when xs is empty.
//
// The median is the central aggregator of Extra-Deep's sampling strategy
// (Fig. 2 of the paper): values are reduced step→rank→repetition by medians
// because medians resist the heavy-tailed noise of individual kernel timings.
func Median(xs []float64) (float64, bool) {
	if len(xs) == 0 {
		return 0, false
	}
	tmp := append([]float64(nil), xs...)
	sort.Float64s(tmp)
	n := len(tmp)
	if n%2 == 1 {
		return tmp[n/2], true
	}
	// Halve before adding so that two near-max-magnitude values of the
	// same sign do not overflow to ±Inf.
	return tmp[n/2-1]/2 + tmp[n/2]/2, true
}

// MedianErr is Median with an error instead of a bool, for call sites that
// propagate failure: it returns ErrEmpty when xs is empty.
func MedianErr(xs []float64) (float64, error) {
	m, ok := Median(xs)
	if !ok {
		return 0, ErrEmpty
	}
	return m, nil
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of xs using linear
// interpolation between closest ranks (type-7 estimator, the R default).
// It returns 0 and false when xs is empty or q is outside [0,1].
func Quantile(xs []float64, q float64) (float64, bool) {
	if len(xs) == 0 || q < 0 || q > 1 || math.IsNaN(q) {
		return 0, false
	}
	tmp := append([]float64(nil), xs...)
	sort.Float64s(tmp)
	if len(tmp) == 1 {
		return tmp[0], true
	}
	pos := q * float64(len(tmp)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return tmp[lo], true
	}
	frac := pos - float64(lo)
	return tmp[lo]*(1-frac) + tmp[hi]*frac, true
}

// Variance returns the unbiased sample variance of xs (divisor n−1).
// It returns 0 and false when xs has fewer than two elements.
func Variance(xs []float64) (float64, bool) {
	if len(xs) < 2 {
		return 0, false
	}
	mean, _ := Mean(xs) // non-empty by the guard above
	var ss float64
	for _, x := range xs {
		d := x - mean
		ss += d * d
	}
	return ss / float64(len(xs)-1), true
}

// StdDev returns the unbiased sample standard deviation of xs.
// It returns 0 and false when xs has fewer than two elements.
func StdDev(xs []float64) (float64, bool) {
	v, ok := Variance(xs)
	if !ok {
		return 0, false
	}
	//edlint:ignore logdomain sample variance is a sum of squares divided by n-1 and cannot be negative
	return math.Sqrt(v), true
}

// CoefficientOfVariation returns the relative dispersion σ/|µ| of xs, the
// statistic the paper reports as "run-to-run variation". It returns 0 and
// false when xs has fewer than two elements or a zero mean.
func CoefficientOfVariation(xs []float64) (float64, bool) {
	sd, ok := StdDev(xs)
	if !ok {
		return 0, false
	}
	mean, _ := Mean(xs) // non-empty: StdDev demands len >= 2
	if mean == 0 {
		return 0, false
	}
	return sd / math.Abs(mean), true
}

// MinMax returns the smallest and largest element of xs.
// It returns zeros and false when xs is empty.
func MinMax(xs []float64) (min, max float64, ok bool) {
	if len(xs) == 0 {
		return 0, 0, false
	}
	min, max = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return min, max, true
}

// AbsPercentError returns |predicted−actual| / |actual| · 100.
// A zero actual value with a non-zero prediction yields +Inf; two zeros
// yield 0 (a perfect prediction of nothing).
func AbsPercentError(predicted, actual float64) float64 {
	if actual == 0 {
		if predicted == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return math.Abs(predicted-actual) / math.Abs(actual) * 100
}

// SMAPE returns the symmetric mean absolute percentage error (in percent,
// range [0,200]) between predictions and actuals, the model-selection
// criterion of Extra-P and Extra-Deep (Section 2.3 of the paper).
// It returns 0 and false when the slices are empty or of unequal length.
func SMAPE(predicted, actual []float64) (float64, bool) {
	if len(predicted) == 0 || len(predicted) != len(actual) {
		return 0, false
	}
	var total float64
	for i := range predicted {
		p, a := predicted[i], actual[i]
		denom := math.Abs(p) + math.Abs(a)
		if denom == 0 {
			continue // both zero: defined as zero error
		}
		total += 2 * math.Abs(p-a) / denom
	}
	return total / float64(len(predicted)) * 100, true
}

// MAPE returns the mean absolute percentage error (in percent) between
// predictions and actuals. Points with a zero actual value are skipped.
// It returns 0 and false when the slices are empty, of unequal length, or
// when every actual value is zero.
func MAPE(predicted, actual []float64) (float64, bool) {
	if len(predicted) == 0 || len(predicted) != len(actual) {
		return 0, false
	}
	var total float64
	n := 0
	for i := range predicted {
		if actual[i] == 0 {
			continue
		}
		total += math.Abs(predicted[i]-actual[i]) / math.Abs(actual[i])
		n++
	}
	if n == 0 {
		return 0, false
	}
	return total / float64(n) * 100, true
}

// RSS returns the residual sum of squares Σ(predicted−actual)².
// It returns 0 and false when the slices are empty or of unequal length.
func RSS(predicted, actual []float64) (float64, bool) {
	if len(predicted) == 0 || len(predicted) != len(actual) {
		return 0, false
	}
	var rss float64
	for i := range predicted {
		d := predicted[i] - actual[i]
		rss += d * d
	}
	return rss, true
}

// RSquared returns the coefficient of determination of predictions against
// actuals: 1 − RSS/TSS. It returns 0 and false when the slices are empty,
// of unequal length, or when the actuals have zero total variance (TSS = 0).
func RSquared(predicted, actual []float64) (float64, bool) {
	rss, ok := RSS(predicted, actual)
	if !ok {
		return 0, false
	}
	mean, _ := Mean(actual) // non-empty: RSS checked the lengths
	var tss float64
	for _, a := range actual {
		d := a - mean
		tss += d * d
	}
	if tss == 0 {
		return 0, false
	}
	return 1 - rss/tss, true
}

// Log2 returns log₂(x). It is a tiny convenience wrapper that keeps the
// PMNF code readable and centralizes the domain convention: Log2 of a
// non-positive value returns NaN (the caller is expected to guard domains).
func Log2(x float64) float64 {
	if x <= 0 {
		return math.NaN()
	}
	return math.Log2(x)
}
