package pipeline

import (
	"context"

	"extradeep/internal/aggregate"
	"extradeep/internal/epoch"
	"extradeep/internal/ingest"
)

// RunSpec describes one end-to-end pipeline run from a profile directory
// to the rendered report.
type RunSpec struct {
	// ProfilesDir and Format locate the profile set.
	ProfilesDir string
	Format      string
	// Ingest configures quarantine policy and the degradation gate.
	Ingest ingest.Options
	// Setup derives the training-setup values per configuration
	// (Section 2.3.1).
	Setup epoch.SetupFunc
	// Analyze configures the Section 3 questions.
	Analyze AnalyzeOptions
}

// RunResult carries every intermediate artifact of a full run.
type RunResult struct {
	Ingest     *ingest.Report
	Aggregates []*aggregate.ConfigAggregate
	Models     *ModelSet
	Analysis   *AnalysisResult
	Report     string
}

// Run executes the full pipeline: Ingest (with gate) → Aggregate →
// EpochExtrapolate → Fit → Analyze → Report. Gate refusals and ingest
// failures surface with their ingest error types intact so callers keep
// their exit-code semantics.
func (p *Pipeline) Run(ctx context.Context, spec RunSpec) (*RunResult, error) {
	res := &RunResult{}
	var err error
	if res.Ingest, err = p.Ingest(ctx, spec.ProfilesDir, spec.Format, spec.Ingest); err != nil {
		return res, err
	}
	if err = res.Ingest.Gate(spec.Ingest); err != nil {
		return res, err
	}
	if res.Aggregates, err = p.Aggregate(ctx, res.Ingest.Profiles); err != nil {
		return res, err
	}
	if res.Models, err = p.BuildModels(ctx, res.Aggregates, spec.Setup); err != nil {
		return res, err
	}
	if res.Analysis, err = p.Analyze(ctx, res.Models, res.Aggregates, spec.Analyze); err != nil {
		return res, err
	}
	res.Report = p.Render(res.Analysis)
	return res, nil
}
