package pipeline

import (
	"context"

	"extradeep/internal/aggregate"
	"extradeep/internal/epoch"
	"extradeep/internal/ingest"
)

// RunSpec describes one end-to-end pipeline run from a profile directory
// to the rendered report.
type RunSpec struct {
	// ProfilesDir and Format locate the profile set.
	ProfilesDir string
	Format      string
	// Ingest configures quarantine policy and the degradation gate.
	Ingest ingest.Options
	// Setup derives the training-setup values per configuration
	// (Section 2.3.1).
	Setup epoch.SetupFunc
	// Analyze configures the Section 3 questions.
	Analyze AnalyzeOptions
}

// RunResult carries every intermediate artifact of a full run.
type RunResult struct {
	Ingest     *ingest.Report
	Aggregates []*aggregate.ConfigAggregate
	Models     *ModelSet
	Analysis   *AnalysisResult
	Report     string
}

// Degraded reports whether the run completed partially: some per-kernel
// fits were quarantined (panic or degraded class) but a well-formed
// report over the surviving models was still produced.
func (r *RunResult) Degraded() bool {
	return r != nil && r.Models != nil && r.Models.Degraded()
}

// Run executes the full pipeline: Ingest (with gate) → Aggregate →
// EpochExtrapolate → Fit → Analyze → Report. Gate refusals and ingest
// failures surface with their ingest error types intact so callers keep
// their exit-code semantics.
//
// The run context is wrapped with a cancel cause and armed on the
// configured fault injector, so cancel-kind faults can kill the run at
// exactly their scheduled point — the test double for "the user hit ^C
// here".
func (p *Pipeline) Run(ctx context.Context, spec RunSpec) (*RunResult, error) {
	rctx, cancel := context.WithCancelCause(ctx)
	defer cancel(nil)
	p.cfg.Injector.Arm(cancel)

	res := &RunResult{}
	var err error
	if res.Ingest, err = p.Ingest(rctx, spec.ProfilesDir, spec.Format, spec.Ingest); err != nil {
		return res, err
	}
	if err = res.Ingest.Gate(spec.Ingest); err != nil {
		return res, err
	}
	if res.Aggregates, err = p.Aggregate(rctx, res.Ingest.Profiles); err != nil {
		return res, err
	}
	if res.Models, err = p.BuildModels(rctx, res.Aggregates, spec.Setup); err != nil {
		return res, err
	}
	if res.Analysis, err = p.Analyze(rctx, res.Models, res.Aggregates, spec.Analyze); err != nil {
		return res, err
	}
	if res.Report, err = p.RenderContext(rctx, res.Analysis); err != nil {
		return res, err
	}
	return res, nil
}
