package pipeline

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sort"

	"extradeep/internal/aggregate"
	"extradeep/internal/epoch"
	"extradeep/internal/ingest"
	"extradeep/internal/measurement"
	"extradeep/internal/modeling"
	"extradeep/internal/profile"
	"extradeep/internal/resilience"
)

// ModelSet holds every model created for one application. (It moved here
// from internal/core when the fit stage became part of the pipeline;
// core keeps a type alias for compatibility.)
type ModelSet struct {
	// Kernel maps metric → callpath → fitted model, one per application
	// kernel that survived filtering.
	Kernel map[measurement.Metric]map[string]*modeling.Model
	// App maps the synthetic application callpaths (epoch.AppPath,
	// epoch.CompPath, epoch.CommPath, epoch.MemPath) to their
	// training-time-per-epoch models.
	App map[string]*modeling.Model
	// KernelExperiment and AppExperiment are the derived per-epoch
	// measurement sets the models were fitted on.
	KernelExperiment *measurement.Experiment
	AppExperiment    *measurement.Experiment
	// Skipped records every fit task that produced no model, in sorted
	// task order, with its failure class. Quarantined failures (class
	// panic/degraded) mark the run as partially complete — see Degraded.
	Skipped []FitFailure
}

// KernelCount returns the number of fitted kernel models across metrics.
func (m *ModelSet) KernelCount() int {
	n := 0
	for _, byPath := range m.Kernel {
		n += len(byPath)
	}
	return n
}

// Ingest is the pipeline's first stage: fault-tolerant profile loading
// with quarantine (internal/ingest). The returned report, its warnings,
// and the error semantics — including the degradation gate and
// strict-mode abort — are exactly those of ingest.LoadDir; the pipeline
// adds stage timing, counters and the resilience hooks (injection point
// "ingest", deadline budget, retry of retryable-class failures).
func (p *Pipeline) Ingest(ctx context.Context, dir, format string, opts ingest.Options) (*ingest.Report, error) {
	var report *ingest.Report
	err := p.runStage(ctx, StageIngest, func(sctx context.Context) (Counters, error) {
		var err error
		report, err = ingest.LoadDir(dir, format, opts)
		if report == nil {
			return nil, err
		}
		return Counters{
			"loaded":      len(report.Profiles),
			"quarantined": len(report.Quarantined),
		}, err
	})
	return report, err
}

// Aggregate groups raw profiles by configuration and runs the Fig. 2
// aggregation pipeline on each group, returning one aggregate per
// application configuration, sorted by measurement point. The per-group
// aggregations are independent and fan out across the worker pool.
func (p *Pipeline) Aggregate(ctx context.Context, profiles []*profile.Profile) ([]*aggregate.ConfigAggregate, error) {
	var aggs []*aggregate.ConfigAggregate
	err := p.runStage(ctx, StageAggregate, func(sctx context.Context) (Counters, error) {
		if len(profiles) == 0 {
			return nil, errors.New("pipeline: no profiles")
		}
		groups := profile.GroupByConfig(profiles)
		keys := profile.SortedKeys(groups)
		out := make([]*aggregate.ConfigAggregate, len(keys))
		err := forEach(sctx, p.cfg.Workers, len(keys), func(i int) error {
			agg, err := aggregate.Aggregate(groups[keys[i]], p.cfg.Aggregation)
			if err != nil {
				return fmt.Errorf("pipeline: aggregating %s %s: %w", keys[i].App, keys[i].Point, err)
			}
			out[i] = agg
			return nil
		})
		if err != nil {
			return Counters{"profiles": len(profiles)}, err
		}
		sort.SliceStable(out, func(i, j int) bool { return out[i].Point.Less(out[j].Point) })
		aggs = out
		return Counters{"profiles": len(profiles), "configurations": len(out)}, nil
	})
	if err != nil {
		return nil, err
	}
	return aggs, nil
}

// fitTask is one unit of the fit stage: a single (metric, callpath)
// series to model. Tasks are enumerated in sorted order so the task list
// — and therefore the result assembly — is identical for every worker
// count.
type fitTask struct {
	metric measurement.Metric
	path   string
	series *measurement.Series
	app    bool // application-level series (no silent-skip bookkeeping difference, only assembly target)
}

// BuildModels runs the EpochExtrapolate and Fit stages: it derives the
// per-epoch kernel and application experiments from the aggregates
// (Eqs. 2–4), filters kernels observed in too few configurations, and
// fans the per-kernel PMNF hypothesis search (Eq. 5) out across the
// worker pool.
//
// Failure handling per task: series the hypothesis search rejects
// (degenerate data) are skipped silently as before, recorded with class
// FailureUnmodelable; fits that panic or fail with the degraded class
// are quarantined with their failure class and the run completes
// partially (ModelSet.Degraded reports it). With Config.Checkpoint set,
// every completed task persists incrementally under a content key of its
// inputs, and a Config.Resume rerun over identical inputs reuses the
// stored results — byte-identically, since the model codec round-trips
// exactly.
func (p *Pipeline) BuildModels(ctx context.Context, aggs []*aggregate.ConfigAggregate, setup epoch.SetupFunc) (*ModelSet, error) {
	minConfigs := p.cfg.MinConfigurations
	if minConfigs <= 0 {
		minConfigs = measurement.MinModelingPoints
	}

	var kernelExp, appExp *measurement.Experiment
	err := p.runStage(ctx, StageEpoch, func(sctx context.Context) (Counters, error) {
		var err error
		kernelExp, err = epoch.BuildKernelExperiment(aggs, setup)
		if err != nil {
			return nil, err
		}
		filtered := kernelExp.FilterInsufficient(minConfigs)
		appExp, err = epoch.BuildApplicationExperiment(aggs, setup)
		if err != nil {
			return nil, err
		}
		return Counters{"configurations": len(aggs), "filtered_series": filtered}, nil
	})
	if err != nil {
		return nil, err
	}

	ms := &ModelSet{
		Kernel:           make(map[measurement.Metric]map[string]*modeling.Model),
		App:              make(map[string]*modeling.Model),
		KernelExperiment: kernelExp,
		AppExperiment:    appExp,
	}
	err = p.runStage(ctx, StageFit, func(sctx context.Context) (Counters, error) {
		// Enumerate tasks in sorted (metric, callpath) order; Metrics()
		// and Callpaths() already sort.
		var tasks []fitTask
		for _, metric := range kernelExp.Metrics() {
			for _, path := range kernelExp.Callpaths(metric) {
				tasks = append(tasks, fitTask{metric: metric, path: path, series: kernelExp.Series(metric, path)})
			}
		}
		for _, path := range appExp.Callpaths(measurement.MetricTime) {
			tasks = append(tasks, fitTask{metric: measurement.MetricTime, path: path, series: appExp.Series(measurement.MetricTime, path), app: true})
		}

		var aggBlob []byte
		if p.cfg.Checkpoint != nil {
			aggBlob = encodeAggregates(tasks)
		}
		plan, err := newCkptPlan(p.cfg.Checkpoint, tasks, p.cfg.Modeling, aggBlob, p.cfg.Resume)
		if err != nil {
			return Counters{"tasks": len(tasks)}, err
		}
		w := plan.writer()

		// Fan out: one slot per task, written only by its own goroutine.
		// Quarantined failures land in their failure slot instead of
		// aborting the pool; only fatal/retryable errors propagate.
		models := make([]*modeling.Model, len(tasks))
		failures := make([]*FitFailure, len(tasks))
		reused := make([]bool, len(tasks))
		err = forEach(sctx, p.cfg.Workers, len(tasks), func(i int) error {
			if rec, ok := plan.reuse(i); ok {
				if rec.Status == resilience.StatusFitted {
					if m, derr := decodeModel(rec.Payload); derr == nil {
						models[i], reused[i] = m, true
						w.absorb(rec)
						return nil
					}
					// Damaged payload: recover to a miss and refit.
				} else {
					failures[i] = &FitFailure{Metric: string(tasks[i].metric), Callpath: tasks[i].path, App: tasks[i].app, Class: rec.Class, Reason: rec.Reason}
					reused[i] = true
					w.absorb(rec)
					return nil
				}
			}
			return p.fitOne(sctx, i, tasks[i], plan, w, models, failures)
		})
		if err != nil {
			return Counters{"tasks": len(tasks)}, err
		}

		// Deterministic reduction in task order.
		fitted, unmodelable, quarantined, hits := 0, 0, 0, 0
		for i, t := range tasks {
			if reused[i] {
				hits++
			}
			if f := failures[i]; f != nil {
				ms.Skipped = append(ms.Skipped, *f)
				if f.Class == FailureUnmodelable {
					unmodelable++
				} else {
					quarantined++
				}
				continue
			}
			if models[i] == nil {
				continue
			}
			fitted++
			if t.app {
				ms.App[t.path] = models[i]
				continue
			}
			byPath := ms.Kernel[t.metric]
			if byPath == nil {
				byPath = make(map[string]*modeling.Model)
				ms.Kernel[t.metric] = byPath
			}
			byPath[t.path] = models[i]
		}
		counters := Counters{"tasks": len(tasks), "fitted": fitted, "skipped": unmodelable}
		if quarantined > 0 {
			counters["quarantined"] = quarantined
		}
		if hits > 0 {
			counters["reused"] = hits
		}
		if len(ms.App) == 0 {
			return counters, errors.New("pipeline: no application model could be created")
		}
		return counters, nil
	})
	if err != nil {
		return nil, err
	}
	return ms, nil
}

// fitOne runs a single fit task with per-task resilience: the task's
// injection point fires first; degraded-class injected failures and
// panics (from injection or the modeling code itself) quarantine the
// task instead of aborting the pool; unmodelable series keep their
// historical silent skip. Completed tasks checkpoint incrementally.
//
// Each task constructs its own modeling.Fitter — the design-matrix
// engine context that caches the task's basis columns across the whole
// hypothesis search. The context lives and dies inside this worker
// goroutine, so tasks share nothing mutable; checkpoint content keys
// (fitTaskKey) cover only the task inputs and are unaffected.
func (p *Pipeline) fitOne(ctx context.Context, i int, t fitTask, plan *ckptPlan, w *ckptWriter, models []*modeling.Model, failures []*FitFailure) (err error) {
	quarantine := func(class, reason string) {
		failures[i] = &FitFailure{Metric: string(t.metric), Callpath: t.path, App: t.app, Class: class, Reason: reason}
		w.record(resilience.TaskRecord{Key: plan.key(i), Name: t.name(), Status: resilience.StatusSkipped, Class: class, Reason: reason})
	}
	defer func() {
		if r := recover(); r != nil {
			quarantine(FailurePanic, fmt.Sprint(r))
			err = nil
		}
	}()
	if ierr := p.cfg.Injector.At(ctx, fitTaskPoint(i)); ierr != nil {
		if resilience.IsDegraded(ierr) {
			quarantine(FailureDegraded, ierr.Error())
			return nil
		}
		return ierr
	}
	fitter, ferr := modeling.NewSeriesFitter(t.series, p.cfg.Modeling)
	var m *modeling.Model
	if ferr == nil {
		m, ferr = fitter.Fit()
	}
	if ferr != nil {
		quarantine(FailureUnmodelable, ferr.Error())
		return nil
	}
	models[i] = m
	if w != nil {
		if payload, perr := encodeModel(m); perr == nil {
			w.record(resilience.TaskRecord{Key: plan.key(i), Name: t.name(), Status: resilience.StatusFitted, Payload: payload})
		}
	}
	return nil
}

// encodeAggregates canonically serializes the aggregated medians the fit
// stage runs on, for the campaign-state record: one entry per task in
// sorted task order.
func encodeAggregates(tasks []fitTask) []byte {
	type entry struct {
		Name    string              `json:"name"`
		Points  []measurement.Point `json:"points"`
		Medians []float64           `json:"medians"`
	}
	out := make([]entry, len(tasks))
	for i, t := range tasks {
		out[i] = entry{Name: t.name(), Points: t.series.Points(), Medians: t.series.Medians()}
	}
	b, err := json.Marshal(out)
	if err != nil {
		return nil
	}
	return b
}
